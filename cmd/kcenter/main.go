// Command kcenter solves approximate k-center on an edge-list graph with
// the paper's CLUSTER-based algorithm and the Gonzalez greedy baseline.
//
// Usage:
//
//	kcenter -in graph.txt -k 100
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/internal/core"
	"repro/internal/gonzalez"
	"repro/internal/graph"
)

func main() {
	in := flag.String("in", "", "input edge-list file (required)")
	k := flag.Int("k", 10, "number of centers")
	seed := flag.Uint64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "BSP workers (0 = GOMAXPROCS)")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "missing -in")
		os.Exit(2)
	}
	g, err := graph.LoadEdgeList(*in)
	fail(err)
	fmt.Println("graph:", graph.Summarize(g))

	// Ctrl-C cancels the in-flight decomposition at its next round barrier;
	// after the context fires, default handling returns, so a second
	// Ctrl-C kills immediately (covering the non-context-aware Gonzalez
	// baseline pass).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	start := time.Now()
	res, err := core.KCenter(ctx, g, *k, core.Options{Seed: *seed, Workers: *workers})
	fail(err)
	fmt.Printf("CLUSTER k-center:  %d centers, radius %d (merged=%v, %v)\n",
		len(res.Centers), res.Radius, res.Merged, time.Since(start).Round(time.Millisecond))

	start = time.Now()
	_, base, err := gonzalez.KCenter(g, *k, 0)
	fail(err)
	fmt.Printf("Gonzalez baseline: %d centers, radius %d (%v)\n",
		*k, base, time.Since(start).Round(time.Millisecond))
	if base > 0 {
		fmt.Printf("ratio: %.2f (Gonzalez is a 2-approximation; CLUSTER is O(log^3 n))\n",
			float64(res.Radius)/float64(base))
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
