// Command reprod is the long-running query daemon: it loads a graph (from
// an edge list, a generator spec, or a binary snapshot), builds the
// paper's distance oracle once, and serves distance / cluster-of /
// diameter / mr-diameter / k-center queries over HTTP/JSON until stopped.
//
// Cold start, building the oracle and persisting it for next time:
//
//	reprod -graph road.txt -name road -tau 4 -seed 1 -snapshot road.snap
//
// Warm restart — the snapshot carries graph + oracle, no rebuild:
//
//	reprod -snapshot road.snap
//
// Synthetic graph without a file:
//
//	reprod -gen mesh:500x500 -name mesh -tau 8
//
// Query it:
//
//	curl 'localhost:8080/distance?graph=road&u=17&v=90210'
//	curl 'localhost:8080/diameter?graph=road'
//	curl 'localhost:8080/mr-diameter?graph=road'
//	curl 'localhost:8080/kcenter?graph=road&k=32'
//	curl 'localhost:8080/stats'
//	curl 'localhost:8080/metrics'   # Prometheus text exposition
//	curl 'localhost:8080/builds'    # build traces: in-flight + recent
//
// Observability: -log-requests emits one structured line per request
// (request id, status, latency, artifact key, cache outcome), and
// -debug-addr serves net/http/pprof on a separate mux so profiling never
// rides the query port.
//
// Endpoint parameters tau/seed/algo select the artifact; omitted they fall
// back to the daemon's -tau/-seed/-algo defaults, so clients that do not
// care about build parameters hit the prebuilt artifact.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/graph"
	"repro/internal/serve"
	"repro/internal/snapshot"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "HTTP listen address")
		graphIn  = flag.String("graph", "", "input edge-list file")
		gen      = flag.String("gen", "", "generator spec: mesh:WxH | road:WxH[:keep] | ba:N[:deg] | rmat:SCALE[:deg] | er:N[:deg]")
		name     = flag.String("name", "", "name to serve the graph under (default: derived from -graph/-gen)")
		snapPath = flag.String("snapshot", "", "snapshot file: loaded if it exists (skipping the build), written after the build otherwise")
		tau      = flag.Int("tau", 0, "default oracle granularity (0 = paper default)")
		seed     = flag.Uint64("seed", 1, "default decomposition seed")
		algo     = flag.String("algo", "cluster", "default decomposition: cluster | cluster2")
		workers  = flag.Int("workers", 0, "request worker pool size (0 = GOMAXPROCS)")
		build    = flag.Int("build-workers", 0, "BSP workers for artifact builds (0 = GOMAXPROCS)")
		lazy     = flag.Bool("lazy", false, "skip the startup oracle build; first query pays it")
		drain    = flag.Duration("drain", 15*time.Second, "graceful-shutdown budget: cancel builds, drain handlers, write the snapshot")
		logReqs  = flag.Bool("log-requests", false, "log one structured line per HTTP request (id, method, path, status, latency, artifact key, cache outcome)")
		buildTO  = flag.Duration("build-timeout", 0, "server-side deadline for one artifact build's running phase; past it the build is cancelled and its waiters answer 504 (0 = unbounded)")
		fastQ    = flag.Int("fast-queue", 0, "bounded wait queue for the fast lane (cached lookups and queries) before requests are shed with 503+Retry-After (0 = 256, negative = no queue)")
		slowQ    = flag.Int("slow-queue", 0, "how many cold builds may be pending beyond the build pool before new builds are shed with 503+Retry-After (0 = 4x workers, negative = no queue)")
		debug    = flag.String("debug-addr", "", "listen address for the net/http/pprof debug mux (empty = disabled); kept off the service mux so profiling is never exposed on the query port")
	)
	flag.Parse()

	// A loadable snapshot wins: its metadata becomes the request defaults,
	// so clients that omit tau/seed/algo hit the loaded artifact instead of
	// triggering a rebuild under a slightly different key.
	var art *snapshot.Artifact
	if *snapPath != "" {
		var err error
		if art, err = snapshot.Load(*snapPath); err != nil && !errors.Is(err, os.ErrNotExist) {
			// A corrupt snapshot is fatal only when it is the sole source;
			// with -graph/-gen available, fall through to the cold path,
			// which rebuilds and overwrites the bad file.
			if *graphIn == "" && *gen == "" {
				log.Fatalf("reprod: snapshot %s unreadable: %v", *snapPath, err)
			}
			log.Printf("reprod: ignoring unreadable snapshot %s (%v); rebuilding", *snapPath, err)
			art = nil
		}
	}
	defTau, defSeed, defAlgo := *tau, *seed, *algo
	if art != nil && art.Oracle != nil {
		defTau, defSeed, defAlgo = art.Meta.Tau, art.Meta.Seed, art.Meta.Algorithm
	}
	cfg := serve.Config{
		Workers:          *workers,
		DefaultTau:       defTau,
		DefaultSeed:      defSeed,
		DefaultAlgorithm: defAlgo,
		BuildWorkers:     *build,
		BuildTimeout:     *buildTO,
		FastLaneQueue:    *fastQ,
		SlowLaneQueue:    *slowQ,
	}
	if *logReqs {
		cfg.RequestLog = logRequest
	}
	s := serve.New(cfg)

	graphName, err := bootstrap(s, art, *graphIn, *gen, *name, *snapPath, *tau, *seed, *algo, *lazy)
	if err != nil {
		log.Fatal(err)
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: s.Handler(),
		// Idle half-open connections must not pin goroutines forever: a
		// client that opens a socket and never finishes its headers is cut
		// off, not accumulated. No WriteTimeout: a fixed response deadline
		// would permanently cap the largest cold build an endpoint can
		// serve (each retry would restart the build and die at the same
		// wall); clients that give up instead cancel the build via the
		// serve layer's last-waiter accounting.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	if *debug != "" {
		go serveDebug(*debug)
	}
	go func() {
		log.Printf("reprod: serving %v on %s", s.GraphNames(), *addr)
		log.Printf("reprod: try  curl 'http://localhost%s/distance?graph=%s&u=0&v=1'",
			portOf(*addr), graphName)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Print("reprod: shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Order matters: cancelling the in-flight builds first turns every
	// handler blocked on a build into an immediate 503, so the HTTP drain
	// that follows completes quickly instead of riding out a multi-second
	// decomposition the departing clients no longer want. Requests racing
	// the drain cannot start fresh builds — the server rejects them with
	// ErrShuttingDown once its Shutdown has begun.
	if err := s.Shutdown(ctx); err != nil {
		log.Printf("reprod: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("reprod: http drain: %v", err)
	}
	// A lazily built oracle was never persisted at startup; write it now so
	// the next start is warm. Only a cached, completed oracle is written —
	// shutdown must never trigger a build — and only within the -drain
	// budget: past the deadline a supervisor is about to SIGKILL us, and
	// starting a large write then would just be torn up.
	if *snapPath != "" && *lazy && ctx.Err() == nil {
		if built, ok, err := s.CachedOracleArtifact(graphName, *tau, *seed, *algo); err != nil {
			log.Printf("reprod: shutdown snapshot: %v", err)
		} else if ok {
			if err := snapshot.Save(*snapPath, built); err != nil {
				log.Printf("reprod: shutdown snapshot: %v", err)
			} else {
				log.Printf("reprod: wrote snapshot %s before exit", *snapPath)
			}
		}
	}
	log.Print("reprod: bye")
}

// logRequest is the -log-requests sink: one line per completed request in
// logfmt shape, carrying the request id the response echoed as
// X-Request-ID so a client-reported failure can be joined to this log.
func logRequest(e serve.RequestLogEntry) {
	line := fmt.Sprintf("req id=%s method=%s path=%s status=%d latency=%s",
		e.ID, e.Method, e.Path, e.Status, e.Latency.Round(time.Microsecond))
	if e.ArtifactKey != "" {
		line += fmt.Sprintf(" artifact=%q cache=%s", e.ArtifactKey, e.Cache)
	}
	log.Print(line)
}

// serveDebug runs the net/http/pprof handlers on their own mux and
// listener. The default-mux registration pprof does on import is not used:
// the service handler is a fresh ServeMux, so profiling endpoints exist
// only on -debug-addr, never on the query port.
func serveDebug(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	log.Printf("reprod: pprof debug server on %s", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		log.Printf("reprod: debug server: %v", err)
	}
}

// bootstrap loads or builds the serving state and returns the graph name.
func bootstrap(s *serve.Server, art *snapshot.Artifact, graphIn, gen, name, snapPath string, tau int, seed uint64, algo string, lazy bool) (string, error) {
	// Warm path: a loaded snapshot carries graph (+ oracle) and metadata.
	if art != nil {
		if err := s.InstallSnapshot(art); err != nil {
			return "", err
		}
		withOracle := ""
		if art.Oracle != nil {
			withOracle = fmt.Sprintf(" + oracle (tau=%d seed=%d %s, %d clusters)",
				art.Meta.Tau, art.Meta.Seed, art.Meta.Algorithm, art.Oracle.NumClusters())
		}
		log.Printf("reprod: loaded snapshot %s: graph %q n=%d m=%d%s",
			snapPath, art.Meta.GraphName, art.Graph.NumNodes(), art.Graph.NumEdges(), withOracle)
		return art.Meta.GraphName, nil
	}

	// Cold path: load or generate the graph.
	var (
		g   *graph.Graph
		err error
	)
	switch {
	case graphIn != "":
		start := time.Now()
		if g, err = graph.LoadEdgeList(graphIn); err != nil {
			return "", err
		}
		log.Printf("reprod: loaded %s in %v: %s", graphIn, time.Since(start).Round(time.Millisecond), graph.Summarize(g))
		if name == "" {
			name = baseName(graphIn)
		}
	case gen != "":
		if g, err = generate(gen); err != nil {
			return "", err
		}
		log.Printf("reprod: generated %s: %s", gen, graph.Summarize(g))
		if name == "" {
			name = gen[:strings.IndexByte(gen+":", ':')]
		}
	default:
		return "", errors.New("reprod: need -graph, -gen, or an existing -snapshot")
	}
	if err := s.RegisterGraph(name, g); err != nil {
		return "", err
	}
	if lazy {
		return name, nil
	}

	// Prebuild the default oracle so the first query is O(1), and persist
	// it if a snapshot path was given.
	start := time.Now()
	built, err := s.SnapshotArtifact(context.Background(), name, tau, seed, algo)
	if err != nil {
		return "", err
	}
	log.Printf("reprod: built oracle in %v (%d clusters, tau=%d)",
		time.Since(start).Round(time.Millisecond), built.Oracle.NumClusters(), built.Meta.Tau)
	if snapPath != "" {
		start = time.Now()
		if err := snapshot.Save(snapPath, built); err != nil {
			return "", err
		}
		log.Printf("reprod: wrote snapshot %s in %v", snapPath, time.Since(start).Round(time.Millisecond))
	}
	return name, nil
}

// generate parses a compact generator spec like "mesh:500x500",
// "road:200x200:0.4", "ba:100000:8", "rmat:17:8", "er:50000:8".
func generate(spec string) (*graph.Graph, error) {
	parts := strings.Split(spec, ":")
	kind := parts[0]
	var argErr error
	argInt := func(i, def int) int {
		if len(parts) <= i {
			return def
		}
		v, err := strconv.Atoi(parts[i])
		if err != nil && argErr == nil {
			argErr = fmt.Errorf("reprod: bad argument %q in %q", parts[i], spec)
		}
		return v
	}
	argFloat := func(i int, def float64) float64 {
		if len(parts) <= i {
			return def
		}
		v, err := strconv.ParseFloat(parts[i], 64)
		if err != nil && argErr == nil {
			argErr = fmt.Errorf("reprod: bad argument %q in %q", parts[i], spec)
		}
		return v
	}
	dims := func() (int, int, error) {
		if len(parts) < 2 {
			return 0, 0, fmt.Errorf("reprod: %s needs WxH (e.g. %s:500x500)", kind, kind)
		}
		wh := strings.SplitN(parts[1], "x", 2)
		if len(wh) != 2 {
			return 0, 0, fmt.Errorf("reprod: bad dimensions %q", parts[1])
		}
		w, err1 := strconv.Atoi(wh[0])
		h, err2 := strconv.Atoi(wh[1])
		if err1 != nil || err2 != nil || w < 1 || h < 1 {
			return 0, 0, fmt.Errorf("reprod: bad dimensions %q", parts[1])
		}
		return w, h, nil
	}
	switch kind {
	case "mesh":
		w, h, err := dims()
		if err != nil {
			return nil, err
		}
		return graph.Mesh(w, h), nil
	case "road":
		w, h, err := dims()
		if err != nil {
			return nil, err
		}
		keep := argFloat(2, 0.4)
		if argErr != nil {
			return nil, argErr
		}
		return graph.RoadLike(w, h, keep, 1), nil
	case "ba":
		n, deg := argInt(1, 100000), argInt(2, 8)
		if argErr != nil {
			return nil, argErr
		}
		return graph.BarabasiAlbert(n, deg, 1), nil
	case "rmat":
		scale, deg := argInt(1, 16), argInt(2, 8)
		if argErr != nil {
			return nil, argErr
		}
		return graph.RMAT(scale, deg, 1), nil
	case "er":
		n, deg := argInt(1, 100000), argInt(2, 8)
		if argErr != nil {
			return nil, argErr
		}
		return graph.ErdosRenyi(n, n*deg/2, 1), nil
	default:
		return nil, fmt.Errorf("reprod: unknown generator %q", kind)
	}
}

func baseName(path string) string {
	return strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
}

func portOf(addr string) string {
	if i := strings.LastIndexByte(addr, ':'); i >= 0 {
		return addr[i:]
	}
	return addr
}
