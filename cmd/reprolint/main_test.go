package main

import "testing"

func TestClassifyExit(t *testing.T) {
	const (
		diags = "# repro/internal/serve\n" +
			"internal/serve/server.go:41:2: ranges over map m in a deterministic reducer\n"
		internalErr = "reprolint: facts of repro/internal/core: gob: unknown type\n"
		vetErr      = "vet: internal/core/oracle.go:12:5: undefined: frobnicate\n"
		panicOut    = "panic: runtime error: index out of range [3]\n\ngoroutine 1 [running]:\n"
	)
	cases := []struct {
		name       string
		output     string
		underlying int
		want       int
	}{
		{"clean", "", 0, 0},
		{"clean ignores noise", "# some pkg\n", 0, 0},
		{"findings", diags, 2, 2},
		{"findings with vet exit 1", diags, 1, 2},
		{"internal error", internalErr, 1, 1},
		{"typecheck failure", vetErr, 1, 1},
		{"panic", panicOut, 2, 1},
		{"error dominates findings", diags + internalErr, 2, 1},
		{"unclassifiable failure", "something unexpected\n", 3, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := classifyExit(tc.output, tc.underlying); got != tc.want {
				t.Errorf("classifyExit(%q, %d) = %d, want %d",
					tc.output, tc.underlying, got, tc.want)
			}
		})
	}
}
