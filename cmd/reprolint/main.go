// Command reprolint is the repository's analyzer suite as a vettool:
// eight go/analysis-style checkers enforcing the determinism, atomics,
// locking, context, metric-naming, hot-path allocation, goroutine-
// lifecycle, and lock-order invariants (see internal/lint), plus the
// stale-suppression audit over //lint:allow annotations.
//
// Usage:
//
//	go vet -vettool=$(command -v reprolint) ./...   # the vet protocol
//	reprolint ./...                                 # convenience: re-execs go vet
//
// Individual analyzers toggle like vet checks: reprolint -determinism ./...
// runs only that one; -lockedsuffix=false excludes one from the suite.
// (Partial runs skip the suppression audit: an annotation can only be
// proven stale when its analyzer actually ran.)
//
// The lockorder analyzer's repo-wide lock graph is assembled here by
// construction: each unit's vetx fact file re-exports every edge it saw,
// so as the vet sweep walks the import DAG each package checks the union
// of its own acquisition edges and its entire dependency cone's, and a
// cross-package cycle is reported at the package that closes it.
//
// Exit codes, in both entry modes:
//
//	0  clean
//	1  internal analyzer error (crash, unreadable cfg, broken facts)
//	2  findings
//
// The direct mode distinguishes the two failure shapes by classifying
// the vet output: diagnostic lines are file:line[:col]: message, while
// internal errors surface as reprolint:/vet: lines. An internal error
// dominates findings — a crashed analyzer means the findings list is
// incomplete, and CI should treat it as a broken build, not a lint
// failure.
package main

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/unitchecker"
)

func main() {
	// Package-pattern operands mean the user invoked reprolint directly;
	// delegate to go vet with ourselves as the vettool so both entry
	// points share one driver. vet.cfg operands (and the -flags/-V probes,
	// which carry no operands) take the unitchecker path.
	var patterns []string
	for _, arg := range os.Args[1:] {
		if !strings.HasPrefix(arg, "-") && !strings.HasSuffix(arg, ".cfg") {
			patterns = append(patterns, arg)
		}
	}
	if len(patterns) > 0 {
		os.Exit(delegate())
	}
	unitchecker.AuditChecks = lint.KnownChecks()
	unitchecker.Main(lint.Analyzers()...)
}

func delegate() int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "reprolint: %v\n", err)
		return 1
	}
	args := append([]string{"vet", "-vettool=" + exe}, os.Args[1:]...)
	cmd := exec.Command("go", args...)
	var captured bytes.Buffer
	cmd.Stdout = os.Stdout
	cmd.Stderr = io.MultiWriter(os.Stderr, &captured)
	cmd.Stdin = os.Stdin
	underlying := 0
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			underlying = ee.ExitCode()
		} else {
			fmt.Fprintf(os.Stderr, "reprolint: %v\n", err)
			return 1
		}
	}
	return classifyExit(captured.String(), underlying)
}

// diagLine matches a printed diagnostic: path.go:line[:col]: message.
var diagLine = regexp.MustCompile(`(?m)^\S*\.go:\d+(:\d+)?: `)

// errLine matches internal tool or vet driver errors.
var errLine = regexp.MustCompile(`(?m)^\s*(reprolint|vet|go: |panic)`)

// classifyExit maps a vet run's stderr and exit code onto reprolint's
// contract: 0 clean, 2 findings, 1 internal error (which dominates —
// a crashed analyzer means the findings list is incomplete).
func classifyExit(output string, underlying int) int {
	if underlying == 0 {
		return 0
	}
	if errLine.MatchString(output) {
		return 1
	}
	if diagLine.MatchString(output) {
		return 2
	}
	return 1
}
