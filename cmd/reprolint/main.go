// Command reprolint is the repository's analyzer suite as a vettool: five
// go/analysis-style checkers enforcing the determinism, atomics, locking,
// context, and metric-naming invariants (see internal/lint).
//
// Usage:
//
//	go vet -vettool=$(command -v reprolint) ./...   # the vet protocol
//	reprolint ./...                                 # convenience: re-execs go vet
//
// Individual analyzers toggle like vet checks: reprolint -determinism ./...
// runs only that one; -lockedsuffix=false excludes one from the suite.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/unitchecker"
)

func main() {
	// Package-pattern operands mean the user invoked reprolint directly;
	// delegate to go vet with ourselves as the vettool so both entry
	// points share one driver. vet.cfg operands (and the -flags/-V probes,
	// which carry no operands) take the unitchecker path.
	var patterns []string
	for _, arg := range os.Args[1:] {
		if !strings.HasPrefix(arg, "-") && !strings.HasSuffix(arg, ".cfg") {
			patterns = append(patterns, arg)
		}
	}
	if len(patterns) > 0 {
		os.Exit(delegate())
	}
	unitchecker.Main(lint.Analyzers()...)
}

func delegate() int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "reprolint: %v\n", err)
		return 1
	}
	args := append([]string{"vet", "-vettool=" + exe}, os.Args[1:]...)
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "reprolint: %v\n", err)
		return 1
	}
	return 0
}
