// Command bench runs the serving tier's fixed perf trajectory and writes
// the result as JSON (BENCH_10.json in-repo). It exercises the hot paths
// the serving PRs instrument — a cold oracle build, the /distance
// point-query path over HTTP, the batch-first /distance-batch path, and
// the MR diameter pipeline — and reports wall-clock alongside the
// engines' own work counters, so a regression in either time or
// algorithmic work shows up as a diff.
//
// Usage:
//
//	bench [-o BENCH_10.json] [-queries 2000] [-batches 50] [-workers 0] [-max-batch-allocs -1]
//
// -max-batch-allocs, when non-negative, turns the measured batch-kernel
// allocs/pair into a gate: the run exits 1 if the measurement exceeds the
// bound. CI passes 0, making the zero-allocation batch contract a third
// enforcement layer alongside the hotalloc analyzer (static) and the
// ZeroAlloc regression tests (per-package runtime).
//
// The workload is fixed (graphs, tau, seeds) so successive runs are
// comparable; only the machine varies, which is why the environment block
// records the Go version and GOMAXPROCS.
package main

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/serve"
)

// Report is the BENCH_10.json schema. It keeps every BENCH_6 section
// (env, oracle_build, serve_distance, mr_diameter) and adds the
// distance_batch section introduced with the batch-first query path.
type Report struct {
	Env    Env         `json:"env"`
	Oracle OracleBench `json:"oracle_build"`
	Serve  ServeBench  `json:"serve_distance"`
	Batch  BatchBench  `json:"distance_batch"`
	MR     MRBench     `json:"mr_diameter"`
}

type Env struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// OracleBench is one cold oracle build on RoadLike(130,130,0.4,9) with
// tau=4 seed=1 — the same instance BenchmarkServeDistance warms up on.
type OracleBench struct {
	Graph       string  `json:"graph"`
	Nodes       int     `json:"nodes"`
	Arcs        int     `json:"arcs"`
	Tau         int     `json:"tau"`
	Seed        uint64  `json:"seed"`
	WallMillis  float64 `json:"wall_millis"`
	Rounds      int     `json:"bsp_rounds"`
	PullRounds  int     `json:"bsp_pull_rounds"`
	ArcsScanned int64   `json:"arcs_scanned"`
	Relaxations int64   `json:"relaxations"`
	Clusters    int     `json:"clusters"`
}

// ServeBench is the end-to-end /distance latency distribution over a warm
// cache: HTTP, middleware, JSON, worker pool, O(1) oracle lookup.
type ServeBench struct {
	Queries   int     `json:"queries"`
	P50Micros float64 `json:"p50_micros"`
	P99Micros float64 `json:"p99_micros"`
	AvgMicros float64 `json:"avg_micros"`
}

// BatchBench is the warm /distance-batch path over HTTP with the dense
// binary encoding: whole-batch latency distribution, throughput in
// pairs/sec, and the speedup over issuing the same pairs as sequential
// point queries (ServeBench's workload). AllocsPerPair pins the
// zero-allocation guarantee on the oracle's batch kernel.
type BatchBench struct {
	Batches        int     `json:"batches"`
	PairsPerBatch  int     `json:"pairs_per_batch"`
	P50Micros      float64 `json:"p50_batch_micros"`
	P99Micros      float64 `json:"p99_batch_micros"`
	PairsPerSec    float64 `json:"pairs_per_sec"`
	PointPairsSec  float64 `json:"point_pairs_per_sec"`
	SpeedupVsPoint float64 `json:"speedup_vs_point"`
	AllocsPerPair  float64 `json:"allocs_per_pair"`
}

// MRBench is the Section 5 diameter path on the sharded MR runtime:
// CLUSTER(τ) then repeated min-plus squaring, on Mesh(60,60).
type MRBench struct {
	Graph           string  `json:"graph"`
	Tau             int     `json:"tau"`
	Seed            uint64  `json:"seed"`
	WallMillis      float64 `json:"wall_millis"`
	Rounds          int     `json:"mr_rounds"`
	PairsShuffled   int64   `json:"pairs_shuffled"`
	MaxReducerInput int     `json:"max_reducer_input"`
	Upper           int64   `json:"diameter_upper"`
}

func main() {
	out := flag.String("o", "BENCH_10.json", "output file (- for stdout)")
	queries := flag.Int("queries", 2000, "point queries for the latency distribution")
	batches := flag.Int("batches", 50, "warm /distance-batch requests for the batch distribution")
	workers := flag.Int("workers", 0, "build workers (0 = GOMAXPROCS)")
	maxBatchAllocs := flag.Float64("max-batch-allocs", -1,
		"fail (exit 1) if the batch kernel exceeds this many allocs/pair; negative disables the gate")
	flag.Parse()

	rep := Report{Env: Env{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}}

	s := serve.New(serve.Config{Workers: 64, BuildWorkers: *workers})
	road := graph.RoadLike(130, 130, 0.4, 9)
	mesh := graph.Mesh(60, 60)
	fail(s.RegisterGraph("road", road))
	fail(s.RegisterGraph("mesh", mesh))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Cold oracle build, timed through the same serve path /distance uses.
	start := time.Now()
	or, err := s.Oracle(context.Background(), "road", 4, 1, "")
	fail(err)
	wall := time.Since(start)
	st := or.Clustering().Stats
	ap := or.APSPStats()
	rep.Oracle = OracleBench{
		Graph:       "roadlike-130x130",
		Nodes:       road.NumNodes(),
		Arcs:        road.NumArcs(),
		Tau:         4,
		Seed:        1,
		WallMillis:  float64(wall.Nanoseconds()) / 1e6,
		Rounds:      st.Rounds + ap.Rounds,
		PullRounds:  st.PullRounds + ap.PullRounds,
		ArcsScanned: st.Messages + ap.Messages,
		Relaxations: st.Relaxations + ap.Relaxations,
		Clusters:    or.NumClusters(),
	}

	// Warm-cache point queries, sequential so each sample is one request.
	r := rng.New(7)
	n := road.NumNodes()
	lat := make([]float64, 0, *queries)
	var sum float64
	for i := 0; i < *queries; i++ {
		u, v := r.Intn(n), r.Intn(n)
		url := fmt.Sprintf("%s/distance?graph=road&tau=4&seed=1&u=%d&v=%d", ts.URL, u, v)
		q0 := time.Now()
		resp, err := http.Get(url)
		fail(err)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		micros := float64(time.Since(q0).Nanoseconds()) / 1e3
		if resp.StatusCode != http.StatusOK {
			fail(fmt.Errorf("%s: status %d", url, resp.StatusCode))
		}
		lat = append(lat, micros)
		sum += micros
	}
	sort.Float64s(lat)
	rep.Serve = ServeBench{
		Queries:   *queries,
		P50Micros: quantile(lat, 0.50),
		P99Micros: quantile(lat, 0.99),
		AvgMicros: sum / float64(len(lat)),
	}

	// Warm batch queries over the same oracle, binary encoding end to end
	// (HTTP, middleware, pooled decode/encode, flat-table batch kernel).
	const pairsPerBatch = 4096
	pairs := make([][2]graph.NodeID, pairsPerBatch)
	for i := range pairs {
		pairs[i] = [2]graph.NodeID{graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n))}
	}
	frame := encodePairsFrame(pairs)
	batchURL := ts.URL + "/distance-batch?graph=road&tau=4&seed=1"
	postBatch := func() {
		resp, err := http.Post(batchURL, "application/x-reprod-pairs", bytes.NewReader(frame))
		fail(err)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fail(fmt.Errorf("%s: status %d", batchURL, resp.StatusCode))
		}
	}
	postBatch() // warm the scratch pools before measuring
	blat := make([]float64, 0, *batches)
	var bsum float64
	for i := 0; i < *batches; i++ {
		q0 := time.Now()
		postBatch()
		micros := float64(time.Since(q0).Nanoseconds()) / 1e3
		blat = append(blat, micros)
		bsum += micros
	}
	sort.Float64s(blat)
	pairsPerSec := float64(pairsPerBatch) * float64(*batches) / (bsum / 1e6)
	// The point path answers one pair per request; its throughput is the
	// reciprocal of the average request latency measured above.
	pointPairsSec := 1e6 / rep.Serve.AvgMicros
	// The pinned guarantee, measured on the same kernel the endpoint calls.
	dists := make([]int64, len(pairs))
	allocs := testing.AllocsPerRun(20, func() {
		or.QueryBatchInto(pairs, dists)
	})
	rep.Batch = BatchBench{
		Batches:        *batches,
		PairsPerBatch:  pairsPerBatch,
		P50Micros:      quantile(blat, 0.50),
		P99Micros:      quantile(blat, 0.99),
		PairsPerSec:    pairsPerSec,
		PointPairsSec:  pointPairsSec,
		SpeedupVsPoint: pairsPerSec / pointPairsSec,
		AllocsPerPair:  allocs / pairsPerBatch,
	}

	// MR diameter pipeline, cold.
	start = time.Now()
	mrRes, err := s.MRDiameter(context.Background(), "mesh", 1, 1)
	fail(err)
	wall = time.Since(start)
	rep.MR = MRBench{
		Graph:           "mesh-60x60",
		Tau:             1,
		Seed:            1,
		WallMillis:      float64(wall.Nanoseconds()) / 1e6,
		Rounds:          mrRes.Rounds,
		PairsShuffled:   mrRes.PairsShuffled,
		MaxReducerInput: mrRes.MaxReducerInput,
		Upper:           mrRes.Upper,
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	fail(err)
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
	} else {
		fail(os.WriteFile(*out, enc, 0o644))
		fmt.Printf("wrote %s: build %.0fms, p50 %.0fµs, p99 %.0fµs, batch %.2gM pairs/s (%.0fx point, %.3g allocs/pair), MR %d rounds / %d pairs\n",
			*out, rep.Oracle.WallMillis, rep.Serve.P50Micros, rep.Serve.P99Micros,
			rep.Batch.PairsPerSec/1e6, rep.Batch.SpeedupVsPoint, rep.Batch.AllocsPerPair,
			rep.MR.Rounds, rep.MR.PairsShuffled)
	}
	if *maxBatchAllocs >= 0 && rep.Batch.AllocsPerPair > *maxBatchAllocs {
		fmt.Fprintf(os.Stderr, "bench: batch kernel measured %g allocs/pair, above the -max-batch-allocs bound %g\n",
			rep.Batch.AllocsPerPair, *maxBatchAllocs)
		os.Exit(1)
	}
}

// encodePairsFrame builds the dense binary request frame /distance-batch
// documents: "RPB1" | count u32 | count × (u i32, v i32), little-endian.
func encodePairsFrame(pairs [][2]graph.NodeID) []byte {
	out := make([]byte, 8+8*len(pairs))
	copy(out, "RPB1")
	binary.LittleEndian.PutUint32(out[4:8], uint32(len(pairs)))
	for i, p := range pairs {
		binary.LittleEndian.PutUint32(out[8+8*i:], uint32(p[0]))
		binary.LittleEndian.PutUint32(out[8+8*i+4:], uint32(p[1]))
	}
	return out
}

// quantile returns the q-quantile of sorted samples (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}
