// Command diameter estimates the diameter of an edge-list graph with the
// paper's clustering-based algorithm and/or the BFS and HADI baselines.
//
// Usage:
//
//	diameter -in graph.txt -algo cluster -tau 64
//	diameter -in graph.txt -algo bfs
//	diameter -in graph.txt -algo hadi -k 32
//	diameter -in graph.txt -algo all
//	diameter -in graph.txt -algo exact      # iFUB ground truth
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/internal/anf"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pbfs"
)

func main() {
	in := flag.String("in", "", "input edge-list file (required)")
	algo := flag.String("algo", "cluster", "cluster | bfs | hadi | exact | all")
	tau := flag.Int("tau", 0, "granularity for cluster (0 = auto)")
	k := flag.Int("k", 32, "FM registers for hadi")
	useCluster2 := flag.Bool("cluster2", false, "use the theory-faithful CLUSTER2 pipeline")
	seed := flag.Uint64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "BSP workers (0 = GOMAXPROCS)")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "missing -in")
		os.Exit(2)
	}
	switch *algo {
	case "cluster", "bfs", "hadi", "exact", "all":
	default:
		// Reject typos loudly: a silent no-op exit for "-algo clutser" reads
		// as success and ships a wrong number downstream.
		fmt.Fprintf(os.Stderr, "unknown -algo %q (want cluster, bfs, hadi, exact or all)\n", *algo)
		os.Exit(2)
	}
	g, err := graph.LoadEdgeList(*in)
	fail(err)
	fmt.Println("graph:", graph.Summarize(g))

	// Ctrl-C cancels the in-flight estimation at its next superstep barrier
	// instead of leaving a multi-second build running to completion. Once
	// the context fires, stop() restores default signal handling, so a
	// second Ctrl-C kills immediately — which also covers the bfs/hadi
	// baselines that are not context-aware.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	want := func(name string) bool { return *algo == "all" || *algo == name }

	if want("cluster") {
		res, err := core.ApproxDiameter(ctx, g, core.DiameterOptions{
			Options:     core.Options{Seed: *seed, Workers: *workers},
			Tau:         *tau,
			UseCluster2: *useCluster2,
		})
		fail(err)
		fmt.Printf("CLUSTER: %d <= diameter <= %d  (quotient nC=%d mC=%d, R=%d, rounds=%d (%d pull), %v)\n",
			res.DeltaC, res.Upper, res.Quotient.NumNodes(), res.Quotient.NumEdges(),
			res.RMax, res.Stats.Rounds, res.Stats.PullRounds, res.Elapsed.Round(time.Millisecond))
	}
	if want("bfs") {
		_, src := g.MaxDegree()
		res, err := pbfs.EstimateDiameter(g, src, *workers)
		fail(err)
		fmt.Printf("BFS:     %d <= diameter <= %d  (rounds=%d (%d pull), arcs=%d, %v)\n",
			res.Lower, res.Upper, res.Stats.Rounds, res.Stats.PullRounds,
			res.Stats.Messages, res.Elapsed.Round(time.Millisecond))
	}
	if want("hadi") {
		res, err := anf.Run(g, anf.Options{K: *k, Seed: *seed, Workers: *workers})
		fail(err)
		fmt.Printf("HADI:    diameter ~= %d, effective(0.9) = %.1f  (rounds=%d, %v)\n",
			res.DiameterEstimate, res.EffectiveDiameter, res.Rounds,
			res.Elapsed.Round(time.Millisecond))
	}
	if want("exact") {
		start := time.Now()
		d, exact, err := g.ExactDiameterContext(ctx, 0)
		fail(err)
		mark := "exact"
		if !exact {
			mark = "lower bound"
		}
		fmt.Printf("iFUB:    diameter = %d (%s, %v)\n", d, mark, time.Since(start).Round(time.Millisecond))
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
