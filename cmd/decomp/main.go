// Command decomp runs a graph decomposition (CLUSTER, CLUSTER2 or the MPX
// baseline) on an edge-list graph and prints clustering statistics.
//
// Usage:
//
//	decomp -in graph.txt -algo cluster -tau 64
//	decomp -in graph.txt -algo cluster2 -tau 64
//	decomp -in graph.txt -algo mpx -beta 0.3
//	decomp -in graph.txt -algo cluster -target 1000   # search tau
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mpx"
	"repro/internal/quotient"
)

func main() {
	in := flag.String("in", "", "input edge-list file (required)")
	algo := flag.String("algo", "cluster", "cluster | cluster2 | mpx")
	tau := flag.Int("tau", 16, "granularity parameter for cluster/cluster2")
	beta := flag.Float64("beta", 0.3, "shift rate for mpx")
	target := flag.Int("target", 0, "if > 0, search the parameter for ~target clusters")
	seed := flag.Uint64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "BSP workers (0 = GOMAXPROCS)")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "missing -in")
		os.Exit(2)
	}
	g, err := graph.LoadEdgeList(*in)
	fail(err)
	fmt.Println("graph:", graph.Summarize(g))

	var cl *core.Clustering
	switch *algo {
	case "cluster", "cluster2":
		opt := core.Options{Seed: *seed, Workers: *workers}
		if *target > 0 {
			var t int
			t, cl, err = core.TauForTargetClusters(g, *target, 0.2, opt)
			fail(err)
			fmt.Printf("searched tau=%d for target %d clusters\n", t, *target)
			*tau = t
		}
		if *algo == "cluster2" {
			cl, err = core.Cluster2(g, *tau, opt)
		} else if cl == nil {
			cl, err = core.Cluster(g, *tau, opt)
		}
		fail(err)
	case "mpx":
		opt := mpx.Options{Beta: *beta, Seed: *seed, Workers: *workers}
		if *target > 0 {
			var b float64
			b, cl, err = mpx.BetaForTargetClusters(g, *target, 0.2, opt)
			fail(err)
			fmt.Printf("searched beta=%.4f for target %d clusters\n", b, *target)
		} else {
			cl, err = mpx.Decompose(g, opt)
			fail(err)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown algo %q\n", *algo)
		os.Exit(2)
	}

	q, err := quotient.Build(g, cl.Owner, cl.NumClusters())
	fail(err)
	sizes := cl.ClusterSizes()
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	fmt.Printf("clusters:      %d\n", cl.NumClusters())
	fmt.Printf("max radius:    %d\n", cl.MaxRadius())
	fmt.Printf("quotient:      nC=%d mC=%d\n", q.NumNodes(), q.NumEdges())
	fmt.Printf("growth rounds: %d\n", cl.GrowthSteps)
	fmt.Printf("messages:      %d\n", cl.Stats.Messages)
	fmt.Printf("largest cluster: %d nodes\n", sizes[0])
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
