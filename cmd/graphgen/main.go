// Command graphgen generates synthetic benchmark graphs and writes them as
// text edge lists.
//
// Usage:
//
//	graphgen -kind mesh -w 1000 -h 1000 -out mesh1000.txt
//	graphgen -kind road -w 500 -h 500 -keep 0.4 -seed 7 -out road.txt
//	graphgen -kind ba -n 100000 -deg 8 -out social.txt
//	graphgen -kind rmat -scale 17 -deg 8 -out rmat.txt
//	graphgen -kind expanderpath -n 100000 -out exp.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/graph"
)

func main() {
	kind := flag.String("kind", "mesh", "mesh | road | ba | rmat | er | expanderpath")
	w := flag.Int("w", 100, "grid width (mesh, road)")
	h := flag.Int("h", 100, "grid height (mesh, road)")
	n := flag.Int("n", 10000, "node count (ba, er, expanderpath)")
	deg := flag.Int("deg", 8, "edges per node (ba, rmat) / avg degree (er)")
	scale := flag.Int("scale", 14, "log2 node count (rmat)")
	keep := flag.Float64("keep", 0.4, "non-tree edge keep fraction (road)")
	seed := flag.Uint64("seed", 1, "random seed")
	out := flag.String("out", "", "output file (default stdout)")
	largestCC := flag.Bool("cc", false, "keep only the largest connected component")
	flag.Parse()

	var g *graph.Graph
	switch *kind {
	case "mesh":
		g = graph.Mesh(*w, *h)
	case "road":
		g = graph.RoadLike(*w, *h, *keep, *seed)
	case "ba":
		g = graph.BarabasiAlbert(*n, *deg, *seed)
	case "rmat":
		g = graph.RMAT(*scale, *deg, *seed)
	case "er":
		g = graph.ErdosRenyi(*n, *n**deg/2, *seed)
	case "expanderpath":
		g = graph.ExpanderPath(*n, 0, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown kind %q\n", *kind)
		os.Exit(2)
	}
	if *largestCC {
		g, _ = g.LargestComponent()
	}
	fmt.Fprintln(os.Stderr, graph.Summarize(g))

	if *out == "" {
		if err := graph.WriteEdgeList(os.Stdout, g); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}
	if err := graph.SaveEdgeList(*out, g); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
