// Command tables regenerates the tables and figures of the paper's
// Section 6 evaluation on the synthetic benchmark suite.
//
// Usage:
//
//	tables -experiment all|table1|table2|table3|table4|figure1|mrmodel \
//	       [-scale 1.0] [-seed 42] [-workers 0]
//
// Scale 1.0 is the default experiment scale (minutes for the full suite);
// the paper's mesh1000 corresponds to -scale 3 on the mesh dataset.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/expt"
)

func main() {
	experiment := flag.String("experiment", "all",
		"which experiment to run: all, table1, table2, table3, table4, figure1, mrmodel, lemma1, pipeline")
	scale := flag.Float64("scale", 1.0, "dataset scale factor (linear dimension)")
	seed := flag.Uint64("seed", 42, "random seed")
	workers := flag.Int("workers", 0, "BSP workers (0 = GOMAXPROCS)")
	flag.Parse()

	cfg := expt.Config{Scale: *scale, Seed: *seed, Workers: *workers}
	want := func(name string) bool {
		return *experiment == "all" || strings.EqualFold(*experiment, name)
	}
	ran := false

	if want("table1") {
		ran = true
		rows, err := expt.Table1(cfg)
		fail(err)
		fmt.Println(expt.FormatTable1(rows))
	}
	if want("table2") {
		ran = true
		rows, err := expt.Table2(cfg)
		fail(err)
		fmt.Println(expt.FormatTable2(rows))
	}
	if want("table3") {
		ran = true
		rows, err := expt.Table3(cfg)
		fail(err)
		fmt.Println(expt.FormatTable3(rows))
	}
	if want("table4") {
		ran = true
		rows, err := expt.Table4(cfg)
		fail(err)
		fmt.Println(expt.FormatTable4(rows))
	}
	if want("figure1") {
		ran = true
		points, err := expt.Figure1(cfg, nil)
		fail(err)
		fmt.Println(expt.FormatFigure1(points))
	}
	if want("mrmodel") {
		ran = true
		rep, err := expt.MRModel(cfg)
		fail(err)
		fmt.Println(expt.FormatMRReport(rep))
	}
	if want("lemma1") {
		ran = true
		points, slope, err := expt.Lemma1Sweep(cfg, 0, nil)
		fail(err)
		fmt.Println(expt.FormatLemma1(points, slope))
	}
	if want("pipeline") {
		ran = true
		rows, err := expt.PipelineAblation(cfg)
		fail(err)
		fmt.Println(expt.FormatPipelineAblation(rows))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
