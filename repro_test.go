package repro_test

import (
	"path/filepath"
	"testing"

	"repro"
)

// Facade-level tests: exercise the whole public API the way a downstream
// user would, end to end.

func TestFacadeClusterPipeline(t *testing.T) {
	g := repro.Mesh(40, 40)
	cl, err := repro.Cluster(g, 8, repro.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cl.NumClusters() < 8 {
		t.Fatalf("too few clusters: %d", cl.NumClusters())
	}
	if err := cl.Validate(); err != nil {
		t.Fatal(err)
	}
	q, err := repro.QuotientGraph(cl)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumNodes() != cl.NumClusters() {
		t.Fatal("quotient size mismatch")
	}
}

func TestFacadeDiameterBracketsTruth(t *testing.T) {
	g := repro.RoadLike(40, 40, 0.4, 3)
	res, err := repro.ApproxDiameter(g, repro.DiameterOptions{Options: repro.Options{Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	truth, _ := g.ExactDiameter(0)
	if res.DeltaC > int64(truth) || res.Upper < int64(truth) {
		t.Fatalf("bounds [%d,%d] miss %d", res.DeltaC, res.Upper, truth)
	}
}

func TestFacadeKCenter(t *testing.T) {
	g := repro.Mesh(25, 25)
	res, err := repro.KCenter(g, 12, repro.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) == 0 || len(res.Centers) > 12 {
		t.Fatalf("%d centers", len(res.Centers))
	}
	_, base, err := repro.GonzalezKCenter(g, 12, 0)
	if err != nil {
		t.Fatal(err)
	}
	if base <= 0 || res.Radius <= 0 {
		t.Fatal("degenerate radii")
	}
}

func TestFacadeBaselines(t *testing.T) {
	g := repro.BarabasiAlbert(2000, 4, 4)
	cl, err := repro.MPXDecompose(g, repro.MPXOptions{Beta: 0.5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Validate(); err != nil {
		t.Fatal(err)
	}
	bfs, err := repro.BFSDiameter(g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	hadi, err := repro.ANFDiameter(g, repro.ANFOptions{K: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	truth, _ := g.ExactDiameter(0)
	if bfs.Upper < truth {
		t.Fatalf("BFS upper %d < ∆ %d", bfs.Upper, truth)
	}
	if hadi.DiameterEstimate > truth {
		t.Fatalf("HADI estimate %d > ∆ %d", hadi.DiameterEstimate, truth)
	}
}

func TestFacadeOracle(t *testing.T) {
	g := repro.Mesh(20, 20)
	o, err := repro.BuildOracle(g, 2, false, repro.Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	d := g.BFS(0)
	if est := o.Query(0, 399); est < int64(d[399]) {
		t.Fatalf("oracle %d below truth %d", est, d[399])
	}
}

func TestFacadeGraphIO(t *testing.T) {
	g := repro.Cycle(20)
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := repro.SaveEdgeList(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := repro.LoadEdgeList(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 20 {
		t.Fatal("round trip lost edges")
	}
}

func TestFacadeBuilderAndEdges(t *testing.T) {
	b := repro.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	if g.NumEdges() != 2 {
		t.Fatal("builder failed")
	}
	g2 := repro.FromEdges(3, [][2]repro.NodeID{{0, 1}, {1, 2}})
	if g2.NumEdges() != 2 {
		t.Fatal("FromEdges failed")
	}
}

func TestFacadeCluster2(t *testing.T) {
	g := repro.Mesh(20, 20)
	cl, err := repro.Cluster2(g, 4, repro.Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeWeightedExtension(t *testing.T) {
	g := repro.Mesh(15, 15)
	edges := g.EdgeList()
	ws := make([]int32, len(edges))
	for i := range ws {
		ws[i] = int32(1 + i%5)
	}
	wg, err := repro.NewWeighted(g.NumNodes(), edges, ws)
	if err != nil {
		t.Fatal(err)
	}
	wc, err := repro.WeightedCluster(wg, 4, repro.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := wc.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := repro.ApproxDiameterWeighted(wg, 4, repro.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	truth, _ := wg.ExactDiameterWeighted(0)
	if res.Upper < truth {
		t.Fatalf("weighted upper %d below true %d", res.Upper, truth)
	}
}

func TestFacadeExperimentsSmoke(t *testing.T) {
	cfg := repro.ExperimentConfig{Scale: 0.12, Seed: 1}
	rows, err := repro.Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no table 1 rows")
	}
	_ = repro.FormatTable1(rows)
}
