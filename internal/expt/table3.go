package expt

import (
	"repro/internal/core"
	"repro/internal/graph"
)

// GranularityResult is one clustering granularity's diameter approximation.
type GranularityResult struct {
	NC         int   // quotient nodes
	MC         int   // quotient edges
	DeltaPrime int64 // the reported upper estimate (∆″ of Section 4)
	DeltaC     int64 // quotient hop diameter, the certified lower bound
}

// Table3Row reports the diameter approximation at a coarser and a finer
// granularity, plus the true diameter, like the paper's Table 3.
type Table3Row struct {
	Dataset   string
	Coarser   GranularityResult
	Finer     GranularityResult
	TrueDiam  int64
	DiamExact bool
}

// Table3 reproduces the diameter-approximation quality experiment.
func Table3(cfg Config) ([]Table3Row, error) {
	var rows []Table3Row
	for _, d := range Datasets() {
		g := d.Build(cfg.scale())
		row, err := Table3ForGraph(cfg, d.Name, g, granularityTarget(d, g.NumNodes()))
		if err != nil {
			return nil, err
		}
		// Replace the budgeted estimate with the memoized certified truth.
		truth, exact := TrueDiameter(d, cfg.scale(), g)
		row.TrueDiam, row.DiamExact = int64(truth), exact
		rows = append(rows, *row)
	}
	return rows, nil
}

// Table3ForGraph runs the coarser/finer comparison on one graph. fineTarget
// is the finer granularity's cluster-count target; the coarser granularity
// uses a quarter of it (mirroring the paper's roughly 3-4x coarser runs).
func Table3ForGraph(cfg Config, name string, g *graph.Graph, fineTarget int) (*Table3Row, error) {
	coarseTarget := fineTarget / 4
	if coarseTarget < 12 {
		coarseTarget = 12
	}
	run := func(target int, seedShift uint64) (GranularityResult, error) {
		opt := core.Options{Seed: cfg.Seed + seedShift, Workers: cfg.Workers}
		_, cl, err := core.TauForTargetClusters(g, target, 0.25, opt)
		if err != nil {
			return GranularityResult{}, err
		}
		res, err := core.DiameterFromClustering(cl, 0)
		if err != nil {
			return GranularityResult{}, err
		}
		return GranularityResult{
			NC:         res.Quotient.NumNodes(),
			MC:         res.Quotient.NumEdges(),
			DeltaPrime: res.Upper,
			DeltaC:     res.DeltaC,
		}, nil
	}
	coarse, err := run(coarseTarget, 0)
	if err != nil {
		return nil, err
	}
	fine, err := run(fineTarget, 7)
	if err != nil {
		return nil, err
	}
	truth, exact := g.ExactDiameter(4 * 1024)
	return &Table3Row{
		Dataset:   name,
		Coarser:   coarse,
		Finer:     fine,
		TrueDiam:  int64(truth),
		DiamExact: exact,
	}, nil
}
