package expt

import (
	"strings"
	"testing"
)

// testCfg is small enough that the whole experiment suite runs in seconds.
var testCfg = Config{Scale: 0.18, Seed: 42}

func TestDatasetsBuildConnected(t *testing.T) {
	for _, d := range Datasets() {
		g := d.Build(testCfg.scale())
		if g.NumNodes() < 400 {
			t.Errorf("%s: only %d nodes at test scale", d.Name, g.NumNodes())
		}
		if !g.IsConnected() {
			t.Errorf("%s: not connected", d.Name)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}

func TestDatasetByName(t *testing.T) {
	if _, err := DatasetByName("mesh"); err != nil {
		t.Fatal(err)
	}
	if _, err := DatasetByName("nope"); err == nil {
		t.Fatal("unknown dataset should fail")
	}
}

func TestDatasetShapesMatchPaperRegimes(t *testing.T) {
	// Social datasets must have small diameters, road/mesh ones large
	// (relative to node count).
	for _, d := range Datasets() {
		g := d.Build(testCfg.scale())
		_, lb := g.TwoSweep(0)
		if d.LongDiameter {
			if int(lb)*int(lb) < g.NumNodes()/4 {
				t.Errorf("%s: diameter >= %d too small for a long-diameter dataset (n=%d)",
					d.Name, lb, g.NumNodes())
			}
		} else {
			if int(lb) > 30 {
				t.Errorf("%s: diameter >= %d too large for a social dataset", d.Name, lb)
			}
		}
	}
}

func TestTable1(t *testing.T) {
	rows, err := Table1(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Datasets()) {
		t.Fatalf("got %d rows", len(rows))
	}
	text := FormatTable1(rows)
	if !strings.Contains(text, "mesh") || !strings.Contains(text, "diameter") {
		t.Fatal("rendering incomplete")
	}
}

func TestTable2ShapeClusterRadiusWins(t *testing.T) {
	rows, err := Table2(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Datasets()) {
		t.Fatalf("got %d rows", len(rows))
	}
	longWins := 0
	longTotal := 0
	for _, r := range rows {
		d, _ := DatasetByName(r.Dataset)
		// Granularities must be comparable: MPX within a factor 2 of
		// CLUSTER's count.
		if r.MPXNC < r.ClusterNC/2 || r.MPXNC > 2*r.ClusterNC {
			t.Errorf("%s: granularity mismatch %d vs %d", r.Dataset, r.ClusterNC, r.MPXNC)
		}
		if d.LongDiameter {
			longTotal++
			if r.ClusterR < r.MPXR {
				longWins++
			}
		}
	}
	// The paper's headline: CLUSTER's max radius beats MPX's on
	// long-diameter graphs (Table 2 shows roughly 2x). Require a win on
	// every long-diameter dataset.
	if longWins < longTotal {
		t.Errorf("CLUSTER radius beat MPX on only %d/%d long-diameter datasets", longWins, longTotal)
	}
	_ = FormatTable2(rows)
}

func TestTable3ShapeApproximationQuality(t *testing.T) {
	rows, err := Table3(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.DiamExact {
			t.Errorf("%s: true diameter not certified at test scale", r.Dataset)
			continue
		}
		d, _ := DatasetByName(r.Dataset)
		// Paper: ∆'/∆ < 2 on every dataset at full scale. The additive
		// 2R term weighs more on the tiny test instances, especially for
		// single-digit-diameter social graphs, so allow 2.5 (long diameter)
		// and 3.5 (social) here; the full-scale ratios are recorded in
		// EXPERIMENTS.md.
		maxRatio := 3.5
		if d.LongDiameter {
			maxRatio = 2.5
		}
		for _, gr := range []GranularityResult{r.Coarser, r.Finer} {
			if gr.DeltaPrime < r.TrueDiam {
				t.Errorf("%s: ∆'=%d below true %d", r.Dataset, gr.DeltaPrime, r.TrueDiam)
			}
			if float64(gr.DeltaPrime) >= maxRatio*float64(r.TrueDiam) {
				t.Errorf("%s: ∆'/∆ = %.2f too large", r.Dataset,
					float64(gr.DeltaPrime)/float64(r.TrueDiam))
			}
			if gr.DeltaC > r.TrueDiam {
				t.Errorf("%s: lower bound %d above true %d", r.Dataset, gr.DeltaC, r.TrueDiam)
			}
		}
	}
	_ = FormatTable3(rows)
}

func TestTable4ShapeRoundAdvantage(t *testing.T) {
	rows, err := Table4(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		d, _ := DatasetByName(r.Dataset)
		// BFS upper bound and CLUSTER upper bound must both dominate ∆;
		// HADI must not overshoot it.
		if r.BFS.Estimate < r.TrueDiam {
			t.Errorf("%s: BFS estimate %d below ∆=%d", r.Dataset, r.BFS.Estimate, r.TrueDiam)
		}
		if r.Cluster.Estimate < r.TrueDiam {
			t.Errorf("%s: CLUSTER estimate %d below ∆=%d", r.Dataset, r.Cluster.Estimate, r.TrueDiam)
		}
		if r.HADI.Estimate > r.TrueDiam {
			t.Errorf("%s: HADI estimate %d above ∆=%d", r.Dataset, r.HADI.Estimate, r.TrueDiam)
		}
		// The paper's headline: on long-diameter graphs CLUSTER needs far
		// fewer rounds than the Θ(∆)-round competitors.
		if d.LongDiameter {
			if r.Cluster.Rounds*2 >= r.BFS.Rounds {
				t.Errorf("%s: CLUSTER rounds %d not well below BFS rounds %d",
					r.Dataset, r.Cluster.Rounds, r.BFS.Rounds)
			}
			if r.Cluster.Rounds*2 >= r.HADI.Rounds {
				t.Errorf("%s: CLUSTER rounds %d not well below HADI rounds %d",
					r.Dataset, r.Cluster.Rounds, r.HADI.Rounds)
			}
		}
		// HADI moves K registers per arc per round: its message volume must
		// dwarf BFS's aggregate-linear volume.
		if r.HADI.Messages <= 4*r.BFS.Messages {
			t.Errorf("%s: HADI volume %d not >> BFS volume %d", r.Dataset, r.HADI.Messages, r.BFS.Messages)
		}
	}
	_ = FormatTable4(rows)
}

func TestFigure1ShapeFlatVsLinear(t *testing.T) {
	points, err := Figure1(testCfg, []int{0, 4, 10})
	if err != nil {
		t.Fatal(err)
	}
	byDataset := map[string][]Figure1Point{}
	for _, p := range points {
		byDataset[p.Dataset] = append(byDataset[p.Dataset], p)
	}
	for name, ps := range byDataset {
		if len(ps) != 3 {
			t.Fatalf("%s: %d points", name, len(ps))
		}
		base, last := ps[0], ps[2]
		// BFS rounds grow linearly with the tail (> 5x at c=10); CLUSTER
		// rounds stay within a small factor of the baseline.
		if last.BFSRounds < 5*base.BFSRounds {
			t.Errorf("%s: BFS rounds %d -> %d did not grow with the tail",
				name, base.BFSRounds, last.BFSRounds)
		}
		if last.ClusterRounds > 6*base.ClusterRounds+20 {
			t.Errorf("%s: CLUSTER rounds %d -> %d grew with the tail",
				name, base.ClusterRounds, last.ClusterRounds)
		}
	}
	_ = FormatFigure1(points)
}

func TestMRModelReport(t *testing.T) {
	rep, err := MRModel(Config{Scale: 0.4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DiameterMR != rep.DiameterRef {
		t.Fatalf("MR diameter %d != reference %d", rep.DiameterMR, rep.DiameterRef)
	}
	if rep.GrowRounds > rep.GrowSteps+1 {
		t.Fatalf("growth used %d rounds for %d steps — not O(1) rounds/step",
			rep.GrowRounds, rep.GrowSteps)
	}
	if rep.Shards < 1 {
		t.Fatalf("report missing shard count: %d", rep.Shards)
	}
	if rep.GrowShuffled <= 0 || rep.SquaringShuffled <= 0 {
		t.Fatalf("report missing shuffle volume: grow=%d squaring=%d",
			rep.GrowShuffled, rep.SquaringShuffled)
	}
	if len(rep.GrowRoundStats) != rep.GrowRounds {
		t.Fatalf("%d growth round stats for %d rounds", len(rep.GrowRoundStats), rep.GrowRounds)
	}
	if len(rep.SquaringRoundStats) != rep.SquaringRounds {
		t.Fatalf("%d squaring round stats for %d rounds", len(rep.SquaringRoundStats), rep.SquaringRounds)
	}
	var sum int64
	for _, rs := range rep.SquaringRoundStats {
		sum += rs.PairsIn
	}
	if sum != rep.SquaringShuffled {
		t.Fatalf("squaring round stats sum %d != total shuffled %d", sum, rep.SquaringShuffled)
	}
	text := FormatMRReport(rep)
	if !strings.Contains(text, "repeated squaring") {
		t.Fatal("report rendering incomplete")
	}
	if !strings.Contains(text, "pairs shuffled") {
		t.Fatal("report rendering missing shuffle accounting")
	}
}

// The MR pipeline report must be invariant under the Workers knob, which
// now drives the engine's reducer shard count.
func TestMRModelShardInvariant(t *testing.T) {
	base, err := MRModel(Config{Scale: 0.3, Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := MRModel(Config{Scale: 0.3, Seed: 7, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if base.GrowRounds != wide.GrowRounds || base.GrowShuffled != wide.GrowShuffled ||
		base.MaxReducerIn != wide.MaxReducerIn ||
		base.SquaringRounds != wide.SquaringRounds ||
		base.SquaringShuffled != wide.SquaringShuffled ||
		base.DiameterMR != wide.DiameterMR {
		t.Fatalf("MR accounting differs across worker counts:\n1: %+v\n8: %+v", base, wide)
	}
}

func TestGranularityTargetClamp(t *testing.T) {
	d := Dataset{LongDiameter: true}
	if granularityTarget(d, 100) != 24 {
		t.Fatal("clamp failed")
	}
	if granularityTarget(d, 100000) != 1000 {
		t.Fatal("long-diameter target should be n/100")
	}
	if granularityTarget(Dataset{}, 100000) != 100 {
		t.Fatal("short-diameter target should be n/1000")
	}
}
