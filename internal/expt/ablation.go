package expt

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
)

// Ablation experiments for the design choices DESIGN.md calls out: the
// Lemma 1 radius/granularity law, and the practical CLUSTER-vs-CLUSTER2
// simplification the paper's experiments adopt (Section 6.2).

// Lemma1Point is one (τ, radius, rounds) measurement.
type Lemma1Point struct {
	Tau    int
	Radius int32
	Rounds int
}

// Lemma1Sweep measures the maximum cluster radius as a function of τ on a
// mesh (doubling dimension b = 2) and returns the points plus the fitted
// log-log slope. Lemma 1 predicts R_ALG = O((∆/τ^(1/b))·log n), i.e. a
// slope near -1/2 on a mesh; the harness exposes the fit so tests and
// reports can check the law empirically.
func Lemma1Sweep(cfg Config, side int, taus []int) ([]Lemma1Point, float64, error) {
	if side <= 0 {
		side = dim(180, cfg.scale())
	}
	if len(taus) == 0 {
		taus = []int{1, 2, 4, 8, 16, 32, 64}
	}
	g := graph.Mesh(side, side)
	var points []Lemma1Point
	var xs, ys []float64
	for _, tau := range taus {
		cl, err := core.Cluster(g, tau, core.Options{Seed: cfg.Seed, Workers: cfg.Workers})
		if err != nil {
			return nil, 0, err
		}
		r := cl.MaxRadius()
		points = append(points, Lemma1Point{Tau: tau, Radius: r, Rounds: cl.GrowthSteps})
		if r > 0 {
			xs = append(xs, math.Log(float64(tau)))
			ys = append(ys, math.Log(float64(r)))
		}
	}
	return points, fitSlope(xs, ys), nil
}

// fitSlope returns the least-squares slope of y against x.
func fitSlope(xs, ys []float64) float64 {
	n := float64(len(xs))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / denom
}

// FormatLemma1 renders the sweep.
func FormatLemma1(points []Lemma1Point, slope float64) string {
	var out [][]string
	for _, p := range points {
		out = append(out, []string{
			fmt.Sprint(p.Tau), fmt.Sprint(p.Radius), fmt.Sprint(p.Rounds),
		})
	}
	return fmt.Sprintf("Lemma 1 sweep on a mesh (b=2): fitted log-log slope %.2f (theory: -1/2)\n", slope) +
		renderTable([]string{"tau", "max radius", "rounds"}, out)
}

// PipelineRow compares the CLUSTER and CLUSTER2 diameter pipelines on one
// dataset: the paper's experiments use CLUSTER "for efficiency" (§6.2);
// this ablation quantifies what that simplification saves and costs.
type PipelineRow struct {
	Dataset string

	ClusterUpper  int64
	ClusterRounds int
	ClusterNC     int

	Cluster2Upper  int64
	Cluster2Rounds int
	Cluster2NC     int

	TrueDiam int64
}

// PipelineAblation runs both pipelines on the long-diameter datasets.
func PipelineAblation(cfg Config) ([]PipelineRow, error) {
	var rows []PipelineRow
	for _, d := range Datasets() {
		if !d.LongDiameter {
			continue
		}
		g := d.Build(cfg.scale())
		truth, _ := TrueDiameter(d, cfg.scale(), g)
		tau := 4
		//lint:allow background batch experiment driver: the cmd/tables process lifetime is the context
		r1, err := core.ApproxDiameter(context.Background(), g, core.DiameterOptions{
			Options: core.Options{Seed: cfg.Seed, Workers: cfg.Workers}, Tau: tau,
		})
		if err != nil {
			return nil, err
		}
		//lint:allow background batch experiment driver: the cmd/tables process lifetime is the context
		r2, err := core.ApproxDiameter(context.Background(), g, core.DiameterOptions{
			Options: core.Options{Seed: cfg.Seed, Workers: cfg.Workers}, Tau: tau,
			UseCluster2: true,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, PipelineRow{
			Dataset:        d.Name,
			ClusterUpper:   r1.Upper,
			ClusterRounds:  r1.Stats.Rounds,
			ClusterNC:      r1.Quotient.NumNodes(),
			Cluster2Upper:  r2.Upper,
			Cluster2Rounds: r2.Stats.Rounds,
			Cluster2NC:     r2.Quotient.NumNodes(),
			TrueDiam:       int64(truth),
		})
	}
	return rows, nil
}

// FormatPipelineAblation renders the comparison.
func FormatPipelineAblation(rows []PipelineRow) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Dataset,
			fmt.Sprintf("%d (%d rounds, %d nC)", r.ClusterUpper, r.ClusterRounds, r.ClusterNC),
			fmt.Sprintf("%d (%d rounds, %d nC)", r.Cluster2Upper, r.Cluster2Rounds, r.Cluster2NC),
			fmt.Sprint(r.TrueDiam),
		})
	}
	var b strings.Builder
	b.WriteString("Pipeline ablation: CLUSTER (paper's experimental simplification) vs CLUSTER2 (theory-faithful)\n")
	b.WriteString(renderTable([]string{"dataset", "CLUSTER ∆'", "CLUSTER2 ∆'", "∆"}, out))
	return b.String()
}
