package expt

import (
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mpx"
	"repro/internal/quotient"
)

// Table2Row compares CLUSTER against MPX on one dataset at matched
// granularity: nC and mC are the nodes/edges of the quotient graph, r the
// maximum cluster radius. As in the paper, MPX is granted a comparable but
// slightly larger number of clusters (a conservative handicap in CLUSTER's
// favor would be the opposite, so matching the paper keeps the comparison
// honest).
type Table2Row struct {
	Dataset string

	ClusterNC int
	ClusterMC int
	ClusterR  int32

	MPXNC int
	MPXMC int
	MPXR  int32
}

// Table2 reproduces the clustering-quality comparison of the paper's
// Table 2 on every dataset.
func Table2(cfg Config) ([]Table2Row, error) {
	var rows []Table2Row
	for _, d := range Datasets() {
		g := d.Build(cfg.scale())
		row, err := Table2ForGraph(cfg, d.Name, g, granularityTarget(d, g.NumNodes()))
		if err != nil {
			return nil, err
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

// Table2ForGraph runs the CLUSTER-vs-MPX comparison on a single graph with
// the given cluster-count target.
func Table2ForGraph(cfg Config, name string, g *graph.Graph, target int) (*Table2Row, error) {
	opt := core.Options{Seed: cfg.Seed, Workers: cfg.Workers}
	_, cl, err := core.TauForTargetClusters(g, target, 0.2, opt)
	if err != nil {
		return nil, err
	}
	qc, err := quotient.Build(g, cl.Owner, cl.NumClusters())
	if err != nil {
		return nil, err
	}

	// MPX gets a slightly larger cluster budget, as in the paper.
	mpxTarget := cl.NumClusters() + cl.NumClusters()/20
	_, mcl, err := mpx.BetaForTargetClusters(g, mpxTarget, 0.2,
		mpx.Options{Seed: cfg.Seed + 1, Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}
	qm, err := quotient.Build(g, mcl.Owner, mcl.NumClusters())
	if err != nil {
		return nil, err
	}

	return &Table2Row{
		Dataset:   name,
		ClusterNC: cl.NumClusters(),
		ClusterMC: qc.NumEdges(),
		ClusterR:  cl.MaxRadius(),
		MPXNC:     mcl.NumClusters(),
		MPXMC:     qm.NumEdges(),
		MPXR:      mcl.MaxRadius(),
	}, nil
}
