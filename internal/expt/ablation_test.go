package expt

import (
	"math"
	"strings"
	"testing"
)

func TestLemma1SweepSlope(t *testing.T) {
	// Lemma 1 with b = 2 predicts radius ∝ τ^(-1/2) (up to the log n
	// factor, which is constant across the sweep). Accept a generous band
	// around -0.5.
	points, slope, err := Lemma1Sweep(Config{Seed: 3}, 70, []int{1, 4, 16, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("got %d points", len(points))
	}
	if slope > -0.25 || slope < -0.85 {
		t.Fatalf("fitted slope %.2f outside [-0.85, -0.25] (theory -0.5)", slope)
	}
	// Radii must be non-increasing in τ.
	for i := 1; i < len(points); i++ {
		if points[i].Radius > points[i-1].Radius {
			t.Fatalf("radius increased from τ=%d to τ=%d", points[i-1].Tau, points[i].Tau)
		}
	}
	text := FormatLemma1(points, slope)
	if !strings.Contains(text, "Lemma 1") {
		t.Fatal("rendering incomplete")
	}
}

func TestFitSlope(t *testing.T) {
	// y = 3 - 0.5x exactly.
	xs := []float64{0, 1, 2, 3}
	ys := []float64{3, 2.5, 2, 1.5}
	if s := fitSlope(xs, ys); math.Abs(s+0.5) > 1e-12 {
		t.Fatalf("slope %v want -0.5", s)
	}
	if fitSlope(nil, nil) != 0 {
		t.Fatal("degenerate fit should be 0")
	}
}

func TestPipelineAblation(t *testing.T) {
	rows, err := PipelineAblation(Config{Scale: 0.15, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no long-diameter datasets?")
	}
	for _, r := range rows {
		// Both pipelines must upper-bound the truth.
		if r.ClusterUpper < r.TrueDiam || r.Cluster2Upper < r.TrueDiam {
			t.Errorf("%s: upper bounds [%d, %d] below ∆=%d",
				r.Dataset, r.ClusterUpper, r.Cluster2Upper, r.TrueDiam)
		}
	}
	text := FormatPipelineAblation(rows)
	if !strings.Contains(text, "CLUSTER2") {
		t.Fatal("rendering incomplete")
	}
}
