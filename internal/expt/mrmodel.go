package expt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mr"
	"repro/internal/quotient"
	"repro/internal/spanner"
)

// MRReport validates the Section 5 analysis on the MR(MG, ML) simulator:
// cluster-growing steps cost O(1) rounds each (Lemma 3), and the quotient
// diameter is computable by repeated min-plus squaring within the local
// memory budget (Theorem 4, Fact 2 path), with Baswana–Sen sparsification
// available when the quotient exceeds ML.
type MRReport struct {
	GraphNodes       int
	GraphEdges       int
	Shards           int // reducer shards both engines ran with
	GrowSteps        int
	GrowRounds       int
	GrowShuffled     int64 // pairs moved across all growth rounds
	MaxReducerIn     int
	QuotientNodes    int
	QuotientEdges    int
	SpannerEdges     int // after sparsification (0 if not needed)
	SquaringRounds   int
	SquaringShuffled int64 // pairs moved across all squaring rounds
	DiameterMR       int64 // weighted quotient diameter via repeated squaring
	DiameterRef      int64 // same, via the delta-stepping iFUB (reference)
	// GrowRoundStats and SquaringRoundStats are the engines' per-round
	// execution profiles (pairs in/out, shards, wall-clock).
	GrowRoundStats     []mr.RoundStat
	SquaringRoundStats []mr.RoundStat
}

// MRModel runs the end-to-end MR pipeline on a mesh dataset scaled by cfg.
func MRModel(cfg Config) (*MRReport, error) {
	d := dim(64, cfg.scale())
	g := graph.Mesh(d, d)

	// Cluster on the shared-memory engine (the MR growth demo below uses
	// the same step structure), then derive the quotient. The quotient is
	// kept small: repeated squaring emits Θ(ℓ³) pairs per multiplication,
	// which is exactly why Theorem 4 sizes it against MG·√ML.
	opt := core.Options{Seed: cfg.Seed, Workers: cfg.Workers}
	_, cl, err := core.TauForTargetClusters(g, 40, 0.5, opt)
	if err != nil {
		return nil, err
	}
	_, wq, err := quotient.BuildWeighted(g, cl.Owner, cl.Dist, cl.NumClusters())
	if err != nil {
		return nil, err
	}

	report := &MRReport{
		GraphNodes:    g.NumNodes(),
		GraphEdges:    g.NumEdges(),
		QuotientNodes: wq.NumNodes(),
		QuotientEdges: wq.NumEdges(),
	}

	// Lemma 3 validation: run multi-source growth from the same centers on
	// the MR engine, one round per step. The engine shards its reducers
	// Workers-wide; outputs and round counts are shard-count invariant.
	ml := int64(g.NumNodes()) // ML = Θ(n^ε) stand-in large enough for groups
	eng := mr.NewEngine(mr.Config{ML: ml, Shards: cfg.Workers})
	defer eng.Close()
	state := mr.NewGrowState(g.NumNodes(), cl.Centers)
	steps, err := eng.Grow(g, state)
	if err != nil {
		return nil, err
	}
	report.Shards = eng.Shards()
	report.GrowSteps = steps
	report.GrowRounds = eng.Rounds()
	report.GrowShuffled = eng.TotalShuffled()
	report.MaxReducerIn = eng.MaxReducerInput()
	report.GrowRoundStats = eng.RoundStats()

	// Theorem 4: if the quotient exceeds the (illustrative) local memory,
	// sparsify it with a 3-spanner first.
	wqForDiam := wq
	if int64(wq.NumEdges()) > ml {
		sp, err := spanner.BaswanaSen(wq, 2, cfg.Seed)
		if err != nil {
			return nil, err
		}
		report.SpannerEdges = sp.NumEdges()
		wqForDiam = sp
	}

	eng2 := mr.NewEngine(mr.Config{Shards: cfg.Workers})
	defer eng2.Close()
	diamMR, err := eng2.DiameterByRepeatedSquaring(wqForDiam)
	if err != nil {
		return nil, err
	}
	report.SquaringRounds = eng2.Rounds()
	report.SquaringShuffled = eng2.TotalShuffled()
	report.SquaringRoundStats = eng2.RoundStats()
	report.DiameterMR = diamMR
	ref, exact := wqForDiam.ExactDiameterWeighted(0)
	if !exact {
		// An inexact reference is a lower bound, not a diameter: comparing
		// the MR result against it would report a spurious (dis)agreement.
		return nil, fmt.Errorf("expt: reference weighted diameter did not converge (iFUB search budget exhausted at %d)", ref)
	}
	report.DiameterRef = ref
	if diamMR != ref {
		return nil, fmt.Errorf("expt: MR diameter %d disagrees with reference %d", diamMR, ref)
	}
	return report, nil
}
