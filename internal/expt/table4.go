package expt

import (
	"context"
	"time"

	"repro/internal/anf"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pbfs"
)

// AlgoCost summarizes one estimator's run: its diameter estimate, the
// wall-clock time, the number of BSP/communication rounds, and the
// aggregate message volume (in edge-message units; for HADI each register
// word counts once, matching its K-fold larger per-round traffic).
type AlgoCost struct {
	Estimate int64
	Elapsed  time.Duration
	Rounds   int
	Messages int64
	// Model is the modeled cluster time (see CostModel): per-round latency
	// plus transfer volume, derived from Rounds and Messages.
	Model time.Duration
}

// Table4Row compares the three diameter estimators on one dataset.
type Table4Row struct {
	Dataset  string
	TrueDiam int64
	Cluster  AlgoCost
	BFS      AlgoCost
	HADI     AlgoCost
}

// ANFRegisters is the sketch width used for the HADI baseline.
const ANFRegisters = 32

// Table4 reproduces the running-time/estimate comparison of the paper's
// Table 4: CLUSTER-based estimation vs parallel BFS vs HADI.
func Table4(cfg Config) ([]Table4Row, error) {
	var rows []Table4Row
	for _, d := range Datasets() {
		g := d.Build(cfg.scale())
		row, err := Table4ForGraph(cfg, d.Name, g, granularityTarget(d, g.NumNodes()))
		if err != nil {
			return nil, err
		}
		truth, _ := TrueDiameter(d, cfg.scale(), g)
		row.TrueDiam = int64(truth)
		rows = append(rows, *row)
	}
	return rows, nil
}

// Table4ForGraph runs all three estimators on one graph.
func Table4ForGraph(cfg Config, name string, g *graph.Graph, target int) (*Table4Row, error) {
	row := &Table4Row{Dataset: name}
	truth, _ := g.ExactDiameter(4 * 1024)
	row.TrueDiam = int64(truth)

	cc, err := ClusterCost(cfg, g, target)
	if err != nil {
		return nil, err
	}
	row.Cluster = *cc

	bc, err := BFSCost(cfg, g)
	if err != nil {
		return nil, err
	}
	row.BFS = *bc

	hc, err := HADICost(cfg, g)
	if err != nil {
		return nil, err
	}
	row.HADI = *hc
	return row, nil
}

// ClusterCost runs the decomposition-based estimator at the granularity
// that yields about `target` clusters (the τ search is excluded from the
// timing, mirroring the paper's use of pre-tuned parameters).
func ClusterCost(cfg Config, g *graph.Graph, target int) (*AlgoCost, error) {
	opt := core.Options{Seed: cfg.Seed, Workers: cfg.Workers}
	tau, _, err := core.TauForTargetClusters(g, target, 0.25, opt)
	if err != nil {
		return nil, err
	}
	//lint:allow background batch experiment driver: the cmd/tables process lifetime is the context
	res, err := core.ApproxDiameter(context.Background(), g, core.DiameterOptions{Options: opt, Tau: tau})
	if err != nil {
		return nil, err
	}
	return &AlgoCost{
		Estimate: res.Upper,
		Elapsed:  res.Elapsed,
		Rounds:   res.Stats.Rounds,
		Messages: res.Stats.Messages,
		Model:    DefaultCostModel.Time(res.Stats.Rounds, res.Stats.Messages),
	}, nil
}

// BFSCost runs the BFS competitor: a single parallel BFS from the
// max-degree node reporting 2·ecc, as in the paper's Table 4.
func BFSCost(cfg Config, g *graph.Graph) (*AlgoCost, error) {
	_, src := g.MaxDegree()
	res, err := pbfs.EstimateDiameter(g, src, cfg.Workers)
	if err != nil {
		return nil, err
	}
	return &AlgoCost{
		Estimate: int64(res.Upper),
		Elapsed:  res.Elapsed,
		Rounds:   res.Stats.Rounds,
		Messages: res.Stats.Messages,
		Model:    DefaultCostModel.Time(res.Stats.Rounds, res.Stats.Messages),
	}, nil
}

// HADICost runs the ANF/HADI competitor.
func HADICost(cfg Config, g *graph.Graph) (*AlgoCost, error) {
	res, err := anf.Run(g, anf.Options{
		K:       ANFRegisters,
		Seed:    cfg.Seed,
		Workers: cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	return &AlgoCost{
		Estimate: int64(res.DiameterEstimate),
		Elapsed:  res.Elapsed,
		Rounds:   res.Rounds,
		Messages: res.MessagesWords,
		Model:    DefaultCostModel.Time(res.Rounds, res.MessagesWords),
	}, nil
}
