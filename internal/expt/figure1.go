package expt

import (
	"time"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Figure1Point is one measurement of the tail experiment: a chain of
// c·∆ extra nodes is appended to a random node of a small-diameter graph,
// inflating the diameter by a factor of about c+1 without changing the
// base structure, and both estimators are timed.
type Figure1Point struct {
	Dataset       string
	C             int
	TailLen       int
	ClusterTime   time.Duration
	ClusterModel  time.Duration
	ClusterRounds int
	BFSTime       time.Duration
	BFSModel      time.Duration
	BFSRounds     int
}

// DefaultTailFactors are the c values of the paper's Figure 1 (plus c=0 as
// the unmodified baseline).
var DefaultTailFactors = []int{0, 1, 2, 4, 6, 8, 10}

// Figure1 reproduces the tail experiment on the two social datasets.
func Figure1(cfg Config, factors []int) ([]Figure1Point, error) {
	if len(factors) == 0 {
		factors = DefaultTailFactors
	}
	var points []Figure1Point
	for _, name := range []string{"ba-social", "rmat-social"} {
		d, err := DatasetByName(name)
		if err != nil {
			return nil, err
		}
		base := d.Build(cfg.scale())
		ps, err := Figure1ForGraph(cfg, name, base, factors)
		if err != nil {
			return nil, err
		}
		points = append(points, ps...)
	}
	return points, nil
}

// Figure1ForGraph runs the tail experiment for one base graph.
func Figure1ForGraph(cfg Config, name string, base *graph.Graph, factors []int) ([]Figure1Point, error) {
	// The tail unit is the base diameter, as in the paper; the two-sweep
	// lower bound is tight on social graphs and cheap.
	_, baseDiam := base.TwoSweep(0)
	if baseDiam < 1 {
		baseDiam = 1
	}
	anchor := graph.NodeID(rng.New(cfg.Seed ^ 0xf19).Intn(base.NumNodes()))
	target := granularityTarget(Dataset{}, base.NumNodes())

	var points []Figure1Point
	for _, c := range factors {
		g := base
		tail := c * int(baseDiam)
		if tail > 0 {
			g = graph.AppendTail(base, anchor, tail)
		}
		cc, err := ClusterCost(cfg, g, target)
		if err != nil {
			return nil, err
		}
		bc, err := BFSCost(cfg, g)
		if err != nil {
			return nil, err
		}
		points = append(points, Figure1Point{
			Dataset:       name,
			C:             c,
			TailLen:       tail,
			ClusterTime:   cc.Elapsed,
			ClusterModel:  cc.Model,
			ClusterRounds: cc.Rounds,
			BFSTime:       bc.Elapsed,
			BFSModel:      bc.Model,
			BFSRounds:     bc.Rounds,
		})
	}
	return points, nil
}
