package expt

import (
	"fmt"
	"strings"
	"time"
)

// Text renderings of the experiment results, shaped like the paper's
// tables.

func renderTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	total := len(header)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

func fmtDur(d time.Duration) string {
	return d.Round(time.Millisecond).String()
}

// FormatTable1 renders dataset characteristics.
func FormatTable1(rows []Table1Row) string {
	var out [][]string
	for _, r := range rows {
		diam := fmt.Sprintf("%d", r.Diameter)
		if !r.DiamExact {
			diam = ">=" + diam
		}
		out = append(out, []string{r.Name, fmt.Sprint(r.Nodes), fmt.Sprint(r.Edges), diam, r.PaperAnalog})
	}
	return "Table 1: benchmark datasets\n" +
		renderTable([]string{"dataset", "nodes", "edges", "diameter", "stands in for"}, out)
}

// FormatTable2 renders the CLUSTER vs MPX comparison.
func FormatTable2(rows []Table2Row) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Dataset,
			fmt.Sprint(r.ClusterNC), fmt.Sprint(r.ClusterMC), fmt.Sprint(r.ClusterR),
			fmt.Sprint(r.MPXNC), fmt.Sprint(r.MPXMC), fmt.Sprint(r.MPXR),
		})
	}
	return "Table 2: CLUSTER vs MPX (nC clusters, mC quotient edges, r max radius)\n" +
		renderTable([]string{"dataset", "nC", "mC", "r", "MPX nC", "MPX mC", "MPX r"}, out)
}

// FormatTable3 renders the diameter-approximation quality results.
func FormatTable3(rows []Table3Row) string {
	var out [][]string
	for _, r := range rows {
		diam := fmt.Sprint(r.TrueDiam)
		if !r.DiamExact {
			diam = ">=" + diam
		}
		out = append(out, []string{
			r.Dataset,
			fmt.Sprint(r.Coarser.NC), fmt.Sprint(r.Coarser.MC), fmt.Sprint(r.Coarser.DeltaPrime),
			fmt.Sprint(r.Finer.NC), fmt.Sprint(r.Finer.MC), fmt.Sprint(r.Finer.DeltaPrime),
			diam,
		})
	}
	return "Table 3: diameter approximation at two granularities (∆' = upper estimate)\n" +
		renderTable([]string{"dataset",
			"coarse nC", "coarse mC", "coarse ∆'",
			"fine nC", "fine mC", "fine ∆'", "∆"}, out)
}

// FormatTable4 renders the estimator comparison.
func FormatTable4(rows []Table4Row) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Dataset,
			fmt.Sprintf("%s (%d)", fmtDur(r.Cluster.Model), r.Cluster.Estimate),
			fmt.Sprintf("%s (%d)", fmtDur(r.BFS.Model), r.BFS.Estimate),
			fmt.Sprintf("%s (%d)", fmtDur(r.HADI.Model), r.HADI.Estimate),
			fmt.Sprint(r.TrueDiam),
			fmt.Sprintf("%d/%d/%d", r.Cluster.Rounds, r.BFS.Rounds, r.HADI.Rounds),
			fmt.Sprintf("%s/%s/%s", fmtDur(r.Cluster.Elapsed), fmtDur(r.BFS.Elapsed), fmtDur(r.HADI.Elapsed)),
		})
	}
	return "Table 4: modeled cluster time (estimate ∆') per estimator; rounds and local wall-clock C/B/H\n" +
		renderTable([]string{"dataset", "CLUSTER", "BFS", "HADI", "∆", "rounds", "local time"}, out)
}

// FormatFigure1 renders the tail-experiment series as aligned columns
// (one row per (dataset, c): the paper plots these as curves).
func FormatFigure1(points []Figure1Point) string {
	var out [][]string
	for _, p := range points {
		out = append(out, []string{
			p.Dataset, fmt.Sprint(p.C), fmt.Sprint(p.TailLen),
			fmtDur(p.ClusterModel), fmt.Sprint(p.ClusterRounds),
			fmtDur(p.BFSModel), fmt.Sprint(p.BFSRounds),
		})
	}
	return "Figure 1: tail experiment (modeled cluster time and rounds vs tail length c·∆)\n" +
		renderTable([]string{"dataset", "c", "tail", "CLUSTER t", "C rounds", "BFS t", "B rounds"}, out)
}

// FormatMRReport renders the MR-model validation.
func FormatMRReport(r *MRReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "MR(MG,ML) model validation (Lemma 3 / Theorem 4)\n")
	fmt.Fprintf(&b, "  graph: n=%d m=%d (%d reducer shards)\n", r.GraphNodes, r.GraphEdges, r.Shards)
	fmt.Fprintf(&b, "  growth: %d steps in %d MR rounds (%d pairs shuffled, max reducer input %d)\n",
		r.GrowSteps, r.GrowRounds, r.GrowShuffled, r.MaxReducerIn)
	fmt.Fprintf(&b, "  quotient: nC=%d mC=%d", r.QuotientNodes, r.QuotientEdges)
	if r.SpannerEdges > 0 {
		fmt.Fprintf(&b, " (sparsified to %d edges)", r.SpannerEdges)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "  quotient diameter by repeated squaring: %d in %d rounds (%d pairs shuffled, reference %d)\n",
		r.DiameterMR, r.SquaringRounds, r.SquaringShuffled, r.DiameterRef)
	return b.String()
}
