package expt

import "time"

// Cluster cost model. The experiments run on an in-process BSP simulator,
// so raw wall-clock times do not include the per-round scheduling/
// synchronization latency and network transfer that dominate on the
// paper's 16-host Spark cluster — precisely the costs whose round-count
// dependence the paper's algorithm attacks. To report a faithful "time"
// column, the harness therefore also derives a modeled cluster time
//
//	T = Rounds · RoundLatency + Messages · MessageBytes / Bandwidth
//
// from the measured rounds and message volume. The defaults are deliberately
// conservative for a Spark-class engine on 10 GbE (the paper's testbed):
// a few hundred milliseconds of per-round overhead and a shared gigabyte-
// per-second effective bandwidth. The qualitative Table 4 / Figure 1
// conclusions are insensitive to the constants because they rest on
// round-count ratios of two to three orders of magnitude.
type CostModel struct {
	// RoundLatency is the fixed per-round cost (scheduling, barriers,
	// shuffle setup).
	RoundLatency time.Duration
	// MessageBytes is the wire size of one message unit (one edge message;
	// HADI's register words already count each word as one unit).
	MessageBytes int64
	// Bandwidth is the effective aggregate bandwidth in bytes/second.
	Bandwidth int64
}

// DefaultCostModel mirrors a Spark-on-10GbE deployment.
var DefaultCostModel = CostModel{
	RoundLatency: 300 * time.Millisecond,
	MessageBytes: 8,
	Bandwidth:    1_000_000_000,
}

// Time returns the modeled cluster time for a run with the given rounds
// and message volume.
func (m CostModel) Time(rounds int, messages int64) time.Duration {
	if m.RoundLatency == 0 && m.Bandwidth == 0 {
		m = DefaultCostModel
	}
	t := time.Duration(rounds) * m.RoundLatency
	if m.Bandwidth > 0 {
		bytes := messages * m.MessageBytes
		t += time.Duration(float64(bytes) / float64(m.Bandwidth) * float64(time.Second))
	}
	return t
}
