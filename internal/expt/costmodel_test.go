package expt

import (
	"testing"
	"time"
)

func TestCostModelTime(t *testing.T) {
	m := CostModel{RoundLatency: time.Second, MessageBytes: 8, Bandwidth: 8}
	// 3 rounds at 1s + 16 messages * 8B / 8 B/s = 3s + 16s.
	got := m.Time(3, 16)
	if got != 19*time.Second {
		t.Fatalf("modeled time %v want 19s", got)
	}
}

func TestCostModelZeroValueFallsBack(t *testing.T) {
	var m CostModel
	if m.Time(10, 1000) <= 0 {
		t.Fatal("zero-value model should fall back to defaults")
	}
}

func TestCostModelRoundsDominateForFewMessages(t *testing.T) {
	m := DefaultCostModel
	few := m.Time(1000, 0)
	many := m.Time(10, 0)
	if few <= many {
		t.Fatal("round term not monotone")
	}
}

func TestModeledTable4Shape(t *testing.T) {
	// The modeled times must reproduce the paper's Table 4 ordering on a
	// long-diameter graph: CLUSTER well below BFS, BFS below HADI.
	d, err := DatasetByName("mesh")
	if err != nil {
		t.Fatal(err)
	}
	g := d.Build(0.25)
	row, err := Table4ForGraph(Config{Scale: 0.25, Seed: 1}, "mesh", g, 128)
	if err != nil {
		t.Fatal(err)
	}
	if row.Cluster.Model*2 >= row.BFS.Model {
		t.Errorf("modeled CLUSTER time %v not well below BFS %v", row.Cluster.Model, row.BFS.Model)
	}
	if row.Cluster.Model*2 >= row.HADI.Model {
		t.Errorf("modeled CLUSTER time %v not well below HADI %v", row.Cluster.Model, row.HADI.Model)
	}
	// HADI's K-per-arc-per-round volume only dominates at large m; at this
	// scale its modeled time is at least comparable to BFS's (both Θ(∆)
	// rounds), never meaningfully cheaper.
	if row.HADI.Model*5 < row.BFS.Model*4 {
		t.Errorf("modeled HADI time %v implausibly below BFS %v", row.HADI.Model, row.BFS.Model)
	}
}
