// Package expt is the experiment harness: it defines the benchmark
// datasets (synthetic stand-ins for the paper's Table 1 graphs, see
// DESIGN.md §2) and regenerates every table and figure of the paper's
// Section 6 evaluation. Each experiment returns structured rows so tests
// can assert the qualitative "shape" results, plus a text rendering that
// mirrors the paper's tables.
package expt

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/graph"
)

// Config selects the scale and seeds of an experiment run.
type Config struct {
	// Scale multiplies the linear size of every dataset: 1.0 is the default
	// experiment scale (10⁴-10⁵ nodes per graph, minutes for the full
	// suite); tests use ~0.2, and the paper's full mesh1000 corresponds to
	// Scale ≈ 3 on the mesh dataset.
	Scale float64
	// Seed drives all randomized algorithms.
	Seed uint64
	// Workers is the BSP parallelism (non-positive = GOMAXPROCS).
	Workers int
}

func (c Config) scale() float64 {
	if c.Scale <= 0 {
		return 1
	}
	return c.Scale
}

// Dataset describes one benchmark graph.
type Dataset struct {
	// Name identifies the dataset in tables.
	Name string
	// PaperAnalog is the Table 1 graph this one stands in for.
	PaperAnalog string
	// LongDiameter marks road/mesh-style graphs; it selects the
	// decomposition granularity the paper uses (n/100 vs n/1000).
	LongDiameter bool
	// Build constructs the graph at the given scale (always connected).
	Build func(scale float64) *graph.Graph
}

func dim(base int, scale float64) int {
	d := int(math.Round(float64(base) * scale))
	if d < 8 {
		d = 8
	}
	return d
}

func count(base int, scale float64) int {
	// Node counts scale with the square of the linear scale so that social
	// and grid datasets shrink comparably.
	n := int(math.Round(float64(base) * scale * scale))
	if n < 500 {
		n = 500
	}
	return n
}

// Datasets returns the benchmark suite in Table 1 order.
func Datasets() []Dataset {
	return []Dataset{
		{
			Name:        "ba-social",
			PaperAnalog: "twitter (40M nodes, ∆=16)",
			Build: func(s float64) *graph.Graph {
				return graph.BarabasiAlbert(count(60000, s), 8, 101)
			},
		},
		{
			Name:        "rmat-social",
			PaperAnalog: "livejournal (4M nodes, ∆=21)",
			Build: func(s float64) *graph.Graph {
				// R-MAT at the nearest power-of-two scale, largest CC.
				target := count(48000, s)
				sc := 1
				for 1<<sc < target {
					sc++
				}
				g := graph.RMAT(sc, 8, 102)
				lc, _ := g.LargestComponent()
				return lc
			},
		},
		{
			Name:         "road-a",
			PaperAnalog:  "roads-CA (∆=849)",
			LongDiameter: true,
			Build: func(s float64) *graph.Graph {
				return graph.RoadLike(dim(260, s), dim(260, s), 0.40, 103)
			},
		},
		{
			Name:         "road-b",
			PaperAnalog:  "roads-PA (∆=786)",
			LongDiameter: true,
			Build: func(s float64) *graph.Graph {
				return graph.RoadLike(dim(220, s), dim(300, s), 0.35, 104)
			},
		},
		{
			Name:         "road-c",
			PaperAnalog:  "roads-TX (∆=1054)",
			LongDiameter: true,
			Build: func(s float64) *graph.Graph {
				return graph.RoadLike(dim(320, s), dim(240, s), 0.45, 105)
			},
		},
		{
			Name:         "mesh",
			PaperAnalog:  "mesh1000 (1000x1000, ∆=1998, b=2)",
			LongDiameter: true,
			Build: func(s float64) *graph.Graph {
				d := dim(320, s)
				return graph.Mesh(d, d)
			},
		},
	}
}

// DatasetByName returns the named dataset.
func DatasetByName(name string) (Dataset, error) {
	for _, d := range Datasets() {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("expt: unknown dataset %q", name)
}

// granularityTarget returns the cluster-count target the paper aims at:
// about n/1000 for small-diameter graphs and n/100 for large-diameter ones,
// clamped so scaled-down instances still produce meaningful clusterings.
func granularityTarget(d Dataset, n int) int {
	div := 1000
	if d.LongDiameter {
		div = 100
	}
	t := n / div
	if t < 24 {
		t = 24
	}
	return t
}

// trueDiameterCache memoizes the exact diameter per (dataset, scale):
// iFUB certification is cheap on long-diameter graphs but can cost minutes
// on tiny-diameter social graphs (its known worst case), and three tables
// need the same ground truth.
var trueDiameterCache sync.Map

// TrueDiameter returns the exact diameter of dataset d at the given scale,
// memoized across tables. The computation is uncapped: every reported
// ground-truth value is certified.
func TrueDiameter(d Dataset, scale float64, g *graph.Graph) (int32, bool) {
	key := fmt.Sprintf("%s@%g", d.Name, scale)
	if v, ok := trueDiameterCache.Load(key); ok {
		r := v.([2]int32)
		return r[0], r[1] == 1
	}
	diam, exact := g.ExactDiameter(0)
	e := int32(0)
	if exact {
		e = 1
	}
	trueDiameterCache.Store(key, [2]int32{diam, e})
	return diam, exact
}

// Table1Row describes a dataset like the paper's Table 1.
type Table1Row struct {
	Name        string
	PaperAnalog string
	Nodes       int
	Edges       int
	Diameter    int32
	DiamExact   bool
}

// Table1 builds every dataset and reports its characteristics.
func Table1(cfg Config) ([]Table1Row, error) {
	var rows []Table1Row
	for _, d := range Datasets() {
		g := d.Build(cfg.scale())
		diam, exact := TrueDiameter(d, cfg.scale(), g)
		rows = append(rows, Table1Row{
			Name:        d.Name,
			PaperAnalog: d.PaperAnalog,
			Nodes:       g.NumNodes(),
			Edges:       g.NumEdges(),
			Diameter:    diam,
			DiamExact:   exact,
		})
	}
	return rows, nil
}
