package unitchecker

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lint/allow"
	"repro/internal/lint/analysis"
)

// writeUnit materializes a one-file, import-free package plus the vet.cfg
// describing it, exactly as cmd/go would, and returns the cfg path.
func writeUnit(t *testing.T, src string, mutate func(*Config)) string {
	t.Helper()
	dir := t.TempDir()
	goFile := filepath.Join(dir, "p.go")
	if err := os.WriteFile(goFile, []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		ID:         "p",
		Compiler:   "gc",
		Dir:        dir,
		ImportPath: "p",
		GoFiles:    []string{goFile},
		ModulePath: "repro",
		ImportMap:  map[string]string{},
		VetxOutput: filepath.Join(dir, "p.vetx"),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	blob, err := json.Marshal(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfgPath, blob, 0o666); err != nil {
		t.Fatal(err)
	}
	return cfgPath
}

var (
	cleanAnalyzer = &analysis.Analyzer{
		Name: "fakeclean",
		Doc:  "reports nothing",
		Run:  func(*analysis.Pass) (any, error) { return nil, nil },
	}
	findingAnalyzer = &analysis.Analyzer{
		Name: "fakefind",
		Doc:  "reports one finding per file",
		Run: func(pass *analysis.Pass) (any, error) {
			for _, f := range pass.Files {
				pass.Reportf(f.Pos(), "synthetic finding")
			}
			return nil, nil
		},
	}
	crashingAnalyzer = &analysis.Analyzer{
		Name: "fakecrash",
		Doc:  "always errors",
		Run: func(*analysis.Pass) (any, error) {
			return nil, errors.New("synthetic internal error")
		},
	}
)

const cleanSrc = "package p\n\nfunc F() int { return 1 }\n"

func TestRunCleanExitsZero(t *testing.T) {
	cfgPath := writeUnit(t, cleanSrc, nil)
	if code := run(cfgPath, []*analysis.Analyzer{cleanAnalyzer}, false); code != 0 {
		t.Fatalf("clean unit: run = %d, want 0", code)
	}
}

func TestRunFindingsExitTwo(t *testing.T) {
	cfgPath := writeUnit(t, cleanSrc, nil)
	if code := run(cfgPath, []*analysis.Analyzer{findingAnalyzer}, false); code != 2 {
		t.Fatalf("unit with findings: run = %d, want 2", code)
	}
}

func TestRunInternalErrorExitOne(t *testing.T) {
	cfgPath := writeUnit(t, cleanSrc, nil)
	if code := run(cfgPath, []*analysis.Analyzer{crashingAnalyzer}, false); code != 1 {
		t.Fatalf("crashing analyzer: run = %d, want 1", code)
	}
	// An internal error must dominate findings: the findings list of a
	// crashed run is not trustworthy.
	both := []*analysis.Analyzer{findingAnalyzer, crashingAnalyzer}
	cfgPath = writeUnit(t, cleanSrc, nil)
	if code := run(cfgPath, both, false); code != 1 {
		t.Fatalf("findings + crash: run = %d, want 1", code)
	}
}

func TestRunVetxOnlySuppressesFindings(t *testing.T) {
	cfgPath := writeUnit(t, cleanSrc, func(cfg *Config) { cfg.VetxOnly = true })
	if code := run(cfgPath, []*analysis.Analyzer{findingAnalyzer}, false); code != 0 {
		t.Fatalf("VetxOnly unit: run = %d, want 0 (dependencies report nothing)", code)
	}
}

func TestRunUnreadableCfgExitOne(t *testing.T) {
	if code := run(filepath.Join(t.TempDir(), "missing.cfg"), nil, false); code != 1 {
		t.Fatal("unreadable vet.cfg must exit 1")
	}
}

func TestRunStdlibUnitSkipped(t *testing.T) {
	cfgPath := writeUnit(t, cleanSrc, func(cfg *Config) { cfg.ModulePath = "" })
	if code := run(cfgPath, []*analysis.Analyzer{findingAnalyzer}, false); code != 0 {
		t.Fatalf("out-of-module unit: run = %d, want 0 (skipped)", code)
	}
}

func TestRunAuditReportsStaleSuppression(t *testing.T) {
	allow.ResetConsumptionForTest()
	saved := AuditChecks
	AuditChecks = map[string]bool{"rand": true}
	defer func() { AuditChecks = saved }()

	src := "package p\n\n//lint:allow rand nothing here actually uses rand\nfunc F() int { return 1 }\n"
	cfgPath := writeUnit(t, src, nil)
	if code := run(cfgPath, []*analysis.Analyzer{cleanAnalyzer}, true); code != 2 {
		t.Fatalf("stale //lint:allow under audit: run = %d, want 2", code)
	}
	// The same unit without the audit (a partial-suite run) stays clean.
	allow.ResetConsumptionForTest()
	cfgPath = writeUnit(t, src, nil)
	if code := run(cfgPath, []*analysis.Analyzer{cleanAnalyzer}, false); code != 0 {
		t.Fatalf("partial run must skip the audit: run = %d, want 0", code)
	}
}

func TestRunWritesVetx(t *testing.T) {
	var vetxPath string
	cfgPath := writeUnit(t, cleanSrc, func(cfg *Config) { vetxPath = cfg.VetxOutput })
	if code := run(cfgPath, []*analysis.Analyzer{cleanAnalyzer}, false); code != 0 {
		t.Fatalf("run = %d, want 0", code)
	}
	if _, err := os.Stat(vetxPath); err != nil {
		t.Fatalf("fact file not written: %v", err)
	}
}
