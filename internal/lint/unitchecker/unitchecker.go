// Package unitchecker makes a set of analyzers runnable under
// "go vet -vettool=...". It is a stdlib-only re-implementation of the
// (unpublished but stable) cmd/go vet tool protocol, the same one
// golang.org/x/tools/go/analysis/unitchecker speaks:
//
//  1. go vet probes the tool with "-flags" and expects a JSON description
//     of the flags it may pass through.
//  2. go vet asks "-V=full" for a fingerprint line ("name version devel
//     buildID=<hex>") that keys its result cache — we answer with a
//     content hash of our own executable so rebuilding reprolint
//     invalidates stale cached results.
//  3. For every package in the dependency closure, go vet invokes the
//     tool with the path to a generated vet.cfg describing the unit:
//     source files, the import map, compiler export data for each
//     dependency (PackageFile), fact files of already-analyzed
//     dependencies (PackageVetx), and where to write this unit's facts
//     (VetxOutput). Dependencies are marked VetxOnly: compute facts,
//     report nothing.
//
// Diagnostics are printed to stderr as file:line:col: message and the
// process exits 2, which go vet relays as a vet failure for the package;
// internal errors (unreadable cfg, broken facts, analyzer crashes) exit 1
// so CI failures are diagnosable by code.
//
// When the full suite runs (no explicit analyzer selection) and the host
// command has installed AuditChecks, the stale-suppression audit
// (internal/lint/allow.Audit) runs after the analyzers: every
// //lint:allow annotation must name a known check, carry a
// justification, and have actually been consumed by some analyzer this
// invocation — the audit findings are ordinary diagnostics. A partial
// run (reprolint -determinism ./...) skips the audit, since most
// annotations' analyzers never executed.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/lint/allow"
	"repro/internal/lint/analysis"
)

// AuditChecks, when set by the host command, enables the
// stale-suppression audit on full-suite runs; it maps every //lint:allow
// check name the suite can consume to true. cmd/reprolint installs
// lint.KnownChecks().
var AuditChecks map[string]bool

// Config mirrors the JSON structure of the vet.cfg files cmd/go writes
// (cmd/go/internal/work.vetConfig). Unused fields are omitted.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ModulePath                string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point for a vettool built on this package. It never
// returns.
func Main(analyzers ...*analysis.Analyzer) {
	analysis.RegisterFactTypes(analyzers)

	fs := flag.NewFlagSet("reprolint", flag.ExitOnError)
	printFlags := fs.Bool("flags", false, "print flags in JSON for cmd/go")
	version := fs.String("V", "", "print version and exit (cmd/go passes -V=full)")
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		enabled[a.Name] = fs.Bool(a.Name, false, doc)
	}
	fs.Parse(os.Args[1:])

	switch {
	case *printFlags:
		emitFlagJSON(analyzers)
		os.Exit(0)
	case *version == "full":
		fmt.Printf("reprolint version devel buildID=%s\n", selfHash())
		os.Exit(0)
	case *version != "":
		fmt.Println("reprolint version devel")
		os.Exit(0)
	}

	// If any analyzer flag was set explicitly and true, run only those;
	// explicit =false excludes from the full set (vet semantics).
	selected := analyzers
	anyTrue := false
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) {
		if on, ok := enabled[f.Name]; ok {
			explicit[f.Name] = *on
			if *on {
				anyTrue = true
			}
		}
	})
	if len(explicit) > 0 {
		var keep []*analysis.Analyzer
		for _, a := range analyzers {
			on, was := explicit[a.Name]
			switch {
			case anyTrue && was && on:
				keep = append(keep, a)
			case !anyTrue && !was:
				keep = append(keep, a)
			}
		}
		selected = keep
	}

	args := fs.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fmt.Fprintf(os.Stderr, "reprolint: expected a single vet.cfg argument; run via 'go vet -vettool=$(command -v reprolint) ./...' or 'reprolint ./...'\n")
		os.Exit(1)
	}
	audit := AuditChecks != nil && len(selected) == len(analyzers)
	os.Exit(run(args[0], selected, audit))
}

func run(cfgPath string, analyzers []*analysis.Analyzer, audit bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "reprolint: %v\n", err)
		return 1
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "reprolint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	facts := analysis.NewFactStore()

	// Standard-library and other out-of-module units carry none of the
	// repo's invariants and export no facts: write an empty vetx and
	// return without even parsing them. This keeps a full ./... vet run
	// fast — the ~60 stdlib units in the closure cost one exec each.
	if cfg.ModulePath == "" {
		return writeVetx(&cfg, facts)
	}

	// Import facts computed for dependencies in earlier invocations.
	// Each vetx re-exports everything it saw, so direct imports suffice
	// for transitive visibility.
	for path, vetx := range cfg.PackageVetx {
		blob, err := os.ReadFile(vetx)
		if err != nil {
			continue // dependency vetted with no fact output; nothing to import
		}
		if err := facts.Decode(blob); err != nil {
			fmt.Fprintf(os.Stderr, "reprolint: facts of %s: %v\n", path, err)
			return 1
		}
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeVetx(&cfg, facts)
			}
			fmt.Fprintf(os.Stderr, "reprolint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	compilerImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImp.Import(path)
	})

	var typeErrs []error
	tc := &types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Error:     func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(&cfg, facts)
		}
		for _, e := range typeErrs {
			fmt.Fprintf(os.Stderr, "%v\n", e)
		}
		return 1
	}

	unit := &analysis.Unit{Fset: fset, Files: files, Pkg: pkg, Info: info}
	diags, err := analysis.Run(unit, analyzers, facts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "reprolint: %v\n", err)
		return 1
	}

	code := writeVetx(&cfg, facts)
	if code != 0 {
		return code
	}
	if cfg.VetxOnly {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	findings := len(diags)
	if audit {
		for _, f := range allow.Audit(fset, files, AuditChecks) {
			fmt.Fprintf(os.Stderr, "%s:%d: %s\n", f.File, f.Line, f.Message)
			findings++
		}
	}
	if findings > 0 {
		return 2
	}
	return 0
}

func writeVetx(cfg *Config, facts *analysis.FactStore) int {
	blob, err := facts.Encode()
	if err != nil {
		fmt.Fprintf(os.Stderr, "reprolint: %v\n", err)
		return 1
	}
	if err := os.WriteFile(cfg.VetxOutput, blob, 0o666); err != nil {
		fmt.Fprintf(os.Stderr, "reprolint: %v\n", err)
		return 1
	}
	return 0
}

func emitFlagJSON(analyzers []*analysis.Analyzer) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		out = append(out, jsonFlag{Name: a.Name, Bool: true, Usage: doc})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	data, _ := json.Marshal(out)
	fmt.Println(string(data))
}

// selfHash content-hashes the running executable so go vet's result cache
// turns over whenever reprolint is rebuilt.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "0000000000000000"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "0000000000000000"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "0000000000000000"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
