// Package hotalloc defines the analyzer enforcing the repo's
// zero-allocation contracts at build time.
//
// A function annotated
//
//	//lint:hotpath [note]
//
// (on the line above or in the doc comment of its declaration) promises
// that its steady-state execution performs no heap allocation. The
// analyzer walks the function's CFG (internal/lint/cfg) and reports every
// allocation site reachable on a warm path:
//
//   - make, new, and composite literals of slice/map/channel type,
//   - &T{...} (escaping composite literal),
//   - append (growth capacity is unknowable statically),
//   - string concatenation and string<->[]byte/[]rune conversions,
//   - interface boxing: concrete values passed to interface parameters,
//     including fmt-style ...any variadics, and explicit conversions,
//   - function literals that capture enclosing variables by reference,
//   - dynamic calls (function values, interface methods), and
//   - calls to functions not proven allocation-free.
//
// The contract is transitive. Same-package callees are folded in via a
// local fixpoint; cross-package callees are checked through the
// hotalloc.Summaries package fact, which records for every function of a
// package whether it allocates and why. Calls into sync/atomic, math,
// math/bits, and encoding/binary are trusted allocation-free, as are the
// sync mutex/WaitGroup primitives; any other un-summarized callee is
// reported.
//
// Cold paths are excused: a statement is skipped when no path from it
// reaches a success exit — i.e. it can only flow into a `return ..., err`
// (non-nil error result) or a panic. Error construction off the hot path
// is the normal idiom and is not a finding.
//
// //lint:allow alloc <why> waives one site (pooled appends behind a
// capacity guard, construction-time maps, and the like).
package hotalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint/allow"
	"repro/internal/lint/analysis"
	"repro/internal/lint/cfg"
)

// Summaries is the package fact recording, per function, whether it can
// allocate on a warm path and the first reason why.
type Summaries struct {
	Funcs map[string]FuncSummary
}

// FuncSummary is one function's allocation verdict.
type FuncSummary struct {
	Allocates bool
	Reason    string
}

// AFact marks Summaries as a fact type.
func (*Summaries) AFact() {}

var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "//lint:hotpath functions (and their transitive callees) must not allocate\n\n" +
		"Reports every warm-path allocation site reachable from a hotpath-annotated\n" +
		"function: make/new/append, escaping or slice/map composite literals, string\n" +
		"concat/conversion, interface boxing (including fmt variadics), capturing\n" +
		"closures, dynamic calls, and calls to functions not proven allocation-free\n" +
		"(cross-package via the hotalloc.Summaries fact).",
	Run:       run,
	FactTypes: []analysis.Fact{(*Summaries)(nil)},
}

const hotpathPrefix = "//lint:hotpath"

// trustedPkgs are stdlib packages whose functions are accepted as
// allocation-free without summaries.
var trustedPkgs = map[string]bool{
	"sync/atomic":     true,
	"math":            true,
	"math/bits":       true,
	"encoding/binary": true,
}

// trustedFuncs accepts individual stdlib functions as allocation-free when
// their whole package can't be trusted: the sync primitives are fine, but
// sync.Pool.Get (calls New) and sync.Map (boxes entries) are not.
var trustedFuncs = map[string]map[string]bool{
	"sync": {
		"WaitGroup.Add":   true,
		"WaitGroup.Done":  true,
		"WaitGroup.Wait":  true,
		"Mutex.Lock":      true,
		"Mutex.TryLock":   true,
		"Mutex.Unlock":    true,
		"RWMutex.Lock":    true,
		"RWMutex.TryLock": true,
		"RWMutex.Unlock":  true,
		"RWMutex.RLock":   true,
		"RWMutex.RUnlock": true,
	},
}

// site is one allocation site inside a function.
type site struct {
	pos  token.Pos
	kind string
}

// localCall is a call to a same-package function, resolved in the local
// fixpoint.
type localCall struct {
	key string
	pos token.Pos
}

type funcInfo struct {
	decl      *ast.FuncDecl
	key       string
	hot       bool
	sites     []site
	locals    []localCall
	allocates bool
	reason    string
}

type checker struct {
	pass *analysis.Pass
	idx  *allow.Index
	// infos in declaration order; byKey indexes them.
	infos []*funcInfo
	byKey map[string]*funcInfo
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{
		pass:  pass,
		idx:   allow.NewIndex(pass.Fset, pass.Files),
		byKey: make(map[string]*funcInfo),
	}

	hotLines := c.hotpathLines()
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &funcInfo{decl: fd, key: funcKey(obj), hot: c.isHot(fd, hotLines)}
			c.scanFunc(fi, obj)
			c.infos = append(c.infos, fi)
			c.byKey[fi.key] = fi
		}
	}

	c.fixpoint()
	c.report()
	c.exportFacts()
	return nil, nil
}

// hotpathLines collects the (file, line) positions of standalone
// //lint:hotpath comments so annotation-above declarations resolve even
// without a doc comment.
func (c *checker) hotpathLines() map[string]map[int]bool {
	out := make(map[string]map[int]bool)
	for _, f := range c.pass.Files {
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				if !strings.HasPrefix(cm.Text, hotpathPrefix) {
					continue
				}
				p := c.pass.Fset.Position(cm.Pos())
				if out[p.Filename] == nil {
					out[p.Filename] = make(map[int]bool)
				}
				out[p.Filename][p.Line] = true
			}
		}
	}
	return out
}

func (c *checker) isHot(fd *ast.FuncDecl, hotLines map[string]map[int]bool) bool {
	if fd.Doc != nil {
		for _, cm := range fd.Doc.List {
			if strings.HasPrefix(cm.Text, hotpathPrefix) {
				return true
			}
		}
	}
	p := c.pass.Fset.Position(fd.Pos())
	return hotLines[p.Filename][p.Line-1] || hotLines[p.Filename][p.Line]
}

// scanFunc fills fi.sites and fi.locals from the warm blocks of fd's CFG.
func (c *checker) scanFunc(fi *funcInfo, obj *types.Func) {
	g := cfg.New(fi.decl.Body)
	warm := warmBlocks(g, c.pass, obj)
	for _, b := range g.Blocks {
		if !warm[b.Index] {
			continue
		}
		for _, n := range b.Nodes {
			c.scanNode(fi, n)
		}
	}
	sort.Slice(fi.sites, func(i, j int) bool { return fi.sites[i].pos < fi.sites[j].pos })
	sort.Slice(fi.locals, func(i, j int) bool { return fi.locals[i].pos < fi.locals[j].pos })
}

// warmBlocks marks every block from which a success exit is reachable: a
// return whose error result is nil (or any return when the function does
// not return an error), or the implicit fall off the end of the body.
func warmBlocks(g *cfg.Graph, pass *analysis.Pass, obj *types.Func) []bool {
	sig := obj.Type().(*types.Signature)
	returnsError := false
	if res := sig.Results(); res.Len() > 0 {
		last := res.At(res.Len() - 1).Type()
		returnsError = types.Identical(last, types.Universe.Lookup("error").Type())
	}

	success := make([]bool, len(g.Blocks))
	for _, b := range g.Blocks {
		hasReturn := false
		for _, n := range b.Nodes {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				continue
			}
			hasReturn = true
			if !returnsError || len(ret.Results) == 0 {
				success[b.Index] = true
				continue
			}
			last := ret.Results[len(ret.Results)-1]
			if id, ok := last.(*ast.Ident); ok && id.Name == "nil" {
				success[b.Index] = true
			}
		}
		if !hasReturn {
			for _, s := range b.Succs {
				if s == g.Exit {
					// Implicit return at the end of the body.
					success[b.Index] = true
				}
			}
		}
	}

	// A function whose every return carries a non-nil error (an error
	// constructor, say) has no success exit; its returns ARE the steady
	// state, so fall back to treating them all as warm.
	any := false
	for _, s := range success {
		any = any || s
	}
	if !any {
		for _, b := range g.Blocks {
			for _, n := range b.Nodes {
				if _, ok := n.(*ast.ReturnStmt); ok {
					success[b.Index] = true
				}
			}
		}
	}

	warm := make([]bool, len(g.Blocks))
	for _, b := range g.Blocks {
		warm[b.Index] = g.Reaches(b, func(x *cfg.Block) bool { return success[x.Index] })
	}
	return warm
}

// scanNode inspects one placed leaf node for allocation sites and local
// call edges. Nested function literals are not descended into: the
// literal itself is the site (when it captures), and its body belongs to
// a different function for summary purposes.
func (c *checker) scanNode(fi *funcInfo, n ast.Node) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			if caps := c.captures(fi.decl, x); len(caps) > 0 {
				c.addSite(fi, x.Pos(), "function literal captures "+strings.Join(caps, ", ")+" by reference")
			}
			return false
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := x.X.(*ast.CompositeLit); ok {
					c.addSite(fi, x.Pos(), "escaping composite literal (&T{...})")
				}
			}
		case *ast.CompositeLit:
			if tv, ok := c.pass.TypesInfo.Types[x]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Map, *types.Chan:
					c.addSite(fi, x.Pos(), "slice/map/chan composite literal allocates")
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringType(c.typeOf(x)) {
				c.addSite(fi, x.Pos(), "string concatenation allocates")
			}
		case *ast.CallExpr:
			c.scanCall(fi, x)
		}
		return true
	})
}

func (c *checker) typeOf(e ast.Expr) types.Type {
	if tv, ok := c.pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func (c *checker) scanCall(fi *funcInfo, call *ast.CallExpr) {
	info := c.pass.TypesInfo

	// Conversions: T(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) != 1 {
			return
		}
		to, from := tv.Type, c.typeOf(call.Args[0])
		switch {
		case isStringType(to) && (isByteOrRuneSlice(from)):
			c.addSite(fi, call.Pos(), "[]byte/[]rune -> string conversion allocates")
		case isByteOrRuneSlice(to) && isStringType(from):
			c.addSite(fi, call.Pos(), "string -> []byte/[]rune conversion allocates")
		case isInterfaceType(to) && from != nil && !isInterfaceType(from) && !isUntypedNil(from):
			c.addSite(fi, call.Pos(), "conversion to interface boxes the value")
		}
		return
	}

	// Builtins.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, ok := info.Uses[id].(*types.Builtin); ok {
			switch id.Name {
			case "make":
				c.addSite(fi, call.Pos(), "make allocates")
			case "new":
				c.addSite(fi, call.Pos(), "new allocates")
			case "append":
				c.addSite(fi, call.Pos(), "append may grow its backing array")
			}
			return
		}
	}

	callee := calleeFunc(info, call)
	if callee == nil || callee.Pkg() == nil {
		c.addSite(fi, call.Pos(), "dynamic call (function value or interface method) may allocate")
		return
	}

	// Interface boxing at the call boundary, for any resolved callee.
	c.checkBoxing(fi, call, callee)

	switch {
	case callee.Pkg() == c.pass.Pkg:
		fi.locals = append(fi.locals, localCall{key: funcKey(callee), pos: call.Pos()})
	case trustedPkgs[callee.Pkg().Path()]:
		// Trusted allocation-free.
	case trustedFuncs[callee.Pkg().Path()][funcKey(callee)]:
		// Trusted allocation-free primitive in an untrusted package.
	default:
		var s Summaries
		name := callee.Pkg().Name() + "." + callee.Name()
		if !c.pass.ImportPackageFact(callee.Pkg(), &s) {
			c.addSite(fi, call.Pos(), fmt.Sprintf("call to %s, which has no allocation summary", name))
			return
		}
		fs, ok := s.Funcs[funcKey(callee)]
		if !ok {
			c.addSite(fi, call.Pos(), fmt.Sprintf("call to %s, which has no allocation summary", name))
			return
		}
		if fs.Allocates {
			c.addSite(fi, call.Pos(), fmt.Sprintf("call to %s, which allocates: %s", name, fs.Reason))
		}
	}
}

// checkBoxing reports concrete values passed to interface parameters —
// the fmt.Fprintf(...any) pattern chief among them.
func (c *checker) checkBoxing(fi *funcInfo, call *ast.CallExpr, callee *types.Func) {
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 {
			if call.Ellipsis != token.NoPos {
				continue // passing an existing slice: no per-arg boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		} else if i < params.Len() {
			pt = params.At(i).Type()
		}
		at := c.typeOf(arg)
		if pt != nil && isInterfaceType(pt) && at != nil && !isInterfaceType(at) && !isUntypedNil(at) {
			c.addSite(fi, arg.Pos(), fmt.Sprintf(
				"passing concrete value to interface parameter of %s.%s boxes it",
				callee.Pkg().Name(), callee.Name()))
		}
	}
}

// addSite records a site unless //lint:allow alloc waives it.
func (c *checker) addSite(fi *funcInfo, pos token.Pos, kind string) {
	if c.idx.Allowed(pos, "alloc") {
		return
	}
	fi.sites = append(fi.sites, site{pos: pos, kind: kind})
}

// captures lists enclosing local variables the literal reads or writes by
// reference: uses resolving to variables declared inside the enclosing
// function but outside the literal. Package-level variables and struct
// fields do not force a closure allocation.
func (c *checker) captures(encl *ast.FuncDecl, lit *ast.FuncLit) []string {
	pkgScope := c.pass.Pkg.Scope()
	seen := make(map[string]bool)
	var names []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Parent() == nil || v.Parent() == pkgScope || v.Parent() == types.Universe {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true // the literal's own params/locals
		}
		if v.Pos() < encl.Pos() || v.Pos() > encl.End() {
			return true // not from this function (e.g. another enclosing lit already counted)
		}
		if !seen[v.Name()] {
			seen[v.Name()] = true
			names = append(names, v.Name())
		}
		return true
	})
	sort.Strings(names)
	return names
}

// fixpoint propagates allocation verdicts across same-package calls.
func (c *checker) fixpoint() {
	for changed := true; changed; {
		changed = false
		for _, fi := range c.infos {
			if fi.allocates {
				continue
			}
			if len(fi.sites) > 0 {
				fi.allocates = true
				fi.reason = fmt.Sprintf("%s: %s", c.posn(fi.sites[0].pos), fi.sites[0].kind)
				changed = true
				continue
			}
			for _, lc := range fi.locals {
				target := c.byKey[lc.key]
				if target != nil && target.allocates {
					fi.allocates = true
					fi.reason = truncate(fmt.Sprintf("calls %s, which allocates (%s)", lc.key, target.reason))
					changed = true
					break
				}
			}
		}
	}
}

// report walks the hot closure from each annotated root in source order
// and reports every site exactly once, attributed to the first root that
// reaches it.
func (c *checker) report() {
	reported := make(map[token.Pos]bool)
	visited := make(map[string]bool)
	var visit func(fi *funcInfo, root string)
	visit = func(fi *funcInfo, root string) {
		if visited[fi.key] {
			return
		}
		visited[fi.key] = true
		for _, s := range fi.sites {
			if reported[s.pos] {
				continue
			}
			reported[s.pos] = true
			c.pass.Reportf(s.pos, "allocation on the hot path (via %s): %s", root, s.kind)
		}
		for _, lc := range fi.locals {
			if target := c.byKey[lc.key]; target != nil {
				visit(target, root)
			}
		}
	}
	for _, fi := range c.infos {
		if fi.hot {
			visit(fi, fi.key)
		}
	}
}

// exportFacts publishes every function's verdict for dependents.
func (c *checker) exportFacts() {
	if len(c.infos) == 0 {
		return
	}
	funcs := make(map[string]FuncSummary, len(c.infos))
	for _, fi := range c.infos {
		funcs[fi.key] = FuncSummary{Allocates: fi.allocates, Reason: fi.reason}
	}
	c.pass.ExportPackageFact(&Summaries{Funcs: funcs})
}

func (c *checker) posn(pos token.Pos) string {
	p := c.pass.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

func truncate(s string) string {
	const max = 300
	if len(s) <= max {
		return s
	}
	return s[:max] + "..."
}

// funcKey canonicalizes a function object: "Name" for package functions,
// "Type.Name" for methods regardless of pointer receivers.
func funcKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

// calleeFunc resolves the static callee of a call, or nil for dynamic
// calls through function values or interface methods.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	obj := info.Uses[id]
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	// Interface method calls are dynamic.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type()) {
			return nil
		}
	}
	return fn
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isInterfaceType(t types.Type) bool {
	return t != nil && types.IsInterface(t)
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}
