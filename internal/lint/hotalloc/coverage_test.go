package hotalloc_test

// This test is the runtime half of the hotalloc contract, mirroring the
// two-way metricname <-> requiredFamilies coverage test: every
// //lint:hotpath function in the repository must be exercised by a
// testing.AllocsPerRun regression test in its package (so the static
// "cannot allocate" verdict is pinned by a measured "does not allocate"),
// and every entry in the exemption table must still name a hotpath
// function that genuinely lacks a pin — a stale exemption fails too.
//
// Coverage is established syntactically: starting from every function
// whose body mentions AllocsPerRun, a breadth-first search over
// referenced identifiers within the package's declarations must reach the
// hot function's name. This deliberately tracks names, not call graphs:
// it survives handler indirection (ServeHTTP through a mux) that no
// static call graph would thread, while still failing when a hot
// function's pinning test is deleted or renamed away.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// allocsPinExempt lists hotpath functions allowed to have no AllocsPerRun
// pin, and why. Entries must stay honest: an entry whose function is no
// longer annotated, or has since gained a pin, fails the test.
var allocsPinExempt = map[string]string{
	// (empty: every current hotpath function is pinned)
}

func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test binary's working directory")
		}
		dir = parent
	}
}

// hotpathFuncs maps package directory -> hotpath-annotated function names,
// collected syntactically from every non-test file outside testdata.
func hotpathFuncs(t *testing.T, root string) map[string][]string {
	t.Helper()
	hot := make(map[string][]string)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case "testdata", ".git", "bin":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		marked := make(map[int]bool)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, "//lint:hotpath") {
					marked[fset.Position(c.Pos()).Line] = true
				}
			}
		}
		if len(marked) == 0 {
			return nil
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			isHot := false
			if fd.Doc != nil {
				for _, c := range fd.Doc.List {
					if strings.HasPrefix(c.Text, "//lint:hotpath") {
						isHot = true
					}
				}
			}
			if marked[fset.Position(decl.Pos()).Line-1] {
				isHot = true
			}
			if isHot {
				dir := filepath.Dir(path)
				hot[dir] = append(hot[dir], fd.Name.Name)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return hot
}

// packageRefs parses every .go file in dir (tests included; all package
// variants in the directory count) and returns, per declared function
// name, the set of identifiers its body references, plus the set of
// function names whose bodies mention AllocsPerRun.
func packageRefs(t *testing.T, dir string) (refs map[string]map[string]bool, seeds map[string]bool) {
	t.Helper()
	refs = make(map[string]map[string]bool)
	seeds = make(map[string]bool)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			if refs[name] == nil {
				refs[name] = make(map[string]bool)
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					refs[name][id.Name] = true
					if id.Name == "AllocsPerRun" {
						seeds[name] = true
					}
				}
				return true
			})
		}
	}
	return refs, seeds
}

// pinned reports whether fn is reachable from any AllocsPerRun-mentioning
// function by following referenced names through dir's declarations.
func pinned(refs map[string]map[string]bool, seeds map[string]bool, fn string) bool {
	visited := make(map[string]bool)
	queue := make([]string, 0, len(seeds))
	for s := range seeds {
		queue = append(queue, s)
		visited[s] = true
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == fn {
			return true
		}
		for ref := range refs[cur] {
			if refs[ref] != nil && !visited[ref] {
				visited[ref] = true
				queue = append(queue, ref)
			}
		}
	}
	return visited[fn] || seeds[fn]
}

func TestHotpathFunctionsArePinnedByAllocsPerRun(t *testing.T) {
	root := repoRoot(t)
	hot := hotpathFuncs(t, root)
	if len(hot) == 0 {
		t.Fatal("no //lint:hotpath functions found in the repository; the annotations were removed without updating this test")
	}

	seen := make(map[string]bool)
	for dir, fns := range hot {
		refs, seeds := packageRefs(t, dir)
		rel, _ := filepath.Rel(root, dir)
		for _, fn := range fns {
			seen[fn] = true
			if _, exempt := allocsPinExempt[fn]; exempt {
				if pinned(refs, seeds, fn) {
					t.Errorf("%s: hotpath function %s is exempt from an AllocsPerRun pin but has one; remove the stale exemption", rel, fn)
				}
				continue
			}
			if !pinned(refs, seeds, fn) {
				t.Errorf("%s: hotpath function %s has no AllocsPerRun regression test reachable in its package; pin the zero-allocation claim or add an allocsPinExempt entry", rel, fn)
			}
		}
	}

	// The reverse direction: exemptions must name live hotpath functions.
	for fn := range allocsPinExempt {
		if !seen[fn] {
			t.Errorf("allocsPinExempt names %s, which is not a //lint:hotpath function; remove the stale entry", fn)
		}
	}

	// The two acceptance anchors of PR 10 must be among the hot roots: the
	// oracle batch kernel and the RPB1 decode path.
	for _, anchor := range []string{"QueryBatchInto", "decodePairsBinary"} {
		if !seen[anchor] {
			t.Errorf("%s is no longer //lint:hotpath-annotated; the zero-allocation contract lost its anchor", anchor)
		}
	}
}
