package hotalloc_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), hotalloc.Analyzer,
		"hotbasic", // every site kind, transitivity, cold paths, //lint:allow
		"hotcross", // cross-package verdicts via the Summaries fact
	)
}
