// Package hotcross proves the hot-path contract crosses package
// boundaries via facts: callees in hotdep are checked through their
// exported summaries, not re-analyzed.
package hotcross

import "hotdep"

//lint:hotpath
func UsesAllocatingDep(n int) []int {
	return hotdep.Alloc(n) // want `call to hotdep.Alloc, which allocates: hotdep.go:\d+: make allocates`
}

//lint:hotpath
func UsesCleanDep(a, b int) int {
	return hotdep.Clean(a, b)
}

//lint:hotpath
func UsesCleanMethod(t *hotdep.Table) int {
	return t.At(0)
}
