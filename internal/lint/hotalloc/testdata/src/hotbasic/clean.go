package hotbasic

import (
	"sync"
	"sync/atomic"
)

// Kernel is the shape the annotation exists for: flat-table arithmetic,
// no calls, no allocations.
//
//lint:hotpath steady-state distance kernel
func Kernel(dst, src []int64) {
	for i := range src {
		dst[i] = src[i] * 2
	}
}

// GoodAtomic: sync/atomic is trusted allocation-free.
//
//lint:hotpath
func GoodAtomic(p *int64) int64 {
	return atomic.LoadInt64(p)
}

// GoodClosure: a literal with no captures is a static func value.
//
//lint:hotpath
func GoodClosure() func() int {
	return func() int { return 42 }
}

// GoodStructValue: a value composite literal stays on the stack.
//
//lint:hotpath
func GoodStructValue(x, y int) int {
	p := point{x, y}
	return p.x + p.y
}

// GoodSync: the sync mutex/WaitGroup primitives are trusted even though
// the sync package as a whole is not.
//
//lint:hotpath
func GoodSync(mu *sync.Mutex, wg *sync.WaitGroup, p *int64) {
	mu.Lock()
	*p++
	mu.Unlock()
	wg.Add(1)
	wg.Done()
	wg.Wait()
}

// unannotated may allocate freely without findings.
func unannotated(n int) []int {
	return make([]int, n)
}
