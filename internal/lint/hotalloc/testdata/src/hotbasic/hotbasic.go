// Package hotbasic exercises every hotalloc site kind plus the
// transitive, cold-path, and //lint:allow behaviors.
package hotbasic

import "errors"

type point struct{ x, y int }

//lint:hotpath
func BadMake(n int) []int64 {
	buf := make([]int64, n) // want `allocation on the hot path \(via BadMake\): make allocates`
	return buf
}

//lint:hotpath
func BadNew() *point {
	return new(point) // want `new allocates`
}

//lint:hotpath
func BadAppend(dst []int64, v int64) []int64 {
	return append(dst, v) // want `append may grow its backing array`
}

//lint:hotpath
func BadConcat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//lint:hotpath
func BadConversion(b []byte) string {
	return string(b) // want `\[\]byte/\[\]rune -> string conversion allocates`
}

func sink(v any) int { _ = v; return 0 }

//lint:hotpath
func BadBox(v int64) int {
	return sink(v) // want `passing concrete value to interface parameter of hotbasic.sink boxes it`
}

//lint:hotpath
func BadClosure(n int) func() int {
	return func() int { return n } // want `function literal captures n by reference`
}

//lint:hotpath
func BadDynamic(f func() int) int {
	return f() // want `dynamic call \(function value or interface method\) may allocate`
}

//lint:hotpath
func BadComposite() []int {
	return []int{1, 2, 3} // want `slice/map/chan composite literal allocates`
}

//lint:hotpath
func BadEscape() *point {
	return &point{1, 2} // want `escaping composite literal`
}

//lint:hotpath
func BadStdlib(msg string) error {
	return errors.New(msg) // want `call to errors.New, which has no allocation summary`
}

// Transitive: the root is clean, the allocation lives in a local helper.
//
//lint:hotpath
func Transitive(n int) []int64 {
	return helper(n)
}

func helper(n int) []int64 {
	return make([]int64, n) // want `allocation on the hot path \(via Transitive\): make allocates`
}

// ColdError: error construction off the success path is excused.
//
//lint:hotpath
func ColdError(src []byte) (int, error) {
	if len(src) < 4 {
		return 0, errors.New("short input") // cold path: no finding
	}
	return int(src[0]), nil
}

// Allowed: a justified waiver suppresses the site.
//
//lint:hotpath
func Allowed(dst []byte, b byte) []byte {
	//lint:allow alloc pooled buffer, growth only on the first fill
	return append(dst, b)
}
