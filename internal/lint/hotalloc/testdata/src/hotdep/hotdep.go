// Package hotdep is a dependency whose allocation summaries travel to
// hotcross as the hotalloc.Summaries package fact.
package hotdep

// Alloc allocates on its only path.
func Alloc(n int) []int {
	return make([]int, n)
}

// Clean is allocation-free.
func Clean(a, b int) int {
	return a + b
}

// Table is a method summarized under its receiver type name.
type Table struct{ rows []int }

// At is allocation-free.
func (t *Table) At(i int) int {
	return t.rows[i]
}
