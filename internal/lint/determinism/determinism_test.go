package determinism_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), determinism.Analyzer,
		"repro/internal/bsp",    // engine package: all three rules fire
		"example.com/nonengine", // same constructs, out of scope: silent
	)
}
