package bsp

import "time"

// Test files are exempt: wall-clock in tests is fine.
func stampInTest() time.Time {
	return time.Now()
}
