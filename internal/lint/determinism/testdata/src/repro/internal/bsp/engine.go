// Package bsp is analyzer testdata mimicking an engine package: its import
// path is in determinism.EnginePackages, so all three rules apply.
package bsp

import (
	"math/rand" // want `math/rand in engine package repro/internal/bsp`
	"sort"
	"time"
)

func Draw() int {
	return rand.Intn(10)
}

func SumMap(m map[string]int) int {
	total := 0
	for _, v := range m { // want `range over map map\[string\]int in engine package`
		total += v
	}
	return total
}

func SumMapSorted(m map[string]int) int {
	keys := make([]string, 0, len(m))
	//lint:allow mapiter keys are sorted immediately below
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0
	for _, k := range keys {
		total += m[k]
	}
	return total
}

func SumSlice(s []int) int {
	total := 0
	for _, v := range s { // slices iterate in order: no diagnostic
		total += v
	}
	return total
}

func Stamp() time.Time {
	return time.Now() // want `time.Now in engine package repro/internal/bsp`
}

func StampAllowed() time.Time {
	return time.Now() //lint:allow walltime accounting-only timer
}
