// Package nonengine is analyzer testdata outside the engine set: the same
// constructs draw no diagnostics here.
package nonengine

import (
	"math/rand"
	"time"
)

func Draw() int { return rand.Intn(10) }

func SumMap(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func Stamp() time.Time { return time.Now() }
