// Package determinism defines an analyzer enforcing the repository's
// bit-for-bit reproducibility contract inside the engine packages.
//
// The paper's acceptance tests pin CLUSTER(τ), the oracle build, and the
// MR layer to identical outputs across worker and shard counts. Three
// constructs silently void that guarantee and are banned from engine
// packages (internal/bsp, internal/mr, internal/core, internal/mpx,
// internal/anf) outside _test.go files:
//
//   - ranging over a map: iteration order is randomized per run, so any
//     reducer, frontier, or stats path that observes it diverges between
//     runs. Iterate sorted keys instead, or waive a genuinely
//     order-insensitive loop with //lint:allow mapiter.
//   - math/rand (and math/rand/v2): globally seeded, schedule-dependent.
//     All randomness must come from internal/rng's splittable,
//     hash-based generators keyed on (seed, round, node).
//   - time.Now: wall-clock must never influence algorithm output. Stats
//     timers that only feed accounting are waived explicitly with
//     //lint:allow walltime, which doubles as documentation that the
//     value is presentation-only.
package determinism

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/allow"
	"repro/internal/lint/analysis"
)

// EnginePackages is the set of import paths holding deterministic engine
// code. Exported so the analyzer's tests can scope testdata packages in.
var EnginePackages = map[string]bool{
	"repro/internal/bsp":  true,
	"repro/internal/mr":   true,
	"repro/internal/core": true,
	"repro/internal/mpx":  true,
	"repro/internal/anf":  true,
}

var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbid map iteration, math/rand, and unannotated time.Now in engine packages\n\n" +
		"Engine packages must produce bit-for-bit identical outputs across worker and\n" +
		"shard counts; map range order, ambient randomness, and wall-clock reads all\n" +
		"break that silently.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !EnginePackages[pass.Pkg.Path()] {
		return nil, nil
	}
	idx := allow.NewIndex(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		checkImports(pass, idx, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				checkRange(pass, idx, n)
			case *ast.CallExpr:
				checkTimeNow(pass, idx, n)
			}
			return true
		})
	}
	return nil, nil
}

func checkImports(pass *analysis.Pass, idx *allow.Index, f *ast.File) {
	for _, spec := range f.Imports {
		path := strings.Trim(spec.Path.Value, `"`)
		if path != "math/rand" && path != "math/rand/v2" {
			continue
		}
		if idx.Allowed(spec.Pos(), "rand") {
			continue
		}
		pass.Reportf(spec.Pos(), "%s in engine package %s: ambient randomness is schedule-dependent; draw from internal/rng (seeded, splittable) instead", path, pass.Pkg.Path())
	}
}

func checkRange(pass *analysis.Pass, idx *allow.Index, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if idx.Allowed(rng.Pos(), "mapiter") {
		return
	}
	pass.Reportf(rng.Pos(), "range over map %s in engine package %s: iteration order is nondeterministic; iterate sorted keys, or waive an order-insensitive loop with //lint:allow mapiter", types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)), pass.Pkg.Path())
}

func checkTimeNow(pass *analysis.Pass, idx *allow.Index, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Now" {
		return
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel]
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
		return
	}
	if idx.Allowed(call.Pos(), "walltime") {
		return
	}
	pass.Reportf(call.Pos(), "time.Now in engine package %s: wall-clock must not influence algorithm output; annotate accounting-only timers with //lint:allow walltime", pass.Pkg.Path())
}

func isTestFile(pass *analysis.Pass, f *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
}
