// Package allow implements the //lint:allow annotation grammar shared by
// every reprolint analyzer, and the stale-suppression audit that keeps
// the annotations honest.
//
// Grammar, one annotation per comment:
//
//	//lint:allow <check> <justification>
//
// where <check> names the specific rule being waived (walltime, mapiter,
// rand, plainatomic, locked, background, alloc, goroutine, lockorder).
// An annotation applies to:
//
//   - every violation on the same source line as the comment,
//   - every violation on the line immediately below a comment that stands
//     alone on its line (annotation-above style), and
//   - for function-scoped waivers, every violation inside a function whose
//     declaration line or doc comment carries the annotation (only
//     analyzers that opt in consult this form; see AllowedFunc).
//
// The justification is mandatory: an annotation with no text after the
// check name is itself a finding. So is a stale annotation — one whose
// check never fires on the waived line. Every Allowed/AllowedFunc match
// is recorded in a process-wide registry; after the full suite has run,
// Audit reports any annotation that no analyzer consumed, in the spirit
// of staticcheck's unused-suppression check. The registry spans analyzer
// instances (each builds its own Index over the same files), which is
// exactly what makes the audit sound: consumption by any analyzer counts.
package allow

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
	"sync"
)

const prefix = "//lint:allow"

// Annotation is one parsed //lint:allow comment.
type Annotation struct {
	File          string
	Line          int
	Check         string
	Justification string
}

type regKey struct {
	file  string
	line  int
	check string
}

// registry is the process-wide consumption ledger. go vet runs one unit
// per process, so the ledger never mixes packages; in-process harnesses
// (analysistest) share it across runs, which is harmless because keys
// carry absolute file paths.
var registry = struct {
	sync.Mutex
	consumed map[regKey]bool
}{consumed: make(map[regKey]bool)}

func consume(file string, line int, check string) {
	registry.Lock()
	registry.consumed[regKey{file, line, check}] = true
	registry.Unlock()
}

func wasConsumed(file string, line int, check string) bool {
	registry.Lock()
	defer registry.Unlock()
	return registry.consumed[regKey{file, line, check}]
}

// Index records, per source position, which checks are waived there.
type Index struct {
	fset  *token.FileSet
	lines map[regKey]*Annotation // (file, line, check) -> annotation
	anns  []*Annotation          // source order
}

// NewIndex scans the comments of the given files (which must belong to
// fset) and returns the annotation index.
func NewIndex(fset *token.FileSet, files []*ast.File) *Index {
	idx := &Index{fset: fset, lines: make(map[regKey]*Annotation)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, prefix) {
					continue
				}
				rest := strings.TrimSpace(text[len(prefix):])
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				ann := &Annotation{
					File:          pos.Filename,
					Line:          pos.Line,
					Check:         fields[0],
					Justification: strings.TrimSpace(strings.TrimPrefix(rest, fields[0])),
				}
				idx.lines[regKey{ann.File, ann.Line, ann.Check}] = ann
				idx.anns = append(idx.anns, ann)
			}
		}
	}
	return idx
}

// Allowed reports whether check is waived at pos: an annotation on the
// same line, or on the line immediately above. A match is recorded as
// consumption for the stale-suppression audit.
func (idx *Index) Allowed(pos token.Pos, check string) bool {
	p := idx.fset.Position(pos)
	for _, line := range [2]int{p.Line, p.Line - 1} {
		if ann := idx.lines[regKey{p.Filename, line, check}]; ann != nil {
			consume(ann.File, ann.Line, ann.Check)
			return true
		}
	}
	return false
}

// AllowedFunc reports whether check is waived for the whole of fn: an
// annotation on (or immediately above) the func keyword, which covers the
// doc-comment form since doc comments end on the preceding line.
func (idx *Index) AllowedFunc(fn *ast.FuncDecl, check string) bool {
	if fn == nil {
		return false
	}
	return idx.Allowed(fn.Pos(), check)
}

// A Finding is one audit diagnostic against an annotation.
type Finding struct {
	File    string
	Line    int
	Message string
}

// Audit returns the stale-suppression findings for the given files: every
// //lint:allow annotation that names an unknown check, lacks a
// justification, or was never consumed by any analyzer this process ran.
// Call it only after the full analyzer suite has executed — a partial run
// would report annotations whose analyzer simply never ran. Annotations in
// _test.go files are audited for grammar (unknown check, missing
// justification) but not for staleness, because most analyzers skip test
// files entirely.
func Audit(fset *token.FileSet, files []*ast.File, known map[string]bool) []Finding {
	idx := NewIndex(fset, files)
	var out []Finding
	for _, ann := range idx.anns {
		switch {
		case !known[ann.Check]:
			out = append(out, Finding{ann.File, ann.Line, fmt.Sprintf(
				"//lint:allow names unknown check %q", ann.Check)})
		case ann.Justification == "":
			out = append(out, Finding{ann.File, ann.Line, fmt.Sprintf(
				"//lint:allow %s has no justification; say why the exception is safe", ann.Check)})
		case strings.HasSuffix(ann.File, "_test.go"):
			// Grammar is fine; staleness is not audited in test files.
		case !wasConsumed(ann.File, ann.Line, ann.Check):
			out = append(out, Finding{ann.File, ann.Line, fmt.Sprintf(
				"stale suppression: //lint:allow %s waives nothing on this line; remove it", ann.Check)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}

// ResetConsumptionForTest clears the process-wide consumption ledger so
// audit tests are order-independent. Production drivers never call it.
func ResetConsumptionForTest() {
	registry.Lock()
	registry.consumed = make(map[regKey]bool)
	registry.Unlock()
}
