// Package allow implements the //lint:allow annotation grammar shared by
// every reprolint analyzer.
//
// Grammar, one annotation per comment:
//
//	//lint:allow <check> [free-form justification]
//
// where <check> names the specific rule being waived (walltime, mapiter,
// rand, plainatomic, locked, background). An annotation applies to:
//
//   - every violation on the same source line as the comment,
//   - every violation on the line immediately below a comment that stands
//     alone on its line (annotation-above style), and
//   - for function-scoped waivers, every violation inside a function whose
//     declaration line or doc comment carries the annotation (only
//     analyzers that opt in consult this form; see AllowedFunc).
//
// A justification after the check name is strongly encouraged — the
// annotation exists to force the "why" to live next to the exception.
package allow

import (
	"go/ast"
	"go/token"
	"strings"
)

// Index records, per source line, which checks are waived there.
type Index struct {
	fset  *token.FileSet
	lines map[int]map[string]bool // line -> set of waived checks
}

const prefix = "//lint:allow"

// NewIndex scans the comments of the given files (which must belong to
// fset) and returns the annotation index.
func NewIndex(fset *token.FileSet, files []*ast.File) *Index {
	idx := &Index{fset: fset, lines: make(map[int]map[string]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, prefix) {
					continue
				}
				rest := strings.TrimSpace(text[len(prefix):])
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				check := fields[0]
				pos := fset.Position(c.Pos())
				set := idx.lines[pos.Line]
				if set == nil {
					set = make(map[string]bool)
					idx.lines[pos.Line] = set
				}
				set[check] = true
			}
		}
	}
	return idx
}

// Allowed reports whether check is waived at pos: an annotation on the
// same line, or on the line immediately above.
func (idx *Index) Allowed(pos token.Pos, check string) bool {
	line := idx.fset.Position(pos).Line
	return idx.lines[line][check] || idx.lines[line-1][check]
}

// AllowedFunc reports whether check is waived for the whole of fn: an
// annotation on (or immediately above) the func keyword, which covers the
// doc-comment form since doc comments end on the preceding line.
func (idx *Index) AllowedFunc(fn *ast.FuncDecl, check string) bool {
	if fn == nil {
		return false
	}
	return idx.Allowed(fn.Pos(), check)
}
