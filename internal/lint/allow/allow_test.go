package allow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parse(t *testing.T, fset *token.FileSet, name, src string) *ast.File {
	t.Helper()
	f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	return f
}

var known = map[string]bool{"rand": true, "walltime": true}

func TestAllowedSameLineAndAbove(t *testing.T) {
	ResetConsumptionForTest()
	fset := token.NewFileSet()
	src := `package p

func f() {
	a() //lint:allow rand seeded fixture
	//lint:allow walltime display only
	b()
	c()
}
`
	f := parse(t, fset, "/x/a.go", src)
	idx := NewIndex(fset, []*ast.File{f})

	var aPos, bPos, cPos token.Pos
	ast.Inspect(f, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			switch call.Fun.(*ast.Ident).Name {
			case "a":
				aPos = call.Pos()
			case "b":
				bPos = call.Pos()
			case "c":
				cPos = call.Pos()
			}
		}
		return true
	})
	if !idx.Allowed(aPos, "rand") {
		t.Error("same-line annotation must waive")
	}
	if !idx.Allowed(bPos, "walltime") {
		t.Error("annotation-above must waive")
	}
	if idx.Allowed(cPos, "walltime") {
		t.Error("annotation must not reach two lines down")
	}
	if idx.Allowed(aPos, "walltime") {
		t.Error("check names must match")
	}
}

func TestNoCrossFileLineCollision(t *testing.T) {
	ResetConsumptionForTest()
	fset := token.NewFileSet()
	fa := parse(t, fset, "/x/a.go", "package p\n\nfunc f() { a() } //lint:allow rand fixture\n")
	fb := parse(t, fset, "/x/b.go", "package p\n\nfunc g() { b() }\n")
	idx := NewIndex(fset, []*ast.File{fa, fb})

	var bPos token.Pos
	ast.Inspect(fb, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			bPos = call.Pos()
		}
		return true
	})
	if idx.Allowed(bPos, "rand") {
		t.Error("an annotation in a.go must not waive the same line number in b.go")
	}
}

func TestAuditStaleAndGrammar(t *testing.T) {
	ResetConsumptionForTest()
	fset := token.NewFileSet()
	src := `package p

func f() {
	a() //lint:allow rand seeded fixture
	b() //lint:allow rand this one is stale
	c() //lint:allow rand
	d() //lint:allow nosuchcheck because
}
`
	f := parse(t, fset, "/x/a.go", src)
	idx := NewIndex(fset, []*ast.File{f})

	// Consume only the first annotation, as an analyzer would.
	var aPos token.Pos
	ast.Inspect(f, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && call.Fun.(*ast.Ident).Name == "a" {
			aPos = call.Pos()
		}
		return true
	})
	if !idx.Allowed(aPos, "rand") {
		t.Fatal("setup: first annotation must match")
	}

	got := Audit(fset, []*ast.File{f}, known)
	if len(got) != 3 {
		t.Fatalf("want 3 findings, got %d: %+v", len(got), got)
	}
	if !strings.Contains(got[0].Message, "stale suppression") || got[0].Line != 5 {
		t.Errorf("finding 0: want stale at line 5, got %+v", got[0])
	}
	if !strings.Contains(got[1].Message, "no justification") || got[1].Line != 6 {
		t.Errorf("finding 1: want missing justification at line 6, got %+v", got[1])
	}
	if !strings.Contains(got[2].Message, "unknown check") || got[2].Line != 7 {
		t.Errorf("finding 2: want unknown check at line 7, got %+v", got[2])
	}
}

func TestAuditSkipsStalenessInTestFiles(t *testing.T) {
	ResetConsumptionForTest()
	fset := token.NewFileSet()
	src := `package p

func f() {
	a() //lint:allow rand never consumed but in a test file
	b() //lint:allow rand
}
`
	f := parse(t, fset, "/x/a_test.go", src)
	got := Audit(fset, []*ast.File{f}, known)
	if len(got) != 1 {
		t.Fatalf("want only the grammar finding, got %d: %+v", len(got), got)
	}
	if !strings.Contains(got[0].Message, "no justification") {
		t.Errorf("want missing-justification, got %+v", got[0])
	}
}

func TestAllowedFunc(t *testing.T) {
	ResetConsumptionForTest()
	fset := token.NewFileSet()
	src := `package p

//lint:allow rand whole function is fixture setup
func f() {
	a()
}

func g() {
	b()
}
`
	f := parse(t, fset, "/x/a.go", src)
	idx := NewIndex(fset, []*ast.File{f})
	var fd, gd *ast.FuncDecl
	for _, d := range f.Decls {
		if d, ok := d.(*ast.FuncDecl); ok {
			if d.Name.Name == "f" {
				fd = d
			} else {
				gd = d
			}
		}
	}
	if !idx.AllowedFunc(fd, "rand") {
		t.Error("doc-comment annotation must waive the whole function")
	}
	if idx.AllowedFunc(gd, "rand") {
		t.Error("unannotated function must not be waived")
	}
	if idx.AllowedFunc(nil, "rand") {
		t.Error("nil func decl is never waived")
	}
}
