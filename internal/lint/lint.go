// Package lint is reprolint: a go/analysis-style suite that machine-
// enforces the repository's reproducibility and concurrency conventions.
// Until this package existed those conventions were enforced by code
// review and spot tests only; a single map range in a reducer or a plain
// read of a CAS word silently voids guarantees the acceptance tests
// depend on.
//
// The five analyzers, and the PR that introduced each convention:
//
//	determinism   engine packages (bsp, mr, core, mpx, anf) must not
//	              range over maps, use math/rand, or read time.Now
//	              un-annotated (bit-for-bit determinism, PRs 2-4).
//	atomicfield   a struct field accessed via sync/atomic anywhere in a
//	              package must never be accessed plainly outside tests
//	              and annotated single-writer fast paths (claim words,
//	              PRs 2-3).
//	lockedsuffix  functions named *Locked may only be called with the
//	              guarding mutex held (serve cache conventions, PR 1+5).
//	ctxflow       no context.Background/TODO in internal non-test code;
//	              exported superstep-looping free functions must accept
//	              a context.Context (cancellation contract, PR 5).
//	metricname    metric families must be reprod_-prefixed, constant,
//	              registered exactly once, and covered by
//	              requiredFamilies (observability surface, PR 6).
//
// Violations that are deliberate carry a //lint:allow annotation (see
// internal/lint/allow for the grammar); the annotation forces the
// justification to live next to the exception.
//
// The suite runs as a standard vettool:
//
//	go build -o bin/reprolint ./cmd/reprolint
//	go vet -vettool=bin/reprolint ./...
//
// or directly via "bin/reprolint ./...", which re-execs go vet. The
// framework underneath (internal/lint/analysis, .../unitchecker,
// .../analysistest) is a stdlib-only re-implementation of the x/tools
// go/analysis core, because this repository vendors nothing.
package lint

import (
	"repro/internal/lint/analysis"
	"repro/internal/lint/atomicfield"
	"repro/internal/lint/ctxflow"
	"repro/internal/lint/determinism"
	"repro/internal/lint/lockedsuffix"
	"repro/internal/lint/metricname"
)

// Analyzers returns the full reprolint suite in deterministic order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicfield.Analyzer,
		ctxflow.Analyzer,
		determinism.Analyzer,
		lockedsuffix.Analyzer,
		metricname.Analyzer,
	}
}
