// Package lint is reprolint: a go/analysis-style suite that machine-
// enforces the repository's reproducibility and concurrency conventions.
// Until this package existed those conventions were enforced by code
// review and spot tests only; a single map range in a reducer or a plain
// read of a CAS word silently voids guarantees the acceptance tests
// depend on.
//
// The eight analyzers, and the PR that introduced each convention:
//
//	determinism   engine packages (bsp, mr, core, mpx, anf) must not
//	              range over maps, use math/rand, or read time.Now
//	              un-annotated (bit-for-bit determinism, PRs 2-4).
//	atomicfield   a struct field accessed via sync/atomic anywhere in a
//	              package must never be accessed plainly outside tests
//	              and annotated single-writer fast paths (claim words,
//	              PRs 2-3).
//	lockedsuffix  functions named *Locked may only be called with the
//	              guarding mutex held (serve cache conventions, PR 1+5).
//	ctxflow       no context.Background/TODO in internal non-test code;
//	              exported superstep-looping free functions must accept
//	              a context.Context (cancellation contract, PR 5).
//	metricname    metric families must be reprod_-prefixed, constant,
//	              registered exactly once, and covered by
//	              requiredFamilies (observability surface, PR 6).
//	hotalloc      //lint:hotpath functions and their transitive callees
//	              must contain no allocation sites, checked over the
//	              function CFG with cold error paths excused and
//	              cross-package verdicts carried by facts (the PR 7
//	              zero-allocation batch path, made a build-time
//	              contract in PR 10).
//	goleak        every go statement needs a provable termination path:
//	              escapable loops, a close() for ranged channels,
//	              WaitGroup Add/Done matched on all CFG paths (the
//	              PR 5/8 goroutine discipline, PR 10).
//	lockorder     per-package mutex-acquisition edges are exported as
//	              facts and the union — the repo-wide lock graph — must
//	              be acyclic; any cycle is a potential deadlock (PR 10).
//
// The last three ride internal/lint/cfg, a lightweight intra-procedural
// CFG/dataflow layer over go/ast (branch, loop, defer, and panic edges;
// reachability and all-paths-hit queries).
//
// Violations that are deliberate carry a //lint:allow annotation (see
// internal/lint/allow for the grammar); the annotation forces the
// justification to live next to the exception, and the justification is
// mandatory. Suppressions are themselves audited: after the full suite
// runs, any //lint:allow whose check never fired on its line is reported
// as stale (internal/lint/allow.Audit), so waived exceptions cannot
// outlive the code that needed them.
//
// The suite runs as a standard vettool:
//
//	go build -o bin/reprolint ./cmd/reprolint
//	go vet -vettool=bin/reprolint ./...
//
// or directly via "bin/reprolint ./...", which re-execs go vet and maps
// the outcome onto diagnosable exit codes: 0 clean, 2 findings, 1
// internal analyzer error. The framework underneath
// (internal/lint/analysis, .../unitchecker, .../analysistest) is a
// stdlib-only re-implementation of the x/tools go/analysis core, because
// this repository vendors nothing.
package lint

import (
	"repro/internal/lint/analysis"
	"repro/internal/lint/atomicfield"
	"repro/internal/lint/ctxflow"
	"repro/internal/lint/determinism"
	"repro/internal/lint/goleak"
	"repro/internal/lint/hotalloc"
	"repro/internal/lint/lockedsuffix"
	"repro/internal/lint/lockorder"
	"repro/internal/lint/metricname"
)

// Analyzers returns the full reprolint suite in deterministic order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicfield.Analyzer,
		ctxflow.Analyzer,
		determinism.Analyzer,
		goleak.Analyzer,
		hotalloc.Analyzer,
		lockedsuffix.Analyzer,
		lockorder.Analyzer,
		metricname.Analyzer,
	}
}

// KnownChecks lists every //lint:allow check name the suite consumes;
// the allow.Audit stale-suppression sweep keys off it.
func KnownChecks() map[string]bool {
	return map[string]bool{
		"walltime":    true, // determinism
		"mapiter":     true, // determinism
		"rand":        true, // determinism
		"plainatomic": true, // atomicfield
		"locked":      true, // lockedsuffix
		"background":  true, // ctxflow
		"alloc":       true, // hotalloc
		"goroutine":   true, // goleak
		"lockorder":   true, // lockorder
	}
}
