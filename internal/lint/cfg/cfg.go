// Package cfg builds intra-procedural control-flow graphs over go/ast for
// the dataflow-capable reprolint analyzers (hotalloc, goleak, lockorder).
//
// The graph is deliberately lightweight — basic blocks of leaf statements
// and decomposed conditions, connected by branch, loop, defer, and
// panic-aware edges — but it is a real CFG:
//
//   - if/for/range/switch/type-switch/select decompose into header and
//     arm blocks; break, continue, goto, fallthrough, and labels connect
//     to their targets.
//   - return edges to Graph.Exit; panic(), runtime.Goexit, os.Exit,
//     log.Fatal*, and the testing FailNow family edge to Graph.Panic (the
//     abnormal-exit sink), so "reaches a clean return" and "terminates at
//     all" are distinct questions.
//   - a for with no condition has no exit edge unless its body breaks,
//     returns, or jumps out; range always has an exit edge (a channel
//     range exits when the channel is closed — whether anyone closes it
//     is the analyzer's question, not the CFG's).
//   - defer bodies are not inlined into the block structure; DeferStmt
//     nodes stay in their blocks and the deferred calls are additionally
//     collected in Graph.Defers, since they run at every function exit.
//
// On top of the block graph the package offers the two dataflow queries
// the analyzers share: forward reachability (Reaches) and an all-paths
// "must hit" analysis (AllPathsHitBefore / AllExitPathsHit) used for
// WaitGroup Add/Done pairing and allocation cold-path pruning.
//
// The builder is purely syntactic — no *types.Info — so the same graphs
// serve the type-checked unitchecker passes and lightweight whole-repo
// sweeps alike.
package cfg

import (
	"go/ast"
)

// A Block is a basic block: leaf statements and decomposed condition
// expressions in evaluation order, with successor edges.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block

	preds []*Block
}

// A Graph is the CFG of one function body.
type Graph struct {
	Entry *Block
	// Exit is the clean-termination sink: returns and the implicit fall
	// off the end of the body edge here.
	Exit *Block
	// Panic is the abnormal-exit sink: panic calls and the no-return
	// family (os.Exit, log.Fatal*, runtime.Goexit, testing's FailNow and
	// friends) edge here instead.
	Panic  *Block
	Blocks []*Block
	// Defers collects every deferred call in source order; they run at
	// every exit of the function.
	Defers []*ast.CallExpr

	blockOf map[ast.Node]*Block
	// loops maps each ForStmt/RangeStmt to its header and after blocks,
	// for loop-escape queries.
	loops map[ast.Stmt]*Loop
}

// A Loop records the header and after blocks of one for/range statement.
type Loop struct {
	Stmt  ast.Stmt
	Head  *Block
	After *Block
}

// New builds the CFG of body. A nil body yields a graph whose entry edges
// straight to exit.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{
		blockOf: make(map[ast.Node]*Block),
		loops:   make(map[ast.Stmt]*Loop),
	}
	b := &builder{g: g, labels: make(map[string]*labelBlocks)}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	g.Panic = b.newBlock()
	b.cur = g.Entry
	if body != nil {
		b.stmt(body)
	}
	// Implicit return at the end of the body.
	if b.cur != nil {
		b.edge(b.cur, g.Exit)
	}
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			s.preds = append(s.preds, blk)
		}
	}
	return g
}

// BlockOf returns the block holding the given leaf statement or decomposed
// condition node, or nil if the node was never placed (e.g. a statement
// nested inside a FuncLit).
func (g *Graph) BlockOf(n ast.Node) *Block { return g.blockOf[n] }

// Loops returns the loop records of every for/range statement in the body
// (excluding loops inside nested function literals).
func (g *Graph) Loops() []*Loop {
	out := make([]*Loop, 0, len(g.loops))
	// Deterministic order: by header block index.
	for _, l := range g.loops {
		out = append(out, l)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].Head.Index > out[j].Head.Index; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// Reaches reports whether a block satisfying want is reachable from `from`
// (inclusive) along successor edges.
func (g *Graph) Reaches(from *Block, want func(*Block) bool) bool {
	if from == nil {
		return false
	}
	seen := make([]bool, len(g.Blocks))
	stack := []*Block{from}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[b.Index] {
			continue
		}
		seen[b.Index] = true
		if want(b) {
			return true
		}
		stack = append(stack, b.Succs...)
	}
	return false
}

// ExitReachable reports whether any clean return (Graph.Exit) is reachable
// from the entry.
func (g *Graph) ExitReachable() bool {
	return g.Reaches(g.Entry, func(b *Block) bool { return b == g.Exit })
}

// Terminates reports whether any exit — clean or panicking — is reachable
// from the entry.
func (g *Graph) Terminates() bool {
	return g.Reaches(g.Entry, func(b *Block) bool { return b == g.Exit || b == g.Panic })
}

// AllPathsHitBefore reports whether every path from the entry to target (a
// leaf node placed in some block) passes a node satisfying hit strictly
// before reaching target. It is a forward must-analysis: block entry state
// is the AND over predecessors, and unreachable code is vacuously true.
// Returns false when target was never placed.
func (g *Graph) AllPathsHitBefore(target ast.Node, hit func(ast.Node) bool) bool {
	tb := g.blockOf[target]
	if tb == nil {
		return false
	}
	in := g.mustStates(hit)
	state := in[tb.Index]
	for _, n := range tb.Nodes {
		if n == target {
			return state
		}
		if hit(n) {
			state = true
		}
	}
	return state
}

// AllExitPathsHit reports whether every path from the entry to the clean
// exit passes a node satisfying hit. Paths ending in the panic sink are
// not required to hit. Vacuously true when the exit is unreachable.
func (g *Graph) AllExitPathsHit(hit func(ast.Node) bool) bool {
	in := g.mustStates(hit)
	return in[g.Exit.Index]
}

// mustStates runs the forward "all paths hit" fixpoint, returning the
// at-block-entry state for every block.
func (g *Graph) mustStates(hit func(ast.Node) bool) []bool {
	n := len(g.Blocks)
	in := make([]bool, n)
	out := make([]bool, n)
	gen := make([]bool, n)
	for _, b := range g.Blocks {
		for _, nd := range b.Nodes {
			if hit(nd) {
				gen[b.Index] = true
				break
			}
		}
		// Top element: everything starts "hit on all paths" except the
		// entry, and the meet narrows it down.
		in[b.Index] = b != g.Entry
		out[b.Index] = in[b.Index] || gen[b.Index]
	}
	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			if b == g.Entry {
				continue
			}
			st := true
			if len(b.preds) == 0 {
				// Unreachable: stays vacuously true.
				st = in[b.Index]
			}
			for _, p := range b.preds {
				if !out[p.Index] {
					st = false
					break
				}
			}
			if st != in[b.Index] {
				in[b.Index] = st
				changed = true
			}
			o := in[b.Index] || gen[b.Index]
			if o != out[b.Index] {
				out[b.Index] = o
				changed = true
			}
		}
	}
	return in
}

// builder threads the construction state.
type builder struct {
	g   *Graph
	cur *Block // nil while the walker is in unreachable code

	// Break/continue target stack. Entries carry the statement's label
	// ("" for unlabeled) so labeled branches find the right loop.
	scopes []brScope
	labels map[string]*labelBlocks
}

type brScope struct {
	label string
	brk   *Block
	cont  *Block // nil for switch/select scopes
}

type labelBlocks struct {
	target *Block // goto target (start of the labeled statement)
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// place appends a leaf node to the current block, creating a detached
// block when walking unreachable code so later queries still resolve.
func (b *builder) place(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock() // unreachable continuation
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
	b.g.blockOf[n] = b.cur
}

// stmt walks one statement, updating the current block.
func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}
	case *ast.IfStmt:
		b.stmt(s.Init)
		b.place(s.Cond)
		cond := b.cur
		then := b.newBlock()
		after := b.newBlock()
		b.edge(cond, then)
		b.cur = then
		b.stmt(s.Body)
		b.edge(b.cur, after)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			b.edge(b.cur, after)
		} else {
			b.edge(cond, after)
		}
		b.cur = after
	case *ast.ForStmt:
		b.forStmt(s, "")
	case *ast.RangeStmt:
		b.rangeStmt(s, "")
	case *ast.LabeledStmt:
		b.labeled(s)
	case *ast.SwitchStmt:
		b.stmt(s.Init)
		if s.Tag != nil {
			b.place(s.Tag)
		}
		b.switchBody(s.Body, hasDefaultClause(s.Body), "")
	case *ast.TypeSwitchStmt:
		b.stmt(s.Init)
		b.place(s.Assign)
		b.switchBody(s.Body, hasDefaultClause(s.Body), "")
	case *ast.SelectStmt:
		b.selectStmt(s, "")
	case *ast.ReturnStmt:
		b.place(s)
		b.edge(b.cur, b.g.Exit)
		b.cur = nil
	case *ast.BranchStmt:
		b.place(s)
		b.branch(s)
		b.cur = nil
	case *ast.DeferStmt:
		b.place(s)
		b.g.Defers = append(b.g.Defers, s.Call)
	case *ast.ExprStmt:
		b.place(s)
		if noReturnCall(s.X) {
			b.edge(b.cur, b.g.Panic)
			b.cur = nil
		}
	default:
		// Leaf statements: assignments, declarations, sends, go, inc/dec.
		b.place(s)
	}
}

// forStmt builds: cur -> head -(body)-> ... -> head, head -> after only
// when a condition exists.
func (b *builder) forStmt(s *ast.ForStmt, label string) {
	b.stmt(s.Init)
	head := b.newBlock()
	after := b.newBlock()
	b.edge(b.cur, head)
	b.cur = head
	if s.Cond != nil {
		b.place(s.Cond)
		b.edge(head, after)
	}
	body := b.newBlock()
	b.edge(head, body)
	b.g.loops[s] = &Loop{Stmt: s, Head: head, After: after}
	b.pushScope(label, after, head)
	b.cur = body
	b.stmt(s.Body)
	b.stmt(s.Post)
	b.edge(b.cur, head)
	b.popScope()
	b.cur = after
}

// rangeStmt always has a head -> after exit edge: every range form
// (slice, map, int, func, channel) can run out of elements.
func (b *builder) rangeStmt(s *ast.RangeStmt, label string) {
	b.place(s.X)
	head := b.newBlock()
	after := b.newBlock()
	b.edge(b.cur, head)
	b.edge(head, after)
	body := b.newBlock()
	b.edge(head, body)
	b.g.loops[s] = &Loop{Stmt: s, Head: head, After: after}
	b.pushScope(label, after, head)
	b.cur = body
	b.stmt(s.Body)
	b.edge(b.cur, head)
	b.popScope()
	b.cur = after
}

func (b *builder) labeled(s *ast.LabeledStmt) {
	start := b.newBlock()
	b.edge(b.cur, start)
	b.cur = start
	lb := b.labels[s.Label.Name]
	if lb == nil {
		lb = &labelBlocks{}
		b.labels[s.Label.Name] = lb
	}
	if lb.target != nil {
		// A goto already minted a placeholder target: bridge it here.
		b.edge(lb.target, start)
	} else {
		lb.target = start
	}
	switch inner := s.Stmt.(type) {
	case *ast.ForStmt:
		b.forStmt(inner, s.Label.Name)
	case *ast.RangeStmt:
		b.rangeStmt(inner, s.Label.Name)
	case *ast.SwitchStmt:
		b.stmt(inner.Init)
		if inner.Tag != nil {
			b.place(inner.Tag)
		}
		b.switchBody(inner.Body, hasDefaultClause(inner.Body), s.Label.Name)
	case *ast.TypeSwitchStmt:
		b.stmt(inner.Init)
		b.place(inner.Assign)
		b.switchBody(inner.Body, hasDefaultClause(inner.Body), s.Label.Name)
	case *ast.SelectStmt:
		b.selectStmt(inner, s.Label.Name)
	default:
		b.stmt(s.Stmt)
	}
}

// switchBody wires one case clause per arm; fallthrough edges to the next
// clause's body block.
func (b *builder) switchBody(body *ast.BlockStmt, hasDefault bool, label string) {
	head := b.cur
	if head == nil {
		head = b.newBlock()
		b.cur = head
	}
	after := b.newBlock()
	b.pushScope(label, after, nil)
	arms := make([]*Block, len(body.List))
	for i := range body.List {
		arms[i] = b.newBlock()
		b.edge(head, arms[i])
	}
	if !hasDefault {
		b.edge(head, after)
	}
	for i, st := range body.List {
		cl, ok := st.(*ast.CaseClause)
		if !ok {
			continue
		}
		b.cur = arms[i]
		for _, e := range cl.List {
			b.place(e)
		}
		for _, bs := range cl.Body {
			if br, isBr := bs.(*ast.BranchStmt); isBr && br.Tok.String() == "fallthrough" {
				if i+1 < len(arms) {
					b.edge(b.cur, arms[i+1])
				}
				b.cur = nil
				continue
			}
			b.stmt(bs)
		}
		b.edge(b.cur, after)
	}
	b.popScope()
	b.cur = after
}

// selectStmt: one arm per comm clause. A select with no arms blocks
// forever (no successors); one with arms branches to each. A default
// clause is just another arm — select never blocks structurally when the
// arms exist, and whether a comm arm ever fires is the analyzers'
// liveness question, not the CFG's.
func (b *builder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.cur
	if head == nil {
		head = b.newBlock()
	}
	after := b.newBlock()
	b.pushScope(label, after, nil)
	for _, st := range s.Body.List {
		cl, ok := st.(*ast.CommClause)
		if !ok {
			continue
		}
		arm := b.newBlock()
		b.edge(head, arm)
		b.cur = arm
		b.stmt(cl.Comm)
		for _, bs := range cl.Body {
			b.stmt(bs)
		}
		b.edge(b.cur, after)
	}
	b.popScope()
	if len(s.Body.List) == 0 {
		// select {} blocks forever: no edge out of head.
		b.cur = nil
		_ = after
		return
	}
	b.cur = after
}

func (b *builder) pushScope(label string, brk, cont *Block) {
	b.scopes = append(b.scopes, brScope{label: label, brk: brk, cont: cont})
}

func (b *builder) popScope() { b.scopes = b.scopes[:len(b.scopes)-1] }

func (b *builder) branch(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok.String() {
	case "break":
		for i := len(b.scopes) - 1; i >= 0; i-- {
			sc := b.scopes[i]
			if label == "" || sc.label == label {
				b.edge(b.cur, sc.brk)
				return
			}
		}
	case "continue":
		for i := len(b.scopes) - 1; i >= 0; i-- {
			sc := b.scopes[i]
			if sc.cont != nil && (label == "" || sc.label == label) {
				b.edge(b.cur, sc.cont)
				return
			}
		}
	case "goto":
		lb := b.labels[label]
		if lb == nil {
			lb = &labelBlocks{}
			b.labels[label] = lb
		}
		if lb.target == nil {
			// Forward goto: mint a placeholder the label will bridge.
			lb.target = b.newBlock()
		}
		b.edge(b.cur, lb.target)
	}
	// fallthrough is handled by switchBody.
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, st := range body.List {
		if cl, ok := st.(*ast.CaseClause); ok && cl.List == nil {
			return true
		}
	}
	return false
}

// noReturnCall reports whether expr is a call that never returns: the
// panic builtin, os.Exit, runtime.Goexit, log.Fatal*, or the testing
// FailNow family (Fatal/Fatalf/FailNow/Skip/Skipf/SkipNow — which call
// runtime.Goexit on the calling goroutine).
func noReturnCall(expr ast.Expr) bool {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if x, ok := fun.X.(*ast.Ident); ok {
			switch {
			case x.Name == "os" && name == "Exit":
				return true
			case x.Name == "runtime" && name == "Goexit":
				return true
			case x.Name == "log" && (name == "Fatal" || name == "Fatalf" || name == "Fatalln"):
				return true
			}
		}
		switch name {
		case "Fatal", "Fatalf", "FailNow", "Skip", "Skipf", "SkipNow":
			return true
		}
	}
	return false
}
