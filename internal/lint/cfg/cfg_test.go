package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// build parses src as the body of a function and returns its CFG.
func build(t *testing.T, body string) *Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v\nsource:\n%s", err, src)
	}
	fn := f.Decls[len(f.Decls)-1].(*ast.FuncDecl)
	return New(fn.Body)
}

func TestStraightLineReachesExit(t *testing.T) {
	g := build(t, "x := 1\n_ = x")
	if !g.ExitReachable() {
		t.Fatal("straight-line body must reach exit")
	}
	if !g.Terminates() {
		t.Fatal("straight-line body must terminate")
	}
}

func TestInfiniteLoopDoesNotReachExit(t *testing.T) {
	g := build(t, "for {\nwork()\n}")
	if g.ExitReachable() {
		t.Fatal("for{} with no break must not reach exit")
	}
	if g.Terminates() {
		t.Fatal("for{} with no break must not terminate")
	}
	loops := g.Loops()
	if len(loops) != 1 {
		t.Fatalf("want 1 loop, got %d", len(loops))
	}
	l := loops[0]
	if g.Reaches(l.Head, func(b *Block) bool { return b == l.After || b == g.Exit || b == g.Panic }) {
		t.Fatal("infinite loop must not escape")
	}
}

func TestLoopWithBreakEscapes(t *testing.T) {
	g := build(t, "for {\nif done() {\nbreak\n}\n}")
	if !g.ExitReachable() {
		t.Fatal("for with break must reach exit")
	}
	l := g.Loops()[0]
	if !g.Reaches(l.Head, func(b *Block) bool { return b == l.After }) {
		t.Fatal("break must make After reachable from Head")
	}
}

func TestLoopWithReturnEscapes(t *testing.T) {
	g := build(t, "for {\nif done() {\nreturn\n}\n}")
	l := g.Loops()[0]
	if g.Reaches(l.Head, func(b *Block) bool { return b == l.After }) {
		t.Fatal("return does not pass through After")
	}
	if !g.Reaches(l.Head, func(b *Block) bool { return b == g.Exit }) {
		t.Fatal("return must make Exit reachable from the loop head")
	}
}

func TestCondLoopEscapes(t *testing.T) {
	g := build(t, "for i := 0; i < 10; i++ {\nwork()\n}")
	l := g.Loops()[0]
	if !g.Reaches(l.Head, func(b *Block) bool { return b == l.After }) {
		t.Fatal("conditional loop must have a head->after edge")
	}
}

func TestRangeLoopAlwaysEscapes(t *testing.T) {
	g := build(t, "for v := range ch {\nuse(v)\n}")
	l := g.Loops()[0]
	if !g.Reaches(l.Head, func(b *Block) bool { return b == l.After }) {
		t.Fatal("range loop must have a head->after edge")
	}
}

func TestPanicEdgesToPanicSink(t *testing.T) {
	g := build(t, `if bad() {
panic("no")
}
ok()`)
	if !g.ExitReachable() {
		t.Fatal("non-panicking path must still reach exit")
	}
	if !g.Reaches(g.Entry, func(b *Block) bool { return b == g.Panic }) {
		t.Fatal("panic() must edge to the panic sink")
	}
}

func TestOsExitIsNoReturn(t *testing.T) {
	g := build(t, "os.Exit(1)\nunreachable()")
	if g.ExitReachable() {
		t.Fatal("code after os.Exit must be unreachable")
	}
}

func TestEmptySelectBlocksForever(t *testing.T) {
	g := build(t, "select {}")
	if g.Terminates() {
		t.Fatal("select{} must not terminate")
	}
}

func TestSelectWithReturnArm(t *testing.T) {
	g := build(t, `for {
select {
case <-ctx.Done():
return
case v := <-work:
use(v)
}
}`)
	if !g.ExitReachable() {
		t.Fatal("ctx.Done/return arm must reach exit")
	}
	l := g.Loops()[0]
	if !g.Reaches(l.Head, func(b *Block) bool { return b == g.Exit }) {
		t.Fatal("loop must escape via the return arm")
	}
}

func TestSelectLoopWithoutExitArm(t *testing.T) {
	g := build(t, `for {
select {
case a := <-ch1:
use(a)
case b := <-ch2:
use(b)
}
}`)
	if g.Terminates() {
		t.Fatal("select loop with no return/break arm must not terminate")
	}
}

func TestSwitchWithoutDefaultFallsThrough(t *testing.T) {
	g := build(t, `switch x {
case 1:
one()
}
after()`)
	if !g.ExitReachable() {
		t.Fatal("switch without default must have a no-match path to exit")
	}
}

func TestSwitchAllArmsReturnWithDefault(t *testing.T) {
	g := build(t, `switch x {
case 1:
return
default:
return
}
`)
	if !g.ExitReachable() {
		t.Fatal("return arms reach exit")
	}
	// But the statement after the switch is unreachable: the implicit
	// fallthrough block has no predecessors. Spot-check via must-analysis:
	// every exit path returns, so "hit a return" must hold at exit.
	if !g.AllExitPathsHit(func(n ast.Node) bool {
		_, ok := n.(*ast.ReturnStmt)
		return ok
	}) {
		t.Fatal("every exit path goes through a return")
	}
}

func TestLabeledBreakEscapesOuterLoop(t *testing.T) {
	g := build(t, `outer:
for {
for {
if done() {
break outer
}
}
}`)
	if !g.ExitReachable() {
		t.Fatal("labeled break must escape both loops")
	}
	for _, l := range g.Loops() {
		if _, ok := l.Stmt.(*ast.ForStmt); !ok {
			continue
		}
		if !g.Reaches(l.Head, func(b *Block) bool { return b == g.Exit || b == l.After }) {
			t.Fatal("both loops must be escapable via the labeled break")
		}
	}
}

func TestGotoForwardAndBack(t *testing.T) {
	g := build(t, `i := 0
loop:
if i < 10 {
i++
goto loop
}
done()`)
	if !g.ExitReachable() {
		t.Fatal("goto loop with conditional exit must reach exit")
	}
}

func TestDefersCollected(t *testing.T) {
	g := build(t, "defer mu.Unlock()\ndefer wg.Done()\nwork()")
	if len(g.Defers) != 2 {
		t.Fatalf("want 2 defers, got %d", len(g.Defers))
	}
}

// findNode returns the first placed node whose source text contains want.
func findNode(t *testing.T, g *Graph, fset *token.FileSet, want string) ast.Node {
	t.Helper()
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if nodeContains(n, want) {
				return n
			}
		}
	}
	t.Fatalf("no placed node mentioning %q", want)
	return nil
}

func nodeContains(n ast.Node, want string) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok && strings.Contains(id.Name, want) {
			found = true
		}
		return !found
	})
	return found
}

func TestAllPathsHitBeforeSameBlock(t *testing.T) {
	g := build(t, "wgAdd()\ngoSpawn()")
	target := findNode(t, g, nil, "goSpawn")
	if !g.AllPathsHitBefore(target, func(n ast.Node) bool { return nodeContains(n, "wgAdd") }) {
		t.Fatal("wgAdd precedes goSpawn in the same block")
	}
}

func TestAllPathsHitBeforeBranchMiss(t *testing.T) {
	g := build(t, `if cond() {
wgAdd()
}
goSpawn()`)
	target := findNode(t, g, nil, "goSpawn")
	if g.AllPathsHitBefore(target, func(n ast.Node) bool { return nodeContains(n, "wgAdd") }) {
		t.Fatal("the else path skips wgAdd; must-analysis has to catch it")
	}
}

func TestAllPathsHitBeforeBothBranches(t *testing.T) {
	g := build(t, `if cond() {
wgAdd()
} else {
wgAdd()
}
goSpawn()`)
	target := findNode(t, g, nil, "goSpawn")
	if !g.AllPathsHitBefore(target, func(n ast.Node) bool { return nodeContains(n, "wgAdd") }) {
		t.Fatal("both branches hit wgAdd")
	}
}

func TestAllPathsHitBeforeInsideLoop(t *testing.T) {
	// Add and go in the same loop body: every iteration Adds before
	// spawning, even though the loop head is upstream of both.
	g := build(t, `for i := 0; i < n; i++ {
wgAdd()
goSpawn()
}`)
	target := findNode(t, g, nil, "goSpawn")
	if !g.AllPathsHitBefore(target, func(n ast.Node) bool { return nodeContains(n, "wgAdd") }) {
		t.Fatal("Add directly before go inside a loop body must dominate")
	}
}

func TestAllExitPathsHitEarlyReturnMiss(t *testing.T) {
	g := build(t, `if short() {
return
}
wgDone()`)
	if g.AllExitPathsHit(func(n ast.Node) bool { return nodeContains(n, "wgDone") }) {
		t.Fatal("the early return skips wgDone")
	}
}

func TestAllExitPathsHitDefer(t *testing.T) {
	g := build(t, `defer wgDone()
if short() {
return
}
work()`)
	// The DeferStmt itself is placed before any return, so hitting it
	// covers all exits.
	if !g.AllExitPathsHit(func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		return ok && nodeContains(d, "wgDone")
	}) {
		t.Fatal("top-level defer covers every exit path")
	}
}

func TestPanicPathNotRequiredToHit(t *testing.T) {
	g := build(t, `if bad() {
panic("boom")
}
cleanup()`)
	if !g.AllExitPathsHit(func(n ast.Node) bool { return nodeContains(n, "cleanup") }) {
		t.Fatal("panicking paths are exempt from the exit-hit requirement")
	}
}

func TestNilBody(t *testing.T) {
	g := New(nil)
	if !g.ExitReachable() {
		t.Fatal("empty body reaches exit")
	}
}

func TestTypeSwitchAndSelectPlacement(t *testing.T) {
	g := build(t, `switch v := x.(type) {
case int:
use(v)
case string:
use(v)
}
tail()`)
	if !g.ExitReachable() {
		t.Fatal("type switch must flow to exit")
	}
	if findNode(t, g, nil, "tail") == nil {
		t.Fatal("tail placed")
	}
}
