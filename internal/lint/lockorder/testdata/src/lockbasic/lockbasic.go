// Package lockbasic exercises same-package lock-order cycles: an AB/BA
// inversion, a re-acquire self-deadlock, and release behavior.
package lockbasic

import "sync"

type store struct {
	mu    sync.Mutex
	idxMu sync.Mutex
}

func (s *store) lockBoth() {
	s.mu.Lock()
	s.idxMu.Lock() // want `lock-order cycle: acquiring lockbasic.store.idxMu while holding lockbasic.store.mu`
	s.idxMu.Unlock()
	s.mu.Unlock()
}

func (s *store) lockBothReversed() {
	s.idxMu.Lock()
	s.mu.Lock() // want `lock-order cycle: acquiring lockbasic.store.mu while holding lockbasic.store.idxMu`
	s.mu.Unlock()
	s.idxMu.Unlock()
}

func (s *store) reacquire() {
	s.mu.Lock()
	defer s.mu.Unlock()
	helper()
	s.mu.Lock() // want `lock-order violation: lockbasic.store.mu acquired while already held; this deadlocks`
	s.mu.Unlock()
}

func helper() {}

// released proves an Unlock drops the held set: mu is released before
// idxMu is taken, so no edge and no cycle from this function.
func (s *store) released() {
	s.mu.Lock()
	s.mu.Unlock()
	s.idxMu.Lock()
	s.idxMu.Unlock()
}
