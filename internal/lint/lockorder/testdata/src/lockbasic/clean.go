package lockbasic

import "sync"

// registry always takes parent before child: a consistent order is a DAG
// and produces no findings.
type registry struct {
	parentMu sync.RWMutex
	childMu  sync.Mutex
}

func (r *registry) readThenWrite() {
	r.parentMu.RLock()
	r.childMu.Lock()
	r.childMu.Unlock()
	r.parentMu.RUnlock()
}

func (r *registry) deferStyle() {
	r.parentMu.Lock()
	defer r.parentMu.Unlock()
	r.childMu.Lock()
	defer r.childMu.Unlock()
}

// branchLocal acquires in one branch and releases there; the branch-local
// acquisition does not leak into the join.
func (r *registry) branchLocal(cond bool) {
	if cond {
		r.parentMu.Lock()
		r.parentMu.Unlock()
	}
	r.childMu.Lock()
	r.childMu.Unlock()
	if cond {
		r.parentMu.Lock()
		r.parentMu.Unlock()
	}
}
