// Package lockcross closes a cross-package lock cycle: lockdep.Sync
// orders cache -> journal; Compact here orders journal -> cache. Neither
// package deadlocks alone — only the union of the two lock graphs shows
// it, which is exactly what the Edges fact exists for.
package lockcross

import "lockdep"

// Compact takes the journal lock, then the cache lock.
func Compact() {
	lockdep.JournalMu.Lock()
	defer lockdep.JournalMu.Unlock()
	lockdep.CacheMu.Lock() // want `lock-order cycle: acquiring lockdep.CacheMu while holding lockdep.JournalMu, but the reverse order exists \(lockdep.CacheMu -> lockdep.JournalMu\); potential deadlock`
	defer lockdep.CacheMu.Unlock()
}
