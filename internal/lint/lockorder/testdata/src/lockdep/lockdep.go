// Package lockdep contributes one half of a cross-package lock cycle:
// its Sync takes the cache lock, then the journal lock. The edge travels
// to dependents as the lockorder.Edges fact.
package lockdep

import "sync"

var (
	CacheMu   sync.Mutex
	JournalMu sync.Mutex
)

// Sync flushes under cache -> journal order.
func Sync() {
	CacheMu.Lock()
	defer CacheMu.Unlock()
	JournalMu.Lock()
	defer JournalMu.Unlock()
}
