package lockorder_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/lockorder"
)

func TestLockorder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockorder.Analyzer,
		"lockbasic", // AB/BA inversion, re-acquire, release semantics; clean.go is silent
		"lockcross", // cycle closed across packages via the Edges fact
	)
}
