// Package lockorder defines the analyzer recording mutex-acquisition
// order and reporting cycles in the resulting lock graph as potential
// deadlocks.
//
// Within each function the analyzer tracks the set of held sync.Mutex /
// sync.RWMutex locks along a branch-aware syntactic walk (the same
// discipline lockedsuffix uses: defer Unlock keeps the lock held to
// function end, branch-local acquisitions stay branch-local). Every
// acquisition made while other locks are held records directed edges
// held -> acquired, identified structurally:
//
//	pkgpath.Type.field   a mutex field, via the receiver's named type
//	pkgpath.var          a package-level mutex
//	pkgpath.func.name    a function-local mutex
//
// Each package exports its edge list as the lockorder.Edges fact; a
// package's check then runs over the union of its own edges and every
// dependency's (facts propagate transitively through the vetx files the
// unitchecker writes), so the repo-wide lock graph is assembled as
// cmd/reprolint sweeps the import DAG and any cross-package cycle is
// reported at the package that closes it. A cycle containing a local
// edge u -> v is reported at v's acquisition site, including the path
// back from v to u. The degenerate self-edge — re-acquiring a lock
// already held — is reported the same way.
//
// //lint:allow lockorder <why> on the acquisition line waives one edge.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/allow"
	"repro/internal/lint/analysis"
)

// Edge is one observed acquisition order: To was acquired while From was
// held, at Pos (file:line, basename).
type Edge struct {
	From, To, Pos string
}

// Edges is the package fact carrying the lock graph fragment.
type Edges struct {
	List []Edge
}

// AFact marks Edges as a fact type.
func (*Edges) AFact() {}

var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "mutex acquisition order must be acyclic across the repo\n\n" +
		"Records held->acquired edges per package as the lockorder.Edges fact,\n" +
		"unions them with all dependencies' edges, and reports any cycle in the\n" +
		"combined lock graph as a potential deadlock.",
	Run:       run,
	FactTypes: []analysis.Fact{(*Edges)(nil)},
}

// localEdge is an edge observed in this package, with its report anchor.
type localEdge struct {
	Edge
	pos token.Pos
}

type checker struct {
	pass  *analysis.Pass
	idx   *allow.Index
	fn    *ast.FuncDecl
	seen  map[[2]string]bool
	edges []localEdge
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{
		pass: pass,
		idx:  allow.NewIndex(pass.Fset, pass.Files),
		seen: make(map[[2]string]bool),
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.fn = fd
				c.walkStmts(make(lockState), fd.Body.List)
			}
		}
	}
	c.reportCycles()
	c.exportFact()
	return nil, nil
}

// lockState is the set of lock IDs held at a program point.
type lockState map[string]bool

func (s lockState) clone() lockState {
	out := make(lockState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// intersect keeps only locks held in both states: acquisitions that do
// not survive every branch are dropped rather than risk false edges.
func intersect(a, b lockState) lockState {
	out := make(lockState)
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

func (c *checker) walkStmts(held lockState, stmts []ast.Stmt) lockState {
	for _, s := range stmts {
		held = c.walkStmt(held, s)
	}
	return held
}

func (c *checker) walkStmt(held lockState, s ast.Stmt) lockState {
	switch s := s.(type) {
	case nil:
		return held
	case *ast.BlockStmt:
		return c.walkStmts(held, s.List)
	case *ast.ExprStmt:
		c.scanExpr(held, s.X, false)
		return held
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to function end; a
		// deferred Lock (pathological) still records its edges.
		c.scanExpr(held, s.Call, true)
		return held
	case *ast.IfStmt:
		held = c.walkStmt(held, s.Init)
		c.scanExpr(held, s.Cond, false)
		thenOut := c.walkStmts(held.clone(), s.Body.List)
		elseOut := held.clone()
		if s.Else != nil {
			elseOut = c.walkStmt(held.clone(), s.Else)
		}
		return intersect(thenOut, elseOut)
	case *ast.ForStmt:
		held = c.walkStmt(held, s.Init)
		if s.Cond != nil {
			c.scanExpr(held, s.Cond, false)
		}
		body := c.walkStmts(held.clone(), s.Body.List)
		c.walkStmt(body, s.Post)
		return held
	case *ast.RangeStmt:
		c.scanExpr(held, s.X, false)
		c.walkStmts(held.clone(), s.Body.List)
		return held
	case *ast.SwitchStmt:
		held = c.walkStmt(held, s.Init)
		if s.Tag != nil {
			c.scanExpr(held, s.Tag, false)
		}
		c.walkClauses(held, s.Body)
		return held
	case *ast.TypeSwitchStmt:
		held = c.walkStmt(held, s.Init)
		c.walkClauses(held, s.Body)
		return held
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			if comm, ok := cl.(*ast.CommClause); ok {
				inner := held.clone()
				inner = c.walkStmt(inner, comm.Comm)
				c.walkStmts(inner, comm.Body)
			}
		}
		return held
	case *ast.LabeledStmt:
		return c.walkStmt(held, s.Stmt)
	case *ast.GoStmt:
		// A spawned goroutine acquires on its own stack; its body is
		// walked when its function (or literal, at top level of some
		// function) is — not under the spawner's held set.
		return held
	default:
		// Assignments, declarations, sends, returns: locks may be
		// acquired in rvalue position (rare but legal).
		c.scanNode(held, s)
		return held
	}
}

func (c *checker) walkClauses(held lockState, body *ast.BlockStmt) {
	for _, cl := range body.List {
		if cc, ok := cl.(*ast.CaseClause); ok {
			c.walkStmts(held.clone(), cc.Body)
		}
	}
}

// scanNode applies scanExpr to every expression in a leaf statement.
func (c *checker) scanNode(held lockState, n ast.Node) {
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := x.(*ast.CallExpr); ok {
			c.applyCall(held, call, false)
		}
		return true
	})
}

// scanExpr scans one expression for mutex calls.
func (c *checker) scanExpr(held lockState, e ast.Expr, deferred bool) {
	ast.Inspect(e, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := x.(*ast.CallExpr); ok {
			c.applyCall(held, call, deferred)
		}
		return true
	})
}

// applyCall mutates held for one call, recording edges on acquisition.
func (c *checker) applyCall(held lockState, call *ast.CallExpr, deferred bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	kind := mutexMethod(c.pass.TypesInfo, sel)
	if kind == 0 {
		return
	}
	id := c.lockID(sel.X)
	if id == "" {
		return
	}
	switch kind {
	case acquire:
		froms := make([]string, 0, len(held))
		for from := range held {
			froms = append(froms, from)
		}
		sort.Strings(froms)
		// Self-edges included: re-acquiring a held Mutex deadlocks.
		for _, from := range froms {
			c.addEdge(from, id, call.Pos())
		}
		held[id] = true
	case release:
		if !deferred {
			delete(held, id)
		}
	}
}

const (
	acquire = 1
	release = 2
)

// mutexMethod classifies a selector call as a sync.Mutex/RWMutex acquire
// or release, or 0.
func mutexMethod(info *types.Info, sel *ast.SelectorExpr) int {
	var kind int
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock":
		kind = acquire
	case "Unlock", "RUnlock":
		kind = release
	default:
		return 0
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return 0
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return 0
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return 0
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return 0
	}
	if obj.Name() != "Mutex" && obj.Name() != "RWMutex" {
		return 0
	}
	return kind
}

// lockID names a mutex expression structurally; "" when unresolvable.
func (c *checker) lockID(x ast.Expr) string {
	x = ast.Unparen(x)
	switch x := x.(type) {
	case *ast.SelectorExpr:
		// Package-level var through a qualifier: pkg.Mu.
		if v, ok := c.pass.TypesInfo.Uses[x.Sel].(*types.Var); ok && v.Pkg() != nil &&
			v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
		// Field access: owner type + field name.
		if tv, ok := c.pass.TypesInfo.Types[x.X]; ok && tv.Type != nil {
			t := tv.Type
			for {
				if p, isPtr := t.(*types.Pointer); isPtr {
					t = p.Elem()
					continue
				}
				break
			}
			if named, isNamed := t.(*types.Named); isNamed && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + x.Sel.Name
			}
		}
		return ""
	case *ast.Ident:
		v, ok := c.pass.TypesInfo.Uses[x].(*types.Var)
		if !ok || v.Pkg() == nil {
			return ""
		}
		if v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
		// Receiver ident with an embedded mutex: t.Lock() — name it by
		// the receiver's type.
		t := v.Type()
		for {
			if p, isPtr := t.(*types.Pointer); isPtr {
				t = p.Elem()
				continue
			}
			break
		}
		if named, isNamed := t.(*types.Named); isNamed && named.Obj().Pkg() != nil {
			if _, isStruct := named.Underlying().(*types.Struct); isStruct {
				return named.Obj().Pkg().Path() + "." + named.Obj().Name() + ".Mutex"
			}
			// A local variable whose type IS the mutex.
			fname := "func"
			if c.fn != nil {
				fname = c.fn.Name.Name
			}
			return v.Pkg().Path() + "." + fname + "." + v.Name()
		}
		return ""
	case *ast.IndexExpr:
		base := c.lockID(x.X)
		if base == "" {
			return ""
		}
		return base + "[i]"
	}
	return ""
}

// addEdge records one held->acquired observation unless waived.
func (c *checker) addEdge(from, to string, pos token.Pos) {
	if c.idx.Allowed(pos, "lockorder") {
		return
	}
	key := [2]string{from, to}
	if c.seen[key] {
		return
	}
	c.seen[key] = true
	p := c.pass.Fset.Position(pos)
	c.edges = append(c.edges, localEdge{
		Edge: Edge{From: from, To: to, Pos: fmt.Sprintf("%s:%d", baseName(p.Filename), p.Line)},
		pos:  pos,
	})
}

// reportCycles unions local edges with every dependency's fact and
// reports each local edge that closes a cycle.
func (c *checker) reportCycles() {
	adj := make(map[string][]string)
	add := func(e Edge) {
		adj[e.From] = append(adj[e.From], e.To)
	}
	for _, e := range c.edges {
		add(e.Edge)
	}
	seenPkg := make(map[string]bool)
	var imp func(p *types.Package)
	imp = func(p *types.Package) {
		for _, dep := range p.Imports() {
			if seenPkg[dep.Path()] {
				continue
			}
			seenPkg[dep.Path()] = true
			var fact Edges
			if c.pass.ImportPackageFact(dep, &fact) {
				for _, e := range fact.List {
					add(e)
				}
			}
			imp(dep)
		}
	}
	imp(c.pass.Pkg)
	for k := range adj {
		sort.Strings(adj[k])
	}

	for _, e := range c.edges {
		if path := findPath(adj, e.To, e.From); path != nil {
			if e.From == e.To {
				c.pass.Reportf(e.pos, "lock-order violation: %s acquired while already held; this deadlocks", e.To)
				continue
			}
			c.pass.Reportf(e.pos,
				"lock-order cycle: acquiring %s while holding %s, but the reverse order exists (%s); potential deadlock",
				e.To, e.From, strings.Join(path, " -> "))
		}
	}
}

// findPath BFSes from src to dst, returning the node path (src..dst) or
// nil. src == dst returns the trivial path.
func findPath(adj map[string][]string, src, dst string) []string {
	if src == dst {
		return []string{src}
	}
	prev := map[string]string{src: ""}
	queue := []string{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, m := range adj[n] {
			if _, ok := prev[m]; ok {
				continue
			}
			prev[m] = n
			if m == dst {
				var path []string
				for at := dst; at != ""; at = prev[at] {
					path = append(path, at)
				}
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			queue = append(queue, m)
		}
	}
	return nil
}

// exportFact publishes the package's edge fragment, sorted.
func (c *checker) exportFact() {
	if len(c.edges) == 0 {
		return
	}
	list := make([]Edge, len(c.edges))
	for i, e := range c.edges {
		list[i] = e.Edge
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].From != list[j].From {
			return list[i].From < list[j].From
		}
		return list[i].To < list[j].To
	})
	c.pass.ExportPackageFact(&Edges{List: list})
}

func baseName(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
