// Package metricname defines an analyzer pinning the observability
// surface: every metric family registered on an obs.Registry must
//
//   - be named with the reprod_ prefix (lower_snake, the README contract),
//   - be a compile-time constant string (a computed name cannot be checked
//     against the documented surface, so it is itself a violation),
//   - be registered exactly once across the package AND its dependencies
//     (duplicate registration panics the obs registry at runtime; the
//     analyzer catches it at vet time), and
//   - appear in the package's requiredFamilies list when one exists (the
//     metrics_test.go exposition test and the CI smoke grep both key off
//     that list, so a family missing from it is invisible to both), with
//     no stale entries in the other direction.
//
// Families registered by dependencies travel as a package fact
// (metricname.Families), so a package aggregating another package's
// registry checks the union — the "registered exactly once" and coverage
// rules are cross-package, not merely cross-file.
//
// Registrations inside _test.go files are fixtures, not surface, and are
// ignored.
package metricname

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// Families is the package fact listing the metric families a package
// registers, exported for dependents' duplicate and coverage checks.
type Families struct {
	Names []string
}

// AFact marks Families as a fact type.
func (*Families) AFact() {}

var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc: "metric families must be reprod_-prefixed, constant, unique, and listed in requiredFamilies\n\n" +
		"Checks every obs.Registry registration in the package and its dependencies'\n" +
		"exported facts against the documented metric surface.",
	Run:       run,
	FactTypes: []analysis.Fact{(*Families)(nil)},
}

// registrars are the obs.Registry methods that create a metric family;
// each takes the family name as its first argument.
var registrars = map[string]bool{
	"Counter":      true,
	"Gauge":        true,
	"GaugeFunc":    true,
	"Histogram":    true,
	"CounterVec":   true,
	"HistogramVec": true,
}

var namePattern = regexp.MustCompile(`^reprod_[a-z0-9_]+$`)

type registration struct {
	name string
	pos  ast.Node
}

func run(pass *analysis.Pass) (any, error) {
	var regs []registration
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			if !isRegistryCall(pass, call) {
				return true
			}
			arg := call.Args[0]
			tv, ok := pass.TypesInfo.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(arg.Pos(), "metric family name must be a compile-time constant string so the documented surface can be checked against it")
				return true
			}
			regs = append(regs, registration{name: constant.StringVal(tv.Value), pos: arg})
			return true
		})
	}

	// Families registered by dependencies, via their exported facts.
	imported := make(map[string]string) // family -> registering package
	for _, dep := range pass.Pkg.Imports() {
		var fact Families
		if pass.ImportPackageFact(dep, &fact) {
			for _, name := range fact.Names {
				imported[name] = dep.Path()
			}
		}
	}

	local := make(map[string]bool)
	for _, r := range regs {
		if !namePattern.MatchString(r.name) {
			pass.Reportf(r.pos.Pos(), "metric family %q must carry the reprod_ prefix (lower_snake): the exposition, /stats, and the CI smoke grep all key off it", r.name)
		}
		if local[r.name] {
			pass.Reportf(r.pos.Pos(), "metric family %q is registered more than once in this package; the obs registry panics on duplicate registration", r.name)
		}
		if dep, ok := imported[r.name]; ok {
			pass.Reportf(r.pos.Pos(), "metric family %q is already registered by %s; families must be registered exactly once", r.name, dep)
		}
		local[r.name] = true
	}

	required, requiredPos := findRequiredFamilies(pass)
	if required != nil {
		for _, r := range regs {
			if !required[r.name] && namePattern.MatchString(r.name) {
				pass.Reportf(r.pos.Pos(), "metric family %q is missing from requiredFamilies: the exposition test and CI smoke grep will not guard it", r.name)
			}
		}
		for name, dep := range imported {
			if !required[name] {
				pass.Reportf(requiredPos, "metric family %q (registered by %s) is missing from requiredFamilies", name, dep)
			}
		}
		var staleSorted []string
		for name := range required {
			if _, dup := imported[name]; !local[name] && !dup {
				staleSorted = append(staleSorted, name)
			}
		}
		sort.Strings(staleSorted)
		for _, name := range staleSorted {
			pass.Reportf(requiredPos, "requiredFamilies lists %q but no such family is registered; remove the stale entry", name)
		}
	}

	if len(local) > 0 {
		names := make([]string, 0, len(local))
		for name := range local {
			names = append(names, name)
		}
		sort.Strings(names)
		pass.ExportPackageFact(&Families{Names: names})
	}
	return nil, nil
}

// isRegistryCall reports whether call invokes a registrar method on a
// *Registry from a package named obs.
func isRegistryCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !registrars[sel.Sel.Name] {
		return false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel]
	if !ok {
		return false
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	tn := named.Obj()
	return tn.Name() == "Registry" && tn.Pkg() != nil && tn.Pkg().Name() == "obs"
}

// findRequiredFamilies locates a package-level var requiredFamilies
// ([]string literal) and returns its entries and declaration position, or
// nil if absent.
func findRequiredFamilies(pass *analysis.Pass) (map[string]bool, token.Pos) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != "requiredFamilies" || i >= len(vs.Values) {
						continue
					}
					lit, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					out := make(map[string]bool, len(lit.Elts))
					for _, elt := range lit.Elts {
						tv, ok := pass.TypesInfo.Types[elt]
						if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
							continue
						}
						out[constant.StringVal(tv.Value)] = true
					}
					return out, name.Pos()
				}
			}
		}
	}
	return nil, token.NoPos
}
