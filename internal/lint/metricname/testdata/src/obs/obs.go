// Package obs is a minimal stand-in for the repository's metrics registry:
// the analyzer matches registrar methods on a Registry type in a package
// named obs.
package obs

type Registry struct{}

type Counter struct{}
type Gauge struct{}
type Histogram struct{}
type CounterVec struct{}
type HistogramVec struct{}

func (r *Registry) Counter(name string) *Counter                          { return &Counter{} }
func (r *Registry) Gauge(name string) *Gauge                              { return &Gauge{} }
func (r *Registry) GaugeFunc(name string, fn func() float64)              {}
func (r *Registry) Histogram(name string, buckets []float64) *Histogram   { return &Histogram{} }
func (r *Registry) CounterVec(name string, labels ...string) *CounterVec  { return &CounterVec{} }
func (r *Registry) HistogramVec(name string, buckets []float64) *HistogramVec {
	return &HistogramVec{}
}
