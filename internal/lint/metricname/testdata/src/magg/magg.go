// Package magg is analyzer testdata for the cross-package rules: a family
// registered by a dependency (carried by the Families fact) must not be
// re-registered locally and must appear in requiredFamilies.
package magg

import (
	"mdep"
	"obs"
)

func register(reg *obs.Registry) {
	mdep.Register(reg)
	reg.Counter("reprod_shared_total") // want `metric family "reprod_shared_total" is already registered by mdep` `metric family "reprod_shared_total" is missing from requiredFamilies`
	reg.Counter("reprod_local_total")
}

var requiredFamilies = []string{ // want `metric family "reprod_shared_total" \(registered by mdep\) is missing from requiredFamilies`
	"reprod_local_total",
}
