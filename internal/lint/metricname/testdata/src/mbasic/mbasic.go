// Package mbasic is analyzer testdata for the single-package metricname
// rules: prefix, constancy, local duplicates, and requiredFamilies
// coverage in both directions.
package mbasic

import "obs"

func register(reg *obs.Registry) {
	reg.Counter("reprod_requests_total")
	reg.Counter("http_requests")          // want `metric family "http_requests" must carry the reprod_ prefix`
	reg.Counter("reprod_dup_total")
	reg.Counter("reprod_dup_total")       // want `metric family "reprod_dup_total" is registered more than once`
	reg.Counter("reprod_uncovered_total") // want `metric family "reprod_uncovered_total" is missing from requiredFamilies`
	reg.Counter(computed())               // want `metric family name must be a compile-time constant string`
}

func computed() string { return "reprod_runtime_total" }

var requiredFamilies = []string{ // want `requiredFamilies lists "reprod_stale_total" but no such family is registered`
	"reprod_requests_total",
	"reprod_dup_total",
	"reprod_stale_total",
}
