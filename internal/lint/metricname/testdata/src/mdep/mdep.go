// Package mdep is analyzer testdata registering one family; the exported
// Families fact carries it to importing packages.
package mdep

import "obs"

func Register(reg *obs.Registry) {
	reg.Counter("reprod_shared_total")
}
