package metricname_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/metricname"
)

func TestMetricName(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), metricname.Analyzer,
		"mbasic", // prefix, constancy, duplicates, requiredFamilies coverage
		"magg",   // cross-package duplicate + coverage via the Families fact
	)
}
