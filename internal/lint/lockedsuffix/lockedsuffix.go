// Package lockedsuffix defines an analyzer enforcing the *Locked naming
// convention: a function whose name ends in "Locked" documents that its
// caller must already hold the guarding mutex, so every call site must
// either hold a lock or itself be a *Locked function.
//
// The tracking is syntactic and intra-function, in the spirit of
// staticcheck's SA-family heuristics, not a full lockset analysis:
//
//   - x.Lock(), x.RLock(), and x.TryLock() acquire; x.Unlock() and
//     x.RUnlock() release; "defer x.Unlock()" keeps the lock held for the
//     rest of the function.
//   - Statements are evaluated block-structured in source order. Lock
//     effects inside a branch (if/for/switch/select arm) are visible
//     inside that branch but do not release for the code after it: the
//     early-return "if bad { mu.Unlock(); return err }" pattern must not
//     unlock the happy path. Acquisitions do propagate out of branches
//     (over-approximate by design — the analyzer hunts for call sites
//     with NO lock on any path, the convention's actual failure mode).
//   - For a method call recv.fooLocked(), the held lock must belong to
//     the same receiver expression (s.mu.Lock() sanctions
//     s.evictLRULocked()), or be a package-level mutex (ownership cannot
//     be inferred syntactically). A plain fooLocked() call requires any
//     lock to be held.
//   - Function literals are independent scopes: a closure does not
//     inherit its definer's locks, because it may run on another
//     goroutine after they are released.
//
// Call sites where the exclusivity is established by other means carry
// //lint:allow locked with a justification.
package lockedsuffix

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/allow"
	"repro/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockedsuffix",
	Doc: "*Locked functions may only be called with the corresponding mutex held\n\n" +
		"Calls to functions named *Locked are checked against syntactic lock tracking\n" +
		"in the enclosing function; unlocked call sites are reported.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	idx := allow.NewIndex(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkScope(pass, idx, n.Name.Name, n.Body)
				}
				return false // checkScope recurses into nested literals itself
			case *ast.FuncLit:
				// Top-level var initializer literals reach here.
				checkScope(pass, idx, "", n.Body)
				return false
			}
			return true
		})
	}
	return nil, nil
}

// scope evaluates one function body's lock state.
type scope struct {
	pass       *analysis.Pass
	idx        *allow.Index
	selfLocked bool
	nested     []*ast.FuncLit
}

// checkScope analyzes one function body, then recurses into the function
// literals it contains as fresh scopes.
func checkScope(pass *analysis.Pass, idx *allow.Index, name string, body *ast.BlockStmt) {
	sc := &scope{pass: pass, idx: idx, selfLocked: strings.HasSuffix(name, "Locked")}
	held := make(map[string]int)
	sc.evalStmt(body, held)
	for _, lit := range sc.nested {
		checkScope(pass, idx, "", lit.Body)
	}
}

// evalStmt evaluates stmt against held, mutating it for effects at this
// nesting level. Nested blocks run on copies; acquisitions merge back
// (max), releases stay confined to their branch.
func (sc *scope) evalStmt(stmt ast.Stmt, held map[string]int) {
	switch s := stmt.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			sc.evalStmt(st, held)
		}
	case *ast.IfStmt:
		sc.evalStmt(s.Init, held)
		sc.scan(s.Cond, held, false)
		body := cloneHeld(held)
		sc.evalStmt(s.Body, body)
		mergeAcquisitions(held, body)
		if s.Else != nil {
			els := cloneHeld(held)
			sc.evalStmt(s.Else, els)
			mergeAcquisitions(held, els)
		}
	case *ast.ForStmt:
		sc.evalStmt(s.Init, held)
		if s.Cond != nil {
			sc.scan(s.Cond, held, false)
		}
		body := cloneHeld(held)
		sc.evalStmt(s.Body, body)
		sc.evalStmt(s.Post, body)
		mergeAcquisitions(held, body)
	case *ast.RangeStmt:
		sc.scan(s.X, held, false)
		body := cloneHeld(held)
		sc.evalStmt(s.Body, body)
		mergeAcquisitions(held, body)
	case *ast.SwitchStmt:
		sc.evalStmt(s.Init, held)
		if s.Tag != nil {
			sc.scan(s.Tag, held, false)
		}
		sc.evalClauses(s.Body, held)
	case *ast.TypeSwitchStmt:
		sc.evalStmt(s.Init, held)
		sc.evalStmt(s.Assign, held)
		sc.evalClauses(s.Body, held)
	case *ast.SelectStmt:
		sc.evalClauses(s.Body, held)
	case *ast.LabeledStmt:
		sc.evalStmt(s.Stmt, held)
	case *ast.DeferStmt:
		// The deferred call runs at function exit: a deferred Unlock keeps
		// the lock held for the rest of the scope, so releases are ignored;
		// argument expressions evaluate now.
		sc.scan(s.Call, held, true)
	default:
		// Leaf statements (expressions, assignments, go, return, decls):
		// scan contained calls in source order.
		sc.scan(stmt, held, false)
	}
}

// evalClauses runs each case/comm clause of body on its own copy of held.
func (sc *scope) evalClauses(body *ast.BlockStmt, held map[string]int) {
	for _, st := range body.List {
		arm := cloneHeld(held)
		switch cl := st.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				sc.scan(e, arm, false)
			}
			for _, bs := range cl.Body {
				sc.evalStmt(bs, arm)
			}
		case *ast.CommClause:
			sc.evalStmt(cl.Comm, arm)
			for _, bs := range cl.Body {
				sc.evalStmt(bs, arm)
			}
		}
		mergeAcquisitions(held, arm)
	}
}

// scan walks a leaf node for lock-relevant calls, applying them to held in
// source order. Function literals are collected, not descended into.
func (sc *scope) scan(n ast.Node, held map[string]int, deferred bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			sc.nested = append(sc.nested, m)
			return false
		case *ast.CallExpr:
			sc.applyCall(m, held, deferred)
		}
		return true
	})
}

func (sc *scope) applyCall(call *ast.CallExpr, held map[string]int, deferred bool) {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		switch name {
		case "Lock", "RLock", "TryLock":
			held[lockOwner(fun.X)]++
			return
		case "Unlock", "RUnlock":
			if !deferred {
				owner := lockOwner(fun.X)
				if held[owner] > 0 {
					held[owner]--
					if held[owner] == 0 {
						delete(held, owner)
					}
				}
			}
			return
		}
		if strings.HasSuffix(name, "Locked") && isOurCall(sc.pass, fun.Sel) {
			sc.checkLockedCall(call, held, types.ExprString(fun), types.ExprString(fun.X), true)
		}
	case *ast.Ident:
		if strings.HasSuffix(fun.Name, "Locked") && isOurCall(sc.pass, fun) {
			sc.checkLockedCall(call, held, fun.Name, "", false)
		}
	}
}

func (sc *scope) checkLockedCall(call *ast.CallExpr, held map[string]int, callee, recv string, hasRecv bool) {
	if sc.selfLocked {
		return // the outermost non-Locked caller is the one checked
	}
	if satisfied(held, recv, hasRecv) {
		return
	}
	if sc.idx.Allowed(call.Pos(), "locked") {
		return
	}
	sc.pass.Reportf(call.Pos(), "%s called without holding a lock: *Locked functions require the caller to hold the guarding mutex on every path (or annotate with //lint:allow locked)", callee)
}

// satisfied reports whether the held lockset sanctions the *Locked call.
func satisfied(held map[string]int, recv string, hasRecv bool) bool {
	if len(held) == 0 {
		return false
	}
	if !hasRecv {
		return true // free function: any held lock passes
	}
	if held[recv] > 0 {
		return true // a mutex reached through the same receiver expression
	}
	// A package-level mutex (owner "") may guard any state; ownership is
	// not inferable syntactically, so it sanctions everything.
	return held[""] > 0
}

// lockOwner renders the expression owning a mutex: for s.mu.Lock() the
// owner is "s"; for a package-level traceMu.Lock() it is "" (package
// scope), the wildcard owner.
func lockOwner(x ast.Expr) string {
	if sel, ok := x.(*ast.SelectorExpr); ok {
		return types.ExprString(sel.X)
	}
	return ""
}

// isOurCall reports whether the callee is a function or method (not a
// field of function type being invoked through a conversion, etc.).
func isOurCall(pass *analysis.Pass, id *ast.Ident) bool {
	obj, ok := pass.TypesInfo.Uses[id]
	if !ok {
		return false
	}
	_, isFunc := obj.(*types.Func)
	return isFunc
}

func cloneHeld(held map[string]int) map[string]int {
	out := make(map[string]int, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// mergeAcquisitions folds a branch's lock state back into the outer state:
// counts only ever grow (an acquisition inside a branch counts as held
// afterwards; a release inside a branch does not unlock the code after it).
func mergeAcquisitions(outer, branch map[string]int) {
	for k, v := range branch {
		if v > outer[k] {
			outer[k] = v
		}
	}
}
