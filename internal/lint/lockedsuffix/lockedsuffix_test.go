package lockedsuffix_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/lockedsuffix"
)

func TestLockedSuffix(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockedsuffix.Analyzer, "lockedtest")
}
