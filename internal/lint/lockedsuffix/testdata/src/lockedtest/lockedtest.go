// Package lockedtest is analyzer testdata for the *Locked calling
// convention: held-lock call sites, unlocked call sites, early-return
// unlock branches, closures, and receiver mismatches.
package lockedtest

import "sync"

type S struct {
	mu    sync.Mutex
	items []int
}

func (s *S) evictLocked() {}

func (s *S) good() {
	s.mu.Lock()
	s.evictLocked()
	s.mu.Unlock()
}

func (s *S) goodDefer() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.evictLocked()
}

func (s *S) bad() {
	s.evictLocked() // want `s\.evictLocked called without holding a lock`
}

func (s *S) badAfterUnlock() {
	s.mu.Lock()
	s.mu.Unlock()
	s.evictLocked() // want `s\.evictLocked called without holding a lock`
}

// earlyReturn is the serve cache pattern: an error branch unlocks and
// returns, which must NOT unlock the happy path below it.
func (s *S) earlyReturn(fail bool) bool {
	s.mu.Lock()
	if fail {
		s.mu.Unlock()
		return false
	}
	s.evictLocked() // the early-return branch did not release for this path
	s.mu.Unlock()
	return true
}

// closures do not inherit the definer's locks: they may run on another
// goroutine after the lock is released.
func (s *S) closure() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.evictLocked() // want `s\.evictLocked called without holding a lock`
	}()
}

// A *Locked function may call further *Locked functions freely: the
// outermost non-Locked caller is the one checked.
func (s *S) compactLocked() {
	s.evictLocked()
}

// mismatch holds a's mutex but calls through b: not sanctioned.
func mismatch(a, b *S) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.evictLocked() // want `b\.evictLocked called without holding a lock`
}

var pkgMu sync.Mutex

func rotateLocked() {}

func globalGood() {
	pkgMu.Lock()
	rotateLocked()
	pkgMu.Unlock()
}

func globalBad() {
	rotateLocked() // want `rotateLocked called without holding a lock`
}

// A package-level mutex sanctions method calls too: ownership of package
// state cannot be inferred syntactically.
func wildcard(s *S) {
	pkgMu.Lock()
	defer pkgMu.Unlock()
	s.evictLocked()
}

// allowed documents exclusivity established by other means.
func (s *S) allowed() {
	s.evictLocked() //lint:allow locked sole owner during construction, not yet published
}
