// Package analysistest runs an analyzer over GOPATH-style test packages
// and checks its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the stdlib only.
//
// Layout: <testdata>/src/<import/path>/*.go. A package may import other
// packages under the same testdata tree (they are loaded, analyzed first,
// and their facts made available) or the standard library (type-checked
// from $GOROOT source via go/importer's "source" mode, so no compiled
// artifacts are needed).
//
// Expectations are comments of the form
//
//	expr // want "regexp" "another regexp"
//
// Each quoted string (Go-quoted or backquoted) must match, by line, one
// diagnostic the analyzer reports; unexpected diagnostics and unmatched
// expectations both fail the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
)

// TestData returns the canonical testdata directory of the caller's
// package: ./testdata relative to the current working directory (go test
// runs with the package directory as cwd).
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run analyzes each named package found under testdata/src and compares
// diagnostics with the packages' // want expectations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	analysis.RegisterFactTypes([]*analysis.Analyzer{a})
	ld := &loader{
		t:        t,
		testdata: testdata,
		analyzer: a,
		fset:     token.NewFileSet(),
		pkgs:     make(map[string]*loadedPkg),
		facts:    analysis.NewFactStore(),
	}
	ld.source = importer.ForCompiler(ld.fset, "source", nil)
	for _, path := range pkgpaths {
		lp := ld.load(path)
		if lp == nil {
			continue
		}
		check(t, ld.fset, lp)
	}
}

type loadedPkg struct {
	path  string
	files []*ast.File
	pkg   *types.Package
	diags []analysis.Diagnostic
}

type loader struct {
	t        *testing.T
	testdata string
	analyzer *analysis.Analyzer
	fset     *token.FileSet
	source   types.Importer
	pkgs     map[string]*loadedPkg
	facts    *analysis.FactStore
}

// load parses, type-checks, and analyzes one testdata package (memoized).
func (ld *loader) load(path string) *loadedPkg {
	ld.t.Helper()
	if lp, ok := ld.pkgs[path]; ok {
		return lp
	}
	dir := filepath.Join(ld.testdata, "src", filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		ld.t.Errorf("analysistest: %v", err)
		return nil
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		ld.t.Errorf("analysistest: no Go files in %s", dir)
		return nil
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			ld.t.Errorf("analysistest: %v", err)
			return nil
		}
		files = append(files, f)
	}

	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		if dirExists(filepath.Join(ld.testdata, "src", filepath.FromSlash(importPath))) {
			dep := ld.load(importPath)
			if dep == nil {
				return nil, fmt.Errorf("loading testdata package %q failed", importPath)
			}
			return dep.pkg, nil
		}
		return ld.source.Import(importPath)
	})

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	tc := &types.Config{Importer: imp}
	pkg, err := tc.Check(path, ld.fset, files, info)
	if err != nil {
		ld.t.Errorf("analysistest: type-checking %s: %v", path, err)
		return nil
	}

	unit := &analysis.Unit{Fset: ld.fset, Files: files, Pkg: pkg, Info: info}
	diags, err := analysis.Run(unit, []*analysis.Analyzer{ld.analyzer}, ld.facts)
	if err != nil {
		ld.t.Errorf("analysistest: %v", err)
		return nil
	}
	lp := &loadedPkg{path: path, files: files, pkg: pkg, diags: diags}
	ld.pkgs[path] = lp
	return lp
}

// expectation is one unconsumed "want" regexp at a file:line.
type expectation struct {
	re       *regexp.Regexp
	raw      string
	consumed bool
}

func check(t *testing.T, fset *token.FileSet, lp *loadedPkg) {
	t.Helper()
	type lineKey struct {
		file string
		line int
	}
	wants := make(map[lineKey][]*expectation)
	for _, f := range lp.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				rest := strings.TrimSpace(text[len("want "):])
				pos := fset.Position(c.Pos())
				for rest != "" {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Errorf("%s: malformed want comment %q: %v", pos, rest, err)
						break
					}
					unq, err := strconv.Unquote(q)
					if err != nil {
						t.Errorf("%s: malformed want string %q: %v", pos, q, err)
						break
					}
					re, err := regexp.Compile(unq)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, unq, err)
						break
					}
					k := lineKey{pos.Filename, pos.Line}
					wants[k] = append(wants[k], &expectation{re: re, raw: unq})
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}

	for _, d := range lp.diags {
		pos := fset.Position(d.Pos)
		k := lineKey{pos.Filename, pos.Line}
		matched := false
		for _, exp := range wants[k] {
			if !exp.consumed && exp.re.MatchString(d.Message) {
				exp.consumed = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	var keys []lineKey
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, exp := range wants[k] {
			if !exp.consumed {
				t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, exp.raw)
			}
		}
	}
}

func dirExists(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
