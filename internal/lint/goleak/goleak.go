// Package goleak defines the analyzer enforcing goroutine-lifecycle
// discipline: every `go` statement in internal/ packages must have a
// provable termination path.
//
// For each spawn the analyzer resolves the goroutine body (a function
// literal, or a same-package function or method) and checks its CFG:
//
//   - every loop must be escapable: a loop condition, break, return, or
//     goto out — `for { select { ... } }` needs an arm that returns or
//     breaks. Panicking out counts (the goroutine dies either way).
//   - a range over a channel is only a termination path when the package
//     contains a close(...) of a matching channel expression; the loop is
//     otherwise an idle-forever leak.
//   - WaitGroup discipline: when the body calls wg.Done once per lifetime
//     (not per loop iteration), Done must be reached on every clean exit
//     path (defer is the idiom) and the spawner must execute a matching
//     wg.Add on every CFG path leading to the `go` statement. An Add
//     immediately before a spawn whose body never calls Done is reported
//     as the converse leak. Per-task Done calls inside a loop (worker
//     pools) are exempt from the pairing requirement.
//   - a body with no reachable exit at all (`select {}`) is reported even
//     when it contains no loop.
//
// Unresolvable spawn targets (function values, cross-package calls) are
// reported: if the goroutine's lifecycle is managed elsewhere, say so
// with the only escape hatch,
//
//	//lint:allow goroutine <why>
//
// The analyzer checks _test.go files too — leaked goroutines in tests
// poison every later test in the binary, and the chaos/soak suites lean
// on goroutine counts.
//
// Packages outside repro/internal (cmd, examples) are out of scope:
// their goroutines die with the process.
package goleak

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/allow"
	"repro/internal/lint/analysis"
	"repro/internal/lint/cfg"
)

var Analyzer = &analysis.Analyzer{
	Name: "goleak",
	Doc: "every go statement needs a provable termination path\n\n" +
		"Resolves each goroutine body and requires escapable loops, a close() for\n" +
		"ranged channels, WaitGroup Add/Done pairing on all CFG paths, and a\n" +
		"reachable exit; //lint:allow goroutine <why> is the only escape.",
	Run: run,
}

// scope is one function-like body (declaration or literal) that may spawn
// goroutines.
type scope struct {
	body *ast.BlockStmt
	// fd is the enclosing declaration, for diagnostics; nil for literals.
	fd *ast.FuncDecl
}

type checker struct {
	pass   *analysis.Pass
	idx    *allow.Index
	declOf map[*types.Func]*ast.FuncDecl
	// closed records ExprString of every close(...) argument in the
	// package, plus each argument's final selector component.
	closed     map[string]bool
	closedLast map[string]bool
}

func run(pass *analysis.Pass) (any, error) {
	if p := pass.Pkg.Path(); strings.HasPrefix(p, "repro/") && !strings.HasPrefix(p, "repro/internal") {
		return nil, nil
	}
	c := &checker{
		pass:       pass,
		idx:        allow.NewIndex(pass.Fset, pass.Files),
		declOf:     make(map[*types.Func]*ast.FuncDecl),
		closed:     make(map[string]bool),
		closedLast: make(map[string]bool),
	}

	var scopes []scope
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					c.declOf[fn] = fd
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					scopes = append(scopes, scope{body: n.Body, fd: n})
				}
			case *ast.FuncLit:
				scopes = append(scopes, scope{body: n.Body})
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
					if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
						e := types.ExprString(n.Args[0])
						c.closed[e] = true
						c.closedLast[lastComponent(e)] = true
					}
				}
			}
			return true
		})
	}

	for _, s := range scopes {
		g := cfg.New(s.body)
		for _, b := range g.Blocks {
			for _, n := range b.Nodes {
				if gs, ok := n.(*ast.GoStmt); ok {
					c.checkSpawn(s, g, b, gs)
				}
			}
		}
	}
	return nil, nil
}

// checkSpawn verifies one go statement found in spawner scope s (graph
// sg, in block sb).
func (c *checker) checkSpawn(s scope, sg *cfg.Graph, sb *cfg.Block, gs *ast.GoStmt) {
	if c.idx.Allowed(gs.Pos(), "goroutine") {
		return
	}

	body, paramMap := c.resolveBody(gs.Call)
	if body == nil {
		c.pass.Reportf(gs.Pos(), "cannot statically resolve the goroutine body; if its lifecycle is managed elsewhere, annotate //lint:allow goroutine <why>")
		return
	}

	bg := cfg.New(body)
	leaky := false

	for _, l := range bg.Loops() {
		escapable := bg.Reaches(l.Head, func(b *cfg.Block) bool {
			return b == l.After || b == bg.Exit || b == bg.Panic
		})
		if !escapable {
			c.pass.Reportf(l.Stmt.Pos(), "goroutine loop has no exit path (no break, return, or loop condition); the goroutine can never terminate")
			leaky = true
			continue
		}
		if rs, ok := l.Stmt.(*ast.RangeStmt); ok && c.isChannel(rs.X) {
			e := c.mapExpr(types.ExprString(rs.X), paramMap)
			if !c.closed[e] && !c.closedLast[lastComponent(e)] {
				c.pass.Reportf(rs.Pos(), "goroutine ranges over channel %s but no close(%s) exists in this package; the range never ends", e, e)
				leaky = true
			}
		}
	}

	if !leaky && !bg.Terminates() {
		c.pass.Reportf(gs.Pos(), "goroutine has no reachable exit (no return, panic, or fall-through); it can never terminate")
	}

	c.checkWaitGroup(sg, sb, gs, body, bg, paramMap)
}

// checkWaitGroup enforces Add/Done pairing for goroutine-lifetime Done
// calls, and the converse: an Add directly before a spawn whose body
// never calls Done.
func (c *checker) checkWaitGroup(sg *cfg.Graph, sb *cfg.Block, gs *ast.GoStmt, body *ast.BlockStmt, bg *cfg.Graph, paramMap map[string]string) {
	dones := c.wgCalls(body, "Done")
	for _, d := range dones {
		if d.inLoop {
			// Per-task Done (worker pool): Add happens per submitted
			// task, not per goroutine; pairing is out of CFG reach.
			continue
		}
		recv := d.recv
		if !bg.AllExitPathsHit(func(n ast.Node) bool {
			return c.hasWGCall(n, "Done", recv)
		}) {
			c.pass.Reportf(gs.Pos(), "goroutine can exit without calling %s.Done (defer it, or call it on every return path)", recv)
		}
		mapped := c.mapExpr(recv, paramMap)
		if !sg.AllPathsHitBefore(gs, func(n ast.Node) bool {
			return c.hasWGCall(n, "Add", mapped)
		}) {
			c.pass.Reportf(gs.Pos(), "%s.Done in the goroutine has no matching %s.Add on every path to this go statement", recv, mapped)
		}
	}

	// Converse: Add immediately before the spawn, body never Dones.
	if prev := nodeBefore(sb, gs); prev != nil {
		if recv, ok := c.wgCallRecv(prev, "Add"); ok {
			found := false
			for _, d := range dones {
				if c.mapExpr(d.recv, paramMap) == recv || d.recv == recv {
					found = true
					break
				}
			}
			if !found {
				c.pass.Reportf(gs.Pos(), "%s.Add immediately before this go statement, but the goroutine never calls %s.Done; Wait would hang", recv, recv)
			}
		}
	}
}

// resolveBody returns the spawned body and a parameter-to-argument
// expression map, or nil when the target cannot be resolved statically.
func (c *checker) resolveBody(call *ast.CallExpr) (*ast.BlockStmt, map[string]string) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body, paramMapOf(fun.Type, call.Args)
	case *ast.Ident, *ast.SelectorExpr:
		var id *ast.Ident
		if sel, ok := fun.(*ast.SelectorExpr); ok {
			id = sel.Sel
		} else {
			id = fun.(*ast.Ident)
		}
		fn, ok := c.pass.TypesInfo.Uses[id].(*types.Func)
		if !ok || fn.Pkg() != c.pass.Pkg {
			return nil, nil
		}
		fd := c.declOf[fn]
		if fd == nil || fd.Body == nil {
			return nil, nil
		}
		return fd.Body, paramMapOf(fd.Type, call.Args)
	}
	return nil, nil
}

// paramMapOf maps each named parameter to the ExprString of the argument
// bound to it at the spawn site.
func paramMapOf(ft *ast.FuncType, args []ast.Expr) map[string]string {
	m := make(map[string]string)
	if ft == nil || ft.Params == nil {
		return m
	}
	i := 0
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if i < len(args) {
				m[name.Name] = normalizeExpr(types.ExprString(args[i]))
			}
			i++
		}
	}
	return m
}

// mapExpr rewrites a body-side expression through the param map: a bare
// parameter name, or a parameter-rooted selector.
func (c *checker) mapExpr(e string, paramMap map[string]string) string {
	e = normalizeExpr(e)
	if paramMap == nil {
		return e
	}
	if arg, ok := paramMap[e]; ok {
		return arg
	}
	if root, rest, ok := strings.Cut(e, "."); ok {
		if arg, found := paramMap[root]; found {
			return arg + "." + rest
		}
	}
	return e
}

func normalizeExpr(e string) string {
	e = strings.TrimPrefix(e, "&")
	e = strings.TrimPrefix(e, "*")
	return e
}

func lastComponent(e string) string {
	if i := strings.LastIndex(e, "."); i >= 0 {
		return e[i+1:]
	}
	return e
}

func (c *checker) isChannel(e ast.Expr) bool {
	tv, ok := c.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// wgCall is one sync.WaitGroup method call found in a goroutine body.
type wgCall struct {
	recv   string
	inLoop bool
}

// wgCalls finds receiver expressions of WaitGroup method calls named
// name, tracking whether each occurrence sits inside a loop. Nested
// function literals are included (a deferred func(){ wg.Done() }() still
// runs at exit) without resetting loop depth.
func (c *checker) wgCalls(body *ast.BlockStmt, name string) []wgCall {
	var out []wgCall
	seen := make(map[string]bool)
	var walk func(n ast.Node, depth int)
	walk = func(n ast.Node, depth int) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.ForStmt:
			walk(n.Body, depth+1)
			return
		case *ast.RangeStmt:
			walk(n.Body, depth+1)
			return
		case *ast.CallExpr:
			if recv, ok := c.wgCallRecv(n, name); ok {
				key := recv
				if seen[key] {
					break
				}
				seen[key] = true
				out = append(out, wgCall{recv: recv, inLoop: depth > 0})
			}
		}
		children(n, func(ch ast.Node) { walk(ch, depth) })
	}
	walk(body, 0)
	return out
}

// children visits direct child nodes via one level of ast.Inspect.
func children(n ast.Node, f func(ast.Node)) {
	first := true
	ast.Inspect(n, func(x ast.Node) bool {
		if x == nil {
			return false
		}
		if first {
			first = false
			return true
		}
		f(x)
		return false
	})
}

// hasWGCall reports whether n's subtree contains a WaitGroup call
// name() on receiver recv.
func (c *checker) hasWGCall(n ast.Node, name, recv string) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if call, ok := x.(*ast.CallExpr); ok && !found {
			if r, ok := c.wgCallRecv(call, name); ok && r == recv {
				found = true
			}
		}
		return !found
	})
	return found
}

// wgCallRecv returns the receiver expression string when n (or, for a
// statement, its direct expression) is a call to sync.WaitGroup method
// name.
func (c *checker) wgCallRecv(n ast.Node, name string) (string, bool) {
	var call *ast.CallExpr
	switch n := n.(type) {
	case *ast.CallExpr:
		call = n
	case *ast.ExprStmt:
		call, _ = n.X.(*ast.CallExpr)
	case *ast.DeferStmt:
		call = n.Call
	}
	if call == nil {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return "", false
	}
	fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "WaitGroup" || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return "", false
	}
	return normalizeExpr(types.ExprString(sel.X)), true
}

// nodeBefore returns the leaf node preceding target in its block, or nil.
func nodeBefore(b *cfg.Block, target ast.Node) ast.Node {
	var prev ast.Node
	for _, n := range b.Nodes {
		if n == target {
			return prev
		}
		prev = n
	}
	return nil
}
