package goleakbasic

import (
	"context"
	"sync"
)

// Quit-channel select: the canonical managed worker.
func SpawnCtx(ctx context.Context, in chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-in:
				_ = v
			}
		}
	}()
}

// Range over a channel this package closes.
type pool struct {
	ch chan int
	wg sync.WaitGroup
}

func (p *pool) start() {
	go func() {
		for v := range p.ch {
			_ = v
		}
	}()
}

func (p *pool) stop() { close(p.ch) }

// Worker pool: per-task Done inside the loop is exempt from the pairing
// rule — Add happens per submitted task, not per goroutine.
type workerPool struct {
	wg   sync.WaitGroup
	work chan func()
}

func (p *workerPool) run() {
	go func() {
		for f := range p.work {
			f()
			p.wg.Done()
		}
	}()
}

func (p *workerPool) submit(f func()) {
	p.wg.Add(1)
	p.work <- f
}

func (p *workerPool) close() { close(p.work) }

// Goroutine-lifetime WaitGroup, deferred Done, Add dominating the spawn.
func SpawnWG(wg *sync.WaitGroup, n int) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = n
	}()
}

// The WaitGroup arrives as a parameter: Done pairs through the argument.
func SpawnParamWG(wg *sync.WaitGroup) {
	wg.Add(1)
	go func(w *sync.WaitGroup) {
		defer w.Done()
		work()
	}(wg)
}

// Loop-free method body: runs to completion on every path.
type server struct{ done chan struct{} }

func (s *server) runOnce() { <-s.done }

func (s *server) start() {
	go s.runOnce()
}

// Bounded loop: the condition is an exit path.
func SpawnBounded(n int) {
	go func() {
		for i := 0; i < n; i++ {
			work()
		}
	}()
}

// The escape hatch, justified.
func SpawnAllowed(f func()) {
	//lint:allow goroutine supervisor owns this lifecycle and joins at shutdown
	go f()
}
