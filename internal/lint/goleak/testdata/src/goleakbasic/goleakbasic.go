// Package goleakbasic exercises the goleak findings: inescapable loops,
// unclosed channel ranges, WaitGroup pairing on all CFG paths, blocked
// bodies, and unresolvable spawns.
package goleakbasic

import "sync"

func work() {}

func SpawnForever(in chan int) {
	go func() {
		for { // want `goroutine loop has no exit path`
			<-in
		}
	}()
}

func SpawnUnclosed(in chan int) {
	go func() {
		for v := range in { // want `goroutine ranges over channel in but no close\(in\) exists in this package`
			_ = v
		}
	}()
}

func SpawnWGBranch(wg *sync.WaitGroup, cond bool) {
	if cond {
		wg.Add(1)
	}
	go func() { // want `wg.Done in the goroutine has no matching wg.Add on every path to this go statement`
		defer wg.Done()
		work()
	}()
}

func SpawnWGEarlyReturn(wg *sync.WaitGroup, cond bool) {
	wg.Add(1)
	go func() { // want `goroutine can exit without calling wg.Done`
		if cond {
			return
		}
		wg.Done()
	}()
}

func SpawnAddNoDone(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() { // want `wg.Add immediately before this go statement, but the goroutine never calls wg.Done`
		work()
	}()
}

func SpawnBlockForever() {
	go func() { // want `goroutine has no reachable exit`
		select {}
	}()
}

func SpawnDynamic(f func()) {
	go f() // want `cannot statically resolve the goroutine body`
}

func loopForever(ch chan int) {
	for { // want `goroutine loop has no exit path`
		<-ch
	}
}

func SpawnNamedForever(ch chan int) {
	go loopForever(ch)
}

func SpawnSelectLoopNoExitArm(a, b chan int) {
	go func() {
		for { // want `goroutine loop has no exit path`
			select {
			case v := <-a:
				_ = v
			case v := <-b:
				_ = v
			}
		}
	}()
}
