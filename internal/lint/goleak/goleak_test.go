package goleak_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/goleak"
)

func TestGoleak(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), goleak.Analyzer,
		"goleakbasic", // leaks in goleakbasic.go, managed lifecycles in clean.go
	)
}
