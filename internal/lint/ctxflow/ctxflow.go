// Package ctxflow defines an analyzer enforcing the cancellation contract
// the build pipeline introduced: long-running work must inherit the
// request or daemon context, never mint a fresh root.
//
// Two rules, applied to non-test code in internal/... packages:
//
//   - context.Background() and context.TODO() are forbidden. A build path
//     that roots its own context cannot be cancelled by a departing
//     waiter, a draining server, or Ctrl-C. The handful of legitimate
//     roots (detached builds whose lifecycle the server owns, documented
//     compatibility wrappers) carry //lint:allow background with a
//     justification.
//   - An exported free function that loops over engine supersteps,
//     buckets, or MR rounds (syntactically: a for/range statement whose
//     body calls a method named Step, GatherStep, ProcessBucket, or
//     Round) must accept a context.Context — otherwise the loop is
//     uncancellable by construction. Methods are exempt: engine types
//     carry their context via SetContext, checked at the same barriers.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/allow"
	"repro/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "forbid fresh context roots in internal packages; superstep loops must take a ctx\n\n" +
		"context.Background/TODO in internal non-test code breaks the PR 5 cancellation\n" +
		"contract, and exported superstep-looping functions must be cancellable.",
	Run: run,
}

// loopCallees are the engine barrier primitives: a loop driving any of
// these is a superstep/bucket/round loop and must be cancellable.
var loopCallees = map[string]bool{
	"Step":          true,
	"GatherStep":    true,
	"ProcessBucket": true,
	"Round":         true,
}

func run(pass *analysis.Pass) (any, error) {
	if !strings.Contains(pass.Pkg.Path(), "internal/") {
		return nil, nil
	}
	idx := allow.NewIndex(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkRoot(pass, idx, n)
			case *ast.FuncDecl:
				checkSuperstepLoop(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

func checkRoot(pass *analysis.Pass, idx *allow.Index, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	if name != "Background" && name != "TODO" {
		return
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel]
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
		return
	}
	if idx.Allowed(call.Pos(), "background") {
		return
	}
	pass.Reportf(call.Pos(), "context.%s in internal package %s: builds must inherit the request/daemon context; thread a ctx parameter through, or annotate a deliberate root with //lint:allow background", name, pass.Pkg.Path())
}

func checkSuperstepLoop(pass *analysis.Pass, fn *ast.FuncDecl) {
	if fn.Recv != nil || fn.Body == nil || !fn.Name.IsExported() {
		return
	}
	if hasContextParam(pass, fn) {
		return
	}
	var culprit string
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if culprit != "" {
			return false
		}
		var body *ast.BlockStmt
		switch loop := n.(type) {
		case *ast.ForStmt:
			body = loop.Body
		case *ast.RangeStmt:
			body = loop.Body
		default:
			return true
		}
		ast.Inspect(body, func(m ast.Node) bool {
			if culprit != "" {
				return false
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !loopCallees[sel.Sel.Name] {
				return true
			}
			if obj, ok := pass.TypesInfo.Uses[sel.Sel]; ok {
				if _, isFunc := obj.(*types.Func); isFunc {
					culprit = sel.Sel.Name
				}
			}
			return true
		})
		return true
	})
	// Also catch loops whose condition drives the engine: for e.Step(...) {}.
	if culprit == "" {
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if culprit != "" {
				return false
			}
			loop, ok := n.(*ast.ForStmt)
			if !ok || loop.Cond == nil {
				return true
			}
			ast.Inspect(loop.Cond, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok && loopCallees[sel.Sel.Name] {
					culprit = sel.Sel.Name
				}
				return true
			})
			return true
		})
	}
	if culprit != "" {
		pass.Reportf(fn.Name.Pos(), "exported function %s loops over %s barriers but accepts no context.Context: superstep loops must be cancellable (PR 5 contract)", fn.Name.Name, culprit)
	}
}

func hasContextParam(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	for _, field := range fn.Type.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok {
			continue
		}
		named, ok := tv.Type.(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context" {
			return true
		}
	}
	return false
}
