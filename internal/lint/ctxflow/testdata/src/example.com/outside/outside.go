// Package outside is analyzer testdata on a non-internal import path: the
// cancellation contract does not apply here.
package outside

import "context"

func Root() context.Context {
	return context.Background()
}
