// Package pipe is analyzer testdata on an internal/ import path: fresh
// context roots are forbidden and exported superstep loops must accept a
// context.Context.
package pipe

import "context"

func Root() context.Context {
	return context.Background() // want `context\.Background in internal package example\.com/internal/pipe`
}

func Todo() context.Context {
	return context.TODO() // want `context\.TODO in internal package example\.com/internal/pipe`
}

func AllowedRoot() context.Context {
	//lint:allow background daemon-owned detached root
	return context.Background()
}

// Engine mimics the BSP engine's barrier primitive.
type Engine struct{ frontier int }

func (e *Engine) Step(ctx context.Context) bool {
	_ = ctx
	e.frontier--
	return e.frontier > 0
}

// Drive loops over Step barriers without a ctx: uncancellable by
// construction.
func Drive(e *Engine) { // want `exported function Drive loops over Step barriers but accepts no context\.Context`
	for i := 0; i < 8; i++ {
		e.Step(nil)
	}
}

// DriveCond loops with the barrier call in the loop condition.
func DriveCond(e *Engine) { // want `exported function DriveCond loops over Step barriers but accepts no context\.Context`
	for e.Step(nil) {
	}
}

// DriveCtx accepts a context: fine, regardless of whether it checks it
// (that is the analyzer's syntactic contract, not a liveness proof).
func DriveCtx(ctx context.Context, e *Engine) {
	for e.Step(ctx) {
	}
}

// drive is unexported: internal helpers inherit their caller's contract.
func drive(e *Engine) {
	for e.Step(nil) {
	}
}

// Drain is a method: engine types carry their context via SetContext, so
// methods are exempt from the parameter rule.
func (e *Engine) Drain() {
	for e.Step(nil) {
	}
}

var _ = drive
