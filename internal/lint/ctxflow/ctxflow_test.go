package ctxflow_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), ctxflow.Analyzer,
		"example.com/internal/pipe", // internal path: both rules apply
		"example.com/outside",       // non-internal path: silent
	)
}
