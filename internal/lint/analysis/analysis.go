// Package analysis is a self-contained, stdlib-only re-implementation of
// the core of golang.org/x/tools/go/analysis — just enough surface for the
// reprolint analyzers, the vettool driver, and the analysistest harness.
//
// The repository deliberately has no third-party dependencies, so the
// x/tools module is off the table; this package mirrors its shapes
// (Analyzer, Pass, Diagnostic, Fact) closely enough that the analyzers in
// internal/lint/... could be ported to the real framework by changing one
// import path.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one analysis: a named invariant plus the function
// that checks a single package for violations of it.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, flags, and fact files.
	// It must be a valid Go identifier.
	Name string

	// Doc is the help text. The first line is used as the one-sentence
	// summary in flag usage.
	Doc string

	// Run applies the analyzer to a package. It returns an optional
	// result (unused by the reprolint suite) and an error; errors abort
	// the whole run, they are NOT diagnostics.
	Run func(*Pass) (any, error)

	// FactTypes lists prototype values of each Fact type this analyzer
	// exports or imports. Every fact type must be registered here or the
	// drivers will refuse to serialize it.
	FactTypes []Fact
}

// A Pass provides one analyzer with the type-checked syntax of a single
// package and the means to report diagnostics and exchange facts.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. Drivers install it.
	Report func(Diagnostic)

	// ImportPackageFact copies the fact of fact's concrete type exported
	// by pkg (a direct or indirect dependency, or the package itself)
	// into fact, reporting whether one was found.
	ImportPackageFact func(pkg *types.Package, fact Fact) bool

	// ExportPackageFact publishes fact, associated with the current
	// package, to dependents.
	ExportPackageFact func(fact Fact)
}

// Reportf reports a diagnostic at pos with a Sprintf-formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one reported violation, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Fact is a serializable observation about a package that analyzers in
// downstream packages can import. Implementations must be pointers to
// gob-encodable structs; the AFact method is only a marker.
type Fact interface {
	AFact()
}
