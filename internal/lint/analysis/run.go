package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// A Unit is one type-checked package ready for analysis — the common
// currency between the unitchecker driver (which builds it from a vet.cfg)
// and the analysistest harness (which builds it from a testdata tree).
type Unit struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Run applies each analyzer to the unit in order, sharing facts, and
// returns all diagnostics sorted by position. An analyzer returning an
// error (as opposed to reporting diagnostics) aborts the run.
func Run(unit *Unit, analyzers []*Analyzer, facts *FactStore) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		a := a
		pass := &Pass{
			Analyzer:  a,
			Fset:      unit.Fset,
			Files:     unit.Files,
			Pkg:       unit.Pkg,
			TypesInfo: unit.Info,
			Report: func(d Diagnostic) {
				diags = append(diags, d)
			},
			ImportPackageFact: func(pkg *types.Package, fact Fact) bool {
				return facts.Get(pkg.Path(), a.Name, fact)
			},
			ExportPackageFact: func(fact Fact) {
				facts.Set(unit.Pkg.Path(), a.Name, fact)
			},
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, unit.Pkg.Path(), err)
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		pi := unit.Fset.Position(diags[i].Pos)
		pj := unit.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Message < diags[j].Message
	})
	// Drop exact duplicates (same position, same message): an analyzer
	// visiting a node through two syntactic paths should not double-report.
	out := diags[:0]
	var prev Diagnostic
	for i, d := range diags {
		if i > 0 && d.Pos == prev.Pos && d.Message == prev.Message {
			continue
		}
		out = append(out, d)
		prev = d
	}
	return out, nil
}
