package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"
	"sort"
	"sync"
)

// A FactStore holds the package facts visible while analyzing one unit:
// facts decoded from the vetx files of dependencies plus facts exported by
// the current run. One fact per (package, analyzer, concrete type), like
// x/tools: a second export of the same type overwrites the first.
type FactStore struct {
	mu sync.Mutex
	m  map[factKey]Fact
}

type factKey struct {
	pkgPath  string
	analyzer string
	typeName string
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: make(map[factKey]Fact)}
}

func typeName(f Fact) string { return reflect.TypeOf(f).String() }

// Set records fact for (pkgPath, analyzer), replacing any previous fact of
// the same concrete type.
func (s *FactStore) Set(pkgPath, analyzer string, fact Fact) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[factKey{pkgPath, analyzer, typeName(fact)}] = fact
}

// Get copies the stored fact for (pkgPath, analyzer) of fact's concrete
// type into fact, reporting whether one was present.
func (s *FactStore) Get(pkgPath, analyzer string, fact Fact) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	stored, ok := s.m[factKey{pkgPath, analyzer, typeName(fact)}]
	if !ok {
		return false
	}
	rv := reflect.ValueOf(fact)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return false
	}
	rv.Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

// factBlob is the wire form of one fact inside a vetx file.
type factBlob struct {
	PkgPath  string
	Analyzer string
	Fact     Fact
}

// RegisterFactTypes registers the fact types of every analyzer with gob
// under a stable name, so vetx files encode/decode identically across
// binaries. Call once per process before Encode/Decode.
func RegisterFactTypes(analyzers []*Analyzer) {
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			gob.RegisterName("reprolint:"+a.Name+":"+typeName(f), f)
		}
	}
}

// Encode serializes every fact in the store. The output is deterministic:
// blobs are sorted by (package, analyzer, type).
func (s *FactStore) Encode() ([]byte, error) {
	s.mu.Lock()
	blobs := make([]factBlob, 0, len(s.m))
	for k, f := range s.m {
		blobs = append(blobs, factBlob{PkgPath: k.pkgPath, Analyzer: k.analyzer, Fact: f})
	}
	s.mu.Unlock()
	sort.Slice(blobs, func(i, j int) bool {
		a, b := blobs[i], blobs[j]
		if a.PkgPath != b.PkgPath {
			return a.PkgPath < b.PkgPath
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return typeName(a.Fact) < typeName(b.Fact)
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(blobs); err != nil {
		return nil, fmt.Errorf("encoding facts: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode merges the facts serialized in data (a previous Encode output)
// into the store. An empty input is valid and decodes to nothing.
func (s *FactStore) Decode(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var blobs []factBlob
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&blobs); err != nil {
		return fmt.Errorf("decoding facts: %w", err)
	}
	for _, b := range blobs {
		if b.Fact == nil {
			continue
		}
		s.Set(b.PkgPath, b.Analyzer, b.Fact)
	}
	return nil
}
