// Package atomicfield defines an analyzer guarding the repository's mixed
// atomic/plain access convention.
//
// The engines claim work with sync/atomic on raw words — bsp.Bitmap's CAS
// words, the weighted engine's packed (dist,owner) claim words, the
// grower's owner array. A struct field that is EVER accessed through
// sync/atomic in a package must never be read or written plainly in that
// package's non-test code: a plain load next to a CAS is exactly the kind
// of race the -race job only catches when a scheduler cooperates.
//
// The analyzer follows the package's actual idioms, not just the direct
// atomic.Op(&x.f, ...) shape:
//
//   - address-through-local: word := &b.words[i]; atomic.LoadUint64(word)
//   - slice-copy-then-index: slot := e.slot; casLower(&slot[v], w)
//   - atomic helpers: a package function whose pointer parameter reaches
//     a sync/atomic call (casLower, casMin) transmits atomicity to its
//     call sites, found by fixpoint.
//
// A field marked atomic is then checked for plain access everywhere in
// the package, including through the same local aliases: element reads
// and writes, ranges, clear/copy, and pointer dereferences are flagged.
// Whole-slice-header operations (x.f = make(...), len/cap, reslicing)
// stay legal — they happen before the worker goroutines exist. Escapes
// into untracked calls are out of scope by design.
//
// Two sanctioned escape hatches exist, both explicit:
//
//   - _test.go files are exempt (tests inspect state after joining the
//     goroutines they spawned), and
//   - a documented single-writer, barrier-snapshot, or workers=1 fast
//     path carries //lint:allow plainatomic on the access line, the line
//     above, or the enclosing function declaration — which is also where
//     the justification ("word-disjoint chunks", "phase snapshot")
//     belongs.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/allow"
	"repro/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc: "flag plain access to struct fields that are elsewhere accessed via sync/atomic\n\n" +
		"A field touched through sync/atomic anywhere in a package (directly, through a\n" +
		"local alias, or through an atomic helper) must be touched that way everywhere\n" +
		"outside tests and annotated single-writer fast paths.",
	Run: run,
}

type accessKind int

const (
	wordAtomic accessKind = 1 << iota
	elementAtomic
)

type aliasKind int

const (
	aliasPtr   aliasKind = iota // v := &x.f or v := &x.f[i]
	aliasSlice                  // v := x.f (slice header copy)
)

type aliasInfo struct {
	field types.Object
	kind  aliasKind
	elem  bool // for aliasPtr: points at an element, not the whole field
}

type checker struct {
	pass       *analysis.Pass
	idx        *allow.Index
	aliases    map[types.Object]aliasInfo // local var -> field it aliases
	helpers    map[types.Object][]int     // package func -> atomic pointer-param indices
	marked     map[types.Object]accessKind
	display    map[types.Object]string       // field -> "Type.field" for messages
	okSel      map[*ast.SelectorExpr]bool    // selector nodes consumed by atomic shapes
	okIdent    map[*ast.Ident]bool           // alias idents consumed by atomic shapes
	funcDecls  []*ast.FuncDecl               // non-test, in package order
	fieldOwner map[*ast.SelectorExpr]types.Object
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{
		pass:       pass,
		idx:        allow.NewIndex(pass.Fset, pass.Files),
		aliases:    make(map[types.Object]aliasInfo),
		helpers:    make(map[types.Object][]int),
		marked:     make(map[types.Object]accessKind),
		display:    make(map[types.Object]string),
		okSel:      make(map[*ast.SelectorExpr]bool),
		okIdent:    make(map[*ast.Ident]bool),
		fieldOwner: make(map[*ast.SelectorExpr]types.Object),
	}
	var files []*ast.File
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		files = append(files, f)
	}

	c.collectAliases(files)
	c.findHelpers(files)
	c.markAtomics(files)
	if len(c.marked) == 0 {
		return nil, nil
	}
	c.flag(files)
	return nil, nil
}

// collectAliases records locals initialized from fields: pointers to a
// field or an element of one, and slice-header copies. Chains (w := v)
// inherit; declarations precede uses in Go, so one in-order sweep settles
// them.
func (c *checker) collectAliases(files []*ast.File) {
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := c.pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = c.pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			return
		}
		switch r := rhs.(type) {
		case *ast.UnaryExpr:
			if r.Op != token.AND {
				return
			}
			switch t := r.X.(type) {
			case *ast.SelectorExpr: // v := &x.f
				if f := c.fieldObject(t); f != nil {
					c.aliases[obj] = aliasInfo{field: f, kind: aliasPtr}
					c.okSel[t] = true
				}
			case *ast.IndexExpr: // v := &x.f[i] or v := &s[i] with s an alias
				if f, sel := c.indexedField(t); f != nil {
					c.aliases[obj] = aliasInfo{field: f, kind: aliasPtr, elem: true}
					if sel != nil {
						c.okSel[sel] = true
					}
					if base, ok := t.X.(*ast.Ident); ok {
						c.okIdent[base] = true
					}
				}
			}
		case *ast.SelectorExpr: // v := x.f (header copy — legal in itself)
			if f := c.fieldObject(r); f != nil && isSliceLike(obj.Type()) {
				c.aliases[obj] = aliasInfo{field: f, kind: aliasSlice}
			}
		case *ast.Ident: // v := w, inherit w's alias
			if robj := c.pass.TypesInfo.Uses[r]; robj != nil {
				if info, ok := c.aliases[robj]; ok {
					c.aliases[obj] = info
				}
			}
		}
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						record(n.Lhs[i], n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i := range n.Names {
						record(n.Names[i], n.Values[i])
					}
				}
			}
			return true
		})
	}
}

// findHelpers computes, to fixpoint, the package functions that forward a
// pointer parameter into sync/atomic (or into another helper).
func (c *checker) findHelpers(files []*ast.File) {
	for changed := true; changed; {
		changed = false
		for _, f := range files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fobj := c.pass.TypesInfo.Defs[fd.Name]
				if fobj == nil {
					continue
				}
				params := make(map[types.Object]int)
				i := 0
				for _, field := range fd.Type.Params.List {
					for _, name := range field.Names {
						if obj := c.pass.TypesInfo.Defs[name]; obj != nil {
							params[obj] = i
						}
						i++
					}
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					for _, argIdx := range c.atomicArgIndices(call) {
						if argIdx >= len(call.Args) {
							continue
						}
						var pid *ast.Ident
						switch a := call.Args[argIdx].(type) {
						case *ast.Ident: // atomic.Op(p, ...) with p a param
							pid = a
						case *ast.UnaryExpr: // atomic.Op(&p[i], ...) with p a slice param
							if a.Op == token.AND {
								if ix, ok := a.X.(*ast.IndexExpr); ok {
									pid, _ = ix.X.(*ast.Ident)
								}
							}
						}
						if pid == nil {
							continue
						}
						pobj := c.pass.TypesInfo.Uses[pid]
						if pobj == nil {
							continue
						}
						if pi, isParam := params[pobj]; isParam {
							if !containsInt(c.helpers[fobj], pi) {
								c.helpers[fobj] = append(c.helpers[fobj], pi)
								changed = true
							}
						}
					}
					return true
				})
			}
		}
	}
}

// atomicArgIndices returns the argument positions of call that are
// treated as atomically-accessed addresses: [0] for sync/atomic
// functions, the recorded parameter indices for package helpers, nil
// otherwise.
func (c *checker) atomicArgIndices(call *ast.CallExpr) []int {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		obj = c.pass.TypesInfo.Uses[fun.Sel]
	case *ast.Ident:
		obj = c.pass.TypesInfo.Uses[fun]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
		return []int{0}
	}
	if idxs, ok := c.helpers[obj]; ok {
		return idxs
	}
	return nil
}

// markAtomics walks every call and marks the fields whose words reach an
// atomic operation, sanctioning the exact nodes involved.
func (c *checker) markAtomics(files []*ast.File) {
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, argIdx := range c.atomicArgIndices(call) {
				if argIdx >= len(call.Args) {
					continue
				}
				switch a := call.Args[argIdx].(type) {
				case *ast.UnaryExpr:
					if a.Op != token.AND {
						continue
					}
					switch t := a.X.(type) {
					case *ast.SelectorExpr: // atomic.Op(&x.f, ...)
						if fld := c.fieldObject(t); fld != nil {
							c.mark(fld, wordAtomic)
							c.okSel[t] = true
						}
					case *ast.IndexExpr: // atomic.Op(&x.f[i], ...) / (&s[i], ...)
						if fld, sel := c.indexedField(t); fld != nil {
							c.mark(fld, elementAtomic)
							if sel != nil {
								c.okSel[sel] = true
							}
							if base, ok := t.X.(*ast.Ident); ok {
								c.okIdent[base] = true
							}
						}
					}
				case *ast.Ident: // atomic.Op(p, ...) with p an alias pointer
					if obj := c.pass.TypesInfo.Uses[a]; obj != nil {
						if info, ok := c.aliases[obj]; ok && info.kind == aliasPtr {
							if info.elem {
								c.mark(info.field, elementAtomic)
							} else {
								c.mark(info.field, wordAtomic)
							}
							c.okIdent[a] = true
						}
					}
				}
			}
			return true
		})
	}
}

func (c *checker) mark(field types.Object, kind accessKind) {
	c.marked[field] |= kind
}

// flag reports plain accesses to marked fields, both direct and through
// recorded aliases.
func (c *checker) flag(files []*ast.File) {
	for _, f := range files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if c.okSel[n] {
					return true
				}
				fld := c.fieldObject(n)
				if fld == nil {
					return true
				}
				kind, ok := c.marked[fld]
				if !ok {
					return true
				}
				if verdict := classify(n, parentOf(stack), kind); verdict != "" {
					c.report(n.Pos(), stack, fld, verdict)
				}
			case *ast.Ident:
				if c.okIdent[n] {
					return true
				}
				obj := c.pass.TypesInfo.Uses[n]
				if obj == nil {
					return true
				}
				info, ok := c.aliases[obj]
				if !ok {
					return true
				}
				kind, ok := c.marked[info.field]
				if !ok {
					return true
				}
				if verdict := c.classifyAlias(n, parentOf(stack), info, kind); verdict != "" {
					c.report(n.Pos(), stack, info.field, verdict+" through local alias "+n.Name)
				}
			}
			return true
		})
	}
}

// classify judges a direct selector use of a marked field.
func classify(sel *ast.SelectorExpr, parent ast.Node, kind accessKind) string {
	if kind&elementAtomic != 0 {
		switch p := parent.(type) {
		case *ast.IndexExpr:
			if p.X == sel {
				return "element access"
			}
		case *ast.RangeStmt:
			if p.X == sel {
				return "range over elements"
			}
		case *ast.CallExpr:
			if fn, ok := p.Fun.(*ast.Ident); ok && (fn.Name == "clear" || fn.Name == "copy") {
				for _, arg := range p.Args {
					if arg == sel {
						return fn.Name + " over elements"
					}
				}
			}
		}
		// Slice-header operations (x.f = make(...), len/cap, reslicing,
		// header copies) are setup-time and stay legal.
		return ""
	}
	// Word-atomic scalar: every plain read or write is suspect.
	switch p := parent.(type) {
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if lhs == sel {
				return "write"
			}
		}
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			return "" // address handoff: aliasing escape, tracked where visible
		}
	case *ast.IncDecStmt:
		return "increment"
	}
	return "read"
}

// classifyAlias judges a use of a local alias of a marked field.
func (c *checker) classifyAlias(id *ast.Ident, parent ast.Node, info aliasInfo, kind accessKind) string {
	switch info.kind {
	case aliasSlice:
		if kind&elementAtomic == 0 {
			return ""
		}
		switch p := parent.(type) {
		case *ast.IndexExpr:
			if p.X == id {
				return "element access"
			}
		case *ast.RangeStmt:
			if p.X == id {
				return "range over elements"
			}
		case *ast.CallExpr:
			if fn, ok := p.Fun.(*ast.Ident); ok && (fn.Name == "clear" || fn.Name == "copy") {
				for _, arg := range p.Args {
					if arg == id {
						return fn.Name + " over elements"
					}
				}
			}
		case *ast.UnaryExpr:
			// &s[i] shapes were sanctioned during marking; a bare &s is a
			// header handoff.
			return ""
		}
		return ""
	case aliasPtr:
		if p, ok := parent.(*ast.StarExpr); ok && p.X == id {
			return "dereference"
		}
	}
	return ""
}

func (c *checker) report(pos token.Pos, stack []ast.Node, field types.Object, verdict string) {
	if c.idx.Allowed(pos, "plainatomic") || c.idx.AllowedFunc(enclosingFunc(stack), "plainatomic") {
		return
	}
	c.pass.Reportf(pos, "field %s is accessed with sync/atomic elsewhere in this package; plain %s can race — use the atomic path, or annotate a documented single-writer fast path with //lint:allow plainatomic", c.displayName(field), verdict)
}

// fieldObject resolves sel to a struct field object, or nil, remembering
// a display name for diagnostics.
func (c *checker) fieldObject(sel *ast.SelectorExpr) types.Object {
	s, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	obj := s.Obj()
	if _, seen := c.display[obj]; !seen {
		if tv, ok := c.pass.TypesInfo.Types[sel.X]; ok {
			t := tv.Type
			for {
				p, ok := t.Underlying().(*types.Pointer)
				if !ok {
					break
				}
				t = p.Elem()
			}
			c.display[obj] = types.TypeString(t, types.RelativeTo(c.pass.Pkg)) + "." + obj.Name()
		}
	}
	return obj
}

func (c *checker) displayName(field types.Object) string {
	if name, ok := c.display[field]; ok {
		return name
	}
	return field.Name()
}

// indexedField resolves idx (expr[i]) to the field whose element is
// addressed: either directly (x.f[i]) or through a slice alias (s[i]).
// The returned selector, if any, is the node to sanction.
func (c *checker) indexedField(idx *ast.IndexExpr) (types.Object, *ast.SelectorExpr) {
	switch base := idx.X.(type) {
	case *ast.SelectorExpr:
		return c.fieldObject(base), base
	case *ast.Ident:
		if obj := c.pass.TypesInfo.Uses[base]; obj != nil {
			if info, ok := c.aliases[obj]; ok && info.kind == aliasSlice {
				return info.field, nil
			}
		}
	}
	return nil, nil
}

func parentOf(stack []ast.Node) ast.Node {
	if len(stack) >= 2 {
		return stack[len(stack)-2]
	}
	return nil
}

func enclosingFunc(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

func isSliceLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	}
	return false
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
