package atomictest

// Test files are exempt: tests inspect state after joining the goroutines
// they spawned, so plain reads of atomic fields draw no diagnostics here.
func readForAssertion(s *S) uint64 {
	return s.n + s.flags[0]
}
