// Package atomictest is analyzer testdata exercising every access shape
// the atomicfield analyzer tracks: direct atomics, address-through-local,
// slice-copy aliases, and atomic helper functions.
package atomictest

import "sync/atomic"

type S struct {
	n     uint64   // word-atomic via AddUint64
	flags []uint64 // element-atomic via CAS on &s.flags[i]
	mask  []uint64 // element-atomic only through the casRaise helper
	plain []int    // never touched atomically: exempt
}

// --- the sanctioning atomic accesses ---

func (s *S) bump() {
	atomic.AddUint64(&s.n, 1)
}

func (s *S) setFlag(i int) {
	for {
		cur := atomic.LoadUint64(&s.flags[i])
		if atomic.CompareAndSwapUint64(&s.flags[i], cur, cur|1) {
			return
		}
	}
}

// casRaise forwards its pointer parameter into sync/atomic, making it an
// atomic helper: its call sites transmit atomicity like atomic.* calls.
func casRaise(p *uint64, v uint64) {
	for {
		cur := atomic.LoadUint64(p)
		if atomic.CompareAndSwapUint64(p, cur, cur|v) {
			return
		}
	}
}

func (s *S) raiseMask(j int, v uint64) {
	casRaise(&s.mask[j], v)
}

// addressThroughLocal is the repository's dominant idiom: the address goes
// into a local first. All uses here are atomic, so nothing is flagged.
func (s *S) addressThroughLocal(i int) uint64 {
	w := &s.flags[i]
	return atomic.LoadUint64(w)
}

// sliceCopyHelper snapshots the slice header and feeds an element address
// to the helper — still atomic end to end.
func (s *S) sliceCopyHelper(i int, v uint64) {
	f := s.flags
	casRaise(&f[i], v)
}

// --- plain accesses that must be flagged ---

func (s *S) badRead() uint64 {
	return s.n // want `field S\.n is accessed with sync/atomic elsewhere .* plain read`
}

func (s *S) badWrite() {
	s.n = 0 // want `field S\.n is accessed with sync/atomic elsewhere .* plain write`
}

func (s *S) badElement(i int) uint64 {
	return s.flags[i] // want `field S\.flags is accessed with sync/atomic elsewhere .* plain element access`
}

func (s *S) badRange() uint64 {
	var total uint64
	for _, w := range s.flags { // want `field S\.flags .* plain range over elements`
		total += w
	}
	return total
}

func (s *S) badHelperField(j int) uint64 {
	return s.mask[j] // want `field S\.mask is accessed with sync/atomic elsewhere .* plain element access`
}

func (s *S) badAliasIndex(i int) uint64 {
	f := s.flags
	return f[i] // want `field S\.flags .* plain element access through local alias f`
}

func (s *S) badAliasDeref(i int) {
	w := &s.flags[i]
	*w = 5 // want `field S\.flags .* plain dereference through local alias w`
}

// --- legal shapes: no diagnostics ---

func (s *S) okHeaderOps(n int) int {
	s.flags = make([]uint64, n) // whole-header write: setup-time, legal
	return len(s.flags)
}

func (s *S) okUnrelated() int {
	return s.plain[0] // field never accessed atomically
}

// --- the sanctioned escape hatches ---

func (s *S) okLineAllow() {
	s.n = 1 //lint:allow plainatomic construction precedes any concurrent access
}

// okFuncAllow is a documented single-writer phase; the function-level
// annotation waives every access in the body.
//
//lint:allow plainatomic single-writer reset: workers are parked at the barrier
func (s *S) okFuncAllow() {
	s.n = 0
	for i := range s.flags {
		s.flags[i] = 0
	}
}
