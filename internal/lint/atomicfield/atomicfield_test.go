package atomicfield_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/atomicfield"
)

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), atomicfield.Analyzer, "atomictest")
}
