package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestLaneShedsBeyondQueue pins the lane arithmetic: width holders run,
// maxQueue waiters queue, and the next arrival sheds instead of queueing.
func TestLaneShedsBeyondQueue(t *testing.T) {
	l := newLane(laneFast, 1, 1)
	ctx := context.Background()
	if err := l.acquire(ctx); err != nil {
		t.Fatalf("first acquire: %v", err)
	}

	// Second acquire queues (bounded); run it in a goroutine.
	queued := make(chan error, 1)
	go func() {
		queued <- l.acquire(ctx)
	}()
	waitQueueDepth(t, l, 1)

	// Third acquire: queue full, must shed synchronously.
	err := l.acquire(ctx)
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("over-queue acquire returned %v, want ShedError", err)
	}
	if shed.Lane != laneFast || shed.RetryAfter <= 0 {
		t.Fatalf("shed error %+v malformed", shed)
	}

	// Release the holder: the queued waiter gets the slot.
	l.release()
	if err := <-queued; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	l.release()
}

// TestLaneAcquireHonoursContext: a queued waiter leaves when its request
// context dies, and the queue depth returns to zero.
func TestLaneAcquireHonoursContext(t *testing.T) {
	l := newLane(laneFast, 1, 4)
	if err := l.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- l.acquire(ctx) }()
	waitQueueDepth(t, l, 1)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire returned %v", err)
	}
	waitQueueDepth(t, l, 0)
	l.release()
}

// TestLaneSlotParkUnparkIdempotent pins the slot-juggling contract the
// park/unpark path and wrapRaw's deferred release rely on: release frees
// exactly what is held, never double-frees, and a failed unpark leaves
// the slot unheld.
func TestLaneSlotParkUnparkIdempotent(t *testing.T) {
	l := newLane(laneFast, 1, 0)
	s := &laneSlot{l: l}
	ctx := context.Background()
	if err := s.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	s.park()
	s.park() // idempotent
	if len(l.slots) != 0 {
		t.Fatal("slot still occupied after park")
	}
	if err := s.unpark(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.unpark(ctx); err != nil { // idempotent while held
		t.Fatal(err)
	}
	s.release()
	s.release() // idempotent
	if len(l.slots) != 0 {
		t.Fatal("lane corrupted by repeated release")
	}

	// Failed unpark (slot taken, context dead) leaves the handle unheld,
	// so the deferred release is a no-op rather than a slot theft.
	if err := s.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	s.park()
	other := &laneSlot{l: l}
	if err := other.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	dead, cancel := context.WithCancel(ctx)
	cancel()
	if err := s.unpark(dead); !errors.Is(err, context.Canceled) {
		t.Fatalf("unpark under dead context returned %v", err)
	}
	s.release() // must not free other's slot
	if len(l.slots) != 1 {
		t.Fatal("failed unpark's release stole another request's slot")
	}
	other.release()
}

// TestBreakerStateMachine walks closed → open → half-open → closed with
// a controlled clock, including the doubled cooldown on a re-trip and
// the single-probe rule while half-open.
func TestBreakerStateMachine(t *testing.T) {
	b := newBreaker(2, time.Second)
	key := Key{Graph: "g", Kind: "oracle", Tau: 1, Seed: 1, Algorithm: "cluster"}
	now := time.Unix(1000, 0)

	if _, err := b.allow(key, now); err != nil {
		t.Fatalf("healthy key refused: %v", err)
	}
	if b.failure(key, now) {
		t.Fatal("first failure must not trip a threshold-2 breaker")
	}
	if _, err := b.allow(key, now); err != nil {
		t.Fatalf("under-threshold key refused: %v", err)
	}
	if !b.failure(key, now) {
		t.Fatal("second failure must trip")
	}
	if b.openKeys() != 1 {
		t.Fatalf("openKeys = %d after trip", b.openKeys())
	}

	// Open: refused with the remaining cooldown.
	_, err := b.allow(key, now.Add(400*time.Millisecond))
	var open *BreakerOpenError
	if !errors.As(err, &open) || open.State != breakerOpen {
		t.Fatalf("open breaker returned %v", err)
	}
	if got := open.RetryAfter; got != 600*time.Millisecond {
		t.Fatalf("RetryAfter %v, want remaining 600ms", got)
	}

	// Cooldown expired: exactly one probe; the next caller is refused
	// half-open.
	probe, err := b.allow(key, now.Add(1100*time.Millisecond))
	if err != nil || !probe {
		t.Fatalf("expired cooldown: probe=%v err=%v", probe, err)
	}
	if _, err := b.allow(key, now.Add(1100*time.Millisecond)); !errors.As(err, &open) || open.State != breakerHalfOpen {
		t.Fatalf("second caller during probe got %v, want half-open refusal", err)
	}

	// Failed probe: re-open with doubled cooldown.
	if !b.failure(key, now.Add(1200*time.Millisecond)) {
		t.Fatal("failed probe must re-trip")
	}
	if _, err := b.allow(key, now.Add(2*time.Second)); !errors.As(err, &open) {
		t.Fatalf("re-opened breaker admitted a build: %v", err)
	} else if open.RetryAfter != 1200*time.Millisecond {
		t.Fatalf("re-trip RetryAfter %v, want doubled cooldown remainder 1.2s", open.RetryAfter)
	}

	// A cancelled probe releases the half-open claim without counting.
	probe, err = b.allow(key, now.Add(4*time.Second))
	if err != nil || !probe {
		t.Fatalf("post-cooldown probe: probe=%v err=%v", probe, err)
	}
	b.cancelled(key)
	probe, err = b.allow(key, now.Add(4*time.Second))
	if err != nil || !probe {
		t.Fatalf("probe after cancellation: probe=%v err=%v", probe, err)
	}

	// Success closes and forgets the key entirely.
	b.success(key)
	if b.openKeys() != 0 {
		t.Fatal("success left the breaker open")
	}
	if b.failure(key, now.Add(5*time.Second)) {
		t.Fatal("failure streak must restart from zero after success")
	}
}

// TestBreakerClearGraph: RegisterGraph wipes a graph's records only.
func TestBreakerClearGraph(t *testing.T) {
	b := newBreaker(1, time.Second)
	now := time.Unix(0, 0)
	kA := Key{Graph: "a", Kind: "oracle"}
	kB := Key{Graph: "b", Kind: "oracle"}
	b.failure(kA, now)
	b.failure(kB, now)
	b.clearGraph("a")
	if _, err := b.allow(kA, now); err != nil {
		t.Fatalf("cleared graph still tripped: %v", err)
	}
	if _, err := b.allow(kB, now); err == nil {
		t.Fatal("other graph's breaker was cleared too")
	}
}

// TestRetryAfterHelpers pins the header rendering (ceil, floor of 1) and
// the unwrap-chain extraction.
func TestRetryAfterHelpers(t *testing.T) {
	if got := retryAfterSeconds(0); got != "1" {
		t.Fatalf("retryAfterSeconds(0) = %s", got)
	}
	if got := retryAfterSeconds(1500 * time.Millisecond); got != "2" {
		t.Fatalf("retryAfterSeconds(1.5s) = %s, want ceil 2", got)
	}
	err := &ShedError{Lane: laneSlow, RetryAfter: 3 * time.Second}
	if got := retryAfterOf(err); got != 3*time.Second {
		t.Fatalf("retryAfterOf(shed) = %v", got)
	}
	wrapped := &wrapErr{err}
	if got := retryAfterOf(wrapped); got != 3*time.Second {
		t.Fatalf("retryAfterOf(wrapped shed) = %v", got)
	}
	if got := retryAfterOf(context.Canceled); got != 0 {
		t.Fatalf("retryAfterOf(plain error) = %v", got)
	}
}

type wrapErr struct{ inner error }

func (w *wrapErr) Error() string { return "wrap: " + w.inner.Error() }
func (w *wrapErr) Unwrap() error { return w.inner }

// TestBuildRetryAfterClamps: the slow-lane estimate is wave-scaled and
// clamped to [1s, 5m].
func TestBuildRetryAfterClamps(t *testing.T) {
	s := New(Config{Workers: 2})
	// No histogram data yet: fall back to 1s per wave; an empty pool is
	// one wave.
	if d := s.buildRetryAfter("oracle", 0); d != 1*time.Second {
		t.Fatalf("cold-start estimate %v, want one 1s wave", d)
	}
	// Seed the per-kind histogram with 2s builds: pending=3 on a pool of
	// 2 is two waves → ~4s.
	for i := 0; i < 8; i++ {
		s.met.buildLatency.With("oracle").Observe(2.0)
	}
	d := s.buildRetryAfter("oracle", 3)
	if d < 2*time.Second || d > 10*time.Second {
		t.Fatalf("estimate %v outside the plausible band for 2 waves of ~2s builds", d)
	}
	// Absurd pending counts clamp at 5m.
	if d := s.buildRetryAfter("oracle", 1_000_000); d != 5*time.Minute {
		t.Fatalf("unclamped estimate %v", d)
	}
}

func waitQueueDepth(t *testing.T, l *lane, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for l.queueDepth() != want {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth %d never reached %d", l.queueDepth(), want)
		}
		time.Sleep(time.Millisecond)
	}
}
