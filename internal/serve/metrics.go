package serve

import (
	"sort"
	"sync/atomic"
	"time"
)

// metrics aggregates request/build counters with atomics so the hot query
// path never takes the server lock. Snapshot renders them for /stats.
type metrics struct {
	requests  atomic.Int64 // all HTTP requests
	errors    atomic.Int64 // requests answered with a non-2xx status
	queries   atomic.Int64 // point queries served (distance + cluster-of)
	queryNs   atomic.Int64 // cumulative handling time of point queries
	hits      atomic.Int64 // artifact cache hits (incl. joins on in-flight builds)
	misses    atomic.Int64 // artifact cache misses (each triggers one build)
	builds    atomic.Int64 // builds actually executed
	buildNs   atomic.Int64 // cumulative build time
	installs  atomic.Int64 // artifacts installed from snapshots
	evictions atomic.Int64 // artifacts dropped by the LRU cache bound
	rejected  atomic.Int64 // requests cancelled while queued for a worker
	inFlight  atomic.Int64 // requests currently holding a worker slot
	cancelled atomic.Int64 // builds cancelled after their last waiter left
}

// buildTimer returns a stop closure that records the build in the
// aggregate counters and reports its duration (so callers can attach the
// same measurement to the per-artifact cost line).
func (m *metrics) buildTimer() func() time.Duration {
	start := time.Now()
	return func() time.Duration {
		d := time.Since(start)
		m.builds.Add(1)
		m.buildNs.Add(d.Nanoseconds())
		return d
	}
}

// Stats is the JSON shape of the /stats endpoint.
type Stats struct {
	Requests       int64   `json:"requests"`
	Errors         int64   `json:"errors"`
	Queries        int64   `json:"queries"`
	AvgQueryMicros float64 `json:"avg_query_micros"`
	CacheHits      int64   `json:"cache_hits"`
	CacheMisses    int64   `json:"cache_misses"`
	HitRate        float64 `json:"hit_rate"`
	Builds         int64   `json:"builds"`
	AvgBuildMillis float64 `json:"avg_build_millis"`
	Installs       int64   `json:"snapshot_installs"`
	Evictions      int64   `json:"evictions"`
	Rejected       int64   `json:"rejected"`
	InFlight       int64   `json:"in_flight"`
	// CancelledBuilds counts detached builds stopped mid-flight because
	// their last waiter disconnected (or the server shut down).
	CancelledBuilds int64 `json:"cancelled_builds"`
	Workers         int   `json:"workers"`
	Graphs          int   `json:"graphs"`
	Artifacts       int   `json:"artifacts"`
	// ArtifactDetails lists the build cost of every completed cached
	// artifact (BSP rounds with the bottom-up share, messages, max
	// frontier, build wall-clock), sorted by key for stable output.
	ArtifactDetails []ArtifactCost `json:"artifact_details"`
}

// Stats returns a point-in-time view of the server's counters.
func (s *Server) Stats() Stats {
	m := &s.met
	st := Stats{
		Requests:        m.requests.Load(),
		Errors:          m.errors.Load(),
		Queries:         m.queries.Load(),
		CacheHits:       m.hits.Load(),
		CacheMisses:     m.misses.Load(),
		Builds:          m.builds.Load(),
		Installs:        m.installs.Load(),
		Evictions:       m.evictions.Load(),
		Rejected:        m.rejected.Load(),
		InFlight:        m.inFlight.Load(),
		CancelledBuilds: m.cancelled.Load(),
		Workers:         s.cfg.Workers,
	}
	if st.Queries > 0 {
		st.AvgQueryMicros = float64(m.queryNs.Load()) / float64(st.Queries) / 1e3
	}
	if st.Builds > 0 {
		st.AvgBuildMillis = float64(m.buildNs.Load()) / float64(st.Builds) / 1e6
	}
	if lookups := st.CacheHits + st.CacheMisses; lookups > 0 {
		st.HitRate = float64(st.CacheHits) / float64(lookups)
	}
	s.mu.RLock()
	st.Graphs = len(s.graphs)
	st.Artifacts = len(s.cache)
	for _, e := range s.cache {
		if e.completed() && e.cost != nil {
			st.ArtifactDetails = append(st.ArtifactDetails, *e.cost)
		}
	}
	s.mu.RUnlock()
	sort.Slice(st.ArtifactDetails, func(i, j int) bool {
		return st.ArtifactDetails[i].Key < st.ArtifactDetails[j].Key
	})
	return st
}
