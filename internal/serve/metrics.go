package serve

import (
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// metrics is the server's instrument set, backed by the obs registry that
// /metrics renders. The hot paths (queries, observer callbacks) touch only
// lock-free instruments; /stats reads the same instruments, so the two
// surfaces can never disagree. A few aggregates that exist only for
// /stats' derived averages (total request count, cumulative build time)
// stay plain atomics beside the registry.
type metrics struct {
	reg *obs.Registry

	// HTTP surface (middleware.go).
	httpRequests *obs.CounterVec   // {path, code}
	httpLatency  *obs.HistogramVec // {path}
	httpInFlight *obs.Gauge        // requests between middleware entry and exit
	requests     atomic.Int64      // aggregate across paths, for /stats
	errors       *obs.Counter      // responses with status >= 400
	rejected     *obs.Counter      // requests cancelled while queued for a worker slot
	inFlight     *obs.Gauge        // requests holding a worker slot
	queryLatency *obs.Histogram    // point-query handling time (distance + cluster-of)

	// Batch query path (batch.go). batchPairs counts answered pairs —
	// the batch counterpart of the point-query count, so /metrics can
	// distinguish one 10k-pair request from 10k point queries — and
	// batchSize is the per-request batch-size distribution.
	batchPairs *obs.Counter
	batchSize  *obs.Histogram

	// Overload surface (admission.go, breaker.go): load shedding by lane,
	// client-abandoned requests, and the per-key circuit breaker.
	shed            *obs.CounterVec // {lane}
	clientGone      *obs.Counter
	breakerTrips    *obs.Counter
	breakerRejected *obs.Counter
	breakerProbes   *obs.Counter

	// Artifact cache and builds.
	hits         *obs.Counter
	misses       *obs.Counter
	evictions    *obs.Counter
	installs     *obs.Counter
	builds       *obs.Counter
	cancelled    *obs.Counter
	timedOut     *obs.Counter
	buildLatency *obs.HistogramVec // {kind}
	buildNs      atomic.Int64      // cumulative build time, for /stats' average

	// Engine progress totals, fed by the build observers: the paper's cost
	// units (rounds, arcs-scanned messages, relaxations, buckets, MR
	// shuffle volume) as live server-wide counters.
	engRounds      *obs.Counter
	engPullRounds  *obs.Counter
	engArcs        *obs.Counter
	engRelaxations *obs.Counter
	engBuckets     *obs.Counter
	mrRounds       *obs.Counter
	mrPairs        *obs.Counter
}

func newMetrics() *metrics {
	reg := obs.NewRegistry()
	m := &metrics{reg: reg}
	m.httpRequests = reg.CounterVec("reprod_http_requests_total",
		"HTTP requests served, by endpoint path and status code.", "path", "code")
	m.httpLatency = reg.HistogramVec("reprod_http_request_duration_seconds",
		"End-to-end request latency by endpoint, including worker-slot queueing and any artifact build the request waited out.",
		obs.DefBuckets, "path")
	m.httpInFlight = reg.Gauge("reprod_http_in_flight_requests",
		"Requests currently being handled.")
	m.errors = reg.Counter("reprod_http_errors_total",
		"Requests answered with status >= 400.")
	m.rejected = reg.Counter("reprod_requests_rejected_total",
		"Requests whose client disconnected while queued for a worker slot.")
	m.inFlight = reg.Gauge("reprod_request_slots_in_use",
		"Requests currently holding one of the bounded worker slots.")
	m.queryLatency = reg.Histogram("reprod_point_query_duration_seconds",
		"Handling time of point queries (distance, cluster-of) against a completed artifact.",
		obs.DefBuckets)
	m.shed = reg.CounterVec("reprod_requests_shed_total",
		"Requests load-shed with 503 + Retry-After because an admission lane's bounded queue was full, by lane (fast, slow).", "lane")
	m.clientGone = reg.Counter("reprod_requests_client_gone_total",
		"Requests whose client disconnected before the response was written.")
	m.breakerTrips = reg.Counter("reprod_breaker_trips_total",
		"Circuit-breaker openings, including re-opens after a failed half-open probe.")
	m.breakerRejected = reg.Counter("reprod_breaker_rejected_total",
		"Build requests answered a fast 503 because their key's circuit breaker was open.")
	m.breakerProbes = reg.Counter("reprod_breaker_probes_total",
		"Half-open probe builds admitted after a breaker cooldown expired.")
	m.batchPairs = reg.Counter("reprod_batch_pairs_total",
		"Distance pairs answered by /distance-batch across all encodings.")
	m.batchSize = reg.Histogram("reprod_batch_size_pairs",
		"Pairs per /distance-batch request.",
		[]float64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536})
	m.hits = reg.Counter("reprod_artifact_cache_hits_total",
		"Artifact cache hits, including joins on in-flight builds.")
	m.misses = reg.Counter("reprod_artifact_cache_misses_total",
		"Artifact cache misses; each one starts a detached build.")
	m.evictions = reg.Counter("reprod_artifact_cache_evictions_total",
		"Completed artifacts dropped by the LRU cache bound.")
	m.installs = reg.Counter("reprod_snapshot_installs_total",
		"Artifacts installed from persisted snapshots instead of builds.")
	m.builds = reg.Counter("reprod_builds_total",
		"Detached artifact builds that acquired a build-pool slot and ran.")
	m.cancelled = reg.Counter("reprod_builds_cancelled_total",
		"Builds cancelled mid-flight because their last waiter left or the server drained.")
	m.timedOut = reg.Counter("reprod_builds_timed_out_total",
		"Builds killed by the server-side build deadline (Config.BuildTimeout); their waiters answer 504.")
	m.buildLatency = reg.HistogramVec("reprod_build_duration_seconds",
		"Wall-clock build duration by artifact kind (oracle, diameter, mrdiameter, kcenter).",
		obs.BuildBuckets, "kind")
	m.engRounds = reg.Counter("reprod_engine_bsp_rounds_total",
		"BSP supersteps executed by artifact builds.")
	m.engPullRounds = reg.Counter("reprod_engine_pull_rounds_total",
		"BSP supersteps that ran bottom-up (pull direction).")
	m.engArcs = reg.Counter("reprod_engine_arcs_scanned_total",
		"Arcs scanned by artifact builds, the paper's message-volume unit.")
	m.engRelaxations = reg.Counter("reprod_engine_relaxations_total",
		"Weighted edge relaxations offered by delta-stepping builds.")
	m.engBuckets = reg.Counter("reprod_engine_buckets_total",
		"Delta-stepping buckets settled by artifact builds.")
	m.mrRounds = reg.Counter("reprod_mr_rounds_total",
		"MR(MG, ML) rounds committed by mr-diameter builds.")
	m.mrPairs = reg.Counter("reprod_mr_pairs_shuffled_total",
		"Pairs moved by the MR shuffle across all committed rounds.")
	return m
}

// registerServerGauges registers the scrape-time gauges that read state
// living on the server itself (cache occupancy, pool occupancy) — exposed
// as GaugeFuncs so the numbers are never double-booked. Called once from
// New, after the channels and maps exist.
func (s *Server) registerServerGauges() {
	reg := s.met.reg
	reg.GaugeFunc("reprod_artifact_cache_entries",
		"Artifact cache slots in use, completed and in-flight.", func() float64 {
			s.mu.RLock()
			n := len(s.cache)
			s.mu.RUnlock()
			return float64(n)
		})
	reg.GaugeFunc("reprod_artifact_cache_capacity",
		"Configured artifact cache bound (Config.MaxArtifacts).", func() float64 {
			return float64(s.cfg.MaxArtifacts)
		})
	reg.GaugeFunc("reprod_builds_in_flight",
		"Detached builds currently queued or running.", func() float64 {
			return float64(s.buildingCount())
		})
	reg.GaugeFunc("reprod_build_pool_occupancy",
		"Build-pool slots currently held by running builds.", func() float64 {
			return float64(len(s.buildSem))
		})
	reg.GaugeFunc("reprod_build_pool_size",
		"Configured build-pool bound (Config.Workers).", func() float64 {
			return float64(cap(s.buildSem))
		})
	reg.GaugeFunc("reprod_graphs",
		"Graphs registered and queryable.", func() float64 {
			s.mu.RLock()
			n := len(s.graphs)
			s.mu.RUnlock()
			return float64(n)
		})
	reg.GaugeFunc("reprod_fast_lane_queue_depth",
		"Requests waiting for a fast-lane slot.", func() float64 {
			return float64(s.fast.queueDepth())
		})
	reg.GaugeFunc("reprod_slow_lane_pending_builds",
		"Builds admitted to the slow lane and not yet finished (queued plus running).", func() float64 {
			return float64(s.slowPending.Load())
		})
	reg.GaugeFunc("reprod_breaker_open_keys",
		"Artifact keys whose circuit breaker is currently open or half-open.", func() float64 {
			return float64(s.breaker.openKeys())
		})
}

// buildTimer returns a stop closure that records the build in the
// aggregate counters and reports its duration (so callers can attach the
// same measurement to the per-artifact cost line and the per-kind
// duration histogram).
func (m *metrics) buildTimer() func() time.Duration {
	start := time.Now()
	return func() time.Duration {
		d := time.Since(start)
		m.builds.Inc()
		m.buildNs.Add(d.Nanoseconds())
		return d
	}
}

// Stats is the JSON shape of the /stats endpoint.
type Stats struct {
	Requests       int64   `json:"requests"`
	Errors         int64   `json:"errors"`
	Queries        int64   `json:"queries"`
	BatchPairs     int64   `json:"batch_pairs"`
	AvgQueryMicros float64 `json:"avg_query_micros"`
	CacheHits      int64   `json:"cache_hits"`
	CacheMisses    int64   `json:"cache_misses"`
	HitRate        float64 `json:"hit_rate"`
	Builds         int64   `json:"builds"`
	AvgBuildMillis float64 `json:"avg_build_millis"`
	Installs       int64   `json:"snapshot_installs"`
	Evictions      int64   `json:"evictions"`
	Rejected       int64   `json:"rejected"`
	InFlight       int64   `json:"in_flight"`
	// CancelledBuilds counts detached builds stopped mid-flight because
	// their last waiter disconnected (or the server shut down).
	CancelledBuilds int64 `json:"cancelled_builds"`
	// TimedOutBuilds counts builds killed by the server-side build
	// deadline (Config.BuildTimeout).
	TimedOutBuilds int64 `json:"timed_out_builds"`
	// Overload surface: load-shed requests by lane, client-abandoned
	// requests, and the per-key circuit breaker.
	ShedFast        int64 `json:"shed_fast"`
	ShedSlow        int64 `json:"shed_slow"`
	ClientGone      int64 `json:"client_gone"`
	BreakerTrips    int64 `json:"breaker_trips"`
	BreakerRejected int64 `json:"breaker_rejected"`
	BreakerOpenKeys int   `json:"breaker_open_keys"`
	Workers         int   `json:"workers"`
	Graphs          int   `json:"graphs"`
	Artifacts       int   `json:"artifacts"`
	// ArtifactDetails lists the build cost of every completed cached
	// artifact (BSP rounds with the bottom-up share, messages, max
	// frontier, build wall-clock), sorted by key for stable output. Each
	// entry built by this process (rather than installed from a snapshot)
	// carries its build trace.
	ArtifactDetails []ArtifactCost `json:"artifact_details"`
}

// Stats returns a point-in-time view of the server's counters.
func (s *Server) Stats() Stats {
	m := s.met
	st := Stats{
		Requests:        m.requests.Load(),
		Errors:          m.errors.Value(),
		Queries:         m.queryLatency.Count(),
		BatchPairs:      m.batchPairs.Value(),
		CacheHits:       m.hits.Value(),
		CacheMisses:     m.misses.Value(),
		Builds:          m.builds.Value(),
		Installs:        m.installs.Value(),
		Evictions:       m.evictions.Value(),
		Rejected:        m.rejected.Value(),
		InFlight:        m.inFlight.Value(),
		CancelledBuilds: m.cancelled.Value(),
		TimedOutBuilds:  m.timedOut.Value(),
		ShedFast:        m.shed.With(laneFast).Value(),
		ShedSlow:        m.shed.With(laneSlow).Value(),
		ClientGone:      m.clientGone.Value(),
		BreakerTrips:    m.breakerTrips.Value(),
		BreakerRejected: m.breakerRejected.Value(),
		BreakerOpenKeys: s.breaker.openKeys(),
		Workers:         s.cfg.Workers,
	}
	if st.Queries > 0 {
		st.AvgQueryMicros = m.queryLatency.Sum() / float64(st.Queries) * 1e6
	}
	if st.Builds > 0 {
		st.AvgBuildMillis = float64(m.buildNs.Load()) / float64(st.Builds) / 1e6
	}
	if lookups := st.CacheHits + st.CacheMisses; lookups > 0 {
		st.HitRate = float64(st.CacheHits) / float64(lookups)
	}
	s.mu.RLock()
	st.Graphs = len(s.graphs)
	st.Artifacts = len(s.cache)
	for _, e := range s.cache {
		if e.completed() && e.cost != nil {
			st.ArtifactDetails = append(st.ArtifactDetails, *e.cost)
		}
	}
	s.mu.RUnlock()
	sort.Slice(st.ArtifactDetails, func(i, j int) bool {
		return st.ArtifactDetails[i].Key < st.ArtifactDetails[j].Key
	})
	return st
}
