package serve

// Tests for the detached, reference-counted build pipeline: a build whose
// waiters have all disconnected is cancelled mid-flight (the engines stop
// at their next barrier), its worker slots are already free, its cache
// entry is removed so the key is retryable, and a surviving waiter keeps
// the build alive. These run under the CI -race job like every other test.

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// waitUntil polls cond for up to 10s — build goroutines publish their
// outcome asynchronously, so assertions about post-build state poll.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func (s *Server) cachedEntries() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.cache)
}

// The heart of the contract, with a fully controlled build: cancelling the
// sole waiter cancels the detached build's context, the entry is removed
// (key retryable), and a retry rebuilds cleanly.
func TestCancelSoleWaiterCancelsDetachedBuild(t *testing.T) {
	s := New(Config{Workers: 2})
	key := Key{Graph: "g", Kind: "oracle", Tau: 1, Seed: 1, Algorithm: "cluster"}

	started := make(chan struct{})
	buildErr := make(chan error, 1)
	build := func(bctx context.Context) (any, error) {
		close(started)
		<-bctx.Done() // a stand-in for engines parked at a barrier
		buildErr <- bctx.Err()
		return nil, bctx.Err()
	}

	ctx, cancel := context.WithCancel(context.Background())
	waiter := make(chan error, 1)
	go func() {
		_, err := s.artifact(ctx, key, build)
		waiter <- err
	}()

	<-started // the detached build is running
	cancel()  // the sole waiter disconnects

	if err := <-waiter; !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err = %v, want context.Canceled", err)
	}
	// The doomed entry is removed by the departing waiter itself — the key
	// is retryable immediately, before the build goroutine unwinds, and a
	// request landing in that window starts a fresh build instead of
	// inheriting this one's context.Canceled.
	if n := s.cachedEntries(); n != 0 {
		t.Fatalf("%d entries still cached right after the last waiter left", n)
	}
	// The build context was cancelled because the last waiter left — not
	// because the build finished.
	select {
	case err := <-buildErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("build ctx err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("detached build never saw the cancellation")
	}
	// The entry is removed, so the key is retryable; the cancellation is
	// counted.
	waitUntil(t, "cancelled entry removal", func() bool { return s.cachedEntries() == 0 })
	waitUntil(t, "cancelled-build counter", func() bool { return s.Stats().CancelledBuilds == 1 })

	// Retry rebuilds cleanly.
	v, err := s.artifact(context.Background(), key, func(context.Context) (any, error) {
		return 42, nil
	})
	if err != nil || v.(int) != 42 {
		t.Fatalf("retry after cancellation: v=%v err=%v", v, err)
	}
}

// A second waiter keeps the build alive when the first disconnects; only
// the last departure cancels.
func TestSurvivingWaiterKeepsBuildAlive(t *testing.T) {
	s := New(Config{Workers: 4})
	key := Key{Graph: "g", Kind: "oracle", Tau: 2, Seed: 1, Algorithm: "cluster"}

	started := make(chan struct{})
	release := make(chan struct{})
	cancelledEarly := make(chan struct{}, 1)
	build := func(bctx context.Context) (any, error) {
		close(started)
		select {
		case <-bctx.Done():
			cancelledEarly <- struct{}{}
			return nil, bctx.Err()
		case <-release:
			return "artifact", nil
		}
	}

	ctx1, cancel1 := context.WithCancel(context.Background())
	w1 := make(chan error, 1)
	go func() {
		_, err := s.artifact(ctx1, key, build)
		w1 <- err
	}()
	<-started

	// Second waiter joins the in-flight build.
	w2 := make(chan any, 1)
	go func() {
		v, err := s.artifact(context.Background(), key, build)
		if err != nil {
			w2 <- err
		} else {
			w2 <- v
		}
	}()
	waitUntil(t, "second waiter registration", func() bool {
		s.mu.RLock()
		defer s.mu.RUnlock()
		e, ok := s.cache[key]
		return ok && e.waiters == 2
	})

	// First waiter leaves: the build must NOT be cancelled.
	cancel1()
	if err := <-w1; !errors.Is(err, context.Canceled) {
		t.Fatalf("w1 err = %v, want context.Canceled", err)
	}
	select {
	case <-cancelledEarly:
		t.Fatal("build was cancelled while a waiter remained")
	case <-time.After(50 * time.Millisecond):
	}

	// Let the build finish; the surviving waiter gets the artifact.
	close(release)
	switch v := (<-w2).(type) {
	case string:
		if v != "artifact" {
			t.Fatalf("w2 got %q", v)
		}
	default:
		t.Fatalf("w2 got %v (%T), want the artifact", v, v)
	}
	if s.cachedEntries() != 1 {
		t.Fatalf("completed artifact not cached (%d entries)", s.cachedEntries())
	}
}

// End-to-end through the real engines: a pre-cancelled request aborts the
// oracle decomposition at its first round barrier (core returns ctx.Err(),
// so the entry is dropped and the key retryable), and a retry rebuilds the
// artifact for real. This is the "engine returns ctx.Err()" acceptance
// path without any timing dependence.
func TestCancelledOracleBuildStopsEngineAndRetries(t *testing.T) {
	s := New(Config{Workers: 2})
	if err := s.RegisterGraph("mesh", graph.Mesh(60, 60)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Oracle(ctx, "mesh", 3, 1, ""); !errors.Is(err, context.Canceled) {
		t.Fatalf("Oracle err = %v, want context.Canceled", err)
	}
	waitUntil(t, "cancelled oracle entry removal", func() bool { return s.cachedEntries() == 0 })
	// The abandoned build is counted whether it was cancelled mid-engines
	// or while still queued for a build slot (in the latter case it never
	// executed, so Builds may stay 0 here).
	waitUntil(t, "cancelled build accounting", func() bool { return s.Stats().CancelledBuilds == 1 })

	// Retry with a live context: clean rebuild, same key.
	o, err := s.Oracle(context.Background(), "mesh", 3, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	if o.NumClusters() == 0 {
		t.Fatal("retry produced an empty oracle")
	}
	if st := s.Stats(); st.Builds < 1 || st.Artifacts != 1 {
		t.Fatalf("builds=%d artifacts=%d after retry, want >=1 executed build and 1 artifact", st.Builds, st.Artifacts)
	}
}

// The same contract holds for the other build families.
func TestCancelledDiameterAndMRDiameterRetryable(t *testing.T) {
	s := New(Config{Workers: 2})
	if err := s.RegisterGraph("mesh", graph.Mesh(30, 30)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Diameter(ctx, "mesh", 1, 1, ""); !errors.Is(err, context.Canceled) {
		t.Fatalf("Diameter err = %v, want context.Canceled", err)
	}
	if _, err := s.MRDiameter(ctx, "mesh", 1, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("MRDiameter err = %v, want context.Canceled", err)
	}
	waitUntil(t, "cancelled entries removal", func() bool { return s.cachedEntries() == 0 })
	if _, err := s.Diameter(context.Background(), "mesh", 1, 1, ""); err != nil {
		t.Fatalf("diameter retry: %v", err)
	}
	if _, err := s.MRDiameter(context.Background(), "mesh", 1, 1); err != nil {
		t.Fatalf("mr-diameter retry: %v", err)
	}
}

// A departing waiter frees its worker slot immediately — while the build
// it abandoned is still running for someone else. This mirrors the wrap()
// pipeline: slot acquisition wraps the artifact call.
func TestWaiterSlotFreedWhileBuildStillRunning(t *testing.T) {
	s := New(Config{Workers: 1}) // a single slot makes leakage observable
	key := Key{Graph: "g", Kind: "oracle", Tau: 3, Seed: 1, Algorithm: "cluster"}

	started := make(chan struct{})
	release := make(chan struct{})
	build := func(bctx context.Context) (any, error) {
		close(started)
		select {
		case <-bctx.Done():
			return nil, bctx.Err()
		case <-release:
			return "done", nil
		}
	}

	// Waiter A: holds the only slot, as wrap() would, then disconnects.
	ctx, cancel := context.WithCancel(context.Background())
	aDone := make(chan struct{})
	go func() {
		defer close(aDone)
		if err := s.acquire(ctx); err != nil {
			t.Errorf("acquire: %v", err)
			return
		}
		defer s.release()
		_, _ = s.artifact(ctx, key, build)
	}()
	<-started
	cancel()
	<-aDone // A returned and released its slot — before the build completed

	// The slot must be immediately available even though the (now
	// cancelled) build goroutine may still be winding down.
	acqCtx, acqCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer acqCancel()
	if err := s.acquire(acqCtx); err != nil {
		t.Fatalf("worker slot not freed on disconnect: %v", err)
	}
	s.release()
	close(release)
}

// Detached builds are bounded by the build pool (Config.Workers): a
// second build queues behind a running one instead of running engines
// beside it, and a build cancelled while queued never runs at all.
func TestDetachedBuildsBoundedByBuildPool(t *testing.T) {
	s := New(Config{Workers: 1})
	key1 := Key{Graph: "g", Kind: "oracle", Tau: 101, Seed: 1, Algorithm: "cluster"}
	key2 := Key{Graph: "g", Kind: "oracle", Tau: 102, Seed: 1, Algorithm: "cluster"}
	key3 := Key{Graph: "g", Kind: "oracle", Tau: 103, Seed: 1, Algorithm: "cluster"}

	started1 := make(chan struct{})
	release1 := make(chan struct{})
	w1 := make(chan error, 1)
	go func() {
		_, err := s.artifact(context.Background(), key1, func(bctx context.Context) (any, error) {
			close(started1)
			select {
			case <-release1:
				return "v1", nil
			case <-bctx.Done():
				return nil, bctx.Err()
			}
		})
		w1 <- err
	}()
	<-started1 // build 1 holds the only build slot

	started2 := make(chan struct{}, 1)
	w2 := make(chan error, 1)
	go func() {
		_, err := s.artifact(context.Background(), key2, func(context.Context) (any, error) {
			started2 <- struct{}{}
			return "v2", nil
		})
		w2 <- err
	}()
	select {
	case <-started2:
		t.Fatal("second build ran while the first held the only build slot")
	case <-time.After(50 * time.Millisecond):
	}

	// A build cancelled while queued leaves the queue without running.
	ctx3, cancel3 := context.WithCancel(context.Background())
	w3 := make(chan error, 1)
	go func() {
		_, err := s.artifact(ctx3, key3, func(context.Context) (any, error) {
			t.Error("queued build ran despite cancellation")
			return nil, nil
		})
		w3 <- err
	}()
	waitUntil(t, "third key registration", func() bool {
		s.mu.RLock()
		defer s.mu.RUnlock()
		_, ok := s.cache[key3]
		return ok
	})
	cancel3()
	if err := <-w3; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued-then-cancelled build err = %v, want context.Canceled", err)
	}

	// Releasing build 1 lets build 2 run to completion.
	close(release1)
	if err := <-w1; err != nil {
		t.Fatalf("build 1: %v", err)
	}
	if err := <-w2; err != nil {
		t.Fatalf("build 2 never got the slot: %v", err)
	}
	<-started2
}

// RegisterGraph replacing a graph cancels the in-flight builds it prunes:
// an artifact under construction must not outlive its topology, and
// Shutdown — which cancels via cache membership — must never be blind to
// a still-running pruned build.
func TestRegisterGraphCancelsPrunedBuilds(t *testing.T) {
	s := New(Config{Workers: 2})
	if err := s.RegisterGraph("g", graph.Mesh(10, 10)); err != nil {
		t.Fatal(err)
	}
	key := Key{Graph: "g", Kind: "oracle", Tau: 5, Seed: 1, Algorithm: "cluster"}
	started := make(chan struct{})
	w := make(chan error, 1)
	go func() {
		_, err := s.artifact(context.Background(), key, func(bctx context.Context) (any, error) {
			close(started)
			<-bctx.Done()
			return nil, bctx.Err()
		})
		w <- err
	}()
	<-started

	if err := s.RegisterGraph("g", graph.Mesh(12, 12)); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-w:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("pruned build waiter err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("pruned in-flight build was never cancelled")
	}
}

// A panicking build must become a failed, retryable build — not a daemon
// crash. The detached goroutine has no net/http recover above it, so the
// containment lives in runBuild.
func TestPanickingBuildIsContainedAndRetryable(t *testing.T) {
	s := New(Config{Workers: 2})
	key := Key{Graph: "g", Kind: "oracle", Tau: 9, Seed: 1, Algorithm: "cluster"}

	_, err := s.artifact(context.Background(), key, func(context.Context) (any, error) {
		panic("boom")
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panicking build: err = %v, want a contained panic error", err)
	}
	waitUntil(t, "panicked entry removal", func() bool { return s.cachedEntries() == 0 })

	// The key is retryable and the server is still alive.
	v, err := s.artifact(context.Background(), key, func(context.Context) (any, error) {
		return "ok", nil
	})
	if err != nil || v.(string) != "ok" {
		t.Fatalf("retry after panic: v=%v err=%v", v, err)
	}
}

// Server.Shutdown cancels every in-flight build and drains the build
// goroutines.
func TestServerShutdownCancelsInFlightBuilds(t *testing.T) {
	s := New(Config{Workers: 2})
	key := Key{Graph: "g", Kind: "oracle", Tau: 4, Seed: 1, Algorithm: "cluster"}

	started := make(chan struct{})
	build := func(bctx context.Context) (any, error) {
		close(started)
		<-bctx.Done()
		return nil, bctx.Err()
	}
	w := make(chan error, 1)
	go func() {
		_, err := s.artifact(context.Background(), key, build)
		w <- err
	}()
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-w; !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err after shutdown = %v, want context.Canceled", err)
	}
	if n := s.cachedEntries(); n != 0 {
		t.Fatalf("%d cancelled entries left in cache after shutdown", n)
	}

	// Builds requested after Shutdown are rejected fast, so late traffic
	// cannot extend the drain.
	_, err := s.artifact(context.Background(), key, func(context.Context) (any, error) {
		t.Error("build ran after Shutdown")
		return nil, nil
	})
	if !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("post-shutdown build err = %v, want ErrShuttingDown", err)
	}
}

// Satellite: /diameter must key on the RESOLVED tau — a parameter-less
// request and an explicit request for the resolved default share one cache
// slot, and /stats reports the real parameter instead of tau=0.
func TestDiameterDefaultTauResolvedIntoKey(t *testing.T) {
	g := graph.Mesh(40, 40)
	s := New(Config{Workers: 2})
	if err := s.RegisterGraph("mesh", g); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Diameter(context.Background(), "mesh", 0, 1, ""); err != nil {
		t.Fatal(err)
	}
	def := core.DefaultDiameterTau(g.NumNodes())
	if _, err := s.Diameter(context.Background(), "mesh", def, 1, ""); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Builds != 1 {
		t.Fatalf("default and explicit-default diameter requests built %d artifacts, want 1", st.Builds)
	}
	if len(st.ArtifactDetails) != 1 {
		t.Fatalf("want 1 artifact line, got %+v", st.ArtifactDetails)
	}
	if k := st.ArtifactDetails[0].Key; strings.Contains(k, "tau=0") {
		t.Fatalf("stats still report an unresolved key %q", k)
	}

	// The mr-diameter path resolves through the same helper.
	if _, err := s.MRDiameter(context.Background(), "mesh", 0, 1); err != nil {
		t.Fatal(err)
	}
	oracleDef := core.DefaultOracleTau(g.NumNodes())
	if _, err := s.MRDiameter(context.Background(), "mesh", oracleDef, 1); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Builds != 2 {
		t.Fatalf("mr-diameter default/explicit split the cache: %d builds, want 2", st.Builds)
	}
}

// Satellite: InstallSnapshot honors MaxArtifacts. When every slot holds an
// in-flight build nothing is evictable and the install is rejected; once a
// slot completes, the LRU completed entry is evicted to make room.
func TestInstallSnapshotHonorsCacheCap(t *testing.T) {
	// Build a small artifact to install.
	donor := New(Config{Workers: 2})
	if err := donor.RegisterGraph("m", graph.Mesh(15, 15)); err != nil {
		t.Fatal(err)
	}
	art, err := donor.SnapshotArtifact(context.Background(), "m", 2, 7, "cluster")
	if err != nil {
		t.Fatal(err)
	}

	s := New(Config{Workers: 2, MaxArtifacts: 1})
	// Occupy the single slot with an in-flight build.
	key := Key{Graph: "other", Kind: "oracle", Tau: 1, Seed: 1, Algorithm: "cluster"}
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_, _ = s.artifact(context.Background(), key, func(bctx context.Context) (any, error) {
			close(started)
			select {
			case <-release:
				return "v", nil
			case <-bctx.Done():
				return nil, bctx.Err()
			}
		})
	}()
	<-started

	if err := s.InstallSnapshot(art); !errors.Is(err, ErrCacheFull) {
		t.Fatalf("install into a cache full of in-flight builds: err = %v, want ErrCacheFull", err)
	}

	// Complete the build: now the completed entry is evictable and the
	// install succeeds within the cap.
	close(release)
	waitUntil(t, "build completion", func() bool {
		s.mu.RLock()
		defer s.mu.RUnlock()
		e, ok := s.cache[key]
		return ok && e.completed()
	})
	if err := s.InstallSnapshot(art); err != nil {
		t.Fatalf("install after completion: %v", err)
	}
	if n := s.cachedEntries(); n != 1 {
		t.Fatalf("cache grew past MaxArtifacts: %d entries", n)
	}

	// Reinstalling the same key replaces in place — no eviction needed.
	if err := s.InstallSnapshot(art); err != nil {
		t.Fatalf("reinstall same key: %v", err)
	}
	if n := s.cachedEntries(); n != 1 {
		t.Fatalf("reinstall changed the cache size: %d entries", n)
	}
}
