package serve

// breaker.go is the per-key build circuit breaker: a negative cache for
// artifact keys whose builds keep failing. Builds are the expensive
// phase, so a poisoned key — bad parameters, a graph that trips a build
// invariant, an injected fault — must not be allowed to re-burn a build
// slot on every request. After BreakerThreshold consecutive failures the
// key OPENS: requests are refused instantly with 503 + Retry-After for
// an exponentially growing cooldown. When the cooldown expires the key
// goes HALF-OPEN: exactly one request is admitted as a probe build; if
// it succeeds the key closes (the entry is dropped entirely), if it
// fails the key re-opens with a doubled cooldown.
//
// Only terminal build failures count: failed, panicked, and timed-out
// builds. Cancellations (last waiter left, server draining) say nothing
// about the key's health, so they release a pending probe without
// counting against the key.

import (
	"fmt"
	"sync"
	"time"
)

// Breaker state names, surfaced in error messages and tests.
const (
	breakerOpen     = "open"
	breakerHalfOpen = "half-open"
)

// BreakerOpenError is the fast rejection for a key whose breaker is
// open: the build is not attempted and the HTTP layer answers 503 with a
// Retry-After covering the remaining cooldown.
type BreakerOpenError struct {
	Key        Key
	State      string
	RetryAfter time.Duration
}

func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("serve: build circuit breaker %s for %v after repeated failures, retry in %s",
		e.State, e.Key, e.RetryAfter.Round(time.Second))
}

func (e *BreakerOpenError) retryAfterHint() time.Duration { return e.RetryAfter }

// breakerEntry is one key's failure record. Guarded by breaker.mu.
type breakerEntry struct {
	failures int           // consecutive terminal failures
	cooldown time.Duration // current open cooldown (doubles per re-trip)
	until    time.Time     // open until; zero before the first trip
	probing  bool          // a half-open probe build is in flight
}

// breaker is the server-wide per-key breaker table. Entries exist only
// for keys with at least one recent failure, and successful builds
// delete them, so the table is bounded by the set of actively failing
// keys — itself bounded by MaxArtifacts, since every tracked failure
// came from an admitted build.
type breaker struct {
	mu          sync.Mutex
	threshold   int
	cooldown    time.Duration // base cooldown at the first trip
	maxCooldown time.Duration
	keys        map[Key]*breakerEntry
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 2 * time.Second
	}
	return &breaker{
		threshold:   threshold,
		cooldown:    cooldown,
		maxCooldown: 5 * time.Minute,
		keys:        make(map[Key]*breakerEntry),
	}
}

// allow gates the creation of a new build for key. It returns nil when
// the key is healthy (or under the failure threshold), grants a single
// probe when an open key's cooldown has expired (probe reports the
// grant, so the caller can count it), and otherwise returns a
// *BreakerOpenError carrying the remaining cooldown.
func (b *breaker) allow(key Key, now time.Time) (probe bool, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.keys[key]
	if !ok || e.failures < b.threshold {
		return false, nil
	}
	if e.probing {
		// Half-open with the probe still in flight: the probe's outcome
		// decides the key's fate; everyone else keeps getting the fast 503.
		return false, &BreakerOpenError{Key: key, State: breakerHalfOpen, RetryAfter: e.cooldown}
	}
	if now.Before(e.until) {
		return false, &BreakerOpenError{Key: key, State: breakerOpen, RetryAfter: e.until.Sub(now)}
	}
	// Cooldown expired: half-open. This caller becomes the probe.
	e.probing = true
	return true, nil
}

// failure records a terminal build failure for key and reports whether
// this failure tripped the breaker open (including re-opening after a
// failed probe), so the caller can count trips.
func (b *breaker) failure(key Key, now time.Time) (tripped bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.keys[key]
	if !ok {
		e = &breakerEntry{}
		b.keys[key] = e
	}
	e.probing = false
	e.failures++
	if e.failures < b.threshold {
		return false
	}
	switch {
	case e.until.IsZero():
		e.cooldown = b.cooldown
	default:
		e.cooldown *= 2
		if e.cooldown > b.maxCooldown {
			e.cooldown = b.maxCooldown
		}
	}
	e.until = now.Add(e.cooldown)
	return true
}

// success closes the breaker for key: one good build clears the record
// entirely (the next failure streak starts from zero).
func (b *breaker) success(key Key) {
	b.mu.Lock()
	delete(b.keys, key)
	b.mu.Unlock()
}

// cancelled releases a pending probe without counting the build either
// way: a cancellation says nothing about the key's health, and the next
// request after the (already expired) cooldown probes again.
func (b *breaker) cancelled(key Key) {
	b.mu.Lock()
	if e, ok := b.keys[key]; ok {
		e.probing = false
	}
	b.mu.Unlock()
}

// clearGraph drops every entry for a graph, called when RegisterGraph
// replaces its topology — the failures belonged to the old graph.
func (b *breaker) clearGraph(graphName string) {
	b.mu.Lock()
	for k := range b.keys {
		if k.Graph == graphName {
			delete(b.keys, k)
		}
	}
	b.mu.Unlock()
}

// openKeys counts keys at or past the failure threshold (open or
// half-open), feeding the reprod_breaker_open_keys gauge.
func (b *breaker) openKeys() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, e := range b.keys {
		if e.failures >= b.threshold {
			n++
		}
	}
	return n
}
