package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
)

// Handler returns the HTTP surface of the server:
//
//	GET  /distance?graph=G&u=U&v=V[&tau=T][&seed=S][&algo=cluster|cluster2]
//	POST /distance-batch?graph=G[&tau=T][&seed=S][&algo=...]  (body: pairs)
//	GET  /cluster-of?graph=G&u=U[&tau=T][&seed=S][&algo=...]
//	GET  /diameter?graph=G[&tau=T][&seed=S][&algo=...]
//	GET  /mr-diameter?graph=G[&tau=T][&seed=S]
//	GET  /kcenter?graph=G&k=K[&seed=S]
//	GET  /stats
//	GET  /builds
//	GET  /metrics
//	GET  /healthz
//
// All endpoints answer JSON except /metrics, which answers the Prometheus
// text exposition format, and /distance-batch, which answers in its
// request's encoding (JSON, the dense binary frame, or streamed NDJSON —
// see batch.go). Missing or malformed parameters are 400, unknown graphs
// 404; load-shed, breaker-rejected, and cancelled requests are 503 (shed
// and breaker responses carry a Retry-After header), and a build that
// outruns the server-side build timeout is 504 — README's "Overload &
// failure semantics" section has the full table. Every endpoint runs
// under the
// instrumentation middleware: responses carry an X-Request-ID header, and
// each request lands in the per-path request counter and latency
// histogram /metrics exports.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(path string, h http.HandlerFunc) {
		mux.Handle(path, s.instrument(path, h))
	}
	handle("/distance", s.wrap(s.handleDistance))
	handle("/distance-batch", s.wrapRaw(s.handleDistanceBatch))
	handle("/cluster-of", s.wrap(s.handleClusterOf))
	handle("/diameter", s.wrap(s.handleDiameter))
	handle("/mr-diameter", s.wrap(s.handleMRDiameter))
	handle("/kcenter", s.wrap(s.handleKCenter))
	handle("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	handle("/builds", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.BuildTraces())
	})
	handle("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", obs.ContentType)
		_ = s.met.reg.WritePrometheus(w)
	})
	handle("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "graphs": s.GraphNames()})
	})
	return mux
}

// httpError carries a status code through the handler plumbing.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{http.StatusBadRequest, fmt.Sprintf(format, args...)}
}

// errStatus maps a handler error to its HTTP status. Deadline expiry —
// a build that outran Config.BuildTimeout — is 504 (the server gave up),
// distinct from the 503 family (the server refused: shed, breaker-open,
// cache full, draining, client-abandoned), so clients can tell "retry
// later" from "this build is too slow".
func errStatus(err error) int {
	var (
		he   *httpError
		shed *ShedError
		open *BreakerOpenError
	)
	switch {
	case errors.As(err, &he):
		return he.status
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.As(err, &shed), errors.As(err, &open),
		errors.Is(err, context.Canceled),
		errors.Is(err, ErrCacheFull), errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrUnknownGraph):
		return http.StatusNotFound
	}
	return http.StatusInternalServerError
}

// wrap is the shared request pipeline: take a bounded worker slot
// (honouring client disconnect while queued), run the handler, and map
// errors to JSON error bodies. Request counting and latency live in the
// instrument middleware wrapped around it.
func (s *Server) wrap(h func(r *http.Request) (any, error)) http.HandlerFunc {
	return s.wrapRaw(func(w http.ResponseWriter, r *http.Request) error {
		v, err := h(r)
		if err != nil {
			return err
		}
		writeJSON(w, http.StatusOK, v)
		return nil
	})
}

// wrapRaw is wrap for handlers that encode (or stream) their own success
// responses — the batch path, whose pooled buffers bypass the generic
// JSON encoder. The handler contract: return an error only before writing
// anything, so the mapper can still produce a clean JSON error body.
//
// Admission runs through a per-request laneSlot rather than a bare
// acquire/release pair: the slot rides the request context (requestInfo)
// so the artifact cache can park it while the request blocks on a cold
// build, and its release is idempotent, so the deferred release frees
// exactly what is held whether the request completed, parked and
// resumed, or died parked.
func (s *Server) wrapRaw(h func(w http.ResponseWriter, r *http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		slot := &laneSlot{l: s.fast}
		if err := slot.acquire(r.Context()); err != nil {
			var shed *ShedError
			if errors.As(err, &shed) {
				s.met.shed.With(shed.Lane).Inc()
			} else {
				s.met.rejected.Add(1)
			}
			s.writeErr(w, r, err)
			return
		}
		if ri := requestInfoFrom(r.Context()); ri != nil {
			ri.slot = slot
		}
		s.met.inFlight.Add(1)
		defer func() {
			s.met.inFlight.Add(-1)
			slot.release()
		}()
		if err := h(w, r); err != nil {
			s.writeErr(w, r, err)
		}
	}
}

// writeErr maps a handler error to its JSON body, attaching the
// Retry-After header any shed-like rejection (lane shed, open breaker)
// carries and counting client-abandoned requests — cancellations whose
// cause was the request's own context, not a server-side refusal — into
// reprod_requests_client_gone_total, so shed-vs-abandoned traffic stays
// distinguishable in /metrics.
func (s *Server) writeErr(w http.ResponseWriter, r *http.Request, err error) {
	if ra := retryAfterOf(err); ra > 0 {
		w.Header().Set("Retry-After", retryAfterSeconds(ra))
	}
	if errors.Is(err, context.Canceled) && r.Context().Err() != nil {
		s.met.clientGone.Inc()
	}
	writeJSON(w, errStatus(err), errBody(err))
}

func errBody(err error) map[string]string { return map[string]string{"error": err.Error()} }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// --- request parameter parsing ---

type buildParams struct {
	graph string
	tau   int
	seed  uint64
	algo  string
}

// parseBuildParams resolves the artifact-selecting parameters, falling
// back to the server's configured defaults for any the client omitted, so
// parameter-less clients share the artifact the daemon prebuilt at
// startup.
func (s *Server) parseBuildParams(r *http.Request) (buildParams, error) {
	q := r.URL.Query()
	p := buildParams{graph: q.Get("graph"), algo: q.Get("algo"), seed: s.cfg.DefaultSeed}
	if p.graph == "" {
		return p, badRequest("missing graph parameter")
	}
	if p.algo == "" {
		p.algo = s.cfg.DefaultAlgorithm
	}
	if _, err := parseAlgorithm(p.algo); err != nil {
		return p, badRequest("%v", err)
	}
	if v := q.Get("tau"); v != "" {
		tau, err := strconv.Atoi(v)
		if err != nil || tau < 0 {
			return p, badRequest("bad tau %q", v)
		}
		p.tau = tau
	}
	if v := q.Get("seed"); v != "" {
		seed, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return p, badRequest("bad seed %q", v)
		}
		p.seed = seed
	}
	return p, nil
}

// parseNodeID is the syntactic half of node validation, run before any
// artifact build so malformed requests fail fast without costing (or
// cache-churning) a multi-second decomposition.
func parseNodeID(r *http.Request, name string) (graph.NodeID, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return 0, badRequest("missing %s parameter", name)
	}
	id, err := strconv.ParseInt(v, 10, 32)
	if err != nil || id < 0 {
		return 0, badRequest("bad node id %s=%q", name, v)
	}
	return graph.NodeID(id), nil
}

// checkNodeRange is the semantic half. It runs twice per request: first
// against the registered graph, before the artifact build, so an
// out-of-range id is a cheap 400 instead of the trigger for (and a cache
// slot spent on) a multi-second decomposition; then against the oracle's
// own graph, because RegisterGraph may swap the topology between the two.
func checkNodeRange(name string, id graph.NodeID, g *graph.Graph) error {
	if int(id) >= g.NumNodes() {
		return badRequest("node %s=%d out of range [0, %d)", name, id, g.NumNodes())
	}
	return nil
}

// --- endpoint handlers ---

// DistanceResponse answers /distance. Distance is the oracle upper bound
// (exact within a cluster's star, O(log³n)-approximate across clusters);
// Lower is the certified hop lower bound from the quotient graph.
// Reachable is false (and the bounds -1) for nodes in different components.
type DistanceResponse struct {
	Graph     string `json:"graph"`
	U         int32  `json:"u"`
	V         int32  `json:"v"`
	Reachable bool   `json:"reachable"`
	Distance  int64  `json:"distance"`
	Lower     int64  `json:"lower"`
	ClusterU  int32  `json:"cluster_u"`
	ClusterV  int32  `json:"cluster_v"`
}

func (s *Server) handleDistance(r *http.Request) (any, error) {
	p, err := s.parseBuildParams(r)
	if err != nil {
		return nil, err
	}
	u, err := parseNodeID(r, "u")
	if err != nil {
		return nil, err
	}
	v, err := parseNodeID(r, "v")
	if err != nil {
		return nil, err
	}
	if g, err := s.Graph(p.graph); err != nil {
		return nil, err
	} else if err := checkNodeRange("u", u, g); err != nil {
		return nil, err
	} else if err := checkNodeRange("v", v, g); err != nil {
		return nil, err
	}
	o, err := s.Oracle(r.Context(), p.graph, p.tau, p.seed, p.algo)
	if err != nil {
		return nil, err
	}
	if err := checkNodeRange("u", u, o.Clustering().G); err != nil {
		return nil, err
	}
	if err := checkNodeRange("v", v, o.Clustering().G); err != nil {
		return nil, err
	}
	start := time.Now()
	d := o.Query(u, v)
	lower := o.LowerQuery(u, v)
	s.met.queryLatency.Observe(time.Since(start).Seconds())
	resp := DistanceResponse{
		Graph:     p.graph,
		U:         u,
		V:         v,
		Reachable: d != graph.InfDist,
		Distance:  d,
		Lower:     lower,
		ClusterU:  o.Clustering().Owner[u],
		ClusterV:  o.Clustering().Owner[v],
	}
	if !resp.Reachable {
		resp.Distance, resp.Lower = -1, -1
	}
	return resp, nil
}

// ClusterOfResponse answers /cluster-of: the decomposition coordinates of
// one node (cluster index, its center, the growth distance to it, and the
// cluster radius).
type ClusterOfResponse struct {
	Graph         string `json:"graph"`
	U             int32  `json:"u"`
	Cluster       int32  `json:"cluster"`
	Center        int32  `json:"center"`
	DistToCenter  int32  `json:"dist_to_center"`
	ClusterRadius int32  `json:"cluster_radius"`
	NumClusters   int    `json:"num_clusters"`
}

func (s *Server) handleClusterOf(r *http.Request) (any, error) {
	p, err := s.parseBuildParams(r)
	if err != nil {
		return nil, err
	}
	u, err := parseNodeID(r, "u")
	if err != nil {
		return nil, err
	}
	if g, err := s.Graph(p.graph); err != nil {
		return nil, err
	} else if err := checkNodeRange("u", u, g); err != nil {
		return nil, err
	}
	o, err := s.Oracle(r.Context(), p.graph, p.tau, p.seed, p.algo)
	if err != nil {
		return nil, err
	}
	if err := checkNodeRange("u", u, o.Clustering().G); err != nil {
		return nil, err
	}
	start := time.Now()
	cl := o.Clustering()
	c := cl.Owner[u]
	resp := ClusterOfResponse{
		Graph:         p.graph,
		U:             u,
		Cluster:       c,
		Center:        cl.Centers[c],
		DistToCenter:  cl.Dist[u],
		ClusterRadius: cl.Radii[c],
		NumClusters:   cl.NumClusters(),
	}
	s.met.queryLatency.Observe(time.Since(start).Seconds())
	return resp, nil
}

// DiameterResponse answers /diameter with the certified bounds of
// Section 4: Lower = ∆C ≤ diameter ≤ Upper = 2R + ∆′C.
type DiameterResponse struct {
	Graph       string `json:"graph"`
	Lower       int64  `json:"lower"`
	Upper       int64  `json:"upper"`
	RMax        int32  `json:"r_max"`
	NumClusters int    `json:"num_clusters"`
	Exact       bool   `json:"quotient_exact"`
}

func (s *Server) handleDiameter(r *http.Request) (any, error) {
	p, err := s.parseBuildParams(r)
	if err != nil {
		return nil, err
	}
	res, err := s.Diameter(r.Context(), p.graph, p.tau, p.seed, p.algo)
	if err != nil {
		return nil, err
	}
	return DiameterResponse{
		Graph:       p.graph,
		Lower:       res.DeltaC,
		Upper:       res.Upper,
		RMax:        res.RMax,
		NumClusters: res.Clustering.NumClusters(),
		Exact:       res.Exact,
	}, nil
}

// MRDiameterResponse answers /mr-diameter: the Section 5 diameter path
// executed on the sharded MR runtime, with the round accounting the model
// charges for it. Upper = 2R + quotient_diameter is the certified bound.
type MRDiameterResponse struct {
	Graph            string `json:"graph"`
	QuotientDiameter int64  `json:"quotient_diameter"`
	Upper            int64  `json:"upper"`
	RMax             int32  `json:"r_max"`
	NumClusters      int    `json:"num_clusters"`
	MRRounds         int    `json:"mr_rounds"`
	MRShards         int    `json:"mr_shards"`
	MRPairsShuffled  int64  `json:"mr_pairs_shuffled"`
	MRMaxReducer     int    `json:"mr_max_reducer_input"`
}

func (s *Server) handleMRDiameter(r *http.Request) (any, error) {
	p, err := s.parseBuildParams(r)
	if err != nil {
		return nil, err
	}
	// The MR pipeline only implements CLUSTER; an explicit algo=cluster2
	// must be rejected rather than silently answered with CLUSTER results.
	if a := r.URL.Query().Get("algo"); a != "" && a != "cluster" {
		return nil, badRequest("mr-diameter runs the CLUSTER pipeline only (got algo=%q)", a)
	}
	res, err := s.MRDiameter(r.Context(), p.graph, p.tau, p.seed)
	if err != nil {
		return nil, err
	}
	return MRDiameterResponse{
		Graph:            p.graph,
		QuotientDiameter: res.QuotientDiameter,
		Upper:            res.Upper,
		RMax:             res.RMax,
		NumClusters:      res.NumClusters,
		MRRounds:         res.Rounds,
		MRShards:         res.Shards,
		MRPairsShuffled:  res.PairsShuffled,
		MRMaxReducer:     res.MaxReducerInput,
	}, nil
}

// KCenterResponse answers /kcenter: the selected centers and the exact
// radius of the solution (max distance of any node to its nearest center).
type KCenterResponse struct {
	Graph   string  `json:"graph"`
	K       int     `json:"k"`
	Centers []int32 `json:"centers"`
	Radius  int32   `json:"radius"`
	Merged  bool    `json:"merged"`
}

func (s *Server) handleKCenter(r *http.Request) (any, error) {
	p, err := s.parseBuildParams(r)
	if err != nil {
		return nil, err
	}
	kStr := r.URL.Query().Get("k")
	if kStr == "" {
		return nil, badRequest("missing k parameter")
	}
	k, err := strconv.Atoi(kStr)
	if err != nil || k < 1 {
		return nil, badRequest("bad k %q", kStr)
	}
	res, err := s.KCenter(r.Context(), p.graph, k, p.seed)
	if err != nil {
		return nil, err
	}
	return KCenterResponse{
		Graph:   p.graph,
		K:       k,
		Centers: res.Centers,
		Radius:  res.Radius,
		Merged:  res.Merged,
	}, nil
}
