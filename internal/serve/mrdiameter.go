package serve

import (
	"context"

	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/mr"
	"repro/internal/quotient"
)

// maxMRQuotient caps the quotient size admitted to repeated min-plus
// squaring: one squaring emits up to ℓ³ candidate pairs, so tau is the
// client-controlled knob that could otherwise turn one request into a
// multi-gigabyte shuffle. 256³ pairs ≈ 400 MB transient, the largest we
// let a single build allocate.
const maxMRQuotient = 256

// MRDiameterResult is the cached artifact behind /mr-diameter: the
// paper's Section 5 diameter path executed on the sharded MR runtime —
// CLUSTER(τ) decomposition, weighted quotient, then ⌈log₂ℓ⌉ min-plus
// squarings — with the run's full MR(MG, ML) accounting attached.
type MRDiameterResult struct {
	// QuotientDiameter is ∆′C, the weighted quotient diameter computed by
	// repeated squaring; Upper = 2R + ∆′C is the certified upper bound.
	QuotientDiameter int64
	Upper            int64
	RMax             int32
	NumClusters      int

	// MR accounting of the squaring pipeline (shard-count invariant).
	Rounds          int
	Shards          int
	PairsShuffled   int64
	MaxReducerInput int
	RoundStats      []mr.RoundStat

	// Stats is the BSP cost of the decomposition the quotient came from.
	Stats bsp.Stats
}

// MRDiameter returns the cached MR-runtime diameter artifact for the
// graph, building it on first use. tau <= 0 resolves like the oracle
// default (via the shared resolveTau helper, so the resolved value is what
// gets keyed and reported). The MR round accounting is surfaced per
// artifact in /stats.
func (s *Server) MRDiameter(ctx context.Context, name string, tau int, seed uint64) (*MRDiameterResult, error) {
	g, err := s.Graph(name)
	if err != nil {
		return nil, err
	}
	tau = s.resolveTau(tau, g, core.DefaultOracleTau)
	key := Key{Graph: name, Kind: "mrdiameter", Tau: tau, Seed: seed, Algorithm: "cluster"}
	v, err := s.artifact(ctx, key, func(bctx context.Context) (any, error) {
		g, err := s.Graph(key.Graph)
		if err != nil {
			return nil, err
		}
		cl, err := core.ClusterContext(bctx, g, key.Tau, s.buildOptions(bctx, seed))
		if err != nil {
			return nil, err
		}
		_, wq, err := quotient.BuildWeighted(g, cl.Owner, cl.Dist, cl.NumClusters())
		if err != nil {
			return nil, err
		}
		if wq.NumNodes() > maxMRQuotient {
			return nil, badRequest("quotient has %d clusters, above the %d-cluster cap for MR repeated squaring (decrease tau, or use /diameter)",
				wq.NumNodes(), maxMRQuotient)
		}
		eng := mr.NewEngine(mr.Config{Shards: s.cfg.BuildWorkers})
		eng.SetContext(bctx)
		eng.SetObserver(s.mrObserver(bctx))
		defer eng.Close()
		diam, err := eng.DiameterByRepeatedSquaring(wq)
		if err != nil {
			return nil, err
		}
		return &MRDiameterResult{
			QuotientDiameter: diam,
			Upper:            2*int64(cl.MaxRadius()) + diam,
			RMax:             cl.MaxRadius(),
			NumClusters:      cl.NumClusters(),
			Rounds:           eng.Rounds(),
			Shards:           eng.Shards(),
			PairsShuffled:    eng.TotalShuffled(),
			MaxReducerInput:  eng.MaxReducerInput(),
			RoundStats:       eng.RoundStats(),
			Stats:            cl.Stats,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*MRDiameterResult), nil
}
