package serve

// Tests for the /metrics Prometheus exposition: every line well-formed,
// HELP/TYPE present for every family, histogram buckets cumulative and
// +Inf-terminated, and counters monotone across scrapes — including
// scrapes racing live builds (the CI -race job runs these).

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/graph"
)

// promSample is one parsed sample line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// promScrape is one parsed exposition: HELP/TYPE per family plus samples.
type promScrape struct {
	help    map[string]string
	typ     map[string]string
	samples []promSample
}

// seriesID identifies a sample across scrapes: name plus sorted labels.
func (s promSample) seriesID() string {
	keys := make([]string, 0, len(s.labels))
	for k := range s.labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	id := s.name
	for _, k := range keys {
		id += "," + k + "=" + s.labels[k]
	}
	return id
}

// baseFamily maps a histogram sample name to its family name.
func baseFamily(name string, typ map[string]string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok && typ[base] == "histogram" {
			return base
		}
	}
	return name
}

// parseExposition parses (and structurally validates) a text exposition.
func parseExposition(t *testing.T, body string) promScrape {
	t.Helper()
	sc := promScrape{help: map[string]string{}, typ: map[string]string{}}
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		lineNo := ln + 1
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				t.Fatalf("line %d: malformed HELP %q", lineNo, line)
			}
			sc.help[name] = help
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, kind, ok := strings.Cut(rest, " ")
			if !ok || (kind != "counter" && kind != "gauge" && kind != "histogram") {
				t.Fatalf("line %d: malformed TYPE %q", lineNo, line)
			}
			if _, dup := sc.typ[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %q", lineNo, name)
			}
			sc.typ[name] = kind
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unexpected comment %q", lineNo, line)
		default:
			sc.samples = append(sc.samples, parseSampleLine(t, lineNo, line, sc.typ, sc.help))
		}
	}
	return sc
}

func parseSampleLine(t *testing.T, lineNo int, line string, typ, help map[string]string) promSample {
	t.Helper()
	s := promSample{labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.name = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			t.Fatalf("line %d: unterminated label set %q", lineNo, line)
		}
		for _, pair := range splitLabelPairs(rest[i+1 : end]) {
			k, v, ok := strings.Cut(pair, "=")
			if !ok || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				t.Fatalf("line %d: malformed label pair %q in %q", lineNo, pair, line)
			}
			s.labels[k] = v[1 : len(v)-1]
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		var ok bool
		s.name, rest, ok = strings.Cut(rest, " ")
		if !ok {
			t.Fatalf("line %d: sample without value %q", lineNo, line)
		}
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		t.Fatalf("line %d: bad sample value in %q: %v", lineNo, line, err)
	}
	s.value = v
	fam := baseFamily(s.name, typ)
	if _, ok := typ[fam]; !ok {
		t.Fatalf("line %d: sample %q has no preceding TYPE for family %q", lineNo, line, fam)
	}
	if _, ok := help[fam]; !ok {
		t.Fatalf("line %d: sample %q has no preceding HELP for family %q", lineNo, line, fam)
	}
	return s
}

// splitLabelPairs splits k1="v1",k2="v2" respecting quoted values (the
// exposition escapes inner quotes as \").
func splitLabelPairs(s string) []string {
	var (
		pairs    []string
		start    int
		inQuotes bool
	)
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '\\' && inQuotes:
			i++
		case s[i] == '"':
			inQuotes = !inQuotes
		case s[i] == ',' && !inQuotes:
			pairs = append(pairs, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		pairs = append(pairs, s[start:])
	}
	return pairs
}

// checkHistograms verifies every histogram family: per series, buckets are
// cumulative (nondecreasing in le order), terminated by le="+Inf", and the
// +Inf bucket equals _count.
func checkHistograms(t *testing.T, sc promScrape) {
	t.Helper()
	type hseries struct {
		buckets []promSample // in exposition order, which is le-ascending
		count   float64
		hasInf  bool
		infVal  float64
		hasCnt  bool
	}
	series := map[string]*hseries{}
	keyOf := func(s promSample) string {
		cp := promSample{name: baseFamily(s.name, sc.typ), labels: map[string]string{}}
		for k, v := range s.labels {
			if k != "le" {
				cp.labels[k] = v
			}
		}
		return cp.seriesID()
	}
	for _, s := range sc.samples {
		fam := baseFamily(s.name, sc.typ)
		if sc.typ[fam] != "histogram" {
			continue
		}
		hs := series[keyOf(s)]
		if hs == nil {
			hs = &hseries{}
			series[keyOf(s)] = hs
		}
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			le, ok := s.labels["le"]
			if !ok {
				t.Fatalf("histogram bucket %v without le label", s)
			}
			if le == "+Inf" {
				hs.hasInf, hs.infVal = true, s.value
			} else if _, err := strconv.ParseFloat(le, 64); err != nil {
				t.Fatalf("histogram bucket le=%q is not a float", le)
			}
			hs.buckets = append(hs.buckets, s)
		case strings.HasSuffix(s.name, "_count"):
			hs.hasCnt, hs.count = true, s.value
		}
	}
	if len(series) == 0 {
		t.Fatal("exposition contains no histogram series")
	}
	for id, hs := range series {
		if !hs.hasInf {
			t.Fatalf("histogram %s has no le=\"+Inf\" bucket", id)
		}
		if !hs.hasCnt {
			t.Fatalf("histogram %s has no _count sample", id)
		}
		if hs.infVal != hs.count {
			t.Fatalf("histogram %s: +Inf bucket %v != _count %v", id, hs.infVal, hs.count)
		}
		for i := 1; i < len(hs.buckets); i++ {
			if hs.buckets[i].value < hs.buckets[i-1].value {
				t.Fatalf("histogram %s: bucket counts not cumulative at index %d (%v < %v)",
					id, i, hs.buckets[i].value, hs.buckets[i-1].value)
			}
		}
		if hs.buckets[len(hs.buckets)-1].labels["le"] != "+Inf" {
			t.Fatalf("histogram %s: last bucket is not +Inf", id)
		}
	}
}

func scrapeMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// requiredFamilies is the metric surface the README documents; the smoke
// test in CI greps for the same names.
var requiredFamilies = []string{
	"reprod_http_requests_total",
	"reprod_http_request_duration_seconds",
	"reprod_http_in_flight_requests",
	"reprod_http_errors_total",
	"reprod_requests_rejected_total",
	"reprod_request_slots_in_use",
	"reprod_point_query_duration_seconds",
	"reprod_batch_pairs_total",
	"reprod_batch_size_pairs",
	"reprod_artifact_cache_hits_total",
	"reprod_artifact_cache_misses_total",
	"reprod_artifact_cache_entries",
	"reprod_artifact_cache_capacity",
	"reprod_artifact_cache_evictions_total",
	"reprod_snapshot_installs_total",
	"reprod_builds_total",
	"reprod_builds_cancelled_total",
	"reprod_builds_timed_out_total",
	"reprod_builds_in_flight",
	"reprod_build_pool_occupancy",
	"reprod_build_pool_size",
	"reprod_build_duration_seconds",
	"reprod_graphs",
	"reprod_engine_bsp_rounds_total",
	"reprod_engine_pull_rounds_total",
	"reprod_engine_arcs_scanned_total",
	"reprod_engine_relaxations_total",
	"reprod_engine_buckets_total",
	"reprod_mr_rounds_total",
	"reprod_mr_pairs_shuffled_total",
	"reprod_requests_shed_total",
	"reprod_requests_client_gone_total",
	"reprod_fast_lane_queue_depth",
	"reprod_slow_lane_pending_builds",
	"reprod_breaker_trips_total",
	"reprod_breaker_rejected_total",
	"reprod_breaker_probes_total",
	"reprod_breaker_open_keys",
}

func TestMetricsExpositionWellFormed(t *testing.T) {
	g := graph.Mesh(30, 30)
	_, ts := newTestServer(t, "mesh", g)

	// Drive every metric family: a build + point queries (hit and miss),
	// a 400, a 404, an MR build, /stats and /builds themselves.
	getJSON(t, ts.URL+"/distance?graph=mesh&tau=2&seed=1&u=0&v=899", nil)
	getJSON(t, ts.URL+"/distance?graph=mesh&tau=2&seed=1&u=1&v=2", nil)
	getJSON(t, ts.URL+"/mr-diameter?graph=mesh&tau=2&seed=1", nil)
	// A batch request, so the batch pair counter and size histogram carry
	// samples (not just TYPE lines) in the scrape below.
	resp, err := http.Post(ts.URL+"/distance-batch?graph=mesh&tau=2&seed=1",
		"application/json", strings.NewReader(`{"pairs":[[0,1],[2,3],[4,4]]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/distance-batch status %d", resp.StatusCode)
	}
	getJSON(t, ts.URL+"/distance?graph=mesh&u=bad&v=2", nil)
	getJSON(t, ts.URL+"/distance?graph=nope&u=0&v=1", nil)
	getJSON(t, ts.URL+"/stats", nil)
	getJSON(t, ts.URL+"/builds", nil)

	first := parseExposition(t, scrapeMetrics(t, ts.URL))
	checkHistograms(t, first)
	for _, fam := range requiredFamilies {
		if _, ok := first.typ[fam]; !ok {
			t.Errorf("required family %s missing from exposition", fam)
		}
	}

	// Second scrape after more traffic: every counter sample present in
	// the first scrape must be present and not smaller.
	getJSON(t, ts.URL+"/distance?graph=mesh&tau=2&seed=1&u=3&v=4", nil)
	getJSON(t, ts.URL+"/diameter?graph=mesh&tau=2&seed=1", nil)
	second := parseExposition(t, scrapeMetrics(t, ts.URL))
	checkHistograms(t, second)
	checkCountersMonotone(t, first, second)
}

// checkCountersMonotone asserts no counter (or histogram bucket/sum/count)
// series went backwards between two scrapes.
func checkCountersMonotone(t *testing.T, a, b promScrape) {
	t.Helper()
	bVals := map[string]float64{}
	for _, s := range b.samples {
		bVals[s.seriesID()] = s.value
	}
	for _, s := range a.samples {
		fam := baseFamily(s.name, a.typ)
		if a.typ[fam] != "counter" && a.typ[fam] != "histogram" {
			continue
		}
		after, ok := bVals[s.seriesID()]
		if !ok {
			t.Errorf("counter series %s disappeared between scrapes", s.seriesID())
			continue
		}
		if after < s.value {
			t.Errorf("counter series %s went backwards: %v -> %v", s.seriesID(), s.value, after)
		}
	}
}

// TestMetricsScrapeDuringConcurrentBuilds races scrapes against live
// builds and queries; under -race this doubles as the data-race proof for
// the whole observability write path (observer callbacks included).
func TestMetricsScrapeDuringConcurrentBuilds(t *testing.T) {
	g := graph.Mesh(40, 40)
	_, ts := newTestServer(t, "mesh", g)

	var wg sync.WaitGroup
	errc := make(chan error, 16)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				// Distinct seeds mint distinct keys, so builds keep starting
				// while the scraper below reads the counters they feed.
				url := fmt.Sprintf("%s/distance?graph=mesh&tau=2&seed=%d&u=%d&v=%d",
					ts.URL, seed*10+i, seed, i)
				resp, err := http.Get(url)
				if err != nil {
					errc <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("%s: status %d", url, resp.StatusCode)
					return
				}
			}
		}(c)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	var prev promScrape
	for scrapes := 0; ; scrapes++ {
		sc := parseExposition(t, scrapeMetrics(t, ts.URL))
		checkHistograms(t, sc)
		if scrapes > 0 {
			checkCountersMonotone(t, prev, sc)
		}
		prev = sc
		select {
		case err := <-errc:
			t.Fatal(err)
		case <-done:
			select {
			case err := <-errc:
				t.Fatal(err)
			default:
			}
			return
		default:
		}
	}
}
