package serve

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bsp"
	"repro/internal/mr"
)

// Build lifecycle states, in the order a build moves through them. Every
// build ends in exactly one of the four terminal states.
const (
	BuildQueued    = "queued"    // waiting for a build-pool slot
	BuildRunning   = "running"   // engines executing
	BuildDone      = "done"      // artifact published
	BuildCancelled = "cancelled" // last waiter left (or the server drained)
	BuildFailed    = "failed"    // build returned a non-cancellation error
	BuildPanicked  = "panicked"  // build panicked; recovered into a failed entry
	BuildTimedOut  = "timed_out" // exceeded the server-side Config.BuildTimeout
)

// recentBuilds bounds the ring of completed build traces /builds retains.
const recentBuilds = 64

// buildTrace accumulates the structured lifecycle of one detached build:
// the enqueue → slot-acquired → engine-rounds → terminal-state timeline,
// the waiter high-water mark, and the live engine counters fed by the
// build's observers. The counter fields are atomics because the oracle's
// APSP fan-out runs one observing engine per worker goroutine; the
// timeline fields are guarded by mu and change a handful of times per
// build.
type buildTrace struct {
	id  int64
	key Key

	// Engine progress, accumulated concurrently by observer callbacks.
	rounds      atomic.Int64
	pullRounds  atomic.Int64
	arcs        atomic.Int64
	relaxations atomic.Int64
	buckets     atomic.Int64
	maxFrontier atomic.Int64
	mrRounds    atomic.Int64
	mrPairs     atomic.Int64

	// Waiter bookkeeping, written under Server.mu alongside entry.waiters.
	waiters    atomic.Int64
	waiterHigh atomic.Int64

	mu         sync.Mutex
	state      string
	enqueuedAt time.Time
	slotAt     time.Time // zero until the build-pool slot is acquired
	finishedAt time.Time // zero until terminal
	errMsg     string
	panicked   bool
	timedOut   bool
}

func newBuildTrace(id int64, key Key) *buildTrace {
	return &buildTrace{id: id, key: key, state: BuildQueued, enqueuedAt: time.Now()}
}

// observeBSP folds one engine progress delta in; it is the bsp.Observer
// target for every engine the build creates.
func (t *buildTrace) observeBSP(d bsp.Stats) {
	t.rounds.Add(int64(d.Rounds))
	t.pullRounds.Add(int64(d.PullRounds))
	t.arcs.Add(d.Messages)
	t.relaxations.Add(d.Relaxations)
	t.buckets.Add(int64(d.Buckets))
	maxStore(&t.maxFrontier, int64(d.MaxFrontier))
}

// observeMR folds one committed MR round in.
func (t *buildTrace) observeMR(rs mr.RoundStat) {
	t.mrRounds.Add(1)
	t.mrPairs.Add(rs.PairsIn)
}

// setWaiters records the current waiter count (and its high-water mark).
// Called wherever entry.waiters changes, under Server.mu.
func (t *buildTrace) setWaiters(n int) {
	t.waiters.Store(int64(n))
	maxStore(&t.waiterHigh, int64(n))
}

func maxStore(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// markRunning stamps the build-pool slot acquisition.
func (t *buildTrace) markRunning() {
	t.mu.Lock()
	t.state = BuildRunning
	t.slotAt = time.Now()
	t.mu.Unlock()
}

// markPanicked flags the build as recovered-from-panic, so the terminal
// state distinguishes it from an ordinary failure.
func (t *buildTrace) markPanicked() {
	t.mu.Lock()
	t.panicked = true
	t.mu.Unlock()
}

func (t *buildTrace) didPanic() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.panicked
}

// markTimedOut flags the build as killed by the server-side build
// deadline, so the terminal state distinguishes it from a waiter-driven
// cancellation.
func (t *buildTrace) markTimedOut() {
	t.mu.Lock()
	t.timedOut = true
	t.mu.Unlock()
}

func (t *buildTrace) didTimeout() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.timedOut
}

// finish stamps the terminal state. errMsg is empty for BuildDone.
func (t *buildTrace) finish(state, errMsg string) {
	t.mu.Lock()
	t.state = state
	t.errMsg = errMsg
	t.finishedAt = time.Now()
	t.mu.Unlock()
}

// BuildTraceInfo is the JSON snapshot of one build's trace, served by
// /builds and attached to the artifact's cost line in /stats. For an
// in-flight build RunMillis is the time spent so far and the engine
// counters are live — two scrapes of the same running build see them grow.
type BuildTraceInfo struct {
	ID    int64  `json:"id"`
	Key   string `json:"key"`
	State string `json:"state"`

	EnqueuedAt     time.Time `json:"enqueued_at"`
	SlotWaitMillis float64   `json:"slot_wait_millis"` // enqueue → build-pool slot
	RunMillis      float64   `json:"run_millis"`       // slot → now (running) or terminal state

	Waiters         int64 `json:"waiters"`
	WaiterHighWater int64 `json:"waiter_high_water"`

	BSPRounds      int64 `json:"bsp_rounds"`
	BSPPullRounds  int64 `json:"bsp_pull_rounds"`
	ArcsScanned    int64 `json:"arcs_scanned"`
	Relaxations    int64 `json:"relaxations"`
	BucketsSettled int64 `json:"buckets_settled"`
	MaxFrontier    int64 `json:"max_frontier"`

	MRRounds        int64 `json:"mr_rounds,omitempty"`
	MRPairsShuffled int64 `json:"mr_pairs_shuffled,omitempty"`

	Error string `json:"error,omitempty"`
}

// info snapshots the trace.
func (t *buildTrace) info() BuildTraceInfo {
	t.mu.Lock()
	inf := BuildTraceInfo{
		ID:         t.id,
		Key:        t.key.String(),
		State:      t.state,
		EnqueuedAt: t.enqueuedAt,
		Error:      t.errMsg,
	}
	switch {
	case !t.slotAt.IsZero():
		inf.SlotWaitMillis = millisBetween(t.enqueuedAt, t.slotAt)
		end := t.finishedAt
		if end.IsZero() {
			end = time.Now()
		}
		inf.RunMillis = millisBetween(t.slotAt, end)
	case !t.finishedAt.IsZero():
		// Terminal without ever acquiring a slot (cancelled while queued):
		// the whole lifetime was slot wait.
		inf.SlotWaitMillis = millisBetween(t.enqueuedAt, t.finishedAt)
	default:
		inf.SlotWaitMillis = millisBetween(t.enqueuedAt, time.Now())
	}
	t.mu.Unlock()
	inf.Waiters = t.waiters.Load()
	inf.WaiterHighWater = t.waiterHigh.Load()
	inf.BSPRounds = t.rounds.Load()
	inf.BSPPullRounds = t.pullRounds.Load()
	inf.ArcsScanned = t.arcs.Load()
	inf.Relaxations = t.relaxations.Load()
	inf.BucketsSettled = t.buckets.Load()
	inf.MaxFrontier = t.maxFrontier.Load()
	inf.MRRounds = t.mrRounds.Load()
	inf.MRPairsShuffled = t.mrPairs.Load()
	return inf
}

func millisBetween(a, b time.Time) float64 {
	return float64(b.Sub(a).Nanoseconds()) / 1e6
}

// startTrace mints a trace for a new detached build and registers it as
// in-flight.
func (s *Server) startTrace(key Key) *buildTrace {
	tr := newBuildTrace(s.nextBuildID.Add(1), key)
	s.traceMu.Lock()
	s.building[tr.id] = tr
	s.traceMu.Unlock()
	return tr
}

// endTrace moves a terminal trace from the in-flight set to the recent
// ring (newest first, bounded at recentBuilds).
func (s *Server) endTrace(tr *buildTrace) {
	inf := tr.info()
	s.traceMu.Lock()
	delete(s.building, tr.id)
	s.recent = append(s.recent, BuildTraceInfo{})
	copy(s.recent[1:], s.recent)
	s.recent[0] = inf
	if len(s.recent) > recentBuilds {
		s.recent = s.recent[:recentBuilds]
	}
	s.traceMu.Unlock()
}

// buildingCount returns the number of in-flight builds (queued or
// running), feeding the reprod_builds_in_flight gauge.
func (s *Server) buildingCount() int {
	s.traceMu.Lock()
	n := len(s.building)
	s.traceMu.Unlock()
	return n
}

// BuildTracesResponse is the JSON shape of /builds: every in-flight build
// (queued or running, engine counters live) plus the most recent
// completed ones, newest first.
type BuildTracesResponse struct {
	InFlight []BuildTraceInfo `json:"in_flight"`
	Recent   []BuildTraceInfo `json:"recent"`
}

// BuildTraces snapshots the build tracing state behind /builds.
func (s *Server) BuildTraces() BuildTracesResponse {
	s.traceMu.Lock()
	inFlight := make([]BuildTraceInfo, 0, len(s.building))
	for _, tr := range s.building {
		inFlight = append(inFlight, tr.info())
	}
	recent := append([]BuildTraceInfo(nil), s.recent...)
	s.traceMu.Unlock()
	sort.Slice(inFlight, func(i, j int) bool { return inFlight[i].ID < inFlight[j].ID })
	return BuildTracesResponse{InFlight: inFlight, Recent: recent}
}

// traceCtxKey carries the buildTrace on the detached build's context, so
// the build closures reach it through the ctx they already receive — the
// artifact build signature stays observer-agnostic.
type traceCtxKey struct{}

func withTrace(ctx context.Context, tr *buildTrace) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tr)
}

func traceFrom(ctx context.Context) *buildTrace {
	tr, _ := ctx.Value(traceCtxKey{}).(*buildTrace)
	return tr
}

// buildObserver returns the bsp.Observer installed on every engine of a
// build: it feeds both the server-wide engine counters (/metrics) and the
// build's own trace (/builds). Safe for concurrent use, as the Observer
// contract requires.
func (s *Server) buildObserver(tr *buildTrace) bsp.Observer {
	m := s.met
	return func(d bsp.Stats) {
		m.engRounds.Add(int64(d.Rounds))
		m.engPullRounds.Add(int64(d.PullRounds))
		m.engArcs.Add(d.Messages)
		m.engRelaxations.Add(d.Relaxations)
		m.engBuckets.Add(int64(d.Buckets))
		if tr != nil {
			tr.observeBSP(d)
		}
	}
}

// mrObserver is the MR counterpart, installed on the engine behind
// /mr-diameter builds.
func (s *Server) mrObserver(ctx context.Context) func(mr.RoundStat) {
	tr := traceFrom(ctx)
	m := s.met
	return func(rs mr.RoundStat) {
		m.mrRounds.Inc()
		m.mrPairs.Add(rs.PairsIn)
		if tr != nil {
			tr.observeMR(rs)
		}
	}
}
