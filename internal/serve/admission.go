package serve

// admission.go is the two-lane admission control the cost model calls
// for: the paper's decomposition makes queries microsecond table lookups
// and builds multi-second parallel phases, so one shared worker pool is
// exactly wrong — a cached /distance queueing behind a cold oracle build
// inverts the whole point of the oracle. Admission therefore splits:
//
//   - The FAST lane admits a request's own compute: parameter parsing,
//     cache lookups, point and batch queries against completed
//     artifacts, response encoding. Its width is Config.Workers and its
//     wait queue is small and bounded — fast work is microseconds, so a
//     deep queue only ever means the server is past saturation, and the
//     request is shed with 503 + a short Retry-After instead of being
//     buried.
//   - The SLOW lane admits cold builds. Builds already execute under the
//     build pool (Config.Workers slots); the lane bounds how many builds
//     may be PENDING (queued + running) before new ones are shed with
//     503 + a Retry-After computed from live pool occupancy and the
//     per-kind build-duration histograms — an honest estimate of when a
//     retry will find a free slot.
//
// The invariant joining the two: a request that must wait on a build
// PARKS its fast-lane slot (releases it, re-acquires it when the build
// completes), so however many requests are blocked on cold builds, warm
// traffic keeps flowing through the fast lane — even at Workers=1.

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"sync/atomic"
	"time"
)

// Lane names, used as the metric label on reprod_requests_shed_total.
const (
	laneFast = "fast"
	laneSlow = "slow"
)

// ShedError is the load-shedding rejection: the lane's bounded wait
// queue is full, so the request is refused immediately instead of
// queueing past saturation. The HTTP layer maps it to 503 with a
// Retry-After header carrying the estimate.
type ShedError struct {
	Lane       string
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("serve: %s lane saturated, retry in %s", e.Lane, e.RetryAfter.Round(time.Second))
}

// retryAfterHint lets the HTTP error path surface one Retry-After header
// for every shed-like rejection (lane shed, open breaker) without
// enumerating the types.
type retryAfterHint interface{ retryAfterHint() time.Duration }

func (e *ShedError) retryAfterHint() time.Duration { return e.RetryAfter }

// retryAfterOf extracts the Retry-After hint from an error chain, or 0.
func retryAfterOf(err error) time.Duration {
	for e := err; e != nil; {
		if h, ok := e.(retryAfterHint); ok {
			return h.retryAfterHint()
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return 0
		}
		e = u.Unwrap()
	}
	return 0
}

// retryAfterSeconds renders a hint as the integer seconds form of the
// Retry-After header, always at least 1 — a zero would invite an
// immediate retry into the same saturated lane.
func retryAfterSeconds(d time.Duration) string {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// lane is a bounded admission lane: width concurrent holders plus a
// bounded wait queue. Acquire beyond width+queue sheds instead of
// queueing, so the goroutine pile a saturated server accumulates is
// capped by construction.
type lane struct {
	name     string
	slots    chan struct{}
	queued   atomic.Int64 // requests blocked waiting for a slot
	maxQueue int
}

func newLane(name string, width, maxQueue int) *lane {
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &lane{name: name, slots: make(chan struct{}, width), maxQueue: maxQueue}
}

// acquire takes a slot, queueing (bounded) when none is free. It returns
// a *ShedError when the queue is full and ctx.Err() when the caller
// disconnects while queued.
func (l *lane) acquire(ctx context.Context) error {
	select {
	case l.slots <- struct{}{}:
		return nil
	default:
	}
	if l.queued.Add(1) > int64(l.maxQueue) {
		l.queued.Add(-1)
		return &ShedError{Lane: l.name, RetryAfter: time.Second}
	}
	defer l.queued.Add(-1)
	select {
	case l.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// reacquire re-admits a request that parked its slot to wait on a build.
// Already-admitted work is never shed — it only waits for a free slot or
// its own cancellation. The wait is bounded in practice: fast slots are
// only ever held for microsecond compute, never across build waits.
func (l *lane) reacquire(ctx context.Context) error {
	select {
	case l.slots <- struct{}{}:
		return nil
	default:
	}
	l.queued.Add(1)
	defer l.queued.Add(-1)
	select {
	case l.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (l *lane) release() { <-l.slots }

// queueDepth reports how many requests are blocked waiting for a slot,
// feeding the reprod_fast_lane_queue_depth gauge.
func (l *lane) queueDepth() int64 { return l.queued.Load() }

// laneSlot is one request's handle on its fast-lane slot. It is owned by
// the request goroutine (never shared), which makes release idempotent
// and lets the artifact cache park the slot mid-request: a request
// blocked on a build releases its slot for the duration of the wait and
// re-acquires it to run the (microsecond) query after. wrapRaw's
// deferred release then frees exactly what is held, whether the request
// completed normally, parked and resumed, or died parked.
type laneSlot struct {
	l    *lane
	held bool
}

// acquire admits the request, shedding when the lane is saturated.
func (s *laneSlot) acquire(ctx context.Context) error {
	if err := s.l.acquire(ctx); err != nil {
		return err
	}
	s.held = true
	return nil
}

// park releases the slot while the request blocks on a build.
func (s *laneSlot) park() {
	if s.held {
		s.l.release()
		s.held = false
	}
}

// unpark re-acquires the slot after the build completes. On failure
// (request cancelled) the slot stays unheld, so release stays balanced.
func (s *laneSlot) unpark(ctx context.Context) error {
	if s.held {
		return nil
	}
	if err := s.l.reacquire(ctx); err != nil {
		return err
	}
	s.held = true
	return nil
}

// release frees the slot if held; safe to call in every terminal path.
func (s *laneSlot) release() {
	if s.held {
		s.l.release()
		s.held = false
	}
}

// admitBuild is the slow lane's gate, called under s.mu right before a
// new detached build would be created. The lane is saturated when every
// build-pool slot is occupied and the wait queue (pending builds beyond
// the pool) is at its bound; a new build then sheds with an honest
// retry estimate instead of joining a queue the client would time out
// of anyway. Joins on in-flight builds are never shed — they add no
// work.
func (s *Server) admitBuild(kind string) error {
	pending := s.slowPending.Load()
	if pending >= int64(cap(s.buildSem)+s.cfg.SlowLaneQueue) {
		s.met.shed.With(laneSlow).Inc()
		return &ShedError{Lane: laneSlow, RetryAfter: s.buildRetryAfter(kind, pending)}
	}
	s.slowPending.Add(1)
	return nil
}

// buildRetryAfter estimates when a shed build request will find a free
// slot: the pending builds drain pool-wide, so the wait is roughly
// ceil(pending+1 / pool) build durations. The duration estimate is the
// median of the per-kind build-duration histogram — live data from this
// process on this graph — falling back to one second before the first
// build of a kind completes. Clamped to [1s, 5m]: below a second the
// header is useless, above five minutes the client should re-plan, not
// camp.
func (s *Server) buildRetryAfter(kind string, pending int64) time.Duration {
	p50 := s.met.buildLatency.With(kind).Quantile(0.5)
	if math.IsNaN(p50) || p50 <= 0 {
		p50 = 1
	}
	pool := int64(cap(s.buildSem))
	waves := (pending + pool) / pool // ceil((pending+1)/pool)
	d := time.Duration(float64(waves) * p50 * float64(time.Second))
	if d < time.Second {
		d = time.Second
	}
	if d > 5*time.Minute {
		d = 5 * time.Minute
	}
	return d
}
