package serve

// Tests for POST /distance-batch: every encoding answers exactly what the
// point endpoint answers pair by pair, ids are validated before any build
// (the PR 4 rule, extended to batches), and the warm path's
// zero-allocation guarantee is pinned by AllocsPerRun regression tests
// that run under the CI -race job.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// encodePairsFrame builds the binary request frame the endpoint documents:
// "RPB1" | count u32 | count × (u i32, v i32), little-endian.
func encodePairsFrame(pairs [][2]graph.NodeID) []byte {
	out := make([]byte, 8+8*len(pairs))
	copy(out, "RPB1")
	binary.LittleEndian.PutUint32(out[4:8], uint32(len(pairs)))
	for i, p := range pairs {
		binary.LittleEndian.PutUint32(out[8+8*i:], uint32(p[0]))
		binary.LittleEndian.PutUint32(out[8+8*i+4:], uint32(p[1]))
	}
	return out
}

// decodeDistsFrame parses the binary response frame: "RPD1" | count u32 |
// count × dist i64.
func decodeDistsFrame(t *testing.T, body []byte) []int64 {
	t.Helper()
	if len(body) < 8 || string(body[:4]) != "RPD1" {
		t.Fatalf("bad response frame header %q", body[:min(len(body), 8)])
	}
	count := int(binary.LittleEndian.Uint32(body[4:8]))
	if len(body) != 8+8*count {
		t.Fatalf("response frame length %d for %d dists", len(body), count)
	}
	dists := make([]int64, count)
	for i := range dists {
		dists[i] = int64(binary.LittleEndian.Uint64(body[8+8*i:]))
	}
	return dists
}

func postBatch(t *testing.T, url, contentType, accept string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// disconnectedGraph is a mesh plus a separate path component, so batches
// contain unreachable pairs.
func disconnectedGraph() *graph.Graph {
	mesh := graph.Mesh(20, 20)
	xadj, adj := mesh.CSR()
	b := graph.NewBuilder(mesh.NumNodes() + 10)
	for u := 0; u < mesh.NumNodes(); u++ {
		for _, v := range adj[xadj[u]:xadj[u+1]] {
			if graph.NodeID(u) < v {
				b.AddEdge(graph.NodeID(u), v)
			}
		}
	}
	for i := mesh.NumNodes(); i < mesh.NumNodes()+9; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	return b.Build()
}

func TestDistanceBatchMatchesPointQueries(t *testing.T) {
	g := disconnectedGraph()
	_, ts := newTestServer(t, "mesh", g)
	n := g.NumNodes()
	r := rng.New(41)
	pairs := make([][2]graph.NodeID, 0, 300)
	for i := 0; i < 297; i++ {
		pairs = append(pairs, [2]graph.NodeID{graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n))})
	}
	pairs = append(pairs,
		[2]graph.NodeID{7, 7},                                     // identity
		[2]graph.NodeID{0, graph.NodeID(n - 1)},                   // cross-component
		[2]graph.NodeID{graph.NodeID(n - 5), graph.NodeID(n - 1)}, // path component
	)

	// Point-query reference, including the -1 convention for unreachable.
	want := make([]int64, len(pairs))
	for i, p := range pairs {
		var dr DistanceResponse
		if code := getJSON(t, fmt.Sprintf("%s/distance?graph=mesh&tau=2&seed=1&u=%d&v=%d", ts.URL, p[0], p[1]), &dr); code != http.StatusOK {
			t.Fatalf("point query %v: status %d", p, code)
		}
		want[i] = dr.Distance
	}

	// JSON encoding.
	jbody, err := json.Marshal(map[string]any{"pairs": pairs})
	if err != nil {
		t.Fatal(err)
	}
	resp, raw := postBatch(t, ts.URL+"/distance-batch?graph=mesh&tau=2&seed=1", "application/json", "", jbody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("JSON batch: status %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("JSON batch: content type %q", ct)
	}
	var jresp struct {
		Graph     string  `json:"graph"`
		Pairs     int     `json:"pairs"`
		Distances []int64 `json:"distances"`
	}
	if err := json.Unmarshal(raw, &jresp); err != nil {
		t.Fatalf("JSON batch response %q: %v", raw, err)
	}
	if jresp.Graph != "mesh" || jresp.Pairs != len(pairs) || len(jresp.Distances) != len(pairs) {
		t.Fatalf("JSON batch envelope: %+v", jresp)
	}
	for i := range pairs {
		if jresp.Distances[i] != want[i] {
			t.Fatalf("JSON batch pair %d (%v): got %d want %d", i, pairs[i], jresp.Distances[i], want[i])
		}
	}

	// Binary encoding of the same batch.
	resp, raw = postBatch(t, ts.URL+"/distance-batch?graph=mesh&tau=2&seed=1", "application/x-reprod-pairs", "", encodePairsFrame(pairs))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary batch: status %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-reprod-dists" {
		t.Fatalf("binary batch: content type %q", ct)
	}
	dists := decodeDistsFrame(t, raw)
	if len(dists) != len(pairs) {
		t.Fatalf("binary batch: %d dists for %d pairs", len(dists), len(pairs))
	}
	for i := range pairs {
		if dists[i] != want[i] {
			t.Fatalf("binary batch pair %d (%v): got %d want %d", i, pairs[i], dists[i], want[i])
		}
	}
}

func TestDistanceBatchNDJSONStreaming(t *testing.T) {
	g := graph.Mesh(20, 20)
	_, ts := newTestServer(t, "mesh", g)
	r := rng.New(43)
	n := g.NumNodes()
	// Enough rows to cross the flush threshold several times, so the test
	// exercises the chunked streaming, not just the final flush.
	pairs := make([][2]graph.NodeID, 4000)
	for i := range pairs {
		pairs[i] = [2]graph.NodeID{graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n))}
	}
	resp, raw := postBatch(t, ts.URL+"/distance-batch?graph=mesh&tau=2&seed=1",
		"application/x-reprod-pairs", "application/x-ndjson", encodePairsFrame(pairs))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("NDJSON batch: status %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("NDJSON batch: content type %q", ct)
	}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<16), 1<<16)
	i := 0
	for sc.Scan() {
		var row struct {
			U, V     graph.NodeID
			Distance int64
		}
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("row %d %q: %v", i, sc.Text(), err)
		}
		if i >= len(pairs) {
			t.Fatalf("more rows than pairs (%d)", i)
		}
		if row.U != pairs[i][0] || row.V != pairs[i][1] {
			t.Fatalf("row %d echoes (%d,%d), want %v", i, row.U, row.V, pairs[i])
		}
		i++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if i != len(pairs) {
		t.Fatalf("streamed %d rows for %d pairs", i, len(pairs))
	}
}

// TestDistanceBatchValidation covers the error surface, including the
// reject-before-build rule: a batch with any invalid id must 400 without
// building (or churning a cache slot on) an artifact.
func TestDistanceBatchValidation(t *testing.T) {
	g := graph.Mesh(10, 10)
	s, ts := newTestServer(t, "mesh", g)
	url := ts.URL + "/distance-batch?graph=mesh&tau=2&seed=1"

	okPairs := [][2]graph.NodeID{{0, 1}}
	cases := []struct {
		name        string
		url         string
		contentType string
		body        []byte
		wantStatus  int
	}{
		{"get method", url, "", nil, http.StatusMethodNotAllowed},
		{"unknown graph", ts.URL + "/distance-batch?graph=nope", "application/json", mustJSON(t, okPairs), http.StatusNotFound},
		{"missing graph", ts.URL + "/distance-batch", "application/json", mustJSON(t, okPairs), http.StatusBadRequest},
		{"unsupported content type", url, "text/csv", []byte("0,1"), http.StatusUnsupportedMediaType},
		{"malformed json", url, "application/json", []byte(`{"pairs":[[0`), http.StatusBadRequest},
		{"empty batch json", url, "application/json", []byte(`{"pairs":[]}`), http.StatusBadRequest},
		{"bad magic", url, "application/x-reprod-pairs", []byte("XXXX\x01\x00\x00\x00\x00\x00\x00\x00\x01\x00\x00\x00"), http.StatusBadRequest},
		{"frame length mismatch", url, "application/x-reprod-pairs", encodePairsFrame(okPairs)[:12], http.StatusBadRequest},
		{"negative id json", url, "application/json", []byte(`{"pairs":[[0,1],[-3,2]]}`), http.StatusBadRequest},
		{"out of range json", url, "application/json", []byte(`{"pairs":[[0,1],[5,100]]}`), http.StatusBadRequest},
		{"out of range binary", url, "application/x-reprod-pairs", encodePairsFrame([][2]graph.NodeID{{0, 1}, {100, 5}}), http.StatusBadRequest},
		{"overflowing count", url, "application/x-reprod-pairs",
			append([]byte("RPB1\xff\xff\xff\xff"), make([]byte, 16)...), http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		var (
			resp *http.Response
			raw  []byte
		)
		if tc.name == "get method" {
			r, err := http.Get(tc.url)
			if err != nil {
				t.Fatal(err)
			}
			raw, _ = io.ReadAll(r.Body)
			r.Body.Close()
			resp = r
		} else {
			resp, raw = postBatch(t, tc.url, tc.contentType, "", tc.body)
		}
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s: status %d (want %d): %s", tc.name, resp.StatusCode, tc.wantStatus, raw)
		}
	}

	// The too-many-pairs rejection, JSON side (just over the cap).
	big := bytes.NewBufferString(`{"pairs":[`)
	for i := 0; i <= MaxBatchPairs; i++ {
		if i > 0 {
			big.WriteByte(',')
		}
		big.WriteString("[0,1]")
	}
	big.WriteString("]}")
	resp, raw := postBatch(t, url, "application/json", "", big.Bytes())
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized JSON batch: status %d: %s", resp.StatusCode, raw[:min(len(raw), 120)])
	}

	// None of the invalid batches above may have started a build: the
	// validation runs before the artifact lookup.
	if st := s.Stats(); st.Builds != 0 || st.CacheMisses != 0 {
		t.Fatalf("invalid batches triggered builds: %+v", st)
	}

	// A valid batch then builds exactly once.
	resp, raw = postBatch(t, url, "application/json", "", mustJSON(t, okPairs))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid batch after errors: status %d: %s", resp.StatusCode, raw)
	}
	if st := s.Stats(); st.Builds != 1 {
		t.Fatalf("valid batch should have built once: %+v", st)
	}
	if st := s.Stats(); st.BatchPairs != int64(len(okPairs)) {
		t.Fatalf("batch pairs counter: %+v", st)
	}
}

func mustJSON(t *testing.T, pairs [][2]graph.NodeID) []byte {
	t.Helper()
	b, err := json.Marshal(map[string]any{"pairs": pairs})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// discardResponseWriter is an allocation-free ResponseWriter: the alloc
// regression tests measure the server, not a recorder's growing buffer.
type discardResponseWriter struct{ h http.Header }

func (w discardResponseWriter) Header() http.Header         { return w.h }
func (w discardResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w discardResponseWriter) WriteHeader(int)             {}

// TestDistanceBatchZeroAllocPerPair pins the tentpole guarantee end to
// end: a warm binary batch request through the full handler stack
// (middleware, worker slot, pooled decode/encode) costs a small constant
// number of allocations — none of them per pair.
func TestDistanceBatchZeroAllocPerPair(t *testing.T) {
	g := graph.Mesh(30, 30)
	s, _ := newTestServer(t, "mesh", g)
	h := s.Handler()
	n := g.NumNodes()
	r := rng.New(47)
	const pairs = 8192
	ps := make([][2]graph.NodeID, pairs)
	for i := range ps {
		ps[i] = [2]graph.NodeID{graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n))}
	}
	frame := encodePairsFrame(ps)
	req := httptest.NewRequest(http.MethodPost, "/distance-batch?graph=mesh&tau=2&seed=1", nil)
	req.Header.Set("Content-Type", "application/x-reprod-pairs")
	w := discardResponseWriter{h: make(http.Header)}
	body := bytes.NewReader(frame)

	// Warm: build the oracle and charge the pools outside the measurement.
	body.Reset(frame)
	req.Body = io.NopCloser(body)
	h.ServeHTTP(w, req)

	allocs := testing.AllocsPerRun(20, func() {
		body.Reset(frame)
		req.Body = io.NopCloser(body)
		h.ServeHTTP(w, req)
	})
	if perPair := allocs / pairs; perPair >= 0.01 {
		t.Fatalf("%.0f allocs per warm batch request (%.3f/pair), want 0/pair", allocs, perPair)
	}
	// The absolute bound keeps the per-request constant honest too: a
	// regression that adds per-pair work shows up orders of magnitude
	// above this.
	if allocs > 80 {
		t.Fatalf("%.0f allocs per warm batch request, want a small constant", allocs)
	}
}

// BenchmarkDistanceBatch reports the batch path's pairs/sec and B/pair
// through the full handler stack (no network), the number BENCH_10.json
// tracks over HTTP.
func BenchmarkDistanceBatch(b *testing.B) {
	g := graph.RoadLike(60, 60, 0.4, 17)
	s := New(Config{Workers: 8})
	if err := s.RegisterGraph("road", g); err != nil {
		b.Fatal(err)
	}
	h := s.Handler()
	n := g.NumNodes()
	r := rng.New(53)
	for _, size := range []int{64, 4096, 65536} {
		b.Run(fmt.Sprintf("pairs=%d", size), func(b *testing.B) {
			ps := make([][2]graph.NodeID, size)
			for i := range ps {
				ps[i] = [2]graph.NodeID{graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n))}
			}
			frame := encodePairsFrame(ps)
			req := httptest.NewRequest(http.MethodPost, "/distance-batch?graph=road&tau=3&seed=7", nil)
			req.Header.Set("Content-Type", "application/x-reprod-pairs")
			w := discardResponseWriter{h: make(http.Header)}
			body := bytes.NewReader(frame)
			body.Reset(frame)
			req.Body = io.NopCloser(body)
			h.ServeHTTP(w, req) // warm build
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				body.Reset(frame)
				req.Body = io.NopCloser(body)
				h.ServeHTTP(w, req)
			}
			b.StopTimer()
			pairsDone := float64(size) * float64(b.N)
			b.ReportMetric(pairsDone/b.Elapsed().Seconds(), "pairs/s")
		})
	}
}

func TestDistanceBatchWrongContentTypeStrings(t *testing.T) {
	// Content-Type parameters (charset etc.) must not defeat the media
	// type match.
	g := graph.Mesh(5, 5)
	_, ts := newTestServer(t, "mesh", g)
	resp, raw := postBatch(t, ts.URL+"/distance-batch?graph=mesh&tau=2&seed=1",
		"application/json; charset=utf-8", "", mustJSON(t, [][2]graph.NodeID{{0, 1}}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("charset parameter rejected: %d %s", resp.StatusCode, raw)
	}
}
