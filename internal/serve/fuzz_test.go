//go:build fuzz

package serve

import (
	"encoding/binary"
	"testing"

	"repro/internal/graph"
)

// FuzzDecodePairsBinary drives arbitrary bytes through the RPB1 dense
// batch-frame decoder — the zero-allocation hot path that untrusted HTTP
// bodies reach before any artifact work. Contract under garbage: reject
// with an error, never panic, and never return out-of-contract data
// (negative ids, a count disagreeing with the header, a wrong max id).
//
// Guarded by the fuzz build tag; CI smokes it with
// go test -tags fuzz -fuzz FuzzDecodePairsBinary -fuzztime 30s ./internal/serve.
func FuzzDecodePairsBinary(f *testing.F) {
	// A valid 3-pair frame, plus shallow corruptions of it.
	frame := make([]byte, 8+8*3)
	copy(frame, pairsMagic[:])
	binary.LittleEndian.PutUint32(frame[4:], 3)
	for i, p := range [][2]uint32{{0, 1}, {7, 2}, {3, 3}} {
		binary.LittleEndian.PutUint32(frame[8+8*i:], p[0])
		binary.LittleEndian.PutUint32(frame[8+8*i+4:], p[1])
	}
	f.Add(frame)
	f.Add(frame[:11])   // truncated mid-header
	f.Add([]byte{})     // empty body
	f.Add([]byte("RPB1")) // magic only

	huge := make([]byte, 8)
	copy(huge, pairsMagic[:])
	binary.LittleEndian.PutUint32(huge[4:], 1<<31-1) // count overflow probe
	f.Add(huge)

	neg := make([]byte, 8+8)
	copy(neg, pairsMagic[:])
	binary.LittleEndian.PutUint32(neg[4:], 1)
	binary.LittleEndian.PutUint32(neg[8:], 0xffffffff) // negative NodeID
	f.Add(neg)

	f.Fuzz(func(t *testing.T, body []byte) {
		pairs, maxID, err := decodePairsBinary(nil, body)
		if err != nil {
			return // rejected cleanly
		}
		count := int(binary.LittleEndian.Uint32(body[4:8]))
		if len(pairs) != count {
			t.Fatalf("decoded %d pairs, header says %d", len(pairs), count)
		}
		var want graph.NodeID
		for _, p := range pairs {
			if p[0] < 0 || p[1] < 0 {
				t.Fatalf("accepted negative pair %v", p)
			}
			if p[0] > want {
				want = p[0]
			}
			if p[1] > want {
				want = p[1]
			}
		}
		if maxID != want {
			t.Fatalf("maxID %d, recomputed %d", maxID, want)
		}
	})
}
