package chaos

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/serve"
)

// newChaosServer builds the canonical harness fixture: a 1-worker server
// (the most hostile width — one fast-lane slot, one build-pool slot)
// over a small mesh, with the injector installed and an oracle prebuilt
// so warm /distance traffic exists from the start. mod tweaks the config
// before New.
func newChaosServer(t *testing.T, mod func(*serve.Config)) (*Injector, *serve.Server, *httptest.Server) {
	t.Helper()
	inj := New()
	cfg := serve.Config{Workers: 1, FaultInjector: inj}
	if mod != nil {
		mod(&cfg)
	}
	s := serve.New(cfg)
	if err := s.RegisterGraph("mesh", graph.Mesh(20, 20)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Oracle(context.Background(), "mesh", 2, 1, "cluster"); err != nil {
		t.Fatalf("prebuild oracle: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown did not drain: %v", err)
		}
	})
	return inj, s, ts
}

const warmDistance = "/distance?graph=mesh&tau=2&seed=1&u=0&v=399"

// get performs one GET and returns (status, body, headers).
func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func serverStats(t *testing.T, base string) serve.Stats {
	t.Helper()
	status, body, _ := get(t, base+"/stats")
	if status != http.StatusOK {
		t.Fatalf("/stats status %d", status)
	}
	var st serve.Stats
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("decode /stats: %v", err)
	}
	return st
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// retryAfterSeconds asserts the response carries a positive integer
// Retry-After and returns it.
func retryAfterSeconds(t *testing.T, h http.Header) int {
	t.Helper()
	v := h.Get("Retry-After")
	if v == "" {
		t.Fatal("shed response carries no Retry-After header")
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After %q is not a positive integer", v)
	}
	return secs
}

// TestFastLanePinnedWhileColdBuildRuns is the tentpole invariant: at
// Workers=1, a multi-second cold build must not make warm traffic queue
// behind it — the blocked request parks its fast-lane slot, so cached
// /distance latency stays bounded for the build's whole lifetime.
func TestFastLanePinnedWhileColdBuildRuns(t *testing.T) {
	inj, _, ts := newChaosServer(t, nil)
	gate := make(chan struct{})
	inj.SetKind("diameter", Rule{Block: gate})

	coldDone := make(chan int, 1)
	go func() {
		status, _, _ := get(t, ts.URL+"/diameter?graph=mesh&tau=3&seed=1")
		coldDone <- status
	}()
	key := serve.Key{Graph: "mesh", Kind: "diameter", Tau: 3, Seed: 1, Algorithm: "cluster"}
	waitFor(t, 5*time.Second, "cold build to start", func() bool { return inj.Starts(key) >= 1 })

	// The build now provably occupies the only build-pool slot and its
	// request is parked. Warm traffic through the only fast-lane slot
	// must flow at cached-lookup speed.
	var worst time.Duration
	for i := 0; i < 50; i++ {
		start := time.Now()
		status, body, _ := get(t, ts.URL+warmDistance)
		if status != http.StatusOK {
			t.Fatalf("warm request %d: status %d (%s)", i, status, body)
		}
		if d := time.Since(start); d > worst {
			worst = d
		}
	}
	// Microsecond work, second-scale bound: generous enough for -race on
	// loaded CI, still orders of magnitude under the blocked build.
	if worst > 2*time.Second {
		t.Fatalf("warm latency reached %v while a cold build was running", worst)
	}
	select {
	case status := <-coldDone:
		t.Fatalf("cold build finished early with status %d", status)
	default:
	}

	close(gate)
	select {
	case status := <-coldDone:
		if status != http.StatusOK {
			t.Fatalf("cold build status %d after unblock", status)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cold build did not complete after unblock")
	}
}

// TestSlowLaneShedsWithRetryAfter drives the slow lane past its bound:
// with no wait queue and the only build slot provably occupied, the next
// cold key is shed with 503 + a positive Retry-After, and the shed key
// builds fine once the lane drains.
func TestSlowLaneShedsWithRetryAfter(t *testing.T) {
	inj, _, ts := newChaosServer(t, func(c *serve.Config) { c.SlowLaneQueue = -1 })
	gate := make(chan struct{})
	inj.SetKind("diameter", Rule{Block: gate})

	coldDone := make(chan int, 1)
	go func() {
		status, _, _ := get(t, ts.URL+"/diameter?graph=mesh&tau=3&seed=1")
		coldDone <- status
	}()
	key := serve.Key{Graph: "mesh", Kind: "diameter", Tau: 3, Seed: 1, Algorithm: "cluster"}
	waitFor(t, 5*time.Second, "cold build to start", func() bool { return inj.Starts(key) >= 1 })

	status, body, header := get(t, ts.URL+"/diameter?graph=mesh&tau=4&seed=1")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("second cold key: status %d (%s), want 503", status, body)
	}
	retryAfterSeconds(t, header)
	if !strings.Contains(body, "slow lane") {
		t.Fatalf("shed body %q does not name the slow lane", body)
	}
	if st := serverStats(t, ts.URL); st.ShedSlow < 1 {
		t.Fatalf("ShedSlow = %d after a slow-lane shed", st.ShedSlow)
	}

	// Warm traffic is untouched by slow-lane saturation.
	if status, body, _ := get(t, ts.URL+warmDistance); status != http.StatusOK {
		t.Fatalf("warm request during slow-lane saturation: status %d (%s)", status, body)
	}

	close(gate)
	if status := <-coldDone; status != http.StatusOK {
		t.Fatalf("blocked cold build status %d after unblock", status)
	}
	// The lane has drained: the previously shed key is admitted now.
	if status, body, _ := get(t, ts.URL+"/diameter?graph=mesh&tau=4&seed=1"); status != http.StatusOK {
		t.Fatalf("shed key after drain: status %d (%s)", status, body)
	}
}

// TestBreakerTripsAndRecovers poisons one key, watches the breaker open
// within BreakerThreshold failures without burning further builds, and
// heals the key through the half-open probe after the cooldown.
func TestBreakerTripsAndRecovers(t *testing.T) {
	const cooldown = 200 * time.Millisecond
	inj, _, ts := newChaosServer(t, func(c *serve.Config) {
		c.BreakerThreshold = 3
		c.BreakerCooldown = cooldown
	})
	key := serve.Key{Graph: "mesh", Kind: "diameter", Tau: 5, Seed: 1, Algorithm: "cluster"}
	poisoned := ts.URL + "/diameter?graph=mesh&tau=5&seed=1"
	inj.Set(key, Rule{Err: fmt.Errorf("chaos: poisoned build")})

	for i := 1; i <= 3; i++ {
		status, body, _ := get(t, poisoned)
		if status != http.StatusInternalServerError {
			t.Fatalf("poisoned attempt %d: status %d (%s)", i, status, body)
		}
	}
	if n := inj.Starts(key); n != 3 {
		t.Fatalf("poisoned key built %d times, want 3", n)
	}

	// Tripped: the next request is refused without reaching the build.
	status, body, header := get(t, poisoned)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("open-breaker request: status %d (%s), want 503", status, body)
	}
	retryAfterSeconds(t, header)
	if !strings.Contains(body, "circuit breaker") {
		t.Fatalf("open-breaker body %q does not name the breaker", body)
	}
	if n := inj.Starts(key); n != 3 {
		t.Fatalf("open breaker still admitted a build (starts=%d)", n)
	}
	st := serverStats(t, ts.URL)
	if st.BreakerTrips < 1 || st.BreakerRejected < 1 || st.BreakerOpenKeys != 1 {
		t.Fatalf("breaker stats after trip: trips=%d rejected=%d open=%d",
			st.BreakerTrips, st.BreakerRejected, st.BreakerOpenKeys)
	}

	// Heal the key and wait out the cooldown: the next request is the
	// half-open probe, succeeds, and closes the breaker for good.
	inj.Clear(key)
	time.Sleep(cooldown + 100*time.Millisecond)
	if status, body, _ := get(t, poisoned); status != http.StatusOK {
		t.Fatalf("half-open probe: status %d (%s), want 200", status, body)
	}
	if n := inj.Starts(key); n != 4 {
		t.Fatalf("probe should be exactly one build (starts=%d, want 4)", n)
	}
	if st := serverStats(t, ts.URL); st.BreakerOpenKeys != 0 {
		t.Fatalf("breaker still open after successful probe (open=%d)", st.BreakerOpenKeys)
	}
	// And the artifact is cached like any other.
	if status, _, _ := get(t, poisoned); status != http.StatusOK || inj.Starts(key) != 4 {
		t.Fatalf("healed key not served from cache (starts=%d)", inj.Starts(key))
	}
}

// TestBreakerReopensAfterFailedProbe verifies the half-open → open edge:
// a probe that fails re-trips the breaker immediately.
func TestBreakerReopensAfterFailedProbe(t *testing.T) {
	const cooldown = 150 * time.Millisecond
	inj, _, ts := newChaosServer(t, func(c *serve.Config) {
		c.BreakerThreshold = 2
		c.BreakerCooldown = cooldown
	})
	key := serve.Key{Graph: "mesh", Kind: "diameter", Tau: 6, Seed: 1, Algorithm: "cluster"}
	poisoned := ts.URL + "/diameter?graph=mesh&tau=6&seed=1"
	inj.Set(key, Rule{Err: fmt.Errorf("chaos: still poisoned")})

	for i := 0; i < 2; i++ {
		get(t, poisoned)
	}
	time.Sleep(cooldown + 100*time.Millisecond)
	// Probe runs (still poisoned) and fails: breaker re-opens at once.
	if status, _, _ := get(t, poisoned); status != http.StatusInternalServerError {
		t.Fatal("expected the probe build to run and fail")
	}
	status, _, header := get(t, poisoned)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("after failed probe: status %d, want 503", status)
	}
	retryAfterSeconds(t, header)
	if n := inj.Starts(key); n != 3 {
		t.Fatalf("builds after failed probe = %d, want 3 (2 trips + 1 probe)", n)
	}
}

// TestPanickingBuildTripsBreaker routes an injected panic through the
// build's containment and into the breaker's failure count.
func TestPanickingBuildTripsBreaker(t *testing.T) {
	inj, _, ts := newChaosServer(t, func(c *serve.Config) { c.BreakerThreshold = 2 })
	key := serve.Key{Graph: "mesh", Kind: "diameter", Tau: 7, Seed: 1, Algorithm: "cluster"}
	inj.Set(key, Rule{Panic: "chaos: injected panic"})
	url := ts.URL + "/diameter?graph=mesh&tau=7&seed=1"

	for i := 0; i < 2; i++ {
		status, body, _ := get(t, url)
		if status != http.StatusInternalServerError || !strings.Contains(body, "panicked") {
			t.Fatalf("panicking build attempt %d: status %d (%s)", i, status, body)
		}
	}
	if status, _, _ := get(t, url); status != http.StatusServiceUnavailable {
		t.Fatalf("breaker did not trip on panics: status %d", status)
	}
	// The daemon survived two build panics; warm traffic is untouched.
	if status, _, _ := get(t, ts.URL+warmDistance); status != http.StatusOK {
		t.Fatal("warm traffic broken after contained panics")
	}
}

// TestBuildTimeoutAnswers504 pins the server-side build deadline: a
// build that outruns Config.BuildTimeout is killed, its waiter answers
// 504 (not 503), the timed-out state is counted, and the key is
// immediately retryable once healed.
func TestBuildTimeoutAnswers504(t *testing.T) {
	inj, _, ts := newChaosServer(t, func(c *serve.Config) { c.BuildTimeout = 150 * time.Millisecond })
	key := serve.Key{Graph: "mesh", Kind: "diameter", Tau: 8, Seed: 1, Algorithm: "cluster"}
	inj.Set(key, Rule{Delay: 30 * time.Second})
	url := ts.URL + "/diameter?graph=mesh&tau=8&seed=1"

	status, body, _ := get(t, url)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("timed-out build: status %d (%s), want 504", status, body)
	}
	if st := serverStats(t, ts.URL); st.TimedOutBuilds != 1 {
		t.Fatalf("TimedOutBuilds = %d, want 1", st.TimedOutBuilds)
	}
	inj.Clear(key)
	if status, body, _ := get(t, url); status != http.StatusOK {
		t.Fatalf("healed key after timeout: status %d (%s)", status, body)
	}
}

// TestSlowClientDoesNotStallOthers is the slow-client fault: a client
// that stalls mid-request-body camps on the only fast-lane slot, so with
// no wait queue the next request is shed instantly (503 + Retry-After)
// instead of queueing behind a socket — and service resumes the moment
// the slow client goes away.
func TestSlowClientDoesNotStallOthers(t *testing.T) {
	_, _, ts := newChaosServer(t, func(c *serve.Config) { c.FastLaneQueue = -1 })

	conn, err := net.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Declare a body we never finish sending: the batch handler blocks
	// reading it while holding its fast-lane slot.
	_, err = io.WriteString(conn, "POST /distance-batch?graph=mesh&tau=2&seed=1 HTTP/1.1\r\n"+
		"Host: chaos\r\nContent-Type: application/json\r\nContent-Length: 4096\r\n\r\n{\"pairs\":[[0,1]")
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "slow client to occupy the fast lane", func() bool {
		return serverStats(t, ts.URL).InFlight == 1
	})

	status, body, header := get(t, ts.URL+warmDistance)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("request behind slow client: status %d (%s), want 503", status, body)
	}
	retryAfterSeconds(t, header)
	if !strings.Contains(body, "fast lane") {
		t.Fatalf("shed body %q does not name the fast lane", body)
	}
	if st := serverStats(t, ts.URL); st.ShedFast < 1 {
		t.Fatalf("ShedFast = %d after a fast-lane shed", st.ShedFast)
	}

	conn.Close()
	waitFor(t, 5*time.Second, "fast lane to recover after disconnect", func() bool {
		status, _, _ := get(t, ts.URL+warmDistance)
		return status == http.StatusOK
	})
}

// TestSoakMixedTrafficNoLeaks is the harness's capstone: a 1-worker
// server under concurrent hot, cold, poisoned, and disconnecting
// traffic, then a full audit — no lost fast-lane or build-pool slots, no
// stuck slow-lane accounting, no leaked goroutines, warm latency bounded
// throughout, and the shed/breaker counters consistent with what the
// clients saw.
func TestSoakMixedTrafficNoLeaks(t *testing.T) {
	baseline := runtime.NumGoroutine()
	inj, s, ts := newChaosServer(t, func(c *serve.Config) {
		c.SlowLaneQueue = 1
		c.BreakerThreshold = 3
		c.BreakerCooldown = 50 * time.Millisecond
	})
	inj.SetKind("diameter", Rule{Delay: 20 * time.Millisecond})
	poisonKey := serve.Key{Graph: "mesh", Kind: "kcenter", Tau: 3, Seed: 1, Algorithm: "cluster"}
	inj.Set(poisonKey, Rule{Err: fmt.Errorf("chaos: poisoned")})

	const soakFor = 1500 * time.Millisecond
	stop := time.Now().Add(soakFor)
	var (
		wg        sync.WaitGroup
		worstWarm atomic.Int64
		warmOK    atomic.Int64
		sheds     atomic.Int64
		failures  atomic.Int64 // statuses outside the expected set, reported once
	)
	expect := func(status int, allowed ...int) {
		for _, a := range allowed {
			if status == a {
				return
			}
		}
		failures.Add(1)
	}

	// Hot workers: cached point and batch queries, always 200 (the fast
	// lane's default queue absorbs this concurrency), latency tracked.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for time.Now().Before(stop) {
				u, v := rng.Intn(400), rng.Intn(400)
				start := time.Now()
				status, _, _ := get(t, fmt.Sprintf("%s/distance?graph=mesh&tau=2&seed=1&u=%d&v=%d", ts.URL, u, v))
				d := int64(time.Since(start))
				for {
					cur := worstWarm.Load()
					if d <= cur || worstWarm.CompareAndSwap(cur, d) {
						break
					}
				}
				if status == http.StatusOK {
					warmOK.Add(1)
				}
				expect(status, http.StatusOK)
			}
		}(int64(w))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(stop) {
			resp, err := http.Post(ts.URL+"/distance-batch?graph=mesh&tau=2&seed=1",
				"application/json", strings.NewReader(`{"pairs":[[0,1],[5,200],[399,399]]}`))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				expect(resp.StatusCode, http.StatusOK)
			}
		}
	}()
	// Cold worker: cycles fresh diameter keys; 200 or a shed 503 are both
	// legitimate under a full slow lane.
	wg.Add(1)
	go func() {
		defer wg.Done()
		tau := 3
		for time.Now().Before(stop) {
			status, _, header := get(t, fmt.Sprintf("%s/diameter?graph=mesh&tau=%d&seed=1", ts.URL, tau))
			if status == http.StatusServiceUnavailable {
				sheds.Add(1)
				retryAfterSeconds(t, header)
			}
			expect(status, http.StatusOK, http.StatusServiceUnavailable)
			tau++
			if tau > 9 {
				tau = 3
			}
		}
	}()
	// Poison worker: hammers the poisoned key; 500 while building, 503
	// once the breaker opens (or the slow lane sheds it).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(stop) {
			status, _, _ := get(t, ts.URL+"/kcenter?graph=mesh&k=3&seed=1")
			expect(status, http.StatusInternalServerError, http.StatusServiceUnavailable)
			time.Sleep(10 * time.Millisecond)
		}
	}()
	// Disconnect worker: starts cold builds and abandons them.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(stop) {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
			req, _ := http.NewRequestWithContext(ctx, http.MethodGet,
				ts.URL+"/diameter?graph=mesh&tau=11&seed=1", nil)
			if resp, err := http.DefaultClient.Do(req); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			cancel()
		}
	}()
	wg.Wait()

	if n := failures.Load(); n > 0 {
		t.Errorf("%d responses outside their scenario's expected status set", n)
	}
	if warmOK.Load() == 0 {
		t.Fatal("soak produced no successful warm requests")
	}
	if worst := time.Duration(worstWarm.Load()); worst > 3*time.Second {
		t.Errorf("worst warm latency %v under soak; fast lane not isolated", worst)
	}

	// Audit: every slot repaid, every lane drained, nothing left running.
	waitFor(t, 10*time.Second, "in-flight requests and builds to drain", func() bool {
		st := serverStats(t, ts.URL)
		return st.InFlight == 0
	})
	scrape := func() string {
		_, body, _ := get(t, ts.URL+"/metrics")
		return body
	}
	waitFor(t, 10*time.Second, "slow lane to drain", func() bool {
		return strings.Contains(scrape(), "reprod_slow_lane_pending_builds 0")
	})
	exposition := scrape()
	for _, want := range []string{
		"reprod_request_slots_in_use 0",
		"reprod_fast_lane_queue_depth 0",
		"reprod_build_pool_occupancy 0",
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("post-soak exposition missing %q", want)
		}
	}
	st := serverStats(t, ts.URL)
	if int64(st.ShedSlow) < sheds.Load() {
		t.Errorf("ShedSlow=%d but clients saw %d shed cold requests", st.ShedSlow, sheds.Load())
	}
	if st.ClientGone == 0 {
		t.Error("disconnect worker left no reprod_requests_client_gone_total trace")
	}

	// A full-width fast lane and a working build path survive the soak.
	if status, body, _ := get(t, ts.URL+warmDistance); status != http.StatusOK {
		t.Fatalf("warm request after soak: status %d (%s)", status, body)
	}
	if status, body, _ := get(t, ts.URL+"/diameter?graph=mesh&tau=13&seed=1"); status != http.StatusOK {
		t.Fatalf("cold build after soak: status %d (%s)", status, body)
	}

	// Goroutine audit: drain the server and the client pool, then demand
	// we return to (near) the pre-soak population.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown after soak: %v", err)
	}
	ts.Close()
	http.DefaultClient.CloseIdleConnections()
	waitFor(t, 10*time.Second, "goroutines to return to baseline", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseline+5
	})
}
