// Package chaos is the fault-injection harness for internal/serve: a
// serve.FaultInjector implementation whose per-key (and per-kind) rules
// delay, block, fail, or panic detached artifact builds on demand. The
// soak tests in this package use it to drive a 1-worker server through
// the overload scenarios the admission control, load shedding, circuit
// breaker, and build-timeout machinery exist for — under -race, with
// goroutine- and slot-leak assertions.
//
// The harness is test-only by construction: serve knows nothing about
// this package (the dependency points here, via the FaultInjector
// interface), and production configurations leave Config.FaultInjector
// nil, which short-circuits the hook entirely.
package chaos

import (
	"context"
	"sync"
	"time"

	"repro/internal/serve"
)

// Rule is one injected fault, applied at the start of a matching build
// (after it acquires its build-pool slot, before the engines run). The
// stages apply in order: Delay, then Block, then Panic/Err, so a rule
// can e.g. hold a build for a controlled window and then fail it.
type Rule struct {
	// Delay sleeps before the build proceeds, honouring the build's
	// context (including any Config.BuildTimeout) — the knob for "this
	// build is slow", and for driving builds into the server-side
	// deadline.
	Delay time.Duration

	// Block, when non-nil, holds the build until the channel is closed
	// (or the build's context ends) — the knob for keeping a build-pool
	// slot provably occupied while the test probes the rest of the
	// server (slot starvation, shedding, fast-lane isolation).
	Block <-chan struct{}

	// Panic, when non-empty, panics with this value, exercising the
	// build's panic containment end to end.
	Panic string

	// Err, when non-nil, fails the build with this error — the knob for
	// poisoning a key until its circuit breaker trips.
	Err error
}

// Injector implements serve.FaultInjector with a mutable rule table:
// exact-key rules take precedence over per-kind rules, and keys with no
// rule build normally. It also counts build starts per key, so tests can
// assert how many times a poisoned or probed key actually reached the
// build phase. Safe for concurrent use by builds and the test body.
type Injector struct {
	mu     sync.Mutex
	keys   map[serve.Key]Rule
	kinds  map[string]Rule
	starts map[serve.Key]int
}

// New returns an Injector with no rules: every build passes through
// untouched until Set/SetKind installs a fault.
func New() *Injector {
	return &Injector{
		keys:   make(map[serve.Key]Rule),
		kinds:  make(map[string]Rule),
		starts: make(map[serve.Key]int),
	}
}

// Set installs (or replaces) the rule for one exact key.
func (i *Injector) Set(key serve.Key, r Rule) {
	i.mu.Lock()
	i.keys[key] = r
	i.mu.Unlock()
}

// SetKind installs (or replaces) the fallback rule for every key of a
// kind ("oracle", "diameter", ...) without an exact-key rule.
func (i *Injector) SetKind(kind string, r Rule) {
	i.mu.Lock()
	i.kinds[kind] = r
	i.mu.Unlock()
}

// Clear removes the exact-key rule for key, healing it.
func (i *Injector) Clear(key serve.Key) {
	i.mu.Lock()
	delete(i.keys, key)
	i.mu.Unlock()
}

// ClearKind removes the per-kind fallback rule.
func (i *Injector) ClearKind(kind string) {
	i.mu.Lock()
	delete(i.kinds, kind)
	i.mu.Unlock()
}

// Starts reports how many builds of key reached the build phase.
func (i *Injector) Starts(key serve.Key) int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.starts[key]
}

// BuildStarted is the serve.FaultInjector hook: it runs on the detached
// build goroutine under the build's context and applies the matching
// rule, if any.
func (i *Injector) BuildStarted(ctx context.Context, key serve.Key) error {
	i.mu.Lock()
	i.starts[key]++
	r, ok := i.keys[key]
	if !ok {
		r, ok = i.kinds[key.Kind]
	}
	i.mu.Unlock()
	if !ok {
		return nil
	}
	if r.Delay > 0 {
		t := time.NewTimer(r.Delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if r.Block != nil {
		select {
		case <-r.Block:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if r.Panic != "" {
		panic(r.Panic)
	}
	return r.Err
}
