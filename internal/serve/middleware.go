package serve

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// RequestLogEntry describes one completed HTTP request, handed to
// Config.RequestLog after the response is written. Cache is "hit" when the
// request was answered from a completed artifact, "miss" when it started a
// build, "join" when it attached to a build already in flight, and empty
// for endpoints that never touch the artifact cache.
type RequestLogEntry struct {
	ID          string
	Method      string
	Path        string
	Status      int
	Latency     time.Duration
	ArtifactKey string
	Cache       string
}

// requestInfo rides the request context so the artifact cache can
// annotate the request that reached it; the handler goroutine writes and
// reads it, so plain fields suffice.
type requestInfo struct {
	id          string
	artifactKey string
	cache       string

	// slot is the request's fast-lane admission handle, set by wrapRaw so
	// the artifact cache can park it while the request blocks on a build.
	// Nil for direct API callers that never took a slot.
	slot *laneSlot
}

type requestInfoKey struct{}

func requestInfoFrom(ctx context.Context) *requestInfo {
	ri, _ := ctx.Value(requestInfoKey{}).(*requestInfo)
	return ri
}

// statusRecorder captures the status a handler writes. The default is 200:
// a handler that writes the body without calling WriteHeader implicitly
// answered OK.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// nextRequestID mints a request id unique within (and tagged by) this
// server process: a per-process base from the start time plus a sequence
// number, cheap enough for the per-request hot path.
func (s *Server) nextRequestID() string {
	return fmt.Sprintf("%s-%06d", s.idBase, s.reqSeq.Add(1))
}

// instrument is the observability middleware wrapped around every
// endpoint: it stamps a request id (echoed as X-Request-ID), counts the
// request into the per-path/status counter, times it into the per-path
// latency histogram, tracks the in-flight gauge, and — when
// Config.RequestLog is set — emits one structured log entry per request,
// annotated with the artifact key and cache outcome if the request reached
// the artifact cache.
func (s *Server) instrument(path string, next http.Handler) http.Handler {
	lat := s.met.httpLatency.With(path) // resolve the series once, not per request
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ri := &requestInfo{id: s.nextRequestID()}
		w.Header().Set("X-Request-ID", ri.id)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		s.met.requests.Add(1)
		s.met.httpInFlight.Add(1)
		next.ServeHTTP(rec, r.WithContext(context.WithValue(r.Context(), requestInfoKey{}, ri)))
		s.met.httpInFlight.Add(-1)
		elapsed := time.Since(start)
		s.met.httpRequests.With(path, strconv.Itoa(rec.status)).Inc()
		lat.Observe(elapsed.Seconds())
		if rec.status >= 400 {
			s.met.errors.Inc()
		}
		if s.cfg.RequestLog != nil {
			s.cfg.RequestLog(RequestLogEntry{
				ID:          ri.id,
				Method:      r.Method,
				Path:        path,
				Status:      rec.status,
				Latency:     elapsed,
				ArtifactKey: ri.artifactKey,
				Cache:       ri.cache,
			})
		}
	})
}
