package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/snapshot"
)

func newTestServer(t *testing.T, name string, g *graph.Graph) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{Workers: 8})
	if err := s.RegisterGraph(name, g); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("unmarshal %q: %v", body, err)
		}
	}
	return resp.StatusCode
}

// The acceptance test: ≥32 parallel clients hammer /distance and every
// answer must equal a direct Oracle.Query call with the same build
// parameters.
func TestDistanceMatchesOracleUnderParallelClients(t *testing.T) {
	g := graph.RoadLike(60, 60, 0.4, 17)
	_, ts := newTestServer(t, "road", g)

	// Reference oracle, built directly with the same (tau, seed, algo) key.
	want, err := core.BuildOracle(context.Background(), g, 3, false, core.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}

	const clients = 32
	const queriesPerClient = 50
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := rng.New(uint64(1000 + id))
			for q := 0; q < queriesPerClient; q++ {
				u := r.Intn(g.NumNodes())
				v := r.Intn(g.NumNodes())
				var resp DistanceResponse
				url := fmt.Sprintf("%s/distance?graph=road&tau=3&seed=7&u=%d&v=%d", ts.URL, u, v)
				code := 0
				{
					res, err := http.Get(url)
					if err != nil {
						errs <- err
						return
					}
					body, _ := io.ReadAll(res.Body)
					res.Body.Close()
					code = res.StatusCode
					if err := json.Unmarshal(body, &resp); err != nil {
						errs <- fmt.Errorf("client %d: %v (%s)", id, err, body)
						return
					}
				}
				if code != http.StatusOK {
					errs <- fmt.Errorf("client %d: status %d", id, code)
					return
				}
				wantD := want.Query(graph.NodeID(u), graph.NodeID(v))
				wantL := want.LowerQuery(graph.NodeID(u), graph.NodeID(v))
				if wantD == graph.InfDist {
					if resp.Reachable {
						errs <- fmt.Errorf("(%d,%d): reachable=true, want unreachable", u, v)
						return
					}
					continue
				}
				if !resp.Reachable || resp.Distance != wantD || resp.Lower != wantL {
					errs <- fmt.Errorf("(%d,%d): got (%d,%d,%v) want (%d,%d,true)",
						u, v, resp.Distance, resp.Lower, resp.Reachable, wantD, wantL)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// All concurrent first requests for one artifact key must share a single
// build (single-flight), and later requests must hit the cache.
func TestSingleFlightBuild(t *testing.T) {
	g := graph.Mesh(80, 80)
	s, ts := newTestServer(t, "mesh", g)

	const clients = 32
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			url := fmt.Sprintf("%s/distance?graph=mesh&tau=2&seed=5&u=%d&v=%d", ts.URL, id, id+100)
			if code := getStatus(t, url); code != http.StatusOK {
				t.Errorf("client %d: status %d", id, code)
			}
		}(c)
	}
	wg.Wait()

	st := s.Stats()
	if st.Builds != 1 {
		t.Fatalf("%d builds for one key under %d concurrent clients, want 1", st.Builds, clients)
	}
	if st.CacheMisses != 1 || st.CacheHits != clients-1 {
		t.Fatalf("hits/misses = %d/%d, want %d/1", st.CacheHits, st.CacheMisses, clients-1)
	}

	// A different key must trigger its own build.
	if code := getStatus(t, ts.URL+"/distance?graph=mesh&tau=2&seed=6&u=0&v=1"); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if st := s.Stats(); st.Builds != 2 {
		t.Fatalf("builds = %d after second key, want 2", st.Builds)
	}
}

func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// A snapshot-seeded server must answer identically to the server that
// built the artifact, without running any build.
func TestSnapshotRestartSkipsBuild(t *testing.T) {
	g := graph.RoadLike(50, 50, 0.4, 23)
	s1 := New(Config{Workers: 4})
	if err := s1.RegisterGraph("road", g); err != nil {
		t.Fatal(err)
	}
	art, err := s1.SnapshotArtifact(context.Background(), "road", 3, 9, "cluster")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := snapshot.Write(&buf, art); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh server seeded only from the snapshot bytes.
	loaded, err := snapshot.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{Workers: 4})
	if err := s2.InstallSnapshot(loaded); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s2.Handler())
	defer ts.Close()

	r := rng.New(3)
	for i := 0; i < 200; i++ {
		u := r.Intn(g.NumNodes())
		v := r.Intn(g.NumNodes())
		var resp DistanceResponse
		url := fmt.Sprintf("%s/distance?graph=road&tau=3&seed=9&u=%d&v=%d", ts.URL, u, v)
		if code := getJSON(t, url, &resp); code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		want := art.Oracle.Query(graph.NodeID(u), graph.NodeID(v))
		if want == graph.InfDist {
			if resp.Reachable {
				t.Fatalf("(%d,%d) should be unreachable", u, v)
			}
			continue
		}
		if resp.Distance != want {
			t.Fatalf("(%d,%d) = %d want %d", u, v, resp.Distance, want)
		}
	}
	st := s2.Stats()
	if st.Builds != 0 {
		t.Fatalf("snapshot-seeded server ran %d builds, want 0", st.Builds)
	}
	if st.Installs != 1 {
		t.Fatalf("installs = %d, want 1", st.Installs)
	}
}

func TestClusterOfConsistentWithDistance(t *testing.T) {
	g := graph.Mesh(40, 40)
	s, ts := newTestServer(t, "mesh", g)

	o, err := s.Oracle(context.Background(), "mesh", 2, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	cl := o.Clustering()
	for _, u := range []int{0, 5, 799, 1599} {
		var resp ClusterOfResponse
		url := fmt.Sprintf("%s/cluster-of?graph=mesh&tau=2&seed=1&u=%d", ts.URL, u)
		if code := getJSON(t, url, &resp); code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if resp.Cluster != cl.Owner[u] || resp.Center != cl.Centers[resp.Cluster] ||
			resp.DistToCenter != cl.Dist[u] {
			t.Fatalf("u=%d: %+v inconsistent with clustering", u, resp)
		}
	}
}

func TestDiameterEndpointCertifiedBounds(t *testing.T) {
	g := graph.Mesh(50, 50)
	_, ts := newTestServer(t, "mesh", g)
	var resp DiameterResponse
	if code := getJSON(t, ts.URL+"/diameter?graph=mesh&tau=4&seed=2", &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	truth := int64(98) // 49+49 on a 50x50 mesh
	if resp.Lower > truth || resp.Upper < truth {
		t.Fatalf("bounds [%d, %d] do not bracket true diameter %d", resp.Lower, resp.Upper, truth)
	}
}

func TestKCenterEndpoint(t *testing.T) {
	g := graph.RoadLike(40, 40, 0.4, 5)
	_, ts := newTestServer(t, "road", g)
	var resp KCenterResponse
	if code := getJSON(t, ts.URL+"/kcenter?graph=road&k=16&seed=3", &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(resp.Centers) == 0 || len(resp.Centers) > 16 {
		t.Fatalf("%d centers, want 1..16", len(resp.Centers))
	}
	// Radius is evaluated exactly server-side; re-check it here.
	radius, err := core.EvalCenters(g, resp.Centers)
	if err != nil {
		t.Fatal(err)
	}
	if radius != resp.Radius {
		t.Fatalf("radius %d, server says %d", radius, resp.Radius)
	}
}

func TestErrorPaths(t *testing.T) {
	g := graph.Mesh(10, 10)
	_, ts := newTestServer(t, "mesh", g)
	cases := []struct {
		url  string
		code int
	}{
		{"/distance?graph=nope&u=0&v=1", http.StatusNotFound},
		{"/distance?graph=mesh&u=0", http.StatusBadRequest},           // missing v
		{"/distance?graph=mesh&u=0&v=100000", http.StatusBadRequest},  // v out of range
		{"/distance?graph=mesh&u=100&v=1", http.StatusBadRequest},     // u out of range (n=100)
		{"/distance?graph=mesh&u=-1&v=1", http.StatusBadRequest},      // negative
		{"/distance?graph=mesh&u=0&v=1&tau=x", http.StatusBadRequest}, // bad tau
		{"/distance?graph=mesh&u=0&v=1&algo=bogus", http.StatusBadRequest},
		{"/distance?u=0&v=1", http.StatusBadRequest},                     // missing graph
		{"/cluster-of?graph=mesh", http.StatusBadRequest},                // missing u
		{"/cluster-of?graph=mesh&u=-7", http.StatusBadRequest},           // negative
		{"/cluster-of?graph=mesh&u=100", http.StatusBadRequest},          // out of range
		{"/cluster-of?graph=mesh&u=999999999999", http.StatusBadRequest}, // int32 overflow
		{"/kcenter?graph=mesh", http.StatusBadRequest},                   // missing k
		{"/kcenter?graph=mesh&k=0", http.StatusBadRequest},
		{"/mr-diameter?graph=mesh&algo=cluster2", http.StatusBadRequest}, // CLUSTER only
		{"/mr-diameter?graph=nope", http.StatusNotFound},
	}
	for _, c := range cases {
		if code := getStatus(t, ts.URL+c.url); code != c.code {
			t.Errorf("%s: status %d want %d", c.url, code, c.code)
		}
	}
	var st Stats
	if code := getJSON(t, ts.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if st.Errors != int64(len(cases)) {
		t.Errorf("errors = %d want %d", st.Errors, len(cases))
	}
	// Out-of-range ids must be rejected before the artifact build: garbage
	// requests may not cost (or cache-churn) a decomposition.
	if st.Builds != 0 {
		t.Errorf("malformed requests triggered %d artifact builds, want 0", st.Builds)
	}
	// The rejection must carry a usable message.
	resp, err := http.Get(ts.URL + "/cluster-of?graph=mesh&u=100")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(body, []byte("out of range")) {
		t.Errorf("out-of-range error body %q lacks a clear message", body)
	}
}

// Replacing a graph under the same name must drop its cached artifacts so
// queries never answer against stale topology.
func TestRegisterGraphInvalidatesArtifacts(t *testing.T) {
	s := New(Config{Workers: 2})
	if err := s.RegisterGraph("g", graph.Mesh(20, 20)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Oracle(context.Background(), "g", 2, 1, ""); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Artifacts != 1 {
		t.Fatalf("artifacts = %d want 1", st.Artifacts)
	}
	if err := s.RegisterGraph("g", graph.Mesh(30, 30)); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Artifacts != 0 {
		t.Fatalf("artifacts = %d after re-register, want 0", st.Artifacts)
	}
	o, err := s.Oracle(context.Background(), "g", 2, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	if n := o.Clustering().G.NumNodes(); n != 900 {
		t.Fatalf("oracle over %d nodes, want 900 (new graph)", n)
	}
}

// The artifact cache must stay bounded under client-minted keys: the
// least-recently-used completed artifact is evicted at the cap.
func TestArtifactCacheBounded(t *testing.T) {
	s := New(Config{Workers: 2, MaxArtifacts: 3})
	if err := s.RegisterGraph("g", graph.Mesh(20, 20)); err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 5; seed++ {
		if _, err := s.Oracle(context.Background(), "g", 2, seed, ""); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Artifacts != 3 {
		t.Fatalf("artifacts = %d, want cap 3", st.Artifacts)
	}
	if st.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", st.Evictions)
	}
	// The most recent key must still be cached (no build on re-request).
	builds := st.Builds
	if _, err := s.Oracle(context.Background(), "g", 2, 5, ""); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Builds != builds {
		t.Fatalf("re-request of recent key rebuilt (builds %d -> %d)", builds, st.Builds)
	}
	// The evicted oldest key rebuilds.
	if _, err := s.Oracle(context.Background(), "g", 2, 1, ""); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Builds != builds+1 {
		t.Fatalf("evicted key did not rebuild (builds %d -> %d)", builds, st.Builds)
	}
}

// A failed build must not poison the cache.
func TestFailedBuildRetries(t *testing.T) {
	s := New(Config{Workers: 2})
	// With τ ≥ n every node is selected as a center, so a 100×100 mesh
	// yields 10000 clusters — past the oracle's 8192-cluster cap, which
	// makes the build fail deterministically.
	if err := s.RegisterGraph("g", graph.Mesh(100, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Oracle(context.Background(), "g", 10000, 1, ""); err == nil {
		t.Fatal("expected the huge tau to exceed the oracle cluster cap")
	}
	// The same key must be retryable (and fail again, not deadlock).
	if _, err := s.Oracle(context.Background(), "g", 10000, 1, ""); err == nil {
		t.Fatal("second attempt unexpectedly succeeded")
	}
	if st := s.Stats(); st.Builds != 2 {
		t.Fatalf("builds = %d, want 2 (failed builds are not cached)", st.Builds)
	}
}

func TestStatsSurfacesArtifactBuildCost(t *testing.T) {
	g := graph.RoadLike(40, 40, 0.4, 5)
	s, ts := newTestServer(t, "road", g)
	if _, err := s.Oracle(context.Background(), "road", 4, 1, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Diameter(context.Background(), "road", 4, 1, ""); err != nil {
		t.Fatal(err)
	}
	var st Stats
	if code := getJSON(t, ts.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(st.ArtifactDetails) != 2 {
		t.Fatalf("want 2 artifact cost lines, got %+v", st.ArtifactDetails)
	}
	for _, d := range st.ArtifactDetails {
		if d.Source != "build" {
			t.Fatalf("artifact %q source %q want build", d.Key, d.Source)
		}
		if d.Rounds <= 0 || d.Messages <= 0 || d.MaxFrontier <= 0 {
			t.Fatalf("artifact %q has empty BSP cost: %+v", d.Key, d)
		}
		if d.BuildMillis <= 0 {
			t.Fatalf("artifact %q has no build wall-clock: %+v", d.Key, d)
		}
		if d.PullRounds < 0 || d.PullRounds > d.Rounds {
			t.Fatalf("artifact %q pull rounds inconsistent: %+v", d.Key, d)
		}
	}
	// Deterministic ordering by key.
	if !sort.SliceIsSorted(st.ArtifactDetails, func(i, j int) bool {
		return st.ArtifactDetails[i].Key < st.ArtifactDetails[j].Key
	}) {
		t.Fatal("artifact details not sorted by key")
	}
}

// /mr-diameter runs the Section 5 pipeline on the sharded MR runtime; its
// certified bound must bracket the true diameter, its result must be
// shard-count invariant, and /stats must carry the MR round accounting.
func TestMRDiameterEndpoint(t *testing.T) {
	g := graph.Mesh(30, 30)
	s, ts := newTestServer(t, "mesh", g)
	var resp MRDiameterResponse
	if code := getJSON(t, ts.URL+"/mr-diameter?graph=mesh&tau=1&seed=2", &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	truth := int64(58) // 29+29 on a 30x30 mesh
	if resp.Upper < truth {
		t.Fatalf("MR upper bound %d below true diameter %d", resp.Upper, truth)
	}
	if resp.Upper != 2*int64(resp.RMax)+resp.QuotientDiameter {
		t.Fatalf("upper %d != 2·%d + %d", resp.Upper, resp.RMax, resp.QuotientDiameter)
	}
	if resp.MRRounds <= 0 || resp.MRPairsShuffled <= 0 || resp.MRMaxReducer <= 0 || resp.MRShards < 1 {
		t.Fatalf("empty MR accounting: %+v", resp)
	}

	// Same build on a single-shard server: bit-identical result.
	s1 := New(Config{Workers: 4, BuildWorkers: 1})
	if err := s1.RegisterGraph("mesh", g); err != nil {
		t.Fatal(err)
	}
	ref, err := s1.MRDiameter(context.Background(), "mesh", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ref.QuotientDiameter != resp.QuotientDiameter || ref.Rounds != resp.MRRounds ||
		ref.PairsShuffled != resp.MRPairsShuffled || ref.MaxReducerInput != resp.MRMaxReducer {
		t.Fatalf("single-shard build differs: %+v vs %+v", ref, resp)
	}

	// /stats surfaces the MR cost on the artifact line.
	var st Stats
	if code := getJSON(t, ts.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	found := false
	for _, d := range st.ArtifactDetails {
		if d.MRRounds > 0 {
			found = true
			if d.MRPairsShuffled != resp.MRPairsShuffled || d.MRMaxReducer != resp.MRMaxReducer {
				t.Fatalf("stats MR cost %+v inconsistent with response %+v", d, resp)
			}
			if len(d.MRRoundStats) != d.MRRounds {
				t.Fatalf("%d round stats for %d MR rounds", len(d.MRRoundStats), d.MRRounds)
			}
			var shuffled int64
			for _, rs := range d.MRRoundStats {
				shuffled += rs.PairsIn
			}
			if shuffled != d.MRPairsShuffled {
				t.Fatalf("round stats sum %d != shuffled %d", shuffled, d.MRPairsShuffled)
			}
			if d.Rounds <= 0 || d.Messages <= 0 {
				t.Fatalf("MR artifact is missing its decomposition BSP cost: %+v", d)
			}
		}
	}
	if !found {
		t.Fatalf("no MR cost line in /stats: %+v", st.ArtifactDetails)
	}
	_ = s
}

// A tau so coarse that the quotient exceeds the squaring cap must be a 400,
// not an OOM.
func TestMRDiameterQuotientCap(t *testing.T) {
	g := graph.Mesh(40, 40)
	_, ts := newTestServer(t, "mesh", g)
	// tau=1600 ≥ n makes every node a center: 1600 clusters > 256 cap.
	if code := getStatus(t, ts.URL+"/mr-diameter?graph=mesh&tau=1600&seed=1"); code != http.StatusBadRequest {
		t.Fatalf("oversized quotient: status %d want 400", code)
	}
}

func TestInstallSnapshotReportsSnapshotCost(t *testing.T) {
	g := graph.Mesh(15, 15)
	s := New(Config{Workers: 4})
	if err := s.RegisterGraph("m", g); err != nil {
		t.Fatal(err)
	}
	art, err := s.SnapshotArtifact(context.Background(), "m", 2, 7, "cluster")
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{Workers: 4})
	if err := s2.InstallSnapshot(art); err != nil {
		t.Fatal(err)
	}
	st := s2.Stats()
	if len(st.ArtifactDetails) != 1 {
		t.Fatalf("want 1 artifact cost line, got %+v", st.ArtifactDetails)
	}
	d := st.ArtifactDetails[0]
	if d.Source != "snapshot" || d.BuildMillis != 0 {
		t.Fatalf("snapshot-installed artifact misreported: %+v", d)
	}
	if d.Rounds <= 0 || d.Messages <= 0 {
		t.Fatalf("snapshot cost should carry the persisted BSP stats: %+v", d)
	}
}
