// Package serve turns the batch reproduction into an online system: a
// Server loads one or more graphs, builds the paper's artifacts
// (distance oracle, diameter bounds, k-center solutions) on first use, and
// answers point queries over HTTP/JSON from many concurrent clients.
//
// The design follows the paper's own cost split: builds are the expensive
// parallel phase (seconds), queries are O(1) table lookups (microseconds).
// Accordingly the server keeps a per-artifact cache keyed by
// (graph, τ, seed, algorithm), deduplicates concurrent builds of the same
// key single-flight style, and bounds total build+query concurrency with a
// worker pool so a traffic spike degrades to queueing instead of memory
// blow-up. Artifacts persisted with internal/snapshot can be installed at
// startup, so a restart skips the rebuild entirely.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mr"
	"repro/internal/snapshot"
)

// Config configures a Server.
type Config struct {
	// Workers bounds the number of requests executing (building or
	// querying) at once; further requests queue. Non-positive selects
	// runtime.GOMAXPROCS(0).
	Workers int

	// DefaultTau is used when a request does not specify τ; non-positive
	// selects the per-artifact paper default (core.DefaultOracleTau for
	// oracles, the quotient-size heuristic for diameter).
	DefaultTau int

	// DefaultSeed is used when a request does not specify a seed. Clients
	// that omit build parameters then share one artifact — in the daemon,
	// the one prebuilt (or snapshot-loaded) at startup.
	DefaultSeed uint64

	// DefaultAlgorithm ("cluster" or "cluster2") is used when a request
	// does not specify algo. Empty means "cluster".
	DefaultAlgorithm string

	// BuildWorkers is the parallelism handed to the decomposition builds
	// (core.Options.Workers). Non-positive selects GOMAXPROCS.
	BuildWorkers int

	// MaxArtifacts bounds the artifact cache. Build parameters are
	// client-controlled, so without a bound any client could mint
	// unlimited (tau, seed) keys and OOM the server one multi-second
	// build at a time. At the cap the least-recently-used completed
	// artifact is evicted; if every slot is an in-flight build, new keys
	// are rejected with ErrCacheFull. Non-positive selects 128.
	MaxArtifacts int
}

// Key identifies a build artifact: which graph, which algorithm, and the
// parameters the build is deterministic in. Kind separates artifact
// families that share a graph ("oracle", "diameter", "kcenter"); Tau
// doubles as k for the kcenter family.
type Key struct {
	Graph     string
	Kind      string
	Tau       int
	Seed      uint64
	Algorithm string
}

func (k Key) String() string {
	return fmt.Sprintf("%s/%s(tau=%d,seed=%d,%s)", k.Graph, k.Kind, k.Tau, k.Seed, k.Algorithm)
}

// ErrCacheFull is returned when a new artifact key arrives while every
// cache slot holds an in-flight build; the HTTP layer maps it to 503.
var ErrCacheFull = errors.New("serve: artifact cache full of in-flight builds")

// ArtifactCost is the per-artifact build cost surfaced by /stats: what the
// decomposition behind a cached artifact spent, in the paper's own cost
// units (BSP rounds and arcs-scanned messages) plus wall-clock. PullRounds
// says how many supersteps the direction-optimizing engine ran bottom-up —
// the serving-layer view of the hybrid traversal win. Relaxations and
// Buckets are the delta-stepping counters: the weighted counterpart of
// Messages/Rounds, zero for purely unweighted builds.
type ArtifactCost struct {
	Key         string  `json:"key"`
	Source      string  `json:"source"` // "build" or "snapshot"
	BuildMillis float64 `json:"build_millis"`
	Rounds      int     `json:"bsp_rounds"`
	PullRounds  int     `json:"bsp_pull_rounds"`
	Messages    int64   `json:"bsp_messages"`
	MaxFrontier int     `json:"max_frontier"`
	Relaxations int64   `json:"bsp_relaxations"`
	Buckets     int     `json:"bsp_buckets"`

	// MR(MG, ML) accounting, for artifacts whose build ran on the sharded
	// MR runtime (/mr-diameter): rounds, pairs moved by the shuffle, the
	// largest single reducer input, and the per-round execution profile.
	// Zero/absent for purely BSP-built artifacts.
	MRRounds        int            `json:"mr_rounds,omitempty"`
	MRShards        int            `json:"mr_shards,omitempty"`
	MRPairsShuffled int64          `json:"mr_pairs_shuffled,omitempty"`
	MRMaxReducer    int            `json:"mr_max_reducer_input,omitempty"`
	MRRoundStats    []mr.RoundStat `json:"mr_round_stats,omitempty"`
}

// entry is a cache slot. ready is closed when val/err are set; concurrent
// requests for an in-flight key block on it instead of duplicating the
// build (single flight). lastUsed is the server's logical clock at the
// entry's most recent touch, driving LRU eviction; completed entries are
// recognized by their closed ready channel. cost is written once before
// ready closes and read only by Stats afterwards.
type entry struct {
	ready    chan struct{}
	val      any
	err      error
	cost     *ArtifactCost
	lastUsed atomic.Int64
}

func (e *entry) completed() bool {
	select {
	case <-e.ready:
		return true
	default:
		return false
	}
}

// Server is the query service. Create with New, register graphs (and
// optionally snapshot artifacts), then serve via Handler.
type Server struct {
	cfg   Config
	sem   chan struct{}
	clock atomic.Int64 // logical time for LRU bookkeeping

	mu     sync.RWMutex
	graphs map[string]*graph.Graph
	cache  map[Key]*entry

	met metrics
}

// New returns a Server with an empty graph registry.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxArtifacts <= 0 {
		cfg.MaxArtifacts = 128
	}
	return &Server{
		cfg:    cfg,
		sem:    make(chan struct{}, cfg.Workers),
		graphs: make(map[string]*graph.Graph),
		cache:  make(map[Key]*entry),
	}
}

// RegisterGraph makes g queryable under the given name, replacing any
// previous registration. Artifacts cached for an earlier graph of the same
// name are dropped (they answer for the old topology).
func (s *Server) RegisterGraph(name string, g *graph.Graph) error {
	if name == "" {
		return errors.New("serve: empty graph name")
	}
	if g == nil || g.NumNodes() == 0 {
		return errors.New("serve: nil or empty graph")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.graphs[name]; exists {
		for k := range s.cache {
			if k.Graph == name {
				delete(s.cache, k)
			}
		}
	}
	s.graphs[name] = g
	return nil
}

// InstallSnapshot registers the artifact's graph under its snapshot name
// and, if the artifact carries an oracle, seeds the cache with it — a
// restart path that skips the oracle build entirely.
func (s *Server) InstallSnapshot(a *snapshot.Artifact) error {
	if a == nil || a.Graph == nil {
		return errors.New("serve: nil snapshot artifact")
	}
	name := a.Meta.GraphName
	if name == "" {
		return errors.New("serve: snapshot has no graph name")
	}
	if err := s.RegisterGraph(name, a.Graph); err != nil {
		return err
	}
	if a.Oracle == nil {
		return nil
	}
	algo := a.Meta.Algorithm
	if algo == "" {
		algo = "cluster"
	}
	key := Key{Graph: name, Kind: "oracle", Tau: a.Meta.Tau, Seed: a.Meta.Seed, Algorithm: algo}
	e := &entry{ready: make(chan struct{}), val: a.Oracle}
	e.cost = costFor(key, "snapshot", 0, a.Oracle)
	e.lastUsed.Store(s.clock.Add(1))
	close(e.ready)
	s.mu.Lock()
	if len(s.cache) >= s.cfg.MaxArtifacts {
		s.evictLRULocked()
	}
	s.cache[key] = e
	s.mu.Unlock()
	s.met.installs.Add(1)
	return nil
}

// ErrUnknownGraph is wrapped by Graph for unregistered names; the HTTP
// layer maps it to 404.
var ErrUnknownGraph = errors.New("serve: unknown graph")

// Graph returns the registered graph, or an error (wrapping
// ErrUnknownGraph) naming the known graphs.
func (s *Server) Graph(name string) (*graph.Graph, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if g, ok := s.graphs[name]; ok {
		return g, nil
	}
	return nil, fmt.Errorf("%w %q (have %v)", ErrUnknownGraph, name, s.graphNamesLocked())
}

// GraphNames lists the registered graphs in sorted order.
func (s *Server) GraphNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.graphNamesLocked()
}

func (s *Server) graphNamesLocked() []string {
	names := make([]string, 0, len(s.graphs))
	for name := range s.graphs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// acquire takes a worker slot, honouring ctx cancellation while queued.
func (s *Server) acquire(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) release() { <-s.sem }

// artifact returns the cached value for key, building it with build on
// first use. Exactly one build runs per key however many requests race;
// the rest block until it completes (or ctx is cancelled — the build
// itself keeps running for the requests still waiting on it). A failed
// build is not cached: the entry is removed so a later request can retry.
func (s *Server) artifact(ctx context.Context, key Key, build func() (any, error)) (any, error) {
	// Fast path: cache hits (the steady state of the query workload) only
	// take the read lock, so concurrent queries never serialize on s.mu.
	s.mu.RLock()
	e, ok := s.cache[key]
	s.mu.RUnlock()
	if !ok {
		s.mu.Lock()
		if e, ok = s.cache[key]; !ok {
			// Still absent under the write lock: this request builds.
			if len(s.cache) >= s.cfg.MaxArtifacts {
				if !s.evictLRULocked() {
					s.mu.Unlock()
					return nil, ErrCacheFull
				}
			}
			e = &entry{ready: make(chan struct{})}
			e.lastUsed.Store(s.clock.Add(1))
			s.cache[key] = e
			s.mu.Unlock()
			return s.runBuild(key, e, build)
		}
		s.mu.Unlock()
	}
	e.lastUsed.Store(s.clock.Add(1))
	select {
	case <-e.ready:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if e.err != nil {
		return nil, e.err
	}
	s.met.hits.Add(1)
	return e.val, nil
}

// evictLRULocked removes the least-recently-used completed entry, making
// room for a new build. In-flight builds are never evicted (waiters hold
// references to them). Returns false if nothing was evictable. Caller
// holds s.mu.
func (s *Server) evictLRULocked() bool {
	var (
		victim    Key
		victimAge int64
		found     bool
	)
	for k, e := range s.cache {
		if !e.completed() {
			continue
		}
		if age := e.lastUsed.Load(); !found || age < victimAge {
			victim, victimAge, found = k, age, true
		}
	}
	if found {
		delete(s.cache, victim)
		s.met.evictions.Add(1)
	}
	return found
}

// artifactStats digs the substrate cost out of a cached artifact, for
// build-cost reporting: the decomposition's traversal stats, plus — for
// oracles — the delta-stepping cost of the quotient APSP build, so the
// weighted work is reported as honestly as the unweighted rounds. Unknown
// artifact kinds report nil (no cost line).
func artifactStats(val any) *bsp.Stats {
	switch v := val.(type) {
	case *core.Oracle:
		st := v.Clustering().Stats
		st.Add(v.APSPStats())
		return &st
	case *core.DiameterResult:
		return &v.Clustering.Stats
	case *core.KCenterResult:
		return &v.Clustering.Stats
	case *MRDiameterResult:
		return &v.Stats
	}
	return nil
}

func costFor(key Key, source string, millis float64, val any) *ArtifactCost {
	st := artifactStats(val)
	if st == nil {
		return nil
	}
	c := &ArtifactCost{
		Key:         key.String(),
		Source:      source,
		BuildMillis: millis,
		Rounds:      st.Rounds,
		PullRounds:  st.PullRounds,
		Messages:    st.Messages,
		MaxFrontier: st.MaxFrontier,
		Relaxations: st.Relaxations,
		Buckets:     st.Buckets,
	}
	if m, ok := val.(*MRDiameterResult); ok {
		c.MRRounds = m.Rounds
		c.MRShards = m.Shards
		c.MRPairsShuffled = m.PairsShuffled
		c.MRMaxReducer = m.MaxReducerInput
		c.MRRoundStats = m.RoundStats
	}
	return c
}

func (s *Server) runBuild(key Key, e *entry, build func() (any, error)) (any, error) {
	s.met.misses.Add(1)

	stop := s.met.buildTimer()
	e.val, e.err = build()
	elapsed := stop()
	if e.err == nil {
		millis := float64(elapsed.Nanoseconds()) / 1e6
		e.cost = costFor(key, "build", millis, e.val)
	}
	if e.err != nil {
		s.mu.Lock()
		// Only drop the entry if it is still ours: RegisterGraph may have
		// already replaced the graph and pruned the key.
		if cur, ok := s.cache[key]; ok && cur == e {
			delete(s.cache, key)
		}
		s.mu.Unlock()
	}
	close(e.ready)
	return e.val, e.err
}

// oracleKey resolves the cache key for an oracle request: tau <= 0 falls
// back to Config.DefaultTau, then the paper default for the graph's size;
// the algorithm name is canonicalized. The same resolution feeds Oracle
// and SnapshotArtifact, so a persisted Meta always round-trips to the key
// parameter-less requests hit after a warm restart.
func (s *Server) oracleKey(name string, tau int, seed uint64, algorithm string) (Key, *graph.Graph, bool, error) {
	g, err := s.Graph(name)
	if err != nil {
		return Key{}, nil, false, err
	}
	if tau <= 0 {
		tau = s.cfg.DefaultTau
	}
	if tau <= 0 {
		tau = core.DefaultOracleTau(g.NumNodes())
	}
	useCluster2, err := parseAlgorithm(algorithm)
	if err != nil {
		return Key{}, nil, false, err
	}
	key := Key{Graph: name, Kind: "oracle", Tau: tau, Seed: seed, Algorithm: canonicalAlgorithm(useCluster2)}
	return key, g, useCluster2, nil
}

// Oracle returns the distance oracle for the key's graph and build
// parameters, building and caching it on first use. tau <= 0 selects
// Config.DefaultTau, then the paper default.
func (s *Server) Oracle(ctx context.Context, name string, tau int, seed uint64, algorithm string) (*core.Oracle, error) {
	key, _, useCluster2, err := s.oracleKey(name, tau, seed, algorithm)
	if err != nil {
		return nil, err
	}
	v, err := s.artifact(ctx, key, func() (any, error) {
		// Re-fetch inside the build: a RegisterGraph swap between key
		// resolution and here must not bake a stale topology into the
		// cache.
		g, err := s.Graph(key.Graph)
		if err != nil {
			return nil, err
		}
		return core.BuildOracle(g, key.Tau, useCluster2, s.buildOptions(seed))
	})
	if err != nil {
		return nil, err
	}
	return v.(*core.Oracle), nil
}

// Diameter returns the cached diameter bounds for the key's graph.
func (s *Server) Diameter(ctx context.Context, name string, tau int, seed uint64, algorithm string) (*core.DiameterResult, error) {
	if _, err := s.Graph(name); err != nil {
		return nil, err
	}
	if tau <= 0 {
		tau = s.cfg.DefaultTau
	}
	useCluster2, err := parseAlgorithm(algorithm)
	if err != nil {
		return nil, err
	}
	key := Key{Graph: name, Kind: "diameter", Tau: tau, Seed: seed, Algorithm: canonicalAlgorithm(useCluster2)}
	v, err := s.artifact(ctx, key, func() (any, error) {
		g, err := s.Graph(key.Graph)
		if err != nil {
			return nil, err
		}
		return core.ApproxDiameter(g, core.DiameterOptions{
			Options:     s.buildOptions(seed),
			Tau:         tau,
			UseCluster2: useCluster2,
		})
	})
	if err != nil {
		return nil, err
	}
	return v.(*core.DiameterResult), nil
}

// KCenter returns the cached k-center solution for the key's graph.
func (s *Server) KCenter(ctx context.Context, name string, k int, seed uint64) (*core.KCenterResult, error) {
	if _, err := s.Graph(name); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, errors.New("serve: k must be >= 1")
	}
	key := Key{Graph: name, Kind: "kcenter", Tau: k, Seed: seed, Algorithm: "cluster"}
	v, err := s.artifact(ctx, key, func() (any, error) {
		g, err := s.Graph(key.Graph)
		if err != nil {
			return nil, err
		}
		return core.KCenter(g, k, s.buildOptions(seed))
	})
	if err != nil {
		return nil, err
	}
	return v.(*core.KCenterResult), nil
}

// SnapshotArtifact assembles the persistable artifact for an oracle key,
// building the oracle if it is not cached yet. The daemon uses this to
// write its snapshot after the first build; Meta carries the resolved key
// so InstallSnapshot re-seeds exactly the slot future requests look up.
func (s *Server) SnapshotArtifact(ctx context.Context, name string, tau int, seed uint64, algorithm string) (*snapshot.Artifact, error) {
	key, _, _, err := s.oracleKey(name, tau, seed, algorithm)
	if err != nil {
		return nil, err
	}
	o, err := s.Oracle(ctx, name, key.Tau, seed, key.Algorithm)
	if err != nil {
		return nil, err
	}
	return &snapshot.Artifact{
		Meta: snapshot.Meta{
			GraphName: key.Graph,
			Tau:       key.Tau,
			Seed:      key.Seed,
			Algorithm: key.Algorithm,
		},
		Graph:  o.Clustering().G,
		Oracle: o,
	}, nil
}

func (s *Server) buildOptions(seed uint64) core.Options {
	return core.Options{Seed: seed, Workers: s.cfg.BuildWorkers}
}

func parseAlgorithm(algorithm string) (useCluster2 bool, err error) {
	switch algorithm {
	case "", "cluster":
		return false, nil
	case "cluster2":
		return true, nil
	default:
		return false, fmt.Errorf("serve: unknown algorithm %q (want cluster or cluster2)", algorithm)
	}
}

func canonicalAlgorithm(useCluster2 bool) string {
	if useCluster2 {
		return "cluster2"
	}
	return "cluster"
}
