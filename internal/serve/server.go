// Package serve turns the batch reproduction into an online system: a
// Server loads one or more graphs, builds the paper's artifacts
// (distance oracle, diameter bounds, k-center solutions) on first use, and
// answers point queries over HTTP/JSON from many concurrent clients.
//
// The design follows the paper's own cost split: builds are the expensive
// parallel phase (seconds), queries are O(1) table lookups (microseconds).
// Accordingly the server keeps a per-artifact cache keyed by
// (graph, τ, seed, algorithm), deduplicates concurrent builds of the same
// key single-flight style, and admits traffic through two lanes that
// mirror the cost split: a FAST lane (Config.Workers slots, a small
// bounded wait queue) for the request's own compute — cached-artifact
// lookups, point and batch queries, encoding — and a SLOW lane bounding
// how many cold builds may be pending at once. A request that must wait
// on a build parks its fast-lane slot for the duration, so warm queries
// never queue behind a multi-second decomposition, even at Workers=1.
// When a lane's bounded queue is full the request is load-shed with 503
// plus a Retry-After header computed from live build-pool occupancy and
// the per-kind build-duration histograms (admission.go). A key whose
// builds keep failing trips a per-key circuit breaker — an exponential-
// backoff negative cache with a half-open probe (breaker.go) — so a
// poisoned key answers a fast 503 instead of re-burning a build slot,
// and Config.BuildTimeout bounds the slowest cold build server-side
// without capping warm responses (a timed-out build answers 504).
// Builds run detached, on their own goroutine under their own
// context and bounded by a build pool of the same size, with the requests
// for the key counted as waiters: a request that disconnects frees its
// worker slot immediately, and when the last waiter for an in-flight
// build leaves, the build's context is cancelled and the engines stop at
// their next round/bucket/shard barrier — a dropped request never leaves
// a multi-second decomposition burning cores for nobody. A cancelled build's cache entry is removed, so the key is
// immediately retryable. Artifacts persisted with internal/snapshot can be
// installed at startup, so a restart skips the rebuild entirely; Shutdown
// cancels the in-flight builds and drains their goroutines for a graceful
// exit.
//
// The server is fully observable while it runs. Every handler sits behind
// middleware that stamps an X-Request-ID, counts requests per path and
// status, and records latency histograms; GET /metrics exports the whole
// surface (cache, build pool, engine work counters) as Prometheus text
// exposition via internal/obs. Each detached build accumulates a
// structured lifecycle trace — enqueue, slot acquisition, live engine
// counters streamed from the BSP/MR observer hooks at their barriers,
// waiter high-water mark, terminal state — served by GET /builds
// (in-flight plus a ring of recent builds) and attached to the artifact's
// cost line in /stats. See README.md's Observability section for the
// metric and trace schema.
//
// Bulk consumers use POST /distance-batch, which answers up to
// MaxBatchPairs (u, v) pairs per request straight off the oracle's flat
// tables — JSON, dense binary frames, or streamed NDJSON (batch.go
// documents the wire formats). Batch inputs follow a strict pre-build
// validation rule: every id in the batch is range-checked against the
// graph BEFORE the artifact lookup, so a batch containing even one
// invalid id is rejected with 400 without triggering (or churning a
// cache slot on) a multi-second build — the same reject-before-build
// discipline the point endpoints apply to their u/v parameters. The warm
// batch path reuses pooled request scratch and allocates nothing per
// pair, a guarantee pinned by AllocsPerRun regression tests.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mr"
	"repro/internal/snapshot"
)

// Config configures a Server.
type Config struct {
	// Workers bounds the number of requests executing (building or
	// querying) at once; further requests queue. Non-positive selects
	// runtime.GOMAXPROCS(0).
	Workers int

	// DefaultTau is used when a request does not specify τ; non-positive
	// selects the per-artifact paper default (core.DefaultOracleTau for
	// oracles, the quotient-size heuristic for diameter).
	DefaultTau int

	// DefaultSeed is used when a request does not specify a seed. Clients
	// that omit build parameters then share one artifact — in the daemon,
	// the one prebuilt (or snapshot-loaded) at startup.
	DefaultSeed uint64

	// DefaultAlgorithm ("cluster" or "cluster2") is used when a request
	// does not specify algo. Empty means "cluster".
	DefaultAlgorithm string

	// BuildWorkers is the parallelism handed to the decomposition builds
	// (core.Options.Workers). Non-positive selects GOMAXPROCS.
	BuildWorkers int

	// MaxArtifacts bounds the artifact cache. Build parameters are
	// client-controlled, so without a bound any client could mint
	// unlimited (tau, seed) keys and OOM the server one multi-second
	// build at a time. At the cap the least-recently-used completed
	// artifact is evicted; if every slot is an in-flight build, new keys
	// are rejected with ErrCacheFull. Non-positive selects 128.
	MaxArtifacts int

	// RequestLog, when non-nil, receives one entry per completed HTTP
	// request from the instrumentation middleware — the daemon's
	// structured request log. It runs on the request goroutine after the
	// response is written, so it must not block.
	RequestLog func(RequestLogEntry)

	// FastLaneQueue bounds how many requests may wait for a fast-lane
	// slot before new arrivals are load-shed with 503 + Retry-After.
	// Fast-lane work is microseconds, so a deep queue only ever means the
	// server is past saturation. Zero selects 256; negative means no
	// queue (shed whenever every slot is busy).
	FastLaneQueue int

	// SlowLaneQueue bounds how many cold builds may be pending (queued
	// plus running) beyond the build pool before new build requests are
	// load-shed with 503 + a Retry-After estimated from live pool
	// occupancy and the build-duration histograms. Zero selects
	// 4×Workers; negative means no queue (shed whenever every build slot
	// is busy).
	SlowLaneQueue int

	// BuildTimeout, when positive, bounds the running phase of every
	// detached build server-side: a build that exceeds it is cancelled at
	// its next engine barrier, its waiters answer 504, and the failure
	// counts against the key's circuit breaker. Warm responses are never
	// capped — the timeout applies to builds, not requests.
	BuildTimeout time.Duration

	// BreakerThreshold is how many consecutive terminal build failures
	// (failed, panicked, timed out — not cancelled) open a key's circuit
	// breaker. Non-positive selects 3.
	BreakerThreshold int

	// BreakerCooldown is the negative-cache duration after the breaker
	// first opens; it doubles on every further failure (capped at 5m)
	// and a half-open probe build is admitted once it expires.
	// Non-positive selects 2s.
	BreakerCooldown time.Duration

	// FaultInjector, when non-nil, receives a callback at the start of
	// every detached build. It exists ONLY for fault-injection tests
	// (internal/serve/chaos): blocking in the hook delays the build,
	// returning an error fails it, panicking exercises the panic
	// containment. Production configurations leave it nil.
	FaultInjector FaultInjector
}

// FaultInjector is the test-only fault-injection hook set threaded
// through the build pipeline by Config.FaultInjector. Implementations
// live in internal/serve/chaos; production servers run with none.
type FaultInjector interface {
	// BuildStarted runs on the detached build goroutine after the build
	// acquires its pool slot and before the engines start, under the
	// build's context (including any BuildTimeout). Blocking delays the
	// build and must honour ctx; a non-nil return fails the build with
	// that error; a panic is contained by the build's recover exactly
	// like an engine panic.
	BuildStarted(ctx context.Context, key Key) error
}

// Key identifies a build artifact: which graph, which algorithm, and the
// parameters the build is deterministic in. Kind separates artifact
// families that share a graph ("oracle", "diameter", "kcenter"); Tau
// doubles as k for the kcenter family.
type Key struct {
	Graph     string
	Kind      string
	Tau       int
	Seed      uint64
	Algorithm string
}

func (k Key) String() string {
	return fmt.Sprintf("%s/%s(tau=%d,seed=%d,%s)", k.Graph, k.Kind, k.Tau, k.Seed, k.Algorithm)
}

// ErrCacheFull is returned when a new artifact key arrives while every
// cache slot holds an in-flight build; the HTTP layer maps it to 503.
var ErrCacheFull = errors.New("serve: artifact cache full of in-flight builds")

// ErrShuttingDown is returned for build requests arriving after Shutdown
// began. Completed artifacts remain queryable; only new builds are
// rejected, so the drain cannot be extended indefinitely by fresh traffic.
var ErrShuttingDown = errors.New("serve: server shutting down")

// ArtifactCost is the per-artifact build cost surfaced by /stats: what the
// decomposition behind a cached artifact spent, in the paper's own cost
// units (BSP rounds and arcs-scanned messages) plus wall-clock. PullRounds
// says how many supersteps the direction-optimizing engine ran bottom-up —
// the serving-layer view of the hybrid traversal win. Relaxations and
// Buckets are the delta-stepping counters: the weighted counterpart of
// Messages/Rounds, zero for purely unweighted builds.
type ArtifactCost struct {
	Key         string  `json:"key"`
	Source      string  `json:"source"` // "build" or "snapshot"
	BuildMillis float64 `json:"build_millis"`
	Rounds      int     `json:"bsp_rounds"`
	PullRounds  int     `json:"bsp_pull_rounds"`
	Messages    int64   `json:"bsp_messages"`
	MaxFrontier int     `json:"max_frontier"`
	Relaxations int64   `json:"bsp_relaxations"`
	Buckets     int     `json:"bsp_buckets"`

	// MR(MG, ML) accounting, for artifacts whose build ran on the sharded
	// MR runtime (/mr-diameter): rounds, pairs moved by the shuffle, the
	// largest single reducer input, and the per-round execution profile.
	// Zero/absent for purely BSP-built artifacts.
	MRRounds        int            `json:"mr_rounds,omitempty"`
	MRShards        int            `json:"mr_shards,omitempty"`
	MRPairsShuffled int64          `json:"mr_pairs_shuffled,omitempty"`
	MRMaxReducer    int            `json:"mr_max_reducer_input,omitempty"`
	MRRoundStats    []mr.RoundStat `json:"mr_round_stats,omitempty"`

	// Trace is the build's full lifecycle trace (enqueue → slot → engine
	// rounds → completion, with the waiter high-water mark). Absent for
	// artifacts installed from snapshots, which were never built here.
	Trace *BuildTraceInfo `json:"trace,omitempty"`
}

// entry is a cache slot. ready is closed when val/err are set; concurrent
// requests for an in-flight key block on it instead of duplicating the
// build (single flight). The build itself runs detached, on its own
// goroutine under its own context: waiters holds the number of requests
// currently blocked on ready, and when the last of them leaves before the
// build completes, cancel is invoked so the build stops at its next
// round/bucket/shard barrier instead of burning cores for nobody. lastUsed
// is the server's logical clock at the entry's most recent touch, driving
// LRU eviction; completed entries are recognized by their closed ready
// channel. val/err/cost are written under s.mu before ready closes and
// read only after it is closed.
type entry struct {
	ready    chan struct{}
	val      any
	err      error
	cost     *ArtifactCost
	lastUsed atomic.Int64

	// trace is the build's lifecycle trace (nil for snapshot installs,
	// whose artifact was never built here).
	trace *buildTrace

	// Guarded by Server.mu.
	waiters int
	cancel  context.CancelFunc // cancels the detached build; nil once irrelevant
}

func (e *entry) completed() bool {
	select {
	case <-e.ready:
		return true
	default:
		return false
	}
}

// Server is the query service. Create with New, register graphs (and
// optionally snapshot artifacts), then serve via Handler.
type Server struct {
	cfg   Config
	fast  *lane        // fast-lane admission: the request worker pool
	clock atomic.Int64 // logical time for LRU bookkeeping

	// buildSem bounds the number of builds executing engines at once to
	// Config.Workers. Request slots (the fast lane) no longer cover
	// builds end to end — a waiter parks its slot while blocked and
	// frees it the moment it disconnects — so without this bound a
	// disconnect loop could stack cancelled "zombie" builds, each still
	// unwinding to its next barrier with GOMAXPROCS-wide engines, beside
	// the fresh ones. Queued builds whose context is cancelled leave the
	// queue without ever running.
	buildSem chan struct{}

	// slowPending counts builds admitted to the slow lane that have not
	// finished (queued for a pool slot or running). The slow lane sheds
	// new builds when it reaches cap(buildSem)+SlowLaneQueue.
	slowPending atomic.Int64

	// breaker is the per-key build circuit breaker (breaker.go).
	breaker *breaker

	mu       sync.RWMutex
	graphs   map[string]*graph.Graph
	cache    map[Key]*entry
	draining bool // set by Shutdown: new builds are rejected

	// buildWG tracks the detached build goroutines so Shutdown can wait
	// for them after cancelling their contexts. Add only happens under
	// s.mu with draining false, so it cannot race the Wait in Shutdown.
	buildWG sync.WaitGroup

	met *metrics

	// Request-id minting (middleware.go).
	idBase string
	reqSeq atomic.Int64

	// Build tracing (trace.go): in-flight traces by build id, plus a
	// bounded ring of completed ones, newest first.
	traceMu     sync.Mutex
	nextBuildID atomic.Int64
	building    map[int64]*buildTrace
	recent      []BuildTraceInfo
}

// New returns a Server with an empty graph registry.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxArtifacts <= 0 {
		cfg.MaxArtifacts = 128
	}
	switch {
	case cfg.FastLaneQueue == 0:
		cfg.FastLaneQueue = 256
	case cfg.FastLaneQueue < 0:
		cfg.FastLaneQueue = 0
	}
	switch {
	case cfg.SlowLaneQueue == 0:
		cfg.SlowLaneQueue = 4 * cfg.Workers
	case cfg.SlowLaneQueue < 0:
		cfg.SlowLaneQueue = 0
	}
	s := &Server{
		cfg:      cfg,
		fast:     newLane(laneFast, cfg.Workers, cfg.FastLaneQueue),
		buildSem: make(chan struct{}, cfg.Workers),
		breaker:  newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		graphs:   make(map[string]*graph.Graph),
		cache:    make(map[Key]*entry),
		met:      newMetrics(),
		idBase:   fmt.Sprintf("%08x", time.Now().UnixNano()&0xffffffff),
		building: make(map[int64]*buildTrace),
	}
	s.registerServerGauges()
	return s
}

// RegisterGraph makes g queryable under the given name, replacing any
// previous registration. Artifacts cached for an earlier graph of the same
// name are dropped (they answer for the old topology).
func (s *Server) RegisterGraph(name string, g *graph.Graph) error {
	if name == "" {
		return errors.New("serve: empty graph name")
	}
	if g == nil || g.NumNodes() == 0 {
		return errors.New("serve: nil or empty graph")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.graphs[name]; exists {
		for k, e := range s.cache {
			if k.Graph == name {
				if !e.completed() && e.cancel != nil {
					// An artifact under construction answers for the old
					// topology: cancel it so it cannot outlive its graph —
					// and so Shutdown, which cancels via cache membership,
					// is never blind to a still-running pruned build. Its
					// waiters get an error and retry against the new graph.
					e.cancel()
				}
				delete(s.cache, k)
			}
		}
	}
	s.graphs[name] = g
	// The breaker's failure records belong to the old topology; a fresh
	// graph starts with a clean slate. (breaker.mu nests inside s.mu
	// here; the breaker never takes s.mu, so the order cannot invert.)
	s.breaker.clearGraph(name)
	return nil
}

// InstallSnapshot registers the artifact's graph under its snapshot name
// and, if the artifact carries an oracle, seeds the cache with it — a
// restart path that skips the oracle build entirely.
func (s *Server) InstallSnapshot(a *snapshot.Artifact) error {
	if a == nil || a.Graph == nil {
		return errors.New("serve: nil snapshot artifact")
	}
	name := a.Meta.GraphName
	if name == "" {
		return errors.New("serve: snapshot has no graph name")
	}
	if err := s.RegisterGraph(name, a.Graph); err != nil {
		return err
	}
	if a.Oracle == nil {
		return nil
	}
	algo := a.Meta.Algorithm
	if algo == "" {
		algo = "cluster"
	}
	key := Key{Graph: name, Kind: "oracle", Tau: a.Meta.Tau, Seed: a.Meta.Seed, Algorithm: algo}
	e := &entry{ready: make(chan struct{}), val: a.Oracle}
	e.cost = costFor(key, "snapshot", 0, a.Oracle)
	e.lastUsed.Store(s.clock.Add(1))
	close(e.ready)
	s.mu.Lock()
	// Honor MaxArtifacts exactly like a build does: replacing an existing
	// key needs no room, a new key must find (or evict) a free slot. If
	// every slot holds an in-flight build there is nothing evictable and
	// the install is rejected rather than silently growing the cache past
	// its bound.
	if _, exists := s.cache[key]; !exists && len(s.cache) >= s.cfg.MaxArtifacts {
		if !s.evictLRULocked() {
			s.mu.Unlock()
			return fmt.Errorf("%w: cannot install snapshot %v", ErrCacheFull, key)
		}
	}
	s.cache[key] = e
	s.mu.Unlock()
	s.met.installs.Add(1)
	return nil
}

// ErrUnknownGraph is wrapped by Graph for unregistered names; the HTTP
// layer maps it to 404.
var ErrUnknownGraph = errors.New("serve: unknown graph")

// Graph returns the registered graph, or an error (wrapping
// ErrUnknownGraph) naming the known graphs.
func (s *Server) Graph(name string) (*graph.Graph, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if g, ok := s.graphs[name]; ok {
		return g, nil
	}
	return nil, fmt.Errorf("%w %q (have %v)", ErrUnknownGraph, name, s.graphNamesLocked())
}

// GraphNames lists the registered graphs in sorted order.
func (s *Server) GraphNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.graphNamesLocked()
}

func (s *Server) graphNamesLocked() []string {
	names := make([]string, 0, len(s.graphs))
	for name := range s.graphs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// acquire takes a fast-lane worker slot, honouring ctx cancellation
// while queued and shedding when the lane's bounded queue is full.
func (s *Server) acquire(ctx context.Context) error { return s.fast.acquire(ctx) }

func (s *Server) release() { s.fast.release() }

// artifact returns the cached value for key, building it with build on
// first use. Exactly one build runs per key however many requests race;
// the rest join as waiters and block until it completes or their own ctx
// is cancelled. The build runs detached, on its own goroutine under its
// own context passed to the build closure: a waiter that leaves releases
// only itself (its worker slot frees immediately), and when the LAST
// waiter leaves the build's context is cancelled so the engines stop at
// their next barrier. A build that fails — including one that returns
// ctx.Err() after such a cancellation — is not cached: the entry is
// removed before ready closes, so the key is immediately retryable.
func (s *Server) artifact(ctx context.Context, key Key, build func(ctx context.Context) (any, error)) (any, error) {
	// Fast path: completed entries (the steady state of the query
	// workload) only take the read lock, so concurrent queries never
	// serialize on s.mu.
	ri := requestInfoFrom(ctx)
	if ri != nil {
		ri.artifactKey = key.String()
	}
	s.mu.RLock()
	e, ok := s.cache[key]
	s.mu.RUnlock()
	if ok && e.completed() {
		e.lastUsed.Store(s.clock.Add(1))
		s.met.hits.Add(1)
		if ri != nil {
			ri.cache = "hit"
		}
		return e.val, e.err
	}

	s.mu.Lock()
	e, ok = s.cache[key]
	switch {
	case !ok:
		// Absent under the write lock: start the detached build. The
		// build context is independent of this request's ctx — it is
		// cancelled by the last departing waiter, not the first.
		if s.draining {
			s.mu.Unlock()
			return nil, ErrShuttingDown
		}
		// Gate the new build: the key's circuit breaker first (a poisoned
		// key answers a fast 503 without touching the slow lane), then
		// slow-lane admission (shed with Retry-After past the pending-build
		// bound). Joins on in-flight builds never reach this path.
		probe, berr := s.breaker.allow(key, time.Now())
		if berr != nil {
			s.mu.Unlock()
			s.met.breakerRejected.Inc()
			return nil, berr
		}
		if probe {
			s.met.breakerProbes.Inc()
		}
		if err := s.admitBuild(key.Kind); err != nil {
			s.mu.Unlock()
			// A granted probe that never became a build must not jam the
			// breaker half-open forever.
			s.breaker.cancelled(key)
			return nil, err
		}
		if len(s.cache) >= s.cfg.MaxArtifacts {
			if !s.evictLRULocked() {
				s.mu.Unlock()
				// Undo the admission: this build will never reach
				// finishBuild, where the slow lane is normally repaid.
				s.slowPending.Add(-1)
				s.breaker.cancelled(key)
				return nil, ErrCacheFull
			}
		}
		tr := s.startTrace(key)
		tr.setWaiters(1)
		//lint:allow background deliberate detached root: builds outlive the requesting waiter and are cancelled by the server (PR 5 design)
		bctx, cancel := context.WithCancel(withTrace(context.Background(), tr))
		e = &entry{ready: make(chan struct{}), cancel: cancel, waiters: 1, trace: tr}
		e.lastUsed.Store(s.clock.Add(1))
		s.cache[key] = e
		s.buildWG.Add(1)
		go s.runBuild(bctx, key, e, build)
		s.mu.Unlock()
		if ri != nil {
			ri.cache = "miss"
		}
		return s.await(ctx, key, e, false)
	case e.completed():
		// Completed between the two lock acquisitions.
		e.lastUsed.Store(s.clock.Add(1))
		s.mu.Unlock()
		s.met.hits.Add(1)
		if ri != nil {
			ri.cache = "hit"
		}
		return e.val, e.err
	default:
		// In flight: join as a waiter.
		e.waiters++
		if e.trace != nil {
			e.trace.setWaiters(e.waiters)
		}
		e.lastUsed.Store(s.clock.Add(1))
		s.mu.Unlock()
		if ri != nil {
			ri.cache = "join"
		}
		return s.await(ctx, key, e, true)
	}
}

// await blocks until e's build completes or ctx is cancelled, maintaining
// the waiter refcount either way. joined says this request did not start
// the build (a join counts as a cache hit, matching the pre-detached
// accounting).
//
// A request that reaches here holds a fast-lane slot (when it came
// through the HTTP layer) and is about to block for seconds: it PARKS
// the slot — releases it for the duration of the wait and re-acquires
// it before touching the value — so warm traffic keeps flowing through
// the fast lane however many requests are camped on cold builds, even
// at Workers=1. Direct API callers (tests, the daemon's bootstrap) have
// no slot and skip the juggling.
func (s *Server) await(ctx context.Context, key Key, e *entry, joined bool) (any, error) {
	var slot *laneSlot
	if ri := requestInfoFrom(ctx); ri != nil {
		slot = ri.slot
	}
	if slot != nil {
		slot.park()
	}
	select {
	case <-e.ready:
		s.mu.Lock()
		e.waiters--
		if e.trace != nil {
			e.trace.setWaiters(e.waiters)
		}
		s.mu.Unlock()
		if slot != nil {
			if err := slot.unpark(ctx); err != nil {
				// Client gone while re-entering the fast lane: the slot
				// stays unheld, so the deferred release up the stack no-ops.
				return nil, err
			}
		}
		if e.err != nil {
			return nil, e.err
		}
		if joined {
			s.met.hits.Add(1)
		}
		return e.val, nil
	case <-ctx.Done():
		s.mu.Lock()
		e.waiters--
		if e.trace != nil {
			e.trace.setWaiters(e.waiters)
		}
		if e.waiters == 0 && !e.completed() && e.cancel != nil {
			// Last waiter gone mid-build: stop the engines, and drop the
			// doomed entry NOW rather than when the build unwinds at its
			// next barrier. The key is retryable immediately, and a
			// request arriving in the unwind window starts a fresh build
			// instead of joining this one and inheriting its
			// context.Canceled as a spurious 503.
			e.cancel()
			if cur, ok := s.cache[key]; ok && cur == e {
				delete(s.cache, key)
			}
		}
		s.mu.Unlock()
		return nil, ctx.Err()
	}
}

// evictLRULocked removes the least-recently-used completed entry, making
// room for a new build. In-flight builds are never evicted (waiters hold
// references to them). Returns false if nothing was evictable. Caller
// holds s.mu.
func (s *Server) evictLRULocked() bool {
	var (
		victim    Key
		victimAge int64
		found     bool
	)
	for k, e := range s.cache {
		if !e.completed() {
			continue
		}
		if age := e.lastUsed.Load(); !found || age < victimAge {
			victim, victimAge, found = k, age, true
		}
	}
	if found {
		delete(s.cache, victim)
		s.met.evictions.Add(1)
	}
	return found
}

// artifactStats digs the substrate cost out of a cached artifact, for
// build-cost reporting: the decomposition's traversal stats, plus — for
// oracles — the delta-stepping cost of the quotient APSP build, so the
// weighted work is reported as honestly as the unweighted rounds. Unknown
// artifact kinds report nil (no cost line).
func artifactStats(val any) *bsp.Stats {
	switch v := val.(type) {
	case *core.Oracle:
		st := v.Clustering().Stats
		st.Add(v.APSPStats())
		return &st
	case *core.DiameterResult:
		return &v.Clustering.Stats
	case *core.KCenterResult:
		return &v.Clustering.Stats
	case *MRDiameterResult:
		return &v.Stats
	}
	return nil
}

func costFor(key Key, source string, millis float64, val any) *ArtifactCost {
	st := artifactStats(val)
	if st == nil {
		return nil
	}
	c := &ArtifactCost{
		Key:         key.String(),
		Source:      source,
		BuildMillis: millis,
		Rounds:      st.Rounds,
		PullRounds:  st.PullRounds,
		Messages:    st.Messages,
		MaxFrontier: st.MaxFrontier,
		Relaxations: st.Relaxations,
		Buckets:     st.Buckets,
	}
	if m, ok := val.(*MRDiameterResult); ok {
		c.MRRounds = m.Rounds
		c.MRShards = m.Shards
		c.MRPairsShuffled = m.PairsShuffled
		c.MRMaxReducer = m.MaxReducerInput
		c.MRRoundStats = m.RoundStats
	}
	return c
}

// runBuild executes one detached build. It publishes the result (or
// removes the entry on failure, making the key retryable) and closes ready
// under s.mu, so waiter bookkeeping in await can never observe a
// half-published entry.
func (s *Server) runBuild(ctx context.Context, key Key, e *entry, build func(ctx context.Context) (any, error)) {
	defer s.buildWG.Done()
	defer e.cancel() // release the context's resources in every outcome
	s.met.misses.Add(1)

	// Take a build slot before touching the engines, so at most Workers
	// builds execute concurrently however many keys are minted. A build
	// cancelled while queued never runs at all.
	select {
	case s.buildSem <- struct{}{}:
	case <-ctx.Done():
		s.finishBuild(key, e, nil, ctx.Err(), 0)
		return
	}
	e.trace.markRunning()
	// Config.BuildTimeout bounds the RUNNING phase only: the clock starts
	// at slot acquisition, never while the build is queued for the pool,
	// so pool contention cannot spend a build's deadline for it.
	runCtx, cancelRun := ctx, context.CancelFunc(func() {})
	if s.cfg.BuildTimeout > 0 {
		runCtx, cancelRun = context.WithTimeout(ctx, s.cfg.BuildTimeout)
	}
	stop := s.met.buildTimer()
	var panicked bool
	val, err := func() (val any, err error) {
		// On the old request-goroutine builds, net/http's per-connection
		// recover contained a panicking build to one failed request; a
		// detached goroutine has no such net, so restore the containment
		// here — the panic becomes a failed (retryable) build, not a
		// daemon crash. The fault injector runs inside the same net, so an
		// injected panic exercises exactly this containment.
		defer func() {
			if r := recover(); r != nil {
				panicked = true
				val, err = nil, fmt.Errorf("serve: build %v panicked: %v", key, r)
			}
		}()
		if fi := s.cfg.FaultInjector; fi != nil {
			if ferr := fi.BuildStarted(runCtx, key); ferr != nil {
				return nil, ferr
			}
		}
		return build(runCtx)
	}()
	elapsed := stop()
	s.met.buildLatency.With(key.Kind).Observe(elapsed.Seconds())
	<-s.buildSem
	if err != nil && errors.Is(runCtx.Err(), context.DeadlineExceeded) && ctx.Err() == nil {
		// The server-side build deadline fired — distinguishable from a
		// waiter cancellation because the outer (waiter-driven) context is
		// still live. Normalize the error so waiters see DeadlineExceeded
		// (mapped to 504) however the engines dressed the cancellation up.
		e.trace.markTimedOut()
		err = fmt.Errorf("serve: build %v exceeded build timeout %s: %w",
			key, s.cfg.BuildTimeout, context.DeadlineExceeded)
	}
	cancelRun()
	if panicked {
		e.trace.markPanicked()
	}
	s.finishBuild(key, e, val, err, elapsed)
}

// finishBuild publishes a build outcome: the result (or the removal of the
// failed entry, making the key retryable) and the ready close happen under
// one critical section, so waiter bookkeeping never sees a half-published
// entry.
func (s *Server) finishBuild(key Key, e *entry, val any, err error, elapsed time.Duration) {
	// Resolve the terminal trace state before publishing, so a waiter that
	// wakes on ready and immediately scrapes /builds sees the final state.
	// Timed-out is checked before the cancellation catch-all: its
	// normalized error wraps DeadlineExceeded too.
	state := BuildDone
	switch {
	case err == nil:
	case e.trace.didPanic():
		state = BuildPanicked
	case e.trace.didTimeout():
		state = BuildTimedOut
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		state = BuildCancelled
	default:
		state = BuildFailed
	}
	errMsg := ""
	if err != nil {
		errMsg = err.Error()
	}
	e.trace.finish(state, errMsg)

	// Repay the slow lane (every admitted build reaches here exactly once)
	// and feed the breaker: a good build closes the key's breaker, a
	// cancellation says nothing about its health, and every other terminal
	// state counts toward tripping it.
	s.slowPending.Add(-1)
	switch state {
	case BuildDone:
		s.breaker.success(key)
	case BuildCancelled:
		s.breaker.cancelled(key)
	default:
		if state == BuildTimedOut {
			s.met.timedOut.Inc()
		}
		if s.breaker.failure(key, time.Now()) {
			s.met.breakerTrips.Inc()
		}
	}

	s.mu.Lock()
	e.val, e.err = val, err
	if err == nil {
		millis := float64(elapsed.Nanoseconds()) / 1e6
		e.cost = costFor(key, "build", millis, val)
		if e.cost != nil {
			tr := e.trace.info()
			e.cost.Trace = &tr
		}
	} else {
		if state == BuildCancelled {
			s.met.cancelled.Add(1)
		}
		// Only drop the entry if it is still ours: RegisterGraph may have
		// already replaced the graph and pruned the key.
		if cur, ok := s.cache[key]; ok && cur == e {
			delete(s.cache, key)
		}
	}
	close(e.ready)
	s.mu.Unlock()
	s.endTrace(e.trace)
}

// Shutdown cancels every in-flight build, rejects builds requested from
// then on with ErrShuttingDown, and waits for the detached build
// goroutines to drain (or ctx to expire). Completed artifacts remain
// queryable throughout, so it is safe to call before draining the HTTP
// listener — late requests either hit the cache or fail fast instead of
// starting builds nobody will wait out.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	for _, e := range s.cache {
		if !e.completed() && e.cancel != nil {
			e.cancel()
		}
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.buildWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: builds still draining at shutdown deadline: %w", ctx.Err())
	}
}

// resolveTau resolves a request's granularity the same way for every
// artifact family: non-positive falls back to Config.DefaultTau, then to
// the family's paper default for the graph's size. Every key-minting path
// (oracle, diameter, mr-diameter) must key on the resolved value, so a
// parameter-less request and an explicit request for the default share one
// cache slot and /stats reports the parameter the build actually used.
func (s *Server) resolveTau(tau int, g *graph.Graph, paperDefault func(n int) int) int {
	if tau <= 0 {
		tau = s.cfg.DefaultTau
	}
	if tau <= 0 {
		tau = paperDefault(g.NumNodes())
	}
	return tau
}

// oracleKey resolves the cache key for an oracle request: tau is resolved
// via resolveTau (Config.DefaultTau, then core.DefaultOracleTau) and the
// algorithm name canonicalized. The same resolution feeds Oracle and
// SnapshotArtifact, so a persisted Meta always round-trips to the key
// parameter-less requests hit after a warm restart.
func (s *Server) oracleKey(name string, tau int, seed uint64, algorithm string) (Key, *graph.Graph, bool, error) {
	g, err := s.Graph(name)
	if err != nil {
		return Key{}, nil, false, err
	}
	tau = s.resolveTau(tau, g, core.DefaultOracleTau)
	useCluster2, err := parseAlgorithm(algorithm)
	if err != nil {
		return Key{}, nil, false, err
	}
	key := Key{Graph: name, Kind: "oracle", Tau: tau, Seed: seed, Algorithm: canonicalAlgorithm(useCluster2)}
	return key, g, useCluster2, nil
}

// Oracle returns the distance oracle for the key's graph and build
// parameters, building and caching it on first use. tau <= 0 selects
// Config.DefaultTau, then the paper default.
func (s *Server) Oracle(ctx context.Context, name string, tau int, seed uint64, algorithm string) (*core.Oracle, error) {
	key, _, useCluster2, err := s.oracleKey(name, tau, seed, algorithm)
	if err != nil {
		return nil, err
	}
	v, err := s.artifact(ctx, key, func(bctx context.Context) (any, error) {
		// Re-fetch inside the build: a RegisterGraph swap between key
		// resolution and here must not bake a stale topology into the
		// cache.
		g, err := s.Graph(key.Graph)
		if err != nil {
			return nil, err
		}
		return core.BuildOracle(bctx, g, key.Tau, useCluster2, s.buildOptions(bctx, seed))
	})
	if err != nil {
		return nil, err
	}
	return v.(*core.Oracle), nil
}

// Diameter returns the cached diameter bounds for the key's graph. tau is
// resolved (Config.DefaultTau, then core.DefaultDiameterTau) before the
// key is minted, exactly like the oracle path.
func (s *Server) Diameter(ctx context.Context, name string, tau int, seed uint64, algorithm string) (*core.DiameterResult, error) {
	g, err := s.Graph(name)
	if err != nil {
		return nil, err
	}
	tau = s.resolveTau(tau, g, core.DefaultDiameterTau)
	useCluster2, err := parseAlgorithm(algorithm)
	if err != nil {
		return nil, err
	}
	key := Key{Graph: name, Kind: "diameter", Tau: tau, Seed: seed, Algorithm: canonicalAlgorithm(useCluster2)}
	v, err := s.artifact(ctx, key, func(bctx context.Context) (any, error) {
		g, err := s.Graph(key.Graph)
		if err != nil {
			return nil, err
		}
		return core.ApproxDiameter(bctx, g, core.DiameterOptions{
			Options:     s.buildOptions(bctx, seed),
			Tau:         key.Tau,
			UseCluster2: useCluster2,
		})
	})
	if err != nil {
		return nil, err
	}
	return v.(*core.DiameterResult), nil
}

// KCenter returns the cached k-center solution for the key's graph.
func (s *Server) KCenter(ctx context.Context, name string, k int, seed uint64) (*core.KCenterResult, error) {
	if _, err := s.Graph(name); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, errors.New("serve: k must be >= 1")
	}
	key := Key{Graph: name, Kind: "kcenter", Tau: k, Seed: seed, Algorithm: "cluster"}
	v, err := s.artifact(ctx, key, func(bctx context.Context) (any, error) {
		g, err := s.Graph(key.Graph)
		if err != nil {
			return nil, err
		}
		return core.KCenter(bctx, g, k, s.buildOptions(bctx, seed))
	})
	if err != nil {
		return nil, err
	}
	return v.(*core.KCenterResult), nil
}

// CachedOracleArtifact assembles the persistable artifact for the resolved
// oracle key only if that oracle is already cached and completed; ok is
// false otherwise. The daemon's shutdown path uses it to persist a lazily
// built oracle without triggering a build while draining.
func (s *Server) CachedOracleArtifact(name string, tau int, seed uint64, algorithm string) (art *snapshot.Artifact, ok bool, err error) {
	key, _, _, err := s.oracleKey(name, tau, seed, algorithm)
	if err != nil {
		return nil, false, err
	}
	s.mu.RLock()
	e, found := s.cache[key]
	s.mu.RUnlock()
	if !found || !e.completed() || e.err != nil {
		return nil, false, nil
	}
	o, isOracle := e.val.(*core.Oracle)
	if !isOracle {
		return nil, false, nil
	}
	return oracleArtifact(key, o), true, nil
}

// oracleArtifact assembles the persistable snapshot for a resolved oracle
// key — the one shape every persistence path writes, so a persisted Meta
// always round-trips to the cache slot InstallSnapshot re-seeds.
func oracleArtifact(key Key, o *core.Oracle) *snapshot.Artifact {
	return &snapshot.Artifact{
		Meta: snapshot.Meta{
			GraphName: key.Graph,
			Tau:       key.Tau,
			Seed:      key.Seed,
			Algorithm: key.Algorithm,
		},
		Graph:  o.Clustering().G,
		Oracle: o,
	}
}

// SnapshotArtifact assembles the persistable artifact for an oracle key,
// building the oracle if it is not cached yet. The daemon uses this to
// write its snapshot after the first build; Meta carries the resolved key
// so InstallSnapshot re-seeds exactly the slot future requests look up.
func (s *Server) SnapshotArtifact(ctx context.Context, name string, tau int, seed uint64, algorithm string) (*snapshot.Artifact, error) {
	key, _, _, err := s.oracleKey(name, tau, seed, algorithm)
	if err != nil {
		return nil, err
	}
	o, err := s.Oracle(ctx, name, key.Tau, seed, key.Algorithm)
	if err != nil {
		return nil, err
	}
	return oracleArtifact(key, o), nil
}

// buildOptions assembles the core.Options for a build running under bctx:
// the configured parallelism plus the observer that feeds the server-wide
// engine counters and the build's trace (carried on bctx by artifact).
func (s *Server) buildOptions(bctx context.Context, seed uint64) core.Options {
	return core.Options{
		Seed:     seed,
		Workers:  s.cfg.BuildWorkers,
		Observer: s.buildObserver(traceFrom(bctx)),
	}
}

func parseAlgorithm(algorithm string) (useCluster2 bool, err error) {
	switch algorithm {
	case "", "cluster":
		return false, nil
	case "cluster2":
		return true, nil
	default:
		return false, fmt.Errorf("serve: unknown algorithm %q (want cluster or cluster2)", algorithm)
	}
}

func canonicalAlgorithm(useCluster2 bool) string {
	if useCluster2 {
		return "cluster2"
	}
	return "cluster"
}
