package serve

// batch.go is the zero-allocation, batch-first query path: POST
// /distance-batch answers up to MaxBatchPairs (u, v) pairs per request
// straight off the oracle's flat tables. Three encodings share one
// pipeline:
//
//   - JSON (Content-Type: application/json): body {"pairs":[[u,v],...]},
//     response {"graph":...,"pairs":N,"distances":[...]} with -1 for
//     unreachable pairs, matching the point endpoint's convention.
//   - Dense binary frames (Content-Type: application/x-reprod-pairs):
//     request "RPB1" | count u32 | count × (u i32, v i32); response
//     (Content-Type: application/x-reprod-dists) "RPD1" | count u32 |
//     count × dist i64, everything little-endian, -1 for unreachable.
//   - NDJSON streaming (Accept: application/x-ndjson, either request
//     encoding): one {"u":U,"v":V,"distance":D} object per line, flushed
//     in bounded chunks, for result sets too big to buffer.
//
// Every id is validated before the artifact lookup — the same
// reject-before-build rule the point endpoints follow, so a garbage batch
// can never trigger (or churn a cache slot on) a multi-second
// decomposition. All request-lifetime scratch (body buffer, decoded
// pairs, distances, encode buffer) lives in a sync.Pool and is reused
// across requests: the warm path allocates nothing per pair, pinned by
// the AllocsPerRun regression tests in batch_test.go.

import (
	"encoding/binary"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"repro/internal/graph"
)

// MaxBatchPairs bounds one /distance-batch request (~64k pairs: 512 KiB
// of binary request, 512 KiB of binary response). Bigger workloads split
// into multiple requests or switch to the NDJSON streaming variant.
const MaxBatchPairs = 1 << 16

// maxBatchBody bounds the raw request body before decoding: the JSON
// encoding of MaxBatchPairs pairs of 10-digit ids comfortably fits.
const maxBatchBody = 4 << 20

// Batch media types. JSON requests use the standard application/json.
const (
	ctBatchPairs = "application/x-reprod-pairs" // binary request frame
	ctBatchDists = "application/x-reprod-dists" // binary response frame
	ctNDJSON     = "application/x-ndjson"       // streaming response
)

// Binary frame magics: 4 bytes leading the request and response frames,
// so a client that posts the wrong encoding fails loudly instead of
// having its byte stream reinterpreted.
var (
	pairsMagic = [4]byte{'R', 'P', 'B', '1'}
	distsMagic = [4]byte{'R', 'P', 'D', '1'}
)

// batchScratch is the per-request working set, pooled and reused: the
// warm batch path reads the body, decodes pairs, answers, and encodes the
// response entirely inside these four buffers.
type batchScratch struct {
	body  []byte            // raw request body
	pairs [][2]graph.NodeID // decoded (u, v) pairs
	dists []int64           // per-pair answers
	out   []byte            // encoded response
}

var batchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// handleDistanceBatch is the endpoint body, run under wrapRaw (worker
// slot, error mapping) and the instrumentation middleware (request id,
// status counting, latency). It returns an error only before anything has
// been written, so the error mapper always produces a clean JSON body.
func (s *Server) handleDistanceBatch(w http.ResponseWriter, r *http.Request) error {
	if r.Method != http.MethodPost {
		return &httpError{http.StatusMethodNotAllowed, "distance-batch requires POST"}
	}
	p, err := s.parseBuildParams(r)
	if err != nil {
		return err
	}
	ct := r.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = strings.TrimSpace(ct[:i])
	}
	binaryReq := ct == ctBatchPairs
	if !binaryReq && ct != "" && ct != "application/json" {
		return &httpError{http.StatusUnsupportedMediaType,
			"distance-batch accepts application/json or " + ctBatchPairs}
	}

	sc := batchPool.Get().(*batchScratch)
	defer batchPool.Put(sc)
	sc.body, err = readBodyInto(sc.body, r.Body, maxBatchBody)
	if err != nil {
		return err
	}
	var maxID graph.NodeID
	if binaryReq {
		sc.pairs, maxID, err = decodePairsBinary(sc.pairs[:0], sc.body)
	} else {
		sc.pairs, maxID, err = decodePairsJSON(sc.pairs[:0], sc.body)
	}
	if err != nil {
		return err
	}
	pairs := sc.pairs
	if len(pairs) == 0 {
		return badRequest("empty batch")
	}

	// Validate every id before the artifact lookup (and possible build),
	// then re-validate against the oracle's own graph: RegisterGraph may
	// swap the topology between the two. All ids are known non-negative
	// after decoding, so both checks are one comparison against the
	// batch's maximum; the failure path scans to name the offending pair.
	if g, err := s.Graph(p.graph); err != nil {
		return err
	} else if err := checkBatchRange(pairs, maxID, g); err != nil {
		return err
	}
	o, err := s.Oracle(r.Context(), p.graph, p.tau, p.seed, p.algo)
	if err != nil {
		return err
	}
	if err := checkBatchRange(pairs, maxID, o.Clustering().G); err != nil {
		return err
	}

	if cap(sc.dists) < len(pairs) {
		sc.dists = make([]int64, len(pairs))
	}
	dists := sc.dists[:len(pairs)]
	o.QueryBatchInto(pairs, dists)
	s.met.batchPairs.Add(int64(len(pairs)))
	s.met.batchSize.Observe(float64(len(pairs)))

	switch {
	case strings.Contains(r.Header.Get("Accept"), ctNDJSON):
		writeBatchNDJSON(w, sc, pairs, dists)
	case binaryReq:
		writeBatchBinary(w, sc, dists)
	default:
		writeBatchJSON(w, sc, p.graph, dists)
	}
	return nil
}

// readBodyInto reads r into dst (reusing its capacity) up to max bytes,
// returning 413 beyond that.
func readBodyInto(dst []byte, r io.Reader, max int) ([]byte, error) {
	dst = dst[:0]
	if cap(dst) == 0 {
		dst = make([]byte, 0, 64<<10)
	}
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if len(dst) > max {
			return dst, &httpError{http.StatusRequestEntityTooLarge,
				"batch body exceeds " + strconv.Itoa(max) + " bytes"}
		}
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, badRequest("reading batch body: %v", err)
		}
	}
}

// decodePairsBinary parses the dense request frame into dst, returning
// the decoded pairs and the largest id seen. Negative ids and size
// mismatches are rejected here, before any artifact work.
//
//lint:hotpath
func decodePairsBinary(dst [][2]graph.NodeID, body []byte) ([][2]graph.NodeID, graph.NodeID, error) {
	if len(body) < 8 || body[0] != pairsMagic[0] || body[1] != pairsMagic[1] ||
		body[2] != pairsMagic[2] || body[3] != pairsMagic[3] {
		return dst, 0, badRequest("bad batch frame: want %q magic + u32 count header", pairsMagic[:])
	}
	count := int(binary.LittleEndian.Uint32(body[4:8]))
	if count > MaxBatchPairs {
		return dst, 0, &httpError{http.StatusRequestEntityTooLarge,
			"batch of " + strconv.Itoa(count) + " pairs exceeds the " + strconv.Itoa(MaxBatchPairs) + "-pair limit"}
	}
	if len(body) != 8+8*count {
		return dst, 0, badRequest("batch frame length %d does not match %d pairs (want %d)",
			len(body), count, 8+8*count)
	}
	if cap(dst) < count {
		//lint:allow alloc pool warm-up: the first batch per size class grows the pooled pairs buffer; the steady state reuses it
		dst = make([][2]graph.NodeID, 0, count)
	}
	dst = dst[:count]
	var maxID, orAcc graph.NodeID
	payload := body[8:]
	for i := 0; i < count; i++ {
		u := graph.NodeID(binary.LittleEndian.Uint32(payload[8*i:]))
		v := graph.NodeID(binary.LittleEndian.Uint32(payload[8*i+4:]))
		orAcc |= u | v
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		dst[i] = [2]graph.NodeID{u, v}
	}
	if orAcc < 0 {
		return dst, 0, firstNegativePair(dst)
	}
	return dst, maxID, nil
}

// decodePairsJSON parses {"pairs":[[u,v],...]} into dst (encoding/json
// reuses dst's backing array, so the warm path does not grow it).
func decodePairsJSON(dst [][2]graph.NodeID, body []byte) ([][2]graph.NodeID, graph.NodeID, error) {
	var req struct {
		Pairs [][2]graph.NodeID `json:"pairs"`
	}
	req.Pairs = dst
	if err := json.Unmarshal(body, &req); err != nil {
		return dst, 0, badRequest("bad batch JSON: %v", err)
	}
	dst = req.Pairs
	if len(dst) > MaxBatchPairs {
		return dst, 0, &httpError{http.StatusRequestEntityTooLarge,
			"batch of " + strconv.Itoa(len(dst)) + " pairs exceeds the " + strconv.Itoa(MaxBatchPairs) + "-pair limit"}
	}
	var maxID, orAcc graph.NodeID
	for _, p := range dst {
		orAcc |= p[0] | p[1]
		if p[0] > maxID {
			maxID = p[0]
		}
		if p[1] > maxID {
			maxID = p[1]
		}
	}
	if orAcc < 0 {
		return dst, 0, firstNegativePair(dst)
	}
	return dst, maxID, nil
}

// firstNegativePair names the first pair with a negative id — the slow
// path of the sign check the decoders accumulate bitwise.
func firstNegativePair(pairs [][2]graph.NodeID) error {
	for i, p := range pairs {
		if p[0] < 0 || p[1] < 0 {
			return badRequest("pair %d: negative node id (%d,%d)", i, p[0], p[1])
		}
	}
	return badRequest("negative node id in batch")
}

// checkBatchRange enforces the pre-build validation rule for batches: one
// comparison against the batch maximum on the happy path, a scan naming
// the first offending pair on failure.
func checkBatchRange(pairs [][2]graph.NodeID, maxID graph.NodeID, g *graph.Graph) error {
	n := g.NumNodes()
	if int(maxID) < n {
		return nil
	}
	for i, p := range pairs {
		if int(p[0]) >= n {
			return badRequest("pair %d: node u=%d out of range [0, %d)", i, p[0], n)
		}
		if int(p[1]) >= n {
			return badRequest("pair %d: node v=%d out of range [0, %d)", i, p[1], n)
		}
	}
	return badRequest("node id out of range [0, %d)", n)
}

// encodeDistsFrame encodes the RPD1 response frame ("RPD1" | count u32 |
// count × i64) into buf, growing it only when the pooled buffer is too
// small for this size class. Unreachable pairs encode as -1. Split out of
// writeBatchBinary so the pure encode loop is a provable hot path (the
// ResponseWriter interface calls stay in the caller).
//
//lint:hotpath
func encodeDistsFrame(buf []byte, dists []int64) []byte {
	need := 8 + 8*len(dists)
	if cap(buf) < need {
		//lint:allow alloc pool warm-up: the first response per size class grows the pooled buffer; the steady state reuses it
		buf = make([]byte, 0, need)
	}
	out := buf[:need]
	copy(out, distsMagic[:])
	binary.LittleEndian.PutUint32(out[4:8], uint32(len(dists)))
	for i, d := range dists {
		if d == graph.InfDist {
			d = -1
		}
		binary.LittleEndian.PutUint64(out[8+8*i:], uint64(d))
	}
	return out
}

// writeBatchBinary answers with the dense response frame, encoding into
// the pooled buffer and writing once.
func writeBatchBinary(w http.ResponseWriter, sc *batchScratch, dists []int64) {
	sc.out = encodeDistsFrame(sc.out, dists)
	w.Header().Set("Content-Type", ctBatchDists)
	w.Header().Set("Content-Length", strconv.Itoa(len(sc.out)))
	w.Write(sc.out)
}

// writeBatchJSON answers {"graph":...,"pairs":N,"distances":[...]},
// hand-encoded into the pooled buffer with strconv appends — the JSON
// response costs no per-pair allocation either.
func writeBatchJSON(w http.ResponseWriter, sc *batchScratch, graphName string, dists []int64) {
	out := append(sc.out[:0], `{"graph":`...)
	out = appendJSONString(out, graphName)
	out = append(out, `,"pairs":`...)
	out = strconv.AppendInt(out, int64(len(dists)), 10)
	out = append(out, `,"distances":[`...)
	for i, d := range dists {
		if i > 0 {
			out = append(out, ',')
		}
		if d == graph.InfDist {
			d = -1
		}
		out = strconv.AppendInt(out, d, 10)
	}
	out = append(out, "]}\n"...)
	sc.out = out
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(out)))
	w.Write(out)
}

// ndjsonFlushBytes bounds the streaming variant's in-memory chunk: rows
// accumulate in the pooled buffer and flush to the client every ~32 KiB,
// so a maximal batch never buffers its whole response.
const ndjsonFlushBytes = 32 << 10

// writeBatchNDJSON streams one {"u":U,"v":V,"distance":D} object per
// line. A mid-stream write error just stops the stream — the status line
// is already on the wire, so there is nothing better to tell the client
// than the broken connection itself.
func writeBatchNDJSON(w http.ResponseWriter, sc *batchScratch, pairs [][2]graph.NodeID, dists []int64) {
	w.Header().Set("Content-Type", ctNDJSON)
	out := sc.out[:0]
	for i, d := range dists {
		out = append(out, `{"u":`...)
		out = strconv.AppendInt(out, int64(pairs[i][0]), 10)
		out = append(out, `,"v":`...)
		out = strconv.AppendInt(out, int64(pairs[i][1]), 10)
		out = append(out, `,"distance":`...)
		if d == graph.InfDist {
			d = -1
		}
		out = strconv.AppendInt(out, d, 10)
		out = append(out, "}\n"...)
		if len(out) >= ndjsonFlushBytes {
			if _, err := w.Write(out); err != nil {
				sc.out = out
				return
			}
			out = out[:0]
		}
	}
	if len(out) > 0 {
		w.Write(out)
	}
	sc.out = out
}

// appendJSONString appends s as a JSON string literal, escaping quotes,
// backslashes, and control characters. Graph names are short and almost
// always plain ASCII; anything fancier goes through the \u00XX escape.
func appendJSONString(dst []byte, s string) []byte {
	const hex = "0123456789abcdef"
	dst = append(dst, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			dst = append(dst, '\\', c)
		case c < 0x20:
			dst = append(dst, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		default:
			dst = append(dst, c)
		}
	}
	return append(dst, '"')
}
