package serve

// Tests for the build-lifecycle traces behind /builds: a controlled build
// walked through queued → running → done (with waiter high-water), a
// cancelled build landing in the recent ring with its error, a live oracle
// build observed mid-flight with nonzero engine counters, and the trace
// attached to the artifact's /stats cost entry.

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

func findTrace(infos []BuildTraceInfo, key string) *BuildTraceInfo {
	for i := range infos {
		if infos[i].Key == key {
			return &infos[i]
		}
	}
	return nil
}

// The full lifecycle with a controlled build: in-flight while running,
// waiter high-water tracks a second joiner, and the terminal snapshot in
// the recent ring carries timestamps and the done state.
func TestBuildTraceLifecycle(t *testing.T) {
	s := New(Config{Workers: 2})
	key := Key{Graph: "g", Kind: "oracle", Tau: 1, Seed: 1, Algorithm: "cluster"}

	started := make(chan struct{})
	unblock := make(chan struct{})
	build := func(bctx context.Context) (any, error) {
		close(started)
		<-unblock
		return 42, nil
	}

	first := make(chan error, 1)
	go func() {
		_, err := s.artifact(context.Background(), key, build)
		first <- err
	}()
	<-started

	// Mid-build: exactly one in-flight trace, state "running" (the slot
	// was acquired — the closure is executing), key stamped, no recent yet.
	tr := findTrace(s.BuildTraces().InFlight, key.String())
	if tr == nil {
		t.Fatalf("no in-flight trace for %s", key)
	}
	if tr.State != BuildRunning {
		t.Fatalf("in-flight state = %q, want %q", tr.State, BuildRunning)
	}
	if tr.EnqueuedAt.IsZero() {
		t.Fatal("in-flight trace has zero enqueued_at")
	}
	if tr.Waiters != 1 || tr.WaiterHighWater != 1 {
		t.Fatalf("waiters = %d (high %d), want 1 (1)", tr.Waiters, tr.WaiterHighWater)
	}
	if n := len(s.BuildTraces().Recent); n != 0 {
		t.Fatalf("%d recent traces before any build finished", n)
	}

	// A second waiter joins the same key: high-water rises to 2.
	second := make(chan error, 1)
	go func() {
		_, err := s.artifact(context.Background(), key, build)
		second <- err
	}()
	waitUntil(t, "waiter high-water of 2", func() bool {
		tr := findTrace(s.BuildTraces().InFlight, key.String())
		return tr != nil && tr.WaiterHighWater == 2
	})

	close(unblock)
	if err := <-first; err != nil {
		t.Fatal(err)
	}
	if err := <-second; err != nil {
		t.Fatal(err)
	}

	// Terminal: the trace moved from in-flight to the recent ring with the
	// done state and a complete set of lifecycle timestamps.
	waitUntil(t, "trace to reach the recent ring", func() bool {
		return findTrace(s.BuildTraces().Recent, key.String()) != nil
	})
	bt := s.BuildTraces()
	if n := len(bt.InFlight); n != 0 {
		t.Fatalf("%d in-flight traces after build finished", n)
	}
	done := findTrace(bt.Recent, key.String())
	if done.State != BuildDone {
		t.Fatalf("terminal state = %q, want %q", done.State, BuildDone)
	}
	if done.EnqueuedAt.IsZero() {
		t.Fatal("terminal trace has zero enqueued_at")
	}
	if done.SlotWaitMillis < 0 || done.RunMillis < 0 {
		t.Fatalf("negative durations: slot_wait=%v run=%v", done.SlotWaitMillis, done.RunMillis)
	}
	if done.WaiterHighWater != 2 {
		t.Fatalf("terminal waiter high-water = %d, want 2", done.WaiterHighWater)
	}
	if done.Error != "" {
		t.Fatalf("terminal trace has error %q", done.Error)
	}
}

// A build whose sole waiter disconnects is recorded as cancelled, with the
// context error preserved.
func TestBuildTraceCancelled(t *testing.T) {
	s := New(Config{Workers: 2})
	key := Key{Graph: "g", Kind: "oracle", Tau: 1, Seed: 9, Algorithm: "cluster"}

	started := make(chan struct{})
	build := func(bctx context.Context) (any, error) {
		close(started)
		<-bctx.Done()
		return nil, bctx.Err()
	}

	ctx, cancel := context.WithCancel(context.Background())
	waiter := make(chan error, 1)
	go func() {
		_, err := s.artifact(ctx, key, build)
		waiter <- err
	}()
	<-started
	cancel()
	<-waiter

	waitUntil(t, "cancelled trace in recent ring", func() bool {
		tr := findTrace(s.BuildTraces().Recent, key.String())
		return tr != nil && tr.State == BuildCancelled
	})
	tr := findTrace(s.BuildTraces().Recent, key.String())
	if tr.Error == "" {
		t.Fatal("cancelled trace has no error string")
	}
}

// A real oracle build observed mid-flight: the engine observer streams
// superstep deltas into the live trace, so /builds shows nonzero
// bsp_rounds and arcs_scanned while the build is still running; the
// finished artifact carries the full trace in its /stats cost entry.
func TestBuildTraceLiveEngineProgress(t *testing.T) {
	g := graph.Mesh(120, 120) // ~240 BFS rounds: plenty of observer barriers
	s := New(Config{Workers: 2})
	if err := s.RegisterGraph("mesh", g); err != nil {
		t.Fatal(err)
	}

	type result struct {
		or  *core.Oracle
		err error
	}
	resc := make(chan result, 1)
	go func() {
		or, err := s.Oracle(context.Background(), "mesh", 2, 1, "cluster")
		resc <- result{or, err}
	}()

	sawLive := false
	waitUntil(t, "live in-flight trace with bsp_rounds > 0", func() bool {
		select {
		case res := <-resc:
			// Build finished before we caught it live — on a 1-CPU box this
			// would make the test flaky, so treat catching it at all as the
			// requirement and verify the terminal trace instead.
			if res.err != nil {
				t.Fatal(res.err)
			}
			resc <- res
			return true
		default:
		}
		for _, tr := range s.BuildTraces().InFlight {
			if tr.BSPRounds > 0 && tr.ArcsScanned > 0 {
				sawLive = true
				return true
			}
		}
		return false
	})
	res := <-resc
	if res.err != nil {
		t.Fatal(res.err)
	}
	if !sawLive {
		t.Log("build finished before a live scrape caught it; verifying terminal trace only")
	}

	waitUntil(t, "oracle trace in recent ring", func() bool {
		return len(s.BuildTraces().Recent) > 0
	})
	tr := s.BuildTraces().Recent[0]
	if tr.State != BuildDone {
		t.Fatalf("terminal state = %q, want %q", tr.State, BuildDone)
	}
	if tr.BSPRounds == 0 || tr.ArcsScanned == 0 || tr.MaxFrontier == 0 {
		t.Fatalf("terminal trace missing engine counters: %+v", tr)
	}

	// The trace also rides the artifact's cost entry in /stats.
	stats := s.Stats()
	if len(stats.ArtifactDetails) != 1 {
		t.Fatalf("%d artifact details, want 1", len(stats.ArtifactDetails))
	}
	cost := stats.ArtifactDetails[0]
	if cost.Trace == nil {
		t.Fatal("artifact cost has no attached trace")
	}
	if cost.Trace.BSPRounds != tr.BSPRounds {
		t.Fatalf("attached trace rounds %d != recent-ring rounds %d", cost.Trace.BSPRounds, tr.BSPRounds)
	}
}

// The recent ring keeps only the newest recentBuilds entries, newest first.
func TestBuildTraceRecentRingBounded(t *testing.T) {
	s := New(Config{Workers: 2})
	for i := 0; i < recentBuilds+8; i++ {
		key := Key{Graph: "g", Kind: "oracle", Tau: 1, Seed: uint64(i), Algorithm: "cluster"}
		if _, err := s.artifact(context.Background(), key, func(context.Context) (any, error) {
			return i, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, "recent ring to fill", func() bool {
		return len(s.BuildTraces().Recent) == recentBuilds
	})
	recent := s.BuildTraces().Recent
	for i := 1; i < len(recent); i++ {
		if recent[i-1].ID < recent[i].ID {
			t.Fatalf("recent ring not newest-first at %d: id %d before %d", i, recent[i-1].ID, recent[i].ID)
		}
	}
}
