//go:build fuzz

package snapshot

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

// FuzzSnapshotLoad drives arbitrary bytes through the snapshot decoder via
// the same entry point the server restart path uses. The decoder's
// contract under corruption: return an error — never panic, never OOM on a
// hostile length field, and never hand back a structurally invalid
// artifact. Anything Load accepts must round-trip through Write/Read
// unchanged in its structural identity.
//
// Guarded by the fuzz build tag so the heavyweight corpus machinery stays
// out of ordinary test runs; CI smokes it with
// go test -tags fuzz -fuzz FuzzSnapshotLoad -fuzztime 30s ./internal/snapshot.
func FuzzSnapshotLoad(f *testing.F) {
	// Seed with a wholly valid graph-only snapshot so mutations explore the
	// deep decoder paths (sections, checksum) rather than dying at the
	// magic check, plus the classic shallow corruptions.
	g := graph.FromEdges(5, [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}})
	var buf bytes.Buffer
	if err := Write(&buf, &Artifact{Meta: Meta{GraphName: "fuzz", Algorithm: "cluster", Tau: 2, Seed: 7}, Graph: g}); err != nil {
		f.Fatalf("seed snapshot: %v", err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-1])        // truncated checksum
	f.Add([]byte{})                    // empty file
	f.Add([]byte("RPSN"))              // magic only
	f.Add([]byte("RPSN\x02\x00\x00\x00")) // magic + version, no payload

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.snap")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatalf("writing fuzz input: %v", err)
		}
		a, err := Load(path)
		if err != nil {
			return // rejected cleanly: the only acceptable failure mode
		}
		if a == nil || a.Graph == nil {
			t.Fatalf("Load returned nil artifact without error")
		}
		// Accepted input: the decoded artifact must re-encode and decode to
		// the same structural identity.
		var rt bytes.Buffer
		if err := Write(&rt, a); err != nil {
			t.Fatalf("re-encoding accepted artifact: %v", err)
		}
		b, err := Read(bytes.NewReader(rt.Bytes()))
		if err != nil {
			t.Fatalf("round-trip of accepted artifact: %v", err)
		}
		if b.Graph.NumNodes() != a.Graph.NumNodes() || b.Graph.NumArcs() != a.Graph.NumArcs() {
			t.Fatalf("round-trip changed graph shape: %d/%d nodes, %d/%d arcs",
				a.Graph.NumNodes(), b.Graph.NumNodes(), a.Graph.NumArcs(), b.Graph.NumArcs())
		}
		if b.Meta != a.Meta {
			t.Fatalf("round-trip changed meta: %+v vs %+v", a.Meta, b.Meta)
		}
		if (b.Oracle == nil) != (a.Oracle == nil) {
			t.Fatalf("round-trip changed oracle presence")
		}
	})
}
