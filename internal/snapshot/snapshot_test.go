package snapshot

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

func buildArtifact(t *testing.T, g *graph.Graph, tau int, seed uint64) *Artifact {
	t.Helper()
	o, err := core.BuildOracle(context.Background(), g, tau, false, core.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return &Artifact{
		Meta:   Meta{GraphName: "test", Tau: tau, Seed: seed, Algorithm: "cluster"},
		Graph:  g,
		Oracle: o,
	}
}

func roundTrip(t *testing.T, a *Artifact) *Artifact {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, a); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// Graph round-trip: the decoded CSR arrays must be bit-identical.
func TestGraphRoundTrip(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Mesh(40, 25),
		graph.RoadLike(30, 30, 0.4, 7),
		graph.BarabasiAlbert(2000, 6, 3),
		graph.FromEdges(1, nil), // single isolated node
	} {
		a := &Artifact{Meta: Meta{GraphName: "g"}, Graph: g}
		got := roundTrip(t, a)
		if got.Oracle != nil {
			t.Fatal("oracle materialized out of nowhere")
		}
		wantX, wantA := g.CSR()
		gotX, gotA := got.Graph.CSR()
		if !equalI64(wantX, gotX) || !equalI32(wantA, gotA) {
			t.Fatalf("CSR mismatch after round trip (n=%d)", g.NumNodes())
		}
		if err := got.Graph.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

// Oracle round-trip: the decoded oracle must answer exactly like the
// original on sampled pairs (both the upper-bound and lower-bound query),
// and the metadata must survive.
func TestOracleRoundTrip(t *testing.T) {
	g := graph.RoadLike(40, 40, 0.4, 11)
	a := buildArtifact(t, g, 3, 99)
	got := roundTrip(t, a)

	if got.Meta != a.Meta {
		t.Fatalf("meta %+v want %+v", got.Meta, a.Meta)
	}
	if got.Oracle == nil {
		t.Fatal("oracle lost in round trip")
	}
	if got.Oracle.NumClusters() != a.Oracle.NumClusters() {
		t.Fatalf("clusters %d want %d", got.Oracle.NumClusters(), a.Oracle.NumClusters())
	}
	r := rng.New(5)
	n := g.NumNodes()
	for i := 0; i < 500; i++ {
		u := graph.NodeID(r.Intn(n))
		v := graph.NodeID(r.Intn(n))
		if w, got := a.Oracle.Query(u, v), got.Oracle.Query(u, v); got != w {
			t.Fatalf("Query(%d,%d) = %d want %d", u, v, got, w)
		}
		if w, got := a.Oracle.LowerQuery(u, v), got.Oracle.LowerQuery(u, v); got != w {
			t.Fatalf("LowerQuery(%d,%d) = %d want %d", u, v, got, w)
		}
	}
	// The decoded clustering must satisfy the full decomposition invariants
	// and carry the build's BSP cost counters unchanged (including the
	// direction-optimizing engine's pull-round share).
	if err := got.Oracle.Clustering().Validate(); err != nil {
		t.Fatal(err)
	}
	if got.Oracle.Clustering().Stats != a.Oracle.Clustering().Stats {
		t.Fatalf("stats %+v want %+v", got.Oracle.Clustering().Stats, a.Oracle.Clustering().Stats)
	}
}

// A disconnected graph exercises InfDist entries in the persisted tables.
func TestRoundTripDisconnected(t *testing.T) {
	edges := [][2]graph.NodeID{{0, 1}, {1, 2}, {3, 4}}
	g := graph.FromEdges(5, edges)
	a := buildArtifact(t, g, 1, 1)
	got := roundTrip(t, a)
	if d := got.Oracle.Query(0, 3); d != graph.InfDist {
		t.Fatalf("cross-component query %d want InfDist", d)
	}
	if d := got.Oracle.Query(0, 2); d == graph.InfDist {
		t.Fatal("same-component query unreachable")
	}
}

// Every truncation point must produce an error, never a silent partial
// artifact.
func TestTruncation(t *testing.T) {
	g := graph.Mesh(12, 12)
	a := buildArtifact(t, g, 1, 2)
	var buf bytes.Buffer
	if err := Write(&buf, a); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Check a spread of prefixes including "everything but the trailer".
	for _, cut := range []int{0, 1, 3, 7, 20, len(full) / 2, len(full) - 5, len(full) - 1} {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d decoded successfully", cut, len(full))
		}
	}
}

// Any single bit flip must be caught — by a structural check or, at the
// latest, by the checksum.
func TestCorruption(t *testing.T) {
	g := graph.Mesh(12, 12)
	a := buildArtifact(t, g, 1, 2)
	var buf bytes.Buffer
	if err := Write(&buf, a); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	r := rng.New(77)
	flips := 0
	for i := 0; i < 200; i++ {
		pos := r.Intn(len(full))
		bit := byte(1) << uint(r.Intn(8))
		mut := append([]byte(nil), full...)
		mut[pos] ^= bit
		if _, err := Read(bytes.NewReader(mut)); err == nil {
			t.Fatalf("bit flip at byte %d (mask %02x) decoded successfully", pos, bit)
		} else {
			flips++
			_ = err
		}
	}
	if flips != 200 {
		t.Fatalf("only %d/200 corruptions detected", flips)
	}
}

// Corrupting a payload byte while keeping structure valid must surface
// ErrChecksum specifically (the seed byte of the meta section is pure
// payload: no structural check can catch it).
func TestChecksumErrIsWrapped(t *testing.T) {
	g := graph.Mesh(8, 8)
	a := &Artifact{Meta: Meta{GraphName: "g", Seed: 42}, Graph: g}
	var buf bytes.Buffer
	if err := Write(&buf, a); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Layout: magic(4) version(2) flags(2) nameLen(4) name(1) algoLen(4)
	// tau(8) → seed starts at offset 25.
	full[25] ^= 0x01
	_, err := Read(bytes.NewReader(full))
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	g := graph.Mesh(4, 4)
	var buf bytes.Buffer
	if err := Write(&buf, &Artifact{Graph: g}); err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), buf.Bytes()...)
	bad[0] = 'X'
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	bad = append([]byte(nil), buf.Bytes()...)
	bad[4] = 0xFF // version
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Fatal("future version accepted")
	}
	if _, err := Read(bytes.NewReader(nil)); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("empty input: err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestWriteRejectsForeignOracle(t *testing.T) {
	g1 := graph.Mesh(10, 10)
	g2 := graph.Mesh(10, 10)
	o, err := core.BuildOracle(context.Background(), g1, 1, false, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, &Artifact{Graph: g2, Oracle: o}); err == nil {
		t.Fatal("oracle over a different graph accepted")
	}
}

func TestWriteRejectsEmptyGraph(t *testing.T) {
	var buf bytes.Buffer
	g, err := graph.FromCSR(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := Write(&buf, &Artifact{Graph: g}); err == nil {
		t.Fatal("empty graph accepted (Read could never decode it)")
	}
}

func TestSaveLoad(t *testing.T) {
	g := graph.RoadLike(25, 25, 0.4, 3)
	a := buildArtifact(t, g, 2, 8)
	path := filepath.Join(t.TempDir(), "a.snap")
	if err := Save(path, a); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta != a.Meta {
		t.Fatalf("meta %+v want %+v", got.Meta, a.Meta)
	}
	r := rng.New(1)
	for i := 0; i < 100; i++ {
		u := graph.NodeID(r.Intn(g.NumNodes()))
		v := graph.NodeID(r.Intn(g.NumNodes()))
		if got.Oracle.Query(u, v) != a.Oracle.Query(u, v) {
			t.Fatalf("Query(%d,%d) differs after Save/Load", u, v)
		}
	}
}

func equalI64(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalI32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// listTempFiles returns the .snapshot-* temp files in dir — Save's
// private scratch names, which must never outlive a Save call.
func listTempFiles(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, ".snapshot-*"))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

// TestSaveFailureLeavesTargetIntact is the truncation-mid-write
// regression test: a Save that fails partway (here: the final rename,
// forced by planting a directory at the target path) must leave the
// previous snapshot byte-identical and loadable, and must not leave a
// temp file behind. This is the property a snapshot-only restart after
// a crashed -drain shutdown depends on.
func TestSaveFailureLeavesTargetIntact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.bin")
	g := graph.Mesh(12, 12)
	if err := Save(path, buildArtifact(t, g, 1, 2)); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A directory squatting on a second target path makes the rename
	// fail after the temp file was fully written — the latest failure
	// point Save has.
	blocked := filepath.Join(dir, "blocked.bin")
	if err := os.MkdirAll(filepath.Join(blocked, "x"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := Save(blocked, buildArtifact(t, g, 1, 3)); err == nil {
		t.Fatal("Save onto a directory succeeded")
	}
	if tmps := listTempFiles(t, dir); len(tmps) != 0 {
		t.Fatalf("failed Save left temp files behind: %v", tmps)
	}

	// The original snapshot is untouched and still loads.
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("failed Save mutated an unrelated existing snapshot")
	}
	if _, err := Load(path); err != nil {
		t.Fatalf("snapshot unloadable after failed Save: %v", err)
	}
}

// TestSaveOverwriteAtomic: overwriting an existing snapshot goes through
// the same temp+rename path — afterwards the file is entirely the new
// artifact (never a splice of old and new) and no scratch remains.
func TestSaveOverwriteAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.bin")
	g := graph.Mesh(12, 12)
	if err := Save(path, buildArtifact(t, g, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := Save(path, buildArtifact(t, g, 2, 9)); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta.Tau != 2 || got.Meta.Seed != 9 {
		t.Fatalf("loaded meta %+v, want the overwriting artifact", got.Meta)
	}
	if tmps := listTempFiles(t, dir); len(tmps) != 0 {
		t.Fatalf("successful Save left temp files behind: %v", tmps)
	}
}

// TestLoadTruncatedFile exercises the on-disk half of the truncation
// story: however a file at the snapshot path got cut short (the exact
// artifact a non-atomic writer would leave after a crash), Load must
// fail cleanly rather than hand back a half-decoded artifact.
func TestLoadTruncatedFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.bin")
	g := graph.Mesh(12, 12)
	if err := Save(path, buildArtifact(t, g, 1, 2)); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cutPath := filepath.Join(dir, "cut.bin")
	for _, cut := range []int{0, 16, len(full) / 3, len(full) - 4, len(full) - 1} {
		if err := os.WriteFile(cutPath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(cutPath); err == nil {
			t.Fatalf("Load of file truncated at %d/%d succeeded", cut, len(full))
		}
	}
}
