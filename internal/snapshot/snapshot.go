// Package snapshot is a versioned binary codec for the repository's heavy
// build artifacts: the CSR graph and the distance oracle (decomposition +
// quotient APSP tables). Building an oracle over a large graph takes
// seconds to minutes; decoding a snapshot is a sequential read, so a
// long-running server (cmd/reprod) can restart in milliseconds by loading
// the artifact it persisted on a previous run.
//
// Format (all integers little-endian, fixed width):
//
//	magic "RPSN" | version u16 | flags u16
//	meta: graphName, algorithm (u32 length + bytes), tau i64, seed u64
//	graph: n u64, arcs u64, xadj [n+1]i64, adj [arcs]i32
//	oracle (iff flags&FlagOracle):
//	    owner [n]i32, dist [n]i32,
//	    k u64, centers [k]i32, radii [k]i32,
//	    growthSteps i64, batches i64,
//	    stats (rounds i64, messages i64, maxFrontier i64),
//	    apsp [k*k]i64, hops [k*k]i64
//	crc32 u32 (IEEE, over everything above)
//
// Decoding verifies the checksum and re-validates structural invariants
// (graph.FromCSR, core.OracleFromParts), so a truncated or bit-flipped
// snapshot yields an error rather than a corrupt in-memory artifact.
package snapshot

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/graph"
)

var magic = [4]byte{'R', 'P', 'S', 'N'}

// Version is the current format version. Readers reject other versions.
// v2 added Stats.PullRounds (direction-optimizing engine); v1 snapshots
// are rejected and rebuild from scratch — the snapshot is a cache, not a
// source of truth.
const Version uint16 = 2

const flagOracle uint16 = 1 << 0

// maxName bounds the decoded metadata strings; maxSide bounds node/arc/
// cluster counts read from the header so a corrupted length field cannot
// trigger a huge allocation before the checksum is verified.
const (
	maxName = 1 << 16
	maxSide = 1 << 31
)

// ErrChecksum is returned (wrapped) when the trailing CRC32 does not match
// the decoded payload.
var ErrChecksum = errors.New("snapshot: checksum mismatch")

// Meta identifies the build that produced an artifact — the cache key
// (graph, τ, seed, algorithm) of the serving layer.
type Meta struct {
	// GraphName is the symbolic name the graph is served under.
	GraphName string
	// Tau is the decomposition granularity the oracle was built with.
	Tau int
	// Seed is the decomposition seed.
	Seed uint64
	// Algorithm is "cluster" or "cluster2".
	Algorithm string
}

// Artifact is the unit of persistence: a graph, optionally the distance
// oracle built over it, and the metadata identifying the build.
type Artifact struct {
	Meta   Meta
	Graph  *graph.Graph
	Oracle *core.Oracle // nil when only the graph was persisted
}

// Write encodes the artifact to w. a.Graph must be non-nil; a.Oracle is
// optional but, when present, must have been built over a.Graph.
func Write(w io.Writer, a *Artifact) error {
	if a == nil || a.Graph == nil {
		return errors.New("snapshot: nil artifact or graph")
	}
	if a.Graph.NumNodes() == 0 {
		// The empty graph's xadj is nil (not [0]), which the fixed n+1
		// layout below cannot represent; serving rejects empty graphs
		// anyway, so refuse at write time rather than emit bytes Read
		// would reject.
		return errors.New("snapshot: empty graph")
	}
	if a.Oracle != nil && a.Oracle.Clustering().G != a.Graph {
		return errors.New("snapshot: oracle was not built over the artifact's graph")
	}
	crc := crc32.NewIEEE()
	bw := bufio.NewWriterSize(io.MultiWriter(w, crc), 1<<20)
	e := &encoder{w: bw}

	e.bytes(magic[:])
	e.u16(Version)
	var flags uint16
	if a.Oracle != nil {
		flags |= flagOracle
	}
	e.u16(flags)

	e.str(a.Meta.GraphName)
	e.str(a.Meta.Algorithm)
	e.i64(int64(a.Meta.Tau))
	e.u64(a.Meta.Seed)

	xadj, adj := a.Graph.CSR()
	e.u64(uint64(a.Graph.NumNodes()))
	e.u64(uint64(len(adj)))
	e.i64s(xadj)
	e.i32s(adj)

	if a.Oracle != nil {
		cl := a.Oracle.Clustering()
		e.i32s(cl.Owner)
		e.i32s(cl.Dist)
		k := cl.NumClusters()
		e.u64(uint64(k))
		e.i32s(cl.Centers)
		e.i32s(cl.Radii)
		e.i64(int64(cl.GrowthSteps))
		e.i64(int64(cl.Batches))
		e.i64(int64(cl.Stats.Rounds))
		e.i64(cl.Stats.Messages)
		e.i64(int64(cl.Stats.MaxFrontier))
		e.i64(int64(cl.Stats.PullRounds))
		// The oracle stores both tables row-major flat, which is exactly the
		// [k*k]i64 wire layout: one contiguous write each, no row walking.
		e.i64s(a.Oracle.APSPFlat())
		e.i64s(a.Oracle.HopsFlat())
	}
	if e.err != nil {
		return e.err
	}
	// The checksum covers everything buffered so far; flush before reading
	// the hash state, then append the trailer outside the checksummed
	// stream.
	if err := bw.Flush(); err != nil {
		return err
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc.Sum32())
	_, err := w.Write(trailer[:])
	return err
}

// Read decodes an artifact from r, verifying the checksum and structural
// invariants. It fails with a wrapped ErrChecksum on bit corruption and
// with io.ErrUnexpectedEOF (wrapped) on truncation.
func Read(r io.Reader) (*Artifact, error) {
	crc := crc32.NewIEEE()
	d := &decoder{r: bufio.NewReaderSize(r, 1<<20), crc: crc}

	var m [4]byte
	d.bytes(m[:])
	if d.err == nil && m != magic {
		return nil, fmt.Errorf("snapshot: bad magic %q", m[:])
	}
	version := d.u16()
	if d.err == nil && version != Version {
		return nil, fmt.Errorf("snapshot: unsupported version %d (have %d)", version, Version)
	}
	flags := d.u16()

	var meta Meta
	meta.GraphName = d.str()
	meta.Algorithm = d.str()
	meta.Tau = int(d.i64())
	meta.Seed = d.u64()

	n := d.count("nodes")
	arcs := d.count("arcs")
	var g *graph.Graph
	if d.err == nil {
		xadj := d.i64s(n + 1)
		adj := d.i32s(arcs)
		if d.err == nil {
			var err error
			if g, err = graph.FromCSR(xadj, adj); err != nil {
				return nil, err
			}
		}
	}

	var o *core.Oracle
	if d.err == nil && flags&flagOracle != 0 {
		cl := &core.Clustering{G: g}
		cl.Owner = d.i32s(n)
		cl.Dist = d.i32s(n)
		k := d.count("clusters")
		cl.Centers = d.i32s(k)
		cl.Radii = d.i32s(k)
		cl.GrowthSteps = int(d.i64())
		cl.Batches = int(d.i64())
		cl.Stats = bsp.Stats{
			Rounds:      int(d.i64()),
			Messages:    d.i64(),
			MaxFrontier: int(d.i64()),
			PullRounds:  int(d.i64()),
		}
		// [k*k]i64 on the wire is the oracle's native row-major flat layout:
		// decode each table as one contiguous slice, no per-row allocation.
		apsp := d.i64s(k * k)
		hops := d.i64s(k * k)
		if d.err == nil {
			var err error
			if o, err = core.OracleFromParts(cl, apsp, hops); err != nil {
				return nil, err
			}
		}
	}
	if d.err != nil {
		return nil, d.err
	}

	// The trailer is read outside the checksummed region: compare the
	// stored CRC against the hash of everything decoded above.
	want := crc.Sum32()
	var trailer [4]byte
	if _, err := io.ReadFull(d.r, trailer[:]); err != nil {
		return nil, fmt.Errorf("snapshot: reading checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(trailer[:]); got != want {
		return nil, fmt.Errorf("%w: stored %08x, computed %08x", ErrChecksum, got, want)
	}
	return &Artifact{Meta: meta, Graph: g, Oracle: o}, nil
}

// Save writes the artifact to the named file atomically: the bytes go to
// a temp file in the same directory and only a fully written, synced
// temp is renamed over the target. A crash (or error) at any point mid-
// write therefore never leaves a truncated snapshot at the target path —
// the previous snapshot, if any, survives intact — which is what lets a
// snapshot-only restart trust whatever it finds there. Every failure
// path removes the temp file, so an interrupted -drain shutdown cannot
// litter the snapshot directory with orphaned .snapshot-* files either.
func Save(path string, a *Artifact) (err error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".snapshot-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			os.Remove(tmp.Name())
		}
	}()
	if err := Write(tmp, a); err != nil {
		tmp.Close()
		return err
	}
	// Flush file data before the rename: a journaled rename of un-synced
	// data can survive a crash as a full-length file of garbage at the
	// target path.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Load reads an artifact from the named file.
func Load(path string) (*Artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// --- primitive encoding ---

type encoder struct {
	w       *bufio.Writer
	scratch []byte
	err     error
}

func (e *encoder) bytes(b []byte) {
	if e.err == nil {
		_, e.err = e.w.Write(b)
	}
}

func (e *encoder) u16(v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	e.bytes(b[:])
}

func (e *encoder) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	e.bytes(b[:])
}

func (e *encoder) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.bytes(b[:])
}

func (e *encoder) i64(v int64) { e.u64(uint64(v)) }

func (e *encoder) str(s string) {
	if len(s) > maxName {
		if e.err == nil {
			e.err = fmt.Errorf("snapshot: string of %d bytes exceeds limit", len(s))
		}
		return
	}
	e.u32(uint32(len(s)))
	e.bytes([]byte(s))
}

// chunkElems is the array-section transfer granularity: elements are
// staged into a scratch buffer and read/written/checksummed one chunk at a
// time, so the codec's cost is a few large I/O and CRC calls per section
// instead of one per element.
const chunkElems = 1 << 13

func (e *encoder) scratchBuf() []byte {
	if e.scratch == nil {
		e.scratch = make([]byte, 8*chunkElems)
	}
	return e.scratch
}

func (e *encoder) i32s(vs []int32) {
	buf := e.scratchBuf()
	for len(vs) > 0 && e.err == nil {
		c := min(len(vs), 2*chunkElems) // 4-byte elements: twice as many fit
		for i := 0; i < c; i++ {
			binary.LittleEndian.PutUint32(buf[4*i:], uint32(vs[i]))
		}
		e.bytes(buf[:4*c])
		vs = vs[c:]
	}
}

func (e *encoder) i64s(vs []int64) {
	buf := e.scratchBuf()
	for len(vs) > 0 && e.err == nil {
		c := min(len(vs), chunkElems)
		for i := 0; i < c; i++ {
			binary.LittleEndian.PutUint64(buf[8*i:], uint64(vs[i]))
		}
		e.bytes(buf[:8*c])
		vs = vs[c:]
	}
}

// --- primitive decoding ---

type decoder struct {
	r       *bufio.Reader
	crc     hash.Hash32
	scratch []byte
	err     error
}

func (d *decoder) scratchBuf() []byte {
	if d.scratch == nil {
		d.scratch = make([]byte, 8*chunkElems)
	}
	return d.scratch
}

func (d *decoder) bytes(b []byte) {
	if d.err != nil {
		return
	}
	if _, err := io.ReadFull(d.r, b); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		d.err = fmt.Errorf("snapshot: truncated input: %w", err)
		return
	}
	d.crc.Write(b)
}

func (d *decoder) u16() uint16 {
	var b [2]byte
	d.bytes(b[:])
	return binary.LittleEndian.Uint16(b[:])
}

func (d *decoder) u32() uint32 {
	var b [4]byte
	d.bytes(b[:])
	return binary.LittleEndian.Uint32(b[:])
}

func (d *decoder) u64() uint64 {
	var b [8]byte
	d.bytes(b[:])
	return binary.LittleEndian.Uint64(b[:])
}

func (d *decoder) i64() int64 { return int64(d.u64()) }

func (d *decoder) str() string {
	n := d.u32()
	if d.err != nil {
		return ""
	}
	if n > maxName {
		d.err = fmt.Errorf("snapshot: string length %d exceeds limit", n)
		return ""
	}
	b := make([]byte, n)
	d.bytes(b)
	return string(b)
}

// count reads a u64 size field and bounds it, so a corrupted header cannot
// demand an enormous allocation.
func (d *decoder) count(what string) int {
	v := d.u64()
	if d.err != nil {
		return 0
	}
	if v > maxSide {
		d.err = fmt.Errorf("snapshot: %s count %d exceeds limit", what, v)
		return 0
	}
	return int(v)
}

// allocChunk bounds per-step slice growth while decoding arrays: a corrupt
// count field then costs at most one chunk of over-allocation before the
// stream runs dry, instead of an upfront multi-GiB make().
const allocChunk = 1 << 20

func (d *decoder) i32s(n int) []int32 {
	if d.err != nil {
		return nil
	}
	out := make([]int32, 0, min(n, allocChunk))
	buf := d.scratchBuf()
	for remaining := n; remaining > 0; {
		c := min(remaining, 2*chunkElems)
		b := buf[:4*c]
		d.bytes(b)
		if d.err != nil {
			return nil
		}
		for i := 0; i < c; i++ {
			out = append(out, int32(binary.LittleEndian.Uint32(b[4*i:])))
		}
		remaining -= c
	}
	return out
}

func (d *decoder) i64s(n int) []int64 {
	if d.err != nil {
		return nil
	}
	out := make([]int64, 0, min(n, allocChunk))
	buf := d.scratchBuf()
	for remaining := n; remaining > 0; {
		c := min(remaining, chunkElems)
		b := buf[:8*c]
		d.bytes(b)
		if d.err != nil {
			return nil
		}
		for i := 0; i < c; i++ {
			out = append(out, int64(binary.LittleEndian.Uint64(b[8*i:])))
		}
		remaining -= c
	}
	return out
}
