// Package mpx implements the parallel graph decomposition of Miller, Peng
// and Xu (SPAA 2013, [22] in the paper), the competitor evaluated in the
// paper's Table 2.
//
// Every node u draws an exponential shift δ_u ~ Exp(β); conceptually a BFS
// starts from u at time δ_max − δ_u unless u has already been covered, and
// every node joins the cluster of the center minimizing
// dist(u, v) − δ_u. Larger β yields more clusters of smaller radius; the
// expected maximum radius is O(log n / β) and the expected number of
// inter-cluster edges is O(β·m).
//
// The implementation runs on the BSP substrate with unit time steps:
// fractional arrival times are resolved inside each round with an atomic
// min-claim on a packed (arrival, cluster) word, which makes the outcome
// deterministic (ties break toward the smaller cluster id) and independent
// of the goroutine schedule.
package mpx

import (
	"context"
	"errors"
	"math"
	"sync/atomic"

	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Options configures a decomposition run.
type Options struct {
	// Beta is the rate of the exponential shift distribution; must be > 0.
	Beta float64
	// Seed drives the shift draws (hash-based per node, so the decomposition
	// is reproducible across schedules and worker counts).
	Seed uint64
	// Workers is the BSP parallelism (non-positive = GOMAXPROCS).
	Workers int
}

const slotSentinel = ^uint64(0)

func pack(arrival float32, cluster int32) uint64 {
	return uint64(rng.SortableFloat32Bits(arrival))<<32 | uint64(uint32(cluster))
}

func unpack(word uint64) (float32, int32) {
	return rng.FromSortableFloat32Bits(uint32(word >> 32)), int32(uint32(word))
}

// casMin atomically lowers *slot to val if val is smaller; it reports
// whether the slot transitioned from the unclaimed sentinel (i.e. this call
// claimed the node for the first time).
func casMin(slot *uint64, val uint64) bool {
	for {
		cur := atomic.LoadUint64(slot)
		if val >= cur {
			return false
		}
		if atomic.CompareAndSwapUint64(slot, cur, val) {
			return cur == slotSentinel
		}
	}
}

// Decompose partitions g with the MPX random-shift process and returns the
// result in the shared Clustering form (owners, growth distances, centers,
// radii, BSP stats).
func Decompose(g *graph.Graph, opt Options) (*core.Clustering, error) {
	//lint:allow background public non-cancellable wrapper; DecomposeContext is the cancellable form
	return DecomposeContext(context.Background(), g, opt)
}

// DecomposeContext is Decompose with cooperative cancellation: the round
// loop checks ctx at the superstep barriers (never inside a round) and
// returns ctx.Err() within one round of a cancel. The checks never
// influence the rounds an uncancelled run executes, so the decomposition
// stays bit-for-bit deterministic in (seed, beta) across worker counts.
func DecomposeContext(ctx context.Context, g *graph.Graph, opt Options) (*core.Clustering, error) {
	if opt.Beta <= 0 {
		return nil, errors.New("mpx: Beta must be positive")
	}
	n := g.NumNodes()
	if n == 0 {
		return nil, errors.New("mpx: empty graph")
	}
	seed := rng.Mix64(opt.Seed, 0x3b9a_ca07)
	workers := bsp.Workers(opt.Workers)

	// Draw shifts and derive start times start(u) = δmax − δu.
	delta := make([]float64, n)
	bsp.ParallelFor(workers, n, func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			delta[u] = rng.ExpAt(opt.Beta, seed, uint64(u))
		}
	})
	deltaMax := 0.0
	for _, d := range delta {
		if d > deltaMax {
			deltaMax = d
		}
	}
	start := make([]float64, n)
	maxBucket := 0
	for u := 0; u < n; u++ {
		start[u] = deltaMax - delta[u]
		if b := int(start[u]); b > maxBucket {
			maxBucket = b
		}
	}
	// Activation buckets: nodes whose start time falls in [t, t+1).
	buckets := make([][]graph.NodeID, maxBucket+1)
	for u := 0; u < n; u++ {
		b := int(start[u])
		buckets[b] = append(buckets[b], graph.NodeID(u))
	}

	slot := make([]uint64, n)
	for i := range slot {
		slot[i] = slotSentinel
	}
	var centers []graph.NodeID
	centerStart := make([]float64, 0, 64)

	e := bsp.NewEngine(g, workers)
	defer e.Close()
	// The two-sided step: a push offers (arrival+1, owner) to a neighbor, a
	// pull has an uncovered node collect the same offer from a frontier
	// neighbor. Both funnel through casMin, and ExhaustivePull makes the
	// engine present every frontier neighbor (not just the first match), so
	// the claimed word is the minimum over all in-round offers — exactly
	// the push-mode outcome, keeping MPX bit-for-bit deterministic across
	// directions and worker counts.
	spec := bsp.StepSpec{
		Push: func(_ int, u, v graph.NodeID) bool {
			word := atomic.LoadUint64(&slot[u])
			arr, owner := unpack(word)
			return casMin(&slot[v], pack(arr+1, owner))
		},
		Pull: func(_ int, v, u graph.NodeID) bool {
			word := atomic.LoadUint64(&slot[u])
			arr, owner := unpack(word)
			return casMin(&slot[v], pack(arr+1, owner))
		},
		ExhaustivePull: true,
	}
	covered := 0
	for t := 0; covered < n || e.FrontierLen() > 0; t++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Phase 1 (sequential, per round): activate this bucket's centers.
		// A node starts its own cluster unless something reached it strictly
		// earlier than its own start time.
		if t < len(buckets) {
			for _, u := range buckets[t] {
				cur := atomic.LoadUint64(&slot[u])
				arr, _ := unpack(cur)
				if cur != slotSentinel && float64(arr) <= start[u] {
					continue // covered before (or exactly at) its start
				}
				id := int32(len(centers))
				centers = append(centers, u)
				centerStart = append(centerStart, start[u])
				atomic.StoreUint64(&slot[u], pack(float32(start[u]), id))
				if cur == slotSentinel {
					// First claim: join the frontier (an already-covered
					// node taking over as its own center is still in the
					// current frontier from the round that claimed it).
					e.Seed(u)
					covered++
				}
			}
		}
		if e.FrontierLen() == 0 {
			continue // wait for the next activation bucket
		}
		// Phase 2: expand all active clusters by one unit step; fractional
		// arrival ties inside the round resolve via atomic min.
		rs := e.Step(spec)
		covered += rs.Claimed
		if t > 2*n+int(deltaMax)+4 {
			return nil, errors.New("mpx: failed to converge (internal error)")
		}
	}
	stats := e.Stats()

	// Assemble the clustering: hop distance from the center is recovered
	// from the arrival time, dist = arrival − start(center).
	cl := &core.Clustering{
		G:       g,
		Owner:   make([]graph.NodeID, n),
		Dist:    make([]int32, n),
		Centers: centers,
		Radii:   make([]int32, len(centers)),
		Stats:   stats,
		Batches: len(buckets),
	}
	cl.GrowthSteps = stats.Rounds
	for u := 0; u < n; u++ {
		arr, owner := unpack(slot[u])
		cl.Owner[u] = graph.NodeID(owner)
		d := int32(math.Round(float64(arr) - centerStart[owner]))
		if d < 0 {
			d = 0
		}
		cl.Dist[u] = d
		if d > cl.Radii[owner] {
			cl.Radii[owner] = d
		}
	}
	return cl, nil
}

// BetaForTargetClusters searches for a β that makes Decompose return
// roughly target clusters (cluster count increases with β). Mirrors
// core.TauForTargetClusters so experiments can match granularities, giving
// MPX "a comparable but larger number of clusters" as the paper does.
func BetaForTargetClusters(g *graph.Graph, target int, tolerance float64, opt Options) (float64, *core.Clustering, error) {
	if target < 1 {
		return 0, nil, errors.New("mpx: target clusters must be >= 1")
	}
	beta := opt.Beta
	if beta <= 0 {
		beta = 0.1
	}
	var best *core.Clustering
	bestBeta := beta
	bestGap := math.Inf(1)
	lo, hi := 0.0, math.Inf(1)
	for iter := 0; iter < 24; iter++ {
		o := opt
		o.Beta = beta
		cl, err := Decompose(g, o)
		if err != nil {
			return 0, nil, err
		}
		got := cl.NumClusters()
		gap := math.Abs(float64(got-target)) / float64(target)
		if gap < bestGap {
			best, bestBeta, bestGap = cl, beta, gap
		}
		if gap <= tolerance {
			return beta, cl, nil
		}
		if got < target {
			lo = beta
			if math.IsInf(hi, 1) {
				beta *= 2
			} else {
				beta = (lo + hi) / 2
			}
		} else {
			hi = beta
			beta = (lo + hi) / 2
		}
	}
	return bestBeta, best, nil
}
