package mpx

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func TestDecomposePartitionValid(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"mesh":   graph.Mesh(30, 30),
		"road":   graph.RoadLike(25, 25, 0.4, 3),
		"social": graph.BarabasiAlbert(2000, 4, 5),
		"path":   graph.Path(400),
	} {
		for _, beta := range []float64{0.05, 0.3, 1.0} {
			cl, err := Decompose(g, Options{Beta: beta, Seed: 1})
			if err != nil {
				t.Fatalf("%s beta=%v: %v", name, beta, err)
			}
			if err := cl.Validate(); err != nil {
				t.Errorf("%s beta=%v: %v", name, beta, err)
			}
		}
	}
}

func TestDecomposeErrors(t *testing.T) {
	if _, err := Decompose(graph.Path(5), Options{Beta: 0}); err == nil {
		t.Fatal("beta=0 should fail")
	}
	if _, err := Decompose(graph.NewBuilder(0).Build(), Options{Beta: 1}); err == nil {
		t.Fatal("empty graph should fail")
	}
}

func TestDecomposeDeterministicAcrossWorkers(t *testing.T) {
	// The atomic min-claim makes MPX fully deterministic: same seed means
	// identical owners and distances regardless of worker count.
	g := graph.Mesh(40, 40)
	ref, err := Decompose(g, Options{Beta: 0.2, Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 0} {
		cl, err := Decompose(g, Options{Beta: 0.2, Seed: 7, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if cl.NumClusters() != ref.NumClusters() {
			t.Fatalf("workers=%d: %d clusters vs %d", workers, cl.NumClusters(), ref.NumClusters())
		}
		for u := range ref.Owner {
			if cl.Owner[u] != ref.Owner[u] || cl.Dist[u] != ref.Dist[u] {
				t.Fatalf("workers=%d: diverged at node %d", workers, u)
			}
		}
	}
}

func TestDecomposeClusterCountGrowsWithBeta(t *testing.T) {
	g := graph.Mesh(50, 50)
	small, err := Decompose(g, Options{Beta: 0.05, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	large, err := Decompose(g, Options{Beta: 1.0, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if large.NumClusters() <= small.NumClusters() {
		t.Fatalf("beta=1.0 gave %d clusters, beta=0.05 gave %d",
			large.NumClusters(), small.NumClusters())
	}
}

func TestDecomposeRadiusBound(t *testing.T) {
	// MPX: max radius O(log n / beta) with high probability. Use a very
	// generous constant to keep the test stable.
	g := graph.Mesh(50, 50)
	beta := 0.3
	cl, err := Decompose(g, Options{Beta: beta, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	bound := 8 * math.Log(float64(g.NumNodes())) / beta
	if float64(cl.MaxRadius()) > bound {
		t.Fatalf("max radius %d exceeds 8·ln(n)/β = %.0f", cl.MaxRadius(), bound)
	}
}

func TestDecomposeSingleNode(t *testing.T) {
	cl, err := Decompose(graph.Path(1), Options{Beta: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cl.NumClusters() != 1 || cl.Owner[0] != 0 || cl.Dist[0] != 0 {
		t.Fatal("single node decomposition wrong")
	}
}

func TestDecomposeDisconnected(t *testing.T) {
	b := graph.NewBuilder(60)
	for i := 0; i < 29; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	for i := 30; i < 59; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	g := b.Build()
	cl, err := Decompose(g, Options{Beta: 0.5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Validate(); err != nil {
		t.Fatal(err)
	}
	if cl.NumClusters() < 2 {
		t.Fatal("two components need at least two clusters")
	}
}

func TestDecomposeSmallBetaFewClusters(t *testing.T) {
	// With tiny beta shifts are huge and spread out; the earliest-starting
	// few centers swallow the graph.
	g := graph.BarabasiAlbert(3000, 3, 6)
	cl, err := Decompose(g, Options{Beta: 0.02, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if cl.NumClusters() > g.NumNodes()/10 {
		t.Fatalf("beta=0.02 produced %d clusters on %d nodes", cl.NumClusters(), g.NumNodes())
	}
}

func TestBetaForTargetClusters(t *testing.T) {
	g := graph.Mesh(40, 40)
	beta, cl, err := BetaForTargetClusters(g, 100, 0.35, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if beta <= 0 {
		t.Fatalf("beta=%v", beta)
	}
	k := cl.NumClusters()
	if k < 50 || k > 200 {
		t.Fatalf("target 100 clusters, got %d (beta=%v)", k, beta)
	}
}

func TestBetaForTargetClustersErrors(t *testing.T) {
	if _, _, err := BetaForTargetClusters(graph.Path(5), 0, 0.1, Options{}); err == nil {
		t.Fatal("target 0 should fail")
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	cases := []struct {
		arr float32
		id  int32
	}{{0, 0}, {1.5, 3}, {100.25, 1 << 20}, {0.001, 42}}
	for _, c := range cases {
		a, id := unpack(pack(c.arr, c.id))
		if a != c.arr || id != c.id {
			t.Fatalf("pack/unpack (%v,%d) -> (%v,%d)", c.arr, c.id, a, id)
		}
	}
}

func TestPackOrdering(t *testing.T) {
	// Smaller arrival must always win; ties break toward smaller id.
	if pack(1.0, 5) >= pack(2.0, 1) {
		t.Fatal("arrival ordering broken")
	}
	if pack(1.0, 1) >= pack(1.0, 2) {
		t.Fatal("id tie-break broken")
	}
}
