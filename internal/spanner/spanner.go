// Package spanner implements the randomized (2k−1)-spanner construction of
// Baswana and Sen ([4] in the paper). Theorem 4 uses it to sparsify the
// quotient graph down to the reducers' local memory while stretching its
// diameter by only a constant factor; the construction needs no shortest
// path computations and maps to a constant number of cluster-growing-style
// rounds, which is why the paper can afford it inside the MR pipeline.
//
// For a weighted graph on n nodes the expected spanner size is
// O(k·n^{1+1/k}) edges and every distance is preserved up to a factor
// 2k−1.
package spanner

import (
	"errors"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/rng"
)

type edge struct {
	to graph.NodeID
	wt int32
}

// BaswanaSen computes a (2k−1)-spanner of w. It returns the spanner as a
// weighted graph over the same node set.
func BaswanaSen(w *graph.Weighted, k int, seed uint64) (*graph.Weighted, error) {
	if k < 1 {
		return nil, errors.New("spanner: k must be >= 1")
	}
	n := w.NumNodes()
	if n == 0 {
		return graph.NewWeighted(0, nil, nil)
	}
	prob := math.Pow(float64(n), -1.0/float64(k))

	// Live edges per vertex (both directions); edges get discarded as the
	// algorithm proceeds.
	adj := make([][]edge, n)
	for u := graph.NodeID(0); int(u) < n; u++ {
		nbrs, ws := w.Neighbors(u)
		for i, v := range nbrs {
			adj[u] = append(adj[u], edge{v, ws[i]})
		}
	}
	// Deterministic edge orderings (by weight, then id) for tie-breaks.
	for u := range adj {
		list := adj[u]
		sort.Slice(list, func(i, j int) bool {
			if list[i].wt != list[j].wt {
				return list[i].wt < list[j].wt
			}
			return list[i].to < list[j].to
		})
	}

	var spanEdges [][2]graph.NodeID
	var spanWeights []int32
	addEdge := func(u, v graph.NodeID, wt int32) {
		spanEdges = append(spanEdges, [2]graph.NodeID{u, v})
		spanWeights = append(spanWeights, wt)
	}

	// cluster[v] = center of v's cluster at the current level, or -1 if v
	// has left the clustering (all its edges are resolved).
	cluster := make([]graph.NodeID, n)
	for i := range cluster {
		cluster[i] = graph.NodeID(i)
	}

	for level := 1; level < k; level++ {
		// Sample cluster centers.
		sampled := make(map[graph.NodeID]bool)
		for _, c := range cluster {
			if c >= 0 && !sampled[c] && rng.Coin(prob, seed, uint64(level), uint64(c)) {
				sampled[c] = true
			}
		}
		next := make([]graph.NodeID, n)
		for i := range next {
			next[i] = -1
		}
		// Vertices already in sampled clusters stay put.
		for v := 0; v < n; v++ {
			if cluster[v] >= 0 && sampled[cluster[v]] {
				next[v] = cluster[v]
			}
		}
		for v := graph.NodeID(0); int(v) < n; v++ {
			if cluster[v] < 0 || sampled[cluster[v]] {
				continue
			}
			// Lightest edge from v into each adjacent cluster.
			lightest := map[graph.NodeID]edge{}
			for _, e := range adj[v] {
				c := cluster[e.to]
				if c < 0 {
					continue
				}
				if cur, ok := lightest[c]; !ok || e.wt < cur.wt || (e.wt == cur.wt && e.to < cur.to) {
					lightest[c] = e
				}
			}
			// Lightest edge into a sampled cluster, if any.
			var bestC graph.NodeID = -1
			var best edge
			for c, e := range lightest {
				if !sampled[c] {
					continue
				}
				if bestC < 0 || e.wt < best.wt || (e.wt == best.wt && e.to < best.to) {
					bestC, best = c, e
				}
			}
			if bestC < 0 {
				// No sampled neighbor: add the lightest edge to every
				// adjacent cluster and retire v.
				for _, e := range clustersSorted(lightest) {
					addEdge(v, e.to, e.wt)
				}
				adj[v] = nil
				next[v] = -1
				continue
			}
			// Join the sampled cluster through its lightest edge; also add
			// the lightest edge to every cluster that is strictly lighter.
			addEdge(v, best.to, best.wt)
			next[v] = bestC
			var kept []edge
			for _, e := range adj[v] {
				c := cluster[e.to]
				if c < 0 {
					continue
				}
				le := lightest[c]
				switch {
				case c == bestC:
					// resolved by joining
				case le.wt < best.wt:
					// strictly lighter cluster: connect and resolve
					if e.to == le.to && e.wt == le.wt {
						addEdge(v, e.to, e.wt)
					}
				default:
					kept = append(kept, e)
				}
			}
			adj[v] = kept
		}
		cluster = next
	}

	// Phase 2: every vertex adds its lightest edge to each adjacent
	// final-level cluster.
	for v := graph.NodeID(0); int(v) < n; v++ {
		lightest := map[graph.NodeID]edge{}
		for _, e := range adj[v] {
			c := cluster[e.to]
			if c < 0 || c == cluster[v] {
				continue
			}
			if cur, ok := lightest[c]; !ok || e.wt < cur.wt || (e.wt == cur.wt && e.to < cur.to) {
				lightest[c] = e
			}
		}
		for _, e := range clustersSorted(lightest) {
			addEdge(v, e.to, e.wt)
		}
	}

	// Intra-cluster edges: each vertex keeps the edge that attached it to
	// its cluster center's tree. Those were added when the vertex joined a
	// sampled cluster; in the k=1 degenerate case (no phase-1 levels) the
	// spanner must keep everything adjacent to same-cluster vertices too —
	// with k=1 every vertex is its own cluster, so phase 2 already added
	// the lightest edge per neighbor pair, and all pairs are distinct
	// clusters. Nothing further to do.
	return graph.NewWeighted(n, spanEdges, spanWeights)
}

func clustersSorted(m map[graph.NodeID]edge) []edge {
	keys := make([]graph.NodeID, 0, len(m))
	for c := range m {
		keys = append(keys, c)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]edge, 0, len(keys))
	for _, c := range keys {
		out = append(out, m[c])
	}
	return out
}
