package spanner

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func weightedFrom(g *graph.Graph, seed uint64, maxW int) *graph.Weighted {
	edges := g.EdgeList()
	r := rng.New(seed)
	ws := make([]int32, len(edges))
	for i := range ws {
		ws[i] = int32(1 + r.Intn(maxW))
	}
	return graph.MustWeighted(g.NumNodes(), edges, ws)
}

func checkStretch(t *testing.T, w, sp *graph.Weighted, k int, samples int) {
	t.Helper()
	n := w.NumNodes()
	r := rng.New(99)
	stretch := int64(2*k - 1)
	for s := 0; s < samples; s++ {
		src := graph.NodeID(r.Intn(n))
		orig := w.Dijkstra(src)
		span := sp.Dijkstra(src)
		for v := 0; v < n; v++ {
			if orig[v] == graph.InfDist {
				if span[v] != graph.InfDist {
					t.Fatalf("spanner connected an unreachable pair (%d,%d)", src, v)
				}
				continue
			}
			if span[v] == graph.InfDist {
				t.Fatalf("spanner disconnected pair (%d,%d)", src, v)
			}
			if span[v] < orig[v] {
				t.Fatalf("spanner shortened (%d,%d): %d < %d — not a subgraph?", src, v, span[v], orig[v])
			}
			if span[v] > stretch*orig[v] {
				t.Fatalf("stretch violated for (%d,%d): %d > %d·%d", src, v, span[v], stretch, orig[v])
			}
		}
	}
}

func TestBaswanaSenStretchK2(t *testing.T) {
	g := graph.ErdosRenyi(120, 900, 3)
	g, _ = g.LargestComponent()
	w := weightedFrom(g, 4, 10)
	sp, err := BaswanaSen(w, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	checkStretch(t, w, sp, 2, 10)
}

func TestBaswanaSenStretchK3(t *testing.T) {
	g := graph.ErdosRenyi(150, 1500, 5)
	g, _ = g.LargestComponent()
	w := weightedFrom(g, 6, 10)
	sp, err := BaswanaSen(w, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	checkStretch(t, w, sp, 3, 10)
}

func TestBaswanaSenSparsifiesDenseGraph(t *testing.T) {
	// K_n with k=2: expect O(n^1.5) edges, far below the n²/2 input.
	g := graph.Complete(120)
	w := weightedFrom(g, 8, 5)
	sp, err := BaswanaSen(w, 2, 13)
	if err != nil {
		t.Fatal(err)
	}
	if sp.NumEdges() >= w.NumEdges()/2 {
		t.Fatalf("spanner has %d of %d edges — no sparsification", sp.NumEdges(), w.NumEdges())
	}
	checkStretch(t, w, sp, 2, 10)
}

func TestBaswanaSenSubgraph(t *testing.T) {
	g := graph.ErdosRenyi(60, 300, 9)
	w := weightedFrom(g, 10, 7)
	sp, err := BaswanaSen(w, 2, 17)
	if err != nil {
		t.Fatal(err)
	}
	// Every spanner edge must exist in the original with the same weight.
	for u := graph.NodeID(0); int(u) < sp.NumNodes(); u++ {
		nbrs, ws := sp.Neighbors(u)
		for i, v := range nbrs {
			onbrs, ows := w.Neighbors(u)
			found := false
			for j, ov := range onbrs {
				if ov == v && ows[j] == ws[i] {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("spanner edge (%d,%d,w=%d) not in original", u, v, ws[i])
			}
		}
	}
}

func TestBaswanaSenK1KeepsLightestPerPair(t *testing.T) {
	// k=1 means stretch 1: phase 2 alone runs and keeps the lightest edge
	// between every adjacent pair — i.e. the whole (deduplicated) graph.
	g := graph.Cycle(10)
	w := weightedFrom(g, 12, 4)
	sp, err := BaswanaSen(w, 1, 19)
	if err != nil {
		t.Fatal(err)
	}
	if sp.NumEdges() != w.NumEdges() {
		t.Fatalf("k=1 spanner has %d of %d edges", sp.NumEdges(), w.NumEdges())
	}
	checkStretch(t, w, sp, 1, 5)
}

func TestBaswanaSenErrorsAndEdgeCases(t *testing.T) {
	if _, err := BaswanaSen(graph.MustWeighted(3, nil, nil), 0, 1); err == nil {
		t.Fatal("k=0 should fail")
	}
	sp, err := BaswanaSen(graph.MustWeighted(0, nil, nil), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sp.NumNodes() != 0 {
		t.Fatal("empty graph spanner should be empty")
	}
	// Edgeless graph.
	sp, err = BaswanaSen(graph.MustWeighted(5, nil, nil), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sp.NumEdges() != 0 {
		t.Fatal("edgeless graph should stay edgeless")
	}
}

func TestBaswanaSenDeterministic(t *testing.T) {
	g := graph.ErdosRenyi(80, 400, 21)
	w := weightedFrom(g, 14, 6)
	a, err := BaswanaSen(w, 3, 23)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BaswanaSen(w, 3, 23)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different spanners")
	}
}
