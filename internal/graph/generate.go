package graph

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Synthetic graph generators. These provide the datasets for the
// experimental reproduction (see DESIGN.md §2 for the mapping to the
// paper's benchmark graphs) plus small structured graphs for tests.
// All generators are deterministic functions of their parameters.

// Path returns the path graph on n nodes (diameter n-1).
func Path(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(NodeID(i), NodeID(i+1))
	}
	return b.Build()
}

// Cycle returns the cycle on n nodes (n >= 3).
func Cycle(n int) *Graph {
	if n < 3 {
		panic("graph: cycle needs n >= 3")
	}
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(NodeID(i), NodeID((i+1)%n))
	}
	return b.Build()
}

// Star returns the star with one hub (node 0) and n-1 leaves.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, NodeID(i))
	}
	return b.Build()
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(NodeID(i), NodeID(j))
		}
	}
	return b.Build()
}

// BinaryTree returns the complete binary tree on n nodes (heap indexing).
func BinaryTree(n int) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(NodeID(i), NodeID((i-1)/2))
	}
	return b.Build()
}

// Mesh returns the w x h grid graph. Node (x, y) has id y*w + x.
// Its diameter is (w-1) + (h-1) and its doubling dimension is the constant
// 2, which makes it the paper's "provably effective" benchmark (mesh1000).
func Mesh(w, h int) *Graph {
	if w < 1 || h < 1 {
		panic("graph: mesh dimensions must be positive")
	}
	b := NewBuilder(w * h)
	id := func(x, y int) NodeID { return NodeID(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				b.AddEdge(id(x, y), id(x+1, y))
			}
			if y+1 < h {
				b.AddEdge(id(x, y), id(x, y+1))
			}
		}
	}
	return b.Build()
}

// ErdosRenyi returns a G(n, m)-style random graph with exactly m distinct
// edges (or fewer if m exceeds the number of possible edges).
func ErdosRenyi(n, m int, seed uint64) *Graph {
	maxEdges := int64(n) * int64(n-1) / 2
	if int64(m) > maxEdges {
		m = int(maxEdges)
	}
	r := rng.New(seed)
	b := NewBuilder(n)
	seen := make(map[uint64]bool, m)
	for len(seen) < m {
		u := NodeID(r.Intn(n))
		v := NodeID(r.Intn(n))
		if u == v {
			continue
		}
		key := packPair(u, v)
		if seen[key] {
			continue
		}
		seen[key] = true
		b.AddEdge(u, v)
	}
	return b.Build()
}

// BarabasiAlbert returns a preferential-attachment graph: nodes arrive one
// at a time and connect to mPer existing nodes chosen proportionally to
// degree. The result is connected, has heavy-tailed degrees and a small
// diameter — the stand-in for the paper's social-network datasets.
func BarabasiAlbert(n, mPer int, seed uint64) *Graph {
	if mPer < 1 {
		panic("graph: BarabasiAlbert needs mPer >= 1")
	}
	if n < mPer+1 {
		panic("graph: BarabasiAlbert needs n > mPer")
	}
	r := rng.New(seed)
	b := NewBuilder(n)
	// targets holds each node once per unit of degree; sampling uniformly
	// from it is preferential attachment.
	targets := make([]NodeID, 0, 2*mPer*n)
	// Seed clique on mPer+1 nodes.
	for i := 0; i <= mPer; i++ {
		for j := i + 1; j <= mPer; j++ {
			b.AddEdge(NodeID(i), NodeID(j))
			targets = append(targets, NodeID(i), NodeID(j))
		}
	}
	// Track picks in insertion order (map iteration order would make the
	// generator nondeterministic); mPer is small, so linear scans are fine.
	picked := make([]NodeID, 0, mPer)
	for u := mPer + 1; u < n; u++ {
		picked = picked[:0]
		for len(picked) < mPer {
			t := targets[r.Intn(len(targets))]
			dup := false
			for _, p := range picked {
				if p == t {
					dup = true
					break
				}
			}
			if !dup {
				picked = append(picked, t)
			}
		}
		for _, t := range picked {
			b.AddEdge(NodeID(u), t)
			targets = append(targets, NodeID(u), t)
		}
	}
	return b.Build()
}

// RMAT returns an R-MAT (recursive matrix) random graph with 2^scale nodes
// and approximately edgeFactor * 2^scale undirected edges, using the
// standard (a, b, c, d) = (0.57, 0.19, 0.19, 0.05) partition probabilities.
// Duplicates and self-loops are dropped, so the realized edge count is
// somewhat lower. The graph may be disconnected; callers that need
// connectivity should take the LargestComponent.
func RMAT(scale, edgeFactor int, seed uint64) *Graph {
	n := 1 << scale
	r := rng.New(seed)
	b := NewBuilder(n)
	const a, bb, c = 0.57, 0.19, 0.19
	samples := edgeFactor * n
	for i := 0; i < samples; i++ {
		var u, v int
		for bit := scale - 1; bit >= 0; bit-- {
			p := r.Float64()
			switch {
			case p < a:
				// top-left: nothing set
			case p < a+bb:
				v |= 1 << bit
			case p < a+bb+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u != v {
			b.AddEdge(NodeID(u), NodeID(v))
		}
	}
	return b.Build()
}

// RandomRegular returns an (approximately) d-regular random graph via the
// configuration model: n*d stubs are shuffled and paired; self-loops and
// duplicate edges are discarded, so a few nodes may have degree slightly
// below d. For d >= 3 the result is an expander and connected with high
// probability; callers that require connectivity should take the
// LargestComponent.
func RandomRegular(n, d int, seed uint64) *Graph {
	if n*d%2 != 0 {
		panic("graph: RandomRegular needs n*d even")
	}
	r := rng.New(seed)
	stubs := make([]NodeID, n*d)
	for i := range stubs {
		stubs[i] = NodeID(i / d)
	}
	// Fisher-Yates shuffle.
	for i := len(stubs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		stubs[i], stubs[j] = stubs[j], stubs[i]
	}
	b := NewBuilder(n)
	for i := 0; i+1 < len(stubs); i += 2 {
		b.AddEdge(stubs[i], stubs[i+1]) // Builder drops self-loops/dups
	}
	return b.Build()
}

// ExpanderPath builds the paper's Section 3 example: a constant-degree
// expander on n - tail nodes with a path of length tail attached. If tail
// is 0, sqrt(n) is used. Cluster decompositions of this graph have maximum
// radius polylogarithmic in n while its diameter is Ω(tail).
func ExpanderPath(n, tail int, seed uint64) *Graph {
	if tail <= 0 {
		tail = int(math.Sqrt(float64(n)))
	}
	core := n - tail
	if core < 4 {
		panic("graph: ExpanderPath core too small")
	}
	if core%2 == 1 {
		core, tail = core-1, tail+1 // keep core*3 even
	}
	exp := RandomRegular(core, 3, seed)
	exp, _ = exp.LargestComponent()
	nc := exp.NumNodes()
	b := NewBuilder(nc + tail)
	exp.Edges(func(u, v NodeID) bool {
		b.AddEdge(u, v)
		return true
	})
	prev := NodeID(0) // attach the path to node 0 of the expander
	for i := 0; i < tail; i++ {
		next := NodeID(nc + i)
		b.AddEdge(prev, next)
		prev = next
	}
	return b.Build()
}

// RoadLike returns a long-diameter, nearly planar, bounded-degree graph
// resembling a road network: a w x h grid whose non-tree edges are kept
// with probability keepFrac (a random spanning tree is always kept, so the
// graph stays connected). keepFrac around 0.3-0.5 yields diameters a small
// multiple of w+h, mimicking the paper's road datasets.
func RoadLike(w, h int, keepFrac float64, seed uint64) *Graph {
	if w < 2 || h < 2 {
		panic("graph: RoadLike dimensions too small")
	}
	n := w * h
	r := rng.New(seed)
	id := func(x, y int) NodeID { return NodeID(y*w + x) }

	// Random spanning tree via randomized DFS (maze generation).
	visited := make([]bool, n)
	type pos struct{ x, y int }
	stack := []pos{{0, 0}}
	visited[0] = true
	b := NewBuilder(n)
	dirs := [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		// Collect unvisited neighbors.
		var cand []pos
		for _, d := range dirs {
			nx, ny := cur.x+d[0], cur.y+d[1]
			if nx >= 0 && nx < w && ny >= 0 && ny < h && !visited[id(nx, ny)] {
				cand = append(cand, pos{nx, ny})
			}
		}
		if len(cand) == 0 {
			stack = stack[:len(stack)-1]
			continue
		}
		next := cand[r.Intn(len(cand))]
		visited[id(next.x, next.y)] = true
		b.AddEdge(id(cur.x, cur.y), id(next.x, next.y))
		stack = append(stack, next)
	}

	// Keep each remaining grid edge with probability keepFrac. The builder
	// deduplicates edges already added by the tree.
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w && r.Bernoulli(keepFrac) {
				b.AddEdge(id(x, y), id(x+1, y))
			}
			if y+1 < h && r.Bernoulli(keepFrac) {
				b.AddEdge(id(x, y), id(x, y+1))
			}
		}
	}
	return b.Build()
}

// WattsStrogatz returns a small-world graph: a ring lattice where every
// node connects to its k nearest neighbors (k even), with each edge
// rewired to a random endpoint with probability beta. Low beta keeps the
// lattice's long diameter; moderate beta collapses it to O(log n) — a
// useful dataset family for studying how the decomposition's advantage
// degrades as a graph transitions from the road regime to the social one.
func WattsStrogatz(n, k int, beta float64, seed uint64) *Graph {
	if k < 2 || k%2 != 0 {
		panic("graph: WattsStrogatz needs even k >= 2")
	}
	if n <= k {
		panic("graph: WattsStrogatz needs n > k")
	}
	r := rng.New(seed)
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for j := 1; j <= k/2; j++ {
			v := (u + j) % n
			if r.Bernoulli(beta) {
				// Rewire: random endpoint avoiding self-loops; the builder
				// deduplicates collisions with existing edges.
				v = r.Intn(n)
				if v == u {
					v = (u + 1) % n
				}
			}
			b.AddEdge(NodeID(u), NodeID(v))
		}
	}
	return b.Build()
}

// AppendTail returns a copy of g with a path of tailLen new nodes attached
// to anchor, the modification used by the paper's Figure 1 experiment to
// inflate the diameter without altering the base structure. The new nodes
// get ids n, n+1, ..., n+tailLen-1.
func AppendTail(g *Graph, anchor NodeID, tailLen int) *Graph {
	n := g.NumNodes()
	if anchor < 0 || int(anchor) >= n {
		panic(fmt.Sprintf("graph: tail anchor %d out of range", anchor))
	}
	b := NewBuilder(n + tailLen)
	g.Edges(func(u, v NodeID) bool {
		b.AddEdge(u, v)
		return true
	})
	prev := anchor
	for i := 0; i < tailLen; i++ {
		next := NodeID(n + i)
		b.AddEdge(prev, next)
		prev = next
	}
	return b.Build()
}
