package graph

import (
	"context"
	"errors"
	"testing"
)

// The shared-engine iFUB paths must honor cancellation at their search
// boundaries and report it as an error — distinct from the budget-
// exhausted inexact result, which stays error-free.
func TestExactDiameterContextCancelled(t *testing.T) {
	g := Mesh(25, 25)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := g.ExactDiameterContext(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("ExactDiameterContext err = %v, want context.Canceled", err)
	}

	edges := g.EdgeList()
	ws := make([]int32, len(edges))
	for i := range ws {
		ws[i] = 1
	}
	wg := MustWeighted(g.NumNodes(), edges, ws)
	if _, _, err := wg.ExactDiameterWeightedContext(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("ExactDiameterWeightedContext err = %v, want context.Canceled", err)
	}

	// Budget exhaustion (no cancellation) still reports inexact, not error.
	if _, exact, err := g.ExactDiameterContext(context.Background(), 1); err != nil || exact {
		t.Fatalf("budget-limited run: exact=%v err=%v, want inexact and no error", exact, err)
	}
}
