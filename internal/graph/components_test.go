package graph

import "testing"

func TestConnectedComponentsSingle(t *testing.T) {
	g := Mesh(5, 5)
	labels, k := g.ConnectedComponents()
	if k != 1 {
		t.Fatalf("k=%d want 1", k)
	}
	for _, l := range labels {
		if l != 0 {
			t.Fatal("labels not all zero")
		}
	}
}

func TestConnectedComponentsMultiple(t *testing.T) {
	b := NewBuilder(7)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	// 5, 6 isolated
	g := b.Build()
	labels, k := g.ConnectedComponents()
	if k != 4 {
		t.Fatalf("k=%d want 4", k)
	}
	if labels[0] != labels[1] || labels[2] != labels[3] || labels[3] != labels[4] {
		t.Fatal("component labels wrong")
	}
	if labels[5] == labels[6] {
		t.Fatal("isolated nodes merged")
	}
}

func TestIsConnected(t *testing.T) {
	if !Path(10).IsConnected() {
		t.Fatal("path should be connected")
	}
	if !NewBuilder(0).Build().IsConnected() {
		t.Fatal("empty graph counts as connected")
	}
	b := NewBuilder(2)
	if b.Build().IsConnected() {
		t.Fatal("two isolated nodes are not connected")
	}
}

func TestLargestComponent(t *testing.T) {
	b := NewBuilder(10)
	// Component A: 0-1-2 (3 nodes). Component B: 3-4-5-6-7 (5 nodes).
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	for i := 3; i < 7; i++ {
		b.AddEdge(NodeID(i), NodeID(i+1))
	}
	g := b.Build()
	lc, ids := g.LargestComponent()
	if lc.NumNodes() != 5 {
		t.Fatalf("largest component %d nodes want 5", lc.NumNodes())
	}
	if lc.NumEdges() != 4 {
		t.Fatalf("largest component %d edges want 4", lc.NumEdges())
	}
	for newID, origID := range ids {
		if origID < 3 || origID > 7 {
			t.Fatalf("mapping wrong: new %d -> orig %d", newID, origID)
		}
	}
	if !lc.IsConnected() {
		t.Fatal("extracted component not connected")
	}
}

func TestLargestComponentAlreadyConnected(t *testing.T) {
	g := Cycle(8)
	lc, ids := g.LargestComponent()
	if lc != g {
		t.Fatal("connected graph should be returned as-is")
	}
	for i, id := range ids {
		if id != NodeID(i) {
			t.Fatal("identity mapping expected")
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Complete(6)
	sub, ids := g.InducedSubgraph(func(u NodeID) bool { return u%2 == 0 })
	if sub.NumNodes() != 3 {
		t.Fatalf("n=%d want 3", sub.NumNodes())
	}
	if sub.NumEdges() != 3 {
		t.Fatalf("m=%d want 3 (K3)", sub.NumEdges())
	}
	for _, id := range ids {
		if id%2 != 0 {
			t.Fatal("kept odd node")
		}
	}
}
