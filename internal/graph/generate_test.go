package graph

import (
	"testing"
)

func TestMeshProperties(t *testing.T) {
	g := Mesh(10, 7)
	if g.NumNodes() != 70 {
		t.Fatalf("n=%d", g.NumNodes())
	}
	wantEdges := 9*7 + 10*6
	if g.NumEdges() != wantEdges {
		t.Fatalf("m=%d want %d", g.NumEdges(), wantEdges)
	}
	if !g.IsConnected() {
		t.Fatal("mesh disconnected")
	}
	if d := g.DiameterExhaustive(); d != 15 {
		t.Fatalf("mesh diameter %d want 15", d)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMesh1x1(t *testing.T) {
	g := Mesh(1, 1)
	if g.NumNodes() != 1 || g.NumEdges() != 0 {
		t.Fatal("1x1 mesh wrong")
	}
}

func TestBarabasiAlbertProperties(t *testing.T) {
	g := BarabasiAlbert(2000, 4, 42)
	if g.NumNodes() != 2000 {
		t.Fatalf("n=%d", g.NumNodes())
	}
	if !g.IsConnected() {
		t.Fatal("BA graph must be connected by construction")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Heavy tail: the max degree should far exceed the average.
	s := Summarize(g)
	if float64(s.MaxDegree) < 4*s.AvgDegree {
		t.Fatalf("BA degrees look uniform: max=%d avg=%.1f", s.MaxDegree, s.AvgDegree)
	}
	// Social-like: small diameter.
	_, lb := g.TwoSweep(0)
	if lb > 12 {
		t.Fatalf("BA graph diameter lower bound %d suspiciously large", lb)
	}
}

func TestBarabasiAlbertDeterministic(t *testing.T) {
	a := BarabasiAlbert(500, 3, 7)
	b := BarabasiAlbert(500, 3, 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	for u := NodeID(0); u < 500; u++ {
		if a.Degree(u) != b.Degree(u) {
			t.Fatal("same seed produced different degrees")
		}
	}
	c := BarabasiAlbert(500, 3, 8)
	diff := false
	for u := NodeID(0); u < 500; u++ {
		if a.Degree(u) != c.Degree(u) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestErdosRenyiEdgeCount(t *testing.T) {
	g := ErdosRenyi(100, 300, 5)
	if g.NumEdges() != 300 {
		t.Fatalf("m=%d want 300", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestErdosRenyiClampsToMaxEdges(t *testing.T) {
	g := ErdosRenyi(5, 100, 1)
	if g.NumEdges() != 10 {
		t.Fatalf("m=%d want 10 (complete K5)", g.NumEdges())
	}
}

func TestRMATProperties(t *testing.T) {
	g := RMAT(12, 8, 3)
	if g.NumNodes() != 1<<12 {
		t.Fatalf("n=%d", g.NumNodes())
	}
	if g.NumEdges() == 0 {
		t.Fatal("RMAT produced no edges")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	lc, _ := g.LargestComponent()
	if lc.NumNodes() < g.NumNodes()/4 {
		t.Fatalf("RMAT largest component only %d of %d", lc.NumNodes(), g.NumNodes())
	}
}

func TestRandomRegularProperties(t *testing.T) {
	g := RandomRegular(1000, 4, 9)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Configuration model drops a few conflicting pairings; most nodes keep
	// full degree.
	full := 0
	for u := NodeID(0); u < 1000; u++ {
		if g.Degree(u) == 4 {
			full++
		}
		if g.Degree(u) > 4 {
			t.Fatalf("degree(%d)=%d exceeds 4", u, g.Degree(u))
		}
	}
	if full < 900 {
		t.Fatalf("only %d/1000 nodes have full degree", full)
	}
	lc, _ := g.LargestComponent()
	if lc.NumNodes() < 990 {
		t.Fatalf("random regular graph essentially disconnected: %d", lc.NumNodes())
	}
}

func TestExpanderPathShape(t *testing.T) {
	g := ExpanderPath(2000, 0, 4)
	if !g.IsConnected() {
		t.Fatal("expander+path disconnected")
	}
	// The diameter must be at least the tail length (~sqrt(2000) ≈ 44).
	_, lb := g.TwoSweep(0)
	if lb < 40 {
		t.Fatalf("expander+path diameter lower bound %d, want >= 40", lb)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRoadLikeProperties(t *testing.T) {
	g := RoadLike(40, 40, 0.4, 11)
	if g.NumNodes() != 1600 {
		t.Fatalf("n=%d", g.NumNodes())
	}
	if !g.IsConnected() {
		t.Fatal("road-like graph must stay connected (spanning tree kept)")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Long diameter: at least the grid diameter.
	d, exact := g.ExactDiameter(0)
	if !exact {
		t.Fatal("diameter not exact")
	}
	if d < 78 {
		t.Fatalf("road-like diameter %d, want >= grid diameter 78", d)
	}
	// Bounded degree.
	s := Summarize(g)
	if s.MaxDegree > 4 {
		t.Fatalf("road-like max degree %d > 4", s.MaxDegree)
	}
}

func TestRoadLikeDeterministic(t *testing.T) {
	a := RoadLike(20, 20, 0.3, 5)
	b := RoadLike(20, 20, 0.3, 5)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed, different graphs")
	}
}

func TestAppendTail(t *testing.T) {
	g := Cycle(10)
	g2 := AppendTail(g, 3, 7)
	if g2.NumNodes() != 17 {
		t.Fatalf("n=%d want 17", g2.NumNodes())
	}
	if g2.NumEdges() != g.NumEdges()+7 {
		t.Fatalf("m=%d", g2.NumEdges())
	}
	if !g2.IsConnected() {
		t.Fatal("tail disconnected")
	}
	// Diameter grows to tail end: dist from node opposite 3 on the cycle to
	// the tail tip is 5 + 7.
	if d := g2.DiameterExhaustive(); d != 12 {
		t.Fatalf("diameter %d want 12", d)
	}
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAppendTailZeroLength(t *testing.T) {
	g := Path(5)
	g2 := AppendTail(g, 0, 0)
	if g2.NumNodes() != 5 || g2.NumEdges() != 4 {
		t.Fatal("zero-length tail changed the graph")
	}
}

func TestPathCycleStarCompleteSmall(t *testing.T) {
	if Path(1).NumEdges() != 0 {
		t.Fatal("Path(1)")
	}
	if Star(1).NumEdges() != 0 {
		t.Fatal("Star(1)")
	}
	if Complete(3).NumEdges() != 3 {
		t.Fatal("Complete(3)")
	}
	if Cycle(3).NumEdges() != 3 {
		t.Fatal("Cycle(3)")
	}
}

func TestEstimateDoublingDimensionMesh(t *testing.T) {
	g := Mesh(40, 40)
	b := EstimateDoublingDimension(g, 10, 3)
	// A 2D mesh has doubling dimension 2; the empirical estimate should be
	// in a plausible band around that (greedy covers overshoot a little).
	if b < 1 || b > 4.5 {
		t.Fatalf("mesh doubling dimension estimate %.2f outside [1, 4.5]", b)
	}
}
