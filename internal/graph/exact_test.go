package graph

import "testing"

// Regression: the original double-sweep midpoint walk could land on a grid
// corner (walking a boundary geodesic), making iFUB scan half the mesh.
// The 4-sweep root (argmin of max distance to three extremes) must certify
// grid-like graphs within a handful of searches.

func TestExactDiameterMeshSmallBudget(t *testing.T) {
	g := Mesh(120, 120)
	d, exact := g.ExactDiameter(64)
	if !exact {
		t.Fatal("mesh not certified within 64 BFS — root selection regressed")
	}
	if d != 238 {
		t.Fatalf("mesh diameter %d want 238", d)
	}
}

func TestExactDiameterRoadSmallBudget(t *testing.T) {
	g := RoadLike(80, 80, 0.4, 103)
	d, exact := g.ExactDiameter(1024)
	if !exact {
		t.Fatal("road-like graph not certified within 1024 BFS")
	}
	if want := g.DiameterExhaustive(); d != want {
		t.Fatalf("diameter %d want %d", d, want)
	}
}

func TestExactDiameterWeightedMeshSmallBudget(t *testing.T) {
	g := Mesh(60, 60)
	wg := unitWeighted(g)
	d, exact := wg.ExactDiameterWeighted(64)
	if !exact {
		t.Fatal("weighted mesh not certified within 64 searches")
	}
	if d != 118 {
		t.Fatalf("weighted mesh diameter %d want 118", d)
	}
}

func TestExactDiameterRectangularMesh(t *testing.T) {
	// Extremely skewed aspect ratio stresses the root selection.
	g := Mesh(200, 5)
	d, exact := g.ExactDiameter(64)
	if !exact || d != 203 {
		t.Fatalf("got (%d, %v) want (203, true)", d, exact)
	}
}

func TestExactDiameterCycleSmallBudget(t *testing.T) {
	// On a cycle every node is equivalent; lower = ecc = n/2 and all nodes
	// sit at levels <= n/4 from the root... they do not: levels reach n/2.
	// iFUB still certifies after one level because ecc == lower everywhere.
	g := Cycle(200)
	d, exact := g.ExactDiameter(0)
	if !exact || d != 100 {
		t.Fatalf("cycle: got (%d, %v) want (100, true)", d, exact)
	}
}

func TestExactDiameterStarAndComplete(t *testing.T) {
	if d, exact := Star(50).ExactDiameter(16); !exact || d != 2 {
		t.Fatalf("star: (%d, %v)", d, exact)
	}
	// K_n is iFUB's worst case: every node sits at level 1 and the level
	// bound 2 exceeds the diameter 1, so all n nodes must be swept.
	if d, exact := Complete(30).ExactDiameter(64); !exact || d != 1 {
		t.Fatalf("complete: (%d, %v)", d, exact)
	}
}
