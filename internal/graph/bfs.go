package graph

// Sequential breadth-first search utilities. These are the reference
// implementations used for ground truth in tests and for exact diameter
// computation on quotient graphs; the distributed/parallel variants live in
// internal/pbfs and internal/bsp.

// BFS computes hop distances from src. Unreachable nodes get distance -1.
// The returned slice has length NumNodes.
func (g *Graph) BFS(src NodeID) []int32 {
	dist := make([]int32, g.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	g.BFSInto(src, dist, nil)
	return dist
}

// BFSInto runs BFS from src reusing caller-provided storage. dist must have
// length NumNodes and be pre-filled with -1; queue, if non-nil, is used as
// scratch and must have capacity NumNodes. It returns the eccentricity of
// src within its component.
func (g *Graph) BFSInto(src NodeID, dist []int32, queue []NodeID) int32 {
	if queue == nil {
		queue = make([]NodeID, 0, g.NumNodes())
	}
	queue = queue[:0]
	queue = append(queue, src)
	dist[src] = 0
	var ecc int32
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		if du > ecc {
			ecc = du
		}
		for _, v := range g.Neighbors(u) {
			if dist[v] < 0 {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
	return ecc
}

// Eccentricity returns the maximum hop distance from src to any node
// reachable from it.
func (g *Graph) Eccentricity(src NodeID) int32 {
	dist := make([]int32, g.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	return g.BFSInto(src, dist, nil)
}

// FarthestFrom returns a node at maximum hop distance from src together
// with that distance (the eccentricity of src). Ties break toward the
// smallest node id for determinism.
func (g *Graph) FarthestFrom(src NodeID) (NodeID, int32) {
	dist := g.BFS(src)
	best, arg := int32(-1), src
	for u, d := range dist {
		if d > best {
			best, arg = d, NodeID(u)
		}
	}
	return arg, best
}

// TwoSweep performs the classical double-sweep heuristic: a BFS from start
// finds a far node a, a BFS from a finds ecc(a). It returns a and ecc(a),
// which is a lower bound on the diameter (and empirically very tight on
// real-world graphs).
func (g *Graph) TwoSweep(start NodeID) (far NodeID, lower int32) {
	a, _ := g.FarthestFrom(start)
	b, eccA := g.FarthestFrom(a)
	_ = b
	return a, eccA
}

// MultiSourceBFS computes, for every node, the hop distance to the nearest
// of the given sources and which source reached it (the "owner"). Sources
// claim nodes in BFS order with ties broken by queue order, which is the
// sequential analogue of the paper's "arbitrary" concurrent tie-break.
// Unreached nodes get distance -1 and owner None.
func (g *Graph) MultiSourceBFS(sources []NodeID) (dist []int32, owner []NodeID) {
	n := g.NumNodes()
	dist = make([]int32, n)
	owner = make([]NodeID, n)
	for i := range dist {
		dist[i] = -1
		owner[i] = None
	}
	queue := make([]NodeID, 0, n)
	for _, s := range sources {
		if dist[s] == 0 && owner[s] != None {
			continue // duplicate source
		}
		dist[s] = 0
		owner[s] = s
		queue = append(queue, s)
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.Neighbors(u) {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				owner[v] = owner[u]
				queue = append(queue, v)
			}
		}
	}
	return dist, owner
}

// AllEccentricities computes the eccentricity of every node by running a
// full BFS from each. O(n·m): intended for small graphs and tests only.
func (g *Graph) AllEccentricities() []int32 {
	n := g.NumNodes()
	ecc := make([]int32, n)
	dist := make([]int32, n)
	queue := make([]NodeID, 0, n)
	for u := 0; u < n; u++ {
		for i := range dist {
			dist[i] = -1
		}
		ecc[u] = g.BFSInto(NodeID(u), dist, queue)
	}
	return ecc
}

// DiameterExhaustive computes the exact diameter by full APSP via repeated
// BFS. O(n·m); use ExactDiameter (iFUB) for anything but tiny graphs.
// On a disconnected graph it returns the largest eccentricity within any
// component. The empty graph has diameter 0.
func (g *Graph) DiameterExhaustive() int32 {
	var diam int32
	for _, e := range g.AllEccentricities() {
		if e > diam {
			diam = e
		}
	}
	return diam
}
