package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func unitWeighted(g *Graph) *Weighted {
	edges := g.EdgeList()
	w := make([]int32, len(edges))
	for i := range w {
		w[i] = 1
	}
	return MustWeighted(g.NumNodes(), edges, w)
}

func TestDijkstraMatchesBFSOnUnitWeights(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomConnectedGraph(t, 60, 100, seed)
		wg := unitWeighted(g)
		src := NodeID(int(seed % 60))
		bfs := g.BFS(src)
		dij := wg.Dijkstra(src)
		for u := range bfs {
			if int64(bfs[u]) != dij[u] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDijkstraWeightedPath(t *testing.T) {
	// 0 -5- 1 -2- 2 -7- 3
	wg := MustWeighted(4, [][2]NodeID{{0, 1}, {1, 2}, {2, 3}}, []int32{5, 2, 7})
	dist := wg.Dijkstra(0)
	want := []int64{0, 5, 7, 14}
	for u, d := range want {
		if dist[u] != d {
			t.Fatalf("dist[%d]=%d want %d", u, dist[u], d)
		}
	}
}

func TestDijkstraPrefersLightPath(t *testing.T) {
	// Direct heavy edge 0-2 (10) vs light detour 0-1-2 (2+3).
	wg := MustWeighted(3, [][2]NodeID{{0, 2}, {0, 1}, {1, 2}}, []int32{10, 2, 3})
	dist := wg.Dijkstra(0)
	if dist[2] != 5 {
		t.Fatalf("dist[2]=%d want 5", dist[2])
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	wg := MustWeighted(3, [][2]NodeID{{0, 1}}, []int32{4})
	dist := wg.Dijkstra(0)
	if dist[2] != InfDist {
		t.Fatalf("unreachable node should be InfDist, got %d", dist[2])
	}
}

func TestNewWeightedKeepsMinimumDuplicate(t *testing.T) {
	wg := MustWeighted(2, [][2]NodeID{{0, 1}, {1, 0}, {0, 1}}, []int32{9, 4, 6})
	if wg.NumEdges() != 1 {
		t.Fatalf("m=%d want 1", wg.NumEdges())
	}
	if d := wg.Dijkstra(0)[1]; d != 4 {
		t.Fatalf("kept weight %d want 4", d)
	}
}

func TestNewWeightedRejectsBadInput(t *testing.T) {
	if _, err := NewWeighted(3, [][2]NodeID{{0, 1}}, nil); err == nil {
		t.Fatal("edge/weight length mismatch should fail")
	}
	if _, err := NewWeighted(3, [][2]NodeID{{0, 1}}, []int32{0}); err == nil {
		t.Fatal("zero weight should fail")
	}
	if _, err := NewWeighted(3, [][2]NodeID{{0, 1}}, []int32{-4}); err == nil {
		t.Fatal("negative weight should fail")
	}
	if _, err := NewWeighted(3, [][2]NodeID{{0, 3}}, []int32{1}); err == nil {
		t.Fatal("out-of-range endpoint should fail")
	}
	if wg, err := NewWeighted(0, nil, nil); err != nil || wg.NumNodes() != 0 {
		t.Fatalf("empty graph should build: %v", err)
	}
}

func TestWeightedUnweightedRoundTrip(t *testing.T) {
	g := Mesh(6, 6)
	wg := unitWeighted(g)
	g2 := wg.Unweighted()
	if g2.NumEdges() != g.NumEdges() || g2.NumNodes() != g.NumNodes() {
		t.Fatal("round trip changed graph size")
	}
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestExactDiameterWeightedMatchesExhaustive(t *testing.T) {
	r := rng.New(17)
	for trial := 0; trial < 15; trial++ {
		g := randomConnectedGraph(t, 40, 70, uint64(trial))
		edges := g.EdgeList()
		w := make([]int32, len(edges))
		for i := range w {
			w[i] = int32(1 + r.Intn(9))
		}
		wg := MustWeighted(g.NumNodes(), edges, w)
		want := wg.DiameterExhaustiveWeighted()
		got, exact := wg.ExactDiameterWeighted(0)
		if !exact || got != want {
			t.Fatalf("trial %d: weighted iFUB (%d,%v) want (%d,true)", trial, got, exact, want)
		}
	}
}

func TestExactDiameterWeightedUnitMatchesUnweighted(t *testing.T) {
	g := RoadLike(20, 20, 0.4, 2)
	wg := unitWeighted(g)
	want, _ := g.ExactDiameter(0)
	got, exact := wg.ExactDiameterWeighted(0)
	if !exact || got != int64(want) {
		t.Fatalf("unit weighted diameter (%d,%v) want (%d,true)", got, exact, want)
	}
}

func TestWeightedEccentricity(t *testing.T) {
	wg := MustWeighted(4, [][2]NodeID{{0, 1}, {1, 2}, {2, 3}}, []int32{5, 2, 7})
	if e := wg.WeightedEccentricity(0); e != 14 {
		t.Fatalf("ecc=%d want 14", e)
	}
	if e := wg.WeightedEccentricity(2); e != 7 {
		t.Fatalf("ecc=%d want 7", e)
	}
}
