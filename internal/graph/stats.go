package graph

import (
	"fmt"
	"math"
	"sort"
)

// Stats summarizes a graph for experiment reports (Table 1 of the paper).
type Stats struct {
	Nodes      int
	Edges      int
	MinDegree  int
	MaxDegree  int
	AvgDegree  float64
	Components int
}

// Summarize computes basic statistics of g.
func Summarize(g *Graph) Stats {
	n := g.NumNodes()
	s := Stats{Nodes: n, Edges: g.NumEdges()}
	if n == 0 {
		return s
	}
	s.MinDegree = g.Degree(0)
	for u := NodeID(0); u < NodeID(n); u++ {
		d := g.Degree(u)
		if d < s.MinDegree {
			s.MinDegree = d
		}
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
	}
	s.AvgDegree = 2 * float64(s.Edges) / float64(n)
	_, s.Components = g.ConnectedComponents()
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("n=%d m=%d deg[min=%d avg=%.2f max=%d] components=%d",
		s.Nodes, s.Edges, s.MinDegree, s.AvgDegree, s.MaxDegree, s.Components)
}

// DegreeHistogram returns the sorted distinct degrees and their counts.
func DegreeHistogram(g *Graph) (degrees []int, counts []int) {
	hist := map[int]int{}
	for u := NodeID(0); u < NodeID(g.NumNodes()); u++ {
		hist[g.Degree(u)]++
	}
	for d := range hist {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	counts = make([]int, len(degrees))
	for i, d := range degrees {
		counts[i] = hist[d]
	}
	return degrees, counts
}

// EstimateDoublingDimension empirically estimates the doubling dimension b
// of g (Definition 2 of the paper): the smallest b such that every ball of
// radius 2R is covered by at most 2^b balls of radius R. It samples
// `samples` (center, R) pairs, greedily covers each ball B(c, 2R) with
// radius-R balls, and returns log2 of the worst cover size found. This is a
// heuristic lower estimate (exact computation is infeasible), adequate for
// characterizing datasets as "low doubling dimension".
func EstimateDoublingDimension(g *Graph, samples int, seed uint64) float64 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	worst := 1
	dist := make([]int32, n)
	queue := make([]NodeID, 0, n)
	for s := 0; s < samples; s++ {
		center := NodeID(hashMod(seed, uint64(s), n))
		for i := range dist {
			dist[i] = -1
		}
		ecc := g.BFSInto(center, dist, queue)
		if ecc < 2 {
			continue
		}
		r := 1 + int32(hashMod(seed, uint64(s)*2654435761+1, int(ecc/2)))
		// Nodes in B(center, 2r).
		var ball []NodeID
		for u, d := range dist {
			if d >= 0 && d <= 2*r {
				ball = append(ball, NodeID(u))
			}
		}
		// Greedy cover with radius-r balls centered in the ball.
		covered := make(map[NodeID]bool, len(ball))
		centers := 0
		d2 := make([]int32, n)
		for len(covered) < len(ball) {
			// Pick the first uncovered node as the next center.
			var c NodeID = -1
			for _, u := range ball {
				if !covered[u] {
					c = u
					break
				}
			}
			for i := range d2 {
				d2[i] = -1
			}
			g.BFSInto(c, d2, queue)
			for _, u := range ball {
				if d2[u] >= 0 && d2[u] <= r {
					covered[u] = true
				}
			}
			centers++
		}
		if centers > worst {
			worst = centers
		}
	}
	return math.Log2(float64(worst))
}

func hashMod(seed, x uint64, m int) int {
	if m <= 0 {
		return 0
	}
	h := seed*0x9e3779b97f4a7c15 + x
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int(h % uint64(m))
}
