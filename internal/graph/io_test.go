package graph

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestEdgeListWriteReadRoundTrip(t *testing.T) {
	g := BarabasiAlbert(300, 3, 6)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: n=%d->%d m=%d->%d",
			g.NumNodes(), g2.NumNodes(), g.NumEdges(), g2.NumEdges())
	}
	for u := NodeID(0); u < NodeID(g.NumNodes()); u++ {
		if g.Degree(u) != g2.Degree(u) {
			t.Fatalf("degree mismatch at %d", u)
		}
	}
}

func TestReadEdgeListComments(t *testing.T) {
	in := "# a comment\n0 1\n\n# another\n1 2\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
}

func TestReadEdgeListHeaderFixesNodeCount(t *testing.T) {
	in := "# nodes: 10 edges: 1\n0 1\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 10 {
		t.Fatalf("n=%d want 10 (isolated nodes preserved)", g.NumNodes())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for _, in := range []string{"0\n", "a b\n", "-1 2\n"} {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Fatalf("input %q should fail", in)
		}
	}
}

func TestSaveLoadEdgeList(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.txt")
	g := Mesh(9, 4)
	if err := SaveEdgeList(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadEdgeList(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("save/load mismatch")
	}
}

func TestLoadEdgeListGzip(t *testing.T) {
	g := Mesh(8, 5)
	var plain bytes.Buffer
	if err := WriteEdgeList(&plain, g); err != nil {
		t.Fatal(err)
	}
	var packed bytes.Buffer
	zw := gzip.NewWriter(&packed)
	if _, err := zw.Write(plain.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	// Detection is by magic bytes, so both a .gz name and a misnamed .txt
	// must decompress.
	for _, name := range []string{"g.txt.gz", "mislabeled.txt"} {
		path := filepath.Join(t.TempDir(), name)
		if err := os.WriteFile(path, packed.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		g2, err := LoadEdgeList(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("%s: gzip round trip mismatch", name)
		}
	}
}

func TestLoadEdgeListCorruptGzip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.gz")
	// Gzip magic followed by garbage must surface an error, not parse as
	// a text edge list.
	if err := os.WriteFile(path, []byte{0x1f, 0x8b, 0xff, 0x00, 0x01}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadEdgeList(path); err == nil {
		t.Fatal("corrupt gzip should fail")
	}
}

func TestLoadEdgeListMissingFile(t *testing.T) {
	if _, err := LoadEdgeList(filepath.Join(t.TempDir(), "missing.txt")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestSummarize(t *testing.T) {
	g := Star(11)
	s := Summarize(g)
	if s.Nodes != 11 || s.Edges != 10 || s.MaxDegree != 10 || s.MinDegree != 1 || s.Components != 1 {
		t.Fatalf("stats: %+v", s)
	}
	if s.AvgDegree < 1.8 || s.AvgDegree > 1.82 {
		t.Fatalf("avg degree %v", s.AvgDegree)
	}
	if !strings.Contains(s.String(), "n=11") {
		t.Fatal("String() missing node count")
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := Star(5) // one hub of degree 4, four leaves of degree 1
	deg, cnt := DegreeHistogram(g)
	if len(deg) != 2 || deg[0] != 1 || deg[1] != 4 || cnt[0] != 4 || cnt[1] != 1 {
		t.Fatalf("histogram deg=%v cnt=%v", deg, cnt)
	}
}
