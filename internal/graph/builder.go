package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates undirected edges and produces an immutable CSR Graph.
// Self-loops are dropped and duplicate edges are merged; adjacency lists in
// the resulting graph are strictly increasing.
//
// Builder is not safe for concurrent use.
type Builder struct {
	n     int
	pairs []uint64 // packed (min,max) node pairs
}

// NewBuilder returns a builder for a graph with n nodes.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Builder{n: n}
}

// Grow raises the node count to at least n.
func (b *Builder) Grow(n int) {
	if n > b.n {
		b.n = n
	}
}

// NumNodes returns the current node count.
func (b *Builder) NumNodes() int { return b.n }

// AddEdge records the undirected edge {u, v}. Self-loops are ignored.
// Endpoints must be in [0, n).
func (b *Builder) AddEdge(u, v NodeID) {
	if u == v {
		return
	}
	if u < 0 || v < 0 || int(u) >= b.n || int(v) >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range n=%d", u, v, b.n))
	}
	b.pairs = append(b.pairs, packPair(u, v))
}

// Build produces the CSR graph. The builder remains usable afterwards
// (further edges may be added and Build called again).
func (b *Builder) Build() *Graph {
	pairs := make([]uint64, len(b.pairs))
	copy(pairs, b.pairs)
	sort.Slice(pairs, func(i, j int) bool { return pairs[i] < pairs[j] })
	// Deduplicate.
	uniq := pairs[:0]
	var last uint64
	for i, p := range pairs {
		if i == 0 || p != last {
			uniq = append(uniq, p)
			last = p
		}
	}
	pairs = uniq

	n := b.n
	deg := make([]int64, n+1)
	for _, p := range pairs {
		u, v := unpackPair(p)
		deg[u+1]++
		deg[v+1]++
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	xadj := deg
	adj := make([]NodeID, 2*len(pairs))
	cursor := make([]int64, n)
	for i := range cursor {
		cursor[i] = xadj[i]
	}
	for _, p := range pairs {
		u, v := unpackPair(p)
		adj[cursor[u]] = v
		cursor[u]++
		adj[cursor[v]] = u
		cursor[v]++
	}
	// Each adjacency list must be sorted. Arcs (u, v) with fixed u were
	// appended in increasing v order only for the "min" endpoints; the
	// reverse arcs interleave, so sort each list (cheap: lists are short on
	// average and already mostly ordered).
	g := &Graph{xadj: xadj, adj: adj}
	for u := 0; u < n; u++ {
		lo, hi := xadj[u], xadj[u+1]
		list := adj[lo:hi]
		if !sort.SliceIsSorted(list, func(i, j int) bool { return list[i] < list[j] }) {
			sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		}
	}
	return g
}

// FromEdges builds a graph with n nodes from the given undirected edge list.
func FromEdges(n int, edges [][2]NodeID) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// FromAdjacency builds a graph from an adjacency-list description,
// symmetrizing as needed (an arc in either direction yields the edge).
func FromAdjacency(lists [][]NodeID) *Graph {
	b := NewBuilder(len(lists))
	for u, list := range lists {
		for _, v := range list {
			b.AddEdge(NodeID(u), v)
		}
	}
	return b.Build()
}
