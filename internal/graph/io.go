package graph

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Edge-list I/O. The text format is one edge per line, "u v", with '#'
// comment lines permitted (the format used by the SNAP datasets the paper
// draws from). Node ids must be non-negative integers; the node count is
// max id + 1 unless a larger count is given via a "# nodes: N" header.

// WriteEdgeList writes g in text edge-list format.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "# nodes: %d edges: %d\n", g.NumNodes(), g.NumEdges()); err != nil {
		return err
	}
	var werr error
	g.Edges(func(u, v NodeID) bool {
		if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
			werr = err
			return false
		}
		return true
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// ReadEdgeList parses a text edge list. Lines starting with '#' are
// comments, except that a "# nodes: N ..." header fixes the node count.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	b := NewBuilder(0)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			var n, m int
			if _, err := fmt.Sscanf(line, "# nodes: %d edges: %d", &n, &m); err == nil {
				b.Grow(n)
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want 'u v', got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: line %d: negative node id", lineNo)
		}
		hi := int(u) + 1
		if int(v)+1 > hi {
			hi = int(v) + 1
		}
		b.Grow(hi)
		b.AddEdge(NodeID(u), NodeID(v))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Build(), nil
}

// SaveEdgeList writes g to the named file.
func SaveEdgeList(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteEdgeList(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadEdgeList reads a graph from the named file. Gzip-compressed files
// (as the SNAP datasets are distributed) are decompressed transparently;
// compression is detected from the gzip magic bytes, not the file name, so
// a misnamed .txt works too.
func LoadEdgeList(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("graph: %s: %w", path, err)
		}
		defer zr.Close()
		return ReadEdgeList(zr)
	}
	return ReadEdgeList(br)
}
