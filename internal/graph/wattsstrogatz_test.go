package graph

import "testing"

func TestWattsStrogatzLatticeDiameter(t *testing.T) {
	// beta=0: pure ring lattice with k=4 has diameter ~ n/4.
	g := WattsStrogatz(200, 4, 0, 1)
	if !g.IsConnected() {
		t.Fatal("lattice disconnected")
	}
	d, exact := g.ExactDiameter(0)
	if !exact || d != 50 {
		t.Fatalf("ring lattice diameter (%d, %v) want (50, true)", d, exact)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWattsStrogatzRewiringShrinksDiameter(t *testing.T) {
	lattice := WattsStrogatz(800, 4, 0, 2)
	small := WattsStrogatz(800, 4, 0.2, 2)
	small, _ = small.LargestComponent()
	dl, _ := lattice.ExactDiameter(0)
	ds, _ := small.ExactDiameter(0)
	if ds*3 >= dl {
		t.Fatalf("rewiring did not shrink the diameter: %d -> %d", dl, ds)
	}
}

func TestWattsStrogatzDeterministic(t *testing.T) {
	a := WattsStrogatz(300, 6, 0.1, 9)
	b := WattsStrogatz(300, 6, 0.1, 9)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
}

func TestWattsStrogatzPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { WattsStrogatz(10, 3, 0, 1) },   // odd k
		func() { WattsStrogatz(4, 4, 0, 1) },    // n <= k
		func() { WattsStrogatz(10, 0, 0.5, 1) }, // k < 2
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}
