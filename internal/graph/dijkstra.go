package graph

import (
	"container/heap"
	"fmt"
	"sort"
)

// Weighted is an undirected graph with positive integer edge weights in CSR
// form. It is used for the weighted quotient graphs of Section 4, where the
// weight of a quotient edge is the length of a shortest path in G between
// the two clusters.
type Weighted struct {
	xadj []int64
	adj  []NodeID
	w    []int32
}

// NewWeighted builds a weighted graph with n nodes from parallel edge and
// weight lists. Duplicate edges keep the minimum weight; self-loops are
// dropped. It rejects mismatched edge/weight lists, out-of-range endpoints,
// and non-positive weights (the weighted algorithms all assume w >= 1).
func NewWeighted(n int, edges [][2]NodeID, weights []int32) (*Weighted, error) {
	if len(edges) != len(weights) {
		return nil, fmt.Errorf("graph: NewWeighted: %d edges with %d weights", len(edges), len(weights))
	}
	min := make(map[uint64]int32, len(edges))
	for i, e := range edges {
		if e[0] < 0 || int(e[0]) >= n || e[1] < 0 || int(e[1]) >= n {
			return nil, fmt.Errorf("graph: NewWeighted: edge (%d,%d) out of range for %d nodes", e[0], e[1], n)
		}
		if e[0] == e[1] {
			continue
		}
		if weights[i] <= 0 {
			return nil, fmt.Errorf("graph: NewWeighted: non-positive weight %d on edge (%d,%d)", weights[i], e[0], e[1])
		}
		key := packPair(e[0], e[1])
		if cur, ok := min[key]; !ok || weights[i] < cur {
			min[key] = weights[i]
		}
	}
	// Fill adjacency in sorted key order: packPair orders by (min, max)
	// endpoint, which yields strictly increasing per-node lists — the same
	// canonical layout Builder produces for unweighted graphs. This keeps
	// construction deterministic (map iteration order is randomized) so
	// tie-breaking in downstream algorithms is reproducible.
	keys := make([]uint64, 0, len(min))
	for key := range min {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	deg := make([]int64, n+1)
	for _, key := range keys {
		u, v := unpackPair(key)
		deg[u+1]++
		deg[v+1]++
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	wg := &Weighted{
		xadj: deg,
		adj:  make([]NodeID, 2*len(keys)),
		w:    make([]int32, 2*len(keys)),
	}
	cursor := make([]int64, n)
	for i := range cursor {
		cursor[i] = wg.xadj[i]
	}
	for _, key := range keys {
		u, v := unpackPair(key)
		wt := min[key]
		wg.adj[cursor[u]], wg.w[cursor[u]] = v, wt
		cursor[u]++
		wg.adj[cursor[v]], wg.w[cursor[v]] = u, wt
		cursor[v]++
	}
	return wg, nil
}

// MustWeighted is NewWeighted for inputs known to be valid (fixtures,
// generated weight lists); it panics on error.
func MustWeighted(n int, edges [][2]NodeID, weights []int32) *Weighted {
	wg, err := NewWeighted(n, edges, weights)
	if err != nil {
		panic(err)
	}
	return wg
}

// MaxDegree returns the maximum degree and one node attaining it.
// On the empty graph it returns (0, None).
func (g *Weighted) MaxDegree() (int, NodeID) { return maxDegree(g) }

// NumNodes returns the number of nodes.
func (g *Weighted) NumNodes() int {
	if len(g.xadj) == 0 {
		return 0
	}
	return len(g.xadj) - 1
}

// NumEdges returns the number of undirected edges.
func (g *Weighted) NumEdges() int { return len(g.adj) / 2 }

// Degree returns the degree of u.
func (g *Weighted) Degree(u NodeID) int { return int(g.xadj[u+1] - g.xadj[u]) }

// Neighbors returns u's neighbors and the corresponding edge weights.
// Both slices alias internal storage and must not be modified.
func (g *Weighted) Neighbors(u NodeID) ([]NodeID, []int32) {
	return g.adj[g.xadj[u]:g.xadj[u+1]], g.w[g.xadj[u]:g.xadj[u+1]]
}

// Unweighted returns the same topology with all weights discarded.
func (g *Weighted) Unweighted() *Graph {
	b := NewBuilder(g.NumNodes())
	for u := NodeID(0); u < NodeID(g.NumNodes()); u++ {
		nbrs, _ := g.Neighbors(u)
		for _, v := range nbrs {
			if u < v {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

// InfDist marks unreachable nodes in weighted distance arrays.
const InfDist int64 = 1 << 62

type heapItem struct {
	node NodeID
	dist int64
}

type distHeap []heapItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(heapItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Dijkstra computes single-source shortest path distances from src.
// Unreachable nodes get InfDist. It is the sequential binary-heap reference
// implementation: the hot paths (weighted iFUB, quotient APSP, weighted
// cluster growth) run the parallel delta-stepping bsp.WeightedEngine, whose
// distances are tested to match this one bit for bit.
func (g *Weighted) Dijkstra(src NodeID) []int64 {
	dist := make([]int64, g.NumNodes())
	for i := range dist {
		dist[i] = InfDist
	}
	g.DijkstraInto(src, dist)
	return dist
}

// DijkstraInto runs Dijkstra from src into caller storage (pre-filled with
// InfDist) and returns the weighted eccentricity of src within its
// component (0 if src is isolated).
func (g *Weighted) DijkstraInto(src NodeID, dist []int64) int64 {
	h := make(distHeap, 0, 64)
	dist[src] = 0
	heap.Push(&h, heapItem{src, 0})
	var ecc int64
	for h.Len() > 0 {
		it := heap.Pop(&h).(heapItem)
		if it.dist > dist[it.node] {
			continue // stale entry
		}
		if it.dist > ecc {
			ecc = it.dist
		}
		nbrs, ws := g.Neighbors(it.node)
		for i, v := range nbrs {
			nd := it.dist + int64(ws[i])
			if nd < dist[v] {
				dist[v] = nd
				heap.Push(&h, heapItem{v, nd})
			}
		}
	}
	return ecc
}

// WeightedEccentricity returns the maximum weighted distance from src to
// any reachable node.
func (g *Weighted) WeightedEccentricity(src NodeID) int64 {
	dist := make([]int64, g.NumNodes())
	for i := range dist {
		dist[i] = InfDist
	}
	return g.DijkstraInto(src, dist)
}

// DiameterExhaustiveWeighted computes the exact weighted diameter by
// running Dijkstra from every node. O(n·m log n): for small graphs; use
// ExactDiameterWeighted for larger ones.
func (g *Weighted) DiameterExhaustiveWeighted() int64 {
	n := g.NumNodes()
	dist := make([]int64, n)
	var diam int64
	for u := 0; u < n; u++ {
		for i := range dist {
			dist[i] = InfDist
		}
		if e := g.DijkstraInto(NodeID(u), dist); e > diam {
			diam = e
		}
	}
	return diam
}
