// Package graph provides the compressed-sparse-row (CSR) graph
// representation used throughout the repository, together with builders,
// synthetic generators, sequential reference algorithms (BFS, Dijkstra,
// connected components, exact diameter), and edge-list I/O.
//
// All graphs are unweighted and undirected, matching the setting of the
// paper; an undirected edge {u, v} is stored as the two directed arcs
// (u, v) and (v, u). A separate Weighted type carries integer edge weights
// and is used for the weighted quotient graphs of Section 4.
package graph

import (
	"errors"
	"fmt"
)

// NodeID identifies a node. Graphs in this repository are limited to
// 2^31-1 nodes, which comfortably covers the experiment scales.
type NodeID = int32

// None marks the absence of a node (e.g. "not covered by any cluster").
const None NodeID = -1

// Graph is an immutable unweighted undirected graph in CSR form.
// Construct via Builder or a generator; the zero value is an empty graph.
type Graph struct {
	xadj []int64  // offsets into adj; len = n+1
	adj  []NodeID // concatenated adjacency lists; len = 2m
}

// NumNodes returns the number of nodes n.
func (g *Graph) NumNodes() int {
	if len(g.xadj) == 0 {
		return 0
	}
	return len(g.xadj) - 1
}

// NumEdges returns the number of undirected edges m.
func (g *Graph) NumEdges() int { return len(g.adj) / 2 }

// NumArcs returns the number of stored directed arcs (2m).
func (g *Graph) NumArcs() int { return len(g.adj) }

// Degree returns the degree of node u.
func (g *Graph) Degree(u NodeID) int {
	return int(g.xadj[u+1] - g.xadj[u])
}

// Neighbors returns the adjacency list of u. The returned slice aliases the
// graph's internal storage and must not be modified.
func (g *Graph) Neighbors(u NodeID) []NodeID {
	return g.adj[g.xadj[u]:g.xadj[u+1]]
}

// HasEdge reports whether the undirected edge {u, v} is present.
// It runs in O(min(deg(u), deg(v))) time.
func (g *Graph) HasEdge(u, v NodeID) bool {
	if g.Degree(v) < g.Degree(u) {
		u, v = v, u
	}
	for _, w := range g.Neighbors(u) {
		if w == v {
			return true
		}
	}
	return false
}

// MaxDegree returns the maximum degree and one node attaining it.
// On the empty graph it returns (0, None).
func (g *Graph) MaxDegree() (int, NodeID) { return maxDegree(g) }

// maxDegree backs the MaxDegree methods of Graph and Weighted, so the
// tie-breaking (lowest id wins) stays identical for both — the 4-sweep
// root selection in exact.go relies on the two paths agreeing.
func maxDegree(g interface {
	NumNodes() int
	Degree(NodeID) int
}) (int, NodeID) {
	best, arg := 0, None
	for u := NodeID(0); u < NodeID(g.NumNodes()); u++ {
		if d := g.Degree(u); d > best || arg == None {
			best, arg = d, u
		}
	}
	return best, arg
}

// Validate checks structural invariants of the CSR arrays: monotone
// offsets, in-range endpoints, no self-loops, and symmetry (every arc has a
// reverse arc). It is O(m log m)-ish in the worst case and intended for
// tests and debugging, not hot paths.
func (g *Graph) Validate() error {
	n := g.NumNodes()
	if len(g.xadj) != 0 && len(g.xadj) != n+1 {
		return fmt.Errorf("graph: xadj length %d, want %d", len(g.xadj), n+1)
	}
	if n == 0 {
		if len(g.adj) != 0 {
			return errors.New("graph: arcs present in empty graph")
		}
		return nil
	}
	if g.xadj[0] != 0 || g.xadj[n] != int64(len(g.adj)) {
		return errors.New("graph: xadj endpoints wrong")
	}
	for u := 0; u < n; u++ {
		if g.xadj[u] > g.xadj[u+1] {
			return fmt.Errorf("graph: xadj not monotone at %d", u)
		}
	}
	// Adjacency lists are strictly increasing by construction (Builder sorts
	// and deduplicates), which also rules out duplicate arcs. Count directed
	// arcs per unordered pair; each must appear exactly twice.
	counts := make(map[uint64]int, len(g.adj)/2)
	for u := NodeID(0); u < NodeID(n); u++ {
		prev := NodeID(-1)
		for _, v := range g.Neighbors(u) {
			if v < 0 || int(v) >= n {
				return fmt.Errorf("graph: arc (%d,%d) out of range", u, v)
			}
			if v == u {
				return fmt.Errorf("graph: self loop at %d", u)
			}
			if v <= prev {
				return fmt.Errorf("graph: adjacency of %d not strictly increasing at %d", u, v)
			}
			prev = v
			counts[packPair(u, v)]++
		}
	}
	for key, c := range counts {
		if c != 2 {
			u, v := unpackPair(key)
			return fmt.Errorf("graph: edge {%d,%d} has %d arcs, want 2", u, v, c)
		}
	}
	return nil
}

func packPair(u, v NodeID) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

func unpackPair(key uint64) (NodeID, NodeID) {
	return NodeID(key >> 32), NodeID(uint32(key))
}

// Edges calls fn once per undirected edge {u, v} with u < v.
// Iteration stops early if fn returns false.
func (g *Graph) Edges(fn func(u, v NodeID) bool) {
	for u := NodeID(0); u < NodeID(g.NumNodes()); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				if !fn(u, v) {
					return
				}
			}
		}
	}
}

// EdgeList materializes all undirected edges with u < v.
func (g *Graph) EdgeList() [][2]NodeID {
	out := make([][2]NodeID, 0, g.NumEdges())
	g.Edges(func(u, v NodeID) bool {
		out = append(out, [2]NodeID{u, v})
		return true
	})
	return out
}
