package graph

import "fmt"

// Raw CSR access for serialization. The snapshot codec (internal/snapshot)
// persists graphs by their CSR arrays directly; these are the only two
// entry points that expose or adopt the internal storage.

// CSR returns the graph's raw CSR arrays: the offset array xadj
// (len n+1) and the concatenated adjacency lists adj (len 2m). Both alias
// the graph's internal storage and must not be modified.
func (g *Graph) CSR() (xadj []int64, adj []NodeID) {
	return g.xadj, g.adj
}

// FromCSR adopts pre-built CSR arrays as a Graph, taking ownership of both
// slices. It verifies the canonical layout Builder produces — monotone
// offsets bracketing adj, in-range endpoints, strictly increasing
// adjacency lists, no self-loops — and rejects malformed input, so a
// decoded snapshot cannot smuggle in a graph that would crash later
// algorithms. Symmetry (every arc paired with its reverse) is not
// re-verified here: it is O(m log m) and snapshot integrity is already
// covered by a checksum; call Validate for the full check.
func FromCSR(xadj []int64, adj []NodeID) (*Graph, error) {
	if len(xadj) == 0 {
		if len(adj) != 0 {
			return nil, fmt.Errorf("graph: FromCSR: %d arcs with empty xadj", len(adj))
		}
		return &Graph{}, nil
	}
	n := len(xadj) - 1
	if xadj[0] != 0 || xadj[n] != int64(len(adj)) {
		return nil, fmt.Errorf("graph: FromCSR: xadj endpoints [%d, %d] want [0, %d]",
			xadj[0], xadj[n], len(adj))
	}
	// Verify the whole offset array before slicing adj with it: a monotone
	// prefix can still hold an out-of-range offset that later entries
	// contradict.
	for u := 0; u < n; u++ {
		if xadj[u] > xadj[u+1] {
			return nil, fmt.Errorf("graph: FromCSR: xadj not monotone at %d", u)
		}
		if xadj[u+1] > int64(len(adj)) {
			return nil, fmt.Errorf("graph: FromCSR: offset %d at %d exceeds %d arcs", xadj[u+1], u+1, len(adj))
		}
	}
	for u := 0; u < n; u++ {
		prev := NodeID(-1)
		for _, v := range adj[xadj[u]:xadj[u+1]] {
			if v < 0 || int(v) >= n {
				return nil, fmt.Errorf("graph: FromCSR: arc (%d,%d) out of range", u, v)
			}
			if v == NodeID(u) {
				return nil, fmt.Errorf("graph: FromCSR: self loop at %d", u)
			}
			if v <= prev {
				return nil, fmt.Errorf("graph: FromCSR: adjacency of %d not strictly increasing", u)
			}
			prev = v
		}
	}
	return &Graph{xadj: xadj, adj: adj}, nil
}
