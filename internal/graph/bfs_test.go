package graph

import (
	"testing"
	"testing/quick"
)

func TestBFSPath(t *testing.T) {
	g := Path(6)
	dist := g.BFS(0)
	for i, d := range dist {
		if d != int32(i) {
			t.Fatalf("dist[%d]=%d want %d", i, d, i)
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := FromEdges(4, [][2]NodeID{{0, 1}}) // nodes 2,3 isolated
	dist := g.BFS(0)
	if dist[2] != -1 || dist[3] != -1 {
		t.Fatalf("unreachable nodes should be -1: %v", dist)
	}
}

func TestEccentricityPath(t *testing.T) {
	g := Path(10)
	if e := g.Eccentricity(0); e != 9 {
		t.Fatalf("ecc(0)=%d want 9", e)
	}
	if e := g.Eccentricity(5); e != 5 {
		t.Fatalf("ecc(5)=%d want 5", e)
	}
}

func TestTwoSweepLowerBound(t *testing.T) {
	for _, g := range []*Graph{Path(50), Cycle(30), Mesh(8, 13), BarabasiAlbert(300, 3, 2)} {
		diam := g.DiameterExhaustive()
		_, lb := g.TwoSweep(0)
		if lb > diam {
			t.Fatalf("two-sweep bound %d exceeds diameter %d", lb, diam)
		}
		if lb*2 < diam {
			t.Fatalf("two-sweep bound %d less than half diameter %d", lb, diam)
		}
	}
}

func TestMultiSourceBFSSingleSourceMatchesBFS(t *testing.T) {
	g := randomConnectedGraph(t, 80, 120, 3)
	want := g.BFS(5)
	dist, owner := g.MultiSourceBFS([]NodeID{5})
	for u := range want {
		if dist[u] != want[u] {
			t.Fatalf("dist[%d]=%d want %d", u, dist[u], want[u])
		}
		if owner[u] != 5 {
			t.Fatalf("owner[%d]=%d want 5", u, owner[u])
		}
	}
}

func TestMultiSourceBFSNearestSource(t *testing.T) {
	g := randomConnectedGraph(t, 120, 200, 9)
	sources := []NodeID{3, 77, 101}
	dist, owner := g.MultiSourceBFS(sources)
	// dist must equal the min over per-source BFS distances; owner must
	// attain it.
	per := make([][]int32, len(sources))
	for i, s := range sources {
		per[i] = g.BFS(s)
	}
	for u := 0; u < g.NumNodes(); u++ {
		min := int32(1 << 30)
		for i := range sources {
			if per[i][u] >= 0 && per[i][u] < min {
				min = per[i][u]
			}
		}
		if dist[u] != min {
			t.Fatalf("dist[%d]=%d want %d", u, dist[u], min)
		}
		found := false
		for i, s := range sources {
			if owner[u] == s && per[i][u] == min {
				found = true
			}
		}
		if !found {
			t.Fatalf("owner[%d]=%d does not attain min distance", u, owner[u])
		}
	}
}

func TestMultiSourceBFSDuplicateSources(t *testing.T) {
	g := Path(10)
	dist, owner := g.MultiSourceBFS([]NodeID{0, 0, 0})
	if dist[9] != 9 || owner[9] != 0 {
		t.Fatalf("duplicate sources mishandled: dist=%d owner=%d", dist[9], owner[9])
	}
}

func TestDiameterKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int32
	}{
		{"path10", Path(10), 9},
		{"cycle9", Cycle(9), 4},
		{"cycle10", Cycle(10), 5},
		{"star", Star(20), 2},
		{"complete", Complete(8), 1},
		{"mesh", Mesh(7, 11), 6 + 10},
		{"single", Path(1), 0},
		{"binarytree15", BinaryTree(15), 6},
	}
	for _, c := range cases {
		if got := c.g.DiameterExhaustive(); got != c.want {
			t.Errorf("%s: exhaustive diameter %d want %d", c.name, got, c.want)
		}
		got, exact := c.g.ExactDiameter(0)
		if !exact || got != c.want {
			t.Errorf("%s: iFUB diameter (%d, %v) want (%d, true)", c.name, got, exact, c.want)
		}
	}
}

func TestExactDiameterMatchesExhaustiveProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomConnectedGraph(t, 60, 90, seed)
		want := g.DiameterExhaustive()
		got, exact := g.ExactDiameter(0)
		return exact && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestExactDiameterDisconnected(t *testing.T) {
	// Two components: a path of 5 (diam 4) and a path of 8 (diam 7).
	b := NewBuilder(13)
	for i := 0; i < 4; i++ {
		b.AddEdge(NodeID(i), NodeID(i+1))
	}
	for i := 5; i < 12; i++ {
		b.AddEdge(NodeID(i), NodeID(i+1))
	}
	g := b.Build()
	got, exact := g.ExactDiameter(0)
	if !exact || got != 7 {
		t.Fatalf("disconnected diameter (%d, %v) want (7, true)", got, exact)
	}
}

func TestExactDiameterBudgetExhaustion(t *testing.T) {
	g := Mesh(20, 20)
	got, exact := g.ExactDiameter(2)
	if exact {
		t.Fatal("2 BFS runs cannot certify a mesh diameter")
	}
	if got > 38 {
		t.Fatalf("lower bound %d exceeds true diameter 38", got)
	}
}

func TestAllEccentricitiesAgainstBFS(t *testing.T) {
	g := randomConnectedGraph(t, 50, 80, 11)
	ecc := g.AllEccentricities()
	for u := 0; u < g.NumNodes(); u++ {
		if ecc[u] != g.Eccentricity(NodeID(u)) {
			t.Fatalf("ecc mismatch at %d", u)
		}
	}
}

func BenchmarkBFSMesh(b *testing.B) {
	g := Mesh(200, 200)
	dist := make([]int32, g.NumNodes())
	queue := make([]NodeID, 0, g.NumNodes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range dist {
			dist[j] = -1
		}
		g.BFSInto(0, dist, queue)
	}
}

func BenchmarkExactDiameterRoadLike(b *testing.B) {
	g := RoadLike(120, 120, 0.4, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ExactDiameter(0)
	}
}
