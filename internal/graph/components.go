package graph

// ConnectedComponents labels every node with a component id in [0, k) and
// returns the labels and the number of components k. Labels are assigned in
// order of the smallest node id in each component.
func (g *Graph) ConnectedComponents() (labels []int32, count int) {
	n := g.NumNodes()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	queue := make([]NodeID, 0, n)
	next := int32(0)
	for s := 0; s < n; s++ {
		if labels[s] >= 0 {
			continue
		}
		labels[s] = next
		queue = queue[:0]
		queue = append(queue, NodeID(s))
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range g.Neighbors(u) {
				if labels[v] < 0 {
					labels[v] = next
					queue = append(queue, v)
				}
			}
		}
		next++
	}
	return labels, int(next)
}

// IsConnected reports whether the graph is connected. The empty graph and
// the single-node graph are connected.
func (g *Graph) IsConnected() bool {
	_, k := g.ConnectedComponents()
	return k <= 1
}

// LargestComponent returns the induced subgraph on the largest connected
// component, together with a mapping from new node ids to original ids.
// Ties break toward the component with the smallest label.
func (g *Graph) LargestComponent() (*Graph, []NodeID) {
	labels, k := g.ConnectedComponents()
	if k <= 1 {
		ids := make([]NodeID, g.NumNodes())
		for i := range ids {
			ids[i] = NodeID(i)
		}
		return g, ids
	}
	sizes := make([]int, k)
	for _, l := range labels {
		sizes[l]++
	}
	best := 0
	for c := 1; c < k; c++ {
		if sizes[c] > sizes[best] {
			best = c
		}
	}
	keep := func(u NodeID) bool { return labels[u] == int32(best) }
	return g.inducedSubgraph(keep, sizes[best])
}

// InducedSubgraph returns the subgraph induced by the nodes for which keep
// is true, together with a mapping from new ids to original ids.
func (g *Graph) InducedSubgraph(keep func(NodeID) bool) (*Graph, []NodeID) {
	count := 0
	for u := NodeID(0); u < NodeID(g.NumNodes()); u++ {
		if keep(u) {
			count++
		}
	}
	return g.inducedSubgraph(keep, count)
}

func (g *Graph) inducedSubgraph(keep func(NodeID) bool, count int) (*Graph, []NodeID) {
	n := g.NumNodes()
	newID := make([]NodeID, n)
	ids := make([]NodeID, 0, count)
	for u := NodeID(0); u < NodeID(n); u++ {
		if keep(u) {
			newID[u] = NodeID(len(ids))
			ids = append(ids, u)
		} else {
			newID[u] = None
		}
	}
	b := NewBuilder(len(ids))
	g.Edges(func(u, v NodeID) bool {
		if newID[u] != None && newID[v] != None {
			b.AddEdge(newID[u], newID[v])
		}
		return true
	})
	return b.Build(), ids
}
