package graph

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph: n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	g := b.Build()
	if g.NumNodes() != 4 || g.NumEdges() != 4 {
		t.Fatalf("n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for u := NodeID(0); u < 4; u++ {
		if g.Degree(u) != 2 {
			t.Fatalf("degree(%d)=%d want 2", u, g.Degree(u))
		}
	}
}

func TestBuilderDeduplicatesAndDropsSelfLoops(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate in reverse direction
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(2, 2) // self loop
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("m=%d want 1", g.NumEdges())
	}
	if g.Degree(2) != 0 {
		t.Fatalf("self loop kept: degree(2)=%d", g.Degree(2))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder(2).AddEdge(0, 5)
}

func TestHasEdge(t *testing.T) {
	g := FromEdges(4, [][2]NodeID{{0, 1}, {1, 2}})
	cases := []struct {
		u, v NodeID
		want bool
	}{{0, 1, true}, {1, 0, true}, {1, 2, true}, {0, 2, false}, {3, 0, false}}
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.v); got != c.want {
			t.Errorf("HasEdge(%d,%d)=%v want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := FromEdges(5, [][2]NodeID{{2, 4}, {2, 0}, {2, 3}, {2, 1}})
	nbrs := g.Neighbors(2)
	if !sort.SliceIsSorted(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] }) {
		t.Fatalf("adjacency not sorted: %v", nbrs)
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := BarabasiAlbert(200, 3, 1)
	edges := g.EdgeList()
	if len(edges) != g.NumEdges() {
		t.Fatalf("edge list length %d want %d", len(edges), g.NumEdges())
	}
	g2 := FromEdges(g.NumNodes(), edges)
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("rebuild changed edge count")
	}
	for u := NodeID(0); u < NodeID(g.NumNodes()); u++ {
		if g.Degree(u) != g2.Degree(u) {
			t.Fatalf("degree mismatch at %d", u)
		}
	}
}

func TestFromAdjacencySymmetrizes(t *testing.T) {
	g := FromAdjacency([][]NodeID{{1, 2}, {}, {}})
	if !g.HasEdge(1, 0) || !g.HasEdge(2, 0) {
		t.Fatal("adjacency not symmetrized")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMaxDegree(t *testing.T) {
	g := Star(10)
	d, u := g.MaxDegree()
	if d != 9 || u != 0 {
		t.Fatalf("MaxDegree = (%d, %d), want (9, 0)", d, u)
	}
}

func TestValidatePropertyRandomGraphs(t *testing.T) {
	f := func(seed uint64) bool {
		g := ErdosRenyi(50, 120, seed)
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgesVisitsEachOnce(t *testing.T) {
	g := Mesh(5, 5)
	seen := map[[2]NodeID]int{}
	g.Edges(func(u, v NodeID) bool {
		if u >= v {
			t.Fatalf("Edges yielded non-canonical pair (%d,%d)", u, v)
		}
		seen[[2]NodeID{u, v}]++
		return true
	})
	if len(seen) != g.NumEdges() {
		t.Fatalf("visited %d edges want %d", len(seen), g.NumEdges())
	}
	for e, c := range seen {
		if c != 1 {
			t.Fatalf("edge %v visited %d times", e, c)
		}
	}
}

func TestEdgesEarlyStop(t *testing.T) {
	g := Complete(10)
	count := 0
	g.Edges(func(u, v NodeID) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop failed: %d", count)
	}
}

// --- Random graph helpers shared by other tests in this package ---

func randomConnectedGraph(t *testing.T, n, m int, seed uint64) *Graph {
	t.Helper()
	g := ErdosRenyi(n, m, seed)
	// Connect with a random spanning path through all nodes.
	b := NewBuilder(n)
	g.Edges(func(u, v NodeID) bool { b.AddEdge(u, v); return true })
	perm := rng.New(seed ^ 0xabcdef).Perm(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(NodeID(perm[i]), NodeID(perm[i+1]))
	}
	return b.Build()
}

func TestRandomConnectedGraphHelper(t *testing.T) {
	g := randomConnectedGraph(t, 100, 50, 7)
	if !g.IsConnected() {
		t.Fatal("helper produced disconnected graph")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}
