package graph

import (
	"context"
	"sort"
	"sync/atomic"

	"repro/internal/bsp"
)

// Exact diameter computation via the iFUB (iterative Fringe Upper Bound)
// method of Crescenzi et al. [10 in the paper]. iFUB computes the exact
// diameter of an unweighted connected graph using, in practice, far fewer
// BFS runs than full APSP: pick a root r (here via a double sweep), and
// scan nodes in decreasing distance from r; the eccentricity of the nodes
// at level i, plus the bound 2i for everything below, pinch the diameter.
//
// Each BFS runs on one shared direction-optimizing bsp.Engine (persistent
// worker pool, push/pull switching), which matters because the repeated
// full BFS here is the dominant cost of exact ground truth. The weighted
// analogue (ExactDiameterWeighted, used for weighted quotient graphs) rides
// the engine layer too: Dijkstra's strict priority order does not map onto
// unit-step frontier supersteps, but delta-stepping's bucketed relaxation
// schedule does, so its searches run on one shared bsp.WeightedEngine and
// only graph.Dijkstra remains as the sequential reference.

// engineBFSInto runs one BFS from src on the shared engine, filling dist
// (which must be pre-filled with -1) and returning the eccentricity of src
// within its component. Push claims race through CAS; pull adoptions write
// plainly, since each candidate belongs to exactly one worker.
func engineBFSInto(e *bsp.Engine, src NodeID, dist []int32) int32 {
	e.Reset()
	e.Seed(src)
	dist[src] = 0
	ecc := int32(0)
	for depth := int32(1); e.FrontierLen() > 0; depth++ {
		d := depth
		rs := e.Step(bsp.StepSpec{
			Push: func(_ int, u, v NodeID) bool {
				return atomic.CompareAndSwapInt32(&dist[v], -1, d)
			},
			Pull: func(_ int, v, u NodeID) bool {
				dist[v] = d
				return true
			},
		})
		if rs.Claimed > 0 {
			ecc = d
		}
	}
	return ecc
}

// ExactDiameter computes the exact diameter of the graph. On a
// disconnected graph it returns the maximum diameter over components.
// maxBFS bounds the number of BFS runs (0 means unlimited); if the bound is
// hit, the result is the best lower bound found and exact is false.
func (g *Graph) ExactDiameter(maxBFS int) (diam int32, exact bool) {
	// A background context never cancels, so the error is unreachable.
	//lint:allow background public non-cancellable wrapper; ExactDiameterContext is the cancellable form
	diam, exact, _ = g.ExactDiameterContext(context.Background(), maxBFS)
	return diam, exact
}

// ExactDiameterContext is ExactDiameter with cooperative cancellation: the
// iFUB loop checks ctx at every search boundary (and its shared engine
// stops at superstep barriers within a search), returning ctx.Err() with
// the bounds discarded. The serving layer uses it so an abandoned diameter
// build does not keep burning Θ(n) BFS runs.
func (g *Graph) ExactDiameterContext(ctx context.Context, maxBFS int) (diam int32, exact bool, err error) {
	n := g.NumNodes()
	if n == 0 {
		return 0, true, nil
	}
	labels, k := g.ConnectedComponents()
	if k > 1 {
		// Handle each component independently.
		exact = true
		for c := 0; c < k; c++ {
			cc := int32(c)
			sub, _ := g.inducedSubgraph(func(u NodeID) bool { return labels[u] == cc }, 0)
			d, ex, err := sub.ExactDiameterContext(ctx, maxBFS)
			if err != nil {
				return 0, false, err
			}
			if d > diam {
				diam = d
			}
			exact = exact && ex
		}
		return diam, exact, nil
	}
	return g.ifub(ctx, maxBFS)
}

func (g *Graph) ifub(ctx context.Context, maxBFS int) (int32, bool, error) {
	n := g.NumNodes()
	budget := maxBFS
	// spend gates each search: false on a cancelled context or an exhausted
	// budget. Every `if !spend()` return passes ctx.Err() through, so the
	// cancelled case surfaces as an error and the budget case as an inexact
	// (lower-bound) result.
	spend := func() bool {
		if ctx.Err() != nil {
			return false
		}
		if maxBFS == 0 {
			return true
		}
		if budget == 0 {
			return false
		}
		budget--
		return true
	}

	e := bsp.NewEngine(g, 0)
	e.SetContext(ctx)
	defer e.Close()
	dist := make([]int32, n)
	reset := func() {
		for i := range dist {
			dist[i] = -1
		}
	}

	// Root selection by the 4-sweep scheme (Crescenzi et al.): two double
	// sweeps yield two far-apart extremes a and c; the root minimizing
	// max(dist_a, dist_c) sits "between" them, which keeps the level
	// distribution shallow. A naive midpoint walk can land on a corner of a
	// grid-like graph (e.g. walking the boundary of a mesh), leaving half
	// the nodes above the pruning level; the argmin-of-max root avoids
	// exactly that failure mode.
	_, start := g.MaxDegree()
	if !spend() {
		return 0, false, ctx.Err()
	}
	reset()
	engineBFSInto(e, start, dist)
	a := argMax32(dist)
	if !spend() {
		return 0, false, ctx.Err()
	}
	distA := make([]int32, n)
	for i := range distA {
		distA[i] = -1
	}
	eccA := engineBFSInto(e, a, distA)
	b := argMax32(distA)
	lower := eccA

	// First midpoint: walk back from b toward a.
	r1 := b
	for step := int32(0); step < eccA/2; step++ {
		for _, w := range g.Neighbors(r1) {
			if distA[w] == distA[r1]-1 {
				r1 = w
				break
			}
		}
	}
	if !spend() {
		return lower, false, ctx.Err()
	}
	reset()
	eccR1 := engineBFSInto(e, r1, dist)
	if eccR1 > lower {
		lower = eccR1
	}
	c := argMax32(dist)
	if !spend() {
		return lower, false, ctx.Err()
	}
	distC := make([]int32, n)
	for i := range distC {
		distC[i] = -1
	}
	eccC := engineBFSInto(e, c, distC)
	if eccC > lower {
		lower = eccC
	}

	// Third reference: b itself (one more BFS). On grid-like graphs a and c
	// can end up on the same side (two corners of one row), in which case
	// argmin-max over just the two still lands on the boundary; adding b
	// pins the root to the true center.
	if !spend() {
		return lower, false, ctx.Err()
	}
	distB := make([]int32, n)
	for i := range distB {
		distB[i] = -1
	}
	if ecc := engineBFSInto(e, b, distB); ecc > lower {
		lower = ecc
	}

	// Root: the node minimizing max(dist_a, dist_b, dist_c).
	r := NodeID(0)
	best := int32(1<<31 - 1)
	for u := 0; u < n; u++ {
		da, db, dc := distA[u], distB[u], distC[u]
		if da < 0 || db < 0 || dc < 0 {
			continue
		}
		m := da
		if db > m {
			m = db
		}
		if dc > m {
			m = dc
		}
		if m < best {
			best, r = m, NodeID(u)
		}
	}

	if !spend() {
		return lower, false, ctx.Err()
	}
	reset()
	eccR := engineBFSInto(e, r, dist)
	if err := e.Err(); err != nil {
		// The root BFS orders the whole scan: truncated distances would
		// leave unreached nodes at -1, which the decreasing sort places at
		// pruning levels they have not earned. Bail before using them.
		return lower, false, err
	}
	if eccR > lower {
		lower = eccR
	}

	// Order nodes by decreasing distance from r.
	order := make([]NodeID, n)
	for i := range order {
		order[i] = NodeID(i)
	}
	distR := make([]int32, n)
	copy(distR, dist)
	sort.Slice(order, func(i, j int) bool { return distR[order[i]] > distR[order[j]] })

	// iFUB main loop: while 2*level > lower bound, sweep the level.
	i := 0
	for i < n {
		level := distR[order[i]]
		if 2*level <= lower {
			return lower, true, nil
		}
		for i < n && distR[order[i]] == level {
			u := order[i]
			i++
			if !spend() {
				return lower, false, ctx.Err()
			}
			reset()
			ecc := engineBFSInto(e, u, dist)
			if err := e.Err(); err != nil {
				// Truncated BFS: its partial eccentricity is a valid lower
				// bound, but this vertex now counts as scanned without its
				// true eccentricity, so exactness can no longer be
				// certified — neither by the early exits nor the final
				// return.
				return lower, false, err
			}
			if ecc > lower {
				lower = ecc
				if 2*level <= lower {
					return lower, true, nil
				}
			}
		}
	}
	return lower, true, nil
}

func argMax32(dist []int32) NodeID {
	best, arg := int32(-1), NodeID(0)
	for u, d := range dist {
		if d > best {
			best, arg = d, NodeID(u)
		}
	}
	return arg
}

func argMax64(dist []int64) NodeID {
	best, arg := int64(-1), NodeID(0)
	for u, d := range dist {
		if d != InfDist && d > best {
			best, arg = d, NodeID(u)
		}
	}
	return arg
}

// ExactDiameterWeighted computes the exact weighted diameter of a connected
// weighted graph via the iFUB scheme with shortest-path searches. Every
// search runs on one shared delta-stepping bsp.WeightedEngine (parallel
// bucketed relaxations, distances identical to Dijkstra's). maxSearches
// bounds the number of searches (0 = unlimited); if exhausted, the
// returned value is a lower bound and exact is false. Disconnected graphs
// return the max over components (unreachable pairs are ignored).
func (g *Weighted) ExactDiameterWeighted(maxSearches int) (diam int64, exact bool) {
	// A background context never cancels, so the error is unreachable.
	//lint:allow background public non-cancellable wrapper; ExactDiameterWeightedContext is the cancellable form
	diam, exact, _ = g.ExactDiameterWeightedContext(context.Background(), maxSearches)
	return diam, exact
}

// ExactDiameterWeightedContext is ExactDiameterWeighted with cooperative
// cancellation, checking ctx at every search boundary (and, through the
// shared engine, at bucket barriers within a search); a cancelled run
// returns ctx.Err() with the bounds discarded.
func (g *Weighted) ExactDiameterWeightedContext(ctx context.Context, maxSearches int) (diam int64, exact bool, err error) {
	n := g.NumNodes()
	if n == 0 {
		return 0, true, nil
	}
	e := bsp.NewWeightedEngine(g, 0, 0)
	e.SetContext(ctx)
	defer e.Close()
	budget := maxSearches
	// As in ifub: false on cancellation or budget exhaustion; the returns
	// pass ctx.Err() through to tell the two apart.
	spend := func() bool {
		if ctx.Err() != nil {
			return false
		}
		if maxSearches == 0 {
			return true
		}
		if budget == 0 {
			return false
		}
		budget--
		return true
	}
	dist := make([]int64, n)
	argMax := func() NodeID {
		best, arg := int64(-1), NodeID(0)
		for u, d := range dist {
			if d != InfDist && d > best {
				best, arg = d, NodeID(u)
			}
		}
		return arg
	}
	// search runs one SSSP and fails if the engine was cancelled mid-run.
	// Unlike a truncated BFS, a truncated delta-stepping search is not a
	// safe underestimate: its claimed slots may hold tentative (unsettled)
	// distances that OVERESTIMATE the true ones, so folding its
	// eccentricity into the lower bound could certify a wrong diameter.
	// Every call site must discard the result on error.
	search := func(src NodeID, d []int64) (int64, error) {
		ecc := e.SSSP(src, d)
		return ecc, e.Err()
	}

	// 4-sweep root selection, mirroring the unweighted variant: two double
	// sweeps yield far extremes a and c; the root minimizes max(d_a, d_c),
	// avoiding the grid-corner failure of a naive midpoint walk. The first
	// sweep starts from a max-degree node (as in the unweighted path): on
	// grid-like graphs that keeps the first extreme off degenerate boundary
	// geodesics that a corner start can produce.
	_, start := g.MaxDegree()
	if !spend() {
		return 0, false, ctx.Err()
	}
	if _, err := search(start, dist); err != nil {
		return 0, false, err
	}
	a := argMax()
	if !spend() {
		return 0, false, ctx.Err()
	}
	distA := make([]int64, n)
	lower, err := search(a, distA)
	if err != nil {
		return 0, false, err
	}
	b := argMax64(distA)

	// First midpoint: walk back from b toward a along the shortest path.
	r1 := b
	half := distA[b] / 2
	for distA[r1] > half {
		moved := false
		nbrs, ws := g.Neighbors(r1)
		for i, w := range nbrs {
			if distA[w] != InfDist && distA[w]+int64(ws[i]) == distA[r1] {
				r1 = w
				moved = true
				break
			}
		}
		if !moved {
			break
		}
	}
	if !spend() {
		return lower, false, ctx.Err()
	}
	if ecc, err := search(r1, dist); err != nil {
		return lower, false, err
	} else if ecc > lower {
		lower = ecc
	}
	c := argMax()
	if !spend() {
		return lower, false, ctx.Err()
	}
	distC := make([]int64, n)
	if ecc, err := search(c, distC); err != nil {
		return lower, false, err
	} else if ecc > lower {
		lower = ecc
	}

	if !spend() {
		return lower, false, ctx.Err()
	}
	distB := make([]int64, n)
	if ecc, err := search(b, distB); err != nil {
		return lower, false, err
	} else if ecc > lower {
		lower = ecc
	}

	r := NodeID(0)
	best := InfDist
	for u := 0; u < n; u++ {
		da, db, dc := distA[u], distB[u], distC[u]
		if da == InfDist || db == InfDist || dc == InfDist {
			continue
		}
		m := da
		if db > m {
			m = db
		}
		if dc > m {
			m = dc
		}
		if m < best {
			best, r = m, NodeID(u)
		}
	}

	if !spend() {
		return lower, false, ctx.Err()
	}
	if ecc, err := search(r, dist); err != nil {
		return lower, false, err
	} else if ecc > lower {
		lower = ecc
	}
	distR := make([]int64, n)
	copy(distR, dist)
	order := make([]NodeID, n)
	for i := range order {
		order[i] = NodeID(i)
	}
	sort.Slice(order, func(i, j int) bool { return distR[order[i]] > distR[order[j]] })

	i := 0
	for i < n {
		level := distR[order[i]]
		if level == InfDist {
			// Node unreachable from r (other component): compute its
			// eccentricity directly, it cannot be pruned by the bound.
			u := order[i]
			i++
			if !spend() {
				return lower, false, ctx.Err()
			}
			if ecc, err := search(u, dist); err != nil {
				return lower, false, err
			} else if ecc > lower {
				lower = ecc
			}
			continue
		}
		if 2*level <= lower {
			return lower, true, nil
		}
		for i < n && distR[order[i]] == level {
			u := order[i]
			i++
			if !spend() {
				return lower, false, ctx.Err()
			}
			if ecc, err := search(u, dist); err != nil {
				return lower, false, err
			} else if ecc > lower {
				lower = ecc
				if 2*level <= lower {
					return lower, true, nil
				}
			}
		}
	}
	return lower, true, nil
}
