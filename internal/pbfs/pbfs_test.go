package pbfs

import (
	"testing"

	"repro/internal/bsp"
	"repro/internal/graph"
)

func TestRunMatchesSequentialBFS(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Mesh(25, 25),
		graph.BarabasiAlbert(2000, 3, 1),
		graph.Path(300),
	} {
		want := g.BFS(0)
		res, err := Run(g, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		for u := range want {
			if res.Dist[u] != want[u] {
				t.Fatalf("dist[%d]=%d want %d", u, res.Dist[u], want[u])
			}
		}
		if res.Ecc != g.Eccentricity(0) {
			t.Fatalf("ecc %d want %d", res.Ecc, g.Eccentricity(0))
		}
	}
}

func TestRunBoundsBracketDiameter(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Mesh(20, 20),
		graph.RoadLike(20, 20, 0.4, 2),
		graph.Cycle(61),
	} {
		truth, _ := g.ExactDiameter(0)
		res, err := Run(g, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Lower > truth || res.Upper < truth {
			t.Fatalf("bounds [%d, %d] do not bracket %d", res.Lower, res.Upper, truth)
		}
	}
}

func TestRunRoundsLinearInEccentricity(t *testing.T) {
	g := graph.Path(500)
	res, err := Run(g, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	// ecc + the final empty-frontier detection round.
	if res.Stats.Rounds != 500 {
		t.Fatalf("rounds=%d want 500", res.Stats.Rounds)
	}
	if res.Ecc != 499 {
		t.Fatalf("ecc=%d want 499", res.Ecc)
	}
}

func TestRunAggregateMessagesLinear(t *testing.T) {
	g := graph.Mesh(30, 30)
	// Forced top-down scans every arc of a connected graph exactly once per
	// endpoint activation: messages = 2m. The hybrid default may only
	// improve on that (pull rounds replace scans with cheaper probes).
	push, err := RunDirection(g, 0, 0, bsp.DirPush)
	if err != nil {
		t.Fatal(err)
	}
	if push.Stats.Messages != int64(g.NumArcs()) {
		t.Fatalf("forced-push messages=%d want %d (2m)", push.Stats.Messages, g.NumArcs())
	}
	res, err := Run(g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Messages > push.Stats.Messages {
		t.Fatalf("hybrid messages=%d exceed top-down %d", res.Stats.Messages, push.Stats.Messages)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(graph.NewBuilder(0).Build(), 0, 0); err == nil {
		t.Fatal("empty graph should fail")
	}
	if _, err := Run(graph.Path(3), 7, 0); err == nil {
		t.Fatal("source out of range should fail")
	}
	if _, err := Run(graph.Path(3), -1, 0); err == nil {
		t.Fatal("negative source should fail")
	}
}

func TestTwoSweepImprovesLowerBound(t *testing.T) {
	// Start a sweep from the middle of a path: single-sweep lower bound is
	// n/2, two-sweep finds the full diameter.
	g := graph.Path(101)
	single, err := Run(g, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	double, err := TwoSweep(g, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	if single.Lower != 50 {
		t.Fatalf("single sweep lower %d want 50", single.Lower)
	}
	if double.Lower != 100 {
		t.Fatalf("two-sweep lower %d want 100", double.Lower)
	}
	truth := int32(100)
	if double.Lower > truth || double.Upper < truth {
		t.Fatal("two-sweep bounds do not bracket the diameter")
	}
}

func TestTwoSweepAccumulatesStats(t *testing.T) {
	g := graph.Mesh(15, 15)
	single, _ := Run(g, 0, 0)
	double, err := TwoSweep(g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if double.Stats.Rounds <= single.Stats.Rounds {
		t.Fatal("two-sweep should count both sweeps' rounds")
	}
	// Both sweeps' messages accumulate; each sweep is bounded by the
	// top-down cost 2m (the hybrid engine can only undercut it).
	if double.Stats.Messages <= single.Stats.Messages {
		t.Fatalf("two-sweep messages %d should exceed single sweep's %d",
			double.Stats.Messages, single.Stats.Messages)
	}
	if double.Stats.Messages > 2*int64(g.NumArcs()) {
		t.Fatalf("two-sweep messages %d exceed two full top-down BFS (%d)",
			double.Stats.Messages, 2*g.NumArcs())
	}
}

func TestRunDisconnectedLeavesUnreached(t *testing.T) {
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.Build()
	res, err := Run(g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist[2] != -1 || res.Dist[3] != -1 {
		t.Fatal("nodes in other components must stay at -1")
	}
	if res.Ecc != 1 {
		t.Fatalf("ecc %d want 1", res.Ecc)
	}
}
