// Package pbfs provides the parallel breadth-first-search baseline used in
// the paper's Table 4 and Figure 1 comparisons.
//
// A BFS from any node u yields ecc(u), and 2·ecc(u) is an upper bound on
// the diameter within a factor two; that single-BFS bound is what the
// paper's BFS competitor reports. The two-sweep refinement (BFS from the
// farthest node found) gives the classical lower bound as well. Either way
// the computation takes Θ(∆) BSP rounds — exactly the cost profile the
// CLUSTER-based estimator improves on for long-diameter graphs. The BFS
// itself runs on the direction-optimizing engine, so on low-diameter
// graphs its aggregate communication drops well below the 2m arcs of the
// pure top-down execution.
package pbfs

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"repro/internal/bsp"
	"repro/internal/graph"
)

// Result reports a BFS-based diameter estimation.
type Result struct {
	// Source is the BFS root.
	Source graph.NodeID
	// Ecc is the eccentricity of Source (a lower bound on the diameter).
	Ecc int32
	// Upper is 2·Ecc, the certified upper bound reported as the estimate in
	// the paper's Table 4.
	Upper int32
	// Lower is the best known lower bound: Ecc for a single sweep, the
	// second sweep's eccentricity after TwoSweep.
	Lower int32
	// Dist holds the hop distances from Source (-1 = unreachable).
	Dist []int32
	// Stats counts BSP rounds (Θ(∆)) and messages (arcs scanned in either
	// direction; at most Θ(m) aggregate, less when the engine runs
	// bottom-up rounds).
	Stats bsp.Stats
	// Elapsed is the wall-clock time.
	Elapsed time.Duration
}

// Run performs one parallel BFS from src with the hybrid engine.
func Run(g *graph.Graph, src graph.NodeID, workers int) (*Result, error) {
	return RunDirection(g, src, workers, bsp.DirAuto)
}

// RunDirection performs one parallel BFS from src with the traversal
// direction pinned (bsp.DirAuto selects the hybrid heuristic; DirPush is
// the pure top-down baseline the engine-mode benchmarks compare against).
func RunDirection(g *graph.Graph, src graph.NodeID, workers int, dir bsp.Direction) (*Result, error) {
	//lint:allow background public non-cancellable wrapper; RunDirectionContext is the cancellable form
	return RunDirectionContext(context.Background(), g, src, workers, dir)
}

// RunDirectionContext is RunDirection with cooperative cancellation: the
// depth loop checks ctx at the superstep barriers and returns ctx.Err()
// within one round of a cancel. An uncancelled run executes exactly the
// same rounds, so the distances stay deterministic across worker counts.
func RunDirectionContext(ctx context.Context, g *graph.Graph, src graph.NodeID, workers int, dir bsp.Direction) (*Result, error) {
	start := time.Now()
	n := g.NumNodes()
	if n == 0 {
		return nil, errors.New("pbfs: empty graph")
	}
	if src < 0 || int(src) >= n {
		return nil, errors.New("pbfs: source out of range")
	}
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	e := bsp.NewEngine(g, workers)
	defer e.Close()
	e.SetDirection(dir)
	e.Seed(src)
	ecc := int32(0)
	for depth := int32(1); e.FrontierLen() > 0; depth++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		d := depth
		rs := e.Step(bsp.StepSpec{
			Push: func(_ int, u, v graph.NodeID) bool {
				return atomic.CompareAndSwapInt32(&dist[v], -1, d)
			},
			Pull: func(_ int, v, u graph.NodeID) bool {
				// v belongs to this worker alone in a pull round.
				dist[v] = d
				return true
			},
		})
		if rs.Claimed > 0 {
			ecc = depth
		}
	}
	return &Result{
		Source:  src,
		Ecc:     ecc,
		Upper:   2 * ecc,
		Lower:   ecc,
		Dist:    dist,
		Stats:   e.Stats(),
		Elapsed: time.Since(start),
	}, nil
}

// EstimateDiameter is the paper's BFS competitor: a single parallel BFS
// from src, reporting 2·ecc(src) as the diameter estimate.
func EstimateDiameter(g *graph.Graph, src graph.NodeID, workers int) (*Result, error) {
	return Run(g, src, workers)
}

// TwoSweep runs the double-sweep heuristic on the BSP substrate: BFS from
// src finds a far node a; BFS from a yields ecc(a), improving the lower
// bound (the upper bound remains 2·ecc(a) ≥ ∆ ≥ ecc(a)). The returned
// Result is the second sweep's, with Lower = ecc(a) and accumulated stats.
func TwoSweep(g *graph.Graph, src graph.NodeID, workers int) (*Result, error) {
	start := time.Now()
	first, err := Run(g, src, workers)
	if err != nil {
		return nil, err
	}
	// Farthest node from src (smallest id among ties, for determinism).
	far := src
	best := int32(-1)
	for u, d := range first.Dist {
		if d > best {
			best = d
			far = graph.NodeID(u)
		}
	}
	second, err := Run(g, far, workers)
	if err != nil {
		return nil, err
	}
	second.Stats.Add(first.Stats)
	second.Elapsed = time.Since(start)
	return second, nil
}
