// Package gonzalez implements the classical greedy farthest-first-traversal
// 2-approximation for metric k-center (Gonzalez 1985, [13] in the paper),
// specialized to the shortest-path metric of an unweighted graph. It is the
// sequential quality baseline against which the paper's CLUSTER-based
// k-center approximation is compared.
//
// Each of the k iterations runs one BFS, so the total cost is O(k·m) — fine
// sequentially, but inherently Ω(k·∆)-round in a distributed setting, which
// is exactly the gap the paper's algorithm closes.
package gonzalez

import (
	"errors"

	"repro/internal/graph"
)

// KCenter returns k centers chosen by farthest-first traversal starting
// from the given node, together with the exact resulting radius. On a
// connected graph the radius is at most twice the optimum.
//
// If the graph is disconnected, farthest-first traversal naturally jumps
// between components (unreachable nodes count as infinitely far); an error
// is returned only if k is smaller than the number of components, in which
// case the objective is unbounded.
func KCenter(g *graph.Graph, k int, start graph.NodeID) ([]graph.NodeID, int32, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, 0, errors.New("gonzalez: empty graph")
	}
	if k < 1 {
		return nil, 0, errors.New("gonzalez: k must be >= 1")
	}
	if k > n {
		k = n
	}
	const unreached = int32(1<<31 - 1)
	minDist := make([]int32, n)
	for i := range minDist {
		minDist[i] = unreached
	}
	scratch := make([]int32, n)
	queue := make([]graph.NodeID, 0, n)

	centers := make([]graph.NodeID, 0, k)
	cur := start
	for len(centers) < k {
		centers = append(centers, cur)
		for i := range scratch {
			scratch[i] = -1
		}
		g.BFSInto(cur, scratch, queue)
		for u := 0; u < n; u++ {
			if scratch[u] >= 0 && scratch[u] < minDist[u] {
				minDist[u] = scratch[u]
			}
		}
		// Next center: the node farthest from the current center set,
		// unreachable nodes (other components) first.
		var far graph.NodeID
		best := int32(-1)
		for u := 0; u < n; u++ {
			if minDist[u] > best {
				best = minDist[u]
				far = graph.NodeID(u)
			}
		}
		if best == 0 {
			break // every node is a center already
		}
		cur = far
	}

	var radius int32
	for u := 0; u < n; u++ {
		if minDist[u] == unreached {
			return nil, 0, errors.New("gonzalez: k smaller than the number of components")
		}
		if minDist[u] > radius {
			radius = minDist[u]
		}
	}
	return centers, radius, nil
}
