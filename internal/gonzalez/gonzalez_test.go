package gonzalez

import (
	"testing"

	"repro/internal/graph"
)

func TestKCenterPath(t *testing.T) {
	// Optimal 2-center radius on P12 is 3 ([0..5] around 2/3, [6..11]).
	g := graph.Path(12)
	_, r, err := KCenter(g, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r > 6 { // 2-approximation of the optimum 3
		t.Fatalf("radius %d exceeds 2x optimum", r)
	}
	if r < 3 {
		t.Fatalf("radius %d below optimum 3 — objective miscomputed", r)
	}
}

func TestKCenterKEqualsN(t *testing.T) {
	g := graph.Cycle(6)
	centers, r, err := KCenter(g, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r != 0 {
		t.Fatalf("radius %d want 0 when every node is a center", r)
	}
	if len(centers) != 6 {
		t.Fatalf("got %d centers want 6", len(centers))
	}
}

func TestKCenterKGreaterThanN(t *testing.T) {
	g := graph.Path(4)
	_, r, err := KCenter(g, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r != 0 {
		t.Fatalf("radius %d want 0", r)
	}
}

func TestKCenterStopsEarlyWhenCovered(t *testing.T) {
	g := graph.Star(10)
	centers, r, err := KCenter(g, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r > 1 {
		t.Fatalf("radius %d want <= 1 on a star", r)
	}
	if len(centers) > 5 {
		t.Fatal("too many centers")
	}
}

func TestKCenterErrors(t *testing.T) {
	if _, _, err := KCenter(graph.NewBuilder(0).Build(), 1, 0); err == nil {
		t.Fatal("empty graph should fail")
	}
	if _, _, err := KCenter(graph.Path(3), 0, 0); err == nil {
		t.Fatal("k=0 should fail")
	}
}

func TestKCenterDisconnected(t *testing.T) {
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	b.AddEdge(4, 5)
	g := b.Build()
	// k=3 suffices (one per component).
	_, r, err := KCenter(g, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r != 1 {
		t.Fatalf("radius %d want 1", r)
	}
	// k=2 is infeasible.
	if _, _, err := KCenter(g, 2, 0); err == nil {
		t.Fatal("k below component count should fail")
	}
}

func TestKCenterTwoApproxAgainstBruteForce(t *testing.T) {
	// Exhaustively compute the optimal 2-center radius on a small random
	// graph and verify the greedy radius is at most twice it.
	g := graph.ErdosRenyi(18, 30, 5)
	g, _ = g.LargestComponent()
	n := g.NumNodes()
	if n < 6 {
		t.Skip("component too small")
	}
	dist := make([][]int32, n)
	for u := 0; u < n; u++ {
		dist[u] = g.BFS(graph.NodeID(u))
	}
	opt := int32(1 << 30)
	for a := 0; a < n; a++ {
		for b := a; b < n; b++ {
			var worst int32
			for u := 0; u < n; u++ {
				d := dist[a][u]
				if dist[b][u] < d {
					d = dist[b][u]
				}
				if d > worst {
					worst = d
				}
			}
			if worst < opt {
				opt = worst
			}
		}
	}
	_, r, err := KCenter(g, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r > 2*opt {
		t.Fatalf("greedy radius %d exceeds 2x optimum %d", r, opt)
	}
	if r < opt {
		t.Fatalf("greedy radius %d below optimum %d — objective miscomputed", r, opt)
	}
}

func TestKCenterMeshRadiusSane(t *testing.T) {
	g := graph.Mesh(20, 20)
	_, r, err := KCenter(g, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 16 centers on a 20x20 mesh: optimum is about 5 (4x4 tiling of 5x5
	// blocks); the 2-approximation must be below 12.
	if r > 12 {
		t.Fatalf("radius %d too large", r)
	}
}
