package mr

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func naiveMinPlus(a, b []int64, l int) []int64 {
	c := make([]int64, l*l)
	for i := 0; i < l; i++ {
		for j := 0; j < l; j++ {
			best := Inf
			for k := 0; k < l; k++ {
				if s := a[i*l+k] + b[k*l+j]; s < best {
					best = s
				}
			}
			c[i*l+j] = best
		}
	}
	return c
}

func TestMinPlusProductMatchesNaive(t *testing.T) {
	r := rng.New(3)
	l := 9
	a := make([]int64, l*l)
	b := make([]int64, l*l)
	for i := range a {
		a[i] = int64(r.Intn(20))
		b[i] = int64(r.Intn(20))
		if r.Bernoulli(0.2) {
			a[i] = Inf
		}
		if r.Bernoulli(0.2) {
			b[i] = Inf
		}
	}
	e := NewEngine(Config{})
	got, err := e.MinPlusProduct(a, b, l)
	if err != nil {
		t.Fatal(err)
	}
	want := naiveMinPlus(a, b, l)
	for i := range want {
		// Entries that the naive product derives only from Inf+x sums stay
		// at Inf in both (emits skip Inf inputs).
		w := want[i]
		if w >= Inf {
			w = Inf
		}
		if got[i] != w {
			t.Fatalf("C[%d]=%d want %d", i, got[i], w)
		}
	}
	if e.Rounds() != 2 {
		t.Fatalf("product took %d rounds, want 2", e.Rounds())
	}
}

func TestMinPlusSquareIdentityBehavior(t *testing.T) {
	// Squaring a distance matrix with zero diagonal must not increase any
	// entry and must keep the diagonal zero.
	l := 6
	a := []int64{
		0, 2, Inf, Inf, Inf, Inf,
		2, 0, 3, Inf, Inf, Inf,
		Inf, 3, 0, 1, Inf, Inf,
		Inf, Inf, 1, 0, 4, Inf,
		Inf, Inf, Inf, 4, 0, 5,
		Inf, Inf, Inf, Inf, 5, 0,
	}
	e := NewEngine(Config{})
	sq, err := e.MinPlusSquare(a, l)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < l; i++ {
		if sq[i*l+i] != 0 {
			t.Fatalf("diagonal broke at %d: %d", i, sq[i*l+i])
		}
		for j := 0; j < l; j++ {
			if sq[i*l+j] > a[i*l+j] {
				t.Fatalf("entry (%d,%d) increased: %d > %d", i, j, sq[i*l+j], a[i*l+j])
			}
		}
	}
	// Two-hop path 0-1-2 must now be present: 2+3.
	if sq[0*l+2] != 5 {
		t.Fatalf("two-hop distance %d want 5", sq[0*l+2])
	}
}

func TestAPSPMatchesDijkstra(t *testing.T) {
	g := graph.RoadLike(6, 6, 0.5, 2)
	edges := g.EdgeList()
	r := rng.New(5)
	weights := make([]int32, len(edges))
	for i := range weights {
		weights[i] = int32(1 + r.Intn(7))
	}
	w := graph.MustWeighted(g.NumNodes(), edges, weights)
	e := NewEngine(Config{})
	mat, err := e.APSPByRepeatedSquaring(w)
	if err != nil {
		t.Fatal(err)
	}
	l := w.NumNodes()
	for u := 0; u < l; u++ {
		dij := w.Dijkstra(graph.NodeID(u))
		for v := 0; v < l; v++ {
			want := dij[v]
			got := mat[u*l+v]
			if want == graph.InfDist {
				if got < Inf {
					t.Fatalf("(%d,%d): got %d want unreachable", u, v, got)
				}
				continue
			}
			if got != want {
				t.Fatalf("(%d,%d): got %d want %d", u, v, got, want)
			}
		}
	}
}

func TestDiameterByRepeatedSquaring(t *testing.T) {
	g := graph.Mesh(5, 4)
	edges := g.EdgeList()
	weights := make([]int32, len(edges))
	for i := range weights {
		weights[i] = 1
	}
	w := graph.MustWeighted(g.NumNodes(), edges, weights)
	e := NewEngine(Config{})
	d, err := e.DiameterByRepeatedSquaring(w)
	if err != nil {
		t.Fatal(err)
	}
	if d != 7 { // (5-1)+(4-1)
		t.Fatalf("diameter %d want 7", d)
	}
	// log2(20) squarings ~ 5, each 2 rounds.
	if e.Rounds() < 8 || e.Rounds() > 12 {
		t.Fatalf("repeated squaring rounds %d outside expected band", e.Rounds())
	}
}

func TestMinPlusProductErrors(t *testing.T) {
	e := NewEngine(Config{})
	if _, err := e.MinPlusProduct(make([]int64, 3), make([]int64, 4), 2); err == nil {
		t.Fatal("size mismatch should fail")
	}
}

func TestMinPlusProductRespectsML(t *testing.T) {
	// With tiny ML the join groups (2ℓ pairs) must trip the local memory
	// guard, demonstrating the model's accounting.
	l := 10
	a := make([]int64, l*l)
	e := NewEngine(Config{ML: 4})
	if _, err := e.MinPlusProduct(a, a, l); err == nil {
		t.Fatal("expected ML violation")
	}
}
