// Package mr simulates the MR(MG, ML) MapReduce model of Pietracaprina et
// al. ([24] in the paper), the model in which Section 5 analyzes the
// distributed implementation of CLUSTER/CLUSTER2 and of the diameter
// estimator.
//
// An MR algorithm is a sequence of rounds. In a round, a multiset of
// key-value pairs is transformed into a new multiset by applying a reducer
// independently to every group of pairs sharing a key. Two resources are
// constrained: MG, the total memory across the computation (global space),
// and ML, the memory available to a single reducer (local space). The
// engine enforces both and counts rounds, so algorithm implementations can
// be checked against their claimed round complexity (e.g. Lemma 3's
// O(R·log_ML m) rounds for R growing steps, or Fact 2's bound for matrix
// multiplication).
//
// The driver program may inspect O(ML)-sized round outputs between rounds
// (as a real MapReduce driver collects small side outputs); everything
// data-sized must flow through Round.
package mr

import (
	"errors"
	"fmt"
	"sort"
)

// Pair is a key-value pair. Values are opaque 2-word payloads, enough for
// the graph primitives in this repository (node ids, weights, indices).
type Pair struct {
	Key uint64
	A   int64
	B   int64
}

// Config sets the model parameters.
type Config struct {
	// MG is the global memory, in pairs. Zero means unlimited.
	MG int64
	// ML is the local (per-reducer) memory, in pairs. Zero means unlimited.
	ML int64
}

// Engine executes rounds and accounts resource usage.
type Engine struct {
	cfg Config

	rounds       int
	maxGroup     int
	maxGlobal    int64
	totalShuffle int64
}

// NewEngine returns an engine for the given configuration.
func NewEngine(cfg Config) *Engine { return &Engine{cfg: cfg} }

// Rounds returns the number of rounds executed so far.
func (e *Engine) Rounds() int { return e.rounds }

// MaxReducerInput returns the largest group any reducer received.
func (e *Engine) MaxReducerInput() int { return e.maxGroup }

// MaxGlobalPairs returns the largest round input observed.
func (e *Engine) MaxGlobalPairs() int64 { return e.maxGlobal }

// TotalShuffled returns the total number of pairs moved across all rounds.
func (e *Engine) TotalShuffled() int64 { return e.totalShuffle }

// ML returns the configured local memory (0 = unlimited).
func (e *Engine) ML() int64 { return e.cfg.ML }

// ErrLocalMemory is returned when a reducer's input exceeds ML.
var ErrLocalMemory = errors.New("mr: reducer input exceeds local memory ML")

// ErrGlobalMemory is returned when a round's input exceeds MG.
var ErrGlobalMemory = errors.New("mr: round input exceeds global memory MG")

// Emitter collects a reducer's output pairs.
type Emitter func(Pair)

// Reducer transforms one key group. pairs is sorted by (A, B) for
// determinism and aliases engine-internal storage: it must not be retained.
type Reducer func(key uint64, pairs []Pair, emit Emitter)

// Round runs one MapReduce round over input: pairs are grouped by key and
// each group is handed to reduce. It returns the concatenated output.
func (e *Engine) Round(input []Pair, reduce Reducer) ([]Pair, error) {
	if e.cfg.MG > 0 && int64(len(input)) > e.cfg.MG {
		return nil, fmt.Errorf("%w: %d > %d", ErrGlobalMemory, len(input), e.cfg.MG)
	}
	if int64(len(input)) > e.maxGlobal {
		e.maxGlobal = int64(len(input))
	}
	// Shuffle: stable ordering by (key, A, B) so reducers see a
	// deterministic view.
	buf := make([]Pair, len(input))
	copy(buf, input)
	sort.Slice(buf, func(i, j int) bool {
		if buf[i].Key != buf[j].Key {
			return buf[i].Key < buf[j].Key
		}
		if buf[i].A != buf[j].A {
			return buf[i].A < buf[j].A
		}
		return buf[i].B < buf[j].B
	})

	var out []Pair
	emit := func(p Pair) { out = append(out, p) }
	for lo := 0; lo < len(buf); {
		hi := lo
		for hi < len(buf) && buf[hi].Key == buf[lo].Key {
			hi++
		}
		group := buf[lo:hi]
		if e.cfg.ML > 0 && int64(len(group)) > e.cfg.ML {
			return nil, fmt.Errorf("%w: key %d has %d pairs > %d",
				ErrLocalMemory, buf[lo].Key, len(group), e.cfg.ML)
		}
		if len(group) > e.maxGroup {
			e.maxGroup = len(group)
		}
		reduce(buf[lo].Key, group, emit)
		lo = hi
	}
	e.rounds++
	e.totalShuffle += int64(len(input))
	if e.cfg.MG > 0 && int64(len(out)) > e.cfg.MG {
		return nil, fmt.Errorf("%w: output %d > %d", ErrGlobalMemory, len(out), e.cfg.MG)
	}
	return out, nil
}
