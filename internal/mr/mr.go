// Package mr implements the MR(MG, ML) MapReduce model of Pietracaprina et
// al. ([24] in the paper), the model in which Section 5 analyzes the
// distributed implementation of CLUSTER/CLUSTER2 and of the diameter
// estimator — and actually executes it in parallel.
//
// An MR algorithm is a sequence of rounds. In a round, a multiset of
// key-value pairs is transformed into a new multiset by applying a reducer
// independently to every group of pairs sharing a key. Two resources are
// constrained: MG, the total memory across the computation (global space),
// and ML, the memory available to a single reducer (local space). The
// engine enforces both and counts rounds, so algorithm implementations can
// be checked against their claimed round complexity (e.g. Lemma 3's
// O(R·log_ML m) rounds for R growing steps, or Fact 2's bound for matrix
// multiplication).
//
// # Execution model
//
// A round runs as a sharded shuffle-and-reduce: input pairs are
// hash-partitioned by key into Config.Shards reducer shards, each shard is
// sorted and reduced concurrently on a persistent bsp.Pool, and the shard
// outputs are assembled in ascending key-group order. Because a key group
// lives entirely in one shard and the assembly is ordered by key, the
// round's output — and therefore every downstream round, the round count,
// and MaxReducerInput — is bit-for-bit identical across shard counts,
// including the single-shard sequential execution.
//
// # Resource accounting
//
// The MR(MG, ML) accounting is unchanged by parallel execution: MG bounds a
// round's input and output multiset sizes, ML bounds a single key group,
// and the counters (Rounds, TotalShuffled, MaxReducerInput, MaxGlobalPairs)
// are shard-count independent. Accounting is all-or-nothing: a round that
// fails either memory check leaves every counter and the RoundStats log
// exactly as they were, so a failed probe cannot pollute a resource report.
//
// The driver program may inspect O(ML)-sized round outputs between rounds
// (as a real MapReduce driver collects small side outputs); everything
// data-sized must flow through Round.
package mr

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"time"

	"repro/internal/bsp"
)

// Pair is a key-value pair. Values are opaque 2-word payloads, enough for
// the graph primitives in this repository (node ids, weights, indices).
type Pair struct {
	Key uint64
	A   int64
	B   int64
}

// Config sets the model and runtime parameters.
type Config struct {
	// MG is the global memory, in pairs. Zero means unlimited.
	MG int64
	// ML is the local (per-reducer) memory, in pairs. Zero means unlimited.
	ML int64
	// Shards is the number of parallel reducer shards (and pool workers).
	// Non-positive selects GOMAXPROCS. Outputs and accounting are
	// identical for every value.
	Shards int
}

// defaultShards, when positive, overrides the GOMAXPROCS fallback for
// Config.Shards <= 0. The package tests set it from the MR_SHARDS
// environment variable so CI can sweep shard counts under -race.
var defaultShards int

// RoundStat records the execution profile of one successful round.
type RoundStat struct {
	// PairsIn is the round's input multiset size.
	PairsIn int64 `json:"pairs_in"`
	// PairsOut is the round's output multiset size.
	PairsOut int64 `json:"pairs_out"`
	// Shards is the number of reducer shards the round actually used
	// (small rounds stay on the calling goroutine).
	Shards int `json:"shards"`
	// Millis is the round's wall-clock time.
	Millis float64 `json:"millis"`
}

// Engine executes rounds and accounts resource usage. An Engine is not safe
// for concurrent use; the parallelism lives inside Round.
type Engine struct {
	cfg    Config
	shards int
	pool   *bsp.Pool

	// ctx arms cooperative cancellation (SetContext); nil never cancels.
	ctx context.Context

	// obs, when non-nil, receives each committed round's RoundStat
	// (SetObserver); nil costs one branch per round.
	obs func(RoundStat)

	rounds       int
	maxGroup     int
	maxGlobal    int64
	totalShuffle int64
	roundStats   []RoundStat
}

// NewEngine returns an engine for the given configuration.
func NewEngine(cfg Config) *Engine {
	if cfg.Shards <= 0 && defaultShards > 0 {
		cfg.Shards = defaultShards
	}
	return &Engine{cfg: cfg, shards: bsp.Workers(cfg.Shards)}
}

// Close releases the worker pool. The engine must not run rounds afterwards.
func (e *Engine) Close() {
	if e.pool != nil {
		e.pool.Close()
		e.pool = nil
	}
}

// SetContext arms cooperative cancellation: every subsequent Round checks
// ctx at the round barrier and fails with ctx.Err() before doing any work
// or touching the accounting, so a multi-round algorithm (growth steps,
// repeated squaring) stops within one round of a cancel. A nil ctx (the
// default) never cancels.
func (e *Engine) SetContext(ctx context.Context) { e.ctx = ctx }

// SetObserver installs fn to receive every committed round's RoundStat,
// right after the round's accounting commits — live MR(MG, ML) progress
// for a serving layer tracing a multi-round build. Failed or cancelled
// rounds emit nothing, mirroring the all-or-nothing accounting. fn runs
// on the goroutine driving the rounds; a nil fn (the default) disables
// observation at the cost of one branch per round.
func (e *Engine) SetObserver(fn func(RoundStat)) { e.obs = fn }

func (e *Engine) ctxErr() error {
	if e.ctx == nil {
		return nil
	}
	return e.ctx.Err()
}

// Rounds returns the number of rounds executed so far.
func (e *Engine) Rounds() int { return e.rounds }

// MaxReducerInput returns the largest group any reducer received.
func (e *Engine) MaxReducerInput() int { return e.maxGroup }

// MaxGlobalPairs returns the largest round input or output observed.
func (e *Engine) MaxGlobalPairs() int64 { return e.maxGlobal }

// TotalShuffled returns the total number of pairs moved across all rounds.
func (e *Engine) TotalShuffled() int64 { return e.totalShuffle }

// ML returns the configured local memory (0 = unlimited).
func (e *Engine) ML() int64 { return e.cfg.ML }

// Shards returns the configured shard count.
func (e *Engine) Shards() int { return e.shards }

// RoundStats returns a copy of the per-round execution profile. Failed
// rounds leave no entry.
func (e *Engine) RoundStats() []RoundStat {
	return append([]RoundStat(nil), e.roundStats...)
}

// ErrLocalMemory is returned when a reducer's input exceeds ML.
var ErrLocalMemory = errors.New("mr: reducer input exceeds local memory ML")

// ErrGlobalMemory is returned when a round's input exceeds MG.
var ErrGlobalMemory = errors.New("mr: round input exceeds global memory MG")

// Emitter collects a reducer's output pairs. It is only valid during the
// reducer invocation it was passed to, and must not be called from
// goroutines the reducer spawns.
type Emitter func(Pair)

// Reducer transforms one key group. pairs is sorted by (A, B) for
// determinism and aliases engine-internal storage: it must not be retained.
// Key groups are reduced concurrently across shards, so a Reducer must be
// safe for concurrent invocation: a pure function of its group plus
// read-only captured state.
type Reducer func(key uint64, pairs []Pair, emit Emitter)

// minShardPairs is the minimum number of input pairs per shard; rounds
// smaller than 2·minShardPairs run on the calling goroutine alone.
const minShardPairs = 512

// shardsFor bounds the effective shard count for an n-pair round.
func (e *Engine) shardsFor(n int) int {
	s := e.shards
	if most := n / minShardPairs; s > most {
		s = most
	}
	if s < 1 {
		return 1
	}
	return s
}

// mixKey is the splitmix64 finalizer: the shard hash must scramble keys
// that clients assign sequentially (node ids, block ids, matrix cells) so
// the shards stay balanced.
func mixKey(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// shardGroup is one reduced key group inside a shard's output buffer.
type shardGroup struct {
	key    uint64
	lo, hi int
}

// shardResult is one shard's contribution to a round, produced on its pool
// worker and merged at the barrier.
type shardResult struct {
	out      []Pair
	groups   []shardGroup
	maxGroup int
	errKey   uint64
	err      error
}

// runShard sorts one shard's pairs by (key, A, B), reduces each key group,
// and records the group boundaries for the ordered merge. On an ML
// violation it stops at the first (lowest-key) offending group; because the
// shard processes keys in ascending order, the minimum errKey across shards
// is the same group the sequential execution would have tripped on.
func runShard(ml int64, pairs []Pair, res *shardResult, reduce Reducer) {
	// The comparison is a total order over all three fields, so the
	// (unstable) sort is deterministic: equal elements are identical.
	slices.SortFunc(pairs, func(a, b Pair) int {
		switch {
		case a.Key != b.Key:
			if a.Key < b.Key {
				return -1
			}
			return 1
		case a.A != b.A:
			if a.A < b.A {
				return -1
			}
			return 1
		case a.B < b.B:
			return -1
		case a.B > b.B:
			return 1
		}
		return 0
	})
	var out []Pair
	emit := func(p Pair) { out = append(out, p) }
	for lo := 0; lo < len(pairs); {
		hi := lo
		for hi < len(pairs) && pairs[hi].Key == pairs[lo].Key {
			hi++
		}
		group := pairs[lo:hi]
		key := pairs[lo].Key
		if ml > 0 && int64(len(group)) > ml {
			res.errKey = key
			res.err = fmt.Errorf("%w: key %d has %d pairs > %d",
				ErrLocalMemory, key, len(group), ml)
			return
		}
		if len(group) > res.maxGroup {
			res.maxGroup = len(group)
		}
		glo := len(out)
		reduce(key, group, emit)
		res.groups = append(res.groups, shardGroup{key: key, lo: glo, hi: len(out)})
		lo = hi
	}
	res.out = out
}

// Round runs one MapReduce round over input: pairs are grouped by key and
// each group is handed to reduce. It returns the output pairs assembled in
// ascending key-group order (emission order within a group), which is
// independent of the shard count. Counters are committed only if the round
// passes both memory checks and the engine's context (SetContext) is not
// cancelled — a cancelled round fails with ctx.Err() and leaves the
// accounting untouched, exactly like a failed memory probe.
func (e *Engine) Round(input []Pair, reduce Reducer) ([]Pair, error) {
	if err := e.ctxErr(); err != nil {
		return nil, err
	}
	if e.cfg.MG > 0 && int64(len(input)) > e.cfg.MG {
		return nil, fmt.Errorf("%w: %d > %d", ErrGlobalMemory, len(input), e.cfg.MG)
	}
	start := time.Now() //lint:allow walltime accounting-only: round timing never influences shard output
	shards := e.shardsFor(len(input))
	results := make([]shardResult, shards)

	if shards == 1 {
		buf := make([]Pair, len(input))
		copy(buf, input)
		runShard(e.cfg.ML, buf, &results[0], reduce)
	} else {
		// Shuffle: hash-partition by key into contiguous per-shard regions
		// of one scratch buffer.
		counts := make([]int, shards)
		for i := range input {
			counts[int(mixKey(input[i].Key)%uint64(shards))]++
		}
		offsets := make([]int, shards+1)
		for s := 0; s < shards; s++ {
			offsets[s+1] = offsets[s] + counts[s]
		}
		buf := make([]Pair, len(input))
		pos := make([]int, shards)
		copy(pos, offsets[:shards])
		for i := range input {
			s := int(mixKey(input[i].Key) % uint64(shards))
			buf[pos[s]] = input[i]
			pos[s]++
		}
		if e.pool == nil {
			e.pool = bsp.NewPool(e.shards)
		}
		e.pool.Run(func(worker int) {
			for s := worker; s < shards; s += e.shards {
				runShard(e.cfg.ML, buf[offsets[s]:offsets[s+1]], &results[s], reduce)
			}
		})
	}

	// Barrier: surface the lowest-key ML violation (deterministic across
	// shard counts) before committing anything.
	var roundErr error
	var errKey uint64
	for s := range results {
		if results[s].err != nil && (roundErr == nil || results[s].errKey < errKey) {
			roundErr, errKey = results[s].err, results[s].errKey
		}
	}
	if roundErr != nil {
		return nil, roundErr
	}

	// Assemble shard outputs in ascending key-group order. Each shard's
	// group list is already key-sorted and a key lives in exactly one
	// shard, so a linear multi-way merge reproduces the sequential order.
	// A single shard already IS that order — no copy needed.
	var out []Pair
	if shards == 1 {
		out = results[0].out
	} else {
		total := 0
		for s := range results {
			total += len(results[s].out)
		}
		out = make([]Pair, 0, total)
		idx := make([]int, shards)
		for {
			best := -1
			var bestKey uint64
			for s := 0; s < shards; s++ {
				if idx[s] < len(results[s].groups) {
					if k := results[s].groups[idx[s]].key; best < 0 || k < bestKey {
						best, bestKey = s, k
					}
				}
			}
			if best < 0 {
				break
			}
			g := results[best].groups[idx[best]]
			out = append(out, results[best].out[g.lo:g.hi]...)
			idx[best]++
		}
	}

	if e.cfg.MG > 0 && int64(len(out)) > e.cfg.MG {
		return nil, fmt.Errorf("%w: output %d > %d", ErrGlobalMemory, len(out), e.cfg.MG)
	}

	// Commit: the round succeeded, fold the per-shard counters in.
	e.rounds++
	e.totalShuffle += int64(len(input))
	for s := range results {
		if results[s].maxGroup > e.maxGroup {
			e.maxGroup = results[s].maxGroup
		}
	}
	if int64(len(input)) > e.maxGlobal {
		e.maxGlobal = int64(len(input))
	}
	if int64(len(out)) > e.maxGlobal {
		e.maxGlobal = int64(len(out))
	}
	rs := RoundStat{
		PairsIn:  int64(len(input)),
		PairsOut: int64(len(out)),
		Shards:   shards,
		Millis:   float64(time.Since(start).Nanoseconds()) / 1e6,
	}
	e.roundStats = append(e.roundStats, rs)
	if e.obs != nil {
		e.obs(rs)
	}
	return out, nil
}
