package mr

import (
	"errors"
	"sort"
)

// Fact 1 primitives: sorting and (segmented) prefix sums in O(log_ML n)
// rounds on MR(MG, ML) with MG = Θ(n).
//
// Every reducer below is a pure function of its key group plus read-only
// captured state (splitters, block offsets), so the primitives run
// unchanged on the sharded parallel runtime: block and bucket keys are
// spread across reducer shards and processed concurrently, while the
// engine's key-ordered assembly preserves the concatenation arguments the
// schemes rely on (bucket outputs come back in splitter order, block
// outputs in block order) for every shard count.
//
// The implementations follow the standard sample-sort / block-scan schemes:
// data is cut into blocks of ML pairs keyed by block id; per-block work is
// one round; the O(n/ML)-sized block summaries fit in a single reducer as
// long as n <= ML², and the schemes recurse(-ably) beyond that. For the
// repository's experiment scales one level suffices, giving the constant
// number of rounds per cluster-growing step that Lemma 3 assumes.

// blockSize returns the block size to use for n items.
func (e *Engine) blockSize(n int) int {
	if e.cfg.ML <= 0 || int64(n) <= e.cfg.ML {
		return n
	}
	return int(e.cfg.ML)
}

// Sort sorts values ascending using MR rounds: block-local sort + regular
// sampling, splitter computation on the (small) sample, bucket
// redistribution, and bucket-local sort.
func (e *Engine) Sort(values []int64) ([]int64, error) {
	n := len(values)
	if n == 0 {
		return nil, nil
	}
	// Blocks of ML/2 guarantee (by the regular-sampling bound) that every
	// final bucket holds at most 2·bs <= ML pairs.
	bs := e.blockSize(n)
	if int64(bs) == e.cfg.ML && bs > 1 {
		bs /= 2
	}
	if bs >= n {
		// Single reducer sorts everything: one round.
		in := make([]Pair, n)
		for i, v := range values {
			in[i] = Pair{Key: 0, A: v}
		}
		out, err := e.Round(in, func(_ uint64, pairs []Pair, emit Emitter) {
			for _, p := range pairs {
				emit(p) // pairs arrive sorted by A already
			}
		})
		if err != nil {
			return nil, err
		}
		res := make([]int64, n)
		for i, p := range out {
			res[i] = p.A
		}
		return res, nil
	}

	numBlocks := (n + bs - 1) / bs
	if e.cfg.ML > 0 && int64(numBlocks)*int64(numBlocks) > e.cfg.ML {
		return nil, errors.New("mr: Sort supports n up to ~ML^1.5/2 (one sample-sort level); recurse for more")
	}

	// Round 1: block-local sort; each block emits ~ML/numBlocks regular
	// samples to the coordinator key and its own (still blocked) data.
	const coordinator = ^uint64(0)
	in := make([]Pair, n)
	for i, v := range values {
		in[i] = Pair{Key: uint64(i / bs), A: v}
	}
	samplesPerBlock := numBlocks // gives numBlocks² <= ML/8 samples total
	if samplesPerBlock < 1 {
		samplesPerBlock = 1
	}
	mid, err := e.Round(in, func(key uint64, pairs []Pair, emit Emitter) {
		for _, p := range pairs {
			emit(p)
		}
		step := (len(pairs) + samplesPerBlock - 1) / samplesPerBlock
		if step < 1 {
			step = 1
		}
		for i := step - 1; i < len(pairs); i += step {
			emit(Pair{Key: coordinator, A: pairs[i].A, B: 1})
		}
	})
	if err != nil {
		return nil, err
	}

	// Driver: collect the coordinator's sample (O(numBlocks²) = O(ML)) and
	// derive numBlocks-1 splitters.
	var sample []int64
	data := mid[:0:0]
	for _, p := range mid {
		if p.Key == coordinator {
			sample = append(sample, p.A)
		} else {
			data = append(data, p)
		}
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	splitters := make([]int64, 0, numBlocks-1)
	for i := 1; i < numBlocks; i++ {
		idx := i * len(sample) / numBlocks
		if idx >= len(sample) {
			idx = len(sample) - 1
		}
		splitters = append(splitters, sample[idx])
	}

	// Round 2: redistribute into buckets by splitter.
	bucketed, err := e.Round(data, func(_ uint64, pairs []Pair, emit Emitter) {
		for _, p := range pairs {
			b := sort.Search(len(splitters), func(i int) bool { return splitters[i] >= p.A })
			emit(Pair{Key: uint64(b), A: p.A})
		}
	})
	if err != nil {
		return nil, err
	}

	// Round 3: bucket-local sort (groups arrive sorted by A already).
	out, err := e.Round(bucketed, func(key uint64, pairs []Pair, emit Emitter) {
		for _, p := range pairs {
			emit(p)
		}
	})
	if err != nil {
		return nil, err
	}
	// Buckets come back grouped in key order, and keys respect the splitter
	// order, so concatenation is sorted.
	res := make([]int64, len(out))
	for i, p := range out {
		res[i] = p.A
	}
	return res, nil
}

// Scan computes an inclusive prefix scan of values under the associative
// operation op with the given identity, in three MR rounds (block scan,
// block-summary scan on one reducer, offset application).
func (e *Engine) Scan(values []int64, op func(a, b int64) int64, identity int64) ([]int64, error) {
	n := len(values)
	if n == 0 {
		return nil, nil
	}
	bs := e.blockSize(n)
	numBlocks := (n + bs - 1) / bs
	if e.cfg.ML > 0 && int64(numBlocks) > e.cfg.ML {
		return nil, errors.New("mr: Scan needs n <= ML²")
	}

	// Round 1: per-block inclusive scan; block totals go to the coordinator.
	const coordinator = ^uint64(0)
	in := make([]Pair, n)
	for i, v := range values {
		in[i] = Pair{Key: uint64(i / bs), A: int64(i), B: v}
	}
	mid, err := e.Round(in, func(key uint64, pairs []Pair, emit Emitter) {
		acc := identity
		for _, p := range pairs { // sorted by A = original index
			acc = op(acc, p.B)
			emit(Pair{Key: key, A: p.A, B: acc})
		}
		emit(Pair{Key: coordinator, A: int64(key), B: acc})
	})
	if err != nil {
		return nil, err
	}

	// Driver collects block totals (<= numBlocks <= ML pairs) and computes
	// exclusive offsets per block.
	offsets := make([]int64, numBlocks)
	data := mid[:0:0]
	totals := make([]int64, numBlocks)
	for _, p := range mid {
		if p.Key == coordinator {
			totals[p.A] = p.B
		} else {
			data = append(data, p)
		}
	}
	acc := identity
	for b := 0; b < numBlocks; b++ {
		offsets[b] = acc
		acc = op(acc, totals[b])
	}

	// Round 2: apply the block offset to every element.
	out, err := e.Round(data, func(key uint64, pairs []Pair, emit Emitter) {
		off := offsets[key]
		for _, p := range pairs {
			emit(Pair{Key: 0, A: p.A, B: op(off, p.B)})
		}
	})
	if err != nil {
		return nil, err
	}
	res := make([]int64, n)
	for _, p := range out {
		res[p.A] = p.B
	}
	return res, nil
}

// PrefixSum computes inclusive prefix sums.
func (e *Engine) PrefixSum(values []int64) ([]int64, error) {
	return e.Scan(values, func(a, b int64) int64 { return a + b }, 0)
}

// SegmentedPrefixSum computes inclusive prefix sums that restart whenever
// the segment id changes (segments must be contiguous runs). It is built
// from two ordinary scans, matching the Fact 1 primitive set: a prefix-max
// scan locates each element's segment start, and a prefix-sum scan turns
// range sums into differences.
func (e *Engine) SegmentedPrefixSum(values []int64, segments []int64) ([]int64, error) {
	n := len(values)
	if len(segments) != n {
		return nil, errors.New("mr: segments length mismatch")
	}
	if n == 0 {
		return nil, nil
	}
	// starts[i] = i if a segment starts at i, else -1; prefix-max gives the
	// segment start index for every element.
	starts := make([]int64, n)
	for i := 0; i < n; i++ {
		if i == 0 || segments[i] != segments[i-1] {
			starts[i] = int64(i)
		} else {
			starts[i] = -1
		}
	}
	segStart, err := e.Scan(starts, func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}, -1)
	if err != nil {
		return nil, err
	}
	prefix, err := e.PrefixSum(values)
	if err != nil {
		return nil, err
	}
	// Final elementwise round: out[i] = prefix[i] - prefix[segStart[i]-1].
	in := make([]Pair, n)
	for i := 0; i < n; i++ {
		in[i] = Pair{Key: uint64(i / e.blockSizeNonZero(n)), A: int64(i)}
	}
	out, err := e.Round(in, func(_ uint64, pairs []Pair, emit Emitter) {
		for _, p := range pairs {
			i := p.A
			v := prefix[i]
			if s := segStart[i]; s > 0 {
				v -= prefix[s-1]
			}
			emit(Pair{Key: 0, A: i, B: v})
		}
	})
	if err != nil {
		return nil, err
	}
	res := make([]int64, n)
	for _, p := range out {
		res[p.A] = p.B
	}
	return res, nil
}

func (e *Engine) blockSizeNonZero(n int) int {
	bs := e.blockSize(n)
	if bs < 1 {
		return 1
	}
	return bs
}
