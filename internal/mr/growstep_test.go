package mr

import (
	"testing"

	"repro/internal/graph"
)

func TestGrowStepMatchesMultiSourceBFS(t *testing.T) {
	g := graph.Mesh(12, 12)
	centers := []graph.NodeID{0, 77, 143}
	e := NewEngine(Config{})
	s := NewGrowState(g.NumNodes(), centers)
	steps, err := e.Grow(g, s)
	if err != nil {
		t.Fatal(err)
	}
	wantDist, _ := g.MultiSourceBFS(centers)
	for u := 0; u < g.NumNodes(); u++ {
		if s.Owner[u] < 0 {
			t.Fatalf("node %d uncovered after full growth", u)
		}
		if s.Dist[u] != int64(wantDist[u]) {
			t.Fatalf("dist[%d]=%d want %d", u, s.Dist[u], wantDist[u])
		}
	}
	// Steps = max distance (frontier exhausts one round after).
	var maxD int64
	for _, d := range s.Dist {
		if d > maxD {
			maxD = d
		}
	}
	if int64(steps) != maxD {
		t.Fatalf("steps=%d want max dist %d", steps, maxD)
	}
}

func TestGrowStepRoundsPerStep(t *testing.T) {
	// Lemma 3: O(1) MR rounds per growing step when ML is large. Our
	// simulator charges exactly one round per step.
	g := graph.Path(30)
	e := NewEngine(Config{})
	s := NewGrowState(g.NumNodes(), []graph.NodeID{0})
	steps, err := e.Grow(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 29 {
		t.Fatalf("steps=%d want 29", steps)
	}
	if e.Rounds() != steps+1 { // +1 for the final empty step's no round? see below
		// The final GrowStep with an empty proposal set still runs a round
		// only if there were proposals; adjust expectation dynamically.
		if e.Rounds() != steps {
			t.Fatalf("rounds=%d for %d steps", e.Rounds(), steps)
		}
	}
}

func TestGrowStepDisjointOwnership(t *testing.T) {
	g := graph.Mesh(10, 10)
	centers := []graph.NodeID{0, 99}
	e := NewEngine(Config{})
	s := NewGrowState(g.NumNodes(), centers)
	if _, err := e.Grow(g, s); err != nil {
		t.Fatal(err)
	}
	sizes := map[int64]int{}
	for _, o := range s.Owner {
		sizes[o]++
	}
	if len(sizes) != 2 {
		t.Fatalf("expected 2 clusters, got %d", len(sizes))
	}
	if sizes[0]+sizes[1] != 100 {
		t.Fatal("clusters do not partition the mesh")
	}
}

func TestGrowStepStateMismatch(t *testing.T) {
	g := graph.Path(5)
	e := NewEngine(Config{})
	s := NewGrowState(3, []graph.NodeID{0})
	if _, err := e.GrowStep(g, s); err == nil {
		t.Fatal("state size mismatch should fail")
	}
}

func TestGrowStepEmptyFrontierNoRound(t *testing.T) {
	g := graph.Path(5)
	e := NewEngine(Config{})
	s := NewGrowState(5, nil)
	n, err := e.GrowStep(g, s)
	if err != nil || n != 0 {
		t.Fatalf("empty frontier: %d %v", n, err)
	}
	if e.Rounds() != 0 {
		t.Fatal("empty frontier should not consume a round")
	}
}
