package mr

import (
	"reflect"
	"testing"
)

// TestObserverSeesCommittedRounds pins the observer contract: every
// committed round emits its RoundStat exactly once, in order, identical to
// the entry recorded in RoundStats, and failed rounds emit nothing.
func TestObserverSeesCommittedRounds(t *testing.T) {
	e := NewEngine(Config{MG: 4})
	var seen []RoundStat
	e.SetObserver(func(rs RoundStat) { seen = append(seen, rs) })

	identity := func(key uint64, pairs []Pair, emit Emitter) {
		for _, p := range pairs {
			emit(p)
		}
	}
	in := []Pair{{Key: 1, A: 1}, {Key: 2, A: 2}, {Key: 1, A: 3}}
	for round := 0; round < 2; round++ {
		if _, err := e.Round(in, identity); err != nil {
			t.Fatal(err)
		}
	}
	// A failed round (global memory probe) must not reach the observer.
	tooBig := []Pair{{Key: 1}, {Key: 2}, {Key: 3}, {Key: 4}, {Key: 5}}
	if _, err := e.Round(tooBig, identity); err == nil {
		t.Fatal("oversized round unexpectedly succeeded")
	}

	want := e.RoundStats()
	if len(want) != 2 {
		t.Fatalf("recorded %d round stats, want 2", len(want))
	}
	if !reflect.DeepEqual(seen, want) {
		t.Fatalf("observer saw %+v, RoundStats recorded %+v", seen, want)
	}
}
