package mr

import (
	"errors"

	"repro/internal/graph"
)

// Fact 2: two ℓ×ℓ matrices can be multiplied in O(log_ML n + ℓ³/(MG·√ML))
// rounds. The paper uses min-plus ("tropical") products to square the
// quotient graph's distance matrix O(log ℓ) times, obtaining its diameter
// within the memory budget of Theorem 4. Here we implement the min-plus
// product with the classical 2-round MR scheme (join on the inner index,
// then reduce by output cell), which realizes the bound for
// ℓ ≤ √ML-per-row workloads; the engine's accounting verifies the resource
// usage rather than assuming it. The join and min reducers are pure, so
// both rounds — the Θ(ℓ³)-pair candidate generation in particular — run
// concurrently across the engine's reducer shards.

// Inf is the "no path" value in distance matrices. It is large enough that
// Inf + Inf does not overflow int64.
const Inf int64 = 1 << 40

// MinPlusSquare returns the min-plus square C = A ⊗ A of the ℓ×ℓ matrix a
// (row-major), i.e. C[i][j] = min_k (A[i][k] + A[k][j]).
func (e *Engine) MinPlusSquare(a []int64, l int) ([]int64, error) {
	return e.MinPlusProduct(a, a, l)
}

// MinPlusProduct computes C[i][j] = min_k (A[i][k] + B[k][j]) in two MR
// rounds: round 1 joins row slices of A with column slices of B on the
// inner index k and emits candidate sums; round 2 takes the min per output
// cell.
func (e *Engine) MinPlusProduct(a, b []int64, l int) ([]int64, error) {
	if len(a) != l*l || len(b) != l*l {
		return nil, errors.New("mr: matrix size mismatch")
	}
	if l == 0 {
		return nil, nil
	}
	// Round 1 input: one pair per finite matrix entry, keyed by the inner
	// index. A-entries: (k) -> (i, A[i][k]) tagged by sign trick: store
	// matrix id in the key's high bit? Keys must group A row-k with B
	// column-k together, so tag inside the value instead: A entries carry
	// A = i, B entries carry A = i + l (reducer splits by range).
	in := make([]Pair, 0, 2*l*l)
	for i := 0; i < l; i++ {
		for k := 0; k < l; k++ {
			if a[i*l+k] < Inf {
				in = append(in, Pair{Key: uint64(k), A: int64(i), B: a[i*l+k]})
			}
		}
	}
	for k := 0; k < l; k++ {
		for j := 0; j < l; j++ {
			if b[k*l+j] < Inf {
				in = append(in, Pair{Key: uint64(k), A: int64(j) + int64(l), B: b[k*l+j]})
			}
		}
	}
	mid, err := e.Round(in, func(_ uint64, pairs []Pair, emit Emitter) {
		// pairs sorted by A: A-side rows first (A < l), then B-side
		// columns.
		split := 0
		for split < len(pairs) && pairs[split].A < int64(l) {
			split++
		}
		for _, pa := range pairs[:split] {
			i := pa.A
			for _, pb := range pairs[split:] {
				j := pb.A - int64(l)
				emit(Pair{Key: uint64(i)*uint64(l) + uint64(j), A: 0, B: pa.B + pb.B})
			}
		}
	})
	if err != nil {
		return nil, err
	}
	out, err := e.Round(mid, func(key uint64, pairs []Pair, emit Emitter) {
		min := Inf
		for _, p := range pairs {
			if p.B < min {
				min = p.B
			}
		}
		emit(Pair{Key: key, B: min})
	})
	if err != nil {
		return nil, err
	}
	c := make([]int64, l*l)
	for i := range c {
		c[i] = Inf
	}
	for _, p := range out {
		c[p.Key] = p.B
	}
	return c, nil
}

// APSPByRepeatedSquaring computes all-pairs shortest paths of a weighted
// graph by ⌈log₂ ℓ⌉ min-plus squarings of its adjacency matrix, the
// strategy Theorem 4 uses for the quotient graph. Unreachable pairs stay
// at Inf.
func (e *Engine) APSPByRepeatedSquaring(w *graph.Weighted) ([]int64, error) {
	l := w.NumNodes()
	if l == 0 {
		return nil, nil
	}
	mat := make([]int64, l*l)
	for i := range mat {
		mat[i] = Inf
	}
	for u := 0; u < l; u++ {
		mat[u*l+u] = 0
		nbrs, ws := w.Neighbors(graph.NodeID(u))
		for i, v := range nbrs {
			if int64(ws[i]) < mat[u*l+int(v)] {
				mat[u*l+int(v)] = int64(ws[i])
			}
		}
	}
	for span := 1; span < l; span *= 2 {
		var err error
		mat, err = e.MinPlusSquare(mat, l)
		if err != nil {
			return nil, err
		}
	}
	return mat, nil
}

// DiameterByRepeatedSquaring returns the weighted diameter of a connected
// weighted graph via APSPByRepeatedSquaring (the Fact 2 path of Theorem 4).
// Unreachable pairs are ignored; the empty graph has diameter 0.
func (e *Engine) DiameterByRepeatedSquaring(w *graph.Weighted) (int64, error) {
	mat, err := e.APSPByRepeatedSquaring(w)
	if err != nil {
		return 0, err
	}
	var diam int64
	for _, d := range mat {
		if d < Inf && d > diam {
			diam = d
		}
	}
	return diam, nil
}
