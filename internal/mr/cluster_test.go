package mr

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

func TestMRClusterMatchesCoreStructure(t *testing.T) {
	g := graph.Mesh(25, 25)
	seed := uint64(11)
	ref, err := core.Cluster(g, 4, core.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(Config{})
	s, batches, err := e.Cluster(g, 4, seed)
	if err != nil {
		t.Fatal(err)
	}
	if batches != ref.Batches {
		t.Fatalf("MR batches %d vs core %d", batches, ref.Batches)
	}
	// Count clusters.
	max := int64(-1)
	for _, o := range s.Owner {
		if o < 0 {
			t.Fatal("uncovered node after MR CLUSTER")
		}
		if o > max {
			max = o
		}
	}
	if int(max+1) != ref.NumClusters() {
		t.Fatalf("MR clusters %d vs core %d", max+1, ref.NumClusters())
	}
}

func TestMRClusterPartitionConsistent(t *testing.T) {
	g := graph.RoadLike(18, 18, 0.4, 3)
	e := NewEngine(Config{})
	s, _, err := e.Cluster(g, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Every non-center node must have a same-cluster neighbor one step
	// closer (growth-tree consistency).
	for u := 0; u < g.NumNodes(); u++ {
		if s.Dist[u] == 0 {
			continue
		}
		ok := false
		for _, v := range g.Neighbors(graph.NodeID(u)) {
			if s.Owner[v] == s.Owner[u] && s.Dist[v] == s.Dist[u]-1 {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("node %d (cluster %d, dist %d) has no predecessor", u, s.Owner[u], s.Dist[u])
		}
	}
}

func TestMRClusterRoundsLinearInGrowthSteps(t *testing.T) {
	// Section 5 / Lemma 3: with ML = Ω(nᵋ) the whole decomposition takes
	// O(R) rounds. Our simulator charges one round per growth step plus one
	// selection round per batch.
	g := graph.Mesh(20, 20)
	e := NewEngine(Config{})
	_, batches, err := e.Cluster(g, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	rounds := e.Rounds()
	if rounds > 4*batches+200 {
		t.Fatalf("rounds=%d implausibly large for %d batches", rounds, batches)
	}
	if rounds < batches {
		t.Fatalf("rounds=%d below batch count %d", rounds, batches)
	}
}

func TestMRClusterRespectsML(t *testing.T) {
	// A tiny ML must trip on the contended-node groups during growth.
	g := graph.Star(50)
	e := NewEngine(Config{ML: 1})
	// The hub receives many simultaneous proposals in one round; with
	// tau=1 on a 50-node star the algorithm may finish before any group
	// exceeds 1... use a tighter construction: grow from all leaves.
	s := NewGrowState(g.NumNodes(), []graph.NodeID{1, 2, 3})
	if _, err := e.GrowStep(g, s); err == nil {
		t.Fatal("three proposals for the hub must exceed ML=1")
	}
}

func TestMRClusterErrors(t *testing.T) {
	e := NewEngine(Config{})
	if _, _, err := e.Cluster(graph.Path(5), 0, 1); err == nil {
		t.Fatal("tau=0 should fail")
	}
}

func TestMRClusterTinyGraphSingletons(t *testing.T) {
	g := graph.Path(5)
	e := NewEngine(Config{})
	s, _, err := e.Cluster(g, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for _, o := range s.Owner {
		if seen[o] {
			t.Fatal("tiny graph should be all singleton clusters")
		}
		seen[o] = true
	}
}
