package mr

import (
	"errors"
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Cluster runs the complete CLUSTER(τ) algorithm on the MR simulator,
// end-to-end: center selection is an MR round over the uncovered node set
// (each node flips its hash-based coin), and every growing step is a
// GrowStep round over the edge set. Together with Lemma 3 this validates
// the paper's Section 5 claim that the whole decomposition costs O(R)
// rounds when ML = Ω(nᵋ): the engine's round counter reports exactly the
// R growth rounds plus one selection round per batch.
//
// The coin flips match core.Cluster's (same seed derivation), so the batch
// structure is comparable across the shared-memory, distributed-memory and
// MR implementations. The selection reducer is a pure hash-based coin flip
// per node key, so selection rounds parallelize across reducer shards with
// a batch structure independent of the shard count. Cluster returns the
// final state and the number of batches.
func (e *Engine) Cluster(g *graph.Graph, tau int, seed uint64) (*GrowState, int, error) {
	if tau < 1 {
		return nil, 0, errors.New("mr: Cluster requires tau >= 1")
	}
	n := g.NumNodes()
	s := NewGrowState(n, nil)
	logn := 1.0
	if n >= 2 {
		logn = math.Log2(float64(n))
	}
	threshold := 8 * float64(tau) * logn
	coinSeed := rng.Mix64(seed, 0xc105_7e12, uint64(tau))

	covered := 0
	centers := int64(0)
	addCenter := func(u graph.NodeID) {
		s.Owner[u] = centers
		s.Dist[u] = 0
		s.Frontier = append(s.Frontier, u)
		centers++
		covered++
	}

	batches := 0
	for float64(n-covered) >= threshold {
		uncovered := n - covered
		p := 4 * float64(tau) * logn / float64(uncovered)
		// Selection round: each uncovered node is its own key group and
		// emits itself if its coin wins.
		in := make([]Pair, 0, uncovered)
		for u := 0; u < n; u++ {
			if s.Owner[u] == -1 {
				in = append(in, Pair{Key: uint64(u)})
			}
		}
		batch := uint64(batches)
		out, err := e.Round(in, func(key uint64, _ []Pair, emit Emitter) {
			if rng.Coin(p, coinSeed, batch, key) {
				emit(Pair{Key: key})
			}
		})
		if err != nil {
			return nil, 0, err
		}
		selected := len(out)
		for _, pr := range out {
			addCenter(graph.NodeID(pr.Key))
		}
		if selected == 0 && len(s.Frontier) == 0 {
			for u := 0; u < n; u++ {
				if s.Owner[u] == -1 {
					addCenter(graph.NodeID(u))
					selected++
					break
				}
			}
		}
		batches++

		target := (uncovered + 1) / 2
		claimed := selected
		for claimed < target {
			got, err := e.GrowStep(g, s)
			if err != nil {
				return nil, 0, err
			}
			if got == 0 {
				break
			}
			claimed += got
			covered += got
		}
	}
	for u := 0; u < n; u++ {
		if s.Owner[u] == -1 {
			s.Owner[u] = centers
			s.Dist[u] = 0
			centers++
			covered++
		}
	}
	return s, batches, nil
}
