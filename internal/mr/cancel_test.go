package mr

import (
	"context"
	"errors"
	"testing"
)

// A cancelled context fails the round at the barrier with ctx.Err() and —
// like a failed memory probe — leaves every counter and the round log
// untouched, so a cancelled build cannot pollute a resource report.
func TestRoundCancelledContextLeavesAccountingUntouched(t *testing.T) {
	e := NewEngine(Config{})
	defer e.Close()

	in := []Pair{{Key: 1, A: 1}, {Key: 2, A: 2}}
	if _, err := e.Round(in, func(key uint64, pairs []Pair, emit Emitter) {
		emit(pairs[0])
	}); err != nil {
		t.Fatal(err)
	}
	rounds, shuffled := e.Rounds(), e.TotalShuffled()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e.SetContext(ctx)
	out, err := e.Round(in, func(key uint64, pairs []Pair, emit Emitter) {
		t.Error("reducer ran under a cancelled context")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Round err = %v, want context.Canceled", err)
	}
	if out != nil {
		t.Fatalf("cancelled Round returned output %v", out)
	}
	if e.Rounds() != rounds || e.TotalShuffled() != shuffled {
		t.Fatalf("cancelled Round committed accounting: rounds %d->%d shuffled %d->%d",
			rounds, e.Rounds(), shuffled, e.TotalShuffled())
	}
	if got := len(e.RoundStats()); got != rounds {
		t.Fatalf("cancelled Round appended a RoundStat (%d entries for %d rounds)", got, rounds)
	}

	// Re-arming with a live context resumes normal operation.
	e.SetContext(context.Background())
	if _, err := e.Round(in, func(key uint64, pairs []Pair, emit Emitter) {
		emit(pairs[0])
	}); err != nil {
		t.Fatal(err)
	}
	if e.Rounds() != rounds+1 {
		t.Fatalf("rounds = %d after resume, want %d", e.Rounds(), rounds+1)
	}
}
