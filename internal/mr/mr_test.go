package mr

import (
	"errors"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestRoundGroupsByKey(t *testing.T) {
	e := NewEngine(Config{})
	in := []Pair{{Key: 2, A: 1}, {Key: 1, A: 2}, {Key: 2, A: 3}}
	out, err := e.Round(in, func(key uint64, pairs []Pair, emit Emitter) {
		var sum int64
		for _, p := range pairs {
			sum += p.A
		}
		emit(Pair{Key: key, A: sum})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d outputs want 2", len(out))
	}
	got := map[uint64]int64{}
	for _, p := range out {
		got[p.Key] = p.A
	}
	if got[1] != 2 || got[2] != 4 {
		t.Fatalf("group sums wrong: %v", got)
	}
	if e.Rounds() != 1 {
		t.Fatalf("rounds=%d want 1", e.Rounds())
	}
}

func TestRoundEnforcesLocalMemory(t *testing.T) {
	e := NewEngine(Config{ML: 2})
	in := []Pair{{Key: 7}, {Key: 7}, {Key: 7}}
	_, err := e.Round(in, func(_ uint64, _ []Pair, _ Emitter) {})
	if !errors.Is(err, ErrLocalMemory) {
		t.Fatalf("want ErrLocalMemory, got %v", err)
	}
}

func TestRoundEnforcesGlobalMemory(t *testing.T) {
	e := NewEngine(Config{MG: 2})
	in := []Pair{{Key: 1}, {Key: 2}, {Key: 3}}
	_, err := e.Round(in, func(_ uint64, _ []Pair, _ Emitter) {})
	if !errors.Is(err, ErrGlobalMemory) {
		t.Fatalf("want ErrGlobalMemory, got %v", err)
	}
}

func TestRoundGroupsSortedDeterministically(t *testing.T) {
	e := NewEngine(Config{})
	in := []Pair{{Key: 1, A: 3, B: 1}, {Key: 1, A: 1, B: 2}, {Key: 1, A: 3, B: 0}}
	_, err := e.Round(in, func(_ uint64, pairs []Pair, emit Emitter) {
		for i := 1; i < len(pairs); i++ {
			if pairs[i].A < pairs[i-1].A ||
				(pairs[i].A == pairs[i-1].A && pairs[i].B < pairs[i-1].B) {
				t.Fatal("group not sorted by (A, B)")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSortSmallSingleRound(t *testing.T) {
	e := NewEngine(Config{ML: 100})
	vals := []int64{5, 3, 8, 1, 9, 2}
	out, err := e.Sort(vals)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]int64(nil), vals...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("sorted[%d]=%d want %d", i, out[i], want[i])
		}
	}
	if e.Rounds() != 1 {
		t.Fatalf("small sort took %d rounds, want 1", e.Rounds())
	}
}

func TestSortSampleSortPath(t *testing.T) {
	// n = 4000 with ML = 400 forces the multi-round sample sort.
	r := rng.New(1)
	vals := make([]int64, 4000)
	for i := range vals {
		vals[i] = int64(r.Intn(1_000_000))
	}
	e := NewEngine(Config{ML: 400})
	out, err := e.Sort(vals)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(vals) {
		t.Fatalf("lost elements: %d of %d", len(out), len(vals))
	}
	want := append([]int64(nil), vals...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("sorted[%d]=%d want %d", i, out[i], want[i])
		}
	}
	if e.Rounds() != 3 {
		t.Fatalf("sample sort took %d rounds, want 3", e.Rounds())
	}
	if int64(e.MaxReducerInput()) > 400 {
		t.Fatalf("reducer saw %d pairs, ML=400", e.MaxReducerInput())
	}
}

func TestSortTooLargeForOneLevel(t *testing.T) {
	e := NewEngine(Config{ML: 4})
	vals := make([]int64, 1000)
	if _, err := e.Sort(vals); err == nil {
		t.Fatal("expected capacity error for n >> ML^1.5")
	}
}

func TestSortEmpty(t *testing.T) {
	e := NewEngine(Config{ML: 10})
	out, err := e.Sort(nil)
	if err != nil || out != nil {
		t.Fatalf("empty sort: %v %v", out, err)
	}
}

func TestSortProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 50 + r.Intn(2000)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(r.Intn(500)) // duplicates likely
		}
		e := NewEngine(Config{ML: 256})
		out, err := e.Sort(vals)
		if err != nil {
			// Heavy duplicate skew can overflow a bucket; that is a
			// documented limitation, not a correctness bug.
			return errors.Is(err, ErrLocalMemory)
		}
		if len(out) != n {
			return false
		}
		want := append([]int64(nil), vals...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if out[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixSum(t *testing.T) {
	e := NewEngine(Config{ML: 64})
	vals := make([]int64, 500)
	for i := range vals {
		vals[i] = int64(i % 7)
	}
	out, err := e.PrefixSum(vals)
	if err != nil {
		t.Fatal(err)
	}
	var acc int64
	for i, v := range vals {
		acc += v
		if out[i] != acc {
			t.Fatalf("prefix[%d]=%d want %d", i, out[i], acc)
		}
	}
	if e.Rounds() != 2 {
		t.Fatalf("prefix sum took %d rounds, want 2", e.Rounds())
	}
}

func TestScanMax(t *testing.T) {
	e := NewEngine(Config{ML: 32})
	vals := []int64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3, 2, 3, 8, 4,
		6, 2, 6, 4, 3, 3, 8, 3, 2, 7, 9, 5, 0, 2, 8, 8, 4, 1, 9, 7}
	out, err := e.Scan(vals, func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}, -1)
	if err != nil {
		t.Fatal(err)
	}
	best := int64(-1)
	for i, v := range vals {
		if v > best {
			best = v
		}
		if out[i] != best {
			t.Fatalf("scanmax[%d]=%d want %d", i, out[i], best)
		}
	}
}

func TestSegmentedPrefixSum(t *testing.T) {
	e := NewEngine(Config{ML: 16})
	vals := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	segs := []int64{0, 0, 0, 1, 1, 2, 2, 2, 2, 3}
	out, err := e.SegmentedPrefixSum(vals, segs)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 3, 6, 4, 9, 6, 13, 21, 30, 10}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("segprefix[%d]=%d want %d", i, out[i], want[i])
		}
	}
}

func TestSegmentedPrefixSumSingleSegment(t *testing.T) {
	e := NewEngine(Config{ML: 8})
	vals := []int64{2, 2, 2, 2, 2, 2}
	segs := []int64{5, 5, 5, 5, 5, 5}
	out, err := e.SegmentedPrefixSum(vals, segs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if out[i] != int64(2*(i+1)) {
			t.Fatalf("segprefix[%d]=%d", i, out[i])
		}
	}
}

func TestSegmentedPrefixSumMismatch(t *testing.T) {
	e := NewEngine(Config{})
	if _, err := e.SegmentedPrefixSum([]int64{1}, []int64{1, 2}); err == nil {
		t.Fatal("length mismatch should fail")
	}
}

func TestAccountingCounters(t *testing.T) {
	e := NewEngine(Config{ML: 100})
	in := []Pair{{Key: 1}, {Key: 1}, {Key: 2}}
	if _, err := e.Round(in, func(_ uint64, _ []Pair, _ Emitter) {}); err != nil {
		t.Fatal(err)
	}
	if e.MaxReducerInput() != 2 {
		t.Fatalf("max group %d want 2", e.MaxReducerInput())
	}
	if e.TotalShuffled() != 3 {
		t.Fatalf("shuffled %d want 3", e.TotalShuffled())
	}
	if e.MaxGlobalPairs() != 3 {
		t.Fatalf("max global %d want 3", e.MaxGlobalPairs())
	}
}
