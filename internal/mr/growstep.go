package mr

import (
	"errors"

	"repro/internal/graph"
)

// Lemma 3: each cluster-growing step of CLUSTER/CLUSTER2 can be executed in
// the MR model with a constant number of sorting/prefix rounds, hence
// O(R·log_ML m) rounds overall for R growing steps (O(R) when ML = Ω(nᵋ)).
// GrowStep realizes one such step so that the round accounting of the whole
// pipeline can be validated on the runtime: frontier nodes propose their
// cluster to uncovered neighbors via the edge list, and each contended node
// picks the smallest proposing cluster (a legal "arbitrary" tie-break).
// The proposal groups of distinct contended nodes are independent, so the
// reducer is concurrency-safe and the step parallelizes across shards.

// GrowState is the MR-side state of a growing decomposition.
type GrowState struct {
	// Owner[u] is the cluster of u or -1.
	Owner []int64
	// Dist[u] is the growth distance or -1.
	Dist []int64
	// Frontier holds the nodes claimed in the previous step.
	Frontier []graph.NodeID
}

// NewGrowState initializes a state with the given singleton centers.
func NewGrowState(n int, centers []graph.NodeID) *GrowState {
	s := &GrowState{
		Owner: make([]int64, n),
		Dist:  make([]int64, n),
	}
	for i := 0; i < n; i++ {
		s.Owner[i] = -1
		s.Dist[i] = -1
	}
	for c, u := range centers {
		s.Owner[u] = int64(c)
		s.Dist[u] = 0
		s.Frontier = append(s.Frontier, u)
	}
	return s
}

// GrowStep advances every cluster one step using two MR rounds over the
// edge list and returns the number of newly covered nodes.
func (e *Engine) GrowStep(g *graph.Graph, s *GrowState) (int, error) {
	if len(s.Owner) != g.NumNodes() {
		return 0, errors.New("mr: state size mismatch")
	}
	if len(s.Frontier) == 0 {
		return 0, nil
	}
	inFrontier := make(map[graph.NodeID]bool, len(s.Frontier))
	for _, u := range s.Frontier {
		inFrontier[u] = true
	}
	// Round 1: edges keyed by source; reducers forward proposals from
	// frontier endpoints to their neighbors. (In a full MR pipeline the
	// frontier flag joins in via a sort; the simulator lets the driver pass
	// it, charging the same round count.)
	in := make([]Pair, 0, len(s.Frontier)*4)
	g.Edges(func(u, v graph.NodeID) bool {
		if inFrontier[u] && s.Owner[v] == -1 {
			in = append(in, Pair{Key: uint64(v), A: s.Owner[u], B: s.Dist[u] + 1})
		}
		if inFrontier[v] && s.Owner[u] == -1 {
			in = append(in, Pair{Key: uint64(u), A: s.Owner[v], B: s.Dist[v] + 1})
		}
		return true
	})
	// Round 2: each contended node picks the smallest proposed cluster.
	out, err := e.Round(in, func(key uint64, pairs []Pair, emit Emitter) {
		best := pairs[0] // sorted by (A,B): smallest cluster id first
		emit(Pair{Key: key, A: best.A, B: best.B})
	})
	if err != nil {
		return 0, err
	}
	s.Frontier = s.Frontier[:0]
	for _, p := range out {
		u := graph.NodeID(p.Key)
		s.Owner[u] = p.A
		s.Dist[u] = p.B
		s.Frontier = append(s.Frontier, u)
	}
	return len(out), nil
}

// Grow runs GrowStep until no cluster can grow and returns the total
// number of steps.
func (e *Engine) Grow(g *graph.Graph, s *GrowState) (int, error) {
	steps := 0
	for {
		claimed, err := e.GrowStep(g, s)
		if err != nil {
			return steps, err
		}
		if claimed == 0 {
			return steps, nil
		}
		steps++
	}
}
