package mr

import (
	"errors"
	"fmt"
	"os"
	"reflect"
	"strconv"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// TestMain lets CI sweep the package under specific shard counts: MR_SHARDS=n
// overrides the GOMAXPROCS default every Config{Shards: 0} engine resolves
// to, so the whole suite (and -race) runs at that parallelism.
func TestMain(m *testing.M) {
	if v := os.Getenv("MR_SHARDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "bad MR_SHARDS %q (want positive integer)\n", v)
			os.Exit(2)
		}
		defaultShards = n
	}
	os.Exit(m.Run())
}

// sweepShards are the shard counts the determinism tests compare; the
// acceptance criterion is bit-for-bit identical results across all of them.
var sweepShards = []int{1, 4, 8}

// counters snapshots every piece of engine accounting that must be both
// shard-count invariant and untouched by failed rounds.
type counters struct {
	rounds    int
	maxGroup  int
	maxGlobal int64
	shuffled  int64
	stats     int
}

func snap(e *Engine) counters {
	return counters{
		rounds:    e.Rounds(),
		maxGroup:  e.MaxReducerInput(),
		maxGlobal: e.MaxGlobalPairs(),
		shuffled:  e.TotalShuffled(),
		stats:     len(e.RoundStats()),
	}
}

func TestRoundDeterministicAcrossShards(t *testing.T) {
	// 20k pairs over 300 keys: enough for 8 real shards, with fat groups.
	r := rng.New(17)
	in := make([]Pair, 20000)
	for i := range in {
		in[i] = Pair{Key: uint64(r.Intn(300)), A: int64(r.Intn(1000)), B: int64(r.Intn(1000))}
	}
	reduce := func(key uint64, pairs []Pair, emit Emitter) {
		var sum int64
		for _, p := range pairs {
			sum += p.A - p.B
			emit(Pair{Key: key, A: p.A, B: p.B})
		}
		emit(Pair{Key: key, A: sum, B: int64(len(pairs))})
	}
	var want []Pair
	var wantC counters
	for i, shards := range sweepShards {
		e := NewEngine(Config{Shards: shards})
		out, err := e.Round(in, reduce)
		e.Close()
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if i == 0 {
			want, wantC = out, snap(e)
			continue
		}
		if !reflect.DeepEqual(out, want) {
			t.Fatalf("shards=%d: output differs from shards=%d", shards, sweepShards[0])
		}
		if got := snap(e); got != wantC {
			t.Fatalf("shards=%d: counters %+v != %+v", shards, got, wantC)
		}
	}
}

func TestPrimitivesDeterministicAcrossShards(t *testing.T) {
	r := rng.New(3)
	vals := make([]int64, 6000)
	for i := range vals {
		vals[i] = int64(r.Intn(100000))
	}
	type result struct {
		sorted []int64
		prefix []int64
		c      counters
	}
	var want result
	for i, shards := range sweepShards {
		e := NewEngine(Config{ML: 700, Shards: shards})
		sorted, err := e.Sort(vals)
		if err != nil {
			t.Fatalf("shards=%d sort: %v", shards, err)
		}
		prefix, err := e.PrefixSum(vals)
		if err != nil {
			t.Fatalf("shards=%d prefix: %v", shards, err)
		}
		got := result{sorted: sorted, prefix: prefix, c: snap(e)}
		e.Close()
		if i == 0 {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d: Sort/PrefixSum result or accounting differs from shards=%d",
				shards, sweepShards[0])
		}
	}
}

func TestClusterDeterministicAcrossShards(t *testing.T) {
	g := graph.RoadLike(40, 40, 0.4, 9)
	type result struct {
		owner   []int64
		dist    []int64
		batches int
		c       counters
	}
	var want result
	for i, shards := range sweepShards {
		e := NewEngine(Config{Shards: shards})
		s, batches, err := e.Cluster(g, 4, 21)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		got := result{owner: s.Owner, dist: s.Dist, batches: batches, c: snap(e)}
		e.Close()
		if i == 0 {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d: clustering or accounting differs from shards=%d",
				shards, sweepShards[0])
		}
	}
}

func TestSquaringDeterministicAcrossShards(t *testing.T) {
	g := graph.RoadLike(7, 7, 0.5, 4)
	edges := g.EdgeList()
	r := rng.New(8)
	ws := make([]int32, len(edges))
	for i := range ws {
		ws[i] = int32(1 + r.Intn(9))
	}
	w := graph.MustWeighted(g.NumNodes(), edges, ws)
	var wantDiam int64
	var wantC counters
	for i, shards := range sweepShards {
		e := NewEngine(Config{Shards: shards})
		diam, err := e.DiameterByRepeatedSquaring(w)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		c := snap(e)
		e.Close()
		if i == 0 {
			wantDiam, wantC = diam, c
			continue
		}
		if diam != wantDiam || c != wantC {
			t.Fatalf("shards=%d: diameter %d (counters %+v), want %d (%+v)",
				shards, diam, c, wantDiam, wantC)
		}
	}
}

// A round that trips ML must leave every counter and the RoundStats log
// exactly as they were (all-or-nothing accounting), at every shard count.
func TestFailedLocalMemoryRoundLeavesAccountingUnchanged(t *testing.T) {
	for _, shards := range sweepShards {
		e := NewEngine(Config{ML: 3000, Shards: shards})
		ok := make([]Pair, 8000)
		for i := range ok {
			ok[i] = Pair{Key: uint64(i % 16)} // groups of 500 pairs: fine
		}
		if _, err := e.Round(ok, func(_ uint64, _ []Pair, _ Emitter) {}); err != nil {
			t.Fatalf("shards=%d: setup round failed: %v", shards, err)
		}
		before := snap(e)

		bad := make([]Pair, 8000)
		for i := range bad {
			bad[i] = Pair{Key: uint64(i % 2)} // groups of 4000 pairs > ML
		}
		_, err := e.Round(bad, func(_ uint64, _ []Pair, _ Emitter) {})
		if !errors.Is(err, ErrLocalMemory) {
			t.Fatalf("shards=%d: want ErrLocalMemory, got %v", shards, err)
		}
		if after := snap(e); after != before {
			t.Fatalf("shards=%d: failed round polluted accounting: %+v -> %+v",
				shards, before, after)
		}
		e.Close()
	}
}

// Same for the output-side MG check, the one the pre-refactor engine
// committed counters before.
func TestFailedGlobalOutputRoundLeavesAccountingUnchanged(t *testing.T) {
	for _, shards := range sweepShards {
		e := NewEngine(Config{MG: 10000, Shards: shards})
		ok := make([]Pair, 2000)
		for i := range ok {
			ok[i] = Pair{Key: uint64(i)}
		}
		echo := func(key uint64, pairs []Pair, emit Emitter) {
			for _, p := range pairs {
				emit(p)
			}
		}
		if _, err := e.Round(ok, echo); err != nil {
			t.Fatalf("shards=%d: setup round failed: %v", shards, err)
		}
		before := snap(e)

		// 6000 inputs pass the input check (< MG) but the amplifying
		// reducer emits 12000 > MG.
		amp := make([]Pair, 6000)
		for i := range amp {
			amp[i] = Pair{Key: uint64(i)}
		}
		_, err := e.Round(amp, func(key uint64, pairs []Pair, emit Emitter) {
			for _, p := range pairs {
				emit(p)
				emit(p)
			}
		})
		if !errors.Is(err, ErrGlobalMemory) {
			t.Fatalf("shards=%d: want ErrGlobalMemory, got %v", shards, err)
		}
		if after := snap(e); after != before {
			t.Fatalf("shards=%d: failed round polluted accounting: %+v -> %+v",
				shards, before, after)
		}
		e.Close()
	}
}

// An input that fails the MG gate outright must also leave no trace.
func TestFailedGlobalInputRoundLeavesAccountingUnchanged(t *testing.T) {
	e := NewEngine(Config{MG: 10})
	defer e.Close()
	before := snap(e)
	_, err := e.Round(make([]Pair, 11), func(_ uint64, _ []Pair, _ Emitter) {})
	if !errors.Is(err, ErrGlobalMemory) {
		t.Fatalf("want ErrGlobalMemory, got %v", err)
	}
	if after := snap(e); after != before {
		t.Fatalf("failed round polluted accounting: %+v -> %+v", before, after)
	}
}

// MaxGlobalPairs must track the output side too: an amplifying round's
// output is the round's global-memory high-water mark.
func TestMaxGlobalPairsTracksOutput(t *testing.T) {
	e := NewEngine(Config{})
	defer e.Close()
	in := make([]Pair, 100)
	for i := range in {
		in[i] = Pair{Key: uint64(i)}
	}
	_, err := e.Round(in, func(key uint64, pairs []Pair, emit Emitter) {
		for _, p := range pairs {
			for j := 0; j < 3; j++ {
				emit(p)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.MaxGlobalPairs() != 300 {
		t.Fatalf("MaxGlobalPairs=%d, want 300 (the output side)", e.MaxGlobalPairs())
	}
}

func TestRoundStatsRecorded(t *testing.T) {
	e := NewEngine(Config{})
	defer e.Close()
	in := make([]Pair, 5000)
	for i := range in {
		in[i] = Pair{Key: uint64(i % 100)}
	}
	out, err := e.Round(in, func(key uint64, pairs []Pair, emit Emitter) {
		emit(Pair{Key: key, A: int64(len(pairs))})
	})
	if err != nil {
		t.Fatal(err)
	}
	stats := e.RoundStats()
	if len(stats) != e.Rounds() {
		t.Fatalf("%d RoundStat entries for %d rounds", len(stats), e.Rounds())
	}
	st := stats[0]
	if st.PairsIn != int64(len(in)) || st.PairsOut != int64(len(out)) {
		t.Fatalf("RoundStat pairs %d/%d, want %d/%d", st.PairsIn, st.PairsOut, len(in), len(out))
	}
	if st.Shards < 1 || st.Shards > e.Shards() {
		t.Fatalf("RoundStat shards %d outside [1, %d]", st.Shards, e.Shards())
	}
	if st.Millis < 0 {
		t.Fatalf("negative wall-clock %v", st.Millis)
	}
}
