// Package bsp provides the bulk-synchronous-parallel substrate on which the
// repository's distributed algorithms run.
//
// The paper's algorithms (CLUSTER, CLUSTER2, MPX, parallel BFS, HADI) are
// all sequences of synchronous rounds: in each round every frontier node
// sends a message over each incident edge, messages are resolved at the
// receivers, and a new frontier forms. On the authors' Spark cluster one
// round is one communication round; here one round is one parallel superstep
// over a goroutine worker pool, and the engine counts rounds and message
// volume (arcs scanned), the two quantities the paper's cost analysis and
// Section 6 experiments are phrased in.
//
// Concurrent claims of the same node are resolved by atomic compare-and-swap
// in the claim callbacks supplied by the algorithms; the paper explicitly
// allows an arbitrary winner ("only one of them, arbitrarily chosen,
// succeeds"). The set of nodes claimed in a round is schedule-independent.
package bsp

import (
	"runtime"
	"sync"

	"repro/internal/graph"
)

// Stats accumulates the cost of a BSP computation.
type Stats struct {
	// Rounds is the number of supersteps (communication rounds) executed.
	Rounds int
	// Messages is the number of arcs scanned from frontier nodes — the
	// aggregate communication volume in edge-message units.
	Messages int64
	// MaxFrontier is the largest frontier observed in any round.
	MaxFrontier int
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Rounds += other.Rounds
	s.Messages += other.Messages
	if other.MaxFrontier > s.MaxFrontier {
		s.MaxFrontier = other.MaxFrontier
	}
}

// RoundStat records one superstep for detailed traces.
type RoundStat struct {
	Frontier int   // frontier size entering the round
	Claimed  int   // nodes claimed during the round
	Arcs     int64 // arcs scanned during the round
}

// Workers resolves a worker-count request: non-positive means
// runtime.GOMAXPROCS(0).
func Workers(requested int) int {
	if requested > 0 {
		return requested
	}
	return runtime.GOMAXPROCS(0)
}

// seqThreshold is the frontier size below which a step runs on the calling
// goroutine; spawning workers for tiny frontiers costs more than it saves.
const seqThreshold = 2048

// Expander runs frontier-expansion supersteps over a fixed graph with
// reusable per-worker buffers. It is the shared engine under CLUSTER,
// CLUSTER2, MPX and parallel BFS.
//
// An Expander may be reused across algorithm runs but is not safe for
// concurrent use by multiple goroutines.
type Expander struct {
	g       *graph.Graph
	workers int
	bufs    [][]graph.NodeID
	arcs    []int64
}

// NewExpander returns an expander over g using the given number of workers
// (non-positive selects GOMAXPROCS).
func NewExpander(g *graph.Graph, workers int) *Expander {
	w := Workers(workers)
	e := &Expander{
		g:       g,
		workers: w,
		bufs:    make([][]graph.NodeID, w),
		arcs:    make([]int64, w),
	}
	return e
}

// NumWorkers returns the worker count.
func (e *Expander) NumWorkers() int { return e.workers }

// Graph returns the underlying graph.
func (e *Expander) Graph() *graph.Graph { return e.g }

// Step performs one superstep: for every node u in frontier and every arc
// (u, v), claim(worker, u, v) is invoked; if it returns true, v joins the
// next frontier. claim is called concurrently from multiple workers and
// must resolve write conflicts itself (typically with atomic CAS on an
// ownership array; returning true for a given v from at most one call).
//
// Step returns the next frontier (freshly allocated; per-worker scratch is
// reused internally) and the number of arcs scanned.
func (e *Expander) Step(frontier []graph.NodeID, claim func(worker int, u, v graph.NodeID) bool) (next []graph.NodeID, arcs int64) {
	if len(frontier) == 0 {
		return nil, 0
	}
	if len(frontier) < seqThreshold || e.workers == 1 {
		buf := e.bufs[0][:0]
		var scanned int64
		for _, u := range frontier {
			nbrs := e.g.Neighbors(u)
			scanned += int64(len(nbrs))
			for _, v := range nbrs {
				if claim(0, u, v) {
					buf = append(buf, v)
				}
			}
		}
		e.bufs[0] = buf
		out := make([]graph.NodeID, len(buf))
		copy(out, buf)
		return out, scanned
	}

	var wg sync.WaitGroup
	chunk := (len(frontier) + e.workers - 1) / e.workers
	for w := 0; w < e.workers; w++ {
		lo := w * chunk
		if lo >= len(frontier) {
			e.bufs[w] = e.bufs[w][:0]
			e.arcs[w] = 0
			continue
		}
		hi := lo + chunk
		if hi > len(frontier) {
			hi = len(frontier)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			buf := e.bufs[w][:0]
			var scanned int64
			for _, u := range frontier[lo:hi] {
				nbrs := e.g.Neighbors(u)
				scanned += int64(len(nbrs))
				for _, v := range nbrs {
					if claim(w, u, v) {
						buf = append(buf, v)
					}
				}
			}
			e.bufs[w] = buf
			e.arcs[w] = scanned
		}(w, lo, hi)
	}
	wg.Wait()

	total := 0
	for w := 0; w < e.workers; w++ {
		total += len(e.bufs[w])
		arcs += e.arcs[w]
	}
	next = make([]graph.NodeID, 0, total)
	for w := 0; w < e.workers; w++ {
		next = append(next, e.bufs[w]...)
	}
	return next, arcs
}

// ParallelFor splits [0, n) into contiguous chunks and runs fn(worker, lo,
// hi) on each from a pool of `workers` goroutines (non-positive selects
// GOMAXPROCS). It blocks until all chunks complete. For small n it runs
// inline on the calling goroutine.
func ParallelFor(workers, n int, fn func(worker, lo, hi int)) {
	w := Workers(workers)
	if n <= 0 {
		return
	}
	if n < seqThreshold || w == 1 {
		fn(0, 0, n)
		return
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		lo := i * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			fn(i, lo, hi)
		}(i, lo, hi)
	}
	wg.Wait()
}

// ParallelSum evaluates fn over chunks of [0, n) and sums the results.
func ParallelSum(workers, n int, fn func(worker, lo, hi int) int64) int64 {
	w := Workers(workers)
	partial := make([]int64, w)
	ParallelFor(w, n, func(worker, lo, hi int) {
		partial[worker] += fn(worker, lo, hi)
	})
	var total int64
	for _, p := range partial {
		total += p
	}
	return total
}
