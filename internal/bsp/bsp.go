// Package bsp provides the bulk-synchronous-parallel substrate on which the
// repository's distributed algorithms run.
//
// The paper's algorithms (CLUSTER, CLUSTER2, MPX, parallel BFS, HADI) are
// all sequences of synchronous rounds: in each round every frontier node
// sends a message over each incident edge, messages are resolved at the
// receivers, and a new frontier forms. On the authors' Spark cluster one
// round is one communication round; here one round is one superstep of the
// direction-optimizing Engine — a persistent worker pool that keeps the
// frontier in both sparse and dense (bitmap) form and switches per round
// between top-down push (frontier nodes offer their arcs) and bottom-up
// pull (unvisited nodes scan for a frontier neighbor to adopt), the
// Beamer-style hybrid that cuts aggregate arc scans by an order of
// magnitude on low-diameter graphs. The engine counts rounds and message
// volume (arcs scanned, in whichever direction the round ran) — the two
// quantities the paper's cost analysis and Section 6 experiments are
// phrased in.
//
// Concurrent push claims of the same node are resolved by atomic
// compare-and-swap in the callbacks supplied by the algorithms; the paper
// explicitly allows an arbitrary winner ("only one of them, arbitrarily
// chosen, succeeds"). Pull adoptions are deterministic first-match in
// adjacency order. Either way the set of nodes claimed in a round is
// schedule-independent.
//
// The weighted algorithms (WeightedCluster growth, weighted iFUB, the
// oracle's quotient APSP) run on a second engine in this package,
// WeightedEngine: a delta-stepping bucket schedule whose supersteps are
// relaxation phases and whose claims are atomic min-reductions — see
// weighted.go. Stats.Relaxations and Stats.Buckets are its counters, the
// weighted counterpart of Messages and Rounds.
package bsp

import (
	"runtime"
	"sync"
)

// NodeID identifies a node; it aliases int32 exactly as graph.NodeID does,
// so the two are interchangeable without this package importing graph.
type NodeID = int32

// Stats accumulates the cost of a BSP computation.
type Stats struct {
	// Rounds is the number of supersteps (communication rounds) executed.
	Rounds int
	// Messages is the number of arcs scanned — the aggregate communication
	// volume in edge-message units, counting both push-direction scans from
	// frontier nodes and pull-direction probes from unvisited nodes.
	Messages int64
	// MaxFrontier is the largest frontier observed in any round.
	MaxFrontier int
	// PullRounds is how many of the supersteps ran bottom-up.
	PullRounds int
	// Relaxations is the number of weighted edge relaxations offered by the
	// delta-stepping engine — the weighted counterpart of Messages, counting
	// every (tentative distance + weight) offer whether or not it won its
	// min-reduction. Zero for unweighted runs.
	Relaxations int64
	// Buckets is the number of delta-stepping buckets settled. Zero for
	// unweighted runs.
	Buckets int
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Rounds += other.Rounds
	s.Messages += other.Messages
	s.PullRounds += other.PullRounds
	s.Relaxations += other.Relaxations
	s.Buckets += other.Buckets
	if other.MaxFrontier > s.MaxFrontier {
		s.MaxFrontier = other.MaxFrontier
	}
}

// RoundStat records one superstep for detailed traces.
type RoundStat struct {
	Frontier int       // frontier size entering the round
	Claimed  int       // nodes claimed during the round
	Arcs     int64     // arcs scanned during the round
	Dir      Direction // direction the superstep ran in
}

// Observer receives live progress from a running engine, as Stats deltas
// emitted at superstep barriers (Engine) and bucket barriers
// (WeightedEngine) — the window a serving layer needs to report what a
// multi-second build is doing between enqueue and completion, instead of
// only its post-hoc totals. Semantics follow Stats.Add: the counter
// fields are increments since the previous emission, MaxFrontier is a
// high-water candidate to be max-merged.
//
// An Observer must be safe for concurrent use when one function is
// installed on several engines running in parallel (the oracle's APSP
// fan-out does exactly that), and must be cheap: it runs on the engine's
// driving goroutine, between barriers. A nil observer (the default) costs
// one predictable branch per round — nothing on the arc-scanning hot
// path, which BenchmarkEngineObserver pins down.
type Observer func(delta Stats)

// Workers resolves a worker-count request: non-positive means
// runtime.GOMAXPROCS(0).
func Workers(requested int) int {
	if requested > 0 {
		return requested
	}
	return runtime.GOMAXPROCS(0)
}

// ParallelFor splits [0, n) into contiguous chunks and runs fn(worker, lo,
// hi) on each from a throwaway set of goroutines (non-positive workers
// selects GOMAXPROCS). It blocks until all chunks complete; for small n it
// runs inline on the calling goroutine. Loops that run inside a traversal
// should prefer Engine.For, which reuses the engine's persistent pool.
func ParallelFor(workers, n int, fn func(worker, lo, hi int)) {
	w := Workers(workers)
	if n <= 0 {
		return
	}
	if n < seqThreshold || w == 1 {
		fn(0, 0, n)
		return
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		lo := i * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			fn(i, lo, hi)
		}(i, lo, hi)
	}
	wg.Wait()
}

// ParallelSum evaluates fn over chunks of [0, n) and sums the results.
func ParallelSum(workers, n int, fn func(worker, lo, hi int) int64) int64 {
	w := Workers(workers)
	partial := make([]int64, w)
	ParallelFor(w, n, func(worker, lo, hi int) {
		partial[worker] += fn(worker, lo, hi)
	})
	var total int64
	for _, p := range partial {
		total += p
	}
	return total
}
