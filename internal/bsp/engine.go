package bsp

import (
	"context"
	"math/bits"
)

// Topology is the adjacency access the engine needs. *graph.Graph satisfies
// it; the interface (rather than a concrete graph type) keeps this package
// dependency-free so that internal/graph itself can run its exact-diameter
// searches on the engine.
type Topology interface {
	NumNodes() int
	NumArcs() int
	Degree(u NodeID) int
	Neighbors(u NodeID) []NodeID
}

// Direction selects how a superstep traverses the frontier boundary.
type Direction uint8

const (
	// DirAuto switches per round between push and pull on the standard
	// frontier-size heuristics (Beamer et al.'s direction-optimizing BFS).
	DirAuto Direction = iota
	// DirPush forces top-down: every frontier node scans its neighbors.
	DirPush
	// DirPull forces bottom-up: every unvisited node scans for a frontier
	// neighbor to adopt.
	DirPull
)

func (d Direction) String() string {
	switch d {
	case DirPush:
		return "push"
	case DirPull:
		return "pull"
	default:
		return "auto"
	}
}

// Direction switching follows a per-round cost comparison in the style of
// Beamer et al.'s direction-optimizing BFS, with the two sides estimated
// from schedule-independent quantities only (frontier size nf, frontier
// arcs mf, unvisited nodes nu, unvisited arcs mu):
//
//	push cost ≈ mf                     (every frontier arc is offered)
//	pull cost ≈ min(mu, nu·n/nf)       (each unvisited node probes its
//	                                    adjacency until it hits a frontier
//	                                    member — geometric with p = nf/n —
//	                                    but never past its full degree)
//
// The round runs bottom-up iff the pull estimate is cheaper. Because every
// input is independent of the goroutine schedule, the direction sequence —
// and therefore RoundLog — is identical across worker counts.

// seqThreshold is the work size below which a step runs inline on the
// calling goroutine; dispatching to the pool for tiny rounds costs more
// than it saves.
const seqThreshold = 2048

// StepSpec is the two-sided superstep contract of a claim-style traversal.
//
// Push is the top-down form: for frontier node u and arc (u, v), return
// true iff this call claims v (the caller resolves write conflicts, e.g.
// with an atomic CAS on an ownership array; at most one call may return
// true for a given v over the whole traversal).
//
// Pull is the bottom-up form: unvisited node v found frontier neighbor u
// and asks to adopt it; return true iff v is now claimed. Each candidate v
// is owned by exactly one worker, and its frontier neighbors are offered in
// adjacency order, so Pull may use plain (non-atomic) writes to v's state
// and its outcome is deterministic — first-match adoption strengthens the
// schedule-independence of the push path rather than weakening it. A nil
// Pull pins the traversal to push.
//
// ExhaustivePull makes the engine offer every frontier neighbor of v
// instead of stopping at the first accepted adoption — for algorithms whose
// claim is a min-reduction over all in-round offers (MPX), where stopping
// early would break their determinism guarantee.
type StepSpec struct {
	Push           func(worker int, u, v NodeID) bool
	Pull           func(worker int, v, u NodeID) bool
	ExhaustivePull bool
}

// Engine is the direction-optimizing traversal engine under every frontier
// algorithm in the repository (CLUSTER/CLUSTER2 growth, MPX, parallel BFS,
// the ANF/HyperANF neighborhood rounds, and the iFUB exact-diameter loop).
//
// It keeps the frontier in both sparse (node list) and dense (bitmap) form,
// runs supersteps over a persistent worker pool (goroutines are spawned
// once per engine, not per superstep), and chooses per round between
// top-down push and bottom-up pull. Stats count arcs scanned in either
// direction, keeping Messages honest as the aggregate communication volume
// of the paper's Section 6 cost analysis.
//
// An Engine may be reused across traversals (Reset) but is not safe for
// concurrent use by multiple goroutines. Close releases the worker pool.
type Engine struct {
	t       Topology
	n       int
	arcsTot int64
	workers int
	mode    Direction

	visited      *Bitmap
	frontier     []NodeID
	frontierBits *Bitmap
	bitsFor      []NodeID // sparse list frontierBits currently encodes
	frontierArcs int64    // mf: sum of degrees over the current frontier
	unvisArcs    int64    // mu: sum of degrees over unvisited nodes
	unvisNodes   int64    // nu: number of unvisited nodes

	stats Stats
	log   []RoundStat

	// obs, when non-nil, receives a Stats delta after every executed
	// superstep (SetObserver); nil costs one branch per round.
	obs Observer

	// ctx arms cooperative cancellation (SetContext); nil never cancels.
	ctx context.Context

	// Per-worker scratch, reused across rounds.
	bufs     [][]NodeID
	arcs     []int64
	degs     []int64
	marks    []int64    // gatherPush per-worker marking-arc counters
	cand     []NodeID   // gatherPush concatenated candidate list
	candBits *Bitmap    // gatherPush scratch, allocated on first use
	candBufs [][]NodeID // gatherPush per-worker candidate lists

	// Persistent pool: workers-1 goroutines fed per-round closures.
	pool *Pool
}

// NewEngine returns an engine over t using the given number of workers
// (non-positive selects GOMAXPROCS). The pool goroutines are started
// lazily, on the first superstep large enough to parallelize.
func NewEngine(t Topology, workers int) *Engine {
	w := Workers(workers)
	n := t.NumNodes()
	e := &Engine{
		t:            t,
		n:            n,
		arcsTot:      int64(t.NumArcs()),
		workers:      w,
		pool:         NewPool(w),
		visited:      NewBitmap(n),
		frontierBits: NewBitmap(n),
		unvisArcs:    int64(t.NumArcs()),
		unvisNodes:   int64(n),
		bufs:         make([][]NodeID, w),
		arcs:         make([]int64, w),
		degs:         make([]int64, w),
	}
	return e
}

// NumWorkers returns the worker count.
func (e *Engine) NumWorkers() int { return e.workers }

// Topology returns the traversed topology.
func (e *Engine) Topology() Topology { return e.t }

// SetDirection pins the traversal direction (DirAuto restores the hybrid
// heuristic). Benchmarks use DirPush to measure the pure top-down baseline.
func (e *Engine) SetDirection(d Direction) { e.mode = d }

// SetContext arms cooperative cancellation: Step and GatherStep check ctx
// at the superstep barrier — never inside one — so a cancelled traversal
// stops within one round while an uncancelled run executes exactly the
// same deterministic round schedule as before. Once ctx is cancelled the
// engine drops its frontier, making every driver loop terminate, and Err
// reports the cause. A nil ctx (the default) never cancels. The context
// survives Reset, covering multi-traversal computations like iFUB.
func (e *Engine) SetContext(ctx context.Context) { e.ctx = ctx }

// SetObserver installs fn to receive a Stats delta at every superstep
// barrier (after the round's counters are committed), so a long traversal
// reports live progress instead of only post-hoc totals. The observer is
// invoked outside any engine lock, on the goroutine driving the
// traversal; it survives Reset, covering multi-traversal computations. A
// nil fn (the default) disables observation at the cost of one branch per
// round — the arc-scanning inner loops are untouched.
func (e *Engine) SetObserver(fn Observer) { e.obs = fn }

// observe emits one round's delta to the observer, if any.
func (e *Engine) observe(rs RoundStat, dir Direction) {
	if e.obs == nil {
		return
	}
	d := Stats{Rounds: 1, Messages: rs.Arcs, MaxFrontier: rs.Frontier}
	if dir == DirPull {
		d.PullRounds = 1
	}
	e.obs(d)
}

// Err returns the context error if SetContext armed cancellation and the
// context has been cancelled, else nil. Drivers check it after their
// superstep loops to distinguish a finished traversal from an abandoned
// one.
func (e *Engine) Err() error {
	if e.ctx == nil {
		return nil
	}
	return e.ctx.Err()
}

// Stats returns the accumulated cost counters. Reset does not clear them,
// so a multi-traversal computation (e.g. iFUB's many BFS runs) reads its
// aggregate cost here.
func (e *Engine) Stats() Stats { return e.stats }

// RoundLog returns one RoundStat per executed superstep, recording which
// direction each ran.
func (e *Engine) RoundLog() []RoundStat { return e.log }

// FrontierLen returns the size of the current frontier.
func (e *Engine) FrontierLen() int { return len(e.frontier) }

// Frontier returns the current sparse frontier. The slice is owned by the
// engine and valid until the next Step/GatherStep/Reset.
func (e *Engine) Frontier() []NodeID { return e.frontier }

// VisitedCount returns the number of nodes visited since the last Reset.
func (e *Engine) VisitedCount() int { return e.visited.Count() }

// Reset clears the visited set, frontier, and round log for a fresh
// traversal over the same topology, keeping the pool and the accumulated
// Stats. (The log must not outlive the traversal: multi-search users like
// iFUB run up to Θ(n) BFS on one engine, and an ever-growing trace would
// retain O(total rounds) memory nothing reads.)
func (e *Engine) Reset() {
	e.log = e.log[:0]
	e.visited.ClearAll()
	e.frontierBits.ClearAll()
	e.bitsFor = nil
	e.frontier = e.frontier[:0]
	e.frontierArcs = 0
	e.unvisArcs = e.arcsTot
	e.unvisNodes = int64(e.n)
}

// Seed marks u visited and adds it to the current frontier; it reports
// whether u was added (false if already visited). Claim-style traversals
// use it for roots and for centers activated between rounds.
func (e *Engine) Seed(u NodeID) bool {
	if e.visited.Get(u) {
		return false
	}
	e.visited.Set(u)
	e.frontier = append(e.frontier, u)
	d := int64(e.t.Degree(u))
	e.frontierArcs += d
	e.unvisArcs -= d
	e.unvisNodes--
	return true
}

// SetFrontier replaces the frontier with the given nodes without touching
// the visited set — the entry point for gather-style traversals (sketch
// rounds), where nodes re-enter the frontier every time their state
// changes.
func (e *Engine) SetFrontier(us []NodeID) {
	e.frontier = append(e.frontier[:0], us...)
	e.frontierArcs = 0
	for _, u := range us {
		e.frontierArcs += int64(e.t.Degree(u))
	}
}

// Close stops the pool goroutines. The engine must not be used afterwards.
func (e *Engine) Close() { e.pool.Close() }

// chunk64 returns the 64-aligned chunk size splitting n across the pool.
func (e *Engine) chunk64(n int) int {
	c := (n + e.workers - 1) / e.workers
	return (c + 63) &^ 63
}

// For splits [0, n) into contiguous chunks (64-aligned, so chunk-confined
// bitmap writes need no atomics) and runs fn(worker, lo, hi) on each from
// the persistent pool. Small n runs inline.
func (e *Engine) For(n int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if n < seqThreshold || e.workers == 1 {
		fn(0, 0, n)
		return
	}
	chunk := e.chunk64(n)
	e.pool.Run(func(w int) {
		lo := w * chunk
		if lo >= n {
			return
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		fn(w, lo, hi)
	})
}

// chooseDirection applies the hybrid cost comparison (or the pinned mode).
// probers is the number of nodes that would scan for a frontier neighbor in
// a bottom-up round (nu for claim steps, n for gather steps) and arcCap the
// total arcs such a round could possibly touch (mu, respectively 2m).
func (e *Engine) chooseDirection(havePull bool, probers, arcCap int64) Direction {
	if !havePull {
		return DirPush
	}
	if e.mode != DirAuto {
		return e.mode
	}
	nf := int64(len(e.frontier))
	if nf == 0 || probers == 0 {
		return DirPush
	}
	pullCost := probers * int64(e.n) / nf // < 2^62 for n < 2^31
	if pullCost > arcCap {
		pullCost = arcCap
	}
	if pullCost < e.frontierArcs {
		return DirPull
	}
	return DirPush
}

// Step performs one claim-style superstep in the chosen direction, replaces
// the frontier with the newly claimed nodes, and returns the round record.
// An empty frontier — or a cancelled context (see SetContext) — is a no-op
// returning a zero RoundStat.
func (e *Engine) Step(spec StepSpec) RoundStat {
	if e.Err() != nil {
		e.frontier = e.frontier[:0]
		return RoundStat{}
	}
	nf := len(e.frontier)
	if nf == 0 {
		return RoundStat{}
	}
	if nf > e.stats.MaxFrontier {
		e.stats.MaxFrontier = nf
	}
	dir := e.chooseDirection(spec.Pull != nil, e.unvisNodes, e.unvisArcs)
	var arcs, claimedDeg int64
	if dir == DirPush {
		arcs, claimedDeg = e.stepPush(spec.Push)
	} else {
		arcs, claimedDeg = e.stepPull(spec)
	}
	next := e.gatherBufs()
	e.frontier = next
	e.frontierArcs = claimedDeg
	e.unvisArcs -= claimedDeg
	e.unvisNodes -= int64(len(next))
	e.stats.Rounds++
	e.stats.Messages += arcs
	if dir == DirPull {
		e.stats.PullRounds++
	}
	rs := RoundStat{Frontier: nf, Claimed: len(next), Arcs: arcs, Dir: dir}
	e.log = append(e.log, rs)
	e.observe(rs, dir)
	return rs
}

// gatherBufs concatenates the per-worker claim buffers, in worker order,
// into the engine's frontier slice (reusing its capacity).
func (e *Engine) gatherBufs() []NodeID {
	total := 0
	for w := 0; w < e.workers; w++ {
		total += len(e.bufs[w])
	}
	next := e.frontier[:0]
	if cap(next) < total {
		next = make([]NodeID, 0, total)
	}
	for w := 0; w < e.workers; w++ {
		next = append(next, e.bufs[w]...)
	}
	return next
}

// stepPush expands the frontier top-down: every frontier node offers its
// arcs to Push. Claims mark the visited bitmap atomically (arbitrary nodes
// may collide on a word).
func (e *Engine) stepPush(push func(worker int, u, v NodeID) bool) (arcs, claimedDeg int64) {
	frontier := e.frontier
	t := e.t
	body := func(w, lo, hi int) {
		buf := e.bufs[w][:0]
		var scanned, deg int64
		for _, u := range frontier[lo:hi] {
			nbrs := t.Neighbors(u)
			scanned += int64(len(nbrs))
			for _, v := range nbrs {
				if push(w, u, v) {
					e.visited.SetAtomic(v)
					buf = append(buf, v)
					deg += int64(t.Degree(v))
				}
			}
		}
		e.bufs[w] = buf
		e.arcs[w] = scanned
		e.degs[w] = deg
	}
	e.forChunks(len(frontier), false, body)
	return e.sumScratch()
}

// stepPull expands the frontier bottom-up: every unvisited node scans its
// adjacency for frontier members and adopts per spec.Pull. Worker chunks
// are 64-aligned so visited-bitmap writes stay word-confined and the next
// frontier comes out in ascending node order — fully deterministic.
//
//lint:allow plainatomic 64-aligned chunks: each worker owns its visited words exclusively
func (e *Engine) stepPull(spec StepSpec) (arcs, claimedDeg int64) {
	e.syncFrontierBits()
	t := e.t
	inFrontier := e.frontierBits
	visited := e.visited
	body := func(w, lo, hi int) {
		buf := e.bufs[w][:0]
		var scanned, deg int64
		for wi := lo >> 6; wi<<6 < hi; wi++ {
			unvis := ^visited.words[wi]
			base := NodeID(wi << 6)
			for m := unvis; m != 0; m &= m - 1 {
				v := base + NodeID(bits.TrailingZeros64(m))
				if int(v) >= hi { // hi is clamped to n, so this also skips pad bits
					break
				}
				nbrs := t.Neighbors(v)
				adopted := false
				for _, u := range nbrs {
					scanned++
					if !inFrontier.Get(u) {
						continue
					}
					if spec.Pull(w, v, u) {
						adopted = true
						if !spec.ExhaustivePull {
							break
						}
					}
				}
				if adopted {
					visited.Set(v) // word-confined: chunks are 64-aligned
					buf = append(buf, v)
					deg += int64(len(nbrs))
				}
			}
		}
		e.bufs[w] = buf
		e.arcs[w] = scanned
		e.degs[w] = deg
	}
	e.forChunks(e.n, true, body)
	return e.sumScratch()
}

// forChunks runs body over chunks of [0, n) — 64-aligned when aligned is
// set — clearing the scratch of idle workers. Small n runs inline.
func (e *Engine) forChunks(n int, aligned bool, body func(w, lo, hi int)) {
	if n < seqThreshold || e.workers == 1 {
		body(0, 0, n)
		for w := 1; w < e.workers; w++ {
			e.bufs[w] = e.bufs[w][:0]
			e.arcs[w], e.degs[w] = 0, 0
		}
		return
	}
	chunk := (n + e.workers - 1) / e.workers
	if aligned {
		chunk = (chunk + 63) &^ 63
	}
	e.pool.Run(func(w int) {
		lo := w * chunk
		if lo >= n {
			e.bufs[w] = e.bufs[w][:0]
			e.arcs[w], e.degs[w] = 0, 0
			return
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		body(w, lo, hi)
	})
}

func (e *Engine) sumScratch() (arcs, deg int64) {
	for w := 0; w < e.workers; w++ {
		arcs += e.arcs[w]
		deg += e.degs[w]
	}
	return arcs, deg
}

// syncFrontierBits brings the dense frontier in line with the sparse one.
func (e *Engine) syncFrontierBits() {
	e.frontierBits.FromSparse(e.frontier, e.bitsFor)
	e.bitsFor = append(e.bitsFor[:0], e.frontier...)
}

// GatherStep performs one gather-style superstep: the candidate set is
// every node with at least one neighbor in the current frontier, gather is
// invoked exactly once per candidate (from the worker that owns it), and
// candidates for which it returns true form the next frontier. The visited
// set is not consulted — nodes re-enter the frontier whenever they change —
// which is the superstep shape of the ANF/HADI and HyperANF sketch rounds
// (frontier = "nodes whose sketch changed last round").
//
// Direction: with a large frontier the candidates are found bottom-up (scan
// every node, stop at its first frontier neighbor); with a small one they
// are found top-down (mark neighbors of the frontier in a bitmap). Arcs
// counts the membership probes plus the full degree of every gathered
// candidate (the gather callback's own adjacency scan).
func (e *Engine) GatherStep(gather func(worker int, v NodeID) bool) RoundStat {
	if e.Err() != nil {
		e.frontier = e.frontier[:0]
		return RoundStat{}
	}
	nf := len(e.frontier)
	if nf == 0 {
		return RoundStat{}
	}
	if nf > e.stats.MaxFrontier {
		e.stats.MaxFrontier = nf
	}
	dir := e.chooseDirection(true, int64(e.n), e.arcsTot)
	var arcs, nextDeg int64
	if dir == DirPull {
		arcs, nextDeg = e.gatherPull(gather)
	} else {
		arcs, nextDeg = e.gatherPush(gather)
	}
	next := e.gatherBufs()
	e.frontier = next
	e.frontierArcs = nextDeg
	e.stats.Rounds++
	e.stats.Messages += arcs
	if dir == DirPull {
		e.stats.PullRounds++
	}
	rs := RoundStat{Frontier: nf, Claimed: len(next), Arcs: arcs, Dir: dir}
	e.log = append(e.log, rs)
	e.observe(rs, dir)
	return rs
}

// gatherPull finds candidates bottom-up: every node probes its adjacency
// for a frontier member, early-exiting on the first hit.
func (e *Engine) gatherPull(gather func(worker int, v NodeID) bool) (arcs, nextDeg int64) {
	e.syncFrontierBits()
	t := e.t
	inFrontier := e.frontierBits
	body := func(w, lo, hi int) {
		buf := e.bufs[w][:0]
		var scanned, deg int64
		for v := NodeID(lo); int(v) < hi; v++ {
			nbrs := t.Neighbors(v)
			hit := false
			for _, u := range nbrs {
				scanned++
				if inFrontier.Get(u) {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
			scanned += int64(len(nbrs)) // gather's own adjacency scan
			if gather(w, v) {
				buf = append(buf, v)
				deg += int64(len(nbrs))
			}
		}
		e.bufs[w] = buf
		e.arcs[w] = scanned
		e.degs[w] = deg
	}
	e.forChunks(e.n, false, body)
	return e.sumScratch()
}

// gatherPush finds candidates top-down: frontier nodes mark their neighbors
// in a reusable scratch bitmap (the first marker collects the candidate),
// then gather runs over the collected candidates.
func (e *Engine) gatherPush(gather func(worker int, v NodeID) bool) (arcs, nextDeg int64) {
	t := e.t
	frontier := e.frontier
	if e.candBits == nil {
		e.candBits = NewBitmap(e.n)
		e.candBufs = make([][]NodeID, e.workers)
		e.marks = make([]int64, e.workers)
	}
	cand := e.candBits
	for w := range e.candBufs {
		e.candBufs[w] = e.candBufs[w][:0]
		e.marks[w] = 0
	}
	e.For(len(frontier), func(w, lo, hi int) {
		local := e.candBufs[w][:0]
		var scanned int64
		for _, u := range frontier[lo:hi] {
			nbrs := t.Neighbors(u)
			scanned += int64(len(nbrs))
			for _, v := range nbrs {
				if cand.SetAtomic(v) {
					local = append(local, v)
				}
			}
		}
		e.candBufs[w] = local
		e.marks[w] = scanned
	})
	candidates := e.cand[:0]
	for _, b := range e.candBufs {
		candidates = append(candidates, b...)
	}
	e.cand = candidates
	cand.ClearSparse(candidates)
	body := func(w, lo, hi int) {
		buf := e.bufs[w][:0]
		var scanned, deg int64
		for _, v := range candidates[lo:hi] {
			d := int64(t.Degree(v))
			scanned += d
			if gather(w, v) {
				buf = append(buf, v)
				deg += d
			}
		}
		e.bufs[w] = buf
		e.arcs[w] = scanned
		e.degs[w] = deg
	}
	e.forChunks(len(candidates), false, body)
	arcs, nextDeg = e.sumScratch()
	for _, a := range e.marks {
		arcs += a
	}
	return arcs, nextDeg
}
