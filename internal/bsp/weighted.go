package bsp

import (
	"context"
	"errors"
	"sync/atomic"
)

// Delta-stepping weighted traversal (Meyer & Sanders, J. Algorithms 2003 —
// the same Meyer whose quotient refinement the paper cites as [21]). Where
// Engine runs unit-step frontier supersteps, WeightedEngine runs a bucketed
// relaxation schedule: tentative distances are grouped into buckets of
// width delta, the lowest bucket is settled by repeated light-edge
// (weight <= delta) relaxation phases, and the settled set then relaxes its
// heavy edges (weight > delta) once. Dijkstra's priority queue is the
// delta -> 0 limit; Bellman-Ford is delta -> infinity. In between, every
// phase is a bulk superstep over an arbitrary worker count — exactly the
// shape the rest of this repository's frontier algorithms run in.
//
// Determinism. All relaxations funnel through an atomic min-reduction on a
// per-node claim word (the MPX casMin idiom): in multi-source mode the word
// packs (distance, owner) so ties break toward the smaller cluster id, in
// single-source mode it is the raw distance. Each phase relaxes from a
// distance snapshot taken at the preceding barrier, so the offer multiset
// of a phase — and therefore every bucket, every final distance, and every
// owner — is independent of the goroutine schedule and bit-for-bit
// identical across worker counts.

// WeightedTopology is the adjacency access the weighted engine needs.
// *graph.Weighted satisfies it; as with Topology, the interface keeps this
// package free of a graph dependency.
type WeightedTopology interface {
	NumNodes() int
	Neighbors(u NodeID) ([]NodeID, []int32)
}

// WInf marks unreachable nodes in weighted distance arrays. It equals
// graph.InfDist.
const WInf int64 = 1 << 62

// unclaimed is the claim word of a node no relaxation has reached.
const unclaimed = ^uint64(0)

// growDistMax bounds weighted distances in multi-source (owner-tracking)
// mode, where the claim word packs the distance into 31 bits above the
// 32-bit owner id. Exceeding it is reported as an error by ProcessBucket.
const growDistMax = int64(1)<<31 - 1

// ErrDistOverflow is returned when a multi-source growth accumulates a
// weighted distance beyond the 31 bits the packed claim word can hold.
var ErrDistOverflow = errors.New("bsp: weighted distance exceeds 2^31-1 in multi-source growth")

// casLower atomically lowers *slot to val; it reports whether this call
// lowered the word (the min-reduction "claim" of the MPX idiom).
func casLower(slot *uint64, val uint64) bool {
	for {
		cur := atomic.LoadUint64(slot)
		if val >= cur {
			return false
		}
		if atomic.CompareAndSwapUint64(slot, cur, val) {
			return true
		}
	}
}

// WeightedEngine runs delta-stepping traversals over a weighted topology.
// It is reusable across runs (each SSSP or GrowInit resets the claim state,
// keeping the accumulated Stats, the worker pool, and the light/heavy edge
// split) but is not safe for concurrent use. Close releases the pool.
type WeightedEngine struct {
	t       WeightedTopology
	n       int
	workers int
	delta   int64
	pool    *Pool

	// Adjacency split by weight class, in CSR form: light edges
	// (w <= delta) drive the intra-bucket phases, heavy edges (w > delta)
	// are relaxed once per settled bucket. The split is what makes the
	// schedule work-efficient: a bucket's repeated phases never rescan arcs
	// that cannot land inside it.
	lx, hx     []int64
	ladj, hadj []NodeID
	lw, hw     []int32

	// Claim state. shift is 32 in grow mode (word = dist<<32 | owner) and 0
	// in SSSP mode (word = dist); ownerMask selects the owner bits.
	slot      []uint64
	shift     uint
	ownerMask uint64
	distMax   int64
	overflow  atomic.Bool

	// Grow-mode settlement: a node counts as covered once the bucket
	// holding its final distance has been processed (sources settle at
	// AddSource). Tentative claims in unprocessed buckets are not settled.
	grow     bool
	settled  *Bitmap
	settledN int

	// Bucket schedule: pending bucket ids in a min-heap, members in a map
	// of lazily-filtered lists (a node lowered after insertion leaves a
	// stale entry behind; the pop filter drops it).
	buckets map[int64][]NodeID
	bheap   []int64
	free    [][]NodeID

	// ctx arms cooperative cancellation (SetContext); nil never cancels.
	ctx context.Context

	// obs, when non-nil, receives a Stats delta after every settled
	// bucket (SetObserver); nil costs one branch per bucket.
	obs Observer

	// Per-phase scratch.
	frontier []NodeID
	fwords   []uint64 // distance snapshot aligned with frontier
	rset     []NodeID // nodes settled by the bucket under processing
	inR      *Bitmap
	updBits  *Bitmap
	updBufs  [][]NodeID
	offersW  []int64
	upd      []NodeID // concatenated claim buffers of the last phase

	// relaxPhase parameter slots plus the one worker closure, built at
	// construction: the hot relaxation loop passes its arguments through
	// these fields instead of capturing them, so a phase allocates no
	// closures (the hotalloc contract; previously two escaped per phase).
	phaseNodes  []NodeID
	phaseWords  []uint64
	phaseXadj   []int64
	phaseAdj    []NodeID
	phaseWs     []int32
	phaseN      int
	phaseChunk  int
	chunkWorker func(w int)

	stats Stats
}

// NewWeightedEngine returns a delta-stepping engine over t with the given
// parallelism (non-positive selects GOMAXPROCS). A non-positive delta picks
// the bucket width from the weight distribution: the mean edge weight,
// which makes the average edge light while keeping buckets fine enough to
// avoid Bellman-Ford-style re-relaxation storms.
func NewWeightedEngine(t WeightedTopology, workers int, delta int64) *WeightedEngine {
	w := Workers(workers)
	n := t.NumNodes()
	if delta <= 0 {
		var sum, arcs int64
		for u := NodeID(0); int(u) < n; u++ {
			_, ws := t.Neighbors(u)
			for _, wt := range ws {
				sum += int64(wt)
			}
			arcs += int64(len(ws))
		}
		if arcs > 0 {
			delta = sum / arcs
		}
		if delta < 1 {
			delta = 1
		}
	}
	e := &WeightedEngine{
		t:       t,
		n:       n,
		workers: w,
		delta:   delta,
		pool:    NewPool(w),
		slot:    make([]uint64, n),
		settled: NewBitmap(n),
		buckets: make(map[int64][]NodeID),
		inR:     NewBitmap(n),
		updBits: NewBitmap(n),
		updBufs: make([][]NodeID, w),
		offersW: make([]int64, w),
	}
	e.chunkWorker = func(w int) {
		lo := w * e.phaseChunk
		if lo >= e.phaseN {
			e.updBufs[w] = e.updBufs[w][:0]
			e.offersW[w] = 0
			return
		}
		hi := lo + e.phaseChunk
		if hi > e.phaseN {
			hi = e.phaseN
		}
		e.relaxChunk(w, lo, hi)
	}
	e.splitEdges()
	//lint:allow plainatomic construction: pool workers have no work yet
	for i := range e.slot {
		e.slot[i] = unclaimed //lint:allow plainatomic construction
	}
	return e
}

// splitEdges partitions the adjacency into the light and heavy CSR pair.
func (e *WeightedEngine) splitEdges() {
	n := e.n
	e.lx = make([]int64, n+1)
	e.hx = make([]int64, n+1)
	for u := NodeID(0); int(u) < n; u++ {
		_, ws := e.t.Neighbors(u)
		for _, wt := range ws {
			if int64(wt) <= e.delta {
				e.lx[u+1]++
			} else {
				e.hx[u+1]++
			}
		}
	}
	for i := 0; i < n; i++ {
		e.lx[i+1] += e.lx[i]
		e.hx[i+1] += e.hx[i]
	}
	e.ladj = make([]NodeID, e.lx[n])
	e.lw = make([]int32, e.lx[n])
	e.hadj = make([]NodeID, e.hx[n])
	e.hw = make([]int32, e.hx[n])
	lc := make([]int64, n)
	hc := make([]int64, n)
	for i := 0; i < n; i++ {
		lc[i], hc[i] = e.lx[i], e.hx[i]
	}
	for u := NodeID(0); int(u) < n; u++ {
		nbrs, ws := e.t.Neighbors(u)
		for i, v := range nbrs {
			if int64(ws[i]) <= e.delta {
				e.ladj[lc[u]], e.lw[lc[u]] = v, ws[i]
				lc[u]++
			} else {
				e.hadj[hc[u]], e.hw[hc[u]] = v, ws[i]
				hc[u]++
			}
		}
	}
}

// Delta returns the bucket width in use.
func (e *WeightedEngine) Delta() int64 { return e.delta }

// NumWorkers returns the worker count.
func (e *WeightedEngine) NumWorkers() int { return e.workers }

// Stats returns the accumulated cost counters; like Engine, resets between
// runs keep them so multi-search computations read their aggregate cost.
func (e *WeightedEngine) Stats() Stats { return e.stats }

// SetContext arms cooperative cancellation: bucket processing checks ctx
// at bucket and phase barriers — never inside a relaxation phase — so a
// cancelled run stops within one phase while an uncancelled run executes
// exactly the same deterministic bucket schedule. After cancellation the
// claim state is partial; Err reports the cause and drivers must discard
// the run. A nil ctx (the default) never cancels. The context survives
// reset, covering multi-search computations like the weighted iFUB.
func (e *WeightedEngine) SetContext(ctx context.Context) { e.ctx = ctx }

// SetObserver installs fn to receive a Stats delta at every bucket
// barrier — the weighted engine's per-bucket counterpart of
// Engine.SetObserver, emitting the bucket's relaxation phases
// (Rounds), offers (Messages/Relaxations), and Buckets: 1 after each
// settled bucket. The observer runs on the driving goroutine, outside
// the relaxation phases; it survives reset, covering multi-search
// computations. A nil fn (the default) disables observation at the cost
// of one branch per bucket.
func (e *WeightedEngine) SetObserver(fn Observer) { e.obs = fn }

// Err returns the context error if SetContext armed cancellation and the
// context has been cancelled, else nil.
func (e *WeightedEngine) Err() error {
	if e.ctx == nil {
		return nil
	}
	return e.ctx.Err()
}

// Close stops the pool goroutines. The engine must not be used afterwards.
func (e *WeightedEngine) Close() { e.pool.Close() }

// reset clears the claim and bucket state for a fresh run. Runs on the
// driving goroutine between searches: workers are parked at the barrier.
//
//lint:allow plainatomic driver-only barrier phase, no concurrent writers
func (e *WeightedEngine) reset(grow bool) {
	for i := range e.slot {
		e.slot[i] = unclaimed
	}
	e.grow = grow
	if grow {
		e.shift, e.ownerMask, e.distMax = 32, 1<<32-1, growDistMax
	} else {
		e.shift, e.ownerMask, e.distMax = 0, 0, WInf-1
	}
	e.settled.ClearAll()
	e.settledN = 0
	e.inR.ClearAll()
	e.updBits.ClearAll()
	e.overflow.Store(false)
	//lint:allow mapiter order only affects backing-array recycling into e.free, never output
	for id, b := range e.buckets {
		e.free = append(e.free, b[:0])
		delete(e.buckets, id)
	}
	e.bheap = e.bheap[:0]
	e.rset = e.rset[:0]
	e.frontier = e.frontier[:0]
}

func (e *WeightedEngine) distOf(word uint64) int64 { return int64(word >> e.shift) }

// insert queues v into the bucket holding distance d.
func (e *WeightedEngine) insert(v NodeID, d int64) {
	id := d / e.delta
	b, ok := e.buckets[id]
	if !ok {
		if len(e.free) > 0 {
			b = e.free[len(e.free)-1]
			e.free = e.free[:len(e.free)-1]
		}
		e.heapPush(id)
	}
	e.buckets[id] = append(b, v)
}

func (e *WeightedEngine) heapPush(id int64) {
	h := append(e.bheap, id)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p] <= h[i] {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	e.bheap = h
}

func (e *WeightedEngine) heapPop() int64 {
	h := e.bheap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < len(h) && h[l] < h[s] {
			s = l
		}
		if r < len(h) && h[r] < h[s] {
			s = r
		}
		if s == i {
			break
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
	e.bheap = h
	return top
}

// addSource claims u at distance zero for owner and queues it in bucket 0.
// Must not be called while a bucket is being processed.
//
//lint:allow plainatomic driver-only barrier phase, no concurrent writers
func (e *WeightedEngine) addSource(u, owner NodeID) {
	e.slot[u] = uint64(owner) & e.ownerMask // dist 0 in the high bits
	e.insert(u, 0)
	if e.grow && !e.settled.Get(u) {
		e.settled.Set(u)
		e.settledN++
	}
}

// clearScratchFrom resets the claim scratch of workers [w, workers) that a
// sequential or short phase left untouched.
func (e *WeightedEngine) clearScratchFrom(w int) {
	for ; w < e.workers; w++ {
		e.updBufs[w] = e.updBufs[w][:0]
		e.offersW[w] = 0
	}
}

// relaxChunk relaxes nodes [lo, hi) of the current phase (parameters in
// the phase* fields) into worker w's claim buffer. It is the relaxation
// inner loop — a transitive callee of the hot relaxPhase, kept free of
// closures and allocation.
func (e *WeightedEngine) relaxChunk(w, lo, hi int) {
	nodes, words := e.phaseNodes, e.phaseWords
	xadj, adj, ws := e.phaseXadj, e.phaseAdj, e.phaseWs
	slot, shift, mask, distMax, updBits := e.slot, e.shift, e.ownerMask, e.distMax, e.updBits
	seq := e.workers == 1
	buf := e.updBufs[w][:0]
	var scanned int64
	for i := lo; i < hi; i++ {
		u := nodes[i]
		var word uint64
		if words != nil {
			word = words[i]
		} else {
			word = slot[u] //lint:allow plainatomic nil words: heavy phase of a settled bucket, slots stable (see doc)
		}
		du := int64(word >> shift)
		base := word & mask
		adjU := adj[xadj[u]:xadj[u+1]]
		wsU := ws[xadj[u]:xadj[u+1]:xadj[u+1]]
		scanned += int64(len(adjU))
		for a, v := range adjU {
			nd := du + int64(wsU[a])
			if nd > distMax {
				e.overflow.Store(true)
				continue
			}
			nw := uint64(nd)<<shift | base
			if seq {
				// Single worker: same min-reduction, no atomics.
				if nw < slot[v] { //lint:allow plainatomic workers==1 fast path
					slot[v] = nw //lint:allow plainatomic workers==1 fast path
					if !updBits.Get(v) {
						updBits.Set(v)
						buf = append(buf, v) //lint:allow alloc pooled claim buffer: grows to its high-water mark, then reuses
					}
				}
			} else if casLower(&slot[v], nw) && updBits.SetAtomic(v) {
				buf = append(buf, v) //lint:allow alloc pooled claim buffer: grows to its high-water mark, then reuses
			}
		}
	}
	e.updBufs[w] = buf
	e.offersW[w] = scanned
}

// relaxPhase offers dist+w along the light or heavy edges of nodes, whose
// distance words are read from the aligned snapshot words (nil reads the
// live slots — only safe when they cannot change, i.e. the heavy phase of a
// settled bucket). It returns the per-worker claim buffers concatenated
// (each node lowered at least once, exactly one entry) and the offer count.
// The arguments travel through the phase* fields and the pre-built
// chunkWorker closure rather than a per-call capture.
//
//lint:hotpath
func (e *WeightedEngine) relaxPhase(nodes []NodeID, words []uint64, heavy bool) (upd []NodeID, offers int64) {
	e.phaseXadj, e.phaseAdj, e.phaseWs = e.lx, e.ladj, e.lw
	if heavy {
		e.phaseXadj, e.phaseAdj, e.phaseWs = e.hx, e.hadj, e.hw
	}
	e.phaseNodes, e.phaseWords = nodes, words
	n := len(nodes)
	if n < seqThreshold || e.workers == 1 {
		e.relaxChunk(0, 0, n)
		e.clearScratchFrom(1)
	} else {
		e.phaseN = n
		e.phaseChunk = (n + e.workers - 1) / e.workers
		e.pool.Run(e.chunkWorker)
	}
	e.phaseNodes, e.phaseWords = nil, nil
	upd = e.upd[:0]
	for w := 0; w < e.workers; w++ {
		upd = append(upd, e.updBufs[w]...) //lint:allow alloc pooled concat buffer: grows to the high-water frontier, then reuses
		offers += e.offersW[w]
	}
	e.upd = upd
	e.updBits.ClearSparse(upd)
	if offers > 0 {
		e.stats.Rounds++
		e.stats.Messages += offers
		e.stats.Relaxations += offers
	}
	if len(nodes) > e.stats.MaxFrontier {
		e.stats.MaxFrontier = len(nodes)
	}
	return upd, offers
}

// admit appends v to the current bucket's frontier (and settlement set R)
// with its now-stable distance word.
//
//lint:allow plainatomic driver-only barrier phase, no concurrent writers
func (e *WeightedEngine) admit(v NodeID) {
	e.frontier = append(e.frontier, v)
	e.fwords = append(e.fwords, e.slot[v])
	if !e.inR.Get(v) {
		e.inR.Set(v)
		e.rset = append(e.rset, v)
	}
}

// processBucket settles the lowest pending bucket: repeated light-edge
// phases until the bucket stops changing, then one heavy-edge phase from
// everything the bucket settled. It reports whether any bucket held live
// work (stale entries are consumed either way). Slot reads here happen on
// the driving goroutine between relaxation phases, when the claim words
// are quiescent.
//
//lint:allow plainatomic driver-only barrier phases, workers parked between relaxations
func (e *WeightedEngine) processBucket() bool {
	before := e.stats
	for len(e.bheap) > 0 {
		if e.Err() != nil {
			// Cancelled at a bucket barrier: leave the pending buckets
			// unconsumed and report no further work; ProcessBucket (and
			// Err) surface the cause, and the run's claim state is
			// discarded by the driver.
			return false
		}
		id := e.heapPop()
		list := e.buckets[id]
		delete(e.buckets, id)
		e.frontier = e.frontier[:0]
		e.fwords = e.fwords[:0]
		e.rset = e.rset[:0]
		for _, v := range list {
			word := e.slot[v]
			if word == unclaimed || int64(word>>e.shift)/e.delta != id || e.inR.Get(v) {
				continue // stale or duplicate entry
			}
			e.admit(v)
		}
		e.free = append(e.free, list[:0])
		if len(e.frontier) == 0 {
			e.inR.ClearSparse(e.rset)
			continue
		}
		// Light phases: relax until no claim lands back in this bucket
		// (or the context is cancelled at a phase barrier).
		for len(e.frontier) > 0 && e.Err() == nil {
			upd, _ := e.relaxPhase(e.frontier, e.fwords, false)
			e.frontier = e.frontier[:0]
			e.fwords = e.fwords[:0]
			for _, v := range upd {
				if d := e.distOf(e.slot[v]); d/e.delta == id {
					e.admit(v)
				} else {
					e.insert(v, d)
				}
			}
		}
		if e.Err() != nil {
			return false
		}
		// Heavy phase: every settled node offers its heavy edges once, at
		// its final distance (heavy offers land strictly above this bucket,
		// so live slot reads are stable).
		upd, _ := e.relaxPhase(e.rset, nil, true)
		for _, v := range upd {
			e.insert(v, e.distOf(e.slot[v]))
		}
		if e.grow {
			for _, v := range e.rset {
				if !e.settled.Get(v) {
					e.settled.Set(v)
					e.settledN++
				}
			}
		}
		e.inR.ClearSparse(e.rset)
		e.stats.Buckets++
		if e.obs != nil {
			e.obs(Stats{
				Rounds:      e.stats.Rounds - before.Rounds,
				Messages:    e.stats.Messages - before.Messages,
				Relaxations: e.stats.Relaxations - before.Relaxations,
				Buckets:     1,
				MaxFrontier: e.stats.MaxFrontier,
			})
		}
		return true
	}
	return false
}

// SSSP computes single-source shortest-path distances from src into dist
// (len NumNodes; unreachable nodes get WInf) and returns the weighted
// eccentricity of src within its component. Distances are identical to
// Dijkstra's for every delta and worker count. If the engine's context is
// cancelled (SetContext) the search stops at the next bucket or phase
// barrier; the distances are then partial and Err reports the cause.
func (e *WeightedEngine) SSSP(src NodeID, dist []int64) int64 {
	e.reset(false)
	e.addSource(src, 0)
	for e.processBucket() {
	}
	var ecc int64
	for i := range dist {
		if w := e.slot[i]; w != unclaimed { //lint:allow plainatomic search complete, claim words final
			dist[i] = int64(w)
			if dist[i] > ecc {
				ecc = dist[i]
			}
		} else {
			dist[i] = WInf
		}
	}
	return ecc
}

// GrowInit starts a multi-source growth: claim words pack (distance, owner)
// and min-reduce lexicographically, so contended nodes resolve to the
// (smallest distance, smallest cluster id) claim — the weighted CLUSTER
// tie-break — independent of schedule. Sources are added with AddSource and
// buckets advanced with ProcessBucket; both may interleave, which is how
// the batch schedule staggers center activation.
func (e *WeightedEngine) GrowInit() { e.reset(true) }

// AddSource activates u as a source owning cluster `owner`: distance zero,
// settled immediately (a fresh center covers itself), queued in bucket 0.
// Must only be called between ProcessBucket calls. Adding a source at a
// node holding a tentative (unsettled) claim overrides that claim — a
// distance-zero word wins every min-reduction.
func (e *WeightedEngine) AddSource(u, owner NodeID) { e.addSource(u, owner) }

// ProcessBucket settles the lowest pending bucket. It reports whether any
// pending bucket held live work, and fails if a packed distance overflowed
// or the engine's context was cancelled (SetContext).
func (e *WeightedEngine) ProcessBucket() (bool, error) {
	ok := e.processBucket()
	if err := e.Err(); err != nil {
		return ok, err
	}
	if e.overflow.Load() {
		return ok, ErrDistOverflow
	}
	return ok, nil
}

// HasPending reports whether any bucket (possibly holding only stale
// entries) is still queued.
func (e *WeightedEngine) HasPending() bool { return len(e.bheap) > 0 }

// Settled reports whether u's claim has been settled (for sources, since
// AddSource). Tentative claims in unprocessed buckets do not count.
func (e *WeightedEngine) Settled(u NodeID) bool { return e.settled.Get(u) }

// SettledCount returns the number of settled nodes.
func (e *WeightedEngine) SettledCount() int { return e.settledN }

// Extract writes the settled claims into dist and owner (len NumNodes).
// Unsettled nodes get WInf and owner -1. Called between ProcessBucket
// calls, when the claim words are quiescent.
//
//lint:allow plainatomic driver-only barrier phase, no concurrent writers
func (e *WeightedEngine) Extract(dist []int64, owner []NodeID) {
	for u := 0; u < e.n; u++ {
		if e.settled.Get(NodeID(u)) {
			word := e.slot[u]
			dist[u] = int64(word >> e.shift)
			owner[u] = NodeID(uint32(word & e.ownerMask))
		} else {
			dist[u] = WInf
			owner[u] = -1
		}
	}
}
