package bsp_test

import (
	"sync/atomic"
	"testing"

	"repro/internal/bsp"
	"repro/internal/graph"
)

// engineBFS runs a BFS on the Engine in the given direction mode and
// returns the distance array; it is the canonical claim-style usage
// pattern exercised here. Push claims race through CAS; pull adoptions are
// deterministic first-match, and both assign the same depth values.
func engineBFS(g *graph.Graph, src graph.NodeID, workers int, dir bsp.Direction) ([]int32, bsp.Stats) {
	n := g.NumNodes()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	e := bsp.NewEngine(g, workers)
	defer e.Close()
	e.SetDirection(dir)
	e.Seed(src)
	for depth := int32(1); e.FrontierLen() > 0; depth++ {
		d := depth
		e.Step(bsp.StepSpec{
			Push: func(_ int, u, v graph.NodeID) bool {
				return atomic.CompareAndSwapInt32(&dist[v], -1, d)
			},
			Pull: func(_ int, v, u graph.NodeID) bool {
				dist[v] = d
				return true
			},
		})
	}
	return dist, e.Stats()
}

func TestEngineBFSMatchesSequential(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Mesh(30, 30),
		graph.BarabasiAlbert(3000, 3, 1),
		graph.Path(500),
		graph.Cycle(100),
	}
	for _, g := range graphs {
		want := g.BFS(0)
		for _, workers := range []int{1, 2, 4, 0} {
			for _, dir := range []bsp.Direction{bsp.DirAuto, bsp.DirPush, bsp.DirPull} {
				got, _ := engineBFS(g, 0, workers, dir)
				for u := range want {
					if got[u] != want[u] {
						t.Fatalf("workers=%d dir=%v: dist[%d]=%d want %d", workers, dir, u, got[u], want[u])
					}
				}
			}
		}
	}
}

func TestEngineRoundsEqualEccentricity(t *testing.T) {
	g := graph.Path(100)
	_, stats := engineBFS(g, 0, 4, bsp.DirAuto)
	// ecc(0) = 99 expansion rounds plus the final round that discovers the
	// frontier is exhausted, exactly as a BSP execution would.
	if stats.Rounds != 100 {
		t.Fatalf("BFS on P100 from an end should take 100 rounds, got %d", stats.Rounds)
	}
}

func TestEngineForcedPushMessagesEqualArcs(t *testing.T) {
	// A full top-down BFS scans every arc of a connected graph exactly once
	// per endpoint activation: total messages = sum of degrees = 2m. The
	// hybrid mode may only improve on that.
	g := graph.Mesh(20, 20)
	_, push := engineBFS(g, 0, 4, bsp.DirPush)
	if push.Messages != int64(g.NumArcs()) {
		t.Fatalf("forced-push messages=%d want %d", push.Messages, g.NumArcs())
	}
	if push.PullRounds != 0 {
		t.Fatalf("forced push ran %d pull rounds", push.PullRounds)
	}
	_, auto := engineBFS(g, 0, 4, bsp.DirAuto)
	if auto.Messages > push.Messages {
		t.Fatalf("hybrid messages=%d exceed forced-push %d", auto.Messages, push.Messages)
	}
}

func TestEngineEmptyFrontierStepIsNoop(t *testing.T) {
	g := graph.Path(5)
	e := bsp.NewEngine(g, 2)
	defer e.Close()
	rs := e.Step(bsp.StepSpec{Push: func(_ int, _, _ graph.NodeID) bool { return true }})
	if rs.Arcs != 0 || rs.Claimed != 0 || e.Stats().Rounds != 0 {
		t.Fatal("empty frontier should be a no-op")
	}
}

func TestEngineNoDuplicateClaims(t *testing.T) {
	// Maximal contention: every leaf of a large star claims the hub in the
	// same superstep. The frontier exceeds the sequential threshold, so the
	// parallel path runs, and exactly one claim must win.
	const leaves = 5000
	g := graph.Star(leaves + 1)
	claimed := make([]int32, g.NumNodes())
	e := bsp.NewEngine(g, 8)
	defer e.Close()
	e.SetDirection(bsp.DirPush)
	for i := 1; i <= leaves; i++ {
		claimed[i] = 1
		e.Seed(graph.NodeID(i))
	}
	rs := e.Step(bsp.StepSpec{Push: func(_ int, u, v graph.NodeID) bool {
		return atomic.CompareAndSwapInt32(&claimed[v], 0, 1)
	}})
	if rs.Claimed != 1 || e.FrontierLen() != 1 || e.Frontier()[0] != 0 {
		t.Fatalf("hub should be claimed exactly once, got %v", e.Frontier())
	}
	if rs.Arcs != leaves {
		t.Fatalf("arcs=%d want %d", rs.Arcs, leaves)
	}
}

func TestWorkersDefault(t *testing.T) {
	if bsp.Workers(0) < 1 {
		t.Fatal("Workers(0) must be positive")
	}
	if bsp.Workers(3) != 3 {
		t.Fatal("Workers(3) != 3")
	}
}

func TestStatsAdd(t *testing.T) {
	a := bsp.Stats{Rounds: 2, Messages: 10, MaxFrontier: 5, PullRounds: 1}
	a.Add(bsp.Stats{Rounds: 3, Messages: 7, MaxFrontier: 9, PullRounds: 2})
	if a.Rounds != 5 || a.Messages != 17 || a.MaxFrontier != 9 || a.PullRounds != 3 {
		t.Fatalf("Add wrong: %+v", a)
	}
}

func TestParallelFor(t *testing.T) {
	for _, n := range []int{0, 1, 100, 5000} {
		var sum int64
		hit := make([]int32, n)
		bsp.ParallelFor(4, n, func(_, lo, hi int) {
			var local int64
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hit[i], 1)
				local += int64(i)
			}
			atomic.AddInt64(&sum, local)
		})
		want := int64(n) * int64(n-1) / 2
		if n == 0 {
			want = 0
		}
		if sum != want {
			t.Fatalf("n=%d: sum=%d want %d", n, sum, want)
		}
		for i, h := range hit {
			if h != 1 {
				t.Fatalf("index %d visited %d times", i, h)
			}
		}
	}
}

func TestParallelSum(t *testing.T) {
	got := bsp.ParallelSum(3, 10000, func(_, lo, hi int) int64 {
		var s int64
		for i := lo; i < hi; i++ {
			s += int64(i)
		}
		return s
	})
	want := int64(10000) * 9999 / 2
	if got != want {
		t.Fatalf("ParallelSum=%d want %d", got, want)
	}
}

func BenchmarkEngineBFSMesh(b *testing.B) {
	g := graph.Mesh(300, 300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engineBFS(g, 0, 0, bsp.DirAuto)
	}
}

func BenchmarkEngineBFSSocial(b *testing.B) {
	g := graph.BarabasiAlbert(50000, 8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engineBFS(g, 0, 0, bsp.DirAuto)
	}
}
