package bsp

import (
	"sync/atomic"
	"testing"

	"repro/internal/graph"
)

// bspBFS runs a BFS using the Expander with CAS claims and returns the
// distance array; it is the canonical usage pattern exercised here.
func bspBFS(g *graph.Graph, src graph.NodeID, workers int) ([]int32, Stats) {
	n := g.NumNodes()
	dist := make([]int32, n)
	claimed := make([]int32, n) // 0 = unclaimed, 1 = claimed
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	claimed[src] = 1
	e := NewExpander(g, workers)
	frontier := []graph.NodeID{src}
	var stats Stats
	depth := int32(0)
	for len(frontier) > 0 {
		if len(frontier) > stats.MaxFrontier {
			stats.MaxFrontier = len(frontier)
		}
		depth++
		next, arcs := e.Step(frontier, func(_ int, u, v graph.NodeID) bool {
			if atomic.CompareAndSwapInt32(&claimed[v], 0, 1) {
				dist[v] = depth
				return true
			}
			return false
		})
		stats.Rounds++
		stats.Messages += arcs
		frontier = next
	}
	return dist, stats
}

func TestExpanderBFSMatchesSequential(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Mesh(30, 30),
		graph.BarabasiAlbert(3000, 3, 1),
		graph.Path(500),
		graph.Cycle(100),
	}
	for _, g := range graphs {
		want := g.BFS(0)
		for _, workers := range []int{1, 2, 4, 0} {
			got, _ := bspBFS(g, 0, workers)
			for u := range want {
				if got[u] != want[u] {
					t.Fatalf("workers=%d: dist[%d]=%d want %d", workers, u, got[u], want[u])
				}
			}
		}
	}
}

func TestExpanderRoundsEqualEccentricity(t *testing.T) {
	g := graph.Path(100)
	_, stats := bspBFS(g, 0, 4)
	// ecc(0) = 99 expansion rounds plus the final round that discovers the
	// frontier is exhausted, exactly as a BSP execution would.
	if stats.Rounds != 100 {
		t.Fatalf("BFS on P100 from an end should take 100 rounds, got %d", stats.Rounds)
	}
}

func TestExpanderMessagesEqualArcsScanned(t *testing.T) {
	// A full BFS scans every arc of a connected graph exactly once per
	// endpoint activation: total messages = sum of degrees = 2m.
	g := graph.Mesh(20, 20)
	_, stats := bspBFS(g, 0, 4)
	if stats.Messages != int64(g.NumArcs()) {
		t.Fatalf("messages=%d want %d", stats.Messages, g.NumArcs())
	}
}

func TestExpanderEmptyFrontier(t *testing.T) {
	g := graph.Path(5)
	e := NewExpander(g, 2)
	next, arcs := e.Step(nil, func(_ int, _, _ graph.NodeID) bool { return true })
	if next != nil || arcs != 0 {
		t.Fatal("empty frontier should be a no-op")
	}
}

func TestExpanderNoDuplicateClaims(t *testing.T) {
	// Maximal contention: every leaf of a large star claims the hub in the
	// same superstep. The frontier exceeds the sequential threshold, so the
	// parallel path runs, and exactly one claim must win.
	const leaves = 5000
	g := graph.Star(leaves + 1)
	claimed := make([]int32, g.NumNodes())
	e := NewExpander(g, 8)
	frontier := make([]graph.NodeID, leaves)
	for i := range frontier {
		frontier[i] = graph.NodeID(i + 1)
		claimed[i+1] = 1
	}
	next, arcs := e.Step(frontier, func(_ int, u, v graph.NodeID) bool {
		return atomic.CompareAndSwapInt32(&claimed[v], 0, 1)
	})
	if len(next) != 1 || next[0] != 0 {
		t.Fatalf("hub should be claimed exactly once, got %v", next)
	}
	if arcs != leaves {
		t.Fatalf("arcs=%d want %d", arcs, leaves)
	}
}

func TestWorkersDefault(t *testing.T) {
	if Workers(0) < 1 {
		t.Fatal("Workers(0) must be positive")
	}
	if Workers(3) != 3 {
		t.Fatal("Workers(3) != 3")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Rounds: 2, Messages: 10, MaxFrontier: 5}
	a.Add(Stats{Rounds: 3, Messages: 7, MaxFrontier: 9})
	if a.Rounds != 5 || a.Messages != 17 || a.MaxFrontier != 9 {
		t.Fatalf("Add wrong: %+v", a)
	}
}

func TestParallelFor(t *testing.T) {
	for _, n := range []int{0, 1, 100, 5000} {
		var sum int64
		hit := make([]int32, n)
		ParallelFor(4, n, func(_, lo, hi int) {
			var local int64
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hit[i], 1)
				local += int64(i)
			}
			atomic.AddInt64(&sum, local)
		})
		want := int64(n) * int64(n-1) / 2
		if n == 0 {
			want = 0
		}
		if sum != want {
			t.Fatalf("n=%d: sum=%d want %d", n, sum, want)
		}
		for i, h := range hit {
			if h != 1 {
				t.Fatalf("index %d visited %d times", i, h)
			}
		}
	}
}

func TestParallelSum(t *testing.T) {
	got := ParallelSum(3, 10000, func(_, lo, hi int) int64 {
		var s int64
		for i := lo; i < hi; i++ {
			s += int64(i)
		}
		return s
	})
	want := int64(10000) * 9999 / 2
	if got != want {
		t.Fatalf("ParallelSum=%d want %d", got, want)
	}
}

func BenchmarkExpanderBFSMesh(b *testing.B) {
	g := graph.Mesh(300, 300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bspBFS(g, 0, 0)
	}
}

func BenchmarkExpanderBFSSocial(b *testing.B) {
	g := graph.BarabasiAlbert(50000, 8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bspBFS(g, 0, 0)
	}
}
