package bsp

import "sync"

// Pool is the persistent worker pool shared by the traversal engines: a set
// of goroutines spawned once and fed per-superstep closures, so a
// multi-round computation (BFS levels, delta-stepping buckets) pays the
// goroutine startup cost once rather than per round.
//
// Worker 0 is always the calling goroutine; the pool owns workers 1..w-1.
// The goroutines are started lazily, on the first Run, so a computation
// small enough to stay under the engines' inline thresholds never spawns
// them at all.
type Pool struct {
	workers int
	work    []chan func(worker int)
	wg      sync.WaitGroup
	closed  bool
}

// NewPool returns a pool with the given parallelism (non-positive selects
// GOMAXPROCS).
func NewPool(workers int) *Pool {
	return &Pool{workers: Workers(workers)}
}

// Workers returns the pool's parallelism.
func (p *Pool) Workers() int { return p.workers }

// Run executes fn(worker) on every worker (0 = the caller) and waits.
func (p *Pool) Run(fn func(worker int)) {
	if p.workers == 1 {
		fn(0) //lint:allow alloc dynamic dispatch only: what fn does is the caller's contract; hot callers pass pre-built closures that are themselves analyzed
		return
	}
	if p.work == nil {
		//lint:allow alloc lazy spin-up: the first Run pays for the channels and goroutines once; every later Run only sends on them
		p.work = make([]chan func(worker int), p.workers-1)
		for i := range p.work {
			ch := make(chan func(worker int)) //lint:allow alloc lazy spin-up, first Run only
			p.work[i] = ch
			//lint:allow alloc lazy spin-up, first Run only
			go func(w int, ch chan func(worker int)) {
				for f := range ch {
					f(w)
					p.wg.Done()
				}
			}(i+1, ch)
		}
	}
	p.wg.Add(p.workers - 1)
	for _, ch := range p.work {
		ch <- fn
	}
	fn(0) //lint:allow alloc dynamic dispatch only: what fn does is the caller's contract; hot callers pass pre-built closures that are themselves analyzed
	p.wg.Wait()
}

// Close stops the pool goroutines. The pool must not be used afterwards.
func (p *Pool) Close() {
	if p.closed {
		return
	}
	p.closed = true
	for _, ch := range p.work {
		close(ch)
	}
	p.work = nil
}
