package bsp_test

import (
	"sync/atomic"
	"testing"

	"repro/internal/bsp"
	"repro/internal/graph"
)

// TestEngineObserverDeltasSumToStats pins the observer contract for the
// unweighted engine: the deltas emitted at superstep barriers, accumulated
// with Stats.Add, must reconstruct the engine's own post-hoc totals.
func TestEngineObserverDeltasSumToStats(t *testing.T) {
	g := lowDiameterGraph()
	n := g.NumNodes()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[0] = 0
	e := bsp.NewEngine(g, 4)
	defer e.Close()
	e.SetDirection(bsp.DirAuto)
	var seen bsp.Stats
	var emissions int
	e.SetObserver(func(d bsp.Stats) {
		seen.Add(d)
		emissions++
	})
	e.Seed(0)
	for depth := int32(1); e.FrontierLen() > 0; depth++ {
		d := depth
		e.Step(bsp.StepSpec{
			Push: func(_ int, u, v graph.NodeID) bool {
				return atomic.CompareAndSwapInt32(&dist[v], -1, d)
			},
			Pull: func(_ int, v, u graph.NodeID) bool {
				dist[v] = d
				return true
			},
		})
	}
	want := e.Stats()
	if seen != want {
		t.Fatalf("accumulated observer deltas %+v != engine stats %+v", seen, want)
	}
	if emissions != want.Rounds {
		t.Fatalf("observer fired %d times for %d rounds", emissions, want.Rounds)
	}
	if want.PullRounds == 0 {
		t.Fatal("hybrid never pulled; the test graph no longer exercises both directions")
	}
}

// TestWeightedObserverDeltasSumToStats is the delta-stepping counterpart:
// per-bucket deltas accumulated with Stats.Add reconstruct the engine
// totals, and exactly one delta fires per settled bucket.
func TestWeightedObserverDeltasSumToStats(t *testing.T) {
	g := graph.RoadLike(25, 25, 0.4, 7)
	wg := randomWeightedGraph(t, g, 3, 20)
	e := bsp.NewWeightedEngine(wg, 4, 0)
	defer e.Close()
	var seen bsp.Stats
	var emissions int
	e.SetObserver(func(d bsp.Stats) {
		if d.Buckets != 1 {
			t.Errorf("bucket delta carries Buckets=%d, want 1", d.Buckets)
		}
		seen.Add(d)
		emissions++
	})
	dist := make([]int64, wg.NumNodes())
	e.SSSP(0, dist)
	want := e.Stats()
	if seen != want {
		t.Fatalf("accumulated observer deltas %+v != engine stats %+v", seen, want)
	}
	if emissions != want.Buckets {
		t.Fatalf("observer fired %d times for %d buckets", emissions, want.Buckets)
	}
	if want.Buckets == 0 {
		t.Fatal("SSSP settled no buckets; the test graph is degenerate")
	}
}
