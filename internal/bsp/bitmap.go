package bsp

import (
	"math/bits"
	"sync/atomic"
)

// Bitmap is a dense set over node ids [0, n). It is the dense counterpart
// of the sparse frontier lists the engine keeps: top-down supersteps work
// on the sparse form, bottom-up supersteps test membership against the
// dense form, and the two stay interchangeable via ToSparse/FromSparse.
//
// Concurrent use: SetAtomic may race with other SetAtomic calls; plain Set
// and Get must be confined to word-disjoint ranges (the engine aligns its
// worker chunks to 64-node boundaries for exactly this reason).
type Bitmap struct {
	n     int
	words []uint64
}

// NewBitmap returns an empty bitmap over [0, n).
func NewBitmap(n int) *Bitmap {
	return &Bitmap{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the domain size n.
func (b *Bitmap) Len() int { return b.n }

// Get reports whether u is in the set.
//
//lint:allow plainatomic word-disjoint confinement: workers read chunks aligned to 64-node boundaries (see type doc)
func (b *Bitmap) Get(u NodeID) bool {
	return b.words[uint32(u)>>6]&(1<<(uint32(u)&63)) != 0
}

// Set adds u to the set. Not safe for concurrent writers sharing a word.
//
//lint:allow plainatomic single-writer by contract: callers confine writes to word-disjoint chunks
func (b *Bitmap) Set(u NodeID) {
	b.words[uint32(u)>>6] |= 1 << (uint32(u) & 63)
}

// SetAtomic adds u to the set, safely under concurrent writers. It reports
// whether this call inserted u (false if it was already present).
//
// Implemented as a load+CAS loop rather than atomic.OrUint64: with
// go1.24.0 on amd64, inlining the OrUint64 intrinsic into the engine's
// gather loop clobbers the live neighbors-slice register and segfaults
// (reproducible via TestEngineGatherStepCandidates; disappears at -N -l).
// Revisit once a fixed toolchain is in the image.
func (b *Bitmap) SetAtomic(u NodeID) bool {
	word := &b.words[uint32(u)>>6]
	mask := uint64(1) << (uint32(u) & 63)
	for {
		old := atomic.LoadUint64(word)
		if old&mask != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(word, old, old|mask) {
			return true
		}
	}
}

// ClearAll empties the set in O(n/64).
//
//lint:allow plainatomic barrier phase: clears run between supersteps with no concurrent writers
func (b *Bitmap) ClearAll() {
	clear(b.words)
}

// ClearSparse empties the set given a superset of its members, zeroing only
// the words those members touch — O(len(members)) instead of O(n/64).
//
//lint:allow plainatomic barrier phase: clears run between supersteps with no concurrent writers
func (b *Bitmap) ClearSparse(members []NodeID) {
	for _, u := range members {
		b.words[uint32(u)>>6] = 0
	}
}

// FromSparse resets the bitmap to exactly the given members. prev must be a
// superset of the current members (typically the slice a previous
// FromSparse installed); pass nil to force a full clear.
func (b *Bitmap) FromSparse(members, prev []NodeID) {
	if prev == nil {
		b.ClearAll()
	} else {
		b.ClearSparse(prev)
	}
	for _, u := range members {
		b.Set(u)
	}
}

// ToSparse appends the members of the set to dst in ascending order.
//
//lint:allow plainatomic barrier phase: conversions run between supersteps with no concurrent writers
func (b *Bitmap) ToSparse(dst []NodeID) []NodeID {
	for wi, w := range b.words {
		base := NodeID(wi << 6)
		for w != 0 {
			dst = append(dst, base+NodeID(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}

// Count returns the number of members.
//
//lint:allow plainatomic barrier phase: counting runs between supersteps with no concurrent writers
func (b *Bitmap) Count() int {
	total := 0
	for _, w := range b.words {
		total += bits.OnesCount64(w)
	}
	return total
}
