package bsp_test

import (
	"sync/atomic"
	"testing"

	"repro/internal/bsp"
	"repro/internal/graph"
)

// lowDiameterGraph is the G(n, p)-style benchmark topology of the issue's
// acceptance criterion: 20k nodes, average degree 10, diameter ~6.
func lowDiameterGraph() *graph.Graph {
	return graph.ErdosRenyi(20000, 100000, 1)
}

func TestPushPullEquivalenceHighAndLowDiameter(t *testing.T) {
	// The two directions must produce identical BFS distances on both the
	// high-diameter mesh (where hybrid stays top-down) and the low-diameter
	// random graph (where it flips bottom-up mid-traversal).
	for name, g := range map[string]*graph.Graph{
		"mesh":   graph.Mesh(60, 60),
		"random": lowDiameterGraph(),
	} {
		want, _ := engineBFS(g, 0, 1, bsp.DirPush)
		for _, workers := range []int{1, 4} {
			for _, dir := range []bsp.Direction{bsp.DirPush, bsp.DirPull, bsp.DirAuto} {
				got, _ := engineBFS(g, 0, workers, dir)
				for u := range want {
					if got[u] != want[u] {
						t.Fatalf("%s workers=%d dir=%v: dist[%d]=%d want %d",
							name, workers, dir, u, got[u], want[u])
					}
				}
			}
		}
	}
}

func TestHybridScansAtLeastTwiceFewerArcs(t *testing.T) {
	// Acceptance criterion: on a low-diameter G(n, p) graph a full BFS under
	// the hybrid engine must scan at least 2x fewer arcs than forced
	// top-down, with identical distances.
	g := lowDiameterGraph()
	pushDist, push := engineBFS(g, 0, 4, bsp.DirPush)
	autoDist, auto := engineBFS(g, 0, 4, bsp.DirAuto)
	for u := range pushDist {
		if pushDist[u] != autoDist[u] {
			t.Fatalf("hybrid diverged from push at node %d", u)
		}
	}
	if auto.PullRounds == 0 {
		t.Fatal("hybrid never switched to pull on a low-diameter graph")
	}
	if push.Messages < 2*auto.Messages {
		t.Fatalf("hybrid scanned %d arcs, forced push %d: want >= 2x reduction",
			auto.Messages, push.Messages)
	}
}

func TestHybridDirectionScheduleIsWorkerIndependent(t *testing.T) {
	// The per-round direction decision depends only on frontier sizes and
	// degree sums, which are schedule-independent; the round log must be
	// identical whatever the worker count.
	g := lowDiameterGraph()
	ref := func() []bsp.RoundStat {
		e := bsp.NewEngine(g, 1)
		defer e.Close()
		dist := make([]int32, g.NumNodes())
		for i := range dist {
			dist[i] = -1
		}
		dist[0] = 0
		e.Seed(0)
		for d := int32(1); e.FrontierLen() > 0; d++ {
			dd := d
			e.Step(bsp.StepSpec{
				Push: func(_ int, u, v graph.NodeID) bool {
					if dist[v] == -1 {
						dist[v] = dd
						return true
					}
					return false
				},
				Pull: func(_ int, v, u graph.NodeID) bool { dist[v] = dd; return true },
			})
		}
		return e.RoundLog()
	}()
	for _, workers := range []int{2, 5} {
		dist := make([]int32, g.NumNodes())
		for i := range dist {
			dist[i] = -1
		}
		dist[0] = 0
		e := bsp.NewEngine(g, workers)
		e.Seed(0)
		for d := int32(1); e.FrontierLen() > 0; d++ {
			dd := d
			e.Step(bsp.StepSpec{
				Push: func(_ int, u, v graph.NodeID) bool {
					return atomicCAS32(dist, v, -1, dd)
				},
				Pull: func(_ int, v, u graph.NodeID) bool { dist[v] = dd; return true },
			})
		}
		log := e.RoundLog()
		e.Close()
		if len(log) != len(ref) {
			t.Fatalf("workers=%d: %d rounds vs %d", workers, len(log), len(ref))
		}
		for i := range log {
			if log[i].Dir != ref[i].Dir || log[i].Frontier != ref[i].Frontier || log[i].Claimed != ref[i].Claimed {
				t.Fatalf("workers=%d round %d: %+v vs reference %+v", workers, i, log[i], ref[i])
			}
		}
	}
}

func TestRoundLogRecordsDirections(t *testing.T) {
	g := lowDiameterGraph()
	e := bsp.NewEngine(g, 4)
	defer e.Close()
	dist := make([]int32, g.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[0] = 0
	e.Seed(0)
	for d := int32(1); e.FrontierLen() > 0; d++ {
		dd := d
		e.Step(bsp.StepSpec{
			Push: func(_ int, u, v graph.NodeID) bool { return atomicCAS32(dist, v, -1, dd) },
			Pull: func(_ int, v, u graph.NodeID) bool { dist[v] = dd; return true },
		})
	}
	stats := e.Stats()
	if stats.PullRounds == 0 || stats.PullRounds == stats.Rounds {
		t.Fatalf("hybrid on G(n,p) should mix directions: %d pull of %d rounds",
			stats.PullRounds, stats.Rounds)
	}
	log := e.RoundLog()
	if len(log) != stats.Rounds {
		t.Fatalf("round log has %d entries for %d rounds", len(log), stats.Rounds)
	}
	pulls := 0
	for _, rs := range log {
		switch rs.Dir {
		case bsp.DirPull:
			pulls++
		case bsp.DirPush:
		default:
			t.Fatalf("round has unset direction: %+v", rs)
		}
	}
	if pulls != stats.PullRounds {
		t.Fatalf("log records %d pull rounds, stats %d", pulls, stats.PullRounds)
	}
	// Reset must drop the trace along with the traversal state.
	e.Reset()
	if len(e.RoundLog()) != 0 {
		t.Fatal("Reset must clear the round log")
	}
}

func TestEngineSeedAndReset(t *testing.T) {
	g := graph.Path(10)
	e := bsp.NewEngine(g, 2)
	defer e.Close()
	if !e.Seed(3) {
		t.Fatal("first Seed must add")
	}
	if e.Seed(3) {
		t.Fatal("second Seed of the same node must be a no-op")
	}
	if e.FrontierLen() != 1 || e.VisitedCount() != 1 {
		t.Fatal("seed bookkeeping wrong")
	}
	e.Reset()
	if e.FrontierLen() != 0 || e.VisitedCount() != 0 {
		t.Fatal("Reset must clear frontier and visited")
	}
	if !e.Seed(3) {
		t.Fatal("Seed after Reset must add again")
	}
}

func TestEngineGatherStepCandidates(t *testing.T) {
	// Star: frontier = {hub}; the candidates must be exactly the leaves
	// (each probed once), and the gather verdict controls the next frontier.
	g := graph.Star(6) // hub 0, leaves 1..5
	e := bsp.NewEngine(g, 2)
	defer e.Close()
	e.SetFrontier([]graph.NodeID{0})
	var calls []graph.NodeID
	rs := e.GatherStep(func(_ int, v graph.NodeID) bool {
		calls = append(calls, v)
		return v%2 == 1
	})
	if len(calls) != 5 {
		t.Fatalf("gather called %d times, want 5 (the leaves)", len(calls))
	}
	seen := map[graph.NodeID]bool{}
	for _, v := range calls {
		if v == 0 || seen[v] {
			t.Fatalf("gather offered %v", calls)
		}
		seen[v] = true
	}
	if rs.Claimed != 3 || e.FrontierLen() != 3 {
		t.Fatalf("odd leaves 1,3,5 should form the next frontier, got %v", e.Frontier())
	}
}

func TestEngineGatherStepDenseFrontierUsesPull(t *testing.T) {
	// With the whole node set in the frontier the gather step must run
	// bottom-up and still offer every non-isolated node exactly once.
	g := graph.Mesh(50, 50)
	e := bsp.NewEngine(g, 4)
	defer e.Close()
	all := make([]graph.NodeID, g.NumNodes())
	for i := range all {
		all[i] = graph.NodeID(i)
	}
	e.SetFrontier(all)
	counts := make([]int32, g.NumNodes())
	rs := e.GatherStep(func(_ int, v graph.NodeID) bool {
		atomicAdd32(counts, v)
		return false
	})
	if rs.Dir != bsp.DirPull {
		t.Fatalf("dense gather ran %v, want pull", rs.Dir)
	}
	for v, c := range counts {
		if c != 1 {
			t.Fatalf("node %d gathered %d times", v, c)
		}
	}
	if e.FrontierLen() != 0 {
		t.Fatal("all-false gather must empty the frontier")
	}
}

func TestBitmapSparseRoundTrip(t *testing.T) {
	const n = 1000
	b := bsp.NewBitmap(n)
	members := []graph.NodeID{0, 1, 63, 64, 65, 127, 500, 999}
	for _, u := range members {
		b.Set(u)
	}
	for _, u := range members {
		if !b.Get(u) {
			t.Fatalf("bit %d lost", u)
		}
	}
	if b.Get(2) || b.Get(998) {
		t.Fatal("spurious bits")
	}
	if b.Count() != len(members) {
		t.Fatalf("count %d want %d", b.Count(), len(members))
	}
	sparse := b.ToSparse(nil)
	if len(sparse) != len(members) {
		t.Fatalf("ToSparse %v", sparse)
	}
	for i, u := range sparse {
		if u != members[i] {
			t.Fatalf("ToSparse order: got %v want %v", sparse, members)
		}
	}
	// Round-trip through FromSparse with sparse clearing of the old set.
	next := []graph.NodeID{7, 64, 900}
	b.FromSparse(next, sparse)
	if b.Count() != len(next) {
		t.Fatalf("after FromSparse count %d want %d", b.Count(), len(next))
	}
	got := b.ToSparse(nil)
	for i, u := range got {
		if u != next[i] {
			t.Fatalf("round trip got %v want %v", got, next)
		}
	}
	if !b.SetAtomic(8) || b.SetAtomic(8) {
		t.Fatal("SetAtomic first-set detection wrong")
	}
}

// Small helpers keeping the closures above terse.

func atomicCAS32(a []int32, i graph.NodeID, old, new int32) bool {
	return atomic.CompareAndSwapInt32(&a[i], old, new)
}

func atomicAdd32(a []int32, i graph.NodeID) {
	atomic.AddInt32(&a[i], 1)
}
