package bsp

// Internal test: relaxPhase is //lint:hotpath (the static hotalloc
// contract), and this pins the runtime half — a steady-state relaxation
// phase performs zero heap allocations once the pooled claim buffers have
// reached their high-water mark. Before PR 10 every phase allocated two
// closures (the chunk body handed to forChunks and forChunks's own
// clearFrom); the phase-field restructuring is what this test protects.

import "testing"

// gridTopo is a w×h 4-neighbor grid with unit-ish weights, enough edges
// to make relaxation do real work.
type gridTopo struct {
	w, h int
	nbr  [][]NodeID
	ws   [][]int32
}

func newGridTopo(w, h int) *gridTopo {
	g := &gridTopo{w: w, h: h, nbr: make([][]NodeID, w*h), ws: make([][]int32, w*h)}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			u := y*w + x
			add := func(v int, wt int32) {
				g.nbr[u] = append(g.nbr[u], NodeID(v))
				g.ws[u] = append(g.ws[u], wt)
			}
			if x+1 < w {
				add(u+1, int32(1+(u%3)))
			}
			if x > 0 {
				add(u-1, int32(1+((u-1)%3)))
			}
			if y+1 < h {
				add(u+w, 2)
			}
			if y > 0 {
				add(u-w, 2)
			}
		}
	}
	return g
}

func (g *gridTopo) NumNodes() int                          { return g.w * g.h }
func (g *gridTopo) Neighbors(u NodeID) ([]NodeID, []int32) { return g.nbr[u], g.ws[u] }

func relaxPhaseAllocs(t *testing.T, workers, w, h int) {
	t.Helper()
	topo := newGridTopo(w, h)
	e := NewWeightedEngine(topo, workers, 2)
	defer e.Close()

	// Settle the whole graph so every slot holds its final word: the
	// measured phases then re-offer every light edge but lower nothing,
	// which is exactly the steady-state shape of a converged bucket.
	dist := make([]int64, topo.NumNodes())
	e.SSSP(0, dist)

	nodes := make([]NodeID, topo.NumNodes())
	for i := range nodes {
		nodes[i] = NodeID(i)
	}
	e.relaxPhase(nodes, nil, false) // warm: pool spun up, buffers at high water

	allocs := testing.AllocsPerRun(20, func() {
		e.relaxPhase(nodes, nil, false)
	})
	if allocs != 0 {
		t.Fatalf("relaxPhase allocated %.1f times per phase at %d workers, want 0", allocs, workers)
	}
}

func TestRelaxPhaseZeroAllocSequential(t *testing.T) {
	// Small enough to stay under seqThreshold: the inline relaxChunk path.
	relaxPhaseAllocs(t, 1, 16, 16)
}

func TestRelaxPhaseZeroAllocParallel(t *testing.T) {
	// Large enough to cross seqThreshold: the pool.Run fan-out path, with
	// the pre-built chunkWorker closure and lazily spun-up pool already
	// warm before measurement.
	relaxPhaseAllocs(t, 4, 64, 48)
}
