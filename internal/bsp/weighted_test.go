package bsp_test

// External test package: importing graph here is fine (graph itself imports
// bsp), and it gives the delta-stepping engine a real CSR topology plus the
// sequential Dijkstra reference to diff against.

import (
	"testing"

	"repro/internal/bsp"
	"repro/internal/graph"
	"repro/internal/rng"
)

func randomWeightedGraph(t *testing.T, g *graph.Graph, seed uint64, maxW int) *graph.Weighted {
	t.Helper()
	edges := g.EdgeList()
	r := rng.New(seed)
	ws := make([]int32, len(edges))
	for i := range ws {
		ws[i] = int32(1 + r.Intn(maxW))
	}
	wg, err := graph.NewWeighted(g.NumNodes(), edges, ws)
	if err != nil {
		t.Fatal(err)
	}
	return wg
}

// TestDeltaSSSPMatchesDijkstra is the core equivalence guarantee: for every
// bucket width and worker count, delta-stepping produces distances
// identical to the sequential Dijkstra reference.
func TestDeltaSSSPMatchesDijkstra(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"mesh":   graph.Mesh(20, 20),
		"gnp":    graph.ErdosRenyi(600, 2400, 3),
		"social": graph.BarabasiAlbert(500, 4, 5),
		"road":   graph.RoadLike(15, 15, 0.4, 7),
	}
	for name, g := range graphs {
		wg := randomWeightedGraph(t, g, 11, 20)
		n := wg.NumNodes()
		srcs := []graph.NodeID{0, graph.NodeID(n / 2), graph.NodeID(n - 1)}
		for _, delta := range []int64{0, 1, 3, 25, 1 << 40} {
			for _, workers := range []int{1, 4, 8} {
				e := bsp.NewWeightedEngine(wg, workers, delta)
				dist := make([]int64, n)
				for _, src := range srcs {
					ecc := e.SSSP(src, dist)
					ref := wg.Dijkstra(src)
					var refEcc int64
					for u := range ref {
						if ref[u] != graph.InfDist && ref[u] > refEcc {
							refEcc = ref[u]
						}
						if dist[u] != ref[u] {
							t.Fatalf("%s delta=%d workers=%d src=%d: dist[%d]=%d want %d",
								name, delta, workers, src, u, dist[u], ref[u])
						}
					}
					if ecc != refEcc {
						t.Fatalf("%s delta=%d workers=%d src=%d: ecc=%d want %d",
							name, delta, workers, src, ecc, refEcc)
					}
				}
				e.Close()
			}
		}
	}
}

func TestDeltaSSSPUnreachable(t *testing.T) {
	// Two components: 0-1-2 and 3-4.
	wg, err := graph.NewWeighted(5,
		[][2]graph.NodeID{{0, 1}, {1, 2}, {3, 4}}, []int32{2, 3, 7})
	if err != nil {
		t.Fatal(err)
	}
	e := bsp.NewWeightedEngine(wg, 2, 0)
	defer e.Close()
	dist := make([]int64, 5)
	if ecc := e.SSSP(0, dist); ecc != 5 {
		t.Fatalf("ecc=%d want 5", ecc)
	}
	if dist[3] != bsp.WInf || dist[4] != bsp.WInf {
		t.Fatalf("other component should be WInf, got %d/%d", dist[3], dist[4])
	}
}

// TestDeltaSSSPStatsDeterministic checks that the weighted cost counters
// (relaxations, buckets, phases) are themselves schedule-independent, since
// the serve layer and benchmarks report them as honest work measures.
func TestDeltaSSSPStatsDeterministic(t *testing.T) {
	wg := randomWeightedGraph(t, graph.ErdosRenyi(800, 4000, 5), 3, 12)
	dist := make([]int64, wg.NumNodes())
	var ref bsp.Stats
	for i, workers := range []int{1, 4, 8} {
		e := bsp.NewWeightedEngine(wg, workers, 4)
		e.SSSP(0, dist)
		st := e.Stats()
		e.Close()
		if st.Relaxations == 0 || st.Buckets == 0 || st.Rounds == 0 {
			t.Fatalf("workers=%d: zero cost counters %+v", workers, st)
		}
		if i == 0 {
			ref = st
		} else if st != ref {
			t.Fatalf("workers=%d: stats %+v diverge from single-worker %+v", workers, st, ref)
		}
	}
}

// TestWeightedEngineGrowVoronoi: a fully drained multi-source growth is the
// weighted Voronoi partition of its sources — every node ends with its true
// shortest distance to the nearest source, ties broken to the smaller
// owner id — regardless of delta or worker count.
func TestWeightedEngineGrowVoronoi(t *testing.T) {
	wg := randomWeightedGraph(t, graph.Mesh(15, 15), 19, 9)
	n := wg.NumNodes()
	sources := []graph.NodeID{3, 77, 140, 220}
	refDist := make([][]int64, len(sources))
	for i, s := range sources {
		refDist[i] = wg.Dijkstra(s)
	}
	for _, delta := range []int64{0, 1, 5} {
		for _, workers := range []int{1, 4} {
			e := bsp.NewWeightedEngine(wg, workers, delta)
			e.GrowInit()
			for i, s := range sources {
				e.AddSource(s, graph.NodeID(i))
			}
			for {
				ok, err := e.ProcessBucket()
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
			}
			dist := make([]int64, n)
			owner := make([]graph.NodeID, n)
			e.Extract(dist, owner)
			for u := 0; u < n; u++ {
				bestD, bestO := int64(1)<<62, graph.NodeID(-1)
				for i := range sources {
					if refDist[i][u] < bestD {
						bestD, bestO = refDist[i][u], graph.NodeID(i)
					}
				}
				if dist[u] != bestD || owner[u] != bestO {
					t.Fatalf("delta=%d workers=%d node %d: got (%d,%d) want (%d,%d)",
						delta, workers, u, dist[u], owner[u], bestD, bestO)
				}
			}
			e.Close()
		}
	}
}

// TestWeightedEngineGrowOverflow: packed 31-bit distances must fail loudly,
// not wrap around.
func TestWeightedEngineGrowOverflow(t *testing.T) {
	// A path of three maximal edges overflows 2^31-1 after two hops.
	w := int32(1<<31 - 1)
	wg, err := graph.NewWeighted(4,
		[][2]graph.NodeID{{0, 1}, {1, 2}, {2, 3}}, []int32{w, w, w})
	if err != nil {
		t.Fatal(err)
	}
	e := bsp.NewWeightedEngine(wg, 1, 0)
	defer e.Close()
	e.GrowInit()
	e.AddSource(0, 0)
	var sawErr bool
	for {
		ok, err := e.ProcessBucket()
		if err != nil {
			sawErr = true
			break
		}
		if !ok {
			break
		}
	}
	if !sawErr {
		t.Fatal("expected ErrDistOverflow")
	}
}
