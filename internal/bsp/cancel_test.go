package bsp_test

// Cancellation semantics of the two engines: a cancelled context stops the
// traversal at the next superstep / bucket barrier, drops the frontier so
// driver loops terminate, and surfaces the cause via Err — without ever
// perturbing the deterministic schedule of an uncancelled run (the checks
// sit at barriers that already exist).

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/bsp"
	"repro/internal/graph"
)

func TestEngineStepHonorsCancelledContext(t *testing.T) {
	g := graph.Mesh(30, 30)
	e := bsp.NewEngine(g, 2)
	defer e.Close()

	ctx, cancel := context.WithCancel(context.Background())
	e.SetContext(ctx)

	dist := make([]int32, g.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[0] = 0
	e.Seed(0)
	var depth atomic.Int32
	spec := bsp.StepSpec{
		Push: func(_ int, u, v graph.NodeID) bool {
			return atomic.CompareAndSwapInt32(&dist[v], -1, depth.Load())
		},
	}
	depth.Store(1)

	// One live round works normally.
	if rs := e.Step(spec); rs.Claimed == 0 {
		t.Fatal("first superstep claimed nothing")
	}
	rounds := e.Stats().Rounds

	// After the cancel, the very next Step is a no-op: no round executed,
	// frontier dropped, Err reports the cause.
	cancel()
	if rs := e.Step(spec); rs.Frontier != 0 || rs.Claimed != 0 || rs.Arcs != 0 {
		t.Fatalf("cancelled Step did work: %+v", rs)
	}
	if got := e.Stats().Rounds; got != rounds {
		t.Fatalf("cancelled Step recorded a round (%d -> %d)", rounds, got)
	}
	if e.FrontierLen() != 0 {
		t.Fatalf("cancelled Step left %d frontier nodes; driver loops would spin", e.FrontierLen())
	}
	if !errors.Is(e.Err(), context.Canceled) {
		t.Fatalf("Err() = %v, want context.Canceled", e.Err())
	}

	// GatherStep obeys the same contract.
	e.SetFrontier([]graph.NodeID{0, 1, 2})
	if rs := e.GatherStep(func(_ int, v graph.NodeID) bool { return true }); rs.Claimed != 0 {
		t.Fatalf("cancelled GatherStep did work: %+v", rs)
	}
	if e.FrontierLen() != 0 {
		t.Fatal("cancelled GatherStep left a frontier")
	}
}

func TestEngineNilContextNeverCancels(t *testing.T) {
	g := graph.Path(50)
	e := bsp.NewEngine(g, 1)
	defer e.Close()
	if e.Err() != nil {
		t.Fatalf("engine without SetContext reports %v", e.Err())
	}
}

func TestWeightedEngineHonorsCancelledContext(t *testing.T) {
	wg := randomWeightedGraph(t, graph.Mesh(20, 20), 7, 10)
	e := bsp.NewWeightedEngine(wg, 2, 0)
	defer e.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e.SetContext(ctx)

	e.GrowInit()
	e.AddSource(0, 0)
	ok, err := e.ProcessBucket()
	if ok {
		t.Fatal("cancelled ProcessBucket reported live work")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ProcessBucket err = %v, want context.Canceled", err)
	}
	if !errors.Is(e.Err(), context.Canceled) {
		t.Fatalf("Err() = %v, want context.Canceled", e.Err())
	}
}

func TestWeightedEngineSSSPStopsAfterCancel(t *testing.T) {
	wg := randomWeightedGraph(t, graph.Mesh(40, 40), 3, 25)

	// A pre-cancelled run terminates immediately and flags itself.
	e := bsp.NewWeightedEngine(wg, 1, 0)
	defer e.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e.SetContext(ctx)
	dist := make([]int64, wg.NumNodes())
	e.SSSP(0, dist)
	if e.Err() == nil {
		t.Fatal("cancelled SSSP left Err() nil")
	}
	reached := 0
	for _, d := range dist {
		if d != bsp.WInf {
			reached++
		}
	}
	// Only the source can have settled; the schedule never ran.
	if reached > 1 {
		t.Fatalf("cancelled SSSP still settled %d nodes", reached)
	}
}
