package core

import (
	"fmt"

	"repro/internal/bsp"
	"repro/internal/graph"
)

// Clustering is the result of a graph decomposition: a partition of the
// nodes into disjoint, internally connected clusters, each grown around a
// center (Section 3 of the paper).
type Clustering struct {
	// G is the decomposed graph.
	G *graph.Graph
	// Owner[u] is the cluster index of node u, in [0, NumClusters()).
	Owner []graph.NodeID
	// Dist[u] is the round at which u was claimed by its cluster — the
	// length of the growth path from the center, an upper bound on (and in
	// the unobstructed case equal to) the distance from u to its center.
	Dist []int32
	// Centers[c] is the node at the center of cluster c.
	Centers []graph.NodeID
	// Radii[c] is the maximum Dist over nodes of cluster c.
	Radii []int32
	// GrowthSteps is the total number of cluster-growing rounds R executed,
	// which governs the round complexity of a distributed execution
	// (Lemma 3).
	GrowthSteps int
	// Batches is the number of center batches that were activated.
	Batches int
	// Stats aggregates BSP substrate costs (rounds, messages).
	Stats bsp.Stats
}

// NumClusters returns the number of clusters.
func (c *Clustering) NumClusters() int { return len(c.Centers) }

// MaxRadius returns the maximum cluster radius R_ALG.
func (c *Clustering) MaxRadius() int32 {
	var r int32
	for _, x := range c.Radii {
		if x > r {
			r = x
		}
	}
	return r
}

// ClusterSizes returns the number of nodes in each cluster.
func (c *Clustering) ClusterSizes() []int {
	sizes := make([]int, c.NumClusters())
	for _, o := range c.Owner {
		sizes[o]++
	}
	return sizes
}

// Validate checks the decomposition invariants promised by the paper:
// every node is covered, clusters are disjoint (trivially true for a
// single Owner array) and internally connected, each center belongs to its
// own cluster at distance 0, Dist is consistent with single-step growth
// (every non-center node has a neighbor in the same cluster at Dist one
// less), and Radii match Dist.
func (c *Clustering) Validate() error {
	n := c.G.NumNodes()
	if len(c.Owner) != n || len(c.Dist) != n {
		return fmt.Errorf("core: owner/dist length mismatch (n=%d)", n)
	}
	k := c.NumClusters()
	if len(c.Radii) != k {
		return fmt.Errorf("core: %d radii for %d clusters", len(c.Radii), k)
	}
	for u := 0; u < n; u++ {
		if c.Owner[u] < 0 || int(c.Owner[u]) >= k {
			return fmt.Errorf("core: node %d uncovered or out of range (owner %d)", u, c.Owner[u])
		}
	}
	for cl, center := range c.Centers {
		if c.Owner[center] != graph.NodeID(cl) {
			return fmt.Errorf("core: center %d not owned by its cluster %d", center, cl)
		}
		if c.Dist[center] != 0 {
			return fmt.Errorf("core: center %d has dist %d", center, c.Dist[center])
		}
	}
	maxDist := make([]int32, k)
	for u := 0; u < n; u++ {
		d := c.Dist[u]
		o := c.Owner[u]
		if d < 0 {
			return fmt.Errorf("core: node %d has negative dist", u)
		}
		if d > maxDist[o] {
			maxDist[o] = d
		}
		if d == 0 {
			if c.Centers[o] != graph.NodeID(u) {
				return fmt.Errorf("core: node %d has dist 0 but is not center of %d", u, o)
			}
			continue
		}
		ok := false
		for _, v := range c.G.Neighbors(graph.NodeID(u)) {
			if c.Owner[v] == o && c.Dist[v] == d-1 {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("core: node %d (cluster %d, dist %d) has no predecessor", u, o, d)
		}
	}
	for cl := 0; cl < k; cl++ {
		if c.Radii[cl] != maxDist[cl] {
			return fmt.Errorf("core: cluster %d radius %d, recomputed %d", cl, c.Radii[cl], maxDist[cl])
		}
	}
	return nil
}

// RadiusUpperBoundHolds verifies Dist[u] is an upper bound on the true
// graph distance from u to its center (they can differ when growth is
// obstructed by other clusters). Used in tests; O(k·m).
func (c *Clustering) RadiusUpperBoundHolds() bool {
	for cl, center := range c.Centers {
		dist := c.G.BFS(center)
		for u := 0; u < c.G.NumNodes(); u++ {
			if c.Owner[u] == graph.NodeID(cl) && dist[u] >= 0 && c.Dist[u] < dist[u] {
				return false
			}
		}
	}
	return true
}
