package core

import (
	"math"

	"repro/internal/bsp"
)

// Options configures the randomized decomposition algorithms.
// The zero value selects paper-faithful defaults.
type Options struct {
	// Seed drives every random choice. Runs with equal seeds produce
	// identical clusterings regardless of the worker count (per-node coins
	// are hash-based, and concurrent claim ties — which the paper allows to
	// be arbitrary — only affect cluster ownership, not coverage rounds).
	Seed uint64

	// Workers is the parallelism of the BSP substrate; non-positive selects
	// runtime.GOMAXPROCS(0).
	Workers int

	// CenterFactor is the constant in the per-batch center selection
	// probability CenterFactor*τ*log n / |uncovered| (the paper uses 4).
	CenterFactor float64

	// ThresholdFactor is the constant in the loop guard
	// |uncovered| >= ThresholdFactor*τ*log n (the paper uses 8).
	ThresholdFactor float64

	// Direction pins the traversal engine's superstep direction. The zero
	// value (bsp.DirAuto) selects the hybrid push/pull switching; DirPush
	// forces the pure top-down baseline (used by the engine-mode
	// benchmarks), DirPull forces bottom-up.
	Direction bsp.Direction

	// Delta overrides the delta-stepping bucket width of the weighted
	// algorithms (WeightedCluster, the oracle's quotient APSP).
	// Non-positive selects the engine's automatic choice, the mean edge
	// weight. The final distances are identical for every delta; only the
	// bucket/phase schedule — and with it the wall-clock — changes.
	Delta int64

	// Observer, when non-nil, is installed on every engine the build
	// creates and receives live progress deltas at superstep/bucket
	// barriers (see bsp.Observer) — the serving layer's window into a
	// running multi-second build. The oracle's APSP fan-out installs it
	// on one engine per worker goroutine, so it MUST be safe for
	// concurrent use. It observes progress only: it has no effect on the
	// computation, and nil (the default) costs one branch per round.
	Observer bsp.Observer
}

func (o Options) withDefaults() Options {
	if o.CenterFactor <= 0 {
		o.CenterFactor = 4
	}
	if o.ThresholdFactor <= 0 {
		o.ThresholdFactor = 8
	}
	return o
}

// log2n returns log2(n) clamped below at 1, the "log n" of the paper's
// pseudocode (base-2 logarithms per its footnote).
func log2n(n int) float64 {
	if n < 2 {
		return 1
	}
	return math.Log2(float64(n))
}
