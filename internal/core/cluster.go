package core

import (
	"context"
	"errors"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Cluster runs the paper's Algorithm 1, CLUSTER(τ): it partitions the nodes
// of g into disjoint connected clusters by growing clusters around batches
// of randomly selected centers. A new batch of roughly 4τ·log n centers is
// activated from the uncovered nodes every time the set of uncovered nodes
// halves; previously activated clusters keep growing throughout. When fewer
// than 8τ·log n nodes remain uncovered, they become singleton clusters.
//
// With high probability the result has O(τ·log²n) clusters whose maximum
// radius is within an O(log n) factor of the best achievable with τ
// clusters (Theorem 1, Lemma 1).
//
// The graph may be disconnected provided τ is at least the number of
// components (Section 3.2); two engineering guards preserve termination on
// any input regardless: a batch ends early if every cluster frontier is
// exhausted, and if a batch samples no centers while no cluster can grow,
// the lowest-id uncovered node is forcibly selected.
func Cluster(g *graph.Graph, tau int, opt Options) (*Clustering, error) {
	//lint:allow background public non-cancellable wrapper; ClusterContext is the cancellable form
	return ClusterContext(context.Background(), g, tau, opt)
}

// ClusterContext is Cluster with cooperative cancellation: the growth
// checks ctx at the existing superstep barriers (between rounds and
// between batches, never inside a round) and returns ctx.Err() within one
// round of a cancel. Cancellation checks never influence the rounds an
// uncancelled run executes, so the result stays bit-for-bit deterministic
// in (seed, tau) across worker counts.
func ClusterContext(ctx context.Context, g *graph.Graph, tau int, opt Options) (*Clustering, error) {
	if tau < 1 {
		return nil, errors.New("core: Cluster requires tau >= 1")
	}
	opt = opt.withDefaults()
	n := g.NumNodes()
	gr := newGrower(g, opt)
	gr.e.SetContext(ctx)

	logn := log2n(n)
	threshold := opt.ThresholdFactor * float64(tau) * logn
	seed := rng.Mix64(opt.Seed, 0xc105_7e12, uint64(tau))

	batches := 0
	var centers []graph.NodeID
	for ctx.Err() == nil && float64(gr.uncovered()) >= threshold {
		uncovered := gr.uncovered()
		p := opt.CenterFactor * float64(tau) * logn / float64(uncovered)
		batch := uint64(batches)
		centers = gr.selectUncovered(centers[:0], func(u graph.NodeID) bool {
			return rng.Coin(p, seed, batch, uint64(u))
		})
		if len(centers) == 0 && gr.frontierLen() == 0 {
			// Guard: nothing can grow and nothing was sampled; force one
			// center so the iteration makes progress.
			for u := 0; u < n; u++ {
				if gr.owner[u] == -1 { //lint:allow plainatomic between-rounds barrier, no writers live
					centers = append(centers, graph.NodeID(u))
					break
				}
			}
		}
		for _, u := range centers {
			gr.addCenter(u)
		}
		batches++

		// Grow all clusters, old and new, until at least half of the nodes
		// that were uncovered at batch start are covered.
		target := (uncovered + 1) / 2
		claimed := len(centers) // centers cover themselves
		for claimed < target {
			got := gr.step()
			if got == 0 {
				break // all frontiers exhausted; activate the next batch
			}
			claimed += got
		}
	}

	if err := ctx.Err(); err != nil {
		gr.abort()
		return nil, err
	}

	// Remaining uncovered nodes become singleton clusters.
	rest := gr.selectUncovered(nil, func(graph.NodeID) bool { return true })
	for _, u := range rest {
		gr.addCenter(u)
	}
	return gr.finish(batches), nil
}
