package core

import (
	"context"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestOracleUpperBoundsTrueDistance(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"mesh":   graph.Mesh(30, 30),
		"social": graph.BarabasiAlbert(1500, 3, 2),
		"road":   graph.RoadLike(25, 25, 0.4, 3),
	} {
		o, err := BuildOracle(context.Background(), g, 2, false, Options{Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		r := rng.New(42)
		n := g.NumNodes()
		for trial := 0; trial < 30; trial++ {
			u := graph.NodeID(r.Intn(n))
			dist := g.BFS(u)
			v := graph.NodeID(r.Intn(n))
			est := o.Query(u, v)
			if est < int64(dist[v]) {
				t.Fatalf("%s: oracle %d below true distance %d for (%d,%d)", name, est, dist[v], u, v)
			}
		}
	}
}

func TestOracleApproximationQuality(t *testing.T) {
	// d'(u,v) = O(d(u,v)·log³n + R_ALG2): check a generous concrete version
	// of that bound on a mesh.
	g := graph.Mesh(40, 40)
	o, err := BuildOracle(context.Background(), g, 2, false, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rMax := int64(o.Clustering().MaxRadius())
	r := rng.New(7)
	n := g.NumNodes()
	for trial := 0; trial < 20; trial++ {
		u := graph.NodeID(r.Intn(n))
		v := graph.NodeID(r.Intn(n))
		d := int64(g.BFS(u)[v])
		est := o.Query(u, v)
		if est > 12*d+4*rMax+4 {
			t.Fatalf("oracle %d too far above true %d (R=%d)", est, d, rMax)
		}
	}
}

func TestOracleIdentityAndSymmetry(t *testing.T) {
	g := graph.Mesh(20, 20)
	o, err := BuildOracle(context.Background(), g, 2, false, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(9)
	for trial := 0; trial < 50; trial++ {
		u := graph.NodeID(r.Intn(g.NumNodes()))
		v := graph.NodeID(r.Intn(g.NumNodes()))
		if o.Query(u, u) != 0 {
			t.Fatal("Query(u,u) != 0")
		}
		if o.Query(u, v) != o.Query(v, u) {
			t.Fatalf("asymmetric oracle: (%d,%d)", u, v)
		}
	}
}

func TestOracleDisconnected(t *testing.T) {
	b := graph.NewBuilder(20)
	for i := 0; i < 9; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	for i := 10; i < 19; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	g := b.Build()
	o, err := BuildOracle(context.Background(), g, 2, false, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if o.Query(0, 15) != graph.InfDist {
		t.Fatal("cross-component query should be InfDist")
	}
	if o.Query(0, 5) == graph.InfDist {
		t.Fatal("same-component query should be finite")
	}
}

func TestOracleCluster2Variant(t *testing.T) {
	g := graph.Mesh(25, 25)
	o, err := BuildOracle(context.Background(), g, 2, true, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	d := int64(g.BFS(0)[g.NumNodes()-1])
	if est := o.Query(0, graph.NodeID(g.NumNodes()-1)); est < d {
		t.Fatalf("cluster2 oracle below true distance: %d < %d", est, d)
	}
}

func TestOracleCapEnforced(t *testing.T) {
	// A path with tau forcing every node into its own cluster exceeds the
	// APSP cap.
	g := graph.Path(maxOracleClusters + 10)
	cl := &Clustering{
		G:       g,
		Owner:   make([]graph.NodeID, g.NumNodes()),
		Dist:    make([]int32, g.NumNodes()),
		Centers: make([]graph.NodeID, g.NumNodes()),
		Radii:   make([]int32, g.NumNodes()),
	}
	for i := range cl.Owner {
		cl.Owner[i] = graph.NodeID(i)
		cl.Centers[i] = graph.NodeID(i)
	}
	if _, err := OracleFromClustering(context.Background(), cl, Options{}); err == nil {
		t.Fatal("oracle cap should reject huge quotient graphs")
	}
}

func TestOracleFanOutMatchesSequentialBuild(t *testing.T) {
	// The fan-out of the per-cluster APSP searches must not change a single
	// table entry: every row is identical to the sequential Dijkstra+BFS
	// build at every worker count.
	g := graph.RoadLike(25, 25, 0.4, 13)
	cl, err := Cluster(g, 2, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := OracleFromClustering(context.Background(), cl, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	k := ref.NumClusters()
	for _, workers := range []int{4, 8} {
		o, err := OracleFromClustering(context.Background(), cl, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if o.APSPStats() != ref.APSPStats() {
			t.Fatalf("workers=%d: APSP stats %+v diverge from %+v", workers, o.APSPStats(), ref.APSPStats())
		}
		for c := 0; c < k; c++ {
			for d := 0; d < k; d++ {
				if o.APSP()[c][d] != ref.APSP()[c][d] || o.Hops()[c][d] != ref.Hops()[c][d] {
					t.Fatalf("workers=%d: table entry (%d,%d) diverged", workers, c, d)
				}
			}
		}
	}
}

func TestOracleLowerQueryBoundsTruth(t *testing.T) {
	g := graph.Mesh(25, 25)
	o, err := BuildOracle(context.Background(), g, 2, false, Options{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(31)
	n := g.NumNodes()
	for trial := 0; trial < 30; trial++ {
		u := graph.NodeID(r.Intn(n))
		v := graph.NodeID(r.Intn(n))
		truth := int64(g.BFS(u)[v])
		lo := o.LowerQuery(u, v)
		hi := o.Query(u, v)
		if lo > truth {
			t.Fatalf("lower bound %d exceeds true distance %d for (%d,%d)", lo, truth, u, v)
		}
		if lo > hi {
			t.Fatalf("lower bound %d exceeds upper bound %d", lo, hi)
		}
	}
	if o.LowerQuery(3, 3) != 0 {
		t.Fatal("LowerQuery(u,u) != 0")
	}
}

func TestOracleLowerQueryDisconnected(t *testing.T) {
	b := graph.NewBuilder(10)
	for i := 0; i < 4; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	for i := 5; i < 9; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	o, err := BuildOracle(context.Background(), b.Build(), 2, false, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if o.LowerQuery(0, 8) != graph.InfDist {
		t.Fatal("cross-component lower bound should be InfDist")
	}
}

func TestOracleFlatAccessorsConsistent(t *testing.T) {
	// APSP()/Hops() are row views over the flat storage: every (c, d)
	// entry must equal the flat array at c*k+d, and the views must alias
	// (not copy) the same memory APSPFlat/HopsFlat return.
	g := graph.RoadLike(20, 20, 0.4, 21)
	o, err := BuildOracle(context.Background(), g, 2, false, Options{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	k := o.NumClusters()
	apsp, hops := o.APSP(), o.Hops()
	flatA, flatH := o.APSPFlat(), o.HopsFlat()
	if len(flatA) != k*k || len(flatH) != k*k {
		t.Fatalf("flat tables %d/%d entries, want %d", len(flatA), len(flatH), k*k)
	}
	for c := 0; c < k; c++ {
		if len(apsp[c]) != k || len(hops[c]) != k {
			t.Fatalf("row %d has %d/%d columns, want %d", c, len(apsp[c]), len(hops[c]), k)
		}
		if &apsp[c][0] != &flatA[c*k] || &hops[c][0] != &flatH[c*k] {
			t.Fatalf("row %d does not alias the flat storage", c)
		}
		for d := 0; d < k; d++ {
			if apsp[c][d] != flatA[c*k+d] || hops[c][d] != flatH[c*k+d] {
				t.Fatalf("entry (%d,%d) differs between row view and flat table", c, d)
			}
		}
	}
}

func TestQueryBatchMatchesQuery(t *testing.T) {
	// The batch path must answer exactly what Query answers pair by pair,
	// including u==v, same-cluster, cross-cluster, and cross-component
	// (InfDist) pairs.
	b := graph.NewBuilder(900 + 20)
	mesh := graph.Mesh(30, 30)
	xadj, adj := mesh.CSR()
	for u := 0; u < 900; u++ {
		for _, v := range adj[xadj[u]:xadj[u+1]] {
			if graph.NodeID(u) < v {
				b.AddEdge(graph.NodeID(u), v)
			}
		}
	}
	for i := 900; i < 919; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	g := b.Build()
	o, err := BuildOracle(context.Background(), g, 2, false, Options{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(17)
	n := g.NumNodes()
	pairs := make([][2]graph.NodeID, 0, 512)
	for i := 0; i < 500; i++ {
		pairs = append(pairs, [2]graph.NodeID{graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n))})
	}
	pairs = append(pairs,
		[2]graph.NodeID{5, 5},     // identity
		[2]graph.NodeID{0, 905},   // cross-component
		[2]graph.NodeID{905, 910}, // inside the path component
	)
	out := make([]int64, len(pairs))
	o.QueryBatchInto(pairs, out)
	for i, p := range pairs {
		if want := o.Query(p[0], p[1]); out[i] != want {
			t.Fatalf("pair %d (%d,%d): batch %d != point %d", i, p[0], p[1], out[i], want)
		}
	}
}

func TestQueryBatchZeroAllocs(t *testing.T) {
	// The pinned guarantee of the batch-first query path: answering a
	// warm batch allocates nothing — not per pair, not per call.
	g := graph.Mesh(30, 30)
	o, err := BuildOracle(context.Background(), g, 2, false, Options{Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(23)
	n := g.NumNodes()
	pairs := make([][2]graph.NodeID, 4096)
	for i := range pairs {
		pairs[i] = [2]graph.NodeID{graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n))}
	}
	out := make([]int64, len(pairs))
	allocs := testing.AllocsPerRun(50, func() {
		o.QueryBatchInto(pairs, out)
	})
	if allocs != 0 {
		t.Fatalf("QueryBatchInto allocated %.1f times per call, want 0", allocs)
	}
}

func TestDefaultOracleTau(t *testing.T) {
	if DefaultOracleTau(100) < 1 {
		t.Fatal("tau must be >= 1")
	}
	if DefaultOracleTau(1<<30) < 1 {
		t.Fatal("tau must stay positive for large n")
	}
	// sqrt(n)/log⁴n only exceeds 1 for astronomically large n.
	if DefaultOracleTau(1<<60) < 2 {
		t.Fatal("tau should grow for huge n")
	}
}
