package core

import (
	"context"
	"testing"

	"repro/internal/graph"
)

func checkDiameterBounds(t *testing.T, name string, g *graph.Graph, opt DiameterOptions) *DiameterResult {
	t.Helper()
	res, err := ApproxDiameter(context.Background(), g, opt)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	truth, exact := g.ExactDiameter(0)
	if !exact {
		t.Fatalf("%s: could not certify true diameter", name)
	}
	if !res.Exact {
		t.Fatalf("%s: quotient diameters not exact", name)
	}
	if res.DeltaC > int64(truth) {
		t.Errorf("%s: lower bound ∆C=%d exceeds true diameter %d", name, res.DeltaC, truth)
	}
	if res.Upper < int64(truth) {
		t.Errorf("%s: upper bound ∆″=%d below true diameter %d", name, res.Upper, truth)
	}
	if res.Upper > res.UpperLoose {
		t.Errorf("%s: ∆″=%d exceeds ∆′=%d", name, res.Upper, res.UpperLoose)
	}
	return res
}

func TestApproxDiameterBounds(t *testing.T) {
	for name, g := range testGraphs() {
		checkDiameterBounds(t, name, g, DiameterOptions{Options: Options{Seed: 1}})
	}
}

func TestApproxDiameterCluster2Bounds(t *testing.T) {
	g := graph.Mesh(40, 40)
	checkDiameterBounds(t, "mesh-cluster2", g, DiameterOptions{
		Options:     Options{Seed: 2},
		UseCluster2: true,
	})
}

func TestApproxDiameterQualityOnLongDiameterGraphs(t *testing.T) {
	// The paper observes ∆′/∆ < 2 on all benchmarks (Table 3), with the
	// ratio shrinking on sparse long-diameter graphs. Allow a little slack
	// for the scaled-down instances.
	for name, g := range map[string]*graph.Graph{
		"mesh": graph.Mesh(60, 60),
		"road": graph.RoadLike(50, 50, 0.4, 3),
	} {
		res, err := ApproxDiameter(context.Background(), g, DiameterOptions{Options: Options{Seed: 3}})
		if err != nil {
			t.Fatal(err)
		}
		truth, _ := g.ExactDiameter(0)
		ratio := float64(res.Upper) / float64(truth)
		if ratio >= 2.5 {
			t.Errorf("%s: ∆″/∆ = %.2f, want < 2.5 (paper observes < 2)", name, ratio)
		}
		if ratio < 1 {
			t.Errorf("%s: ratio %.2f below 1 — not an upper bound", name, ratio)
		}
	}
}

func TestApproxDiameterInsensitiveToGranularity(t *testing.T) {
	// Table 3: the approximation quality does not depend on the clustering
	// granularity. Compare coarse vs fine on the same graph.
	g := graph.RoadLike(40, 40, 0.4, 4)
	truth, _ := g.ExactDiameter(0)
	for _, tau := range []int{1, 8} {
		res, err := ApproxDiameter(context.Background(), g, DiameterOptions{Options: Options{Seed: 5}, Tau: tau})
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(res.Upper) / float64(truth)
		if ratio >= 3 {
			t.Errorf("tau=%d: ratio %.2f too large", tau, ratio)
		}
	}
}

func TestApproxDiameterRoundsSublinearInDiameter(t *testing.T) {
	// The whole point: on long-diameter graphs the number of growth rounds
	// is much smaller than ∆ (which is what BFS/HADI need).
	g := graph.Mesh(80, 80) // diameter 158
	res, err := ApproxDiameter(context.Background(), g, DiameterOptions{Options: Options{Seed: 6}, Tau: 16})
	if err != nil {
		t.Fatal(err)
	}
	truth, _ := g.ExactDiameter(0)
	if int64(res.Stats.Rounds) >= int64(truth)/2 {
		t.Errorf("clustering rounds %d not sublinear in diameter %d", res.Stats.Rounds, truth)
	}
}

func TestApproxDiameterDefaults(t *testing.T) {
	g := graph.BarabasiAlbert(3000, 3, 7)
	res, err := ApproxDiameter(context.Background(), g, DiameterOptions{Options: Options{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Quotient.NumNodes() != res.Clustering.NumClusters() {
		t.Fatal("quotient size mismatch")
	}
	if res.Elapsed <= 0 {
		t.Fatal("elapsed time not recorded")
	}
}

func TestApproxDiameterEmptyGraph(t *testing.T) {
	if _, err := ApproxDiameter(context.Background(), graph.NewBuilder(0).Build(), DiameterOptions{}); err == nil {
		t.Fatal("empty graph should fail")
	}
}

func TestApproxDiameterSingleNode(t *testing.T) {
	res, err := ApproxDiameter(context.Background(), graph.Path(1), DiameterOptions{Options: Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeltaC != 0 || res.Upper != 0 {
		t.Fatalf("single node: ∆C=%d ∆″=%d want 0,0", res.DeltaC, res.Upper)
	}
}

func TestDiameterFromClusteringReuse(t *testing.T) {
	g := graph.Mesh(30, 30)
	cl, err := Cluster(g, 4, Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := DiameterFromClustering(cl, 0)
	if err != nil {
		t.Fatal(err)
	}
	truth, _ := g.ExactDiameter(0)
	if res.DeltaC > int64(truth) || res.Upper < int64(truth) {
		t.Fatalf("bounds [%d, %d] do not bracket %d", res.DeltaC, res.Upper, truth)
	}
}

func TestApproxDiameterSparsified(t *testing.T) {
	// Force sparsification with a tiny threshold; the upper bound must stay
	// certified (and at most a constant looser than the unsparsified one).
	g := graph.Mesh(40, 40)
	plain, err := ApproxDiameter(context.Background(), g, DiameterOptions{Options: Options{Seed: 9}, Tau: 8})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := ApproxDiameter(context.Background(), g, DiameterOptions{
		Options: Options{Seed: 9}, Tau: 8, SparsifyThreshold: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sp.Sparsified {
		t.Fatal("threshold 10 should have triggered sparsification")
	}
	truth, _ := g.ExactDiameter(0)
	if sp.Upper < int64(truth) {
		t.Fatalf("sparsified upper %d below true %d", sp.Upper, truth)
	}
	// 3-spanner stretch: the weighted quotient diameter grows by at most 3x,
	// so Upper = 2R + ∆'C grows by at most 3x too.
	if sp.Upper > 3*plain.Upper {
		t.Fatalf("sparsified upper %d more than 3x plain %d", sp.Upper, plain.Upper)
	}
	if sp.WeightedQuotient.NumEdges() > plain.WeightedQuotient.NumEdges() {
		t.Fatal("spanner did not remove any quotient edge")
	}
	// The lower bound must be unaffected (computed on the full quotient).
	if sp.DeltaC != plain.DeltaC {
		t.Fatalf("sparsification changed the lower bound: %d vs %d", sp.DeltaC, plain.DeltaC)
	}
}

func TestApproxDiameterSparsifyThresholdNotReached(t *testing.T) {
	g := graph.Mesh(20, 20)
	res, err := ApproxDiameter(context.Background(), g, DiameterOptions{
		Options: Options{Seed: 10}, Tau: 2, SparsifyThreshold: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sparsified {
		t.Fatal("huge threshold should not trigger sparsification")
	}
}

func TestDefaultDiameterTau(t *testing.T) {
	if DefaultDiameterTau(10) < 1 {
		t.Fatal("tau must be at least 1")
	}
	if DefaultDiameterTau(1_000_000) <= DefaultDiameterTau(1000) {
		t.Fatal("tau should grow with n")
	}
}
