package core

import (
	"context"
	"testing"

	"repro/internal/gonzalez"
	"repro/internal/graph"
)

func TestKCenterBasic(t *testing.T) {
	g := graph.Mesh(30, 30)
	res, err := KCenter(context.Background(), g, 20, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) == 0 || len(res.Centers) > 20 {
		t.Fatalf("got %d centers, want 1..20", len(res.Centers))
	}
	// Radius is the exact objective; it must dominate the optimum, which
	// itself is at least ~sqrt(area/k)/something; just sanity check bounds.
	if res.Radius <= 0 || res.Radius > 58 {
		t.Fatalf("radius %d outside (0, diameter]", res.Radius)
	}
}

func TestKCenterMatchesEvalCenters(t *testing.T) {
	g := graph.RoadLike(25, 25, 0.4, 2)
	res, err := KCenter(context.Background(), g, 12, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	r, err := EvalCenters(g, res.Centers)
	if err != nil {
		t.Fatal(err)
	}
	if r != res.Radius {
		t.Fatalf("reported radius %d, recomputed %d", res.Radius, r)
	}
}

func TestKCenterCompetitiveWithGonzalez(t *testing.T) {
	// Theorem 2 promises O(log³n); empirically the paper's algorithm is far
	// better. Require within 8x of the 2-approximation baseline across
	// graph families (a deliberately loose bound to keep the test stable
	// across seeds).
	for name, g := range map[string]*graph.Graph{
		"mesh":   graph.Mesh(35, 35),
		"road":   graph.RoadLike(30, 30, 0.4, 5),
		"social": graph.BarabasiAlbert(2000, 4, 6),
	} {
		k := 25
		res, err := KCenter(context.Background(), g, k, Options{Seed: 7})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		_, base, err := gonzalez.KCenter(g, k, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if base > 0 && res.Radius > 8*base {
			t.Errorf("%s: CLUSTER k-center radius %d vs Gonzalez %d (over 8x)", name, res.Radius, base)
		}
	}
}

func TestKCenterMergePathTriggers(t *testing.T) {
	// Small k forces tau=1 which still yields O(log²n) clusters > k, so the
	// spanning-forest merge must run and still respect the budget.
	g := graph.Mesh(40, 40)
	res, err := KCenter(context.Background(), g, 5, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Merged {
		t.Skip("decomposition returned <= k clusters; merge not exercised at this seed")
	}
	if len(res.Centers) > 5 {
		t.Fatalf("merge produced %d centers, budget 5", len(res.Centers))
	}
}

func TestKCenterErrors(t *testing.T) {
	if _, err := KCenter(context.Background(), graph.Path(5), 0, Options{}); err == nil {
		t.Fatal("k=0 should fail")
	}
	if _, err := KCenter(context.Background(), graph.NewBuilder(0).Build(), 1, Options{}); err == nil {
		t.Fatal("empty graph should fail")
	}
}

func TestKCenterDisconnectedInfeasible(t *testing.T) {
	b := graph.NewBuilder(10)
	for i := 0; i < 4; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	for i := 5; i < 9; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	g := b.Build()
	if _, err := KCenter(context.Background(), g, 1, Options{Seed: 1}); err == nil {
		t.Fatal("k=1 on a 2-component graph should fail")
	}
}

func TestKCenterDisconnectedFeasible(t *testing.T) {
	b := graph.NewBuilder(40)
	for i := 0; i < 19; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	for i := 20; i < 39; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	g := b.Build()
	res, err := KCenter(context.Background(), g, 6, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) > 6 {
		t.Fatalf("%d centers exceed k", len(res.Centers))
	}
}

func TestEvalCentersErrors(t *testing.T) {
	g := graph.Path(5)
	if _, err := EvalCenters(g, nil); err == nil {
		t.Fatal("empty center set should fail")
	}
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1) // 2, 3 isolated
	if _, err := EvalCenters(b.Build(), []graph.NodeID{0}); err == nil {
		t.Fatal("unreachable node should fail")
	}
}

func TestEvalCentersExact(t *testing.T) {
	g := graph.Path(10)
	r, err := EvalCenters(g, []graph.NodeID{0})
	if err != nil {
		t.Fatal(err)
	}
	if r != 9 {
		t.Fatalf("radius %d want 9", r)
	}
	r, err = EvalCenters(g, []graph.NodeID{0, 9})
	if err != nil {
		t.Fatal(err)
	}
	if r != 4 {
		t.Fatalf("radius %d want 4", r)
	}
}

func TestTauForTargetClusters(t *testing.T) {
	g := graph.Mesh(50, 50)
	tau, cl, err := TauForTargetClusters(g, 150, 0.3, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if tau < 1 {
		t.Fatalf("tau=%d", tau)
	}
	k := cl.NumClusters()
	if k < 75 || k > 300 {
		t.Fatalf("target 150 clusters, got %d (tau=%d)", k, tau)
	}
}

func TestTauForTargetClustersErrors(t *testing.T) {
	if _, _, err := TauForTargetClusters(graph.Path(10), 0, 0.1, Options{}); err == nil {
		t.Fatal("target 0 should fail")
	}
}
