package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/bsp"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Weighted-graph extension. The paper's Section 7 names the extension to
// weighted graphs as its main open problem and sketches the shape of the
// answer: a decomposition that, besides the number of clusters and their
// weighted radius, also controls their *hop* radius, because the hop radius
// is what governs the parallel depth of the computation. WeightedCluster
// realizes that sketch with the same batch schedule as CLUSTER(τ): a new
// batch of centers activates every time the uncovered set halves, all
// clusters grow one hop per BSP round, and a node is claimed by the
// incoming claim of smallest weighted distance within its round (ties by
// cluster id, so the outcome is deterministic). The hop radius of every
// cluster is bounded by the number of rounds its batch has been active, and
// the weighted distance recorded for each node is the length of an actual
// center-to-node path, hence a certified upper bound.

// WeightedClustering is a partition of a weighted graph into disjoint,
// internally connected clusters.
type WeightedClustering struct {
	// G is the decomposed graph.
	G *graph.Weighted
	// Owner[u] is the cluster index of u.
	Owner []graph.NodeID
	// HopDist[u] is the round at which u was claimed (hop distance bound).
	HopDist []int32
	// WDist[u] is the weighted length of the growth path from the center.
	WDist []int64
	// Centers[c] is the center node of cluster c.
	Centers []graph.NodeID
	// WRadii[c] is the maximum WDist within cluster c.
	WRadii []int64
	// HopRadii[c] is the maximum HopDist within cluster c.
	HopRadii []int32
	// GrowthSteps is the number of BSP rounds (the parallel depth).
	GrowthSteps int
	// Stats aggregates substrate costs.
	Stats bsp.Stats
}

// NumClusters returns the number of clusters.
func (c *WeightedClustering) NumClusters() int { return len(c.Centers) }

// MaxWeightedRadius returns the maximum weighted radius.
func (c *WeightedClustering) MaxWeightedRadius() int64 {
	var r int64
	for _, x := range c.WRadii {
		if x > r {
			r = x
		}
	}
	return r
}

// MaxHopRadius returns the maximum hop radius.
func (c *WeightedClustering) MaxHopRadius() int32 {
	var r int32
	for _, x := range c.HopRadii {
		if x > r {
			r = x
		}
	}
	return r
}

// Validate checks the partition invariants: full coverage, centers at
// distance zero, and every non-center node claimed through an incident
// edge from a same-cluster node one hop closer with consistent weighted
// distance.
func (c *WeightedClustering) Validate() error {
	n := c.G.NumNodes()
	if len(c.Owner) != n || len(c.HopDist) != n || len(c.WDist) != n {
		return errors.New("core: weighted clustering arrays mismatched")
	}
	k := c.NumClusters()
	for cl, center := range c.Centers {
		if c.Owner[center] != graph.NodeID(cl) || c.WDist[center] != 0 || c.HopDist[center] != 0 {
			return fmt.Errorf("core: center %d of cluster %d inconsistent", center, cl)
		}
	}
	for u := 0; u < n; u++ {
		o := c.Owner[u]
		if o < 0 || int(o) >= k {
			return fmt.Errorf("core: node %d uncovered", u)
		}
		if c.HopDist[u] == 0 {
			if c.Centers[o] != graph.NodeID(u) {
				return fmt.Errorf("core: node %d has hop 0 but is not a center", u)
			}
			continue
		}
		nbrs, ws := c.G.Neighbors(graph.NodeID(u))
		ok := false
		for i, v := range nbrs {
			if c.Owner[v] == o && c.HopDist[v] == c.HopDist[u]-1 &&
				c.WDist[v]+int64(ws[i]) == c.WDist[u] {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("core: node %d has no consistent predecessor", u)
		}
	}
	return nil
}

// WeightedCluster decomposes the weighted graph wg into disjoint clusters
// with the CLUSTER(τ) batch schedule, claiming contended nodes by minimum
// weighted distance within each hop round.
func WeightedCluster(wg *graph.Weighted, tau int, opt Options) (*WeightedClustering, error) {
	if tau < 1 {
		return nil, errors.New("core: WeightedCluster requires tau >= 1")
	}
	opt = opt.withDefaults()
	n := wg.NumNodes()
	if n == 0 {
		return nil, errors.New("core: WeightedCluster on empty graph")
	}
	workers := bsp.Workers(opt.Workers)
	seed := rng.Mix64(opt.Seed, 0x3e19_77ed, uint64(tau))

	owner := make([]graph.NodeID, n)
	hop := make([]int32, n)
	wdist := make([]int64, n)
	for i := range owner {
		owner[i] = -1
	}
	var centers []graph.NodeID
	var frontier []graph.NodeID
	covered := 0
	steps := 0
	var stats bsp.Stats

	addCenter := func(u graph.NodeID) {
		id := graph.NodeID(len(centers))
		centers = append(centers, u)
		owner[u] = id
		hop[u] = 0
		wdist[u] = 0
		frontier = append(frontier, u)
		covered++
	}

	type claim struct {
		node  graph.NodeID
		owner graph.NodeID
		wd    int64
		hop   int32
	}
	claimBufs := make([][]claim, workers)

	// step advances all clusters one hop: workers gather candidate claims,
	// then a deterministic sequential merge keeps the (minimum weighted
	// distance, minimum cluster id) claim per node.
	step := func() int {
		if len(frontier) == 0 {
			return 0
		}
		if len(frontier) > stats.MaxFrontier {
			stats.MaxFrontier = len(frontier)
		}
		bsp.ParallelFor(workers, len(frontier), func(w, lo, hi int) {
			buf := claimBufs[w][:0]
			for _, u := range frontier[lo:hi] {
				nbrs, ws := wg.Neighbors(u)
				nh := hop[u] + 1
				for i, v := range nbrs {
					if owner[v] == -1 {
						buf = append(buf, claim{v, owner[u], wdist[u] + int64(ws[i]), nh})
					}
				}
			}
			claimBufs[w] = buf
		})
		var arcs int64
		for _, u := range frontier {
			arcs += int64(wg.Degree(u))
		}
		// Deterministic resolution: smallest (wd, owner) claim wins.
		all := claimBufs[0]
		for w := 1; w < workers; w++ {
			all = append(all, claimBufs[w]...)
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].node != all[j].node {
				return all[i].node < all[j].node
			}
			if all[i].wd != all[j].wd {
				return all[i].wd < all[j].wd
			}
			return all[i].owner < all[j].owner
		})
		frontier = frontier[:0]
		for i, c := range all {
			if i > 0 && c.node == all[i-1].node {
				continue
			}
			owner[c.node] = c.owner
			hop[c.node] = c.hop
			wdist[c.node] = c.wd
			frontier = append(frontier, c.node)
		}
		claimBufs[0] = all[:0] // reuse the merged buffer next round
		covered += len(frontier)
		stats.Rounds++
		stats.Messages += arcs
		steps++
		return len(frontier)
	}

	logn := log2n(n)
	threshold := opt.ThresholdFactor * float64(tau) * logn
	batch := 0
	for float64(n-covered) >= threshold {
		uncovered := n - covered
		p := opt.CenterFactor * float64(tau) * logn / float64(uncovered)
		selected := 0
		for u := 0; u < n; u++ {
			if owner[u] == -1 && rng.Coin(p, seed, uint64(batch), uint64(u)) {
				addCenter(graph.NodeID(u))
				selected++
			}
		}
		if selected == 0 && len(frontier) == 0 {
			for u := 0; u < n; u++ {
				if owner[u] == -1 {
					addCenter(graph.NodeID(u))
					selected++
					break
				}
			}
		}
		batch++
		target := (uncovered + 1) / 2
		got := selected // fresh centers cover themselves
		for got < target {
			c := step()
			if c == 0 {
				break
			}
			got += c
		}
	}
	for u := 0; u < n; u++ {
		if owner[u] == -1 {
			addCenter(graph.NodeID(u))
		}
	}

	wc := &WeightedClustering{
		G:           wg,
		Owner:       owner,
		HopDist:     hop,
		WDist:       wdist,
		Centers:     centers,
		WRadii:      make([]int64, len(centers)),
		HopRadii:    make([]int32, len(centers)),
		GrowthSteps: steps,
		Stats:       stats,
	}
	for u := 0; u < n; u++ {
		o := owner[u]
		if wdist[u] > wc.WRadii[o] {
			wc.WRadii[o] = wdist[u]
		}
		if hop[u] > wc.HopRadii[o] {
			wc.HopRadii[o] = hop[u]
		}
	}
	return wc, nil
}

// WeightedDiameterResult carries the weighted diameter bounds.
type WeightedDiameterResult struct {
	Clustering *WeightedClustering
	Quotient   *graph.Weighted
	// Upper is 2·maxWRadius + ∆'C, a certified upper bound on the weighted
	// diameter.
	Upper int64
	// LowerHint is the weighted quotient diameter ∆'C, which is itself an
	// upper bound on the center-to-center diameter but not a certified
	// lower bound on ∆ (unlike the unweighted ∆C); it is reported for
	// inspection.
	LowerHint int64
	Exact     bool
	Stats     bsp.Stats
}

// ApproxDiameterWeighted estimates the weighted diameter of a connected
// weighted graph through a WeightedCluster decomposition and its quotient,
// extending the Section 4 pipeline to weighted graphs.
func ApproxDiameterWeighted(wg *graph.Weighted, tau int, opt Options) (*WeightedDiameterResult, error) {
	if tau <= 0 {
		tau = defaultDiameterTau(wg.NumNodes())
	}
	wc, err := WeightedCluster(wg, tau, opt)
	if err != nil {
		return nil, err
	}
	k := wc.NumClusters()
	// Weighted quotient: min over crossing edges of WDist[a]+w+WDist[b].
	minW := make(map[uint64]int64)
	for u := graph.NodeID(0); int(u) < wg.NumNodes(); u++ {
		nbrs, ws := wg.Neighbors(u)
		for i, v := range nbrs {
			if u >= v || wc.Owner[u] == wc.Owner[v] {
				continue
			}
			a, b := wc.Owner[u], wc.Owner[v]
			if a > b {
				a, b = b, a
			}
			key := uint64(uint32(a))<<32 | uint64(uint32(b))
			w := wc.WDist[u] + int64(ws[i]) + wc.WDist[v]
			if cur, ok := minW[key]; !ok || w < cur {
				minW[key] = w
			}
		}
	}
	edges := make([][2]graph.NodeID, 0, len(minW))
	weights := make([]int32, 0, len(minW))
	for key, w := range minW {
		a := graph.NodeID(key >> 32)
		b := graph.NodeID(uint32(key))
		edges = append(edges, [2]graph.NodeID{a, b})
		if w > int64(1<<30) {
			w = 1 << 30 // clamp pathological weights to keep int32 edges
		}
		weights = append(weights, int32(w))
	}
	q := graph.NewWeighted(k, edges, weights)
	diamQ, exact := q.ExactDiameterWeighted(0)
	return &WeightedDiameterResult{
		Clustering: wc,
		Quotient:   q,
		Upper:      2*wc.MaxWeightedRadius() + diamQ,
		LowerHint:  diamQ,
		Exact:      exact,
		Stats:      wc.Stats,
	}, nil
}
