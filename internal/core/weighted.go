package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/bsp"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Weighted-graph extension. The paper's Section 7 names the extension to
// weighted graphs as its main open problem and sketches the shape of the
// answer: a decomposition that, besides the number of clusters and their
// weighted radius, also controls their *hop* radius, because the hop radius
// is what governs the parallel depth of the computation. WeightedCluster
// realizes that sketch with the same batch schedule as CLUSTER(τ) — a new
// batch of centers activates every time the covered set halves the
// remainder — but grows all active clusters concurrently on the
// delta-stepping bsp.WeightedEngine: cluster growth is a multi-source
// shortest-path computation, advanced one distance bucket at a time, with
// contended nodes resolved by an atomic min-reduction on (weighted
// distance, cluster id). A node counts as covered once the bucket holding
// its final distance settles, which is when the batch schedule observes it.
// After the last batch the growth drains to its fixpoint, so every covered
// node ends at its exact weighted distance to the nearest activated center
// (ties to the smaller cluster id) — the weighted Voronoi partition of the
// selected centers — and the recorded distance is the length of an actual
// center-to-node path, hence certified. The hop distances are recovered
// from the shortest-path forest afterwards; every cluster's hop radius is
// bounded by the number of relaxation phases (GrowthSteps), preserving the
// parallel-depth control the Section 7 sketch asks for.

// WeightedClustering is a partition of a weighted graph into disjoint,
// internally connected clusters.
type WeightedClustering struct {
	// G is the decomposed graph.
	G *graph.Weighted
	// Owner[u] is the cluster index of u.
	Owner []graph.NodeID
	// HopDist[u] is the hop length of u's growth path: the fewest edges on
	// a same-cluster path from the center realizing WDist[u].
	HopDist []int32
	// WDist[u] is the weighted length of the growth path from the center.
	WDist []int64
	// Centers[c] is the center node of cluster c.
	Centers []graph.NodeID
	// WRadii[c] is the maximum WDist within cluster c.
	WRadii []int64
	// HopRadii[c] is the maximum HopDist within cluster c.
	HopRadii []int32
	// GrowthSteps is the number of relaxation phases (the parallel depth).
	GrowthSteps int
	// Stats aggregates substrate costs (relaxations, buckets, phases).
	Stats bsp.Stats
}

// NumClusters returns the number of clusters.
func (c *WeightedClustering) NumClusters() int { return len(c.Centers) }

// MaxWeightedRadius returns the maximum weighted radius.
func (c *WeightedClustering) MaxWeightedRadius() int64 {
	var r int64
	for _, x := range c.WRadii {
		if x > r {
			r = x
		}
	}
	return r
}

// MaxHopRadius returns the maximum hop radius.
func (c *WeightedClustering) MaxHopRadius() int32 {
	var r int32
	for _, x := range c.HopRadii {
		if x > r {
			r = x
		}
	}
	return r
}

// Validate checks the partition invariants: full coverage, centers at
// distance zero, and every non-center node claimed through an incident
// edge from a same-cluster node one hop closer with consistent weighted
// distance.
func (c *WeightedClustering) Validate() error {
	n := c.G.NumNodes()
	if len(c.Owner) != n || len(c.HopDist) != n || len(c.WDist) != n {
		return errors.New("core: weighted clustering arrays mismatched")
	}
	k := c.NumClusters()
	for cl, center := range c.Centers {
		if c.Owner[center] != graph.NodeID(cl) || c.WDist[center] != 0 || c.HopDist[center] != 0 {
			return fmt.Errorf("core: center %d of cluster %d inconsistent", center, cl)
		}
	}
	for u := 0; u < n; u++ {
		o := c.Owner[u]
		if o < 0 || int(o) >= k {
			return fmt.Errorf("core: node %d uncovered", u)
		}
		if c.HopDist[u] == 0 {
			if c.Centers[o] != graph.NodeID(u) {
				return fmt.Errorf("core: node %d has hop 0 but is not a center", u)
			}
			continue
		}
		nbrs, ws := c.G.Neighbors(graph.NodeID(u))
		ok := false
		for i, v := range nbrs {
			if c.Owner[v] == o && c.HopDist[v] == c.HopDist[u]-1 &&
				c.WDist[v]+int64(ws[i]) == c.WDist[u] {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("core: node %d has no consistent predecessor", u)
		}
	}
	return nil
}

// WeightedCluster decomposes the weighted graph wg into disjoint clusters
// with the CLUSTER(τ) batch schedule, growing all active clusters
// concurrently via parallel delta-stepping; contended nodes resolve to the
// minimum (weighted distance, cluster id) claim. The result is
// deterministic for a given seed: identical centers, owners, and radii at
// every worker count.
func WeightedCluster(wg *graph.Weighted, tau int, opt Options) (*WeightedClustering, error) {
	//lint:allow background public non-cancellable wrapper; WeightedClusterContext is the cancellable form
	return WeightedClusterContext(context.Background(), wg, tau, opt)
}

// WeightedClusterContext is WeightedCluster with cooperative cancellation:
// the growth checks ctx at the existing bucket barriers and returns
// ctx.Err() within one relaxation phase of a cancel. The checks never
// influence the bucket schedule of an uncancelled run, preserving the
// bit-for-bit worker-count determinism.
func WeightedClusterContext(ctx context.Context, wg *graph.Weighted, tau int, opt Options) (*WeightedClustering, error) {
	if tau < 1 {
		return nil, errors.New("core: WeightedCluster requires tau >= 1")
	}
	opt = opt.withDefaults()
	n := wg.NumNodes()
	if n == 0 {
		return nil, errors.New("core: WeightedCluster on empty graph")
	}
	seed := rng.Mix64(opt.Seed, 0x3e19_77ed, uint64(tau))

	e := bsp.NewWeightedEngine(wg, opt.Workers, opt.Delta)
	defer e.Close()
	e.SetContext(ctx)
	e.SetObserver(opt.Observer)
	e.GrowInit()

	var centers []graph.NodeID
	addCenter := func(u graph.NodeID) {
		e.AddSource(u, graph.NodeID(len(centers)))
		centers = append(centers, u)
	}

	// Batch schedule: like CLUSTER(τ), a new center batch activates every
	// time the covered set halves the remainder. Coverage is settled
	// coverage — tentative claims sitting in unprocessed buckets do not
	// count, and such nodes remain eligible as centers (a fresh center's
	// distance-zero claim overrides any tentative one).
	logn := log2n(n)
	threshold := opt.ThresholdFactor * float64(tau) * logn
	batch := 0
	for ctx.Err() == nil && float64(n-e.SettledCount()) >= threshold {
		uncovered := n - e.SettledCount()
		p := opt.CenterFactor * float64(tau) * logn / float64(uncovered)
		selected := 0
		for u := 0; u < n; u++ {
			if !e.Settled(graph.NodeID(u)) && rng.Coin(p, seed, uint64(batch), uint64(u)) {
				addCenter(graph.NodeID(u))
				selected++
			}
		}
		if selected == 0 && !e.HasPending() {
			// Nothing active can make progress: force one center.
			for u := 0; u < n; u++ {
				if !e.Settled(graph.NodeID(u)) {
					addCenter(graph.NodeID(u))
					selected++
					break
				}
			}
		}
		batch++
		target := (uncovered + 1) / 2
		base := e.SettledCount() - selected // fresh centers cover themselves
		for e.SettledCount()-base < target {
			ok, err := e.ProcessBucket()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
		}
	}
	// Drain: let the active clusters grow to their Voronoi fixpoint, so
	// every reachable node's distance is exact and every claim chain is
	// consistent. Whatever remains (other components) becomes singletons.
	for {
		ok, err := e.ProcessBucket()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
	}
	for u := 0; u < n; u++ {
		if !e.Settled(graph.NodeID(u)) {
			addCenter(graph.NodeID(u))
		}
	}

	owner := make([]graph.NodeID, n)
	wdist := make([]int64, n)
	e.Extract(wdist, owner)
	hop, err := hopDistances(wg, owner, wdist, centers)
	if err != nil {
		return nil, err
	}

	stats := e.Stats()
	wc := &WeightedClustering{
		G:           wg,
		Owner:       owner,
		HopDist:     hop,
		WDist:       wdist,
		Centers:     centers,
		WRadii:      make([]int64, len(centers)),
		HopRadii:    make([]int32, len(centers)),
		GrowthSteps: stats.Rounds,
		Stats:       stats,
	}
	for u := 0; u < n; u++ {
		o := owner[u]
		if wdist[u] > wc.WRadii[o] {
			wc.WRadii[o] = wdist[u]
		}
		if hop[u] > wc.HopRadii[o] {
			wc.HopRadii[o] = hop[u]
		}
	}
	return wc, nil
}

// hopDistances recovers per-node hop distances along the shortest-path
// forest of a settled growth: scanning nodes by increasing weighted
// distance, every non-center node takes 1 + the minimum hop among its
// consistent predecessors (same owner, WDist[pred] + w == WDist[node]).
// Such a predecessor always exists — every winning claim is a relaxation
// of a predecessor's final distance — so a miss is an internal error.
func hopDistances(wg *graph.Weighted, owner []graph.NodeID, wdist []int64, centers []graph.NodeID) ([]int32, error) {
	n := wg.NumNodes()
	hop := make([]int32, n)
	order := make([]graph.NodeID, n)
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	sort.Slice(order, func(i, j int) bool {
		if wdist[order[i]] != wdist[order[j]] {
			return wdist[order[i]] < wdist[order[j]]
		}
		return order[i] < order[j]
	})
	for _, u := range order {
		if centers[owner[u]] == u {
			hop[u] = 0
			continue
		}
		nbrs, ws := wg.Neighbors(u)
		best := int32(-1)
		for i, v := range nbrs {
			if owner[v] == owner[u] && wdist[v]+int64(ws[i]) == wdist[u] {
				if h := hop[v] + 1; best < 0 || h < best {
					best = h
				}
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("core: node %d has no growth predecessor (internal error)", u)
		}
		hop[u] = best
	}
	return hop, nil
}

// WeightedDiameterResult carries the weighted diameter bounds.
type WeightedDiameterResult struct {
	Clustering *WeightedClustering
	Quotient   *graph.Weighted
	// Upper is 2·maxWRadius + ∆'C, a certified upper bound on the weighted
	// diameter.
	Upper int64
	// LowerHint is the weighted quotient diameter ∆'C, which is itself an
	// upper bound on the center-to-center diameter but not a certified
	// lower bound on ∆ (unlike the unweighted ∆C); it is reported for
	// inspection.
	LowerHint int64
	Exact     bool
	Stats     bsp.Stats
}

// ApproxDiameterWeighted estimates the weighted diameter of a connected
// weighted graph through a WeightedCluster decomposition and its quotient,
// extending the Section 4 pipeline to weighted graphs. Both stages — the
// multi-source growth and the quotient's iFUB Dijkstra replacement — run
// on the parallel delta-stepping engine.
func ApproxDiameterWeighted(wg *graph.Weighted, tau int, opt Options) (*WeightedDiameterResult, error) {
	if tau <= 0 {
		tau = DefaultDiameterTau(wg.NumNodes())
	}
	wc, err := WeightedCluster(wg, tau, opt)
	if err != nil {
		return nil, err
	}
	k := wc.NumClusters()
	// Weighted quotient: min over crossing edges of WDist[a]+w+WDist[b].
	minW := make(map[uint64]int64)
	for u := graph.NodeID(0); int(u) < wg.NumNodes(); u++ {
		nbrs, ws := wg.Neighbors(u)
		for i, v := range nbrs {
			if u >= v || wc.Owner[u] == wc.Owner[v] {
				continue
			}
			a, b := wc.Owner[u], wc.Owner[v]
			if a > b {
				a, b = b, a
			}
			key := uint64(uint32(a))<<32 | uint64(uint32(b))
			w := wc.WDist[u] + int64(ws[i]) + wc.WDist[v]
			if cur, ok := minW[key]; !ok || w < cur {
				minW[key] = w
			}
		}
	}
	// Emit the quotient edges in sorted key order: adjacency order feeds
	// graph.NewWeighted, so map iteration here would leak nondeterminism
	// into the quotient traversal.
	keys := make([]uint64, 0, len(minW))
	//lint:allow mapiter keys are sorted immediately below
	for key := range minW {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	edges := make([][2]graph.NodeID, 0, len(minW))
	weights := make([]int32, 0, len(minW))
	for _, key := range keys {
		w := minW[key]
		a := graph.NodeID(key >> 32)
		b := graph.NodeID(uint32(key))
		edges = append(edges, [2]graph.NodeID{a, b})
		if w > int64(1<<30) {
			w = 1 << 30 // clamp pathological weights to keep int32 edges
		}
		weights = append(weights, int32(w))
	}
	q, err := graph.NewWeighted(k, edges, weights)
	if err != nil {
		return nil, err
	}
	diamQ, exact := q.ExactDiameterWeighted(0)
	return &WeightedDiameterResult{
		Clustering: wc,
		Quotient:   q,
		Upper:      2*wc.MaxWeightedRadius() + diamQ,
		LowerHint:  diamQ,
		Exact:      exact,
		Stats:      wc.Stats,
	}, nil
}
