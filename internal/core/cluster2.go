package core

import (
	"context"
	"errors"
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Cluster2 runs the paper's Algorithm 2, CLUSTER2(τ): it first runs
// CLUSTER(τ) to learn the maximum cluster radius R_ALG, then recomputes a
// decomposition in log n iterations where iteration i selects each
// uncovered node as a center with probability 2^i/n and grows every active
// cluster for exactly 2·R_ALG rounds.
//
// The lower bound on growing steps per iteration is what Theorem 3 needs to
// bound the number of clusters intersecting any shortest path, making the
// quotient-graph diameter approximation factor independent of the number of
// clusters. With high probability the result has O(τ·log⁴n) clusters of
// maximum radius at most 2·R_ALG·log n (Lemma 2).
func Cluster2(g *graph.Graph, tau int, opt Options) (*Clustering, error) {
	//lint:allow background public non-cancellable wrapper; Cluster2Context is the cancellable form
	return Cluster2Context(context.Background(), g, tau, opt)
}

// Cluster2Context is Cluster2 with cooperative cancellation, checking ctx
// at the same superstep barriers as ClusterContext in both phases.
func Cluster2Context(ctx context.Context, g *graph.Graph, tau int, opt Options) (*Clustering, error) {
	pre, err := ClusterContext(ctx, g, tau, opt)
	if err != nil {
		return nil, err
	}
	return cluster2With(ctx, g, pre.MaxRadius(), opt)
}

// Cluster2WithRadius runs the second phase of CLUSTER2 with a caller-
// supplied radius bound (e.g. a cached R_ALG from a previous run).
func Cluster2WithRadius(g *graph.Graph, rAlg int32, opt Options) (*Clustering, error) {
	if rAlg < 0 {
		return nil, errors.New("core: negative radius bound")
	}
	//lint:allow background public non-cancellable wrapper over cluster2With
	return cluster2With(context.Background(), g, rAlg, opt)
}

func cluster2With(ctx context.Context, g *graph.Graph, rAlg int32, opt Options) (*Clustering, error) {
	opt = opt.withDefaults()
	n := g.NumNodes()
	gr := newGrower(g, opt)
	gr.e.SetContext(ctx)
	seed := rng.Mix64(opt.Seed, 0xc105_7e22, uint64(rAlg))

	iters := int(math.Ceil(log2n(n)))
	if iters < 1 {
		iters = 1
	}
	var centers []graph.NodeID
	batches := 0
	for i := 1; i <= iters && gr.uncovered() > 0 && ctx.Err() == nil; i++ {
		p := math.Pow(2, float64(i)) / float64(n)
		if i == iters {
			p = 1 // final iteration covers every remaining node
		}
		it := uint64(i)
		centers = gr.selectUncovered(centers[:0], func(u graph.NodeID) bool {
			return rng.Coin(p, seed, it, uint64(u))
		})
		for _, u := range centers {
			gr.addCenter(u)
		}
		batches++
		for s := int32(0); s < 2*rAlg; s++ {
			if gr.step() == 0 {
				break
			}
		}
	}
	if err := ctx.Err(); err != nil {
		gr.abort()
		return nil, err
	}
	return gr.finish(batches), nil
}
