package core

import (
	"context"
	"errors"
	"math"
	"time"

	"repro/internal/bsp"
	"repro/internal/graph"
	"repro/internal/quotient"
	"repro/internal/spanner"
)

// DiameterOptions configures the decomposition-based diameter estimator of
// Section 4.
type DiameterOptions struct {
	Options

	// Tau is the granularity parameter of the underlying decomposition:
	// larger values yield more clusters, a bigger quotient graph, and
	// (typically) fewer growth rounds. If zero, a default targeting a
	// quotient of about sqrt(n) nodes is used.
	Tau int

	// UseCluster2 selects the theory-faithful pipeline: CLUSTER2 with its
	// lower-bounded growth (the path analyzed by Theorem 3 / Corollary 1).
	// The default false uses plain CLUSTER, the simplification the paper's
	// own experiments adopt (Section 6.2).
	UseCluster2 bool

	// ExactBudget caps the number of BFS/Dijkstra searches used to compute
	// the quotient graph diameters exactly (0 = unlimited). If the budget
	// is exhausted, the reported quotient diameters are lower bounds and
	// DiameterResult.Exact is false.
	ExactBudget int

	// SparsifyThreshold, when positive, triggers the Theorem 4
	// sparsification: if the weighted quotient graph has more edges than
	// this (i.e. exceeds the reducers' local memory in the MR reading), it
	// is replaced by a Baswana–Sen 3-spanner before its diameter is
	// computed. The spanner only lengthens quotient distances (it is a
	// subgraph), so the reported upper bound remains certified; it loosens
	// by at most the constant stretch factor.
	SparsifyThreshold int
}

// DiameterResult carries the diameter estimate and everything the paper's
// Tables 3 and 4 report about a run.
type DiameterResult struct {
	// Clustering is the decomposition the estimate was derived from.
	Clustering *Clustering
	// Quotient is the unweighted quotient graph (nC nodes, mC edges).
	Quotient *graph.Graph
	// WeightedQuotient carries shortest-crossing-path edge weights.
	WeightedQuotient *graph.Weighted
	// RMax is the maximum cluster radius (R_ALG, or R_ALG2 with CLUSTER2).
	RMax int32
	// DeltaC is the (hop) diameter of the unweighted quotient graph, a
	// lower bound on the true diameter ∆.
	DeltaC int64
	// DeltaCWeighted is the diameter ∆′C of the weighted quotient graph.
	DeltaCWeighted int64
	// UpperLoose is ∆′ = 2·RMax·(∆C + 1) + ∆C, the upper bound of
	// Corollary 1 (unweighted variant).
	UpperLoose int64
	// Upper is ∆″ = 2·RMax + ∆′C ≤ ∆′, the tighter weighted-variant upper
	// bound that the paper's experiments report as the estimate ∆′.
	Upper int64
	// Exact reports whether the quotient diameters were certified exact
	// (see DiameterOptions.ExactBudget).
	Exact bool
	// Sparsified reports whether the weighted quotient was replaced by a
	// Baswana–Sen spanner before the upper bound was computed
	// (DiameterOptions.SparsifyThreshold).
	Sparsified bool
	// Stats aggregates the BSP cost of the clustering phase.
	Stats bsp.Stats
	// Elapsed is the wall-clock time of the whole estimation.
	Elapsed time.Duration
}

// ApproxDiameter estimates the diameter of the connected graph g by
// decomposing it, building the quotient graph of the clustering, and
// computing the quotient diameter(s). It returns certified lower and upper
// bounds DeltaC ≤ ∆ ≤ Upper; with high probability Upper = O(∆·log³n)
// (Corollary 1), and in practice Upper/∆ < 2 (Section 6.2). Cancelling ctx
// aborts the build — in the clustering phase or between the quotient
// diameter searches — and returns ctx.Err().
func ApproxDiameter(ctx context.Context, g *graph.Graph, opt DiameterOptions) (*DiameterResult, error) {
	start := time.Now() //lint:allow walltime accounting-only: Elapsed never influences the bounds
	n := g.NumNodes()
	if n == 0 {
		return nil, errors.New("core: diameter of empty graph")
	}
	tau := opt.Tau
	if tau <= 0 {
		tau = DefaultDiameterTau(n)
	}

	var (
		cl  *Clustering
		err error
	)
	if opt.UseCluster2 {
		cl, err = Cluster2Context(ctx, g, tau, opt.Options)
	} else {
		cl, err = ClusterContext(ctx, g, tau, opt.Options)
	}
	if err != nil {
		return nil, err
	}
	res, err := diameterFromClustering(ctx, cl, opt.ExactBudget, opt.SparsifyThreshold, opt.Seed)
	if err != nil {
		return nil, err
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// DiameterFromClustering derives the diameter bounds from an existing
// decomposition (the clustering phase dominates the cost; this entry point
// lets experiments reuse one clustering for several analyses).
func DiameterFromClustering(cl *Clustering, exactBudget int) (*DiameterResult, error) {
	//lint:allow background public non-cancellable wrapper over diameterFromClustering
	return diameterFromClustering(context.Background(), cl, exactBudget, 0, 0)
}

func diameterFromClustering(ctx context.Context, cl *Clustering, exactBudget, sparsifyThreshold int, seed uint64) (*DiameterResult, error) {
	q, wq, err := quotient.BuildWeighted(cl.G, cl.Owner, cl.Dist, cl.NumClusters())
	if err != nil {
		return nil, err
	}
	sparsified := false
	if sparsifyThreshold > 0 && wq.NumEdges() > sparsifyThreshold {
		// Only the upper-bound path may use the spanner: spanner distances
		// dominate the original quotient distances, so 2R + ∆'C(spanner)
		// is still a certified upper bound (at most a constant looser).
		// The lower bound ∆C needs the full quotient topology — a spanner
		// hop count can exceed the corresponding G-distance.
		sp, err := spanner.BaswanaSen(wq, 2, seed)
		if err != nil {
			return nil, err
		}
		wq = sp
		sparsified = true
	}
	rMax := cl.MaxRadius()

	deltaC, exact1, err := q.ExactDiameterContext(ctx, exactBudget)
	if err != nil {
		return nil, err
	}
	deltaCW, exact2, err := wq.ExactDiameterWeightedContext(ctx, exactBudget)
	if err != nil {
		return nil, err
	}

	res := &DiameterResult{
		Clustering:       cl,
		Quotient:         q,
		WeightedQuotient: wq,
		RMax:             rMax,
		DeltaC:           int64(deltaC),
		DeltaCWeighted:   deltaCW,
		UpperLoose:       2*int64(rMax)*(int64(deltaC)+1) + int64(deltaC),
		Upper:            2*int64(rMax) + deltaCW,
		Exact:            exact1 && exact2,
		Sparsified:       sparsified,
		Stats:            cl.Stats,
	}
	if res.Upper > res.UpperLoose {
		// ∆″ ≤ ∆′ holds when the quotient diameters are exact; under a
		// truncated search both are still valid upper bounds, keep the
		// smaller.
		res.Upper = res.UpperLoose
	}
	return res, nil
}

// DefaultDiameterTau returns the paper default granularity for diameter
// estimation over an n-node graph, yielding a quotient graph of roughly
// sqrt(n) clusters: CLUSTER returns O(τ·log²n) clusters, so
// τ ≈ sqrt(n)/log²n (at least 1). Exported so the serving layer can
// resolve parameter-less requests to the same artifact key an explicit
// request for the default would use.
func DefaultDiameterTau(n int) int {
	logn := log2n(n)
	tau := int(math.Sqrt(float64(n)) / (logn * logn))
	if tau < 1 {
		tau = 1
	}
	return tau
}
