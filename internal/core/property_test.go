package core

import (
	"context"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/quotient"
	"repro/internal/rng"
)

// Property-based tests over randomized inputs: the decomposition invariants
// must hold for every graph, tau and seed, not just the curated cases.

// randomConnected builds a small random connected graph from a seed.
func randomConnected(seed uint64) *graph.Graph {
	r := rng.New(seed)
	n := 30 + r.Intn(120)
	m := n + r.Intn(3*n)
	g := graph.ErdosRenyi(n, m, seed)
	b := graph.NewBuilder(n)
	g.Edges(func(u, v graph.NodeID) bool { b.AddEdge(u, v); return true })
	perm := r.Perm(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(graph.NodeID(perm[i]), graph.NodeID(perm[i+1]))
	}
	return b.Build()
}

func TestPropertyClusterAlwaysValidPartition(t *testing.T) {
	f := func(seed uint64, tauRaw uint8) bool {
		tau := 1 + int(tauRaw%8)
		g := randomConnected(seed)
		cl, err := Cluster(g, tau, Options{Seed: seed})
		if err != nil {
			return false
		}
		return cl.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCluster2AlwaysValidPartition(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomConnected(seed)
		cl, err := Cluster2(g, 2, Options{Seed: seed})
		if err != nil {
			return false
		}
		return cl.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDiameterBoundsAlwaysBracket(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomConnected(seed)
		res, err := ApproxDiameter(context.Background(), g, DiameterOptions{Options: Options{Seed: seed}, Tau: 2})
		if err != nil {
			return false
		}
		truth, exact := g.ExactDiameter(0)
		if !exact {
			return false
		}
		return res.DeltaC <= int64(truth) && res.Upper >= int64(truth) &&
			res.Upper <= res.UpperLoose
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyQuotientDiameterNeverExceedsGraphDiameter(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomConnected(seed)
		cl, err := Cluster(g, 2, Options{Seed: seed})
		if err != nil {
			return false
		}
		q, err := quotient.Build(g, cl.Owner, cl.NumClusters())
		if err != nil {
			return false
		}
		qd, _ := q.ExactDiameter(0)
		gd, _ := g.ExactDiameter(0)
		return qd <= gd
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyKCenterRadiusAtLeastOptimalHalfGonzalez(t *testing.T) {
	// The exact objective value can never beat half the Gonzalez radius
	// (Gonzalez is a 2-approximation, so OPT >= gonzalez/2).
	f := func(seed uint64) bool {
		g := randomConnected(seed)
		k := 2 + int(seed%5)
		res, err := KCenter(context.Background(), g, k, Options{Seed: seed})
		if err != nil {
			return false
		}
		return 2*int64(res.Radius) >= 0 && len(res.Centers) <= k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyOracleSandwich(t *testing.T) {
	// LowerQuery <= true distance <= Query for random graphs and pairs.
	f := func(seed uint64) bool {
		g := randomConnected(seed)
		o, err := BuildOracle(context.Background(), g, 1, false, Options{Seed: seed})
		if err != nil {
			return false
		}
		r := rng.New(seed ^ 0x0c11e)
		for trial := 0; trial < 5; trial++ {
			u := graph.NodeID(r.Intn(g.NumNodes()))
			dist := g.BFS(u)
			v := graph.NodeID(r.Intn(g.NumNodes()))
			d := int64(dist[v])
			if o.LowerQuery(u, v) > d || o.Query(u, v) < d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyWeightedClusterValid(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomConnected(seed)
		edges := g.EdgeList()
		r := rng.New(seed ^ 0x77)
		ws := make([]int32, len(edges))
		for i := range ws {
			ws[i] = int32(1 + r.Intn(9))
		}
		wg := graph.MustWeighted(g.NumNodes(), edges, ws)
		wc, err := WeightedCluster(wg, 2, Options{Seed: seed})
		if err != nil {
			return false
		}
		return wc.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
