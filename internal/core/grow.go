package core

import (
	"sync/atomic"

	"repro/internal/bsp"
	"repro/internal/graph"
)

// grower is the shared engine for disjoint parallel cluster growing: it
// maintains the ownership and distance arrays and advances all active
// clusters one synchronous BSP round at a time on the direction-optimizing
// traversal engine. CLUSTER and CLUSTER2 (and the package mpx, via its own
// variant) are thin drivers around it.
type grower struct {
	g       *graph.Graph
	e       *bsp.Engine
	owner   []int32 // cluster index per node; -1 = uncovered
	dist    []int32
	centers []graph.NodeID
	covered int
	steps   int
}

//lint:allow plainatomic construction: worker pool has no work yet
func newGrower(g *graph.Graph, opt Options) *grower {
	n := g.NumNodes()
	gr := &grower{
		g:     g,
		e:     bsp.NewEngine(g, opt.Workers),
		owner: make([]int32, n),
		dist:  make([]int32, n),
	}
	gr.e.SetDirection(opt.Direction)
	gr.e.SetObserver(opt.Observer)
	for i := range gr.owner {
		gr.owner[i] = -1
	}
	return gr
}

func (gr *grower) uncovered() int { return gr.g.NumNodes() - gr.covered }

func (gr *grower) frontierLen() int { return gr.e.FrontierLen() }

// addCenter makes u the center of a fresh singleton cluster and returns the
// cluster index. u must be uncovered. Not safe for concurrent use: centers
// are added between growth rounds, matching the algorithm structure.
//
//lint:allow plainatomic between-rounds barrier phase, no concurrent writers
func (gr *grower) addCenter(u graph.NodeID) int {
	if gr.owner[u] != -1 {
		panic("core: addCenter on covered node")
	}
	id := len(gr.centers)
	gr.centers = append(gr.centers, u)
	gr.owner[u] = int32(id)
	gr.dist[u] = 0
	gr.e.Seed(u)
	gr.covered++
	return id
}

// step grows every active cluster by one round and returns the number of
// newly covered nodes. Top-down rounds have each frontier node claim its
// uncovered neighbors (CAS, arbitrary winner under contention, as the
// paper allows); bottom-up rounds have each uncovered node adopt its first
// frontier neighbor in adjacency order — deterministic, so the pull
// direction strengthens the schedule-independence of the round.
func (gr *grower) step() int {
	owner, dist := gr.owner, gr.dist
	rs := gr.e.Step(bsp.StepSpec{
		Push: func(_ int, u, v graph.NodeID) bool {
			// owner[u] is stable (set in an earlier round), but read it
			// atomically: other workers issue CAS attempts on arbitrary
			// elements of the array, and mixed atomic/non-atomic access to
			// the same address would trip the race detector.
			o := atomic.LoadInt32(&owner[u])
			if atomic.CompareAndSwapInt32(&owner[v], -1, o) {
				dist[v] = dist[u] + 1
				return true
			}
			return false
		},
		Pull: func(_ int, v, u graph.NodeID) bool {
			// v is owned by exactly this worker and u's state is stable, so
			// plain writes suffice in the pull direction.
			owner[v] = owner[u] //lint:allow plainatomic pull direction: v is worker-owned, u stable (see comment)
			dist[v] = dist[u] + 1
			return true
		},
	})
	if rs.Frontier == 0 {
		return 0
	}
	gr.steps++
	gr.covered += rs.Claimed
	return rs.Claimed
}

// selectUncovered appends to dst every uncovered node u for which pick(u)
// is true, scanning in parallel (on the engine's persistent pool) but
// returning nodes in ascending id order so center numbering is
// deterministic.
//
//lint:allow plainatomic read-only scan between growth rounds, no writers live
func (gr *grower) selectUncovered(dst []graph.NodeID, pick func(u graph.NodeID) bool) []graph.NodeID {
	n := gr.g.NumNodes()
	w := gr.e.NumWorkers()
	parts := make([][]graph.NodeID, w)
	gr.e.For(n, func(worker, lo, hi int) {
		var local []graph.NodeID
		for u := lo; u < hi; u++ {
			if gr.owner[u] == -1 && pick(graph.NodeID(u)) {
				local = append(local, graph.NodeID(u))
			}
		}
		parts[worker] = local
	})
	for _, p := range parts {
		dst = append(dst, p...)
	}
	return dst
}

// abort releases the engine's worker pool without producing a clustering —
// the exit path of a cancelled build, which must not leak pool goroutines.
func (gr *grower) abort() { gr.e.Close() }

// finish freezes the grower into a Clustering, computing per-cluster radii,
// and releases the engine's worker pool.
//
//lint:allow plainatomic growth complete and pool closed, ownership final
func (gr *grower) finish(batches int) *Clustering {
	n := gr.g.NumNodes()
	c := &Clustering{
		G:           gr.g,
		Owner:       make([]graph.NodeID, n),
		Dist:        gr.dist,
		Centers:     gr.centers,
		Radii:       make([]int32, len(gr.centers)),
		GrowthSteps: gr.steps,
		Batches:     batches,
		Stats:       gr.e.Stats(),
	}
	gr.e.Close()
	for u := 0; u < n; u++ {
		c.Owner[u] = graph.NodeID(gr.owner[u])
		if gr.owner[u] >= 0 && gr.dist[u] > c.Radii[gr.owner[u]] {
			c.Radii[gr.owner[u]] = gr.dist[u]
		}
	}
	return c
}
