package core

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func TestCluster2PartitionValid(t *testing.T) {
	for name, g := range testGraphs() {
		cl, err := Cluster2(g, 4, Options{Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := cl.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestCluster2RadiusBound(t *testing.T) {
	// A cluster activated at iteration i grows 2·R_ALG steps in each of the
	// remaining iterations, so R_ALG2 <= 2·R_ALG·ceil(log n) always holds
	// structurally (Lemma 2 gives the sharper whp bound).
	g := graph.Mesh(50, 50)
	pre, err := Cluster(g, 4, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rAlg := pre.MaxRadius()
	cl2, err := Cluster2WithRadius(g, rAlg, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	iters := int32(math.Ceil(math.Log2(float64(g.NumNodes()))))
	if cl2.MaxRadius() > 2*rAlg*iters {
		t.Fatalf("R_ALG2=%d exceeds 2·R_ALG·log n = %d", cl2.MaxRadius(), 2*rAlg*iters)
	}
}

func TestCluster2CoversEverything(t *testing.T) {
	g := graph.RoadLike(30, 30, 0.35, 4)
	cl, err := Cluster2(g, 2, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for u, o := range cl.Owner {
		if o < 0 {
			t.Fatalf("node %d uncovered", u)
		}
	}
}

func TestCluster2WithRadiusZero(t *testing.T) {
	// Degenerate radius bound: no growth at all, every node ends up a
	// singleton by the final all-select iteration.
	g := graph.Path(40)
	cl, err := Cluster2WithRadius(g, 0, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if cl.NumClusters() != 40 {
		t.Fatalf("expected all singletons, got %d clusters", cl.NumClusters())
	}
	if err := cl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCluster2RejectsNegativeRadius(t *testing.T) {
	if _, err := Cluster2WithRadius(graph.Path(5), -1, Options{}); err == nil {
		t.Fatal("negative radius should fail")
	}
}

func TestCluster2ClusterCountWithinLemma2Bound(t *testing.T) {
	// Lemma 2: O(τ·log⁴n) clusters with high probability. (This is only an
	// upper bound — with generous 2·R_ALG growth per iteration CLUSTER2
	// often returns far fewer clusters than CLUSTER does.)
	g := graph.Mesh(45, 45)
	tau := 4
	c2, err := Cluster2(g, tau, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	logn := math.Log2(float64(g.NumNodes()))
	bound := 4 * float64(tau) * logn * logn * logn * logn
	if float64(c2.NumClusters()) > bound {
		t.Fatalf("CLUSTER2 gave %d clusters, beyond 4·τ·log⁴n = %.0f", c2.NumClusters(), bound)
	}
	if c2.NumClusters() < 1 {
		t.Fatal("no clusters")
	}
}
