package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func randomWeighted(t *testing.T, g *graph.Graph, seed uint64, maxW int) *graph.Weighted {
	t.Helper()
	edges := g.EdgeList()
	r := rng.New(seed)
	ws := make([]int32, len(edges))
	for i := range ws {
		ws[i] = int32(1 + r.Intn(maxW))
	}
	return graph.MustWeighted(g.NumNodes(), edges, ws)
}

func TestWeightedClusterPartitionValid(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"mesh":   graph.Mesh(30, 30),
		"road":   graph.RoadLike(25, 25, 0.4, 2),
		"social": graph.BarabasiAlbert(1500, 4, 3),
	} {
		wg := randomWeighted(t, g, 7, 9)
		wc, err := WeightedCluster(wg, 4, Options{Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := wc.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestWeightedClusterErrors(t *testing.T) {
	wg := randomWeighted(t, graph.Path(5), 1, 3)
	if _, err := WeightedCluster(wg, 0, Options{}); err == nil {
		t.Fatal("tau=0 should fail")
	}
	if _, err := WeightedCluster(graph.MustWeighted(0, nil, nil), 1, Options{}); err == nil {
		t.Fatal("empty graph should fail")
	}
}

func TestWeightedClusterWDistUpperBoundsTrueDistance(t *testing.T) {
	g := graph.Mesh(20, 20)
	wg := randomWeighted(t, g, 9, 5)
	wc, err := WeightedCluster(wg, 4, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// WDist records the length of an actual growth path, hence an upper
	// bound on the true weighted distance to the center.
	for c, center := range wc.Centers {
		dist := wg.Dijkstra(center)
		for u := 0; u < wg.NumNodes(); u++ {
			if wc.Owner[u] == graph.NodeID(c) && wc.WDist[u] < dist[u] {
				t.Fatalf("WDist[%d]=%d below true %d", u, wc.WDist[u], dist[u])
			}
		}
	}
}

func TestWeightedClusterHopRadiusBoundsDepth(t *testing.T) {
	g := graph.RoadLike(25, 25, 0.4, 5)
	wg := randomWeighted(t, g, 11, 4)
	wc, err := WeightedCluster(wg, 8, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The parallel depth is the number of growth rounds, which dominates
	// every cluster's hop radius.
	if int(wc.MaxHopRadius()) > wc.GrowthSteps {
		t.Fatalf("hop radius %d exceeds growth steps %d", wc.MaxHopRadius(), wc.GrowthSteps)
	}
}

func TestWeightedClusterUnitWeightsMatchShape(t *testing.T) {
	// With unit weights the weighted decomposition behaves like CLUSTER:
	// hop and weighted radii coincide.
	g := graph.Mesh(25, 25)
	edges := g.EdgeList()
	ws := make([]int32, len(edges))
	for i := range ws {
		ws[i] = 1
	}
	wg := graph.MustWeighted(g.NumNodes(), edges, ws)
	wc, err := WeightedCluster(wg, 4, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if int64(wc.MaxHopRadius()) != wc.MaxWeightedRadius() {
		t.Fatalf("unit weights: hop radius %d != weighted radius %d",
			wc.MaxHopRadius(), wc.MaxWeightedRadius())
	}
}

func TestWeightedClusterDeterministic(t *testing.T) {
	// The delta-stepping growth must be bit-for-bit identical across worker
	// counts: same centers, same owners, same distances, same radii.
	for name, g := range map[string]*graph.Graph{
		"mesh":   graph.Mesh(20, 20),
		"social": graph.BarabasiAlbert(1200, 4, 17),
	} {
		wg := randomWeighted(t, g, 13, 6)
		a, err := WeightedCluster(wg, 4, Options{Seed: 5, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{4, 8} {
			b, err := WeightedCluster(wg, 4, Options{Seed: 5, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if a.NumClusters() != b.NumClusters() {
				t.Fatalf("%s: %d workers changed the cluster count %d -> %d",
					name, workers, a.NumClusters(), b.NumClusters())
			}
			for c := range a.Centers {
				if a.Centers[c] != b.Centers[c] || a.WRadii[c] != b.WRadii[c] || a.HopRadii[c] != b.HopRadii[c] {
					t.Fatalf("%s: cluster %d diverged at %d workers", name, c, workers)
				}
			}
			for u := range a.Owner {
				if a.Owner[u] != b.Owner[u] || a.WDist[u] != b.WDist[u] || a.HopDist[u] != b.HopDist[u] {
					t.Fatalf("%s: node %d diverged at %d workers (claims are min-reduced deterministically)",
						name, u, workers)
				}
			}
		}
	}
}

func TestWeightedClusterDeltaSweep(t *testing.T) {
	// The bucket width is a pure scheduling knob: any delta must yield a
	// valid partition, and the distances are exact (Voronoi) for each, so
	// per-node WDist agrees across deltas whenever the owner agrees.
	g := graph.RoadLike(20, 20, 0.4, 3)
	wg := randomWeighted(t, g, 21, 8)
	for _, delta := range []int64{1, 2, 16, 1 << 40} {
		wc, err := WeightedCluster(wg, 4, Options{Seed: 8, Delta: delta, Workers: 4})
		if err != nil {
			t.Fatalf("delta=%d: %v", delta, err)
		}
		if err := wc.Validate(); err != nil {
			t.Fatalf("delta=%d: %v", delta, err)
		}
		if wc.Stats.Relaxations == 0 || wc.Stats.Buckets == 0 {
			t.Fatalf("delta=%d: missing weighted cost counters %+v", delta, wc.Stats)
		}
	}
}

func TestWeightedClusterWDistIsExactVoronoi(t *testing.T) {
	// After the drain, every node's WDist is its true shortest distance to
	// the center that owns it, and no other center is strictly closer.
	g := graph.Mesh(18, 18)
	wg := randomWeighted(t, g, 23, 7)
	wc, err := WeightedCluster(wg, 4, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	n := wg.NumNodes()
	best := make([]int64, n)
	for i := range best {
		best[i] = graph.InfDist
	}
	for _, center := range wc.Centers {
		dist := wg.Dijkstra(center)
		for u := 0; u < n; u++ {
			if dist[u] < best[u] {
				best[u] = dist[u]
			}
		}
	}
	for u := 0; u < n; u++ {
		if wc.WDist[u] != best[u] {
			t.Fatalf("node %d: WDist %d, nearest activated center at %d", u, wc.WDist[u], best[u])
		}
	}
}

func TestApproxDiameterWeightedUpperBound(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"mesh": graph.Mesh(25, 25),
		"road": graph.RoadLike(20, 20, 0.4, 6),
	} {
		wg := randomWeighted(t, g, 15, 7)
		res, err := ApproxDiameterWeighted(wg, 4, Options{Seed: 6})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		truth, exact := wg.ExactDiameterWeighted(0)
		if !exact {
			t.Fatalf("%s: truth not certified", name)
		}
		if res.Upper < truth {
			t.Errorf("%s: upper %d below true weighted diameter %d", name, res.Upper, truth)
		}
		if !res.Exact {
			t.Errorf("%s: quotient diameter not exact", name)
		}
		// Sanity on looseness: within a generous constant at this scale.
		if res.Upper > 6*truth {
			t.Errorf("%s: upper %d too loose vs %d", name, res.Upper, truth)
		}
	}
}

func TestApproxDiameterWeightedUnitMatchesUnweightedPipeline(t *testing.T) {
	g := graph.Mesh(20, 20)
	edges := g.EdgeList()
	ws := make([]int32, len(edges))
	for i := range ws {
		ws[i] = 1
	}
	wg := graph.MustWeighted(g.NumNodes(), edges, ws)
	res, err := ApproxDiameterWeighted(wg, 4, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	truth, _ := g.ExactDiameter(0)
	if res.Upper < int64(truth) {
		t.Fatalf("unit-weight upper %d below %d", res.Upper, truth)
	}
	if res.Upper > 3*int64(truth) {
		t.Fatalf("unit-weight upper %d too loose vs %d", res.Upper, truth)
	}
}
