package core
