package core

import (
	"testing"

	"repro/internal/graph"
)

func testGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"mesh":     graph.Mesh(40, 40),
		"roadlike": graph.RoadLike(35, 35, 0.4, 3),
		"social":   graph.BarabasiAlbert(2500, 4, 5),
		"path":     graph.Path(600),
		"expander": graph.ExpanderPath(1500, 0, 7),
	}
}

func TestClusterPartitionValid(t *testing.T) {
	for name, g := range testGraphs() {
		for _, tau := range []int{1, 4, 16} {
			cl, err := Cluster(g, tau, Options{Seed: 1})
			if err != nil {
				t.Fatalf("%s tau=%d: %v", name, tau, err)
			}
			if err := cl.Validate(); err != nil {
				t.Errorf("%s tau=%d: %v", name, tau, err)
			}
			if !cl.RadiusUpperBoundHolds() {
				t.Errorf("%s tau=%d: Dist not an upper bound on center distance", name, tau)
			}
		}
	}
}

func TestClusterRejectsBadTau(t *testing.T) {
	g := graph.Path(10)
	if _, err := Cluster(g, 0, Options{}); err == nil {
		t.Fatal("tau=0 should fail")
	}
	if _, err := Cluster(g, -3, Options{}); err == nil {
		t.Fatal("negative tau should fail")
	}
}

func TestClusterCountGrowsWithTau(t *testing.T) {
	g := graph.Mesh(60, 60)
	var prev int
	for i, tau := range []int{1, 8, 64} {
		cl, err := Cluster(g, tau, Options{Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		k := cl.NumClusters()
		if i > 0 && k <= prev {
			t.Fatalf("clusters did not grow with tau: tau=%d gives %d, previous %d", tau, k, prev)
		}
		prev = k
	}
}

func TestClusterRadiusShrinksWithTau(t *testing.T) {
	g := graph.Mesh(60, 60) // diameter 118
	coarse, err := Cluster(g, 1, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Cluster(g, 32, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if fine.MaxRadius() >= coarse.MaxRadius() {
		t.Fatalf("radius should shrink with tau: tau=1 r=%d, tau=32 r=%d",
			coarse.MaxRadius(), fine.MaxRadius())
	}
	// With tau=32 (hundreds of clusters over 3600 nodes) the radius must be
	// far below the diameter.
	if fine.MaxRadius() > 30 {
		t.Fatalf("tau=32 max radius %d too large for a 60x60 mesh", fine.MaxRadius())
	}
}

func TestClusterDeterministicSingleWorker(t *testing.T) {
	g := graph.RoadLike(25, 25, 0.4, 9)
	a, err := Cluster(g, 4, Options{Seed: 11, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cluster(g, 4, Options{Seed: 11, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumClusters() != b.NumClusters() {
		t.Fatal("same seed produced different cluster counts")
	}
	for u := range a.Owner {
		if a.Owner[u] != b.Owner[u] || a.Dist[u] != b.Dist[u] {
			t.Fatalf("same seed diverged at node %d", u)
		}
	}
}

func TestClusterSeedSensitivity(t *testing.T) {
	g := graph.BarabasiAlbert(2000, 3, 1)
	a, _ := Cluster(g, 8, Options{Seed: 1, Workers: 1})
	b, _ := Cluster(g, 8, Options{Seed: 2, Workers: 1})
	if a.NumClusters() == b.NumClusters() {
		same := true
		for c := range a.Centers {
			if a.Centers[c] != b.Centers[c] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical clusterings")
		}
	}
}

func TestClusterCenterCountMatchesTheory(t *testing.T) {
	// Theorem 1: O(τ·log²n) clusters. Check the count is within a generous
	// constant of τ·log²n and at least τ (sanity both ways).
	g := graph.Mesh(70, 70)
	n := float64(g.NumNodes())
	logn := log2n(int(n))
	for _, tau := range []int{2, 8} {
		cl, err := Cluster(g, tau, Options{Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		k := float64(cl.NumClusters())
		if k > 16*float64(tau)*logn*logn {
			t.Fatalf("tau=%d: %v clusters exceed 16·τ·log²n = %v", tau, k, 16*float64(tau)*logn*logn)
		}
		if k < float64(tau) {
			t.Fatalf("tau=%d: only %v clusters", tau, k)
		}
	}
}

func TestClusterScheduleIndependentCoverageStructure(t *testing.T) {
	// Cluster count and batch count depend only on hash-based coins, not on
	// the worker count. (Per-node owners and radii may legitimately differ
	// under contention; the paper allows arbitrary tie-breaks.)
	g := graph.Mesh(50, 50)
	ref, err := Cluster(g, 8, Options{Seed: 21, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 7} {
		cl, err := Cluster(g, 8, Options{Seed: 21, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if cl.NumClusters() != ref.NumClusters() || cl.Batches != ref.Batches {
			t.Fatalf("workers=%d: clusters/batches (%d,%d) vs reference (%d,%d)",
				workers, cl.NumClusters(), cl.Batches, ref.NumClusters(), ref.Batches)
		}
		if err := cl.Validate(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
}

func TestClusterDisconnectedGraph(t *testing.T) {
	// Two meshes side by side, never connected. τ >= 2 components.
	b := graph.NewBuilder(200)
	addMesh := func(off int) {
		for y := 0; y < 10; y++ {
			for x := 0; x < 10; x++ {
				id := func(x, y int) graph.NodeID { return graph.NodeID(off + y*10 + x) }
				if x+1 < 10 {
					b.AddEdge(id(x, y), id(x+1, y))
				}
				if y+1 < 10 {
					b.AddEdge(id(x, y), id(x, y+1))
				}
			}
		}
	}
	addMesh(0)
	addMesh(100)
	g := b.Build()
	cl, err := Cluster(g, 4, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestClusterTinyGraphAllSingletons(t *testing.T) {
	// n << 8·τ·log n: the main loop never runs; everything is a singleton.
	g := graph.Path(5)
	cl, err := Cluster(g, 3, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cl.NumClusters() != 5 {
		t.Fatalf("expected 5 singletons, got %d clusters", cl.NumClusters())
	}
	if cl.MaxRadius() != 0 {
		t.Fatalf("singletons should have radius 0, got %d", cl.MaxRadius())
	}
	if err := cl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestClusterSingleNode(t *testing.T) {
	g := graph.Path(1)
	cl, err := Cluster(g, 1, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cl.NumClusters() != 1 || cl.Owner[0] != 0 {
		t.Fatal("single node not clustered")
	}
}

func TestClusterExpanderPathRadiusMuchSmallerThanDiameter(t *testing.T) {
	// The paper's Section 3 example: expander + sqrt(n) path. With a large
	// enough τ the maximum radius is polylog while the diameter is the tail
	// length.
	g := graph.ExpanderPath(4000, 0, 13)
	_, diamLB := g.TwoSweep(0)
	cl, err := Cluster(g, 32, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if int32(2)*cl.MaxRadius() >= diamLB {
		t.Fatalf("expander+path: radius %d not << diameter >= %d", cl.MaxRadius(), diamLB)
	}
}

func TestClusterSizesSumToN(t *testing.T) {
	g := graph.Mesh(20, 20)
	cl, err := Cluster(g, 4, Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range cl.ClusterSizes() {
		total += s
	}
	if total != g.NumNodes() {
		t.Fatalf("cluster sizes sum to %d, want %d", total, g.NumNodes())
	}
}

func TestClusterGrowthStepsRecorded(t *testing.T) {
	g := graph.Mesh(40, 40)
	cl, err := Cluster(g, 2, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if cl.GrowthSteps <= 0 {
		t.Fatal("growth steps not recorded")
	}
	if cl.Stats.Rounds != cl.GrowthSteps {
		t.Fatalf("stats rounds %d != growth steps %d", cl.Stats.Rounds, cl.GrowthSteps)
	}
	if cl.Stats.Messages <= 0 {
		t.Fatal("no messages recorded")
	}
	// Growth steps should be at least the max radius (each radius unit took
	// one round) and typically close to the sum over batches.
	if cl.GrowthSteps < int(cl.MaxRadius()) {
		t.Fatalf("steps %d < max radius %d", cl.GrowthSteps, cl.MaxRadius())
	}
}
