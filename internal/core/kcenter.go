package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/quotient"
)

// KCenterResult is an approximate solution to the metric k-center problem
// on the graph metric (Section 3.1).
type KCenterResult struct {
	// Centers is the selected center set, |Centers| <= k.
	Centers []graph.NodeID
	// Radius is the exact maximum distance of any node to the nearest
	// center (evaluated by multi-source BFS, not an estimate).
	Radius int32
	// Clustering is the underlying decomposition.
	Clustering *Clustering
	// Merged reports whether the decomposition produced more than k
	// clusters and the spanning-tree merging step of Theorem 2 ran.
	Merged bool
}

// KCenter computes an approximate k-center solution for g following
// Section 3.1: run CLUSTER(τ) with τ = Θ(k/log²n) and, if more than k
// clusters come back, merge them along a spanning forest of the quotient
// graph into at most k connected groups (the technique in the proof of
// Theorem 2, which also covers disconnected graphs per Section 3.2).
// The approximation factor is O(log³n) with high probability; empirically
// the radius is within a small constant of the Gonzalez 2-approximation.
//
// k must be at least the number of connected components of g. Cancelling
// ctx aborts the decomposition at the next superstep barrier and returns
// ctx.Err(); the final exact radius evaluation (a single multi-source BFS
// pass, comparable in cost to one superstep over the whole graph) runs to
// completion once started.
func KCenter(ctx context.Context, g *graph.Graph, k int, opt Options) (*KCenterResult, error) {
	n := g.NumNodes()
	if k < 1 {
		return nil, errors.New("core: KCenter requires k >= 1")
	}
	if n == 0 {
		return nil, errors.New("core: KCenter on empty graph")
	}
	logn := log2n(n)
	tau := int(float64(k) / (logn * logn))
	if tau < 1 {
		tau = 1
	}
	cl, err := ClusterContext(ctx, g, tau, opt)
	if err != nil {
		return nil, err
	}
	res := &KCenterResult{Clustering: cl}
	if cl.NumClusters() <= k {
		res.Centers = append([]graph.NodeID(nil), cl.Centers...)
	} else {
		res.Merged = true
		res.Centers, err = mergeClustersToK(cl, k)
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	radius, err := EvalCenters(g, res.Centers)
	if err != nil {
		return nil, err
	}
	res.Radius = radius
	return res, nil
}

// EvalCenters returns the exact k-center objective value of the given
// center set: the maximum distance of any node to the nearest center. It
// fails if some node is unreachable from every center.
func EvalCenters(g *graph.Graph, centers []graph.NodeID) (int32, error) {
	if len(centers) == 0 {
		return 0, errors.New("core: empty center set")
	}
	dist, _ := g.MultiSourceBFS(centers)
	var radius int32
	for u, d := range dist {
		if d < 0 {
			return 0, fmt.Errorf("core: node %d unreachable from all centers (k below the number of components?)", u)
		}
		if d > radius {
			radius = d
		}
	}
	return radius, nil
}

// mergeClustersToK reduces a W > k clustering to at most k centers by
// partitioning a spanning forest of the quotient graph into at most k
// connected groups of clusters and keeping one center per group. The group
// size quota is found by doubling-then-binary search, since the number of
// groups is monotonically non-increasing in the quota.
func mergeClustersToK(cl *Clustering, k int) ([]graph.NodeID, error) {
	w := cl.NumClusters()
	q, err := quotient.Build(cl.G, cl.Owner, w)
	if err != nil {
		return nil, err
	}
	parent, order, roots := spanningForest(q)
	if roots > k {
		return nil, fmt.Errorf("core: graph has %d components but k=%d", roots, k)
	}
	lo, hi := 1, w // smallest quota with numParts <= k lies in [1, w]
	for lo < hi {
		mid := (lo + hi) / 2
		if countParts(parent, order, mid) <= k {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	heads := partHeads(parent, order, lo)
	centers := make([]graph.NodeID, 0, len(heads))
	for _, h := range heads {
		centers = append(centers, cl.Centers[h])
	}
	if len(centers) > k {
		return nil, fmt.Errorf("core: internal error, merged to %d > k=%d parts", len(centers), k)
	}
	return centers, nil
}

// spanningForest returns BFS parents over q (parent[root] = -1), the BFS
// visit order (parents precede children), and the number of roots.
func spanningForest(q *graph.Graph) (parent []graph.NodeID, order []graph.NodeID, roots int) {
	n := q.NumNodes()
	parent = make([]graph.NodeID, n)
	for i := range parent {
		parent[i] = -2 // unvisited
	}
	order = make([]graph.NodeID, 0, n)
	for s := 0; s < n; s++ {
		if parent[s] != -2 {
			continue
		}
		roots++
		parent[s] = -1
		head := len(order)
		order = append(order, graph.NodeID(s))
		for head < len(order) {
			u := order[head]
			head++
			for _, v := range q.Neighbors(u) {
				if parent[v] == -2 {
					parent[v] = u
					order = append(order, v)
				}
			}
		}
	}
	return parent, order, roots
}

// cutForest marks the part heads for the given quota: processing nodes
// children-first, a node whose accumulated subtree size reaches the quota
// is cut and becomes a head; roots are always heads.
func cutForest(parent []graph.NodeID, order []graph.NodeID, quota int) []bool {
	n := len(parent)
	size := make([]int32, n)
	head := make([]bool, n)
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		size[u]++ // count u itself
		if parent[u] == -1 {
			head[u] = true
			continue
		}
		if int(size[u]) >= quota {
			head[u] = true
		} else {
			size[parent[u]] += size[u]
		}
	}
	return head
}

func countParts(parent []graph.NodeID, order []graph.NodeID, quota int) int {
	head := cutForest(parent, order, quota)
	count := 0
	for _, h := range head {
		if h {
			count++
		}
	}
	return count
}

func partHeads(parent []graph.NodeID, order []graph.NodeID, quota int) []graph.NodeID {
	head := cutForest(parent, order, quota)
	out := make([]graph.NodeID, 0, 16)
	for u, h := range head {
		if h {
			out = append(out, graph.NodeID(u))
		}
	}
	return out
}

// TauForTargetClusters searches for a τ that makes Cluster return roughly
// target clusters on g (the number of clusters grows monotonically with τ
// in expectation, but is random; the search accepts within tolerance·target
// or returns the best found). It is the knob the experiments use to match
// decomposition granularities between algorithms, as the paper does when
// comparing against MPX.
func TauForTargetClusters(g *graph.Graph, target int, tolerance float64, opt Options) (tau int, got *Clustering, err error) {
	if target < 1 {
		return 0, nil, errors.New("core: target clusters must be >= 1")
	}
	n := g.NumNodes()
	logn := log2n(n)
	// Expected clusters per batch ≈ CenterFactor·τ·log n and about log n
	// batches, so start from target / (CenterFactor·log n·loglog-ish).
	o := opt.withDefaults()
	tau = int(float64(target) / (o.CenterFactor * logn))
	if tau < 1 {
		tau = 1
	}
	var best *Clustering
	bestTau := tau
	bestGap := math.Inf(1)
	lo, hi := 1, 0 // hi=0 means unbounded above
	for iter := 0; iter < 24; iter++ {
		cl, cerr := Cluster(g, tau, opt)
		if cerr != nil {
			return 0, nil, cerr
		}
		gotK := cl.NumClusters()
		gap := math.Abs(float64(gotK-target)) / float64(target)
		if gap < bestGap {
			best, bestTau, bestGap = cl, tau, gap
		}
		if gap <= tolerance {
			return tau, cl, nil
		}
		if gotK < target {
			lo = tau + 1
			if hi == 0 {
				tau *= 2
			} else {
				tau = (lo + hi) / 2
			}
		} else {
			hi = tau
			tau = (lo + hi) / 2
		}
		if tau < lo {
			tau = lo
		}
		if hi != 0 && tau >= hi {
			tau = hi - 1
		}
		if tau < 1 || (hi != 0 && lo >= hi) {
			break
		}
	}
	return bestTau, best, nil
}
