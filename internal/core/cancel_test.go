package core

// Cancellation semantics of the build entry points: a cancelled context
// aborts at the next superstep/bucket barrier and surfaces ctx.Err(), and
// the checks never change what an uncancelled run computes.

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/graph"
)

func TestBuildEntryPointsHonorCancelledContext(t *testing.T) {
	g := graph.Mesh(40, 40)
	wg := weightedFixture(t, g)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	cases := []struct {
		name string
		run  func() error
	}{
		{"ClusterContext", func() error { _, err := ClusterContext(ctx, g, 4, Options{Seed: 1}); return err }},
		{"Cluster2Context", func() error { _, err := Cluster2Context(ctx, g, 4, Options{Seed: 1}); return err }},
		{"BuildOracle", func() error { _, err := BuildOracle(ctx, g, 2, false, Options{Seed: 1}); return err }},
		{"ApproxDiameter", func() error {
			_, err := ApproxDiameter(ctx, g, DiameterOptions{Options: Options{Seed: 1}})
			return err
		}},
		{"KCenter", func() error { _, err := KCenter(ctx, g, 8, Options{Seed: 1}); return err }},
		{"WeightedClusterContext", func() error {
			_, err := WeightedClusterContext(ctx, wg, 4, Options{Seed: 1})
			return err
		}},
	}
	for _, c := range cases {
		if err := c.run(); !errors.Is(err, context.Canceled) {
			t.Errorf("%s with cancelled ctx: err = %v, want context.Canceled", c.name, err)
		}
	}
}

func weightedFixture(t *testing.T, g *graph.Graph) *graph.Weighted {
	t.Helper()
	edges := g.EdgeList()
	ws := make([]int32, len(edges))
	for i := range ws {
		ws[i] = int32(1 + i%7)
	}
	wg, err := graph.NewWeighted(g.NumNodes(), edges, ws)
	if err != nil {
		t.Fatal(err)
	}
	return wg
}

// A cancel landing mid-build must be honored promptly — within the current
// round, not at build completion. The build is large enough that the
// cancel almost always lands mid-flight; if the machine is so fast that
// the build wins the race, the success return is accepted (the property
// under test is "cancel is honored when seen", not a wall-clock bound).
func TestBuildOracleCancelledMidBuildReturnsPromptly(t *testing.T) {
	g := graph.RoadLike(120, 120, 0.4, 3)
	ctx, cancel := context.WithCancel(context.Background())
	type result struct {
		o   *Oracle
		err error
	}
	done := make(chan result, 1)
	go func() {
		o, err := BuildOracle(ctx, g, 3, false, Options{Seed: 5, Workers: 2})
		done <- result{o, err}
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()
	select {
	case r := <-done:
		if r.err != nil && !errors.Is(r.err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled (or a completed build)", r.err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("BuildOracle did not return within 30s of cancellation")
	}
}

// ClusterContext with a background context must produce exactly what the
// ctx-less entry point produces: the cancellation plumbing sits at
// existing barriers and never alters the deterministic schedule.
func TestClusterContextMatchesCluster(t *testing.T) {
	g := graph.RoadLike(40, 40, 0.4, 9)
	a, err := Cluster(g, 6, Options{Seed: 11, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ClusterContext(context.Background(), g, 6, Options{Seed: 11, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumClusters() != b.NumClusters() {
		t.Fatalf("cluster counts differ: %d vs %d", a.NumClusters(), b.NumClusters())
	}
	for i := range a.Centers {
		if a.Centers[i] != b.Centers[i] {
			t.Fatalf("center %d differs: %d vs %d", i, a.Centers[i], b.Centers[i])
		}
	}
	for u := range a.Dist {
		if a.Dist[u] != b.Dist[u] {
			t.Fatalf("dist[%d] differs: %d vs %d", u, a.Dist[u], b.Dist[u])
		}
	}
}
