package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/bsp"
	"repro/internal/graph"
	"repro/internal/quotient"
)

// Oracle is the linear-space approximate distance oracle sketched at the
// end of Section 4: run CLUSTER2(τ) with τ = O(sqrt(n)/log⁴n), store the
// all-pairs shortest-path matrix of the weighted quotient graph (O(n)
// space for that τ), and answer queries in O(1) via
//
//	d'(u, v) = Dist[u] + apsp[cluster(u)][cluster(v)] + Dist[v],
//
// an upper bound on d(u, v) within O(d(u,v)·log³n + R_ALG2) with high
// probability — polylogarithmic for far-apart pairs.
//
// The tables are stored row-major in flat slices (stride k = NumClusters),
// and the per-node cluster/offset lookups alias the clustering's own flat
// arrays, so a warm Query is two array reads (owner, dist — per endpoint)
// and one table index with zero pointer chasing: no [][]row indirection,
// no per-row cache miss. QueryBatchInto answers whole pair slices against
// the same layout without allocating.
type Oracle struct {
	clustering *Clustering
	k          int            // quotient size; the stride of apsp/hops
	apsp       []int64        // weighted quotient APSP, row-major k×k; InfDist when unreachable
	hops       []int64        // unweighted quotient APSP (certified lower bounds), row-major k×k
	owner      []graph.NodeID // flat cluster-of lookup, aliases clustering.Owner
	dist       []int32        // flat distance-to-center lookup, aliases clustering.Dist
	apspStats  bsp.Stats      // aggregate cost of the quotient APSP build
}

// newOracle wires the flat lookup aliases; every constructor funnels
// through it so the hot path never reaches back through the clustering.
func newOracle(cl *Clustering, k int, apsp, hops []int64, stats bsp.Stats) *Oracle {
	return &Oracle{
		clustering: cl,
		k:          k,
		apsp:       apsp,
		hops:       hops,
		owner:      cl.Owner,
		dist:       cl.Dist,
		apspStats:  stats,
	}
}

// DefaultOracleTau returns the paper's suggested granularity for an
// oracle over an n-node graph: τ = sqrt(n)/log⁴n, at least 1.
func DefaultOracleTau(n int) int {
	logn := log2n(n)
	tau := int(math.Sqrt(float64(n)) / (logn * logn * logn * logn))
	if tau < 1 {
		tau = 1
	}
	return tau
}

// maxOracleClusters caps the quadratic APSP table; beyond this the
// "linear space" promise is clearly broken for the intended scales.
const maxOracleClusters = 8192

// BuildOracle constructs a distance oracle over g. If tau <= 0,
// DefaultOracleTau is used. useCluster2 selects the theory-faithful
// decomposition (slower; plain CLUSTER matches the experimental pipeline).
// Cancelling ctx aborts the build at the next superstep (or, in the APSP
// phase, bucket) barrier and returns ctx.Err().
func BuildOracle(ctx context.Context, g *graph.Graph, tau int, useCluster2 bool, opt Options) (*Oracle, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, errors.New("core: oracle over empty graph")
	}
	if tau <= 0 {
		tau = DefaultOracleTau(n)
	}
	var (
		cl  *Clustering
		err error
	)
	if useCluster2 {
		cl, err = Cluster2Context(ctx, g, tau, opt)
	} else {
		cl, err = ClusterContext(ctx, g, tau, opt)
	}
	if err != nil {
		return nil, err
	}
	return OracleFromClustering(ctx, cl, opt)
}

// OracleFromClustering builds the oracle tables from an existing
// decomposition. The k per-cluster searches of the quotient APSP are
// independent, so they fan out across opt.Workers goroutines, each running
// its own delta-stepping engine for the weighted rows — source-level
// parallelism on top of (and compounding with) the parallel relaxation
// inside each search. The row contents are identical to the sequential
// Dijkstra+BFS build for every worker count. Cancelling ctx stops every
// worker at its next source (or mid-search bucket) boundary and returns
// ctx.Err().
func OracleFromClustering(ctx context.Context, cl *Clustering, opt Options) (*Oracle, error) {
	k := cl.NumClusters()
	if k > maxOracleClusters {
		return nil, fmt.Errorf("core: %d clusters exceed the oracle cap %d; lower tau", k, maxOracleClusters)
	}
	q, wq, err := quotient.BuildWeighted(cl.G, cl.Owner, cl.Dist, k)
	if err != nil {
		return nil, err
	}
	workers := bsp.Workers(opt.Workers)
	if workers > k {
		workers = k
	}
	// The tables are row-major flat arrays; each worker owns the disjoint
	// row apsp[c*k:(c+1)*k] of the source it claimed, so the writes need no
	// synchronization and the engines fill the final storage directly.
	apsp := make([]int64, k*k)
	hops := make([]int64, k*k)
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		statsMu sync.Mutex
		stats   bsp.Stats
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One sequential engine per goroutine: the parallelism budget
			// is already spent on the source fan-out.
			e := bsp.NewWeightedEngine(wq, 1, opt.Delta)
			e.SetContext(ctx)
			e.SetObserver(opt.Observer) // concurrent across workers; Observer contract requires thread safety
			defer e.Close()
			for ctx.Err() == nil {
				c := int(next.Add(1)) - 1
				if c >= k {
					break
				}
				e.SSSP(graph.NodeID(c), apsp[c*k:(c+1)*k])
				if e.Err() != nil {
					// Cancelled mid-search: the row is partial, and the
					// whole build is about to be discarded.
					break
				}
				hop := q.BFS(graph.NodeID(c))
				hrow := hops[c*k : (c+1)*k]
				for i, h := range hop {
					if h < 0 {
						hrow[i] = graph.InfDist
					} else {
						hrow[i] = int64(h)
					}
				}
			}
			statsMu.Lock()
			stats.Add(e.Stats())
			statsMu.Unlock()
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return newOracle(cl, k, apsp, hops, stats), nil
}

// OracleFromParts reassembles an oracle from its persisted parts: the
// decomposition plus the two quotient APSP tables, row-major flat with
// stride k = cl.NumClusters() (weighted distances and hop counts — the
// same layout APSPFlat/HopsFlat expose and the snapshot codec writes). It
// validates that the table dimensions are mutually consistent so a
// corrupted snapshot cannot produce an oracle that panics on query.
func OracleFromParts(cl *Clustering, apsp, hops []int64) (*Oracle, error) {
	if cl == nil || cl.G == nil {
		return nil, errors.New("core: OracleFromParts: nil clustering")
	}
	n, k := cl.G.NumNodes(), cl.NumClusters()
	if len(cl.Owner) != n || len(cl.Dist) != n {
		return nil, fmt.Errorf("core: OracleFromParts: owner/dist length %d/%d, want %d",
			len(cl.Owner), len(cl.Dist), n)
	}
	if len(apsp) != k*k || len(hops) != k*k {
		return nil, fmt.Errorf("core: OracleFromParts: %d apsp / %d hop entries for %d clusters (want %d)",
			len(apsp), len(hops), k, k*k)
	}
	for u := 0; u < n; u++ {
		if cl.Owner[u] < 0 || int(cl.Owner[u]) >= k {
			return nil, fmt.Errorf("core: OracleFromParts: node %d owner %d out of range", u, cl.Owner[u])
		}
	}
	return newOracle(cl, k, apsp, hops, bsp.Stats{}), nil
}

// Clustering exposes the oracle's underlying decomposition.
func (o *Oracle) Clustering() *Clustering { return o.clustering }

// APSP returns the weighted quotient all-pairs table as k row views
// (InfDist for unreachable cluster pairs) — a compatibility accessor that
// reconstructs [][]row headers over the flat storage. The rows alias
// internal storage and must not be modified.
func (o *Oracle) APSP() [][]int64 { return rowViews(o.apsp, o.k) }

// Hops returns the unweighted quotient all-pairs hop table backing
// LowerQuery, as row views over the flat storage (see APSP). The rows
// alias internal storage and must not be modified.
func (o *Oracle) Hops() [][]int64 { return rowViews(o.hops, o.k) }

// rowViews slices a row-major flat k×k table into k row headers without
// copying the payload.
func rowViews(flat []int64, k int) [][]int64 {
	rows := make([][]int64, k)
	for c := 0; c < k; c++ {
		rows[c] = flat[c*k : (c+1)*k : (c+1)*k]
	}
	return rows
}

// APSPFlat returns the weighted quotient all-pairs table in its native
// row-major flat layout: entry (c, d) is at index c*NumClusters()+d. It
// aliases internal storage and must not be modified; it exists for the
// snapshot codec and zero-copy batch consumers.
func (o *Oracle) APSPFlat() []int64 { return o.apsp }

// HopsFlat returns the hop table in its native row-major flat layout (see
// APSPFlat). It aliases internal storage and must not be modified.
func (o *Oracle) HopsFlat() []int64 { return o.hops }

// NumClusters returns the size of the quotient graph (rows of the APSP
// table).
func (o *Oracle) NumClusters() int { return o.k }

// APSPStats returns the aggregate substrate cost of the quotient APSP
// build (delta-stepping relaxations, buckets, phases summed over the k
// per-cluster searches). Zero for oracles reassembled from snapshots.
func (o *Oracle) APSPStats() bsp.Stats { return o.apspStats }

// LowerQuery returns a certified lower bound on the distance between u and
// v: the hop distance between their clusters in the quotient graph (every
// G-path from u to v crosses at least that many inter-cluster edges).
// Same-cluster pairs get 0. The bound is stored as part of the APSP table's
// companion hop matrix.
func (o *Oracle) LowerQuery(u, v graph.NodeID) int64 {
	if u == v {
		return 0
	}
	cu, cv := o.owner[u], o.owner[v]
	if cu == cv {
		return 0
	}
	h := o.hops[int(cu)*o.k+int(cv)]
	if h == graph.InfDist {
		return graph.InfDist
	}
	return h
}

// Query returns an upper bound on the distance between u and v, or
// graph.InfDist if they are in different connected components.
func (o *Oracle) Query(u, v graph.NodeID) int64 {
	if u == v {
		return 0
	}
	cu, cv := o.owner[u], o.owner[v]
	if cu == cv {
		// Same cluster: go through the center.
		return int64(o.dist[u]) + int64(o.dist[v])
	}
	mid := o.apsp[int(cu)*o.k+int(cv)]
	if mid == graph.InfDist {
		return graph.InfDist
	}
	return int64(o.dist[u]) + mid + int64(o.dist[v])
}

// QueryBatchInto answers pairs[i] = (u, v) into out[i], exactly as Query
// would pair by pair (graph.InfDist for cross-component pairs). It is the
// oracle's batch hot path: a single pass over the flat tables with zero
// allocation, so callers can pool and reuse both slices across requests.
// Every id must already be validated in [0, n); out must have len(pairs).
//
//lint:hotpath
func (o *Oracle) QueryBatchInto(pairs [][2]graph.NodeID, out []int64) {
	_ = out[:len(pairs)] // one bounds check, not one per pair
	owner, dist, apsp, k := o.owner, o.dist, o.apsp, o.k
	for i, p := range pairs {
		u, v := p[0], p[1]
		if u == v {
			out[i] = 0
			continue
		}
		cu, cv := owner[u], owner[v]
		if cu == cv {
			out[i] = int64(dist[u]) + int64(dist[v])
			continue
		}
		mid := apsp[int(cu)*k+int(cv)]
		if mid == graph.InfDist {
			out[i] = graph.InfDist
			continue
		}
		out[i] = int64(dist[u]) + mid + int64(dist[v])
	}
}
