package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/bsp"
	"repro/internal/graph"
	"repro/internal/quotient"
)

// Oracle is the linear-space approximate distance oracle sketched at the
// end of Section 4: run CLUSTER2(τ) with τ = O(sqrt(n)/log⁴n), store the
// all-pairs shortest-path matrix of the weighted quotient graph (O(n)
// space for that τ), and answer queries in O(1) via
//
//	d'(u, v) = Dist[u] + apsp[cluster(u)][cluster(v)] + Dist[v],
//
// an upper bound on d(u, v) within O(d(u,v)·log³n + R_ALG2) with high
// probability — polylogarithmic for far-apart pairs.
type Oracle struct {
	clustering *Clustering
	apsp       [][]int64 // weighted quotient APSP; InfDist when unreachable
	hops       [][]int64 // unweighted quotient APSP (certified lower bounds)
	apspStats  bsp.Stats // aggregate cost of the quotient APSP build
}

// DefaultOracleTau returns the paper's suggested granularity for an
// oracle over an n-node graph: τ = sqrt(n)/log⁴n, at least 1.
func DefaultOracleTau(n int) int {
	logn := log2n(n)
	tau := int(math.Sqrt(float64(n)) / (logn * logn * logn * logn))
	if tau < 1 {
		tau = 1
	}
	return tau
}

// maxOracleClusters caps the quadratic APSP table; beyond this the
// "linear space" promise is clearly broken for the intended scales.
const maxOracleClusters = 8192

// BuildOracle constructs a distance oracle over g. If tau <= 0,
// DefaultOracleTau is used. useCluster2 selects the theory-faithful
// decomposition (slower; plain CLUSTER matches the experimental pipeline).
// Cancelling ctx aborts the build at the next superstep (or, in the APSP
// phase, bucket) barrier and returns ctx.Err().
func BuildOracle(ctx context.Context, g *graph.Graph, tau int, useCluster2 bool, opt Options) (*Oracle, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, errors.New("core: oracle over empty graph")
	}
	if tau <= 0 {
		tau = DefaultOracleTau(n)
	}
	var (
		cl  *Clustering
		err error
	)
	if useCluster2 {
		cl, err = Cluster2Context(ctx, g, tau, opt)
	} else {
		cl, err = ClusterContext(ctx, g, tau, opt)
	}
	if err != nil {
		return nil, err
	}
	return OracleFromClustering(ctx, cl, opt)
}

// OracleFromClustering builds the oracle tables from an existing
// decomposition. The k per-cluster searches of the quotient APSP are
// independent, so they fan out across opt.Workers goroutines, each running
// its own delta-stepping engine for the weighted rows — source-level
// parallelism on top of (and compounding with) the parallel relaxation
// inside each search. The row contents are identical to the sequential
// Dijkstra+BFS build for every worker count. Cancelling ctx stops every
// worker at its next source (or mid-search bucket) boundary and returns
// ctx.Err().
func OracleFromClustering(ctx context.Context, cl *Clustering, opt Options) (*Oracle, error) {
	k := cl.NumClusters()
	if k > maxOracleClusters {
		return nil, fmt.Errorf("core: %d clusters exceed the oracle cap %d; lower tau", k, maxOracleClusters)
	}
	q, wq, err := quotient.BuildWeighted(cl.G, cl.Owner, cl.Dist, k)
	if err != nil {
		return nil, err
	}
	workers := bsp.Workers(opt.Workers)
	if workers > k {
		workers = k
	}
	apsp := make([][]int64, k)
	hops := make([][]int64, k)
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		statsMu sync.Mutex
		stats   bsp.Stats
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One sequential engine per goroutine: the parallelism budget
			// is already spent on the source fan-out.
			e := bsp.NewWeightedEngine(wq, 1, opt.Delta)
			e.SetContext(ctx)
			e.SetObserver(opt.Observer) // concurrent across workers; Observer contract requires thread safety
			defer e.Close()
			for ctx.Err() == nil {
				c := int(next.Add(1)) - 1
				if c >= k {
					break
				}
				row := make([]int64, k)
				e.SSSP(graph.NodeID(c), row)
				if e.Err() != nil {
					// Cancelled mid-search: the row is partial, and the
					// whole build is about to be discarded.
					break
				}
				apsp[c] = row
				hop := q.BFS(graph.NodeID(c))
				hrow := make([]int64, k)
				for i, h := range hop {
					if h < 0 {
						hrow[i] = graph.InfDist
					} else {
						hrow[i] = int64(h)
					}
				}
				hops[c] = hrow
			}
			statsMu.Lock()
			stats.Add(e.Stats())
			statsMu.Unlock()
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &Oracle{clustering: cl, apsp: apsp, hops: hops, apspStats: stats}, nil
}

// OracleFromParts reassembles an oracle from its persisted parts: the
// decomposition plus the two quotient APSP tables (weighted distances and
// hop counts). It is the decode-side counterpart of APSP/Hops, used by the
// snapshot codec, and validates that the table dimensions are mutually
// consistent so a corrupted snapshot cannot produce an oracle that panics
// on query.
func OracleFromParts(cl *Clustering, apsp, hops [][]int64) (*Oracle, error) {
	if cl == nil || cl.G == nil {
		return nil, errors.New("core: OracleFromParts: nil clustering")
	}
	n, k := cl.G.NumNodes(), cl.NumClusters()
	if len(cl.Owner) != n || len(cl.Dist) != n {
		return nil, fmt.Errorf("core: OracleFromParts: owner/dist length %d/%d, want %d",
			len(cl.Owner), len(cl.Dist), n)
	}
	if len(apsp) != k || len(hops) != k {
		return nil, fmt.Errorf("core: OracleFromParts: %d apsp / %d hop rows for %d clusters",
			len(apsp), len(hops), k)
	}
	for c := 0; c < k; c++ {
		if len(apsp[c]) != k || len(hops[c]) != k {
			return nil, fmt.Errorf("core: OracleFromParts: row %d has %d/%d columns, want %d",
				c, len(apsp[c]), len(hops[c]), k)
		}
	}
	for u := 0; u < n; u++ {
		if cl.Owner[u] < 0 || int(cl.Owner[u]) >= k {
			return nil, fmt.Errorf("core: OracleFromParts: node %d owner %d out of range", u, cl.Owner[u])
		}
	}
	return &Oracle{clustering: cl, apsp: apsp, hops: hops}, nil
}

// Clustering exposes the oracle's underlying decomposition.
func (o *Oracle) Clustering() *Clustering { return o.clustering }

// APSP returns the weighted quotient all-pairs table (k×k, InfDist for
// unreachable cluster pairs). The rows alias internal storage and must not
// be modified; they exist for serialization.
func (o *Oracle) APSP() [][]int64 { return o.apsp }

// Hops returns the unweighted quotient all-pairs hop table backing
// LowerQuery. The rows alias internal storage and must not be modified.
func (o *Oracle) Hops() [][]int64 { return o.hops }

// NumClusters returns the size of the quotient graph (rows of the APSP
// table).
func (o *Oracle) NumClusters() int { return len(o.apsp) }

// APSPStats returns the aggregate substrate cost of the quotient APSP
// build (delta-stepping relaxations, buckets, phases summed over the k
// per-cluster searches). Zero for oracles reassembled from snapshots.
func (o *Oracle) APSPStats() bsp.Stats { return o.apspStats }

// LowerQuery returns a certified lower bound on the distance between u and
// v: the hop distance between their clusters in the quotient graph (every
// G-path from u to v crosses at least that many inter-cluster edges).
// Same-cluster pairs get 0. The bound is stored as part of the APSP table's
// companion hop matrix.
func (o *Oracle) LowerQuery(u, v graph.NodeID) int64 {
	if u == v {
		return 0
	}
	cl := o.clustering
	cu, cv := cl.Owner[u], cl.Owner[v]
	if cu == cv {
		return 0
	}
	h := o.hops[cu][cv]
	if h == graph.InfDist {
		return graph.InfDist
	}
	return h
}

// Query returns an upper bound on the distance between u and v, or
// graph.InfDist if they are in different connected components.
func (o *Oracle) Query(u, v graph.NodeID) int64 {
	if u == v {
		return 0
	}
	cl := o.clustering
	cu, cv := cl.Owner[u], cl.Owner[v]
	if cu == cv {
		// Same cluster: go through the center.
		return int64(cl.Dist[u]) + int64(cl.Dist[v])
	}
	mid := o.apsp[cu][cv]
	if mid == graph.InfDist {
		return graph.InfDist
	}
	return int64(cl.Dist[u]) + mid + int64(cl.Dist[v])
}
