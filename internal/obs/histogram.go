package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// DefBuckets are the default latency buckets in seconds, spanning the
// repository's two regimes: O(1) table-lookup queries (tens of
// microseconds) and cold multi-second artifact builds. They follow the
// conventional 1-2.5-5 progression.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// BuildBuckets are the default build-duration buckets in seconds: builds
// are the slow phase (milliseconds on toy graphs, minutes at scale), so
// the range shifts up and extends further than DefBuckets.
var BuildBuckets = []float64{
	0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 120, 300,
}

// Histogram is a fixed-bucket histogram of float64 observations. Writes
// are lock-free (one atomic add on the bucket, one CAS loop on the sum);
// reads compute cumulative counts from per-bucket atomics, which keeps
// every exported number monotone across scrapes.
type Histogram struct {
	upper  []float64      // finite upper bounds, strictly increasing
	counts []atomic.Int64 // len(upper)+1; last bucket is +Inf
	sum    atomic.Uint64  // math.Float64bits of the running sum
}

// NewHistogram returns a histogram with the given finite upper bounds
// (strictly increasing; the +Inf bucket is implicit). Most callers get
// histograms from a Registry instead.
func NewHistogram(buckets []float64) *Histogram {
	upper := normalizeBuckets(buckets)
	return &Histogram{
		upper:  upper,
		counts: make([]atomic.Int64, len(upper)+1),
	}
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound contains v; len(upper) is +Inf.
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var total int64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	return math.Float64frombits(h.sum.Load())
}

// snapshot returns the cumulative bucket counts (aligned with upper,
// plus the +Inf bucket last), the total count, and the sum. Each bucket
// load is atomic, so the cumulative values are nondecreasing between
// scrapes even under concurrent Observe calls.
func (h *Histogram) snapshot() (cum []int64, count int64, sum float64) {
	cum = make([]int64, len(h.counts))
	var running int64
	for i := range h.counts {
		running += h.counts[i].Load()
		cum[i] = running
	}
	return cum, running, h.Sum()
}

// Quantile returns an estimate of the q-quantile (0 ≤ q ≤ 1) from the
// bucket counts: the upper bound of the first bucket whose cumulative
// count reaches q·total. It inherits the bucket resolution — exact
// enough for trend lines (p50/p99 in BENCH baselines), not for billing.
// Returns NaN with no observations; observations beyond the last finite
// bound report that bound.
func (h *Histogram) Quantile(q float64) float64 {
	cum, total, _ := h.snapshot()
	if total == 0 {
		return math.NaN()
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	for i, c := range cum {
		if c >= rank {
			if i < len(h.upper) {
				return h.upper[i]
			}
			return h.upper[len(h.upper)-1]
		}
	}
	return h.upper[len(h.upper)-1]
}
