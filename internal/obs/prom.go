package obs

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// ContentType is the Content-Type of the text exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered family in the Prometheus text
// exposition format: a # HELP and # TYPE line per family, then one
// sample line per series (bucket/sum/count triplets for histograms),
// series sorted by label values. Families appear in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(f.help))
		bw.WriteByte('\n')
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(string(f.kind))
		bw.WriteByte('\n')

		if f.fn != nil {
			writeSample(bw, f.name, f.labels, nil, "", "", formatFloat(f.fn()))
			continue
		}
		for _, s := range f.snapshotSeries() {
			switch f.kind {
			case kindCounter:
				writeSample(bw, f.name, f.labels, s.labelValues, "", "", strconv.FormatInt(s.c.Value(), 10))
			case kindGauge:
				writeSample(bw, f.name, f.labels, s.labelValues, "", "", strconv.FormatInt(s.g.Value(), 10))
			case kindHistogram:
				cum, count, sum := s.h.snapshot()
				for i, upper := range s.h.upper {
					writeSample(bw, f.name+"_bucket", f.labels, s.labelValues,
						"le", formatFloat(upper), strconv.FormatInt(cum[i], 10))
				}
				writeSample(bw, f.name+"_bucket", f.labels, s.labelValues,
					"le", "+Inf", strconv.FormatInt(cum[len(cum)-1], 10))
				writeSample(bw, f.name+"_sum", f.labels, s.labelValues, "", "", formatFloat(sum))
				writeSample(bw, f.name+"_count", f.labels, s.labelValues, "", "", strconv.FormatInt(count, 10))
			}
		}
	}
	return bw.Flush()
}

// writeSample emits one sample line: name{labels,extraName="extraValue"} value.
func writeSample(bw *bufio.Writer, name string, labels, values []string, extraName, extraValue, sample string) {
	bw.WriteString(name)
	if len(values) > 0 || extraName != "" {
		bw.WriteByte('{')
		first := true
		for i, l := range labels {
			if !first {
				bw.WriteByte(',')
			}
			first = false
			bw.WriteString(l)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabelValue(values[i]))
			bw.WriteByte('"')
		}
		if extraName != "" {
			if !first {
				bw.WriteByte(',')
			}
			bw.WriteString(extraName)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabelValue(extraValue))
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(sample)
	bw.WriteByte('\n')
}

// formatFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabelValue(s string) string { return labelEscaper.Replace(s) }
