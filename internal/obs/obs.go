// Package obs is the repository's stdlib-only metrics substrate: lock-free
// counters, gauges, and fixed-bucket latency histograms collected in a
// Registry that renders the Prometheus text exposition format (version
// 0.0.4), so any scraper can consume the serving tier without this module
// taking a dependency on a client library.
//
// Design constraints, in order:
//
//   - The write path (Counter.Inc, Histogram.Observe) must be safe for
//     arbitrary concurrency and must never take a lock or allocate — it
//     runs once per HTTP request and once per engine superstep. All
//     instruments are plain atomics.
//   - Scrapes must observe monotone counters. Every exported number is
//     either a single atomic load or a sum of atomic loads, both of which
//     are nondecreasing over time for nondecreasing inputs, so two
//     successive scrapes can never see a counter go backwards.
//   - Registration is the slow path. Families and labeled series are
//     created under locks and cached by the caller (resolve a *Counter
//     once, then Inc it forever); With on a vec takes a read lock only.
//
// The zero value of Counter/Gauge is ready to use; instruments obtained
// from a Registry are additionally rendered by WritePrometheus in
// registration order with their series sorted by label values.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value. The zero value is valid.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n, which must be non-negative for the exposition to remain a
// valid Prometheus counter.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down. The zero value is valid.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// metricKind is the TYPE line of a family.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// series is one labeled instance inside a family.
type series struct {
	labelValues []string
	c           *Counter
	g           *Gauge
	h           *Histogram
}

// family is one metric name: HELP, TYPE, and its labeled series.
type family struct {
	name    string
	help    string
	kind    metricKind
	labels  []string
	buckets []float64      // histogram families only
	fn      func() float64 // gauge-func families only

	mu     sync.RWMutex
	byKey  map[string]*series
	series []*series
}

// Registry holds metric families and renders them. Create with
// NewRegistry; the zero value is not usable.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// register adds a family, panicking on an invalid or duplicate name —
// metric registration happens at construction time, so a bad name is a
// programming error, not a runtime condition.
func (r *Registry) register(name, help string, kind metricKind, labels []string, buckets []float64, fn func() float64) *family {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validLabelName(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	f := &family{
		name:    name,
		help:    help,
		kind:    kind,
		labels:  labels,
		buckets: buckets,
		fn:      fn,
		byKey:   make(map[string]*series),
	}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, kindCounter, nil, nil, nil)
	return f.getOrCreate(nil).c
}

// Gauge registers and returns an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, kindGauge, nil, nil, nil)
	return f.getOrCreate(nil).g
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time — for quantities that already live elsewhere (cache occupancy,
// pool occupancy) and should not be double-booked.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, kindGauge, nil, nil, fn)
}

// Histogram registers and returns an unlabeled histogram with the given
// upper bounds (see NewHistogram for the bucket contract).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, kindHistogram, nil, normalizeBuckets(buckets), nil)
	return f.getOrCreate(nil).h
}

// CounterVec registers a counter family with the given label names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic("obs: CounterVec needs at least one label; use Counter")
	}
	return &CounterVec{f: r.register(name, help, kindCounter, labels, nil, nil)}
}

// HistogramVec registers a histogram family with the given label names.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic("obs: HistogramVec needs at least one label; use Histogram")
	}
	return &HistogramVec{f: r.register(name, help, kindHistogram, labels, normalizeBuckets(buckets), nil)}
}

// CounterVec is a family of counters distinguished by label values.
type CounterVec struct {
	f *family
}

// With returns the counter for the given label values (created on first
// use). The returned pointer may be cached; repeated With calls with the
// same values return the same counter.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.getOrCreate(values).c
}

// HistogramVec is a family of histograms distinguished by label values.
type HistogramVec struct {
	f *family
}

// With returns the histogram for the given label values (created on
// first use).
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.getOrCreate(values).h
}

// seriesKey joins label values with a byte that cannot appear unescaped
// in a value comparison ambiguity (0xff is invalid UTF-8, so two distinct
// value tuples can never collide).
func seriesKey(values []string) string {
	return strings.Join(values, "\xff")
}

func (f *family) getOrCreate(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := seriesKey(values)
	f.mu.RLock()
	s, ok := f.byKey[key]
	f.mu.RUnlock()
	if ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok = f.byKey[key]; ok {
		return s
	}
	s = &series{labelValues: append([]string(nil), values...)}
	switch f.kind {
	case kindCounter:
		s.c = &Counter{}
	case kindGauge:
		s.g = &Gauge{}
	case kindHistogram:
		s.h = NewHistogram(f.buckets)
	}
	f.byKey[key] = s
	f.series = append(f.series, s)
	return s
}

// snapshotSeries returns the family's series sorted by label values, so
// the exposition is stable across scrapes regardless of creation order.
func (f *family) snapshotSeries() []*series {
	f.mu.RLock()
	out := append([]*series(nil), f.series...)
	f.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].labelValues, out[j].labelValues
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// validMetricName enforces the Prometheus data-model grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validLabelName enforces [a-zA-Z_][a-zA-Z0-9_]* and rejects the
// reserved __ prefix.
func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// normalizeBuckets validates and copies histogram bounds: strictly
// increasing, finite, at least one bound. A trailing +Inf bound is
// implicit and must not be passed.
func normalizeBuckets(buckets []float64) []float64 {
	if len(buckets) == 0 {
		panic("obs: histogram needs at least one finite bucket bound")
	}
	out := append([]float64(nil), buckets...)
	for i, b := range out {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic("obs: histogram bucket bounds must be finite (+Inf is implicit)")
		}
		if i > 0 && out[i-1] >= b {
			panic("obs: histogram bucket bounds must be strictly increasing")
		}
	}
	return out
}
