package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	g := r.Gauge("test_gauge", "a gauge")
	c.Inc()
	c.Add(4)
	g.Set(7)
	g.Add(-2)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
}

func TestVecSeriesIdentity(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("http_requests_total", "requests", "path", "code")
	a := v.With("/distance", "200")
	b := v.With("/distance", "200")
	if a != b {
		t.Fatal("With with equal label values returned distinct counters")
	}
	c := v.With("/distance", "404")
	if a == c {
		t.Fatal("With with distinct label values returned the same counter")
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 1.7, 3, 100} {
		h.Observe(v)
	}
	cum, count, sum := h.snapshot()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if want := 0.5 + 1.5 + 1.7 + 3 + 100; math.Abs(sum-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", sum, want)
	}
	wantCum := []int64{1, 3, 4, 5} // le=1, le=2, le=4, +Inf
	for i, w := range wantCum {
		if cum[i] != w {
			t.Fatalf("cum[%d] = %d, want %d (full: %v)", i, cum[i], w, cum)
		}
	}
	if q := h.Quantile(0.5); q != 2 {
		t.Fatalf("p50 = %v, want 2", q)
	}
	if q := h.Quantile(0.99); q != 4 { // beyond the last finite bound clamps to it
		t.Fatalf("p99 = %v, want 4", q)
	}
	if !math.IsNaN(NewHistogram([]float64{1}).Quantile(0.5)) {
		t.Fatal("empty histogram quantile should be NaN")
	}
}

func TestHistogramBoundaryGoesToLowerBucket(t *testing.T) {
	// Prometheus buckets are le (less-or-equal): an observation exactly on
	// a bound belongs to that bound's bucket.
	h := NewHistogram([]float64{1, 2})
	h.Observe(1)
	cum, _, _ := h.snapshot()
	if cum[0] != 1 {
		t.Fatalf("observation on the bound landed in cum=%v, want le=1 bucket", cum)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("reqs_total", "with \"quotes\" and \\slash\nand newline", "path")
	c.With(`va"l\ue` + "\n").Add(3)
	r.GaugeFunc("occupancy", "live value", func() float64 { return 2.5 })
	h := r.HistogramVec("lat_seconds", "latency", []float64{0.1, 1}, "path")
	h.With("/x").Observe(0.05)
	h.With("/x").Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP reqs_total with \"quotes\" and \\\\slash\\nand newline\n",
		"# TYPE reqs_total counter\n",
		`reqs_total{path="va\"l\\ue\n"} 3` + "\n",
		"# TYPE occupancy gauge\noccupancy 2.5\n",
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{path="/x",le="0.1"} 1` + "\n",
		`lat_seconds_bucket{path="/x",le="1"} 1` + "\n",
		`lat_seconds_bucket{path="/x",le="+Inf"} 2` + "\n",
		`lat_seconds_sum{path="/x"} 5.05` + "\n",
		`lat_seconds_count{path="/x"} 2` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q\n--- got ---\n%s", want, out)
		}
	}
}

func TestSeriesSortedByLabelValues(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("m_total", "m", "path")
	v.With("/z").Inc()
	v.With("/a").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if ia, iz := strings.Index(out, `path="/a"`), strings.Index(out, `path="/z"`); ia < 0 || iz < 0 || ia > iz {
		t.Fatalf("series not sorted by label value:\n%s", out)
	}
}

func TestInvalidRegistrationPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"bad metric name":  func() { NewRegistry().Counter("0bad", "x") },
		"bad label name":   func() { NewRegistry().CounterVec("ok_total", "x", "0bad") },
		"reserved label":   func() { NewRegistry().CounterVec("ok_total", "x", "__internal") },
		"duplicate name":   func() { r := NewRegistry(); r.Counter("dup", "x"); r.Counter("dup", "y") },
		"empty buckets":    func() { NewRegistry().Histogram("h", "x", nil) },
		"unsorted buckets": func() { NewRegistry().Histogram("h", "x", []float64{2, 1}) },
		"inf bucket":       func() { NewRegistry().Histogram("h", "x", []float64{1, math.Inf(1)}) },
		"wrong arity":      func() { NewRegistry().CounterVec("v_total", "x", "a", "b").With("only-one") },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

// Concurrent writers plus concurrent scrapes: the instruments promise
// lock-free writes and monotone reads, which the -race CI job verifies
// through this test.
func TestConcurrentObserveAndScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c")
	h := r.Histogram("h_seconds", "h", DefBuckets)
	var wg sync.WaitGroup
	const writers, perWriter = 8, 2000
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
				h.Observe(float64(i%100) / 1000)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	var lastCount int64
	for {
		select {
		case <-done:
			if c.Value() != writers*perWriter {
				t.Fatalf("counter = %d, want %d", c.Value(), writers*perWriter)
			}
			if h.Count() != writers*perWriter {
				t.Fatalf("histogram count = %d, want %d", h.Count(), writers*perWriter)
			}
			return
		default:
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Fatal(err)
			}
			if n := h.Count(); n < lastCount {
				t.Fatalf("histogram count went backwards: %d -> %d", lastCount, n)
			} else {
				lastCount = n
			}
		}
	}
}
