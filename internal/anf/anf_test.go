package anf

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func TestRunDiameterEstimateCloseToTruth(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"path":   graph.Path(60),
		"cycle":  graph.Cycle(50),
		"mesh":   graph.Mesh(15, 15),
		"social": graph.BarabasiAlbert(1500, 3, 2),
	} {
		truth, _ := g.ExactDiameter(0)
		res, err := Run(g, Options{K: 32, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.DiameterEstimate > truth {
			t.Errorf("%s: ANF estimate %d exceeds true diameter %d (sketch rounds cannot overshoot)",
				name, res.DiameterEstimate, truth)
		}
		// HADI is known to be accurate; with 32 registers the saturation
		// round should be close to the truth.
		if float64(res.DiameterEstimate) < 0.6*float64(truth) {
			t.Errorf("%s: ANF estimate %d far below true diameter %d", name, res.DiameterEstimate, truth)
		}
	}
}

func TestRunRoundsThetaDiameter(t *testing.T) {
	g := graph.Path(200)
	res, err := Run(g, Options{K: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds < 100 || res.Rounds > 202 {
		t.Fatalf("rounds=%d, expected Θ(∆)=199-ish", res.Rounds)
	}
}

func TestRunCommunicationVolumeBounded(t *testing.T) {
	g := graph.Mesh(12, 12)
	k := 8
	res, err := Run(g, Options{K: k, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The dense HADI execution moves K registers over every arc every
	// round; the active-set rounds only recombine nodes with a changed
	// neighbor, so the honest volume is bounded by the dense one and must
	// still cover at least one full sweep (round 1 touches every arc).
	dense := int64(res.Rounds) * int64(g.NumArcs()) * int64(k)
	if res.MessagesWords > dense {
		t.Fatalf("messages=%d exceed dense rounds*arcs*K=%d", res.MessagesWords, dense)
	}
	if res.MessagesWords < int64(g.NumArcs())*int64(k) {
		t.Fatalf("messages=%d below one full sweep %d", res.MessagesWords, int64(g.NumArcs())*int64(k))
	}
	if res.Stats.Rounds != res.Rounds {
		t.Fatalf("engine rounds %d != ANF rounds %d", res.Stats.Rounds, res.Rounds)
	}
}

func TestRunNeighborhoodMonotone(t *testing.T) {
	g := graph.Mesh(10, 10)
	res, err := Run(g, Options{K: 32, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Neighborhood); i++ {
		if res.Neighborhood[i] < res.Neighborhood[i-1]-1e-9 {
			t.Fatalf("neighborhood function decreased at %d: %v -> %v",
				i, res.Neighborhood[i-1], res.Neighborhood[i])
		}
	}
}

func TestRunFinalNeighborhoodApproximatesN2(t *testing.T) {
	// On a connected graph N(∆) = n²; the FM estimate should land within
	// ~35% with 64 registers.
	g := graph.Mesh(12, 12)
	n := float64(g.NumNodes())
	res, err := Run(g, Options{K: 64, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	final := res.Neighborhood[len(res.Neighborhood)-1]
	if math.Abs(final-n*n)/(n*n) > 0.35 {
		t.Fatalf("final neighborhood %.0f, true %.0f", final, n*n)
	}
}

func TestRunEffectiveDiameterAtMostEstimate(t *testing.T) {
	g := graph.Path(80)
	res, err := Run(g, Options{K: 32, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.EffectiveDiameter > float64(res.DiameterEstimate) {
		t.Fatalf("effective diameter %.1f exceeds saturation round %d",
			res.EffectiveDiameter, res.DiameterEstimate)
	}
	if res.EffectiveDiameter <= 0 {
		t.Fatal("effective diameter should be positive on a long path")
	}
}

func TestRunSingleNode(t *testing.T) {
	res, err := Run(graph.Path(1), Options{K: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.DiameterEstimate != 0 {
		t.Fatalf("single node estimate %d want 0", res.DiameterEstimate)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(graph.NewBuilder(0).Build(), Options{}); err == nil {
		t.Fatal("empty graph should fail")
	}
}

func TestRunMaxRoundsCap(t *testing.T) {
	g := graph.Path(500)
	res, err := Run(g, Options{K: 8, Seed: 8, MaxRounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 10 {
		t.Fatalf("rounds=%d want capped at 10", res.Rounds)
	}
}

func TestRunDeterministicAcrossWorkers(t *testing.T) {
	g := graph.Mesh(12, 12)
	a, err := Run(g, Options{K: 16, Seed: 9, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, Options{K: 16, Seed: 9, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.DiameterEstimate != b.DiameterEstimate || a.Rounds != b.Rounds {
		t.Fatal("ANF not deterministic across worker counts")
	}
}

func TestEffectiveDiameterInterpolation(t *testing.T) {
	// N = [10, 55, 100]: target 0.9*100=90 reached between t=1 and t=2 at
	// 1 + (90-55)/(100-55).
	got := effectiveDiameter([]float64{10, 55, 100}, 0.9)
	want := 1 + 35.0/45.0
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("effective diameter %v want %v", got, want)
	}
}

func TestEffectiveDiameterEdgeCases(t *testing.T) {
	if effectiveDiameter(nil, 0.9) != 0 {
		t.Fatal("empty series")
	}
	if effectiveDiameter([]float64{5}, 0.9) != 0 {
		t.Fatal("single point should be 0")
	}
}
