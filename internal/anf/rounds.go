package anf

import (
	"repro/internal/bsp"
	"repro/internal/graph"
)

// runSketchRounds drives the active-set round harness shared by ANF and
// HyperANF on the traversal engine. The frontier holds the nodes whose
// sketch changed last round; a node only recombines when at least one
// neighbor is in the frontier (everyone else's sketch provably cannot
// change), which preserves the dense round-by-round semantics — and thus
// the saturation-round diameter estimate — while skipping the dead arc
// scans.
//
// combine recomputes v's sketch row from its neighbors' pre-round rows
// (reading cur, writing next) and reports whether it changed; writeBack
// commits v's new row after the superstep barrier; estimate evaluates the
// neighborhood function N(t) from the committed rows. rowUnits is the
// per-arc traffic unit (K 32-bit words for ANF, 2^b bytes for HyperANF)
// behind the messages tally.
func runSketchRounds(g *graph.Graph, workers, maxRounds int, rowUnits int64,
	combine func(v graph.NodeID, nbrs []graph.NodeID) bool,
	writeBack func(v graph.NodeID),
	estimate func() float64,
) (neighborhood []float64, rounds int, saturatedAt int32, messages int64, stats bsp.Stats) {
	n := g.NumNodes()
	e := bsp.NewEngine(g, workers)
	defer e.Close()
	all := make([]graph.NodeID, n)
	for i := range all {
		all[i] = graph.NodeID(i)
	}
	e.SetFrontier(all) // round 0: every node's sketch just initialized

	neighborhood = []float64{estimate()}
	gatherArcs := make([]int64, e.NumWorkers())
	for rounds < maxRounds && e.FrontierLen() > 0 {
		rs := e.GatherStep(func(w int, v graph.NodeID) bool {
			nbrs := g.Neighbors(v)
			gatherArcs[w] += int64(len(nbrs))
			return combine(v, nbrs)
		})
		rounds++
		// Commit the changed sketches (the untouched ones are already
		// identical in cur), then account the units actually combined.
		changed := e.Frontier()
		e.For(len(changed), func(_, lo, hi int) {
			for _, u := range changed[lo:hi] {
				writeBack(u)
			}
		})
		for w := range gatherArcs {
			messages += gatherArcs[w] * rowUnits
			gatherArcs[w] = 0
		}
		if rs.Claimed == 0 {
			break
		}
		saturatedAt = int32(rounds)
		neighborhood = append(neighborhood, estimate())
	}
	return neighborhood, rounds, saturatedAt, messages, e.Stats()
}
