// Package anf implements the ANF/HADI neighborhood-function baseline
// (Palmer, Gibbons, Faloutsos KDD 2002 [23]; Kang et al.'s MapReduce
// version HADI [16]), the second competitor of the paper's Table 4.
//
// Every node keeps K Flajolet–Martin bitmask registers summarizing the set
// of nodes within distance t; one synchronous round ORs each node's
// sketches with its neighbors'. The neighborhood function
// N(t) = |{(u,v) : dist(u,v) <= t}| is estimated per round, and the process
// stops when the sketches saturate, which happens after roughly diameter
// many rounds. HADI therefore needs Θ(∆) rounds with Θ(m·K) communication
// per round — the cost profile that makes it orders of magnitude slower
// than the clustering-based estimator on long-diameter graphs, despite its
// very accurate (slightly under-estimating) diameter figure.
package anf

import (
	"errors"
	"math"
	"math/bits"
	"time"

	"repro/internal/bsp"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Options configures an ANF run.
type Options struct {
	// K is the number of Flajolet–Martin registers per node (more registers
	// tighten the estimate at proportional memory/communication cost).
	// Default 32.
	K int
	// Seed drives the per-node register initialization.
	Seed uint64
	// Workers is the BSP parallelism (non-positive = GOMAXPROCS).
	Workers int
	// MaxRounds caps the iteration count (0 = 4n+4, effectively unlimited).
	MaxRounds int
	// EffectivePercentile is the quantile of reachable pairs defining the
	// effective diameter (default 0.9, as in the ANF/HADI papers).
	EffectivePercentile float64
}

// Result reports an ANF execution.
type Result struct {
	// DiameterEstimate is the round at which the sketches saturated — an
	// estimate of (and typically a slight underestimate of) the diameter.
	DiameterEstimate int32
	// EffectiveDiameter is the interpolated t at which N(t) reaches
	// EffectivePercentile of its final value.
	EffectiveDiameter float64
	// Neighborhood holds the estimates N(0), N(1), ..., N(DiameterEstimate).
	Neighborhood []float64
	// Rounds is the number of BSP rounds executed (= DiameterEstimate + 1:
	// saturation is detected one round after the last change).
	Rounds int
	// MessagesWords is the aggregate communication volume in 32-bit words:
	// K registers per arc actually combined. The active-set execution only
	// recombines nodes with a changed neighbor, so this is at most
	// Rounds·2m·K (the dense HADI volume) and typically far less on
	// long-diameter graphs, where most sketches are stable most rounds.
	MessagesWords int64
	// Stats carries the engine's superstep counters (rounds, arcs scanned
	// including frontier-membership probes, pull rounds).
	Stats bsp.Stats
	// Elapsed is the wall-clock time.
	Elapsed time.Duration
}

// phi is the Flajolet–Martin bias correction constant.
const phi = 0.77351

// Run executes ANF on g until the sketches saturate.
func Run(g *graph.Graph, opt Options) (*Result, error) {
	start := time.Now() //lint:allow walltime accounting-only: Elapsed never influences sketch updates
	n := g.NumNodes()
	if n == 0 {
		return nil, errors.New("anf: empty graph")
	}
	k := opt.K
	if k <= 0 {
		k = 32
	}
	if opt.EffectivePercentile <= 0 || opt.EffectivePercentile > 1 {
		opt.EffectivePercentile = 0.9
	}
	maxRounds := opt.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 4*n + 4
	}
	workers := bsp.Workers(opt.Workers)
	seed := rng.Mix64(opt.Seed, 0xa7f_0001)

	// Initialize sketches: node u sets, in each register, one bit drawn
	// geometrically (bit b with probability 2^-(b+1)).
	cur := make([]uint32, n*k)
	next := make([]uint32, n*k)
	bsp.ParallelFor(workers, n, func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			for r := 0; r < k; r++ {
				h := rng.Mix64(seed, uint64(u), uint64(r))
				b := bits.TrailingZeros64(h | (1 << 31)) // cap at bit 31
				cur[u*k+r] = 1 << uint(b)
			}
		}
	})

	// Active-set rounds on the traversal engine (see runSketchRounds): the
	// FM combine is a K-word OR of each neighbor's pre-round sketch.
	neighborhood, rounds, saturatedAt, messages, stats := runSketchRounds(
		g, workers, maxRounds, int64(k),
		func(vn graph.NodeID, nbrs []graph.NodeID) bool {
			base := int(vn) * k
			// Copy own sketch, then OR in the neighbors'.
			for r := 0; r < k; r++ {
				next[base+r] = cur[base+r]
			}
			for _, v := range nbrs {
				nb := int(v) * k
				for r := 0; r < k; r++ {
					next[base+r] |= cur[nb+r]
				}
			}
			for r := 0; r < k; r++ {
				if next[base+r] != cur[base+r] {
					return true
				}
			}
			return false
		},
		func(u graph.NodeID) {
			base := int(u) * k
			copy(cur[base:base+k], next[base:base+k])
		},
		func() float64 { return neighborhoodEstimate(cur, n, k) },
	)

	res := &Result{
		DiameterEstimate: saturatedAt,
		Neighborhood:     neighborhood,
		Rounds:           rounds,
		MessagesWords:    messages,
		Stats:            stats,
		Elapsed:          time.Since(start),
	}
	res.EffectiveDiameter = effectiveDiameter(neighborhood, opt.EffectivePercentile)
	return res, nil
}

// neighborhoodEstimate sums the per-node FM estimates of |B(u, t)|.
func neighborhoodEstimate(sk []uint32, n, k int) float64 {
	total := 0.0
	for u := 0; u < n; u++ {
		base := u * k
		sum := 0
		for r := 0; r < k; r++ {
			sum += bits.TrailingZeros32(^sk[base+r])
		}
		mean := float64(sum) / float64(k)
		total += math.Pow(2, mean) / phi
	}
	return total
}

// effectiveDiameter interpolates the smallest t with N(t) >= q*N(final).
func effectiveDiameter(nfn []float64, q float64) float64 {
	if len(nfn) == 0 {
		return 0
	}
	target := q * nfn[len(nfn)-1]
	for t := 0; t < len(nfn); t++ {
		if nfn[t] >= target {
			if t == 0 {
				return 0
			}
			// Linear interpolation between t-1 and t.
			prev, cur := nfn[t-1], nfn[t]
			if cur == prev {
				return float64(t)
			}
			return float64(t-1) + (target-prev)/(cur-prev)
		}
	}
	return float64(len(nfn) - 1)
}
