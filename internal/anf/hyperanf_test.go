package anf

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func TestHyperRunDiameterEstimate(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"path":   graph.Path(60),
		"mesh":   graph.Mesh(14, 14),
		"social": graph.BarabasiAlbert(1200, 3, 4),
	} {
		truth, _ := g.ExactDiameter(0)
		res, err := HyperRun(g, HyperOptions{LogRegisters: 6, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.DiameterEstimate > truth {
			t.Errorf("%s: HyperANF estimate %d exceeds true %d", name, res.DiameterEstimate, truth)
		}
		if float64(res.DiameterEstimate) < 0.6*float64(truth) {
			t.Errorf("%s: HyperANF estimate %d far below true %d", name, res.DiameterEstimate, truth)
		}
	}
}

func TestHyperRunCountAccuracy(t *testing.T) {
	// Final N should approximate n² within HLL error (~13% at 64 regs; be
	// generous).
	g := graph.Mesh(12, 12)
	n := float64(g.NumNodes())
	res, err := HyperRun(g, HyperOptions{LogRegisters: 7, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	final := res.Neighborhood[len(res.Neighborhood)-1]
	if math.Abs(final-n*n)/(n*n) > 0.35 {
		t.Fatalf("final neighborhood %.0f, true %.0f", final, n*n)
	}
}

func TestHyperRunMessageVolumeSmallerThanANF(t *testing.T) {
	// The point of HyperANF: 2^b bytes per node vs K 32-bit words. With
	// b=6 (64 bytes) vs K=32 (128 bytes) the per-round volume halves.
	g := graph.Mesh(10, 10)
	fm, err := Run(g, Options{K: 32, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	hll, err := HyperRun(g, HyperOptions{LogRegisters: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	fmBytes := fm.MessagesWords * 4
	if hll.MessagesBytes >= fmBytes {
		t.Fatalf("HyperANF bytes %d not below ANF bytes %d", hll.MessagesBytes, fmBytes)
	}
}

func TestHyperRunDeterministic(t *testing.T) {
	g := graph.Mesh(10, 10)
	a, err := HyperRun(g, HyperOptions{LogRegisters: 5, Seed: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := HyperRun(g, HyperOptions{LogRegisters: 5, Seed: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.DiameterEstimate != b.DiameterEstimate || a.Rounds != b.Rounds {
		t.Fatal("HyperANF not deterministic across worker counts")
	}
}

func TestHyperRunErrors(t *testing.T) {
	if _, err := HyperRun(graph.NewBuilder(0).Build(), HyperOptions{}); err == nil {
		t.Fatal("empty graph should fail")
	}
	if _, err := HyperRun(graph.Path(3), HyperOptions{LogRegisters: 20}); err == nil {
		t.Fatal("huge register count should fail")
	}
}

func TestHyperRunMaxRoundsCap(t *testing.T) {
	g := graph.Path(300)
	res, err := HyperRun(g, HyperOptions{LogRegisters: 4, Seed: 5, MaxRounds: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 7 {
		t.Fatalf("rounds=%d want 7", res.Rounds)
	}
}

func TestHLLEstimateSmallRangeCorrection(t *testing.T) {
	// All-zero registers: linear counting must report ~0, not alpha*m².
	m := 64
	regs := make([]uint8, m)
	if e := hllEstimate(regs, m, hllAlpha(m)); e != 0 {
		t.Fatalf("empty counter estimate %v want 0", e)
	}
}

func TestHLLAlphaValues(t *testing.T) {
	for _, m := range []int{16, 32, 64, 128, 1024} {
		a := hllAlpha(m)
		if a < 0.6 || a > 0.75 {
			t.Fatalf("alpha(%d)=%v outside sane band", m, a)
		}
	}
}

func BenchmarkHyperANFMesh(b *testing.B) {
	g := graph.Mesh(60, 60)
	for i := 0; i < b.N; i++ {
		if _, err := HyperRun(g, HyperOptions{LogRegisters: 6, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
