package anf

import (
	"errors"
	"math"
	"math/bits"
	"time"

	"repro/internal/bsp"
	"repro/internal/graph"
	"repro/internal/rng"
)

// HyperANF (Boldi, Rosa, Vigna — [6] in the paper) replaces ANF's
// Flajolet–Martin bitmasks with HyperLogLog counters: 2^b byte-sized
// registers per node, unioned by elementwise max. It is the
// memory-efficient sibling the paper cites for tightly-coupled
// shared-memory machines; here it runs on the same BSP substrate as ANF so
// the two sketches can be compared like for like (accuracy per byte moved
// per round). The round structure — and thus the Θ(∆) round count that
// disqualifies both from long-diameter graphs — is identical.

// HyperOptions configures a HyperANF run.
type HyperOptions struct {
	// LogRegisters is b: each node keeps 2^b single-byte registers
	// (default 6, i.e. 64 registers ≈ 13% relative standard error).
	LogRegisters int
	// Seed drives the per-node hash initialization.
	Seed uint64
	// Workers is the BSP parallelism.
	Workers int
	// MaxRounds caps the iterations (0 = effectively unlimited).
	MaxRounds int
	// EffectivePercentile defines the effective diameter (default 0.9).
	EffectivePercentile float64
}

// HyperResult reports a HyperANF execution.
type HyperResult struct {
	// DiameterEstimate is the sketch saturation round.
	DiameterEstimate int32
	// EffectiveDiameter interpolates where N(t) reaches the percentile.
	EffectiveDiameter float64
	// Neighborhood holds N(0..DiameterEstimate) estimates.
	Neighborhood []float64
	// Rounds is the number of BSP rounds executed.
	Rounds int
	// MessagesBytes is the traffic volume: 2^b bytes per arc actually
	// combined (the active-set execution skips nodes whose neighborhood is
	// stable, so this is at most Rounds·2m·2^b and usually much less).
	MessagesBytes int64
	// Stats carries the engine's superstep counters.
	Stats bsp.Stats
	// Elapsed is the wall-clock time.
	Elapsed time.Duration
}

// HyperRun executes HyperANF on g until the registers saturate.
func HyperRun(g *graph.Graph, opt HyperOptions) (*HyperResult, error) {
	start := time.Now() //lint:allow walltime accounting-only: Elapsed never influences register updates
	n := g.NumNodes()
	if n == 0 {
		return nil, errors.New("anf: empty graph")
	}
	b := opt.LogRegisters
	if b <= 0 {
		b = 6
	}
	if b > 12 {
		return nil, errors.New("anf: LogRegisters too large")
	}
	m := 1 << b
	if opt.EffectivePercentile <= 0 || opt.EffectivePercentile > 1 {
		opt.EffectivePercentile = 0.9
	}
	maxRounds := opt.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 4*n + 4
	}
	workers := bsp.Workers(opt.Workers)
	seed := rng.Mix64(opt.Seed, 0x417f_0002)

	// Initialize: every node inserts itself into its own counter.
	cur := make([]uint8, n*m)
	next := make([]uint8, n*m)
	bsp.ParallelFor(workers, n, func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			h := rng.Mix64(seed, uint64(u))
			// Low b bits pick the register; the remaining bits provide the
			// rank, standard HyperLogLog practice.
			j := int(h & uint64(m-1))
			cur[u*m+j] = uint8(trailingRank(h >> uint(b)))
		}
	})

	alpha := hllAlpha(m)
	estimate := func(sk []uint8) float64 {
		total := 0.0
		for u := 0; u < n; u++ {
			total += hllEstimate(sk[u*m:(u+1)*m], m, alpha)
		}
		return total
	}
	// Active-set rounds on the shared harness (see runSketchRounds): the
	// HyperLogLog combine is an elementwise max over 2^b byte registers.
	neighborhood, rounds, saturatedAt, messages, stats := runSketchRounds(
		g, workers, maxRounds, int64(m),
		func(vn graph.NodeID, nbrs []graph.NodeID) bool {
			base := int(vn) * m
			copy(next[base:base+m], cur[base:base+m])
			for _, v := range nbrs {
				nb := int(v) * m
				for r := 0; r < m; r++ {
					if cur[nb+r] > next[base+r] {
						next[base+r] = cur[nb+r]
					}
				}
			}
			for r := 0; r < m; r++ {
				if next[base+r] != cur[base+r] {
					return true
				}
			}
			return false
		},
		func(u graph.NodeID) {
			base := int(u) * m
			copy(cur[base:base+m], next[base:base+m])
		},
		func() float64 { return estimate(cur) },
	)

	res := &HyperResult{
		DiameterEstimate: saturatedAt,
		Neighborhood:     neighborhood,
		Rounds:           rounds,
		MessagesBytes:    messages,
		Stats:            stats,
		Elapsed:          time.Since(start),
	}
	res.EffectiveDiameter = effectiveDiameter(neighborhood, opt.EffectivePercentile)
	return res, nil
}

// trailingRank returns the HyperLogLog rank: one plus the number of
// trailing zeros of w, capped so it fits a byte comfortably.
func trailingRank(w uint64) int {
	r := bits.TrailingZeros64(w|1<<62) + 1
	if r > 63 {
		r = 63
	}
	return r
}

func hllAlpha(m int) float64 {
	switch m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	default:
		return 0.7213 / (1 + 1.079/float64(m))
	}
}

func hllEstimate(regs []uint8, m int, alpha float64) float64 {
	sum := 0.0
	zeros := 0
	for _, r := range regs {
		sum += math.Pow(2, -float64(r))
		if r == 0 {
			zeros++
		}
	}
	e := alpha * float64(m) * float64(m) / sum
	if e <= 2.5*float64(m) && zeros > 0 {
		// Small-range (linear counting) correction.
		e = float64(m) * math.Log(float64(m)/float64(zeros))
	}
	return e
}
